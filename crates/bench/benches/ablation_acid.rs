//! **§8 claim** — ACID v2 read performance "is at par with non-ACID
//! tables": scans over an ACID table in three states (freshly
//! compacted base; many uncompacted deltas with tombstones; external
//! non-ACID files) plus the compaction-delta sweep showing why
//! compaction matters (§3.2).

use hive_bench::{avg_sim_ms, banner, ms};
use hive_common::{HiveConf, Row, Value};
use hive_core::HiveServer;

const ROWS: usize = 40_000;
const Q: &str = "SELECT COUNT(*), SUM(v) FROM {t} WHERE k < 500000";

fn load_chunked(server: &HiveServer, table: &str, chunks: usize) {
    let session = server.session();
    let per = ROWS / chunks;
    for c in 0..chunks {
        let rows: Vec<Row> = (0..per)
            .map(|i| {
                let k = (c * per + i) as i64;
                Row::new(vec![Value::BigInt(k), Value::BigInt(k % 997)])
            })
            .collect();
        session.bulk_insert(table, rows).expect("insert");
    }
}

fn main() {
    banner("Ablation: ACID read overhead vs compaction state (paper §8: 'at par')");
    let server = HiveServer::new(HiveConf::v3_1().with(|c| {
        c.results_cache = false;
        c.auto_compaction = false; // manual control for the sweep
        c.llap_enabled = false; // measure raw file merging, not cache
    }));
    let session = server.session();

    println!("\n{:<34} {:>12}", "table state", "scan time");
    let mut reference = 0.0;
    for (label, deltas, compact, deletes) in [
        ("ACID, 1 delta (single write)", 1usize, false, false),
        ("ACID, 40 deltas", 40, false, false),
        ("ACID, 40 deltas + tombstones", 40, false, true),
        ("ACID, major-compacted base", 40, true, false),
    ] {
        let t = format!("t_{deltas}_{compact}_{deletes}");
        session
            .execute(&format!("CREATE TABLE {t} (k BIGINT, v BIGINT)"))
            .unwrap();
        load_chunked(&server, &t, deltas);
        if deletes {
            session
                .execute(&format!("DELETE FROM {t} WHERE v = 13"))
                .unwrap();
        }
        if compact {
            session
                .execute(&format!("ALTER TABLE {t} COMPACT 'major'"))
                .unwrap();
        }
        let time = avg_sim_ms(&session, &Q.replace("{t}", &t), 1, 3);
        if label.starts_with("ACID, major") {
            reference = time;
        }
        println!("{label:<34} {:>12}", ms(time));
    }

    // Non-ACID comparison: write the same rows as a plain corc file.
    // (External tables read without identity columns or merge logic.)
    {
        use hive_common::{DataType, Field, Schema, VectorBatch};
        session
            .execute("CREATE EXTERNAL TABLE t_ext (k BIGINT, v BIGINT)")
            .unwrap();
        let schema = Schema::new(vec![
            Field::new("k", DataType::BigInt),
            Field::new("v", DataType::BigInt),
        ]);
        let rows: Vec<Row> = (0..ROWS)
            .map(|i| Row::new(vec![Value::BigInt(i as i64), Value::BigInt(i as i64 % 997)]))
            .collect();
        let batch = VectorBatch::from_rows(&schema, &rows).unwrap();
        let bytes = hive_corc::writer::write_batch_to_bytes(&batch, Default::default()).unwrap();
        server
            .fs()
            .create(
                &hive_dfs::DfsPath::new("/warehouse/default/t_ext/data_0"),
                bytes,
            )
            .unwrap();
        let time = avg_sim_ms(&session, &Q.replace("{t}", "t_ext"), 1, 3);
        println!("{:<34} {:>12}", "non-ACID external table", ms(time));
        if reference > 0.0 {
            println!(
                "\ncompacted-ACID vs non-ACID ratio: {:.2}x (paper: 'performance is at par')",
                reference / time
            );
        }
    }
}
