//! Compiled-accumulator and vectorized-join-residual benchmark.
//!
//! Engine-level queries against a loaded TPC-DS warehouse with
//! `hive.exec.pir.enabled` on and off. Where BENCH_pir.json measures the
//! fused Filter/Project chains, this grid targets the two hot loops PIR
//! compiles past the aggregate boundary: monomorphized accumulator
//! folds (SUM/COUNT/MIN/MAX/AVG over int, decimal, and dictionary
//! inputs) and residual join predicates evaluated vectorized over
//! gathered candidate pair-batches instead of per-pair row
//! interpretation.
//!
//! Results (real host timings, not simulated cluster time) land in
//! `BENCH_pir_agg.json` at the repo root, including the `gates` floors
//! `scripts/bench_check.py` re-validates on every verify run.
//!
//! Run: `cargo bench -p hive-bench --bench pir_agg` (or via
//! scripts/verify.sh; `HIVE_PIR_SWEEP=1` runs the test-suite sweep).

use hive_benchdata::tpcds::{self, TpcdsScale};
use hive_common::HiveConf;
use hive_core::HiveServer;
use std::time::Instant;

const ITERS: usize = 7;
const DAYS: usize = 8;
const SALES_PER_DAY: usize = 25_000;
const DICT_ITEMS: usize = 120_000;

/// Best-of-N wall-clock milliseconds for two alternatives, measured
/// *interleaved* (a-b-a-b…) so background load on a shared host skews
/// both sides alike instead of whichever ran second. Min is the stable
/// statistic for speedup comparisons.
fn time_pair_ms(mut a: impl FnMut(), mut b: impl FnMut()) -> (f64, f64) {
    a(); // warmup (also warms the LLAP cache)
    b();
    let mut best = (f64::INFINITY, f64::INFINITY);
    for _ in 0..ITERS {
        let t0 = Instant::now();
        a();
        best.0 = best.0.min(t0.elapsed().as_secs_f64() * 1e3);
        let t0 = Instant::now();
        b();
        best.1 = best.1.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn server(pir: bool, scale: TpcdsScale) -> HiveServer {
    let mut conf = HiveConf::v3_1();
    conf.pir_enabled = pir;
    conf.results_cache = false;
    let server = HiveServer::new(conf);
    tpcds::load(&server, scale, 0xBE5C).unwrap();
    server
}

/// The fact-table warehouse: 200k store_sales rows, `ss_customer_sk`
/// uniform in 0..300 so `< cutoff` predicates select ~pct% in every row
/// group, and `i_manufact_id = i % 100` over 500 items so a store-key
/// probe against it fans out to ~5 build candidates per probe row —
/// the residual-heavy join shape.
fn fact_scale() -> TpcdsScale {
    TpcdsScale {
        days: DAYS,
        items: 500,
        customers: 300,
        stores: 6,
        sales_per_day: SALES_PER_DAY,
        return_rate: 0.1,
    }
}

/// The string-heavy warehouse: a 120k-row item table whose i_category /
/// i_brand / i_class columns dictionary-encode (low cardinality), so
/// MIN/MAX fold over dictionary codes and the group keys are dict-dense.
fn dict_scale() -> TpcdsScale {
    TpcdsScale {
        days: 1,
        items: DICT_ITEMS,
        customers: 50,
        stores: 2,
        sales_per_day: 500,
        return_rate: 0.1,
    }
}

fn fact_cases() -> Vec<(String, String)> {
    vec![
        (
            // The gate case: 1%-selective filter feeding a wide
            // accumulator bank — compiled filter chain plus
            // monomorphized COUNT/SUM/MIN/MAX/AVG folds.
            "agg_filter_groupby_1pct".to_string(),
            "SELECT ss_store_sk, COUNT(*), COUNT(ss_customer_sk), SUM(ss_quantity), \
             SUM(ss_wholesale_cost), SUM(ss_list_price), SUM(ss_net_profit), \
             MIN(ss_net_profit), MAX(ss_list_price), AVG(ss_sales_price), \
             AVG(ss_quantity) FROM store_sales \
             WHERE ss_customer_sk < 3 GROUP BY ss_store_sk ORDER BY ss_store_sk"
                .to_string(),
        ),
        (
            // Near-full-table group-by: the accumulator folds dominate
            // (no filter win to hide behind).
            "agg_groupby_wide".to_string(),
            "SELECT ss_store_sk, COUNT(*), SUM(ss_quantity), SUM(ss_wholesale_cost), \
             SUM(ss_list_price), SUM(ss_sales_price), SUM(ss_ext_sales_price), \
             SUM(ss_net_profit), MIN(ss_net_profit), MAX(ss_ext_sales_price), \
             AVG(ss_list_price) FROM store_sales \
             GROUP BY ss_store_sk ORDER BY ss_store_sk"
                .to_string(),
        ),
        (
            // The gate case: ~5 build candidates per probe row and a
            // three-comparison decimal residual — 1M pairs through the
            // compiled conjunction versus per-pair row interpretation.
            "join_residual_heavy".to_string(),
            "SELECT COUNT(*), SUM(i_current_price) FROM store_sales \
             JOIN item ON ss_store_sk = i_manufact_id \
             AND ss_list_price > i_current_price \
             AND ss_net_profit < i_current_price \
             AND ss_wholesale_cost <> i_current_price"
                .to_string(),
        ),
        (
            // Non-compilable residual shape (arithmetic inside the
            // comparison): the row closure runs over the gathered
            // candidates — gated at 0.95x so the pair-buffer
            // restructure never taxes the fallback.
            "join_residual_mixed".to_string(),
            "SELECT COUNT(*), SUM(i_current_price) FROM store_sales \
             JOIN item ON ss_item_sk = i_item_sk \
             AND ss_list_price + ss_wholesale_cost > i_current_price"
                .to_string(),
        ),
    ]
}

fn dict_cases() -> Vec<(String, String)> {
    vec![(
        // Dictionary accumulator folds: MIN/MAX over dict-encoded
        // string columns compare codes through the shared dictionary,
        // grouped by a dict-dense key.
        "agg_groupby_dict".to_string(),
        "SELECT i_category, COUNT(*), MIN(i_brand), MAX(i_class), \
         SUM(i_current_price), AVG(i_current_price) FROM item \
         GROUP BY i_category ORDER BY i_category"
            .to_string(),
    )]
}

/// Time every case against one PIR-on and one PIR-off server, checking
/// the toggle is invisible in results.
fn run_cases(cases: &[(String, String)], scale: TpcdsScale, results: &mut Vec<(String, f64, f64)>) {
    let on = server(true, scale);
    let off = server(false, scale);
    for (name, sql) in cases {
        assert_eq!(
            on.session().execute(sql).unwrap().display_rows(),
            off.session().execute(sql).unwrap().display_rows(),
            "{name} diverged between PIR settings"
        );
        let (on_ms, off_ms) = time_pair_ms(
            || {
                on.session().execute(sql).unwrap();
            },
            || {
                off.session().execute(sql).unwrap();
            },
        );
        eprintln!(
            "{name:<30} pir={on_ms:8.2} ms  interp={off_ms:8.2} ms  ({:.2}x)",
            off_ms / on_ms
        );
        results.push((name.clone(), on_ms, off_ms));
    }
}

fn gate_floor(name: &str) -> f64 {
    match name {
        "agg_filter_groupby_1pct" => 2.0,
        "join_residual_heavy" => 1.5,
        _ => 0.95,
    }
}

fn main() {
    // The env knobs (set by HIVE_PIR_SWEEP test runs) must not
    // override the settings this harness manages itself.
    std::env::remove_var("HIVE_PIR_ENABLED");
    std::env::remove_var("HIVE_SELVEC_ENABLED");
    std::env::remove_var("HIVE_DICT_ENABLED");
    std::env::remove_var("HIVE_RAWTABLE_ENABLED");
    std::env::remove_var("HIVE_PARALLEL_THREADS");

    // (name, pir_on_ms, pir_off_ms)
    let mut results: Vec<(String, f64, f64)> = Vec::new();
    run_cases(&fact_cases(), fact_scale(), &mut results);
    run_cases(&dict_cases(), dict_scale(), &mut results);

    let speedup = |name: &str| -> f64 {
        results
            .iter()
            .find(|(n, _, _)| n == name)
            .map(|(_, on, off)| off / on)
            .unwrap_or(f64::NAN)
    };

    // The issue's gates: ≥2x on the 1%-selectivity filter→group-by
    // accumulator case, ≥1.5x on the residual-heavy join, and no case
    // below 0.95x.
    for (name, on, off) in &results {
        let floor = gate_floor(name);
        assert!(
            off / on >= floor,
            "{name} fell below its {floor:.2}x floor ({:.3}x)",
            off / on
        );
    }

    let mut entries = String::new();
    for (name, on_ms, off_ms) in &results {
        if !entries.is_empty() {
            entries.push_str(",\n");
        }
        entries.push_str(&format!(
            "    {{\"case\": \"{name}\", \"pir_on_ms\": {on_ms:.3}, \
             \"pir_off_ms\": {off_ms:.3}, \"speedup\": {:.3}}}",
            off_ms / on_ms
        ));
    }
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut gates = String::new();
    for (name, _, _) in &results {
        if !gates.is_empty() {
            gates.push_str(",\n");
        }
        gates.push_str(&format!("    \"{name}\": {:.2}", gate_floor(name)));
    }
    let json = format!(
        "{{\n  \"bench\": \"pir_agg\",\n  \"unit\": \"ms\",\n  \"iters\": {ITERS},\n  \
         \"engine_rows\": {},\n  \"dict_rows\": {DICT_ITEMS},\n  \"host_cores\": {cores},\n  \
         \"results\": [\n{entries}\n  ],\n  \
         \"gates\": {{\n{gates}\n  }},\n  \
         \"filter_groupby_1pct_speedup\": {:.3},\n  \
         \"residual_heavy_speedup\": {:.3}\n}}\n",
        DAYS * SALES_PER_DAY,
        speedup("agg_filter_groupby_1pct"),
        speedup("join_residual_heavy"),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pir_agg.json");
    std::fs::write(path, &json).unwrap();
    eprintln!("wrote {path}");
    eprintln!(
        "filter→group-by 1%: {:.2}x, residual-heavy join: {:.2}x with compiled kernels",
        speedup("agg_filter_groupby_1pct"),
        speedup("join_residual_heavy")
    );
}
