//! Histogram-driven planning benchmark.
//!
//! Simulated cluster milliseconds (`QueryResult::sim_ms` — fully
//! deterministic, so one warmed measurement per case is exact) with
//! `hive.optimizer.histograms.enabled` on and off. The gate case is a
//! skewed multi-join the constant-selectivity planner gets backwards:
//! a dimension filter on a heavy-hitter value that 1/NDV estimates as
//! rare (so the huge join runs first) versus a range filter the 1/3
//! default overestimates (so the tiny join runs last). Histogram
//! selectivities flip the order and the intermediate collapses from
//! ~90% of the fact table to ~1%. The curated TPC-DS suite rides along
//! gated at 0.95x: better estimates must never cost any query more
//! than 5% of simulated time.
//!
//! Results land in `BENCH_optstats.json` at the repo root, including
//! the `gates` floors `scripts/bench_check.py` re-validates on every
//! verify run.
//!
//! Run: `cargo bench -p hive-bench --bench optstats` (or via
//! scripts/verify.sh; `HIVE_STATS_SWEEP=1` runs the test-suite sweep).

use hive_benchdata::tpcds::{self, TpcdsScale};
use hive_common::HiveConf;
use hive_core::HiveServer;

const FACT_ROWS: usize = 40_000;
const DIM_ROWS: usize = 1_000;

fn server(histograms: bool) -> HiveServer {
    let mut conf = HiveConf::v3_1();
    conf.histograms_enabled = histograms;
    conf.results_cache = false;
    HiveServer::new(conf)
}

/// The misestimate shape: `dima.attr` holds one heavy hitter (900 of
/// 1000 rows are attr=1, the rest distinct — NDV 101, so 1/NDV calls
/// the equality filter ~1%-selective when it really keeps 90%), while
/// `dimb.attr` is uniform-distinct (the 1/3 range default calls
/// `attr <= 10` 333 rows when it really keeps 11).
fn load_skewed(server: &HiveServer) {
    let s = server.session();
    s.execute("CREATE TABLE skew_fact (ka INT, kb INT, v INT)")
        .unwrap();
    for chunk in 0..(FACT_ROWS / 1000) {
        let values: Vec<String> = (0..1000)
            .map(|i| {
                let n = chunk * 1000 + i;
                format!("({}, {}, {})", n % DIM_ROWS, (n * 7) % DIM_ROWS, n % 97)
            })
            .collect();
        s.execute(&format!(
            "INSERT INTO skew_fact VALUES {}",
            values.join(", ")
        ))
        .unwrap();
    }
    let dima: Vec<String> = (0..DIM_ROWS)
        .map(|i| format!("({}, {})", i, if i < 900 { 1 } else { i as i64 }))
        .collect();
    s.execute("CREATE TABLE dima (ka INT, attr INT)").unwrap();
    s.execute(&format!("INSERT INTO dima VALUES {}", dima.join(", ")))
        .unwrap();
    let dimb: Vec<String> = (0..DIM_ROWS).map(|i| format!("({i}, {i})")).collect();
    s.execute("CREATE TABLE dimb (kb INT, attr INT)").unwrap();
    s.execute(&format!("INSERT INTO dimb VALUES {}", dimb.join(", ")))
        .unwrap();
}

const SKEWED_SQL: &str = "SELECT COUNT(*), SUM(f.v) FROM skew_fact f \
     JOIN dima a ON f.ka = a.ka JOIN dimb b ON f.kb = b.kb \
     WHERE a.attr = 1 AND b.attr <= 10";

/// TPC-DS warehouse for the ride-along suite: large enough that join
/// order and Bloom sizing show up in simulated time.
fn suite_scale() -> TpcdsScale {
    TpcdsScale {
        days: 8,
        items: 150,
        customers: 200,
        stores: 4,
        sales_per_day: 1500,
        return_rate: 0.1,
    }
}

/// Warmed deterministic sim-time: the first run pays cold-cache
/// penalties, the second is the steady state both settings compare at.
fn sim_ms(server: &HiveServer, sql: &str) -> f64 {
    server.session().execute(sql).unwrap();
    server.session().execute(sql).unwrap().sim_ms
}

fn gate_floor(name: &str) -> f64 {
    match name {
        "skewed_multijoin" => 1.5,
        _ => 0.95,
    }
}

fn main() {
    // The env knobs (set by HIVE_STATS_SWEEP test runs) must not
    // override the settings this harness manages itself.
    std::env::remove_var("HIVE_HISTOGRAMS_ENABLED");
    std::env::remove_var("HIVE_PIR_ENABLED");
    std::env::remove_var("HIVE_SELVEC_ENABLED");
    std::env::remove_var("HIVE_DICT_ENABLED");
    std::env::remove_var("HIVE_RAWTABLE_ENABLED");
    std::env::remove_var("HIVE_PARALLEL_THREADS");

    // (name, hist_on_ms, hist_off_ms)
    let mut results: Vec<(String, f64, f64)> = Vec::new();

    let on = server(true);
    let off = server(false);
    load_skewed(&on);
    load_skewed(&off);
    assert_eq!(
        on.session().execute(SKEWED_SQL).unwrap().display_rows(),
        off.session().execute(SKEWED_SQL).unwrap().display_rows(),
        "skewed_multijoin diverged between histogram settings"
    );
    results.push((
        "skewed_multijoin".to_string(),
        sim_ms(&on, SKEWED_SQL),
        sim_ms(&off, SKEWED_SQL),
    ));

    let on = server(true);
    let off = server(false);
    tpcds::load(&on, suite_scale(), 0xBE5C).unwrap();
    tpcds::load(&off, suite_scale(), 0xBE5C).unwrap();
    for q in &tpcds::queries() {
        assert_eq!(
            on.session().execute(&q.sql).unwrap().display_rows(),
            off.session().execute(&q.sql).unwrap().display_rows(),
            "{} diverged between histogram settings",
            q.id
        );
        results.push((q.id.to_string(), sim_ms(&on, &q.sql), sim_ms(&off, &q.sql)));
    }

    for (name, on_ms, off_ms) in &results {
        eprintln!(
            "{name:<30} hist={on_ms:9.3} simms  const={off_ms:9.3} simms  ({:.2}x)",
            off_ms / on_ms
        );
        let floor = gate_floor(name);
        assert!(
            off_ms / on_ms >= floor,
            "{name} fell below its {floor:.2}x floor ({:.3}x)",
            off_ms / on_ms
        );
    }

    let mut entries = String::new();
    for (name, on_ms, off_ms) in &results {
        if !entries.is_empty() {
            entries.push_str(",\n");
        }
        entries.push_str(&format!(
            "    {{\"case\": \"{name}\", \"hist_on_ms\": {on_ms:.3}, \
             \"hist_off_ms\": {off_ms:.3}, \"speedup\": {:.3}}}",
            off_ms / on_ms
        ));
    }
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut gates = String::new();
    for (name, _, _) in &results {
        if !gates.is_empty() {
            gates.push_str(",\n");
        }
        gates.push_str(&format!("    \"{name}\": {:.2}", gate_floor(name)));
    }
    let skew = results
        .iter()
        .find(|(n, _, _)| n == "skewed_multijoin")
        .map(|(_, on, off)| off / on)
        .unwrap_or(f64::NAN);
    let json = format!(
        "{{\n  \"bench\": \"optstats\",\n  \"unit\": \"sim_ms\",\n  \
         \"fact_rows\": {FACT_ROWS},\n  \"host_cores\": {cores},\n  \
         \"results\": [\n{entries}\n  ],\n  \
         \"gates\": {{\n{gates}\n  }},\n  \
         \"skewed_multijoin_speedup\": {skew:.3}\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_optstats.json");
    std::fs::write(path, &json).unwrap();
    eprintln!("wrote {path}");
    eprintln!("skewed multi-join: {skew:.2}x simulated time with histogram planning");
}
