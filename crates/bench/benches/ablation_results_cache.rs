//! **§4.3** — the query results cache: repeat-query speedup, snapshot
//! invalidation on writes, and the pending-entry protection against a
//! thundering herd of identical queries.

use hive_bench::{banner, ms};
use hive_benchdata::tpcds;
use hive_common::HiveConf;
use hive_core::HiveServer;
use std::sync::Arc;

fn main() {
    banner("Ablation: query results cache (§4.3)");
    let server = HiveServer::new(HiveConf::v3_1());
    tpcds::load(&server, tpcds::TpcdsScale::bench(), 2019).expect("load");
    let session = server.session();
    let q = "SELECT i_category, SUM(ss_ext_sales_price) FROM store_sales, item \
             WHERE ss_item_sk = i_item_sk GROUP BY i_category";

    let cold = session.execute(q).unwrap();
    let warm = session.execute(q).unwrap();
    println!("\ncold (execute + fill): {}", ms(cold.sim_ms));
    println!(
        "repeat (cache hit):    {}  [from_cache={}]",
        ms(warm.sim_ms),
        warm.from_cache
    );
    println!("repeat speedup: {:.0}x", cold.sim_ms / warm.sim_ms);

    // Invalidation: one insert, the entry is expunged.
    session
        .execute(
            "INSERT INTO store_sales VALUES (1,1,1,1,1,1,999999,1,1.0,1.0,1.0,1.0,0.1,2451000)",
        )
        .unwrap();
    let after_write = session.execute(q).unwrap();
    println!(
        "after INSERT:          {}  [from_cache={}] (snapshot invalidation)",
        ms(after_write.sim_ms),
        after_write.from_cache
    );

    // Thundering herd: N threads fire the same (now cached-again) query
    // after another invalidating write; only one executes.
    session
        .execute(
            "INSERT INTO store_sales VALUES (2,1,1,1,1,1,999998,1,1.0,1.0,1.0,1.0,0.1,2451000)",
        )
        .unwrap();
    let server = Arc::new(server);
    let (h0, m0) = server.results_cache().stats();
    let threads: Vec<_> = (0..8)
        .map(|_| {
            let s = server.clone();
            let q = q.to_string();
            std::thread::spawn(move || s.session().execute(&q).unwrap().from_cache)
        })
        .collect();
    let from_cache_count = threads
        .into_iter()
        .map(|t| t.join().unwrap())
        .filter(|hit| *hit)
        .count();
    let (h1, m1) = server.results_cache().stats();
    println!(
        "\nthundering herd: 8 identical concurrent queries → {} misses (executions), {} served by cache/wait (pending-entry mode)",
        m1 - m0,
        (h1 - h0)
    );
    let _ = from_cache_count;
}
