//! **Figure 8** — "Comparison of query response times between native
//! Hive and federation to Druid": the 13 SSB queries over the
//! denormalized materialization, stored natively vs in the Druid
//! substrate with Calcite-style pushdown (§6.2, §7.3).
//!
//! Paper shape: Hive/Druid ≈ 1.6× faster than the native
//! materialization, because "Hive pushes most of the query computation
//! to Druid".

use hive_bench::{avg_sim_ms, banner, ms};
use hive_benchdata::ssb;
use hive_common::HiveConf;
use hive_core::HiveServer;

fn main() {
    banner("Figure 8: SSB — native materialization vs Druid federation");
    let scale = ssb::SsbScale::bench();
    let server = HiveServer::new(HiveConf::v3_1().with(|c| c.results_cache = false));
    let n = ssb::load_native(&server, scale, 2019).expect("native load");
    ssb::load_druid(&server, scale, 2019).expect("druid load");
    println!("loaded {n} flattened lineorder rows into both stores");

    let session = server.session();
    println!(
        "\n{:<6} {:>12} {:>12} {:>9}",
        "query", "hive", "hive/druid", "speedup"
    );
    let native = ssb::queries("ssb_flat");
    let druid = ssb::queries("ssb_flat_druid");
    let mut sum_native = 0.0;
    let mut sum_druid = 0.0;
    for ((id, nq), (_, dq)) in native.iter().zip(&druid) {
        let tn = avg_sim_ms(&session, nq, 1, 3);
        let td = avg_sim_ms(&session, dq, 1, 3);
        sum_native += tn;
        sum_druid += td;
        println!("{id:<6} {:>12} {:>12} {:>8.1}x", ms(tn), ms(td), tn / td);
    }
    println!(
        "\naggregate: native {} vs druid {} — federation speedup {:.1}x (paper: 1.6x)",
        ms(sum_native),
        ms(sum_druid),
        sum_native / sum_druid
    );
}
