//! **Figure 7** — "Comparison of query response times among different
//! Hive versions": the TPC-DS-derived query set on Hive 3.1 (Tez +
//! LLAP + full optimizer) versus the Hive 1.2 emulation (MapReduce
//! runtime, row interpreter, reduced optimizer, reduced SQL surface).
//!
//! Paper shape to reproduce: only a subset of queries runs on 1.2 at
//! all; for those, 3.1 is faster by a large average factor (paper: 4.6×
//! average, up to 45×), and 3.1's *full-set* aggregate time undercuts
//! 1.2's subset aggregate (paper: by 15%).

use hive_bench::{avg_sim_ms, banner, ms};
use hive_benchdata::tpcds;
use hive_common::HiveConf;
use hive_core::HiveServer;

fn main() {
    banner("Figure 7: Hive 1.2 vs Hive 3.1 — TPC-DS-derived query set");
    let scale = tpcds::TpcdsScale::bench();
    let server = HiveServer::new(HiveConf::v3_1());
    let rows = tpcds::load(&server, scale, 2019).expect("load");
    println!("loaded {rows} rows (store_sales: {})", scale.fact_rows());

    // The paper measures execution, not the results cache.
    let base_31 = HiveConf::v3_1().with(|c| c.results_cache = false);
    let base_12 = HiveConf::v1_2().with(|c| c.results_cache = false);
    let session = server.session();

    let queries = tpcds::queries();
    let mut t31: Vec<(String, f64)> = Vec::new();
    let mut t12: Vec<(String, Option<f64>)> = Vec::new();

    server.set_conf(|c| *c = base_31.clone());
    for q in &queries {
        let t = avg_sim_ms(&session, &q.sql, 1, 3);
        t31.push((q.id.to_string(), t));
    }
    server.set_conf(|c| *c = base_12.clone());
    for q in &queries {
        let t = match session.execute(&q.sql) {
            Ok(_) => Some(avg_sim_ms(&session, &q.sql, 0, 2)),
            Err(e) => {
                assert!(!q.v1_2_ok, "{} unexpectedly failed on 1.2: {e}", q.id);
                None
            }
        };
        t12.push((q.id.to_string(), t));
    }
    server.set_conf(|c| *c = base_31);

    println!(
        "\n{:<6} {:>12} {:>12} {:>9}",
        "query", "hive-1.2", "hive-3.1", "speedup"
    );
    let mut sum31_all = 0.0;
    let mut sum31_subset = 0.0;
    let mut sum12 = 0.0;
    let mut speedups: Vec<f64> = Vec::new();
    for ((id, t3), (_, t1)) in t31.iter().zip(&t12) {
        sum31_all += t3;
        match t1 {
            Some(t1) => {
                sum12 += t1;
                sum31_subset += t3;
                let s = t1 / t3;
                speedups.push(s);
                println!("{id:<6} {:>12} {:>12} {:>8.1}x", ms(*t1), ms(*t3), s);
            }
            None => {
                println!("{id:<6} {:>12} {:>12} {:>9}", "FAILED", ms(*t3), "-");
            }
        }
    }
    let ran = speedups.len();
    let geo: f64 = (speedups.iter().map(|s| s.ln()).sum::<f64>() / ran.max(1) as f64).exp();
    let max = speedups.iter().cloned().fold(0.0, f64::max);
    println!(
        "\nqueries runnable on 1.2: {ran}/{} (paper: 50/99)",
        queries.len()
    );
    println!(
        "speedup on the shared subset: geo-mean {geo:.1}x, max {max:.1}x (paper: avg 4.6x, max 45.5x)"
    );
    println!(
        "aggregate: 1.2 subset {} vs 3.1 FULL set {} — 3.1 full set is {:.0}% of 1.2's subset time (paper: 15% lower, i.e. 85%)",
        ms(sum12),
        ms(sum31_all),
        100.0 * sum31_all / sum12
    );
    let _ = sum31_subset;
}
