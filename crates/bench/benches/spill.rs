//! Spill benchmark: the cost of degrading instead of failing. Each
//! case runs the same SQL twice — once with an unlimited per-query
//! budget (everything stays in memory) and once under a tiny budget
//! that forces the dominant blocking operator through the spill path —
//! and reports the wall-clock overhead, the bytes spilled, and the
//! broker's peak tracked memory.
//!
//! Cases (each named for the operator that dominates its spill):
//!
//! * **join** — self-join of the fact table on (ticket, item): the
//!   48k-row build side overflows the budget and runs as a grace join;
//!   a probe-side filter keeps the downstream aggregate small.
//! * **groupby** — GROUP BY (item, customer) with ~30k groups: the
//!   aggregation table partitions and merges through spill files.
//! * **sort** — ORDER BY over the full fact table: bounded in-memory
//!   runs plus a k-way merge.
//!
//! Every case asserts byte-identical rows between the arms before
//! timing. Results (real host timings, not simulated cluster time)
//! land in `BENCH_spill.json` at the repo root.
//!
//! Run: `cargo bench -p hive-bench --bench spill` (or via
//! scripts/verify.sh; `HIVE_SPILL_SWEEP=1` runs the test-suite sweep
//! first).

use hive_benchdata::tpcds::{self, TpcdsScale};
use hive_common::HiveConf;
use hive_core::HiveServer;
use std::time::Instant;

const ITERS: usize = 5;

/// Small enough that every case's blocking operator overflows it.
const TINY_BUDGET: usize = 32 * 1024;

fn time_ms(mut f: impl FnMut()) -> f64 {
    f(); // warmup
    let mut best = f64::INFINITY;
    for _ in 0..ITERS {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn scale() -> TpcdsScale {
    TpcdsScale {
        days: 12,
        items: 300,
        customers: 400,
        stores: 4,
        sales_per_day: 4000,
        return_rate: 0.1,
    }
}

fn load_server(budget: usize) -> HiveServer {
    let mut conf = HiveConf::v3_1();
    conf.memory_per_query_bytes = budget;
    // Time executions, not cache hits.
    conf.results_cache = false;
    let server = HiveServer::new(conf);
    tpcds::load(&server, scale(), 0xDA7A).unwrap();
    server
}

struct CaseResult {
    name: &'static str,
    in_memory_ms: f64,
    spill_ms: f64,
    bytes_spilled: u64,
    peak_memory_bytes: u64,
}

fn main() {
    // The env knobs (set by HIVE_*_SWEEP test runs) must not override
    // the budgets this harness sets explicitly.
    std::env::remove_var("HIVE_SPILL_ENABLED");
    std::env::remove_var("HIVE_MEMORY_BUDGET");
    std::env::remove_var("HIVE_RAWTABLE_ENABLED");
    std::env::remove_var("HIVE_SELVEC_ENABLED");
    std::env::remove_var("HIVE_DICT_ENABLED");
    std::env::remove_var("HIVE_PARALLEL_THREADS");

    let cases: [(&'static str, &'static str); 3] = [
        (
            "join",
            "SELECT COUNT(*), SUM(b.ss_quantity) FROM store_sales a \
             JOIN store_sales b ON a.ss_ticket_number = b.ss_ticket_number \
             AND a.ss_item_sk = b.ss_item_sk \
             WHERE a.ss_quantity < 5",
        ),
        (
            "groupby",
            "SELECT ss_item_sk, ss_customer_sk, COUNT(*), SUM(ss_quantity), \
             SUM(ss_ext_sales_price) FROM store_sales \
             GROUP BY ss_item_sk, ss_customer_sk",
        ),
        (
            "sort",
            "SELECT ss_ticket_number, ss_item_sk, ss_ext_sales_price \
             FROM store_sales \
             ORDER BY ss_ext_sales_price, ss_ticket_number, ss_item_sk",
        ),
    ];

    let unlimited = load_server(0);
    let tiny = load_server(TINY_BUDGET);
    let mut results: Vec<CaseResult> = Vec::new();
    for (name, sql) in cases {
        let base = unlimited.session().execute(sql).unwrap();
        assert_eq!(base.bytes_spilled, 0, "{name}: unlimited budget spilled");
        let spilled = tiny.session().execute(sql).unwrap();
        assert_eq!(
            spilled.display_rows(),
            base.display_rows(),
            "{name}: spill path diverged from the in-memory oracle"
        );
        assert!(
            spilled.bytes_spilled > 0,
            "{name}: tiny budget failed to force a spill"
        );
        let in_memory_ms = time_ms(|| {
            unlimited.session().execute(sql).unwrap();
        });
        let spill_ms = time_ms(|| {
            tiny.session().execute(sql).unwrap();
        });
        eprintln!(
            "{name:<8} in_memory {in_memory_ms:8.2} ms   spill {spill_ms:8.2} ms \
             ({:.0} KiB spilled, peak {} B)",
            spilled.bytes_spilled as f64 / 1024.0,
            spilled.peak_memory_bytes,
        );
        results.push(CaseResult {
            name,
            in_memory_ms,
            spill_ms,
            bytes_spilled: spilled.bytes_spilled,
            peak_memory_bytes: spilled.peak_memory_bytes,
        });
    }

    let mut entries = String::new();
    for r in &results {
        if !entries.is_empty() {
            entries.push_str(",\n");
        }
        entries.push_str(&format!(
            "    {{\"case\": \"{}\", \"in_memory_ms\": {:.3}, \"spill_ms\": {:.3}, \
             \"overhead\": {:.3}, \"bytes_spilled\": {}, \"peak_memory_bytes\": {}}}",
            r.name,
            r.in_memory_ms,
            r.spill_ms,
            r.spill_ms / r.in_memory_ms,
            r.bytes_spilled,
            r.peak_memory_bytes,
        ));
    }
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let json = format!(
        "{{\n  \"bench\": \"spill\",\n  \"unit\": \"ms\",\n  \"iters\": {ITERS},\n  \
         \"budget_bytes\": {TINY_BUDGET},\n  \"host_cores\": {cores},\n  \
         \"results\": [\n{entries}\n  ]\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_spill.json");
    std::fs::write(path, &json).unwrap();
    eprintln!("wrote {path}");
    print!("{json}");
}
