//! Criterion micro-benchmarks over the individual subsystems: the corc
//! file format, the LRFU cache, the hash join and aggregation kernels,
//! the SQL parser, and the optimizer pipeline. These measure *real*
//! wall-clock time (unlike the figure harnesses, which report the
//! simulated cluster model).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use hive_common::{DataType, Field, HiveConf, Row, Schema, Value, VectorBatch};
use hive_corc::{writer::write_batch_to_bytes, ColumnPredicate, SearchArgument, WriterOptions};
use hive_exec::{aggregate::execute_aggregate, join::execute_join};
use hive_llap::cache::{ChunkKey, LlapCache};
use hive_metastore::{Metastore, TableBuilder, TableStats};
use hive_optimizer::plan::JoinType;
use hive_optimizer::{
    AggExpr, AggFunc, Analyzer, MetastoreCatalog, Optimizer, OptimizerContext, ScalarExpr,
};

fn sales_batch(n: usize) -> VectorBatch {
    let schema = Schema::new(vec![
        Field::new("k", DataType::BigInt),
        Field::new("cat", DataType::String),
        Field::new("price", DataType::Decimal(7, 2)),
    ]);
    let rows: Vec<Row> = (0..n)
        .map(|i| {
            Row::new(vec![
                Value::BigInt(i as i64),
                Value::String(format!("cat{}", i % 16)),
                Value::Decimal((i % 10_000) as i128, 2),
            ])
        })
        .collect();
    VectorBatch::from_rows(&schema, &rows).unwrap()
}

fn bench_corc(c: &mut Criterion) {
    let batch = sales_batch(50_000);
    c.bench_function("corc/write_50k_rows", |b| {
        b.iter(|| write_batch_to_bytes(&batch, WriterOptions::default()).unwrap())
    });
    let fs = hive_dfs::DistFs::new();
    let path = hive_dfs::DfsPath::new("/bench/f0");
    fs.create(
        &path,
        write_batch_to_bytes(&batch, WriterOptions::default()).unwrap(),
    )
    .unwrap();
    let file = hive_corc::CorcFile::open(&fs, &path).unwrap();
    c.bench_function("corc/read_all_50k_rows", |b| {
        b.iter(|| file.read_all().unwrap())
    });
    c.bench_function("corc/sarg_rowgroup_selection", |b| {
        let sarg = SearchArgument::with(vec![ColumnPredicate::Between(
            0,
            Value::BigInt(20_000),
            Value::BigInt(21_000),
        )]);
        b.iter(|| file.selected_row_groups(&sarg))
    });
}

fn bench_llap_cache(c: &mut Criterion) {
    let cache = LlapCache::new(64 << 20, 0.5);
    let col = hive_common::ColumnVector::BigInt((0..10_000).collect(), None);
    for i in 0..64u64 {
        let col = col.clone();
        cache
            .get_or_load(
                ChunkKey {
                    file: hive_common::FileId(i),
                    column: 0,
                    row_group: 0,
                },
                move || Ok(col),
            )
            .unwrap();
    }
    c.bench_function("llap/cache_hit", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 64;
            cache
                .get_or_load(
                    ChunkKey {
                        file: hive_common::FileId(i),
                        column: 0,
                        row_group: 0,
                    },
                    || unreachable!("must hit"),
                )
                .unwrap()
        })
    });
}

fn bench_exec_kernels(c: &mut Criterion) {
    let left = sales_batch(50_000);
    let right = sales_batch(2_000);
    let out_schema = left.schema().join(right.schema());
    c.bench_function("exec/hash_join_50k_x_2k", |b| {
        b.iter(|| {
            execute_join(
                &left,
                &right,
                JoinType::Inner,
                &[(ScalarExpr::Column(0), ScalarExpr::Column(0))],
                &None,
                &out_schema,
                usize::MAX,
            )
            .unwrap()
        })
    });
    let agg_schema = {
        let plan = hive_optimizer::plan::LogicalPlan::Aggregate {
            input: std::sync::Arc::new(hive_optimizer::plan::LogicalPlan::Values {
                schema: left.schema().clone(),
                rows: vec![],
            }),
            group_exprs: vec![ScalarExpr::Column(1)],
            grouping_sets: None,
            aggs: vec![AggExpr {
                func: AggFunc::Sum,
                arg: Some(ScalarExpr::Column(2)),
                distinct: false,
            }],
        };
        plan.schema()
    };
    c.bench_function("exec/hash_aggregate_50k", |b| {
        b.iter(|| {
            execute_aggregate(
                &left,
                &[ScalarExpr::Column(1)],
                &None,
                &[AggExpr {
                    func: AggFunc::Sum,
                    arg: Some(ScalarExpr::Column(2)),
                    distinct: false,
                }],
                &agg_schema,
            )
            .unwrap()
        })
    });
}

fn bench_frontend(c: &mut Criterion) {
    let sql = "SELECT i_category, SUM(ss_sales_price) AS s
               FROM store_sales, item, date_dim
               WHERE ss_item_sk = i_item_sk AND ss_sold_date_sk = d_date_sk
                 AND d_year = 2000 AND i_category IN ('Sports', 'Books')
               GROUP BY i_category HAVING SUM(ss_sales_price) > 100
               ORDER BY s DESC LIMIT 10";
    c.bench_function("sql/parse_star_join", |b| {
        b.iter(|| hive_sql::parse_sql(sql).unwrap())
    });

    // Analyzer + optimizer over a realistic catalog.
    let ms = Metastore::new();
    ms.create_table(
        TableBuilder::new(
            "default",
            "store_sales",
            Schema::new(vec![
                Field::new("ss_item_sk", DataType::Int),
                Field::new("ss_sold_date_sk", DataType::Int),
                Field::new("ss_sales_price", DataType::Decimal(7, 2)),
            ]),
        )
        .build(),
    )
    .unwrap();
    ms.create_table(
        TableBuilder::new(
            "default",
            "item",
            Schema::new(vec![
                Field::new("i_item_sk", DataType::Int),
                Field::new("i_category", DataType::String),
            ]),
        )
        .build(),
    )
    .unwrap();
    ms.create_table(
        TableBuilder::new(
            "default",
            "date_dim",
            Schema::new(vec![
                Field::new("d_date_sk", DataType::Int),
                Field::new("d_year", DataType::Int),
            ]),
        )
        .build(),
    )
    .unwrap();
    let mut stats = TableStats::new(3);
    stats.row_count = 1_000_000;
    ms.set_table_stats("default.store_sales", stats);
    let conf = HiveConf::v3_1();
    let ast = match hive_sql::parse_sql(sql).unwrap() {
        hive_sql::Statement::Query(q) => q,
        _ => unreachable!(),
    };
    c.bench_function("optimizer/analyze_and_optimize_star_join", |b| {
        b.iter_batched(
            || ast.clone(),
            |q| {
                let cat = MetastoreCatalog::new(ms.clone(), "default");
                let plan = Analyzer::new(&cat).analyze_query(&q).unwrap();
                let ctx = OptimizerContext {
                    metastore: &ms,
                    conf: &conf,
                    usable_views: vec![],
                    feedback: Default::default(),
                };
                Optimizer::optimize(plan, &ctx).unwrap()
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_corc,
    bench_llap_cache,
    bench_exec_kernels,
    bench_frontend
);
criterion_main!(benches);
