//! **§4.6** — dynamic semijoin reduction: a star join whose dimension
//! filter is highly selective. With the optimization on, the dimension
//! side runs first and its keys (min/max + Bloom filter) skip fact row
//! groups; on a partition-keyed join it prunes whole partitions.

use hive_bench::{banner, ms};
use hive_benchdata::tpcds;
use hive_common::HiveConf;
use hive_core::HiveServer;

fn main() {
    banner("Ablation: dynamic semijoin reduction (§4.6)");
    let server = HiveServer::new(HiveConf::v3_1());
    tpcds::load(&server, tpcds::TpcdsScale::bench(), 2019).expect("load");
    let session = server.session();

    // Index semijoin: filter on item, reduce the fact scan. Row-group
    // skipping needs the fact data clustered on the join key (Hive
    // users sort/cluster fact tables for exactly this reason), so the
    // harness also measures a key-sorted copy of the fact table.
    session
        .execute(
            "CREATE TABLE store_sales_by_item AS
             SELECT ss_item_sk, ss_ext_sales_price FROM store_sales ORDER BY ss_item_sk",
        )
        .expect("ctas");
    let index_q = "SELECT SUM(ss_ext_sales_price) FROM store_sales, item \
                   WHERE ss_item_sk = i_item_sk AND i_category = 'Sports'";
    let index_sorted_q = "SELECT SUM(ss_ext_sales_price) FROM store_sales_by_item, item \
                          WHERE ss_item_sk = i_item_sk AND i_category = 'Sports'";
    // Dynamic partition pruning: filter on date_dim, fact partitioned by
    // the join key.
    let dpp_q = "SELECT SUM(ss_ext_sales_price) FROM store_sales, date_dim \
                 WHERE ss_sold_date_sk = d_date_sk AND d_moy = 2 AND d_dom <= 7";

    println!(
        "\n{:<26} {:>12} {:>14} {:>12}",
        "query / mode", "time", "disk bytes", "rows out"
    );
    for (label, sql) in [
        ("index semijoin (random)", index_q),
        ("index semijoin (clustered)", index_sorted_q),
        ("partition pruning", dpp_q),
    ] {
        for (mode, enabled) in [("off", false), ("on", true)] {
            server.set_conf(|c| {
                *c = HiveConf::v3_1().with(|c| {
                    c.results_cache = false;
                    c.llap_enabled = false; // observe raw I/O
                    c.semijoin_reduction = enabled;
                })
            });
            session.execute(sql).unwrap(); // warm metadata
            let r = session.execute(sql).unwrap();
            println!(
                "{:<26} {:>12} {:>14} {:>12}",
                format!("{label} [{mode}]"),
                ms(r.sim_ms),
                r.bytes_disk,
                r.num_rows()
            );
        }
    }
}
