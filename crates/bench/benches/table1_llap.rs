//! **Table 1** — "Response time improvement using LLAP": the full
//! TPC-DS-derived set on Hive 3.1 with LLAP enabled vs container-only
//! execution.
//!
//! Paper shape: container 41576 s vs LLAP 15540 s aggregate — LLAP
//! ~2.7× faster on warm caches.

use hive_bench::{avg_sim_ms, banner, ms};
use hive_benchdata::tpcds;
use hive_common::HiveConf;
use hive_core::HiveServer;

fn main() {
    banner("Table 1: container-only vs LLAP — aggregate TPC-DS response time");
    let scale = tpcds::TpcdsScale::bench();
    let server = HiveServer::new(HiveConf::v3_1());
    tpcds::load(&server, scale, 2019).expect("load");
    let session = server.session();
    let queries = tpcds::queries();

    let mut totals = Vec::new();
    for (label, llap) in [("Container (without LLAP)", false), ("LLAP", true)] {
        server.set_conf(|c| {
            *c = HiveConf::v3_1().with(|c| {
                c.results_cache = false;
                c.llap_enabled = llap;
            })
        });
        let mut total = 0.0;
        for q in &queries {
            total += avg_sim_ms(&session, &q.sql, 1, 3);
        }
        totals.push((label, total));
    }

    println!("\n{:<28} {:>16}", "Execution mode", "Total response");
    for (label, total) in &totals {
        println!("{label:<28} {:>16}", ms(*total));
    }
    let ratio = totals[0].1 / totals[1].1;
    println!("\nLLAP speedup: {ratio:.1}x (paper: 41576s / 15540s = 2.7x)");
}
