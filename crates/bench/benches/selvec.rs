//! Selection-vector execution benchmark.
//!
//! Two tiers, both toggling `hive.exec.selvec.enabled` semantics:
//!
//! * **Operator microbenchmarks** — filter-scan, filter→join, and
//!   filter→group-by over a cached in-memory batch at 1%/50%/99%
//!   selectivity. The compact path models what the engine does with the
//!   toggle off: deep-copy the columns out of the LLAP cache (the
//!   `fetch_chunk` clone), compact the filter's survivors, then run the
//!   operator. The selvec path runs the operator straight through the
//!   shared `(batch, selection)` pair.
//! * **Engine queries** — the same three pipeline shapes as SQL against
//!   a loaded TPC-DS warehouse under both settings (regression guard),
//!   plus the LLAP byte accounting: bytes loaded into the cache and
//!   bytes deep-copied out of it.
//!
//! Results (real host timings, not simulated cluster time) land in
//! `BENCH_selvec.json` at the repo root.
//!
//! Run: `cargo bench -p hive-bench --bench selvec` (or via
//! scripts/verify.sh; `HIVE_SELVEC_SWEEP=1` runs the test-suite sweep).

use hive_common::{
    ColumnVector, DataType, Field, HiveConf, Schema, SelBatch, SelVec, Value, VectorBatch,
};
use hive_core::HiveServer;
use hive_exec::aggregate::execute_aggregate_par;
use hive_exec::join::execute_join_par;
use hive_exec::kernels::filter_indices;
use hive_optimizer::plan::{JoinType, LogicalPlan};
use hive_optimizer::{AggExpr, AggFunc, ScalarExpr};
use hive_sql::BinaryOp;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

const ITERS: usize = 7;
const ROWS: usize = 600_000;
const DAYS: usize = 8;
const SALES_PER_DAY: usize = 25_000;

/// Best-of-N wall-clock milliseconds (min is the stable statistic for
/// speedup comparisons on a shared host).
fn time_ms(mut f: impl FnMut()) -> f64 {
    f(); // warmup (also warms the LLAP cache)
    let mut best = f64::INFINITY;
    for _ in 0..ITERS {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn rows_of(b: &VectorBatch) -> Vec<String> {
    b.to_rows().iter().map(|r| r.to_string()).collect()
}

// ---------------------------------------------------------------------
// Operator microbenchmarks
// ---------------------------------------------------------------------

/// The "cached" batch: a selectivity column (uniform 0..100), a group
/// key, a join key, and four payload columns.
fn cached_batch() -> VectorBatch {
    let schema = Schema::new(vec![
        Field::new("c", DataType::Int),
        Field::new("k", DataType::Int),
        Field::new("j", DataType::Int),
        Field::new("v1", DataType::Double),
        Field::new("v2", DataType::Double),
        Field::new("v3", DataType::BigInt),
        Field::new("v4", DataType::Double),
    ]);
    let cols = vec![
        Arc::new(ColumnVector::Int(
            (0..ROWS)
                .map(|i| ((i as u64 * 2654435761) % 100) as i32)
                .collect(),
            None,
        )),
        Arc::new(ColumnVector::Int(
            (0..ROWS).map(|i| (i % 6) as i32).collect(),
            None,
        )),
        Arc::new(ColumnVector::Int(
            (0..ROWS).map(|i| (i % 500) as i32).collect(),
            None,
        )),
        Arc::new(ColumnVector::Double(
            (0..ROWS).map(|i| i as f64 * 0.25 - 100.0).collect(),
            None,
        )),
        Arc::new(ColumnVector::Double(
            (0..ROWS).map(|i| (i % 97) as f64).collect(),
            None,
        )),
        Arc::new(ColumnVector::BigInt(
            (0..ROWS).map(|i| i as i64 % 1009).collect(),
            None,
        )),
        Arc::new(ColumnVector::Double(
            (0..ROWS).map(|i| ((i * 13) % 31) as f64).collect(),
            None,
        )),
    ];
    VectorBatch::from_arcs(schema, cols, ROWS).unwrap()
}

/// What the selvec-off engine does to use cached data: materialize a
/// private copy of every column (the `fetch_chunk` deep clone).
fn copy_out(batch: &VectorBatch) -> VectorBatch {
    let cols = batch
        .columns()
        .iter()
        .map(|c| Arc::new((**c).clone()))
        .collect();
    VectorBatch::from_arcs(batch.schema().clone(), cols, batch.num_rows()).unwrap()
}

fn pred(pct: u32) -> ScalarExpr {
    ScalarExpr::Binary {
        op: BinaryOp::Lt,
        left: Box::new(ScalarExpr::Column(0)),
        right: Box::new(ScalarExpr::Literal(Value::Int(pct as i32))),
    }
}

fn agg_schema(input: &Schema, groups: &[ScalarExpr], aggs: &[AggExpr]) -> Schema {
    LogicalPlan::Aggregate {
        input: Arc::new(LogicalPlan::Values {
            schema: input.clone(),
            rows: vec![],
        }),
        group_exprs: groups.to_vec(),
        grouping_sets: None,
        aggs: aggs.to_vec(),
    }
    .schema()
}

fn micro_cases(results: &mut Vec<(String, f64, f64)>) {
    let batch = cached_batch();
    let groups = vec![ScalarExpr::Column(1)];
    let aggs: Vec<AggExpr> = std::iter::once(AggExpr {
        func: AggFunc::Count,
        arg: None,
        distinct: false,
    })
    .chain([3usize, 4, 5, 6].into_iter().map(|c| AggExpr {
        func: AggFunc::Sum,
        arg: Some(ScalarExpr::Column(c)),
        distinct: false,
    }))
    .collect();
    let out_schema = agg_schema(batch.schema(), &groups, &aggs);

    // Small build side for the join probe: 500 keys, one payload.
    let build_schema = Schema::new(vec![
        Field::new("b_j", DataType::Int),
        Field::new("b_v", DataType::Double),
    ]);
    let build = VectorBatch::from_arcs(
        build_schema.clone(),
        vec![
            Arc::new(ColumnVector::Int((0..500).collect(), None)),
            Arc::new(ColumnVector::Double(
                (0..500).map(|i| i as f64 * 2.0).collect(),
                None,
            )),
        ],
        500,
    )
    .unwrap();
    let equi = vec![(ScalarExpr::Column(2), ScalarExpr::Column(0))];
    let join_out = {
        let mut fields = batch.schema().fields().to_vec();
        fields.extend(build_schema.fields().to_vec());
        Schema::new(fields)
    };
    let join_aggs = vec![
        AggExpr {
            func: AggFunc::Count,
            arg: None,
            distinct: false,
        },
        AggExpr {
            func: AggFunc::Sum,
            arg: Some(ScalarExpr::Column(8)),
            distinct: false,
        },
    ];
    let join_agg_schema = agg_schema(&join_out, &[], &join_aggs);

    for pct in [1u32, 50, 99] {
        let idx = filter_indices(&pred(pct), &batch).unwrap();

        // filter-scan: survivors leave the pipeline compacted (the
        // driver choke point); selvec defers the only copy to that
        // point, compact-mode pays the cache copy-out first.
        let on = time_ms(|| {
            let sb = SelBatch::new(batch.clone(), SelVec::Idx(idx.clone())).unwrap();
            std::hint::black_box(sb.compact());
        });
        let off = time_ms(|| {
            let private = copy_out(&batch);
            std::hint::black_box(private.take(&idx));
        });
        push(results, format!("filter_scan_{pct}pct"), on, off);

        // filter→group-by (the 1% row of this case is the issue's
        // gating filter→aggregate number).
        let run_on = || {
            let sb = SelBatch::new(batch.clone(), SelVec::Idx(idx.clone())).unwrap();
            execute_aggregate_par(&sb, &groups, &None, &aggs, &out_schema, 1, true, None, None)
                .unwrap()
        };
        let run_off = || {
            let private = copy_out(&batch).take(&idx);
            let sb = SelBatch::from_batch(private);
            execute_aggregate_par(&sb, &groups, &None, &aggs, &out_schema, 1, true, None, None)
                .unwrap()
        };
        assert_eq!(
            rows_of(&run_on()),
            rows_of(&run_off()),
            "groupby {pct}% diverged"
        );
        let on = time_ms(|| {
            run_on();
        });
        let off = time_ms(|| {
            run_off();
        });
        push(results, format!("filter_groupby_{pct}pct"), on, off);

        // filter→join→aggregate: the filtered fact side probes the
        // 500-row build side, survivors feed a COUNT/SUM.
        let run_on = || {
            let lsb = SelBatch::new(batch.clone(), SelVec::Idx(idx.clone())).unwrap();
            let rsb = SelBatch::from_batch(build.clone());
            let joined = execute_join_par(
                &lsb,
                &rsb,
                JoinType::Inner,
                &equi,
                &None,
                &join_out,
                usize::MAX,
                1,
                true,
                None,
                None,
            )
            .unwrap();
            let jsb = SelBatch::from_batch(joined);
            execute_aggregate_par(
                &jsb,
                &[],
                &None,
                &join_aggs,
                &join_agg_schema,
                1,
                true,
                None,
                None,
            )
            .unwrap()
        };
        let run_off = || {
            let private = copy_out(&batch).take(&idx);
            let lsb = SelBatch::from_batch(private);
            let rsb = SelBatch::from_batch(build.clone());
            let joined = execute_join_par(
                &lsb,
                &rsb,
                JoinType::Inner,
                &equi,
                &None,
                &join_out,
                usize::MAX,
                1,
                true,
                None,
                None,
            )
            .unwrap();
            let jsb = SelBatch::from_batch(joined);
            execute_aggregate_par(
                &jsb,
                &[],
                &None,
                &join_aggs,
                &join_agg_schema,
                1,
                true,
                None,
                None,
            )
            .unwrap()
        };
        assert_eq!(
            rows_of(&run_on()),
            rows_of(&run_off()),
            "join {pct}% diverged"
        );
        let on = time_ms(|| {
            run_on();
        });
        let off = time_ms(|| {
            run_off();
        });
        push(results, format!("filter_join_{pct}pct"), on, off);
    }
}

fn push(results: &mut Vec<(String, f64, f64)>, name: String, on: f64, off: f64) {
    eprintln!(
        "{name:<26} selvec={on:8.2} ms  compact={off:8.2} ms  ({:.2}x)",
        off / on
    );
    results.push((name, on, off));
}

// ---------------------------------------------------------------------
// Engine-level queries
// ---------------------------------------------------------------------

fn server(selvec: bool) -> HiveServer {
    use hive_benchdata::tpcds::{self, TpcdsScale};
    let mut conf = HiveConf::v3_1();
    conf.selvec_enabled = selvec;
    conf.results_cache = false;
    let server = HiveServer::new(conf);
    let scale = TpcdsScale {
        days: DAYS,
        items: 500,
        customers: 300,
        stores: 6,
        sales_per_day: SALES_PER_DAY,
        return_rate: 0.1,
    };
    tpcds::load(&server, scale, 0xBE5C).unwrap();
    server
}

/// `ss_customer_sk` is uniform random in 0..300 per row, so a
/// `< cutoff` predicate selects ~pct% of rows in *every* row group —
/// deliberately immune to min/max sarg pruning, which is the regime
/// where row-level selections (not file skipping) carry the filter.
fn engine_cases() -> Vec<(String, String)> {
    let mut out = Vec::new();
    for pct in [1u32, 50, 99] {
        let c = 300 * pct as usize / 100;
        out.push((
            format!("engine_filter_scan_{pct}pct"),
            format!(
                "SELECT ss_item_sk, ss_wholesale_cost, ss_list_price, ss_sales_price, \
                 ss_ext_sales_price, ss_net_profit FROM store_sales WHERE ss_customer_sk < {c}"
            ),
        ));
        out.push((
            format!("engine_filter_join_{pct}pct"),
            format!(
                "SELECT COUNT(*), SUM(ss_ext_sales_price), SUM(ss_net_profit), \
                 SUM(ss_list_price) FROM store_sales, item \
                 WHERE ss_item_sk = i_item_sk AND ss_customer_sk < {c}"
            ),
        ));
        out.push((
            format!("engine_filter_groupby_{pct}pct"),
            format!(
                "SELECT ss_store_sk, COUNT(*), SUM(ss_quantity), SUM(ss_wholesale_cost), \
                 SUM(ss_list_price), SUM(ss_sales_price), SUM(ss_ext_sales_price), \
                 SUM(ss_net_profit) FROM store_sales \
                 WHERE ss_customer_sk < {c} GROUP BY ss_store_sk ORDER BY ss_store_sk"
            ),
        ));
    }
    out
}

fn main() {
    // The env knobs (set by HIVE_SELVEC_SWEEP test runs) must not
    // override the settings this harness manages itself.
    std::env::remove_var("HIVE_SELVEC_ENABLED");
    std::env::remove_var("HIVE_DICT_ENABLED");
    std::env::remove_var("HIVE_PARALLEL_THREADS");

    // (name, selvec_on_ms, selvec_off_ms)
    let mut results: Vec<(String, f64, f64)> = Vec::new();
    micro_cases(&mut results);

    let cases = engine_cases();
    let mut engine: Vec<(String, f64, f64)> = cases
        .iter()
        .map(|(n, _)| (n.clone(), f64::NAN, f64::NAN))
        .collect();
    let mut cache = [(0u64, 0u64); 2]; // (bytes_loaded, bytes_copied_out) per setting
    let servers = [(0usize, server(true)), (1usize, server(false))];
    for (slot, server) in &servers {
        let session = server.session();
        for (i, (_, sql)) in cases.iter().enumerate() {
            let ms = time_ms(|| {
                session.execute(sql).unwrap();
            });
            if *slot == 0 {
                engine[i].1 = ms;
            } else {
                engine[i].2 = ms;
            }
        }
        let stats = server.llap().cache().stats();
        cache[*slot] = (
            stats.bytes_loaded.load(Ordering::Relaxed),
            stats.bytes_copied_out.load(Ordering::Relaxed),
        );
    }
    // Cross-check: the toggle must be invisible in results.
    for (name, sql) in &cases {
        assert_eq!(
            servers[0].1.session().execute(sql).unwrap().display_rows(),
            servers[1].1.session().execute(sql).unwrap().display_rows(),
            "{name} diverged between selvec settings"
        );
    }
    for (name, on, off) in engine {
        push(&mut results, name, on, off);
    }
    eprintln!(
        "cache bytes_loaded      on={} B  off={} B",
        cache[0].0, cache[1].0
    );
    eprintln!(
        "cache bytes_copied_out  on={} B  off={} B",
        cache[0].1, cache[1].1
    );

    let mut entries = String::new();
    for (name, on_ms, off_ms) in &results {
        if !entries.is_empty() {
            entries.push_str(",\n");
        }
        entries.push_str(&format!(
            "    {{\"case\": \"{name}\", \"selvec_on_ms\": {on_ms:.3}, \
             \"selvec_off_ms\": {off_ms:.3}, \"speedup\": {:.3}}}",
            off_ms / on_ms
        ));
    }
    let agg_1pct = results
        .iter()
        .find(|(n, _, _)| n == "filter_groupby_1pct")
        .map(|(_, on_ms, off_ms)| off_ms / on_ms)
        .unwrap_or(f64::NAN);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let json = format!(
        "{{\n  \"bench\": \"selvec\",\n  \"unit\": \"ms\",\n  \"iters\": {ITERS},\n  \
         \"micro_rows\": {ROWS},\n  \"engine_rows\": {},\n  \"host_cores\": {cores},\n  \
         \"results\": [\n{entries}\n  ],\n  \
         \"filter_agg_1pct_speedup\": {agg_1pct:.3},\n  \
         \"cache_bytes_loaded_selvec_on\": {},\n  \
         \"cache_bytes_loaded_selvec_off\": {},\n  \
         \"cache_bytes_copied_out_selvec_on\": {},\n  \
         \"cache_bytes_copied_out_selvec_off\": {}\n}}\n",
        DAYS * SALES_PER_DAY,
        cache[0].0,
        cache[1].0,
        cache[0].1,
        cache[1].1,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_selvec.json");
    std::fs::write(path, &json).unwrap();
    eprintln!("wrote {path}");
    eprintln!("1%-selectivity filter→group-by: {agg_1pct:.2}x with selection vectors");
}
