//! Physical-IR execution benchmark.
//!
//! Engine-level queries against a loaded TPC-DS warehouse with
//! `hive.exec.pir.enabled` on and off. The case grid covers the
//! filter→aggregate shapes BENCH_selvec.json records at ≤1.14x for
//! selection vectors alone (scan / join / group-by at 1/50/99%
//! selectivity), a multi-conjunct predicate where compiled conjunct
//! ordering short-circuits through the selection vector, an explicit
//! filter→project→aggregate chain, and dictionary versus plain string
//! predicates over a string-heavy item table.
//!
//! Results (real host timings, not simulated cluster time) land in
//! `BENCH_pir.json` at the repo root, including the `gates` floors
//! `scripts/bench_check.py` re-validates on every verify run.
//!
//! Run: `cargo bench -p hive-bench --bench pir` (or via
//! scripts/verify.sh; `HIVE_PIR_SWEEP=1` runs the test-suite sweep).

use hive_benchdata::tpcds::{self, TpcdsScale};
use hive_common::HiveConf;
use hive_core::HiveServer;
use std::time::Instant;

const ITERS: usize = 7;
const DAYS: usize = 8;
const SALES_PER_DAY: usize = 25_000;
const DICT_ITEMS: usize = 120_000;

/// Best-of-N wall-clock milliseconds for two alternatives, measured
/// *interleaved* (a-b-a-b…) so background load on a shared host skews
/// both sides alike instead of whichever ran second. Min is the stable
/// statistic for speedup comparisons.
fn time_pair_ms(mut a: impl FnMut(), mut b: impl FnMut()) -> (f64, f64) {
    a(); // warmup (also warms the LLAP cache)
    b();
    let mut best = (f64::INFINITY, f64::INFINITY);
    for _ in 0..ITERS {
        let t0 = Instant::now();
        a();
        best.0 = best.0.min(t0.elapsed().as_secs_f64() * 1e3);
        let t0 = Instant::now();
        b();
        best.1 = best.1.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn server(pir: bool, scale: TpcdsScale) -> HiveServer {
    let mut conf = HiveConf::v3_1();
    conf.pir_enabled = pir;
    conf.results_cache = false;
    let server = HiveServer::new(conf);
    tpcds::load(&server, scale, 0xBE5C).unwrap();
    server
}

/// The fact-table warehouse: 200k store_sales rows, `ss_customer_sk`
/// uniform in 0..300 so `< cutoff` predicates select ~pct% in every
/// row group (immune to min/max sarg pruning — the filter is carried
/// by row-level selections, not file skipping).
fn fact_scale() -> TpcdsScale {
    TpcdsScale {
        days: DAYS,
        items: 500,
        customers: 300,
        stores: 6,
        sales_per_day: SALES_PER_DAY,
        return_rate: 0.1,
    }
}

/// The string-heavy warehouse: a 120k-row item table whose i_category
/// and i_brand columns dictionary-encode (low cardinality) while
/// i_item_id stays a plain string column (unique values).
fn dict_scale() -> TpcdsScale {
    TpcdsScale {
        days: 1,
        items: DICT_ITEMS,
        customers: 50,
        stores: 2,
        sales_per_day: 500,
        return_rate: 0.1,
    }
}

fn fact_cases() -> Vec<(String, String)> {
    let mut out = Vec::new();
    for pct in [1u32, 50, 99] {
        let c = 300 * pct as usize / 100;
        out.push((
            format!("engine_filter_scan_{pct}pct"),
            format!(
                "SELECT ss_item_sk, ss_wholesale_cost, ss_list_price, ss_sales_price, \
                 ss_ext_sales_price, ss_net_profit FROM store_sales WHERE ss_customer_sk < {c}"
            ),
        ));
        out.push((
            format!("engine_filter_join_{pct}pct"),
            format!(
                "SELECT COUNT(*), SUM(ss_ext_sales_price), SUM(ss_net_profit), \
                 SUM(ss_list_price) FROM store_sales, item \
                 WHERE ss_item_sk = i_item_sk AND ss_customer_sk < {c}"
            ),
        ));
        out.push((
            format!("engine_filter_groupby_{pct}pct"),
            format!(
                "SELECT ss_store_sk, COUNT(*), SUM(ss_quantity), SUM(ss_wholesale_cost), \
                 SUM(ss_list_price), SUM(ss_sales_price), SUM(ss_ext_sales_price), \
                 SUM(ss_net_profit) FROM store_sales \
                 WHERE ss_customer_sk < {c} GROUP BY ss_store_sk ORDER BY ss_store_sk"
            ),
        ));
    }
    // Four conjuncts of mixed cost and selectivity: compiled ordering
    // runs the cheap 1%-selective comparison first and short-circuits
    // the rest through the shrinking selection.
    out.push((
        "engine_multi_conjunct_1pct".to_string(),
        "SELECT ss_store_sk, COUNT(*), SUM(ss_ext_sales_price), SUM(ss_net_profit) \
         FROM store_sales WHERE ss_customer_sk < 3 AND ss_quantity > 2 \
         AND ss_list_price < 80.0 AND ss_net_profit <> 0 \
         GROUP BY ss_store_sk ORDER BY ss_store_sk"
            .to_string(),
    ));
    // Filter→project→aggregate: the projection computes derived
    // columns, so the fused chain includes a real Project stage.
    out.push((
        "engine_filter_project_agg_1pct".to_string(),
        "SELECT COUNT(*), SUM(margin), SUM(resale) FROM \
         (SELECT ss_ext_sales_price - ss_wholesale_cost * ss_quantity AS margin, \
          ss_list_price - ss_sales_price AS resale, ss_customer_sk \
          FROM store_sales) t WHERE ss_customer_sk < 3"
            .to_string(),
    ));
    out
}

fn dict_cases() -> Vec<(String, String)> {
    vec![
        (
            // Dictionary LIKE-prefix plus a dictionary ordering
            // comparison: both evaluate once per distinct entry.
            "engine_dict_like_agg".to_string(),
            "SELECT i_brand, COUNT(*), SUM(i_current_price) FROM item \
             WHERE i_category LIKE 'B%' AND i_brand > 'brand#25' \
             GROUP BY i_brand ORDER BY i_brand"
                .to_string(),
        ),
        (
            // Plain (non-dictionary) string column: per-row prefix
            // kernel, ~1% selective.
            "engine_str_prefix_agg".to_string(),
            "SELECT COUNT(*), SUM(i_current_price), MIN(i_item_id) FROM item \
             WHERE i_item_id LIKE 'ITEM00000%'"
                .to_string(),
        ),
    ]
}

/// Time every case against one PIR-on and one PIR-off server, checking
/// the toggle is invisible in results.
fn run_cases(cases: &[(String, String)], scale: TpcdsScale, results: &mut Vec<(String, f64, f64)>) {
    let on = server(true, scale);
    let off = server(false, scale);
    for (name, sql) in cases {
        assert_eq!(
            on.session().execute(sql).unwrap().display_rows(),
            off.session().execute(sql).unwrap().display_rows(),
            "{name} diverged between PIR settings"
        );
        let (on_ms, off_ms) = time_pair_ms(
            || {
                on.session().execute(sql).unwrap();
            },
            || {
                off.session().execute(sql).unwrap();
            },
        );
        eprintln!(
            "{name:<30} pir={on_ms:8.2} ms  interp={off_ms:8.2} ms  ({:.2}x)",
            off_ms / on_ms
        );
        results.push((name.clone(), on_ms, off_ms));
    }
}

fn main() {
    // The env knobs (set by HIVE_PIR_SWEEP test runs) must not
    // override the settings this harness manages itself.
    std::env::remove_var("HIVE_PIR_ENABLED");
    std::env::remove_var("HIVE_SELVEC_ENABLED");
    std::env::remove_var("HIVE_DICT_ENABLED");
    std::env::remove_var("HIVE_RAWTABLE_ENABLED");
    std::env::remove_var("HIVE_PARALLEL_THREADS");

    // (name, pir_on_ms, pir_off_ms)
    let mut results: Vec<(String, f64, f64)> = Vec::new();
    run_cases(&fact_cases(), fact_scale(), &mut results);
    run_cases(&dict_cases(), dict_scale(), &mut results);

    let speedup = |name: &str| -> f64 {
        results
            .iter()
            .find(|(n, _, _)| n == name)
            .map(|(_, on, off)| off / on)
            .unwrap_or(f64::NAN)
    };

    // The issue's gate: at least two of the 1%-selectivity engine
    // filter→aggregate cases (≤1.14x under selection vectors alone)
    // must clear 2x under PIR, and no case may regress below 0.95x.
    let one_pct = [
        "engine_filter_scan_1pct",
        "engine_filter_join_1pct",
        "engine_filter_groupby_1pct",
    ];
    let cleared = one_pct.iter().filter(|n| speedup(n) >= 2.0).count();
    assert!(
        cleared >= 2,
        "only {cleared} of the 1%-selectivity engine cases reached 2x"
    );
    for (name, on, off) in &results {
        assert!(
            off / on >= 0.95,
            "{name} regressed below 0.95x ({:.3}x)",
            off / on
        );
    }

    let mut entries = String::new();
    for (name, on_ms, off_ms) in &results {
        if !entries.is_empty() {
            entries.push_str(",\n");
        }
        entries.push_str(&format!(
            "    {{\"case\": \"{name}\", \"pir_on_ms\": {on_ms:.3}, \
             \"pir_off_ms\": {off_ms:.3}, \"speedup\": {:.3}}}",
            off_ms / on_ms
        ));
    }
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut gates = String::new();
    for (name, _, _) in &results {
        if !gates.is_empty() {
            gates.push_str(",\n");
        }
        let floor = match name.as_str() {
            "engine_filter_scan_1pct" | "engine_filter_groupby_1pct" => 2.0,
            _ => 0.95,
        };
        gates.push_str(&format!("    \"{name}\": {floor:.2}"));
    }
    let json = format!(
        "{{\n  \"bench\": \"pir\",\n  \"unit\": \"ms\",\n  \"iters\": {ITERS},\n  \
         \"engine_rows\": {},\n  \"dict_rows\": {DICT_ITEMS},\n  \"host_cores\": {cores},\n  \
         \"results\": [\n{entries}\n  ],\n  \
         \"gates\": {{\n{gates}\n  }},\n  \
         \"filter_groupby_1pct_speedup\": {:.3}\n}}\n",
        DAYS * SALES_PER_DAY,
        speedup("engine_filter_groupby_1pct"),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pir.json");
    std::fs::write(path, &json).unwrap();
    eprintln!("wrote {path}");
    eprintln!(
        "1%-selectivity filter→group-by: {:.2}x with compiled pipelines",
        speedup("engine_filter_groupby_1pct")
    );
}
