//! Flat-hash-table benchmark: the `hive.exec.rawtable.enabled` toggle
//! swaps every hash operator between the open-addressing [`RawTable`]
//! (fingerprint tags, arena keys, precomputed column-wise hashes) and
//! the legacy `HashMap`-of-owned-keys path. Both arms run the *same*
//! operator code through `execute_join_par` / `execute_aggregate_par`,
//! so the delta is the table representation alone.
//!
//! Cases:
//!
//! * **join_build** — build-heavy inner join: 400k-row build side with
//!   ~200k distinct keys, 20k-row probe side.
//! * **join_probe** — probe-heavy inner join: 2k-row build side, 600k
//!   probes at a ~50% hit rate.
//! * **groupby_highcard** — GROUP BY with ~200k distinct Int keys,
//!   COUNT(*) + SUM(Double).
//! * **groupby_lowcard** — the same aggregate over 8 groups (the regime
//!   where the table is tiny and the toggle must not regress).
//! * **distinct** — COUNT(DISTINCT x) + SUM(DISTINCT x) over 8 groups
//!   with ~100k distinct values per group set.
//!
//! Every case asserts byte-identical rows between the arms before
//! timing. Results (real host timings, not simulated cluster time)
//! land in `BENCH_hash.json` at the repo root.
//!
//! Run: `cargo bench -p hive-bench --bench hashtable` (or via
//! scripts/verify.sh; `HIVE_RAWTABLE_SWEEP=1` runs the test-suite
//! sweep first).

use hive_common::{ColumnVector, DataType, Field, Schema, SelBatch, VectorBatch};
use hive_exec::aggregate::execute_aggregate_par;
use hive_exec::join::execute_join_par;
use hive_optimizer::plan::{JoinType, LogicalPlan};
use hive_optimizer::{AggExpr, AggFunc, ScalarExpr};
use std::sync::Arc;
use std::time::Instant;

const ITERS: usize = 7;
const ROWS: usize = 600_000;

/// Best-of-N wall-clock milliseconds (min is the stable statistic for
/// speedup comparisons on a shared host).
fn time_ms(mut f: impl FnMut()) -> f64 {
    f(); // warmup
    let mut best = f64::INFINITY;
    for _ in 0..ITERS {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn rows_of(b: &VectorBatch) -> Vec<String> {
    b.to_rows().iter().map(|r| r.to_string()).collect()
}

/// Multiplicative scramble so adjacent rows do not hit adjacent keys.
fn scramble(i: usize, card: usize) -> i32 {
    ((i as u64).wrapping_mul(2654435761) % card as u64) as i32
}

fn int_col(vals: impl Iterator<Item = i32>) -> Arc<ColumnVector> {
    Arc::new(ColumnVector::Int(vals.collect(), None))
}

fn agg_schema(input: &Schema, groups: &[ScalarExpr], aggs: &[AggExpr]) -> Schema {
    LogicalPlan::Aggregate {
        input: Arc::new(LogicalPlan::Values {
            schema: input.clone(),
            rows: vec![],
        }),
        group_exprs: groups.to_vec(),
        grouping_sets: None,
        aggs: aggs.to_vec(),
    }
    .schema()
}

fn count_star() -> AggExpr {
    AggExpr {
        func: AggFunc::Count,
        arg: None,
        distinct: false,
    }
}

fn sum(col: usize) -> AggExpr {
    AggExpr {
        func: AggFunc::Sum,
        arg: Some(ScalarExpr::Column(col)),
        distinct: false,
    }
}

/// Time `run(rawtable)` with the flat table on and off, asserting the
/// rows match first.
fn case(results: &mut Vec<(String, f64, f64)>, name: &str, run: impl Fn(bool) -> VectorBatch) {
    assert_eq!(
        rows_of(&run(true)),
        rows_of(&run(false)),
        "{name} diverged between rawtable settings"
    );
    let on = time_ms(|| {
        std::hint::black_box(run(true));
    });
    let off = time_ms(|| {
        std::hint::black_box(run(false));
    });
    eprintln!(
        "{name:<18} rawtable={on:8.2} ms  hashmap={off:8.2} ms  ({:.2}x)",
        off / on
    );
    results.push((name.to_string(), on, off));
}

/// A fact batch: group keys at two cardinalities, a join/distinct key,
/// and a Double payload.
fn fact_batch() -> VectorBatch {
    let schema = Schema::new(vec![
        Field::new("k_hi", DataType::Int),
        Field::new("k_lo", DataType::Int),
        Field::new("j", DataType::Int),
        Field::new("v", DataType::Double),
    ]);
    let cols = vec![
        int_col((0..ROWS).map(|i| scramble(i, 200_000))),
        int_col((0..ROWS).map(|i| (i % 8) as i32)),
        int_col((0..ROWS).map(|i| scramble(i, 400_000))),
        Arc::new(ColumnVector::Double(
            (0..ROWS).map(|i| (i % 1009) as f64 * 0.5).collect(),
            None,
        )),
    ];
    VectorBatch::from_arcs(schema, cols, ROWS).unwrap()
}

fn build_batch(rows: usize, card: usize) -> VectorBatch {
    let schema = Schema::new(vec![
        Field::new("b_j", DataType::Int),
        Field::new("b_v", DataType::Double),
    ]);
    let cols = vec![
        int_col((0..rows).map(|i| scramble(i, card))),
        Arc::new(ColumnVector::Double(
            (0..rows).map(|i| i as f64 * 2.0).collect(),
            None,
        )),
    ];
    VectorBatch::from_arcs(schema, cols, rows).unwrap()
}

fn join_case(
    fact: &VectorBatch,
    probe_rows: usize,
    build: &VectorBatch,
) -> impl Fn(bool) -> VectorBatch {
    let equi = vec![(ScalarExpr::Column(2), ScalarExpr::Column(0))];
    let join_out = {
        let mut fields = fact.schema().fields().to_vec();
        fields.extend(build.schema().fields().to_vec());
        Schema::new(fields)
    };
    // Collapse the join output through an ungrouped COUNT/SUM so the
    // timing is the hash work, not result materialization.
    let aggs = vec![count_star(), sum(5)];
    let out_schema = agg_schema(&join_out, &[], &aggs);
    let fact = fact.clone();
    let build = build.clone();
    move |rawtable| {
        let lsb = SelBatch::new(
            fact.clone(),
            hive_common::SelVec::Idx((0..probe_rows as u32).collect()),
        )
        .unwrap();
        let rsb = SelBatch::from_batch(build.clone());
        let joined = execute_join_par(
            &lsb,
            &rsb,
            JoinType::Inner,
            &equi,
            &None,
            &join_out,
            usize::MAX,
            1,
            rawtable,
            None,
            None,
        )
        .unwrap();
        let jsb = SelBatch::from_batch(joined);
        execute_aggregate_par(
            &jsb,
            &[],
            &None,
            &aggs,
            &out_schema,
            1,
            rawtable,
            None,
            None,
        )
        .unwrap()
    }
}

fn main() {
    // The env knobs (set by HIVE_RAWTABLE_SWEEP test runs) must not
    // override the flags this harness passes explicitly.
    std::env::remove_var("HIVE_RAWTABLE_ENABLED");
    std::env::remove_var("HIVE_SELVEC_ENABLED");
    std::env::remove_var("HIVE_DICT_ENABLED");
    std::env::remove_var("HIVE_PARALLEL_THREADS");

    let mut results: Vec<(String, f64, f64)> = Vec::new();
    let fact = fact_batch();

    // join_build: the build side dominates (400k rows, ~200k keys).
    let big_build = build_batch(400_000, 200_000);
    case(
        &mut results,
        "join_build",
        join_case(&fact, 20_000, &big_build),
    );

    // join_probe: the probe side dominates (600k probes into 2k keys;
    // j is uniform in 0..400k so ~0.5% of probes hit).
    let small_build = build_batch(2_000, 400_000);
    case(
        &mut results,
        "join_probe",
        join_case(&fact, ROWS, &small_build),
    );

    // GROUP BY at both cardinalities: COUNT(*), SUM(v).
    for (name, key) in [("groupby_highcard", 0usize), ("groupby_lowcard", 1)] {
        let groups = vec![ScalarExpr::Column(key)];
        let aggs = vec![count_star(), sum(3)];
        let out_schema = agg_schema(fact.schema(), &groups, &aggs);
        let fact = &fact;
        case(&mut results, name, move |rawtable| {
            let sb = SelBatch::from_batch(fact.clone());
            execute_aggregate_par(
                &sb,
                &groups,
                &None,
                &aggs,
                &out_schema,
                1,
                rawtable,
                None,
                None,
            )
            .unwrap()
        });
    }

    // DISTINCT aggregates: 8 groups, ~100k distinct j values per set.
    {
        let groups = vec![ScalarExpr::Column(1)];
        let aggs = vec![
            AggExpr {
                func: AggFunc::Count,
                arg: Some(ScalarExpr::Column(2)),
                distinct: true,
            },
            AggExpr {
                func: AggFunc::Sum,
                arg: Some(ScalarExpr::Column(2)),
                distinct: true,
            },
        ];
        let out_schema = agg_schema(fact.schema(), &groups, &aggs);
        let fact = &fact;
        case(&mut results, "distinct", move |rawtable| {
            let sb = SelBatch::from_batch(fact.clone());
            execute_aggregate_par(
                &sb,
                &groups,
                &None,
                &aggs,
                &out_schema,
                1,
                rawtable,
                None,
                None,
            )
            .unwrap()
        });
    }

    let mut entries = String::new();
    for (name, on_ms, off_ms) in &results {
        if !entries.is_empty() {
            entries.push_str(",\n");
        }
        entries.push_str(&format!(
            "    {{\"case\": \"{name}\", \"rawtable_on_ms\": {on_ms:.3}, \
             \"rawtable_off_ms\": {off_ms:.3}, \"speedup\": {:.3}}}",
            off_ms / on_ms
        ));
    }
    let speedup_of = |case: &str| {
        results
            .iter()
            .find(|(n, _, _)| n == case)
            .map(|(_, on, off)| off / on)
            .unwrap_or(f64::NAN)
    };
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let json = format!(
        "{{\n  \"bench\": \"hashtable\",\n  \"unit\": \"ms\",\n  \"iters\": {ITERS},\n  \
         \"rows\": {ROWS},\n  \"host_cores\": {cores},\n  \
         \"results\": [\n{entries}\n  ],\n  \
         \"groupby_highcard_speedup\": {:.3},\n  \
         \"join_probe_speedup\": {:.3}\n}}\n",
        speedup_of("groupby_highcard"),
        speedup_of("join_probe"),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_hash.json");
    std::fs::write(path, &json).unwrap();
    eprintln!("wrote {path}");
}
