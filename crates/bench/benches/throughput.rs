//! Concurrent-serving throughput (paper §5.2, BigBench-style): drive
//! 1 / 4 / 16 tenant streams of curated TPC-DS queries through the
//! workload manager on the simulated timeline and measure aggregate
//! queries/hour of sim-time per stream count.
//!
//! The resource plan routes the `analysts` group (even streams) to the
//! `bi` pool and everything else to `etl`; pool parallelism is small
//! enough that 16 streams queue for admission, and a downgrade trigger
//! (threshold tuned to ~1.5× the median solo runtime) moves long
//! bi queries to etl mid-flight. `rows_per_task` is lowered so traced
//! parallel widths are a real fraction of the 80-slot cluster — the
//! max-min fair-share model then decides how much concurrency actually
//! pays.
//!
//! Before timing, every completed query is checked byte-identical to a
//! serial single-session run on a fresh server — concurrency may only
//! move sim-time, never rows. The 16-stream arm must clear ≥ 2× the
//! 1-stream rate.
//!
//! Results land in `BENCH_throughput.json` at the repo root.
//!
//! Run: `cargo bench -p hive-bench --bench throughput` (or via
//! scripts/verify.sh; `HIVE_WM_SWEEP=1` runs the determinism sweep
//! first).

use hive_benchdata::tpcds::{self, TpcdsScale};
use hive_common::HiveConf;
use hive_core::{run_streams, HiveServer, QueryStream, QueryVerdict, ServingOptions};
use hive_llap::{Mapping, Pool, ResourcePlan, Trigger, TriggerAction};
use std::collections::HashMap;

const STREAM_COUNTS: [usize; 3] = [1, 4, 16];
const QUERIES_PER_STREAM: usize = 8;

/// Lowered from the 100k default so bench-scale queries trace widths
/// of ~10–25 slots: enough that a handful of concurrent queries
/// saturate the 80-slot cluster and fair sharing becomes the limiter.
const ROWS_PER_TASK: usize = 2_000;

fn scale() -> TpcdsScale {
    TpcdsScale {
        days: 8,
        items: 150,
        customers: 200,
        stores: 4,
        sales_per_day: 3000,
        return_rate: 0.1,
    }
}

fn load_server() -> HiveServer {
    let mut conf = HiveConf::v3_1();
    conf.rows_per_task = ROWS_PER_TASK;
    // Measure executions, not cache hits: 16 streams replaying each
    // other's SQL from the results cache would be free concurrency.
    conf.results_cache = false;
    let server = HiveServer::new(conf);
    tpcds::load(&server, scale(), 0xDA7A).unwrap();
    server
}

/// Seeded LCG so stream scripts are deterministic and identical across
/// sweep arms (stream `i` runs the same script at 1, 4, and 16
/// streams).
fn make_streams(n: usize) -> Vec<QueryStream> {
    let queries = tpcds::queries();
    (0..n)
        .map(|i| {
            let mut state: u64 = 0x5EED_0000 + i as u64;
            let statements = (0..QUERIES_PER_STREAM)
                .map(|_| {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    queries[((state >> 33) as usize) % queries.len()]
                        .sql
                        .clone()
                })
                .collect();
            QueryStream {
                name: format!("stream-{i}"),
                user: format!("user-{i}"),
                application: None,
                // Even streams are BI analysts → bi pool; odd streams
                // fall through to the etl default.
                groups: if i % 2 == 0 {
                    vec!["analysts".to_string()]
                } else {
                    vec![]
                },
                statements,
            }
        })
        .collect()
}

/// bi/etl pools sized so a 16-stream run queues for admission, plus
/// the paper's downgrade rule (threshold from the measured median solo
/// runtime) and a far-out reaper that exercises the kill plumbing.
fn serving_plan(median_solo_ms: f64, max_solo_ms: f64) -> ResourcePlan {
    ResourcePlan {
        name: "serving".into(),
        pools: vec![
            Pool {
                name: "bi".into(),
                alloc_fraction: 0.8,
                query_parallelism: 3,
            },
            Pool {
                name: "etl".into(),
                alloc_fraction: 0.2,
                query_parallelism: 6,
            },
        ],
        mappings: vec![Mapping::Group {
            name: "analysts".into(),
            pool: "bi".into(),
        }],
        triggers: vec![
            Trigger {
                name: "downgrade".into(),
                pool: "bi".into(),
                total_runtime_ms_threshold: ((median_solo_ms * 1.5) as u64).max(1),
                action: TriggerAction::MoveToPool("etl".into()),
            },
            Trigger {
                name: "reaper".into(),
                pool: "etl".into(),
                total_runtime_ms_threshold: ((max_solo_ms * 50.0) as u64).max(1_000),
                action: TriggerAction::Kill,
            },
        ],
        default_pool: Some("etl".into()),
    }
}

struct ArmResult {
    streams: usize,
    submitted: usize,
    completed: usize,
    killed: usize,
    rejected: usize,
    moves: usize,
    span_ms: f64,
    queries_per_hour: f64,
    avg_wait_ms: f64,
    max_wait_ms: f64,
}

fn main() {
    // Env knobs from HIVE_*_SWEEP test runs must not override what
    // this harness configures explicitly.
    std::env::remove_var("HIVE_PARALLEL_THREADS");
    std::env::remove_var("HIVE_FAULT_SEED");
    std::env::remove_var("HIVE_WM_STREAMS");

    // Serial oracle: rows + solo sim-times for every curated query on
    // a fresh server with no resource plan.
    let oracle_server = load_server();
    let mut oracle_rows: HashMap<String, Vec<String>> = HashMap::new();
    let mut solo_ms: Vec<f64> = Vec::new();
    for q in tpcds::queries() {
        let r = oracle_server.session().execute(&q.sql).unwrap();
        solo_ms.push(r.sim_ms);
        oracle_rows.insert(q.sql, r.display_rows());
    }
    solo_ms.sort_by(|a, b| a.total_cmp(b));
    let median_solo = solo_ms[solo_ms.len() / 2];
    let max_solo = *solo_ms.last().unwrap();
    eprintln!(
        "solo runtimes: median {median_solo:.2} sim-ms, max {max_solo:.2} sim-ms \
         → downgrade threshold {} ms",
        ((median_solo * 1.5) as u64).max(1)
    );

    let mut arms: Vec<ArmResult> = Vec::new();
    for &n in &STREAM_COUNTS {
        let server = load_server();
        server
            .activate_resource_plan(serving_plan(median_solo, max_solo))
            .unwrap();
        let streams = make_streams(n);
        let report = run_streams(&server, &streams, &ServingOptions::default());

        // Concurrency must not touch rows: every completed query is
        // byte-identical to the serial oracle.
        for o in &report.outcomes {
            if o.verdict == QueryVerdict::Completed {
                let sql = &streams[o.stream].statements[o.index];
                let rows = o.result.as_ref().unwrap().display_rows();
                assert_eq!(
                    &rows, &oracle_rows[sql],
                    "{n} streams: stream {} stmt {} diverged from serial run",
                    o.stream, o.index
                );
            }
        }
        assert_eq!(
            server.workload(|w| w.total_running()),
            0,
            "{n} streams: admission slots leaked"
        );

        let submitted = n * QUERIES_PER_STREAM;
        let avg_wait_ms = report.total_wait_ms / submitted as f64;
        eprintln!(
            "{n:>2} streams: {}/{} completed in {:>9.1} sim-ms → {:>8.0} q/h \
             (avg wait {:.1} ms, max {:.1} ms, {} moves, {} kills, {} rejected)",
            report.completed,
            submitted,
            report.span_ms,
            report.queries_per_hour,
            avg_wait_ms,
            report.max_wait_ms,
            report.moves,
            report.killed,
            report.rejected,
        );
        arms.push(ArmResult {
            streams: n,
            submitted,
            completed: report.completed,
            killed: report.killed,
            rejected: report.rejected,
            moves: report.moves,
            span_ms: report.span_ms,
            queries_per_hour: report.queries_per_hour,
            avg_wait_ms,
            max_wait_ms: report.max_wait_ms,
        });
    }

    let base_qph = arms[0].queries_per_hour;
    let top = arms.last().unwrap();
    let speedup = top.queries_per_hour / base_qph;
    eprintln!(
        "aggregate throughput: {} streams at {:.2}× the 1-stream rate",
        top.streams, speedup
    );
    assert!(
        speedup >= 2.0,
        "16-stream throughput must be ≥ 2× the 1-stream rate (got {speedup:.2}×)"
    );

    let mut entries = String::new();
    for a in &arms {
        if !entries.is_empty() {
            entries.push_str(",\n");
        }
        entries.push_str(&format!(
            "    {{\"streams\": {}, \"submitted\": {}, \"completed\": {}, \
             \"killed\": {}, \"rejected\": {}, \"moves\": {}, \
             \"span_sim_ms\": {:.3}, \"queries_per_hour\": {:.1}, \
             \"avg_wait_ms\": {:.3}, \"max_wait_ms\": {:.3}}}",
            a.streams,
            a.submitted,
            a.completed,
            a.killed,
            a.rejected,
            a.moves,
            a.span_ms,
            a.queries_per_hour,
            a.avg_wait_ms,
            a.max_wait_ms,
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"throughput\",\n  \"unit\": \"sim-ms\",\n  \
         \"queries_per_stream\": {QUERIES_PER_STREAM},\n  \
         \"rows_per_task\": {ROWS_PER_TASK},\n  \
         \"median_solo_ms\": {median_solo:.3},\n  \
         \"speedup_16_over_1\": {speedup:.3},\n  \
         \"results\": [\n{entries}\n  ]\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_throughput.json");
    std::fs::write(path, &json).unwrap();
    eprintln!("wrote {path}");
    print!("{json}");
}
