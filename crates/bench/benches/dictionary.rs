//! Dictionary-encoded late materialization benchmark: wall-clock time
//! for string-heavy filter/group-by work with the encoded path on vs
//! off, at low and high key cardinality, plus the LLAP byte accounting
//! for repeated scans of a dictionary-encoded column. Results (real
//! host timings, not simulated cluster time) land in `BENCH_dict.json`
//! at the repo root.
//!
//! Run: `cargo bench --bench dictionary` (or via scripts/verify.sh
//! `HIVE_DICT_SWEEP=1`).

use hive_common::{ColumnVector, DataType, Field, HiveConf, Schema, Value, VectorBatch};
use hive_core::HiveServer;
use hive_exec::aggregate::execute_aggregate_par;
use hive_exec::kernels::filter_indices;
use hive_optimizer::plan::LogicalPlan;
use hive_optimizer::{AggExpr, AggFunc, ScalarExpr};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

const ITERS: usize = 5;
const ROWS: usize = 600_000;

/// Best-of-N wall-clock milliseconds (min is the stable statistic for
/// speedup comparisons on a shared host).
fn time_ms(mut f: impl FnMut()) -> f64 {
    f(); // warmup
    let mut best = f64::INFINITY;
    for _ in 0..ITERS {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn rows_of(b: &VectorBatch) -> Vec<String> {
    b.to_rows().iter().map(|r| r.to_string()).collect()
}

/// The same string column twice: dictionary-encoded and materialized,
/// with a double payload column alongside.
fn string_batches(card: usize) -> (VectorBatch, VectorBatch) {
    let dict: Vec<String> = (0..card).map(|i| format!("key_{i:06}")).collect();
    let codes: Vec<u32> = (0..ROWS).map(|i| ((i * 31) % card) as u32).collect();
    let key = ColumnVector::dict_from_codes(codes, Arc::new(dict), None).unwrap();
    let val = ColumnVector::Double((0..ROWS).map(|i| i as f64 * 0.5 - 1000.0).collect(), None);
    let schema = Schema::new(vec![
        Field::new("k", DataType::String),
        Field::new("v", DataType::Double),
    ]);
    let dict_b =
        VectorBatch::new_with_rows(schema.clone(), vec![key.clone(), val.clone()], ROWS).unwrap();
    let str_b = VectorBatch::new_with_rows(schema, vec![key.decode(), val], ROWS).unwrap();
    (dict_b, str_b)
}

/// GROUP BY a string key (the operator the issue gates on): encoded
/// keys hash u32 codes, materialized keys clone and hash strings.
fn bench_groupby(name: &'static str, card: usize, results: &mut Vec<(&'static str, f64, f64)>) {
    let (dict_b, str_b) = string_batches(card);
    let groups = vec![ScalarExpr::Column(0)];
    let aggs = vec![
        AggExpr {
            func: AggFunc::Count,
            arg: None,
            distinct: false,
        },
        AggExpr {
            func: AggFunc::Sum,
            arg: Some(ScalarExpr::Column(1)),
            distinct: false,
        },
    ];
    let out_schema = LogicalPlan::Aggregate {
        input: Arc::new(LogicalPlan::Values {
            schema: dict_b.schema().clone(),
            rows: vec![],
        }),
        group_exprs: groups.clone(),
        grouping_sets: None,
        aggs: aggs.clone(),
    }
    .schema();
    let run = |b: &VectorBatch| {
        let sb = hive_common::SelBatch::from_batch(b.clone());
        execute_aggregate_par(&sb, &groups, &None, &aggs, &out_schema, 1, true, None, None).unwrap()
    };
    assert_eq!(
        rows_of(&run(&dict_b)),
        rows_of(&run(&str_b)),
        "{name} diverged"
    );
    let on = time_ms(|| {
        run(&dict_b);
    });
    let off = time_ms(|| {
        run(&str_b);
    });
    eprintln!(
        "{name:<22} dict={on:8.2} ms  plain={off:8.2} ms  ({:.2}x)",
        off / on
    );
    results.push((name, on, off));
}

/// Filter on a string predicate: the encoded path evaluates the
/// predicate once per distinct dictionary entry.
fn bench_filter(results: &mut Vec<(&'static str, f64, f64)>) {
    let (dict_b, str_b) = string_batches(25);
    let pred = ScalarExpr::Like {
        expr: Box::new(ScalarExpr::Column(0)),
        pattern: Box::new(ScalarExpr::Literal(Value::String("key_%7".into()))),
        negated: false,
    };
    assert_eq!(
        filter_indices(&pred, &dict_b).unwrap(),
        filter_indices(&pred, &str_b).unwrap(),
        "filter diverged"
    );
    let on = time_ms(|| {
        filter_indices(&pred, &dict_b).unwrap();
    });
    let off = time_ms(|| {
        filter_indices(&pred, &str_b).unwrap();
    });
    eprintln!(
        "{:<22} dict={on:8.2} ms  plain={off:8.2} ms  ({:.2}x)",
        "filter_like_low_card",
        off / on
    );
    results.push(("filter_like_low_card", on, off));
}

fn tpcds_server(dict: bool, llap: bool) -> HiveServer {
    use hive_benchdata::tpcds::{self, TpcdsScale};
    let mut conf = HiveConf::v3_1();
    conf.dictionary_enabled = dict;
    conf.llap_enabled = llap;
    conf.results_cache = false;
    let server = HiveServer::new(conf);
    let scale = TpcdsScale {
        days: 48,
        items: 500,
        customers: 300,
        stores: 6,
        sales_per_day: 2000,
        return_rate: 0.1,
    };
    tpcds::load(&server, scale, 0xBE5C).unwrap();
    server
}

/// Full-engine queries under both settings. `i_brand` (50 distinct) is
/// dictionary-encoded on disk; `i_item_id` (unique) fails the writer's
/// distinct-ratio threshold and stays plain — the no-regression case.
fn bench_engine(results: &mut Vec<(&'static str, f64, f64)>) {
    let cases: [(&'static str, &'static str); 3] = [
        (
            "engine_groupby_low_card",
            "SELECT i_brand, SUM(ss_ext_sales_price) AS ext_price FROM store_sales, item \
             WHERE ss_item_sk = i_item_sk GROUP BY i_brand ORDER BY ext_price DESC, i_brand LIMIT 100",
        ),
        (
            "engine_groupby_high_card",
            "SELECT i_item_id, COUNT(*) AS cnt FROM store_sales, item \
             WHERE ss_item_sk = i_item_sk GROUP BY i_item_id ORDER BY cnt DESC, i_item_id LIMIT 100",
        ),
        (
            "engine_numeric_scan",
            "SELECT COUNT(*), SUM(ss_ext_sales_price), MAX(ss_list_price) \
             FROM store_sales WHERE ss_quantity > 0",
        ),
    ];
    for dict in [true, false] {
        let server = tpcds_server(dict, false);
        let session = server.session();
        for (name, sql) in &cases {
            let ms = time_ms(|| {
                session.execute(sql).unwrap();
            });
            let slot = results.iter_mut().find(|(n, _, _)| n == name);
            match slot {
                Some(r) if dict => r.1 = ms,
                Some(r) => r.2 = ms,
                None => results.push((
                    name,
                    if dict { ms } else { f64::NAN },
                    if dict { f64::NAN } else { ms },
                )),
            }
        }
    }
    // Cross-check results once.
    let on = tpcds_server(true, false);
    let off = tpcds_server(false, false);
    for (name, sql) in &cases {
        assert_eq!(
            on.session().execute(sql).unwrap().display_rows(),
            off.session().execute(sql).unwrap().display_rows(),
            "{name} diverged between dict settings"
        );
    }
    for (name, on, off) in results.iter() {
        if name.starts_with("engine") {
            eprintln!(
                "{name:<22} dict={on:8.2} ms  plain={off:8.2} ms  ({:.2}x)",
                off / on
            );
        }
    }
}

/// LLAP byte accounting: scanning a dictionary-encoded string column
/// twice loads fewer bytes with the encoded cache (codes + one shared
/// dictionary charge) than with materialized strings.
fn bench_cache_bytes() -> (u64, u64) {
    let sql = "SELECT i_brand, COUNT(*) AS cnt FROM item GROUP BY i_brand ORDER BY i_brand";
    let mut loaded = [0u64; 2];
    for (slot, dict) in [(0usize, true), (1usize, false)] {
        let server = tpcds_server(dict, true);
        let session = server.session();
        let first = session.execute(sql).unwrap().display_rows();
        let second = session.execute(sql).unwrap().display_rows();
        assert_eq!(first, second);
        loaded[slot] = server
            .llap()
            .cache()
            .stats()
            .bytes_loaded
            .load(Ordering::Relaxed);
    }
    eprintln!(
        "cache bytes_loaded     dict={} B  plain={} B  ({:.2}x smaller)",
        loaded[0],
        loaded[1],
        loaded[1] as f64 / loaded[0] as f64
    );
    (loaded[0], loaded[1])
}

fn main() {
    // The env knob (set by HIVE_DICT_SWEEP test runs) must not override
    // the per-server settings this harness manages itself.
    std::env::remove_var("HIVE_DICT_ENABLED");
    std::env::remove_var("HIVE_PARALLEL_THREADS");

    // (name, dict_on_ms, dict_off_ms)
    let mut results: Vec<(&'static str, f64, f64)> = Vec::new();
    bench_groupby("groupby_low_card", 25, &mut results);
    bench_groupby("groupby_high_card", 400_000, &mut results);
    bench_filter(&mut results);
    bench_engine(&mut results);
    let (bytes_on, bytes_off) = bench_cache_bytes();

    let mut entries = String::new();
    for (name, on, off) in &results {
        if !entries.is_empty() {
            entries.push_str(",\n");
        }
        entries.push_str(&format!(
            "    {{\"case\": \"{name}\", \"dict_on_ms\": {on:.3}, \"dict_off_ms\": {off:.3}, \
             \"speedup\": {:.3}}}",
            off / on
        ));
    }
    let low_card = results
        .iter()
        .find(|(n, _, _)| *n == "groupby_low_card")
        .map(|(_, on, off)| off / on)
        .unwrap_or(f64::NAN);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let json = format!(
        "{{\n  \"bench\": \"dictionary\",\n  \"unit\": \"ms\",\n  \"iters\": {ITERS},\n  \
         \"rows\": {ROWS},\n  \"host_cores\": {cores},\n  \"results\": [\n{entries}\n  ],\n  \
         \"low_card_groupby_speedup\": {low_card:.3},\n  \
         \"cache_bytes_loaded_dict_on\": {bytes_on},\n  \
         \"cache_bytes_loaded_dict_off\": {bytes_off}\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_dict.json");
    std::fs::write(path, &json).unwrap();
    eprintln!("wrote {path}");
    eprintln!("low-cardinality string group-by: {low_card:.2}x with dictionary encoding");
}
