//! Shared helpers for the benchmark harnesses.
//!
//! Each `[[bench]]` target regenerates one table or figure from the
//! paper's evaluation (§7). Queries execute for real; the reported
//! response times are the deterministic cluster-model projections from
//! `hive_exec::simtime` (see DESIGN.md). Absolute numbers are not
//! comparable to the paper's 10-node/10 TB testbed; the *shape* (who
//! wins, by roughly what factor) is the reproduction target, recorded
//! in EXPERIMENTS.md.

use hive_core::Session;

/// Run a query `warmups` times then average the simulated response time
/// over `runs` measured executions (the paper reports "the average over
/// three runs with warm cache").
pub fn avg_sim_ms(session: &Session, sql: &str, warmups: usize, runs: usize) -> f64 {
    for _ in 0..warmups {
        session.execute(sql).expect("warmup failed");
    }
    let mut total = 0.0;
    for _ in 0..runs {
        total += session.execute(sql).expect("query failed").sim_ms;
    }
    total / runs as f64
}

/// Render one table row.
pub fn row(cols: &[String]) -> String {
    cols.join(" | ")
}

/// Format milliseconds compactly.
pub fn ms(v: f64) -> String {
    if v >= 10_000.0 {
        format!("{:.1}s", v / 1000.0)
    } else {
        format!("{v:.0}ms")
    }
}

/// Print a header banner.
pub fn banner(title: &str) {
    println!("\n=== {title} ===");
}
