//! I/O accounting for the simulated file system.

use std::sync::atomic::{AtomicU64, Ordering};

/// Live atomic counters for file-system activity. One instance is owned
/// by each [`crate::DistFs`]; snapshot with [`IoStats::snapshot`].
#[derive(Debug, Default)]
pub struct IoStats {
    reads: AtomicU64,
    writes: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    lists: AtomicU64,
    renames: AtomicU64,
    deletes: AtomicU64,
}

impl IoStats {
    pub(crate) fn record_read(&self, bytes: u64) {
        self.reads.fetch_add(1, Ordering::Relaxed);
        self.bytes_read.fetch_add(bytes, Ordering::Relaxed);
    }

    pub(crate) fn record_write(&self, bytes: u64) {
        self.writes.fetch_add(1, Ordering::Relaxed);
        self.bytes_written.fetch_add(bytes, Ordering::Relaxed);
    }

    pub(crate) fn record_list(&self) {
        self.lists.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_rename(&self) {
        self.renames.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_delete(&self) {
        self.deletes.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of all counters.
    pub fn snapshot(&self) -> IoStatsSnapshot {
        IoStatsSnapshot {
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            lists: self.lists.load(Ordering::Relaxed),
            renames: self.renames.load(Ordering::Relaxed),
            deletes: self.deletes.load(Ordering::Relaxed),
        }
    }
}

/// Immutable copy of the I/O counters; supports difference for
/// before/after measurements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoStatsSnapshot {
    pub reads: u64,
    pub writes: u64,
    pub bytes_read: u64,
    pub bytes_written: u64,
    pub lists: u64,
    pub renames: u64,
    pub deletes: u64,
}

impl IoStatsSnapshot {
    /// Counter deltas `self - earlier`.
    pub fn since(&self, earlier: &IoStatsSnapshot) -> IoStatsSnapshot {
        IoStatsSnapshot {
            reads: self.reads - earlier.reads,
            writes: self.writes - earlier.writes,
            bytes_read: self.bytes_read - earlier.bytes_read,
            bytes_written: self.bytes_written - earlier.bytes_written,
            lists: self.lists - earlier.lists,
            renames: self.renames - earlier.renames,
            deletes: self.deletes - earlier.deletes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_delta() {
        let s = IoStats::default();
        s.record_read(100);
        let a = s.snapshot();
        s.record_read(50);
        s.record_write(10);
        let b = s.snapshot();
        let d = b.since(&a);
        assert_eq!(d.reads, 1);
        assert_eq!(d.bytes_read, 50);
        assert_eq!(d.writes, 1);
        assert_eq!(d.bytes_written, 10);
    }
}
