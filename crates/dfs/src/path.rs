//! Slash-separated paths within the simulated file system.

use std::fmt;

/// A normalized, absolute, `/`-separated path.
///
/// Construction normalizes repeated separators and strips trailing
/// slashes, so path equality is structural equality.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DfsPath(String);

impl DfsPath {
    /// Build a path from a string, normalizing separators.
    pub fn new(s: impl AsRef<str>) -> Self {
        let mut out = String::with_capacity(s.as_ref().len() + 1);
        out.push('/');
        for seg in s.as_ref().split('/').filter(|s| !s.is_empty()) {
            if out.len() > 1 {
                out.push('/');
            }
            out.push_str(seg);
        }
        DfsPath(out)
    }

    /// The root path `/`.
    pub fn root() -> Self {
        DfsPath("/".into())
    }

    /// Append a child segment (which may itself contain separators).
    pub fn child(&self, seg: impl AsRef<str>) -> DfsPath {
        if self.0 == "/" {
            DfsPath::new(seg.as_ref())
        } else {
            DfsPath::new(format!("{}/{}", self.0, seg.as_ref()))
        }
    }

    /// The parent directory, or `None` at the root.
    pub fn parent(&self) -> Option<DfsPath> {
        if self.0 == "/" {
            return None;
        }
        match self.0.rfind('/') {
            Some(0) => Some(DfsPath::root()),
            Some(i) => Some(DfsPath(self.0[..i].to_string())),
            None => None,
        }
    }

    /// The final path segment (file or directory name).
    pub fn name(&self) -> &str {
        self.0.rsplit('/').next().unwrap_or("")
    }

    /// Whether `self` is underneath (or equal to) `dir`.
    pub fn starts_with(&self, dir: &DfsPath) -> bool {
        if dir.0 == "/" {
            return true;
        }
        self.0 == dir.0
            || (self.0.starts_with(&dir.0) && self.0.as_bytes().get(dir.0.len()) == Some(&b'/'))
    }

    /// Is `self` a *direct* child of `dir`?
    pub fn is_direct_child_of(&self, dir: &DfsPath) -> bool {
        match self.parent() {
            Some(p) => p == *dir,
            None => false,
        }
    }

    /// The raw string form.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Replace prefix `from` with `to` (used by directory rename).
    pub(crate) fn rebase(&self, from: &DfsPath, to: &DfsPath) -> DfsPath {
        debug_assert!(self.starts_with(from));
        if self == from {
            return to.clone();
        }
        let rest = &self.0[from.0.len()..];
        DfsPath::new(format!("{}{}", to.0, rest))
    }
}

impl fmt::Display for DfsPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&str> for DfsPath {
    fn from(s: &str) -> Self {
        DfsPath::new(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization() {
        assert_eq!(DfsPath::new("a//b/").as_str(), "/a/b");
        assert_eq!(DfsPath::new("/a/b").as_str(), "/a/b");
        assert_eq!(DfsPath::new("").as_str(), "/");
    }

    #[test]
    fn navigation() {
        let p = DfsPath::new("/wh/db/t/part=1/file");
        assert_eq!(p.name(), "file");
        assert_eq!(p.parent().unwrap().as_str(), "/wh/db/t/part=1");
        assert_eq!(DfsPath::new("/a").parent().unwrap(), DfsPath::root());
        assert_eq!(DfsPath::root().parent(), None);
        assert_eq!(DfsPath::root().child("x").as_str(), "/x");
    }

    #[test]
    fn prefix_checks() {
        let dir = DfsPath::new("/a/b");
        assert!(DfsPath::new("/a/b/c").starts_with(&dir));
        assert!(DfsPath::new("/a/b").starts_with(&dir));
        assert!(!DfsPath::new("/a/bc").starts_with(&dir));
        assert!(DfsPath::new("/a/b/c").is_direct_child_of(&dir));
        assert!(!DfsPath::new("/a/b/c/d").is_direct_child_of(&dir));
    }

    #[test]
    fn rebase() {
        let p = DfsPath::new("/a/b/c/d");
        let out = p.rebase(&DfsPath::new("/a/b"), &DfsPath::new("/x"));
        assert_eq!(out.as_str(), "/x/c/d");
    }
}
