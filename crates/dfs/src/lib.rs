//! # hive-dfs
//!
//! An in-memory simulation of the distributed file system underneath the
//! warehouse (HDFS / cloud object stores in the paper, Section 2).
//!
//! The simulation preserves exactly the properties the rest of the system
//! depends on:
//!
//! * **Immutable files** — files are written once; updates happen by
//!   writing new files into new directories (the basis of the ACID
//!   base/delta design, Section 3.2).
//! * **Stable file identity** — every file gets a unique [`FileId`] and
//!   exposes its length, the analogue of HDFS file ids / blob-store ETags
//!   that LLAP's cache uses for validity (Section 5.1).
//! * **Atomic directory rename** — used by compaction to publish results.
//! * **Hierarchical listing** — partition pruning skips whole directories.
//!
//! An [`IoStats`] meter counts operations and bytes so higher layers
//! (the cluster cost model, cache-effectiveness tests) can observe I/O.

mod fs;
mod path;
mod stats;

pub use fs::{DistFs, FileMeta, FileStatus};
pub use path::DfsPath;
pub use stats::{IoStats, IoStatsSnapshot};

/// Re-exported so callers building file contents (e.g. exec's spill
/// writer) need no direct `bytes` dependency.
pub use bytes::Bytes;

pub use hive_common::FileId;
