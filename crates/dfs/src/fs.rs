//! The in-memory distributed file system.

use crate::path::DfsPath;
use crate::stats::IoStats;
use bytes::Bytes;
use hive_common::{FaultInjector, FileId, HiveError, Result};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Metadata for a stored file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileMeta {
    /// Stable unique identity (the HDFS-file-id / ETag analogue).
    pub file_id: FileId,
    /// Length in bytes.
    pub len: u64,
}

/// A directory-listing entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileStatus {
    /// Full path of the entry.
    pub path: DfsPath,
    /// `Some` for files, `None` for directories.
    pub meta: Option<FileMeta>,
}

impl FileStatus {
    /// True for directory entries.
    pub fn is_dir(&self) -> bool {
        self.meta.is_none()
    }
}

#[derive(Debug)]
struct Inner {
    /// Files keyed by path. BTreeMap gives ordered, prefix-scannable
    /// listings — the moral equivalent of the NameNode namespace.
    files: BTreeMap<DfsPath, (FileMeta, Bytes)>,
    /// Explicitly-created directories (may be empty). Files implicitly
    /// create their ancestors.
    dirs: std::collections::BTreeSet<DfsPath>,
}

/// The simulated distributed file system. Cheap to clone (shared state).
#[derive(Debug, Clone)]
pub struct DistFs {
    inner: Arc<RwLock<Inner>>,
    next_file_id: Arc<AtomicU64>,
    stats: Arc<IoStats>,
    /// Deterministic fault injection (shared with LLAP and the
    /// executor so one seed drives the whole stack).
    fault: Arc<FaultInjector>,
}

impl Default for DistFs {
    fn default() -> Self {
        Self::new()
    }
}

impl DistFs {
    /// An empty file system.
    pub fn new() -> Self {
        DistFs {
            inner: Arc::new(RwLock::new(Inner {
                files: BTreeMap::new(),
                dirs: std::collections::BTreeSet::new(),
            })),
            next_file_id: Arc::new(AtomicU64::new(1)),
            stats: Arc::new(IoStats::default()),
            fault: Arc::new(FaultInjector::new()),
        }
    }

    /// The I/O meter for this file system.
    pub fn stats(&self) -> &IoStats {
        &self.stats
    }

    /// The shared fault injector. The server pushes `HiveConf::fault`
    /// into it; LLAP and the executor roll against the same instance.
    pub fn fault(&self) -> &Arc<FaultInjector> {
        &self.fault
    }

    /// Roll the injected-fault dice for a read of `path` at `offset`:
    /// a transient error (surfaced as [`HiveError::Transient`]) or a
    /// slow-I/O penalty charged to the injector's simtime accumulator.
    /// Keying rolls by byte offset (not just path) keeps fault replay
    /// deterministic when the scanner reads a file's ranges from
    /// parallel worker threads.
    fn inject_read_faults(&self, path: &DfsPath, offset: u64) -> Result<()> {
        if !self.fault.is_active() {
            return Ok(());
        }
        if self.fault.dfs_read_fails(path.as_str(), offset) {
            return Err(HiveError::Transient(format!(
                "injected transient read error: {path}@{offset}"
            )));
        }
        // Slow reads still succeed; the latency lands in simtime.
        self.fault.dfs_read_slow_ms(path.as_str(), offset);
        Ok(())
    }

    /// Create an (empty) directory, including ancestors.
    pub fn mkdirs(&self, path: &DfsPath) {
        let mut g = self.inner.write();
        let mut p = path.clone();
        loop {
            g.dirs.insert(p.clone());
            match p.parent() {
                Some(parent) if parent != DfsPath::root() => p = parent,
                _ => break,
            }
        }
    }

    /// Write a new immutable file. Fails if the path already exists
    /// (files are never overwritten in place — new data goes to new
    /// deltas/bases, per the ACID design).
    pub fn create(&self, path: &DfsPath, data: Bytes) -> Result<FileMeta> {
        // Write faults fire *before* any state changes, so a retried
        // create starts from a clean slate (no half-written file and no
        // spurious already-exists error on the retry).
        if self.fault.is_active() && self.fault.dfs_write_fails(path.as_str()) {
            return Err(HiveError::Transient(format!(
                "injected transient write error: {path}"
            )));
        }
        let mut g = self.inner.write();
        if g.files.contains_key(path) {
            return Err(HiveError::Io(format!("file already exists: {path}")));
        }
        if g.dirs.contains(path) {
            return Err(HiveError::Io(format!("path is a directory: {path}")));
        }
        let meta = FileMeta {
            file_id: FileId(self.next_file_id.fetch_add(1, Ordering::Relaxed)),
            len: data.len() as u64,
        };
        self.stats.record_write(meta.len);
        // Implicitly create ancestor directories.
        let mut p = path.parent();
        while let Some(dir) = p {
            if dir == DfsPath::root() {
                break;
            }
            g.dirs.insert(dir.clone());
            p = dir.parent();
        }
        g.files.insert(path.clone(), (meta.clone(), data));
        Ok(meta)
    }

    /// Read a whole file.
    pub fn read(&self, path: &DfsPath) -> Result<(FileMeta, Bytes)> {
        self.inject_read_faults(path, 0)?;
        let g = self.inner.read();
        let (meta, data) = g
            .files
            .get(path)
            .ok_or_else(|| HiveError::Io(format!("file not found: {path}")))?;
        self.stats.record_read(meta.len);
        Ok((meta.clone(), data.clone()))
    }

    /// Read a byte range of a file (records only the range against the
    /// I/O meter — the basis of column/row-group-selective read costs).
    pub fn read_range(&self, path: &DfsPath, offset: u64, len: u64) -> Result<Bytes> {
        self.inject_read_faults(path, offset)?;
        let g = self.inner.read();
        let (meta, data) = g
            .files
            .get(path)
            .ok_or_else(|| HiveError::Io(format!("file not found: {path}")))?;
        let end = offset
            .checked_add(len)
            .filter(|e| *e <= meta.len)
            .ok_or_else(|| {
                HiveError::Io(format!(
                    "range [{offset}, {offset}+{len}) out of bounds for {path} (len {})",
                    meta.len
                ))
            })?;
        self.stats.record_read(len);
        Ok(data.slice(offset as usize..end as usize))
    }

    /// File metadata without reading data (a NameNode metadata op; does
    /// not count as data I/O).
    pub fn stat(&self, path: &DfsPath) -> Result<FileMeta> {
        let g = self.inner.read();
        g.files
            .get(path)
            .map(|(m, _)| m.clone())
            .ok_or_else(|| HiveError::Io(format!("file not found: {path}")))
    }

    /// Whether a file or directory exists at `path`.
    pub fn exists(&self, path: &DfsPath) -> bool {
        let g = self.inner.read();
        g.files.contains_key(path) || g.dirs.contains(path)
    }

    /// List the direct children of a directory (files and directories),
    /// ordered by name.
    pub fn list(&self, dir: &DfsPath) -> Vec<FileStatus> {
        self.stats.record_list();
        let g = self.inner.read();
        let mut out: Vec<FileStatus> = Vec::new();
        let mut seen_dirs = std::collections::BTreeSet::new();
        for (p, (meta, _)) in g.files.range(dir.clone()..) {
            if !p.starts_with(dir) {
                break;
            }
            if p.is_direct_child_of(dir) {
                out.push(FileStatus {
                    path: p.clone(),
                    meta: Some(meta.clone()),
                });
            } else if let Some(child) = first_child_under(dir, p) {
                seen_dirs.insert(child);
            }
        }
        for d in g.dirs.range(dir.clone()..) {
            if !d.starts_with(dir) {
                break;
            }
            if d.is_direct_child_of(dir) {
                seen_dirs.insert(d.clone());
            }
        }
        for d in seen_dirs {
            out.push(FileStatus {
                path: d,
                meta: None,
            });
        }
        out.sort_by(|a, b| a.path.cmp(&b.path));
        out
    }

    /// List all files (recursively) under a directory.
    pub fn list_files_recursive(&self, dir: &DfsPath) -> Vec<(DfsPath, FileMeta)> {
        self.stats.record_list();
        let g = self.inner.read();
        g.files
            .range(dir.clone()..)
            .take_while(|(p, _)| p.starts_with(dir))
            .map(|(p, (m, _))| (p.clone(), m.clone()))
            .collect()
    }

    /// Delete a single file.
    pub fn delete_file(&self, path: &DfsPath) -> Result<()> {
        let mut g = self.inner.write();
        g.files
            .remove(path)
            .ok_or_else(|| HiveError::Io(format!("file not found: {path}")))?;
        self.stats.record_delete();
        Ok(())
    }

    /// Recursively delete a directory and everything under it.
    pub fn delete_dir(&self, dir: &DfsPath) -> Result<()> {
        let mut g = self.inner.write();
        let files: Vec<DfsPath> = g
            .files
            .range(dir.clone()..)
            .take_while(|(p, _)| p.starts_with(dir))
            .map(|(p, _)| p.clone())
            .collect();
        for p in files {
            g.files.remove(&p);
        }
        let dirs: Vec<DfsPath> = g
            .dirs
            .range(dir.clone()..)
            .take_while(|p| p.starts_with(dir))
            .cloned()
            .collect();
        for d in dirs {
            g.dirs.remove(&d);
        }
        self.stats.record_delete();
        Ok(())
    }

    /// Atomically rename a directory subtree. Fails if the destination
    /// already exists — rename is the commit primitive for compaction.
    pub fn rename_dir(&self, from: &DfsPath, to: &DfsPath) -> Result<()> {
        let mut g = self.inner.write();
        if g.dirs.contains(to) || g.files.contains_key(to) {
            return Err(HiveError::Io(format!("rename target exists: {to}")));
        }
        if !g.dirs.contains(from) {
            return Err(HiveError::Io(format!("rename source not found: {from}")));
        }
        let files: Vec<DfsPath> = g
            .files
            .range(from.clone()..)
            .take_while(|(p, _)| p.starts_with(from))
            .map(|(p, _)| p.clone())
            .collect();
        for p in files {
            let entry = g
                .files
                .remove(&p)
                .ok_or_else(|| HiveError::Io(format!("file vanished during rename: {p}")))?;
            g.files.insert(p.rebase(from, to), entry);
        }
        let dirs: Vec<DfsPath> = g
            .dirs
            .range(from.clone()..)
            .take_while(|p| p.starts_with(from))
            .cloned()
            .collect();
        for d in dirs {
            g.dirs.remove(&d);
            g.dirs.insert(d.rebase(from, to));
        }
        // Ensure destination ancestors exist.
        let mut p = to.parent();
        while let Some(dir) = p {
            if dir == DfsPath::root() {
                break;
            }
            g.dirs.insert(dir.clone());
            p = dir.parent();
        }
        self.stats.record_rename();
        Ok(())
    }

    /// Total number of files (diagnostics).
    pub fn file_count(&self) -> usize {
        self.inner.read().files.len()
    }
}

/// For `descendant` strictly under `dir`, the direct child of `dir` on the
/// path to `descendant`.
fn first_child_under(dir: &DfsPath, descendant: &DfsPath) -> Option<DfsPath> {
    let rest = descendant.as_str().strip_prefix(dir.as_str())?;
    let rest = rest.strip_prefix('/').unwrap_or(rest);
    let seg = rest.split('/').next()?;
    if seg.is_empty() {
        None
    } else {
        Some(dir.child(seg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fs_with_files(paths: &[&str]) -> DistFs {
        let fs = DistFs::new();
        for p in paths {
            fs.create(&DfsPath::new(p), Bytes::from_static(b"data"))
                .unwrap();
        }
        fs
    }

    #[test]
    fn create_read_round_trip() {
        let fs = DistFs::new();
        let p = DfsPath::new("/wh/t/base_1/f0");
        let meta = fs.create(&p, Bytes::from_static(b"hello")).unwrap();
        assert_eq!(meta.len, 5);
        let (m2, data) = fs.read(&p).unwrap();
        assert_eq!(m2, meta);
        assert_eq!(&data[..], b"hello");
    }

    #[test]
    fn files_are_immutable() {
        let fs = fs_with_files(&["/a/f"]);
        assert!(fs
            .create(&DfsPath::new("/a/f"), Bytes::from_static(b"x"))
            .is_err());
    }

    #[test]
    fn file_ids_unique_and_stable() {
        let fs = fs_with_files(&["/a/f1", "/a/f2"]);
        let m1 = fs.stat(&DfsPath::new("/a/f1")).unwrap();
        let m2 = fs.stat(&DfsPath::new("/a/f2")).unwrap();
        assert_ne!(m1.file_id, m2.file_id);
        assert_eq!(fs.stat(&DfsPath::new("/a/f1")).unwrap().file_id, m1.file_id);
    }

    #[test]
    fn range_reads_meter_only_the_range() {
        let fs = DistFs::new();
        let p = DfsPath::new("/f");
        fs.create(&p, Bytes::from(vec![0u8; 1000])).unwrap();
        let before = fs.stats().snapshot();
        let b = fs.read_range(&p, 100, 50).unwrap();
        assert_eq!(b.len(), 50);
        let d = fs.stats().snapshot().since(&before);
        assert_eq!(d.bytes_read, 50);
        assert!(fs.read_range(&p, 990, 20).is_err());
    }

    #[test]
    fn listing_direct_children() {
        let fs = fs_with_files(&[
            "/wh/t/part=1/base_1/f0",
            "/wh/t/part=1/delta_2_2/f0",
            "/wh/t/part=2/base_1/f0",
        ]);
        let parts = fs.list(&DfsPath::new("/wh/t"));
        let names: Vec<&str> = parts.iter().map(|s| s.path.name()).collect();
        assert_eq!(names, vec!["part=1", "part=2"]);
        assert!(parts.iter().all(|s| s.is_dir()));
        let stores = fs.list(&DfsPath::new("/wh/t/part=1"));
        let names: Vec<&str> = stores.iter().map(|s| s.path.name()).collect();
        assert_eq!(names, vec!["base_1", "delta_2_2"]);
    }

    #[test]
    fn recursive_listing_and_delete() {
        let fs = fs_with_files(&["/a/b/f1", "/a/b/c/f2", "/a/d/f3"]);
        assert_eq!(fs.list_files_recursive(&DfsPath::new("/a/b")).len(), 2);
        fs.delete_dir(&DfsPath::new("/a/b")).unwrap();
        assert_eq!(fs.list_files_recursive(&DfsPath::new("/a")).len(), 1);
        assert!(!fs.exists(&DfsPath::new("/a/b")));
        assert!(fs.exists(&DfsPath::new("/a/d/f3")));
    }

    #[test]
    fn atomic_rename() {
        let fs = fs_with_files(&["/t/.tmp_compact/base_5/f0", "/t/.tmp_compact/base_5/f1"]);
        fs.rename_dir(
            &DfsPath::new("/t/.tmp_compact/base_5"),
            &DfsPath::new("/t/base_5"),
        )
        .unwrap();
        assert_eq!(fs.list_files_recursive(&DfsPath::new("/t/base_5")).len(), 2);
        assert!(!fs.exists(&DfsPath::new("/t/.tmp_compact/base_5/f0")));
        // Renaming over an existing target fails.
        fs.mkdirs(&DfsPath::new("/t/other"));
        assert!(fs
            .rename_dir(&DfsPath::new("/t/base_5"), &DfsPath::new("/t/other"))
            .is_err());
    }

    #[test]
    fn injected_read_error_is_transient_and_deterministic() {
        use hive_common::FaultPlan;
        let fs = fs_with_files(&["/t/part-0.orc", "/t/part-1.orc"]);
        fs.fault().set_plan(FaultPlan::none().with(|p| {
            p.fail_path_substrings = vec!["part-0".into()];
            p.path_fail_count = 1;
        }));
        let err = fs.read(&DfsPath::new("/t/part-0.orc")).unwrap_err();
        assert_eq!(err.kind(), "TRANSIENT");
        assert!(err.is_transient());
        // Retry heals; the untargeted file never failed.
        assert!(fs.read(&DfsPath::new("/t/part-0.orc")).is_ok());
        assert!(fs.read(&DfsPath::new("/t/part-1.orc")).is_ok());
        assert_eq!(fs.fault().stats().dfs_read_errors, 1);
    }

    #[test]
    fn injected_write_error_leaves_no_partial_file() {
        use hive_common::FaultPlan;
        let fs = DistFs::new();
        fs.fault().set_plan(FaultPlan::none().with(|p| {
            p.fail_path_substrings = vec!["spill".into()];
            p.path_fail_count = 1;
        }));
        let p = DfsPath::new("/tmp/spill/q0/p0.bin");
        let err = fs.create(&p, Bytes::from_static(b"run")).unwrap_err();
        assert_eq!(err.kind(), "TRANSIENT");
        assert!(!fs.exists(&p), "failed create must not leave state behind");
        // The retry succeeds against the healed path.
        assert!(fs.create(&p, Bytes::from_static(b"run")).is_ok());
        // The path's *read* counter is independent of the write counter:
        // the first read of the targeted path still fails once.
        assert!(fs.read(&p).unwrap_err().is_transient());
        assert_eq!(fs.read(&p).unwrap().1.as_ref(), b"run");
        assert_eq!(fs.fault().stats().dfs_write_errors, 1);
    }

    #[test]
    fn injected_slow_read_accumulates_latency_not_errors() {
        use hive_common::FaultPlan;
        let fs = fs_with_files(&["/t/f"]);
        fs.fault().set_plan(FaultPlan::none().with(|p| {
            p.seed = 11;
            p.dfs_slow_prob = 1.0;
            p.dfs_slow_ms = 30.0;
        }));
        assert!(fs.read(&DfsPath::new("/t/f")).is_ok());
        assert!(fs.read_range(&DfsPath::new("/t/f"), 0, 2).is_ok());
        assert_eq!(fs.fault().slow_penalty_ms(), 60.0);
        assert_eq!(fs.fault().stats().dfs_slow_reads, 2);
    }

    #[test]
    fn mkdirs_creates_ancestors() {
        let fs = DistFs::new();
        fs.mkdirs(&DfsPath::new("/a/b/c"));
        assert!(fs.exists(&DfsPath::new("/a")));
        assert!(fs.exists(&DfsPath::new("/a/b")));
        assert!(fs.exists(&DfsPath::new("/a/b/c")));
        let l = fs.list(&DfsPath::new("/a"));
        assert_eq!(l.len(), 1);
        assert!(l[0].is_dir());
    }
}
