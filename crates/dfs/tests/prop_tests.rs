//! Property tests on the simulated distributed filesystem: ranged reads
//! are exact slices, directory rename moves the whole subtree
//! atomically, and create-no-overwrite semantics hold.

use bytes::Bytes;
use hive_dfs::{DfsPath, DistFs};
use proptest::prelude::*;

fn name_strategy() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,8}".prop_map(|s| s)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// read_range(offset, len) equals the in-memory slice for every
    /// in-bounds request; requests past EOF are rejected, never
    /// silently truncated (readers compute exact ranges from footers).
    #[test]
    fn ranged_reads_are_exact_slices(
        data in proptest::collection::vec(any::<u8>(), 0..512),
        offset in 0u64..600,
        len in 0u64..600,
    ) {
        let fs = DistFs::new();
        let p = DfsPath::new("/data/blob");
        fs.create(&p, Bytes::from(data.clone())).unwrap();
        let got = fs.read_range(&p, offset, len);
        if offset + len <= data.len() as u64 {
            let want = &data[offset as usize..(offset + len) as usize];
            let bytes = got.unwrap();
            prop_assert_eq!(bytes.as_ref(), want);
        } else {
            prop_assert!(got.is_err(), "out-of-bounds range must error");
        }
    }

    /// rename_dir moves every file under the source prefix and leaves
    /// nothing behind — the commit primitive ACID writers rely on.
    #[test]
    fn rename_dir_moves_whole_subtree(
        files in proptest::collection::btree_map(
            (name_strategy(), name_strategy()),
            proptest::collection::vec(any::<u8>(), 0..32),
            1..12,
        ),
    ) {
        let fs = DistFs::new();
        for ((d, f), data) in &files {
            fs.create(
                &DfsPath::new(format!("/staging/{d}/{f}")),
                Bytes::from(data.clone()),
            )
            .unwrap();
        }
        let from = DfsPath::new("/staging");
        let to = DfsPath::new("/final");
        fs.rename_dir(&from, &to).unwrap();
        // Every file is readable at the new location with identical
        // contents, and the old prefix is empty.
        for ((d, f), data) in &files {
            let (_, bytes) = fs.read(&DfsPath::new(format!("/final/{d}/{f}"))).unwrap();
            prop_assert_eq!(bytes.as_ref(), &data[..]);
            let old = DfsPath::new(format!("/staging/{d}/{f}"));
            prop_assert!(!fs.exists(&old));
        }
        prop_assert!(fs.list_files_recursive(&from).is_empty());
    }

    /// create() refuses to overwrite an existing file (write-once, like
    /// HDFS), so concurrent writers cannot clobber each other.
    #[test]
    fn create_never_overwrites(
        a in proptest::collection::vec(any::<u8>(), 1..64),
        b in proptest::collection::vec(any::<u8>(), 1..64),
    ) {
        let fs = DistFs::new();
        let p = DfsPath::new("/once/file");
        fs.create(&p, Bytes::from(a.clone())).unwrap();
        prop_assert!(fs.create(&p, Bytes::from(b)).is_err());
        let (_, bytes) = fs.read(&p).unwrap();
        prop_assert_eq!(bytes.as_ref(), &a[..]);
    }
}
