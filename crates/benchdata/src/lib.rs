//! # hive-benchdata
//!
//! Deterministic, seeded workload generators and query sets for the
//! paper's evaluation (§7):
//!
//! * [`tpcds`] — a TPC-DS-derived star schema (store_sales /
//!   store_returns facts plus seven dimensions) and a curated set of
//!   26 TPC-DS-derived queries keeping the paper's numbering, spanning
//!   the plan shapes Figure 7 exercises — including queries that Hive
//!   1.2's SQL surface rejects (INTERSECT/EXCEPT, scalar subqueries,
//!   interval notation, ORDER BY unselected columns).
//! * [`ssb`] — the Star-Schema Benchmark in the *denormalized* form the
//!   paper's Figure 8 experiment uses (a flattened materialization of
//!   the lineorder star, stored either natively or in Druid), plus its
//!   13 queries adapted to the flat schema.
//!
//! Substitutions versus the original benchmarks are documented in
//! DESIGN.md and EXPERIMENTS.md.

pub mod ssb;
pub mod tpcds;

pub use ssb::SsbScale;
pub use tpcds::TpcdsScale;
