//! The Star-Schema Benchmark in the denormalized form the paper's
//! Figure 8 experiment uses.
//!
//! §7.3: "we create a materialized view that denormalizes the database
//! schema. The materialization is stored in Hive. … Subsequently, we
//! store the materialized view in Druid v0.12 and repeat the same
//! steps." Following the same methodology (and the Hortonworks
//! `sub-second-analytics-hive-druid` setup the paper references), the
//! 13 SSB queries here run directly against the flattened
//! materialization — once stored natively and once stored in the Druid
//! substrate, where the federation pushdown answers them.
//!
//! Schema adaptations for the Druid storage model (string dimensions +
//! numeric metrics + `__time`) are documented in EXPERIMENTS.md:
//! numeric flag columns (`d_year`, `lo_discount`, …) are stored as
//! string dimensions, and the `lo_revenue_disc` / `lo_profit` measures
//! are precomputed in the materialization.

use hive_common::{dates, Result, Row, Value};
use hive_core::HiveServer;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Scale knobs for the flattened lineorder generator.
#[derive(Debug, Clone, Copy)]
pub struct SsbScale {
    /// Flattened lineorder rows.
    pub lineorders: usize,
    /// Distinct order days.
    pub days: usize,
}

impl SsbScale {
    /// Test scale.
    pub fn tiny() -> SsbScale {
        SsbScale {
            lineorders: 2_000,
            days: 120,
        }
    }

    /// Bench scale.
    pub fn bench() -> SsbScale {
        SsbScale {
            lineorders: 40_000,
            days: 365 * 2,
        }
    }
}

const REGIONS: [&str; 5] = ["AMERICA", "ASIA", "EUROPE", "AFRICA", "MIDDLE EAST"];
const NATIONS_PER_REGION: usize = 5;
const CITIES_PER_NATION: usize = 4;

/// Column list of the flat materialization (shared by the native and
/// Druid variants).
pub fn flat_columns_sql() -> &'static str {
    "__time TIMESTAMP, d_year STRING, d_yearmonthnum STRING, d_weeknuminyear STRING,
     c_city STRING, c_nation STRING, c_region STRING,
     s_city STRING, s_nation STRING, s_region STRING,
     p_mfgr STRING, p_category STRING, p_brand1 STRING,
     lo_discount STRING, lo_quantity STRING,
     lo_revenue DOUBLE, lo_supplycost DOUBLE, lo_extendedprice DOUBLE,
     lo_revenue_disc DOUBLE, lo_profit DOUBLE"
}

/// Generate the flattened rows (seeded, deterministic).
pub fn generate_flat_rows(scale: SsbScale, seed: u64) -> Vec<Row> {
    let mut rng = StdRng::seed_from_u64(seed);
    let base = dates::civil_to_days(1992, 1, 1);
    (0..scale.lineorders)
        .map(|_| {
            let day = base + rng.gen_range(0..scale.days as i32);
            let (y, m, _) = dates::days_to_civil(day);
            let region_c = rng.gen_range(0..REGIONS.len());
            let nation_c = rng.gen_range(0..NATIONS_PER_REGION);
            let city_c = rng.gen_range(0..CITIES_PER_NATION);
            let region_s = rng.gen_range(0..REGIONS.len());
            let nation_s = rng.gen_range(0..NATIONS_PER_REGION);
            let city_s = rng.gen_range(0..CITIES_PER_NATION);
            let mfgr = rng.gen_range(1..=5);
            let category = rng.gen_range(1..=8);
            let brand = rng.gen_range(1..=40);
            let discount = rng.gen_range(0..=10);
            let quantity = rng.gen_range(1..=50);
            let extended = rng.gen_range(100.0..10_000.0f64).round();
            let revenue = extended * (100 - discount) as f64 / 100.0;
            let supplycost = extended * rng.gen_range(0.4..0.8);
            Row::new(vec![
                Value::Timestamp(day as i64 * dates::MICROS_PER_DAY),
                Value::String(y.to_string()),
                Value::String(format!("{y}{m:02}")),
                Value::String(format!(
                    "{}",
                    (dates::extract_from_days(dates::DateField::Day, day) / 7) + 1
                )),
                Value::String(format!("C{region_c}N{nation_c}CITY{city_c}")),
                Value::String(format!("C{region_c}NATION{nation_c}")),
                Value::String(REGIONS[region_c].to_string()),
                Value::String(format!("S{region_s}N{nation_s}CITY{city_s}")),
                Value::String(format!("S{region_s}NATION{nation_s}")),
                Value::String(REGIONS[region_s].to_string()),
                Value::String(format!("MFGR#{mfgr}")),
                Value::String(format!("MFGR#{mfgr}{category}")),
                Value::String(format!("MFGR#{mfgr}{category}B{brand}")),
                Value::String(discount.to_string()),
                Value::String(format!("{quantity:02}")),
                Value::Double(revenue),
                Value::Double(supplycost),
                Value::Double(extended),
                Value::Double(extended * discount as f64 / 100.0),
                Value::Double(revenue - supplycost),
            ])
        })
        .collect()
}

/// Create and load the *native* flat materialization as `ssb_flat`.
pub fn load_native(server: &HiveServer, scale: SsbScale, seed: u64) -> Result<u64> {
    let session = server.session();
    session.execute(&format!("CREATE TABLE ssb_flat ({})", flat_columns_sql()))?;
    let rows = generate_flat_rows(scale, seed);
    let n = session.bulk_insert("ssb_flat", rows)?.affected_rows;
    session.execute("ANALYZE TABLE ssb_flat COMPUTE STATISTICS")?;
    Ok(n)
}

/// Create and load the *Druid-backed* flat materialization as
/// `ssb_flat_druid` (same rows; stored through the storage handler).
pub fn load_druid(server: &HiveServer, scale: SsbScale, seed: u64) -> Result<u64> {
    let session = server.session();
    session.execute(&format!(
        "CREATE EXTERNAL TABLE ssb_flat_druid ({}) STORED BY 'druid'
         TBLPROPERTIES ('druid.datasource' = 'ssb_flat_druid')",
        flat_columns_sql()
    ))?;
    let rows = generate_flat_rows(scale, seed);
    let values_sql_free = rows.len() as u64;
    session.bulk_insert("ssb_flat_druid", rows)?;
    Ok(values_sql_free)
}

/// The 13 SSB queries against a flat table named `{table}`.
pub fn queries(table: &str) -> Vec<(String, String)> {
    let q = |id: &str, sql: String| (id.to_string(), sql);
    vec![
        q(
            "q1.1",
            format!(
                "SELECT SUM(lo_revenue_disc) AS revenue FROM {table}
             WHERE d_year = '1992' AND lo_discount IN ('1','2','3')"
            ),
        ),
        q(
            "q1.2",
            format!(
                "SELECT SUM(lo_revenue_disc) AS revenue FROM {table}
             WHERE d_yearmonthnum = '199201' AND lo_discount IN ('4','5','6')"
            ),
        ),
        q(
            "q1.3",
            format!(
                "SELECT SUM(lo_revenue_disc) AS revenue FROM {table}
             WHERE d_weeknuminyear = '1' AND d_year = '1992'
               AND lo_discount IN ('5','6','7')"
            ),
        ),
        q(
            "q2.1",
            format!(
                "SELECT d_year, p_brand1, SUM(lo_revenue) AS lo_revenue FROM {table}
             WHERE p_category = 'MFGR#12' AND s_region = 'AMERICA'
             GROUP BY d_year, p_brand1 ORDER BY d_year, p_brand1"
            ),
        ),
        q(
            "q2.2",
            format!(
                "SELECT d_year, p_brand1, SUM(lo_revenue) AS lo_revenue FROM {table}
             WHERE p_brand1 IN ('MFGR#22B1','MFGR#22B2','MFGR#22B3','MFGR#22B4',
                                'MFGR#22B5','MFGR#22B6','MFGR#22B7','MFGR#22B8')
               AND s_region = 'ASIA'
             GROUP BY d_year, p_brand1 ORDER BY d_year, p_brand1"
            ),
        ),
        q(
            "q2.3",
            format!(
                "SELECT d_year, p_brand1, SUM(lo_revenue) AS lo_revenue FROM {table}
             WHERE p_brand1 = 'MFGR#33B3' AND s_region = 'EUROPE'
             GROUP BY d_year, p_brand1 ORDER BY d_year, p_brand1"
            ),
        ),
        q(
            "q3.1",
            format!(
                "SELECT c_nation, s_nation, d_year, SUM(lo_revenue) AS lo_revenue FROM {table}
             WHERE c_region = 'ASIA' AND s_region = 'ASIA'
               AND d_year >= '1992' AND d_year <= '1993'
             GROUP BY c_nation, s_nation, d_year
             ORDER BY d_year, lo_revenue DESC LIMIT 150"
            ),
        ),
        q(
            "q3.2",
            format!(
                "SELECT c_city, s_city, d_year, SUM(lo_revenue) AS lo_revenue FROM {table}
             WHERE c_nation = 'C1NATION1' AND s_nation = 'S1NATION1'
               AND d_year >= '1992' AND d_year <= '1993'
             GROUP BY c_city, s_city, d_year
             ORDER BY d_year, lo_revenue DESC LIMIT 150"
            ),
        ),
        q(
            "q3.3",
            format!(
                "SELECT c_city, s_city, d_year, SUM(lo_revenue) AS lo_revenue FROM {table}
             WHERE c_city IN ('C1N1CITY1','C1N1CITY2')
               AND s_city IN ('S1N1CITY1','S1N1CITY2')
             GROUP BY c_city, s_city, d_year
             ORDER BY d_year, lo_revenue DESC LIMIT 150"
            ),
        ),
        q(
            "q3.4",
            format!(
                "SELECT c_city, s_city, d_year, SUM(lo_revenue) AS lo_revenue FROM {table}
             WHERE c_city IN ('C1N1CITY1','C2N2CITY2')
               AND s_city IN ('S1N1CITY1','S2N2CITY2')
               AND d_yearmonthnum = '199203'
             GROUP BY c_city, s_city, d_year
             ORDER BY d_year, lo_revenue DESC LIMIT 150"
            ),
        ),
        q(
            "q4.1",
            format!(
                "SELECT d_year, c_nation, SUM(lo_profit) AS profit FROM {table}
             WHERE c_region = 'AMERICA' AND s_region = 'AMERICA'
               AND p_mfgr IN ('MFGR#1','MFGR#2')
             GROUP BY d_year, c_nation ORDER BY d_year, c_nation"
            ),
        ),
        q(
            "q4.2",
            format!(
                "SELECT d_year, s_nation, p_category, SUM(lo_profit) AS profit FROM {table}
             WHERE c_region = 'AMERICA' AND s_region = 'AMERICA'
               AND d_year IN ('1992','1993') AND p_mfgr IN ('MFGR#1','MFGR#2')
             GROUP BY d_year, s_nation, p_category
             ORDER BY d_year, s_nation, p_category"
            ),
        ),
        q(
            "q4.3",
            format!(
                "SELECT d_year, s_city, p_brand1, SUM(lo_profit) AS profit FROM {table}
             WHERE s_nation = 'S0NATION0' AND p_category = 'MFGR#14'
               AND d_year IN ('1992','1993')
             GROUP BY d_year, s_city, p_brand1
             ORDER BY d_year, s_city, p_brand1"
            ),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use hive_common::HiveConf;

    #[test]
    fn native_and_druid_agree() {
        let server = HiveServer::new(HiveConf::v3_1());
        let scale = SsbScale {
            lineorders: 500,
            days: 60,
        };
        load_native(&server, scale, 7).unwrap();
        load_druid(&server, scale, 7).unwrap();
        let session = server.session();
        for (id, native_sql) in queries("ssb_flat") {
            let druid_sql = queries("ssb_flat_druid")
                .into_iter()
                .find(|(i, _)| *i == id)
                .unwrap()
                .1;
            // Floating-point sums depend on accumulation order; compare
            // rows with a numeric tolerance.
            let norm = |rows: Vec<String>| -> Vec<String> {
                let mut out: Vec<String> = rows
                    .into_iter()
                    .map(|r| {
                        r.split('\t')
                            .map(|cell| match cell.parse::<f64>() {
                                Ok(v) => format!("{:.3}", v),
                                Err(_) => cell.to_string(),
                            })
                            .collect::<Vec<_>>()
                            .join("\t")
                    })
                    .collect();
                out.sort();
                out
            };
            let a = norm(session.execute(&native_sql).unwrap().display_rows());
            let b = norm(session.execute(&druid_sql).unwrap().display_rows());
            assert_eq!(a, b, "results diverge for {id}");
        }
    }

    #[test]
    fn druid_pushdown_applies_to_group_bys() {
        let server = HiveServer::new(HiveConf::v3_1());
        let scale = SsbScale {
            lineorders: 300,
            days: 30,
        };
        load_druid(&server, scale, 9).unwrap();
        let session = server.session();
        let (_, sql) = &queries("ssb_flat_druid")[3]; // q2.1 groupBy
        let explain = session.execute(&format!("EXPLAIN {sql}")).unwrap();
        let text = explain.message.unwrap();
        assert!(text.contains("Scan[default.ssb_flat_druid]"), "{text}");
    }
}
