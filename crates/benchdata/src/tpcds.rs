//! The TPC-DS-derived star schema, generator, and query set.

use hive_common::{dates, Result, Row, Value};
use hive_core::{HiveServer, Session};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Scale knobs for the generator. All generation is seeded and
/// deterministic.
#[derive(Debug, Clone, Copy)]
pub struct TpcdsScale {
    /// Distinct sale days (fact partitions).
    pub days: usize,
    /// Rows in `item`.
    pub items: usize,
    /// Rows in `customer`.
    pub customers: usize,
    /// Rows in `store`.
    pub stores: usize,
    /// store_sales rows per day.
    pub sales_per_day: usize,
    /// Fraction of sales that are returned (store_returns size).
    pub return_rate: f64,
}

impl TpcdsScale {
    /// Small scale for tests (~3k fact rows).
    pub fn tiny() -> TpcdsScale {
        TpcdsScale {
            days: 12,
            items: 100,
            customers: 200,
            stores: 4,
            sales_per_day: 250,
            return_rate: 0.1,
        }
    }

    /// Bench scale (~60k fact rows) — big enough for the cost model and
    /// cache effects to matter, small enough for quick iteration.
    pub fn bench() -> TpcdsScale {
        TpcdsScale {
            days: 60,
            items: 1000,
            customers: 2000,
            stores: 10,
            sales_per_day: 1000,
            return_rate: 0.1,
        }
    }

    /// Total store_sales rows.
    pub fn fact_rows(&self) -> usize {
        self.days * self.sales_per_day
    }
}

const CATEGORIES: [&str; 10] = [
    "Sports",
    "Books",
    "Music",
    "Home",
    "Electronics",
    "Jewelry",
    "Men",
    "Women",
    "Shoes",
    "Children",
];
const STATES: [&str; 12] = [
    "TN", "CA", "TX", "NY", "OH", "GA", "IL", "WA", "FL", "MI", "NC", "VA",
];
const DAY_NAMES: [&str; 7] = [
    "Sunday",
    "Monday",
    "Tuesday",
    "Wednesday",
    "Thursday",
    "Friday",
    "Saturday",
];
const BUY_POTENTIAL: [&str; 4] = [">10000", "5001-10000", "1001-5000", "0-500"];

/// First sale date: 2000-01-01.
pub fn base_date_sk() -> i32 {
    dates::civil_to_days(2000, 1, 1)
}

/// Create all TPC-DS tables (DDL mirrors the paper's §3.1 example:
/// facts partitioned by day, constraints declared on dimensions).
pub fn create_tables(session: &Session) -> Result<()> {
    session.execute_script(
        "CREATE TABLE date_dim (
            d_date_sk INT NOT NULL, d_date DATE, d_year INT, d_moy INT, d_dom INT,
            d_qoy INT, d_day_name STRING, d_month_seq INT,
            PRIMARY KEY (d_date_sk));
         CREATE TABLE item (
            i_item_sk INT NOT NULL, i_item_id STRING, i_category STRING, i_brand STRING,
            i_class STRING, i_current_price DECIMAL(7,2), i_manufact_id INT,
            PRIMARY KEY (i_item_sk));
         CREATE TABLE customer (
            c_customer_sk INT NOT NULL, c_customer_id STRING, c_first_name STRING,
            c_last_name STRING, c_birth_year INT, c_current_addr_sk INT,
            PRIMARY KEY (c_customer_sk));
         CREATE TABLE customer_address (
            ca_address_sk INT NOT NULL, ca_state STRING, ca_city STRING, ca_country STRING,
            PRIMARY KEY (ca_address_sk));
         CREATE TABLE store (
            s_store_sk INT NOT NULL, s_store_name STRING, s_state STRING,
            s_number_employees INT,
            PRIMARY KEY (s_store_sk));
         CREATE TABLE household_demographics (
            hd_demo_sk INT NOT NULL, hd_dep_count INT, hd_buy_potential STRING,
            PRIMARY KEY (hd_demo_sk));
         CREATE TABLE promotion (
            p_promo_sk INT NOT NULL, p_channel_email STRING, p_channel_event STRING,
            PRIMARY KEY (p_promo_sk));
         CREATE TABLE store_sales (
            ss_item_sk INT, ss_customer_sk INT, ss_store_sk INT, ss_hdemo_sk INT,
            ss_addr_sk INT, ss_promo_sk INT, ss_ticket_number INT, ss_quantity INT,
            ss_wholesale_cost DECIMAL(7,2), ss_list_price DECIMAL(7,2),
            ss_sales_price DECIMAL(7,2), ss_ext_sales_price DECIMAL(7,2),
            ss_net_profit DECIMAL(7,2)
         ) PARTITIONED BY (ss_sold_date_sk INT);
         CREATE TABLE store_returns (
            sr_item_sk INT, sr_customer_sk INT, sr_ticket_number INT,
            sr_return_quantity INT, sr_return_amt DECIMAL(7,2)
         ) PARTITIONED BY (sr_returned_date_sk INT);",
    )?;
    Ok(())
}

/// Generate and load the whole schema; returns total rows loaded.
pub fn load(server: &HiveServer, scale: TpcdsScale, seed: u64) -> Result<u64> {
    let session = server.session();
    create_tables(&session)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut total = 0u64;

    // date_dim.
    let base = base_date_sk();
    let rows: Vec<Row> = (0..scale.days as i32)
        .map(|d| {
            let sk = base + d;
            let (y, m, dom) = dates::days_to_civil(sk);
            Row::new(vec![
                Value::Int(sk),
                Value::Date(sk),
                Value::Int(y),
                Value::Int(m as i32),
                Value::Int(dom as i32),
                Value::Int((m as i32 - 1) / 3 + 1),
                Value::String(
                    DAY_NAMES
                        [dates::extract_from_days(dates::DateField::DayOfWeek, sk) as usize - 1]
                        .to_string(),
                ),
                Value::Int((y - 1990) * 12 + m as i32),
            ])
        })
        .collect();
    total += session.bulk_insert("date_dim", rows)?.affected_rows;

    // item.
    let rows: Vec<Row> = (0..scale.items as i32)
        .map(|i| {
            Row::new(vec![
                Value::Int(i),
                Value::String(format!("ITEM{i:08}")),
                // Categories assign in contiguous key blocks (item_sk
                // ranges), as surrogate keys loaded per-category would;
                // this is what lets min/max semijoin ranges skip
                // clustered fact row groups (§4.6).
                Value::String(
                    CATEGORIES
                        [(i as usize * CATEGORIES.len() / scale.items).min(CATEGORIES.len() - 1)]
                    .to_string(),
                ),
                Value::String(format!("brand#{}", i % 50)),
                Value::String(format!("class{}", i % 20)),
                Value::Decimal((rng.gen_range(100..9999)) as i128, 2),
                Value::Int(i % 100),
            ])
        })
        .collect();
    total += session.bulk_insert("item", rows)?.affected_rows;

    // customer + addresses.
    let rows: Vec<Row> = (0..scale.customers as i32)
        .map(|c| {
            Row::new(vec![
                Value::Int(c),
                Value::String(format!("CUST{c:08}")),
                Value::String(format!("First{}", c % 97)),
                Value::String(format!("Last{}", c % 211)),
                Value::Int(1930 + (c % 70)),
                Value::Int(c % (scale.customers as i32 / 2).max(1)),
            ])
        })
        .collect();
    total += session.bulk_insert("customer", rows)?.affected_rows;
    let n_addr = (scale.customers / 2).max(1) as i32;
    let rows: Vec<Row> = (0..n_addr)
        .map(|a| {
            Row::new(vec![
                Value::Int(a),
                Value::String(STATES[a as usize % STATES.len()].to_string()),
                Value::String(format!("City{}", a % 40)),
                Value::String("United States".to_string()),
            ])
        })
        .collect();
    total += session.bulk_insert("customer_address", rows)?.affected_rows;

    // store / household_demographics / promotion.
    let rows: Vec<Row> = (0..scale.stores as i32)
        .map(|s| {
            Row::new(vec![
                Value::Int(s),
                Value::String(format!("Store {s}")),
                Value::String(STATES[s as usize % STATES.len()].to_string()),
                Value::Int(200 + (s * 17) % 100),
            ])
        })
        .collect();
    total += session.bulk_insert("store", rows)?.affected_rows;
    let rows: Vec<Row> = (0..20)
        .map(|h| {
            Row::new(vec![
                Value::Int(h),
                Value::Int(h % 6),
                Value::String(BUY_POTENTIAL[h as usize % BUY_POTENTIAL.len()].to_string()),
            ])
        })
        .collect();
    total += session
        .bulk_insert("household_demographics", rows)?
        .affected_rows;
    let rows: Vec<Row> = (0..30)
        .map(|p| {
            Row::new(vec![
                Value::Int(p),
                Value::String(if p % 2 == 0 { "N" } else { "Y" }.to_string()),
                Value::String(if p % 3 == 0 { "N" } else { "Y" }.to_string()),
            ])
        })
        .collect();
    total += session.bulk_insert("promotion", rows)?.affected_rows;

    // store_sales, day by day (one transaction per partition batch),
    // with store_returns sampled from sales.
    let mut ticket = 0i32;
    for d in 0..scale.days as i32 {
        let date_sk = base + d;
        let mut sales: Vec<Row> = Vec::with_capacity(scale.sales_per_day);
        let mut returns: Vec<Row> = Vec::new();
        for _ in 0..scale.sales_per_day {
            ticket += 1;
            let item = rng.gen_range(0..scale.items as i32);
            let customer = rng.gen_range(0..scale.customers as i32);
            let store = rng.gen_range(0..scale.stores as i32);
            let quantity = rng.gen_range(1..=20);
            let wholesale = rng.gen_range(100..5000) as i128;
            let list = wholesale + rng.gen_range(10..2000) as i128;
            let sales_price = wholesale + rng.gen_range(0..2000) as i128;
            let ext = sales_price * quantity as i128;
            let profit = (sales_price - wholesale) * quantity as i128;
            sales.push(Row::new(vec![
                Value::Int(item),
                Value::Int(customer),
                Value::Int(store),
                Value::Int(rng.gen_range(0..20)),
                Value::Int(customer % n_addr),
                Value::Int(rng.gen_range(0..30)),
                Value::Int(ticket),
                Value::Int(quantity),
                Value::Decimal(wholesale, 2),
                Value::Decimal(list, 2),
                Value::Decimal(sales_price, 2),
                Value::Decimal(ext, 2),
                Value::Decimal(profit, 2),
                Value::Int(date_sk),
            ]));
            if rng.gen_bool(scale.return_rate) {
                let ret_qty = rng.gen_range(1..=quantity);
                returns.push(Row::new(vec![
                    Value::Int(item),
                    Value::Int(customer),
                    Value::Int(ticket),
                    Value::Int(ret_qty),
                    Value::Decimal(sales_price * ret_qty as i128, 2),
                    Value::Int((date_sk + rng.gen_range(1..30)).min(base + scale.days as i32 - 1)),
                ]));
            }
        }
        total += session.bulk_insert("store_sales", sales)?.affected_rows;
        if !returns.is_empty() {
            total += session.bulk_insert("store_returns", returns)?.affected_rows;
        }
    }
    // Fresh statistics for the optimizer.
    for t in [
        "date_dim",
        "item",
        "customer",
        "customer_address",
        "store",
        "household_demographics",
        "promotion",
        "store_sales",
        "store_returns",
    ] {
        session.execute(&format!("ANALYZE TABLE {t} COMPUTE STATISTICS"))?;
    }
    Ok(total)
}

/// One benchmark query.
#[derive(Debug, Clone)]
pub struct TpcdsQuery {
    /// Paper-style identifier (`q3`, `q88`, …).
    pub id: &'static str,
    /// Whether Hive 1.2's SQL surface can run it (Figure 7: only 50 of
    /// 99 could).
    pub v1_2_ok: bool,
    /// The SQL text (against the derived schema).
    pub sql: String,
}

/// The curated query set. Shapes follow the same-numbered TPC-DS
/// queries, adapted to the derived schema; see EXPERIMENTS.md for the
/// per-query mapping.
pub fn queries() -> Vec<TpcdsQuery> {
    let q = |id: &'static str, v1_2_ok: bool, sql: &str| TpcdsQuery {
        id,
        v1_2_ok,
        sql: sql.to_string(),
    };
    let y0 = 2000;
    vec![
        q("q3", true, "SELECT d_year, i_brand, SUM(ss_ext_sales_price) AS sum_agg
             FROM store_sales, date_dim, item
             WHERE ss_sold_date_sk = d_date_sk AND ss_item_sk = i_item_sk
               AND i_manufact_id = 28 AND d_moy = 1
             GROUP BY d_year, i_brand
             ORDER BY d_year, sum_agg DESC LIMIT 100"),
        q("q7", true,
            "SELECT i_category, AVG(ss_quantity) AS agg1, AVG(ss_list_price) AS agg2,
                    AVG(ss_sales_price) AS agg3
             FROM store_sales, item, household_demographics, promotion
             WHERE ss_item_sk = i_item_sk AND ss_hdemo_sk = hd_demo_sk
               AND ss_promo_sk = p_promo_sk AND hd_dep_count = 3
               AND p_channel_email = 'N'
             GROUP BY i_category ORDER BY i_category LIMIT 100"),
        q("q8", false,
            "SELECT s_state, COUNT(*) AS cnt FROM store_sales, store
             WHERE ss_store_sk = s_store_sk AND s_state IN (
                 SELECT ca_state FROM customer_address WHERE ca_state LIKE 'T%'
                 EXCEPT
                 SELECT s_state FROM store WHERE s_number_employees > 280)
             GROUP BY s_state ORDER BY s_state"),
        q("q12", false, &format!(
            "SELECT i_category, SUM(ss_ext_sales_price) AS itemrevenue
             FROM store_sales, item, date_dim
             WHERE ss_item_sk = i_item_sk AND ss_sold_date_sk = d_date_sk
               AND d_date BETWEEN DATE '{y0}-01-05' AND DATE '{y0}-01-05' + INTERVAL 30 DAYS
             GROUP BY i_category ORDER BY itemrevenue DESC")),
        q("q14", false, "SELECT i_item_sk FROM store_sales, item, date_dim
             WHERE ss_item_sk = i_item_sk AND ss_sold_date_sk = d_date_sk AND d_moy = 1
             INTERSECT
             SELECT i_item_sk FROM store_returns, item
             WHERE sr_item_sk = i_item_sk
             ORDER BY i_item_sk LIMIT 100"),
        q("q15", true,
            "SELECT ca_state, SUM(ss_ext_sales_price) AS total
             FROM store_sales, customer, customer_address
             WHERE ss_customer_sk = c_customer_sk AND c_current_addr_sk = ca_address_sk
             GROUP BY ca_state HAVING SUM(ss_ext_sales_price) > 100
             ORDER BY total DESC LIMIT 100"),
        q("q19", true,
            "SELECT i_brand, SUM(ss_ext_sales_price) AS ext_price
             FROM date_dim, store_sales, item
             WHERE d_date_sk = ss_sold_date_sk AND ss_item_sk = i_item_sk
               AND i_manufact_id = 7 AND d_moy = 2
             GROUP BY i_brand ORDER BY ext_price DESC, i_brand LIMIT 100"),
        q("q25", false,
            "SELECT i_category, MAX(ss_net_profit) AS best
             FROM store_sales, item
             WHERE ss_item_sk = i_item_sk
               AND ss_net_profit > (SELECT AVG(ss_net_profit) FROM store_sales)
             GROUP BY i_category ORDER BY i_category"),
        q("q27", true,
            "SELECT i_category, s_state, AVG(ss_quantity) AS agg1,
                    AVG(ss_list_price) AS agg2, COUNT(*) AS cnt
             FROM store_sales, item, store
             WHERE ss_item_sk = i_item_sk AND ss_store_sk = s_store_sk
             GROUP BY ROLLUP(i_category, s_state)
             ORDER BY i_category, s_state LIMIT 100"),
        q("q34", true,
            "SELECT c_last_name, ss_ticket_number, cnt FROM
               (SELECT ss_ticket_number AS tnum, ss_customer_sk AS csk, COUNT(*) AS cnt
                FROM store_sales, household_demographics
                WHERE ss_hdemo_sk = hd_demo_sk AND hd_dep_count >= 2
                GROUP BY ss_ticket_number, ss_customer_sk) dn,
               customer, store_sales
             WHERE csk = c_customer_sk AND ss_ticket_number = tnum AND cnt BETWEEN 2 AND 20
             GROUP BY c_last_name, ss_ticket_number, cnt
             ORDER BY c_last_name LIMIT 50"),
        q("q38", false,
            "SELECT COUNT(*) FROM (
               SELECT c_customer_sk FROM store_sales, customer
               WHERE ss_customer_sk = c_customer_sk AND ss_quantity > 5
               INTERSECT
               SELECT c_customer_sk FROM store_returns, customer
               WHERE sr_customer_sk = c_customer_sk) hot"),
        q("q42", true,
            "SELECT d_year, i_category, SUM(ss_ext_sales_price) AS total
             FROM date_dim, store_sales, item
             WHERE d_date_sk = ss_sold_date_sk AND ss_item_sk = i_item_sk AND d_moy = 1
             GROUP BY d_year, i_category
             ORDER BY total DESC, d_year LIMIT 100"),
        q("q43", true,
            "SELECT s_store_name, d_day_name, SUM(ss_sales_price) AS sales
             FROM date_dim, store_sales, store
             WHERE d_date_sk = ss_sold_date_sk AND ss_store_sk = s_store_sk
             GROUP BY s_store_name, d_day_name
             ORDER BY s_store_name, d_day_name LIMIT 100"),
        q("q44", false,
            "SELECT i_brand, total FROM
               (SELECT i_brand, i_category AS cat, SUM(ss_net_profit) AS total
                FROM store_sales, item WHERE ss_item_sk = i_item_sk
                GROUP BY i_brand, i_category) ranked
             ORDER BY cat, total DESC LIMIT 10"),
        q("q46", true,
            "SELECT c_last_name, ca_city, SUM(ss_ext_sales_price) AS amt
             FROM store_sales, customer, customer_address
             WHERE ss_customer_sk = c_customer_sk AND c_current_addr_sk = ca_address_sk
               AND ca_city IN ('City1', 'City2', 'City3')
             GROUP BY c_last_name, ca_city ORDER BY amt DESC LIMIT 100"),
        q("q52", true,
            "SELECT d_year, i_brand, SUM(ss_ext_sales_price) AS ext_price
             FROM date_dim, store_sales, item
             WHERE d_date_sk = ss_sold_date_sk AND ss_item_sk = i_item_sk AND d_moy = 2
             GROUP BY d_year, i_brand ORDER BY d_year, ext_price DESC LIMIT 100"),
        q("q55", true,
            "SELECT i_brand, SUM(ss_ext_sales_price) AS ext_price
             FROM date_dim, store_sales, item
             WHERE d_date_sk = ss_sold_date_sk AND ss_item_sk = i_item_sk
               AND i_manufact_id = 36 AND d_moy = 1
             GROUP BY i_brand ORDER BY ext_price DESC LIMIT 100"),
        q("q58", true,
            "SELECT a.i_category, a.rev AS jan_rev, b.rev AS feb_rev
             FROM
               (SELECT i_category, SUM(ss_ext_sales_price) AS rev
                FROM store_sales, item, date_dim
                WHERE ss_item_sk = i_item_sk AND ss_sold_date_sk = d_date_sk AND d_moy = 1
                GROUP BY i_category) a,
               (SELECT i_category, SUM(ss_ext_sales_price) AS rev
                FROM store_sales, item, date_dim
                WHERE ss_item_sk = i_item_sk AND ss_sold_date_sk = d_date_sk AND d_moy = 2
                GROUP BY i_category) b
             WHERE a.i_category = b.i_category AND a.rev BETWEEN b.rev * 0.5 AND b.rev * 2.0
             ORDER BY a.i_category"),
        q("q59", true,
            "SELECT d_day_name, s_state, SUM(ss_sales_price) AS sales,
                    RANK() OVER (PARTITION BY s_state ORDER BY SUM(ss_sales_price) DESC) AS rk
             FROM store_sales, date_dim, store
             WHERE ss_sold_date_sk = d_date_sk AND ss_store_sk = s_store_sk
             GROUP BY d_day_name, s_state
             ORDER BY s_state, rk LIMIT 100"),
        q("q65", false,
            "SELECT s_store_name, i_item_id FROM store, item, store_sales
             WHERE ss_store_sk = s_store_sk AND ss_item_sk = i_item_sk
               AND ss_sales_price <= (SELECT AVG(ss_sales_price) * 1.2 FROM store_sales)
             GROUP BY s_store_name, i_item_id
             ORDER BY s_store_name, i_item_id LIMIT 100"),
        q("q68", true,
            "SELECT c_last_name, c_first_name, ca_city, SUM(ss_ext_sales_price) AS extended
             FROM store_sales, customer, customer_address
             WHERE ss_customer_sk = c_customer_sk AND c_current_addr_sk = ca_address_sk
               AND ss_quantity > 15
             GROUP BY c_last_name, c_first_name, ca_city
             ORDER BY extended DESC LIMIT 100"),
        q("q73", true,
            "SELECT hd_buy_potential, COUNT(DISTINCT ss_ticket_number) AS baskets
             FROM store_sales, household_demographics
             WHERE ss_hdemo_sk = hd_demo_sk
             GROUP BY hd_buy_potential ORDER BY baskets DESC"),
        q("q79", true,
            "SELECT s_store_name, SUM(ss_net_profit) AS profit
             FROM store_sales, store
             WHERE ss_store_sk = s_store_sk AND ss_quantity BETWEEN 1 AND 10
             GROUP BY s_store_name ORDER BY profit DESC LIMIT 100"),
        q("q87", false,
            "SELECT COUNT(*) FROM (
               SELECT c_customer_sk FROM store_sales, customer
               WHERE ss_customer_sk = c_customer_sk
               EXCEPT
               SELECT c_customer_sk FROM store_returns, customer
               WHERE sr_customer_sk = c_customer_sk) loyal"),
        q("q88", true,
            "SELECT * FROM
               (SELECT COUNT(*) AS h1 FROM store_sales, household_demographics
                WHERE ss_hdemo_sk = hd_demo_sk AND hd_dep_count = 0 AND ss_quantity BETWEEN 1 AND 5) s1,
               (SELECT COUNT(*) AS h2 FROM store_sales, household_demographics
                WHERE ss_hdemo_sk = hd_demo_sk AND hd_dep_count = 0 AND ss_quantity BETWEEN 6 AND 10) s2,
               (SELECT COUNT(*) AS h3 FROM store_sales, household_demographics
                WHERE ss_hdemo_sk = hd_demo_sk AND hd_dep_count = 0 AND ss_quantity BETWEEN 11 AND 15) s3,
               (SELECT COUNT(*) AS h4 FROM store_sales, household_demographics
                WHERE ss_hdemo_sk = hd_demo_sk AND hd_dep_count = 0 AND ss_quantity BETWEEN 16 AND 20) s4"),
        q("q92", false, &format!(
            "SELECT SUM(ss_ext_sales_price) AS excess
             FROM store_sales, item, date_dim
             WHERE ss_item_sk = i_item_sk AND ss_sold_date_sk = d_date_sk
               AND d_date BETWEEN DATE '{y0}-01-10' AND DATE '{y0}-01-10' + INTERVAL 60 DAYS
               AND ss_ext_sales_price > (SELECT AVG(ss_ext_sales_price) * 1.3 FROM store_sales)")),
        q("q96", true,
            "SELECT COUNT(*) AS cnt
             FROM store_sales, household_demographics, store
             WHERE ss_hdemo_sk = hd_demo_sk AND ss_store_sk = s_store_sk
               AND hd_dep_count = 4 AND s_store_name = 'Store 1'"),
        q("q98", true,
            "SELECT i_category, i_class, SUM(ss_ext_sales_price) AS itemrevenue,
                    SUM(ss_ext_sales_price) * 100.0 /
                      SUM(SUM(ss_ext_sales_price)) OVER (PARTITION BY i_category) AS revenueratio
             FROM store_sales, item, date_dim
             WHERE ss_item_sk = i_item_sk AND ss_sold_date_sk = d_date_sk AND d_moy = 1
             GROUP BY i_category, i_class
             ORDER BY i_category, i_class LIMIT 100"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use hive_common::HiveConf;

    #[test]
    fn query_set_shape() {
        let qs = queries();
        assert_eq!(qs.len(), 28);
        let gated = qs.iter().filter(|q| !q.v1_2_ok).count();
        assert_eq!(gated, 9, "9 queries exercise post-1.2 SQL");
        // Every query parses.
        for q in &qs {
            hive_sql_parse(&q.sql, q.id);
        }
    }

    fn hive_sql_parse(sql: &str, id: &str) {
        if let Err(e) = hive_core::HiveServer::new(HiveConf::v3_1())
            .session()
            .execute(&format!("EXPLAIN {sql}"))
            .map(|_| ())
        {
            // EXPLAIN on missing tables fails at analysis; parse errors
            // are the only unacceptable class here.
            assert!(
                !matches!(e, hive_common::HiveError::Parse(_)),
                "{id} failed to parse: {e}"
            );
        }
    }

    #[test]
    fn tiny_scale_loads_and_answers() {
        let server = hive_core::HiveServer::new(HiveConf::v3_1());
        let total = load(&server, TpcdsScale::tiny(), 42).unwrap();
        assert!(total > 3000);
        let session = server.session();
        let r = session.execute("SELECT COUNT(*) FROM store_sales").unwrap();
        assert_eq!(r.display_rows(), vec!["3000"]);
        // Deterministic regeneration.
        let server2 = hive_core::HiveServer::new(HiveConf::v3_1());
        load(&server2, TpcdsScale::tiny(), 42).unwrap();
        let a = session
            .execute("SELECT SUM(ss_ext_sales_price) FROM store_sales")
            .unwrap();
        let b = server2
            .session()
            .execute("SELECT SUM(ss_ext_sales_price) FROM store_sales")
            .unwrap();
        assert_eq!(a.display_rows(), b.display_rows());
    }
}
