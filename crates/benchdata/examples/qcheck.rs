use hive_benchdata::tpcds;
use hive_common::HiveConf;
use hive_core::HiveServer;
fn main() {
    let server = HiveServer::new(HiveConf::v3_1());
    tpcds::load(&server, tpcds::TpcdsScale::tiny(), 1).unwrap();
    let session = server.session();
    for q in tpcds::queries() {
        match session.execute(&q.sql) {
            Ok(r) => println!("{}: OK {} rows", q.id, r.num_rows()),
            Err(e) => println!("{}: ERR {e}", q.id),
        }
    }
}
