//! The execution engine: materializing operator evaluation over the
//! optimized logical plan, with per-node tracing feeding the simulated
//! cluster time model.

use crate::aggregate::execute_aggregate_par;
use crate::join::execute_join_par;
use crate::kernels::{eval_rowmode, eval_vector, filter_indices, filter_indices_rowmode};
use crate::membroker::MemoryBroker;
use crate::scan::execute_scan;
use crate::spill::SpillCtx;
use crate::window::execute_window;
use hive_common::{ColumnBuilder, HiveConf, HiveError, Result, Row, SelBatch, SelVec, VectorBatch};
use hive_dfs::{DfsPath, DistFs};
use hive_metastore::{Metastore, ValidWriteIdList};
use hive_optimizer::fingerprint::fingerprint;
use hive_optimizer::plan::LogicalPlan;
use hive_optimizer::ScalarExpr;
use hive_sql::SetOperator;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Per-table snapshot provider (the driver owns transaction state).
pub trait SnapshotProvider: Sync {
    /// The ValidWriteIdList a scan of `table` must honor.
    fn write_ids(&self, table: &str) -> ValidWriteIdList;
}

/// Wide-open snapshots (tests, compaction, external-only queries).
pub struct WideOpenSnapshots<'a>(pub &'a Metastore);

impl SnapshotProvider for WideOpenSnapshots<'_> {
    fn write_ids(&self, table: &str) -> ValidWriteIdList {
        ValidWriteIdList::wide_open(table, self.0.table_write_hwm(table))
    }
}

/// Result of a federated scan: the rows plus the external system's own
/// simulated latency contribution.
pub struct ExternalScanResult {
    pub batch: VectorBatch,
    pub external_ms: f64,
    /// Whether a pushed-down query answered the scan (vs full export).
    pub pushed: bool,
}

/// Federation hook (implemented by `hive-federation`, wired by the
/// driver) — exec stays independent of concrete storage handlers.
pub trait ExternalScanner: Sync {
    /// Scan an external (storage-handler) table.
    fn scan(
        &self,
        table: &hive_optimizer::ScanTable,
        projection: &[usize],
        filters: &[ScalarExpr],
    ) -> Result<ExternalScanResult>;
}

/// Everything execution needs from its environment.
pub struct ExecContext<'a> {
    pub fs: &'a DistFs,
    pub ms: &'a Metastore,
    pub conf: &'a HiveConf,
    pub llap: Option<&'a hive_llap::LlapDaemons>,
    pub snapshots: &'a dyn SnapshotProvider,
    pub external: Option<&'a dyn ExternalScanner>,
    /// Shared-work result cache (§4.5): fingerprints of subplans that
    /// occur more than once, filled as they first execute.
    shared: Mutex<HashMap<u64, VectorBatch>>,
    shared_counts: HashMap<u64, usize>,
    /// Per-query fault-recovery charges (transient-read retries happen
    /// deep in the scan path where no trace node is at hand; scans
    /// snapshot this before/after their reads). Atomic so parallel
    /// morsel workers can charge retries without serializing on a lock;
    /// the backoff total is fixed-point microseconds because integer
    /// addition is associative — the sum is identical under any thread
    /// interleaving, which keeps `HIVE_FAULT_SEED` replay exact.
    charges_retries: AtomicU64,
    charges_backoff_micros: AtomicU64,
    /// Spill environment (`hive.exec.spill.enabled` + the per-query
    /// memory budget scaled by the admission pool fraction). `None`
    /// when the budget is unlimited — blocking operators then take the
    /// legacy in-memory path byte-for-byte, with zero broker traffic.
    spill: Option<SpillConfig>,
    /// Query-wide spill file sequence. Blocking operators execute
    /// sequentially (children materialize before parents), so the
    /// sequence — and with it every spill path — is deterministic and
    /// independent of the morsel worker count.
    spill_ops: AtomicU64,
    /// §4.2 cardinality guard: optimizer estimates for every Join
    /// subtree, armed by the driver on the first (guarded) execution
    /// attempt. `None` on retries and non-guarded paths.
    card_guard: Option<CardGuard>,
}

/// The driver's armed cardinality estimates: join-subtree fingerprint →
/// (estimated output rows, the sorted base-table feedback key). Joins
/// materialize bottom-up and sequentially, so the first operator whose
/// observed output exceeds 10× its estimate raises
/// [`HiveError::CardinalityMisestimate`] — at most once per query
/// (`tripped` latches), and only for outputs large enough that a
/// re-plan can pay for itself.
pub struct CardGuard {
    /// fingerprint(join subtree) → (estimated rows, feedback table key).
    pub estimates: HashMap<u64, (u64, String)>,
    tripped: AtomicBool,
}

/// Observed must exceed 10× the estimate (§4.2 "significantly
/// different statistics")...
const CARD_GUARD_FACTOR: u64 = 10;
/// ...and be at least this large: re-planning a query whose worst join
/// produced a few thousand rows costs more than it saves.
const CARD_GUARD_MIN_ROWS: u64 = 10_000;

impl CardGuard {
    /// Build a guard over the driver's per-join estimates.
    pub fn new(estimates: HashMap<u64, (u64, String)>) -> Self {
        CardGuard {
            estimates,
            tripped: AtomicBool::new(false),
        }
    }

    /// Check one join's observed output; returns the typed misestimate
    /// error if this guard fires (first trip only).
    fn check(&self, plan_fp: u64, observed: u64) -> Option<HiveError> {
        let (est, tables) = self.estimates.get(&plan_fp)?;
        if observed < CARD_GUARD_MIN_ROWS || observed <= est.saturating_mul(CARD_GUARD_FACTOR) {
            return None;
        }
        if self.tripped.swap(true, Ordering::Relaxed) {
            return None; // one re-plan per query (bounded ladder)
        }
        Some(HiveError::CardinalityMisestimate {
            operator: "join".to_string(),
            tables: tables.clone(),
            observed,
            estimated: *est,
        })
    }
}

/// The per-query spill environment the driver installs when
/// `hive.exec.memory.per.query.bytes` caps the query.
pub struct SpillConfig {
    /// Scratch directory for this query's spill files (unique per
    /// query so concurrent queries and replays never collide).
    pub dir: DfsPath,
    /// The broker dividing the query budget among live operators.
    pub broker: MemoryBroker,
    /// `hive.exec.spill.enabled` — when false, denied operators keep
    /// their pre-spill degradation (join: retryable error feeding
    /// re-optimization; aggregate/sort: proceed over budget).
    pub enabled: bool,
}

/// Accumulated fault-recovery work for one query: how many transient
/// reads were retried and how much simulated backoff wait they cost.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FaultCharges {
    pub transient_retries: u64,
    pub backoff_wait_ms: f64,
}

impl ExecContext<'_> {
    /// Is the filter-stripped form of this scan shared by multiple plan
    /// sites?
    pub(crate) fn scan_share_key(&self, plan: &LogicalPlan) -> Option<u64> {
        let key = scan_base_key(plan)?;
        self.shared_counts.contains_key(&key).then_some(key)
    }

    /// Is this subtree a shared-work site (its result materializes
    /// once and is reused by fingerprint)? PIR fusion must not peel
    /// across such a node: it is a pipeline breaker.
    pub(crate) fn is_shared_subtree(&self, plan: &LogicalPlan) -> bool {
        !self.shared_counts.is_empty() && self.shared_counts.contains_key(&fingerprint(plan))
    }

    /// Fetch a shared scan's raw (unfiltered) rows, if already read.
    pub(crate) fn shared_get(&self, key: u64) -> Option<VectorBatch> {
        self.shared.lock().get(&key).cloned()
    }

    /// Publish a shared scan's raw rows.
    pub(crate) fn shared_put(&self, key: u64, batch: VectorBatch) {
        self.shared.lock().insert(key, batch);
    }

    /// Record one transient-read retry and its backoff wait.
    pub(crate) fn charge_retry(&self, backoff_ms: f64) {
        self.charges_retries.fetch_add(1, Ordering::Relaxed);
        self.charges_backoff_micros
            .fetch_add((backoff_ms * 1000.0) as u64, Ordering::Relaxed);
    }

    /// Install the spill environment (driver, when the per-query
    /// memory budget is finite).
    pub fn enable_spill(&mut self, cfg: SpillConfig) {
        self.spill = Some(cfg);
    }

    /// Arm the §4.2 cardinality guard with the driver's per-join
    /// estimates. Retries run with the guard disarmed.
    pub fn arm_card_guard(&mut self, guard: CardGuard) {
        self.card_guard = Some(guard);
    }

    /// A fresh per-operator spill handle (stats start at zero; the
    /// operator's trace folds them in when it finishes). `None` when
    /// the query is unbudgeted.
    pub(crate) fn spill_ctx(&self) -> Option<SpillCtx<'_>> {
        self.spill.as_ref().map(|s| {
            SpillCtx::new(
                self.fs,
                s.dir.clone(),
                &s.broker,
                s.enabled,
                &self.spill_ops,
            )
        })
    }

    /// High-water mark of broker-tracked memory (0 when unbudgeted).
    pub fn spill_peak_bytes(&self) -> u64 {
        self.spill.as_ref().map_or(0, |s| s.broker.peak_bytes())
    }

    /// Broker denials so far — each one is a spill decision.
    pub fn spill_denials(&self) -> u64 {
        self.spill.as_ref().map_or(0, |s| s.broker.denials())
    }

    /// Snapshot of the per-query recovery charges so far.
    pub fn fault_charges(&self) -> FaultCharges {
        FaultCharges {
            transient_retries: self.charges_retries.load(Ordering::Relaxed),
            backoff_wait_ms: self.charges_backoff_micros.load(Ordering::Relaxed) as f64 / 1000.0,
        }
    }

    /// Size a morsel worker pool for `items` units of work and (when
    /// LLAP is up) lease matching executor slots so host-thread
    /// parallelism is gated by the live fleet's admission accounting:
    /// a shrunken fleet grants fewer slots, so fewer workers run.
    /// Always returns at least one worker — the query must make
    /// progress even when every slot is busy (fragments queue). The
    /// returned lease (if any) must be held for the parallel section.
    pub(crate) fn lease_workers(&self, items: usize) -> (usize, Option<hive_llap::ExecutorLease>) {
        let want = self.conf.effective_parallel_threads().min(items.max(1));
        if want <= 1 {
            return (1, None);
        }
        match self.llap {
            Some(llap) => {
                let lease = llap.lease_executors(want);
                (lease.granted().max(1), Some(lease))
            }
            None => (want, None),
        }
    }
}

impl<'a> ExecContext<'a> {
    /// Build a context for one query execution.
    pub fn new(
        fs: &'a DistFs,
        ms: &'a Metastore,
        conf: &'a HiveConf,
        llap: Option<&'a hive_llap::LlapDaemons>,
        snapshots: &'a dyn SnapshotProvider,
        external: Option<&'a dyn ExternalScanner>,
    ) -> Self {
        ExecContext {
            fs,
            ms,
            conf,
            llap,
            snapshots,
            external,
            shared: Mutex::new(HashMap::new()),
            shared_counts: HashMap::new(),
            charges_retries: AtomicU64::new(0),
            charges_backoff_micros: AtomicU64::new(0),
            spill: None,
            spill_ops: AtomicU64::new(0),
            card_guard: None,
        }
    }

    /// Pre-scan the plan for repeated subtrees (the shared-work
    /// optimizer's detection pass, §4.5). Call before `execute`.
    pub fn prepare_shared_work(&mut self, plan: &LogicalPlan) {
        if !self.conf.shared_work {
            return;
        }
        let mut counts: HashMap<u64, usize> = HashMap::new();
        count_subtrees(plan, &mut counts);
        if self.conf.effective_histograms_enabled() {
            // The histogram path plans semijoin reducers through
            // intermediate joins, so a reducer's source subplan always
            // re-evaluates a dimension subtree the join's build side
            // reads again. Count those sources too: the duplicate
            // evaluation then shares instead of paying a second scan
            // plus vertex dispatch. Only exact subtree fingerprints are
            // counted — not filter-stripped scan base keys, which would
            // force the dimension scan onto the sarg-forfeiting raw
            // read even though the exact-match share already serves the
            // reducer from the filtered result. (Off-path plans are
            // left uncounted so the constant-selectivity oracle's
            // simulated cost is unchanged.)
            plan.visit(&mut |p| {
                if let LogicalPlan::Scan {
                    semijoin_filters, ..
                } = p
                {
                    for spec in semijoin_filters {
                        count_exact_subtrees(&spec.source, &mut counts);
                    }
                }
            });
        }
        counts.retain(|_, c| *c > 1);
        self.shared_counts = counts;
    }
}

fn count_subtrees(plan: &LogicalPlan, counts: &mut HashMap<u64, usize>) {
    // Count non-leaf subtrees; scans alone are cheap to repeat but a
    // scan with filters is worth sharing too, so count everything with
    // at least one operator above a scan.
    if !plan.children().is_empty()
        || matches!(plan, LogicalPlan::Scan { filters, .. } if !filters.is_empty())
    {
        *counts.entry(fingerprint(plan)).or_insert(0) += 1;
    }
    // Hive's shared-work optimizer "starts merging scan operations over
    // the same tables, then continues merging plan operators until a
    // difference is found" (§4.5): scans of one table that differ only
    // in their pushed filters share the underlying read. Count the
    // filter-stripped scan shape as well.
    if let Some(base) = scan_base_key(plan) {
        *counts.entry(base).or_insert(0) += 1;
    }
    for c in plan.children() {
        count_subtrees(c, counts);
    }
}

/// Like [`count_subtrees`] but without the filter-stripped scan base
/// keys: used for semijoin reducer sources, where an exact-fingerprint
/// match against the join's build side is the sharing that pays and a
/// base-key match would only forfeit the scan's sarg skipping.
fn count_exact_subtrees(plan: &LogicalPlan, counts: &mut HashMap<u64, usize>) {
    if !plan.children().is_empty()
        || matches!(plan, LogicalPlan::Scan { filters, .. } if !filters.is_empty())
    {
        *counts.entry(fingerprint(plan)).or_insert(0) += 1;
    }
    for c in plan.children() {
        count_exact_subtrees(c, counts);
    }
}

/// The share key of a scan ignoring its pushed filters; `None` for
/// non-scans and for scans whose reducers do dynamic partition pruning
/// (their directory set is not known statically).
pub(crate) fn scan_base_key(plan: &LogicalPlan) -> Option<u64> {
    let LogicalPlan::Scan {
        table,
        projection,
        partitions,
        semijoin_filters,
        ..
    } = plan
    else {
        return None;
    };
    if semijoin_filters.iter().any(|s| s.is_partition_col) {
        return None;
    }
    let stripped = LogicalPlan::Scan {
        table: table.clone(),
        projection: projection.clone(),
        filters: vec![],
        partitions: partitions.clone(),
        semijoin_filters: vec![],
    };
    Some(fingerprint(&stripped) ^ 0x5ca4_ba5e)
}

/// Per-node execution trace (rows, I/O, reuse), consumed by
/// [`crate::simtime`].
#[derive(Debug, Clone, Default)]
pub struct NodeTrace {
    pub label: String,
    pub rows_in: u64,
    pub rows_out: u64,
    pub bytes_disk: u64,
    pub bytes_cache: u64,
    /// Bytes this operator wrote to spill files when the memory broker
    /// denied its working set (the read-back and the write both also
    /// count into `bytes_disk` — spill I/O is disk I/O to sim-time).
    pub bytes_spilled: u64,
    /// File-system operations (opens/ranged reads) — deltas make these
    /// grow, which is what compaction fights (§3.2).
    pub io_ops: u64,
    /// Rows that crossed a shuffle boundary into this node.
    pub shuffle_rows: u64,
    /// True for shuffle-boundary operators (join/agg/sort/setop).
    pub is_boundary: bool,
    /// Federated-scan latency contribution.
    pub external_ms: f64,
    /// Result served from the shared-work cache.
    pub shared_reuse: bool,
    /// Fragment/task attempts retried after injected faults (fragment
    /// failures, daemon deaths, transient-read exhaustion retries).
    pub fragment_retries: u64,
    /// Fragments re-dispatched onto a surviving daemon after their node
    /// died (§5.1 stateless-daemon failover).
    pub failovers: u64,
    /// Simulated wait spent in retry backoff (ms).
    pub backoff_wait_ms: f64,
    /// Injected gray-failure (slow I/O) latency attributed here (ms).
    pub injected_delay_ms: f64,
    /// Host worker threads this operator fanned morsels across (0 for
    /// operators with no parallel section, 1 for the serial fallback).
    pub parallel_workers: u64,
    /// Stages of this operator that executed fully compiled under the
    /// physical IR (filter/project pipelines, aggregate accumulator
    /// banks, join residual conjunctions). Zero when PIR is off.
    pub pir_compiled_stages: u64,
    /// Rows (candidate pairs, for join residuals) this operator ran
    /// through the interpreter while PIR was on — non-compilable
    /// expression shapes, spilled aggregates, grace joins.
    pub pir_fallback_rows: u64,
    pub children: Vec<NodeTrace>,
}

impl NodeTrace {
    pub(crate) fn leaf(label: &str) -> NodeTrace {
        NodeTrace {
            label: label.to_string(),
            ..Default::default()
        }
    }

    /// Sum of `f` over this node and all descendants.
    pub fn total<F: Fn(&NodeTrace) -> u64 + Copy>(&self, f: F) -> u64 {
        f(self) + self.children.iter().map(|c| c.total(f)).sum::<u64>()
    }

    /// Visit all nodes.
    pub fn visit(&self, f: &mut impl FnMut(&NodeTrace)) {
        f(self);
        for c in &self.children {
            c.visit(f);
        }
    }

    /// The widest stage of the traced plan in scheduler tasks: per node,
    /// `ceil((rows_in + rows_out) / rows_per_task)` capped at `cap`
    /// (cluster slots), maximized over the tree. Shared-reuse nodes cost
    /// nothing — their work ran once elsewhere. This mirrors the task
    /// fan-out `simtime` assumes, so it is the query's slot demand while
    /// it runs concurrently with others.
    pub fn max_parallel_tasks(&self, rows_per_task: u64, cap: u64) -> u64 {
        let own = if self.shared_reuse {
            0
        } else {
            (self.rows_in + self.rows_out)
                .div_ceil(rows_per_task.max(1))
                .min(cap)
        };
        self.children
            .iter()
            .map(|c| c.max_parallel_tasks(rows_per_task, cap))
            .fold(own, u64::max)
    }

    /// Flatten operator labels and output rows (runtime statistics for
    /// re-optimization feedback, §4.2).
    pub fn operator_rows(&self) -> Vec<(String, u64)> {
        let mut out = Vec::new();
        self.visit(&mut |n| out.push((n.label.clone(), n.rows_out)));
        out
    }
}

/// Execute a plan, returning the materialized result batch and the
/// trace tree (the compatibility entry point: reducers, MV rebuilds and
/// tests want compact rows).
pub fn execute(plan: &LogicalPlan, ctx: &ExecContext) -> Result<(VectorBatch, NodeTrace)> {
    let (sb, trace) = execute_sel(plan, ctx)?;
    Ok((sb.compact(), trace))
}

/// Execute a plan, returning a `(batch, selection)` pair. Operators
/// narrow selections and share `Arc`'d columns instead of copying
/// survivors; the caller compacts at its pipeline breaker (the driver's
/// output choke point, a join build, a reducer). With
/// `hive.exec.selvec.enabled` off, every operator boundary compacts
/// here instead — each operator's `All`-selection path is exactly the
/// pre-selection-vector code, which is what makes the toggle's
/// byte-identity structural rather than coincidental.
pub fn execute_sel(plan: &LogicalPlan, ctx: &ExecContext) -> Result<(SelBatch, NodeTrace)> {
    // Shared-work reuse check.
    let fp = fingerprint(plan);
    let is_shared = ctx.shared_counts.contains_key(&fp);
    if is_shared {
        if let Some(cached) = ctx.shared.lock().get(&fp) {
            let mut t = NodeTrace::leaf("SharedWorkReuse");
            t.rows_out = cached.num_rows() as u64;
            t.shared_reuse = true;
            return Ok((SelBatch::from_batch(cached.clone()), t));
        }
    }
    let (mut sb, mut trace) = execute_sel_inner(plan, ctx)?;
    // Per-vertex fault injection + fragment recovery (retries, node
    // failover); no-op when no fault plan is active.
    crate::recovery::apply_fragment_faults(ctx, &mut trace)?;
    if is_shared {
        // Shared results are consumed at several plan sites: store them
        // compacted once rather than re-gathering per consumer.
        let b = sb.compact();
        ctx.shared.lock().insert(fp, b.clone());
        sb = SelBatch::from_batch(b);
    }
    if !ctx.conf.effective_selvec_enabled() && !sb.is_compact() {
        sb = SelBatch::from_batch(sb.compact());
    }
    Ok((sb, trace))
}

/// True when `col_dt` already satisfies the declared output type (the
/// condition under which `align_column` passes a column through).
pub(crate) fn type_aligned(col_dt: &hive_common::DataType, want: &hive_common::DataType) -> bool {
    col_dt == want
        || matches!(
            (col_dt, want),
            (hive_common::DataType::Decimal(_, a), hive_common::DataType::Decimal(_, b)) if a == b
        )
}

fn execute_sel_inner(plan: &LogicalPlan, ctx: &ExecContext) -> Result<(SelBatch, NodeTrace)> {
    let schema = plan.schema();
    match plan {
        LogicalPlan::Scan { .. } => execute_scan(plan, ctx, &execute),
        LogicalPlan::Values { schema, rows } => {
            let rows: Vec<Row> = rows.iter().map(|r| Row::new(r.clone())).collect();
            let b = VectorBatch::from_rows(schema, &rows)?;
            let mut t = NodeTrace::leaf("Values");
            t.rows_out = b.num_rows() as u64;
            Ok((SelBatch::from_batch(b), t))
        }
        // Physical IR: fuse the maximal Filter/Project chain into one
        // compiled pipeline over a shared base batch (§ DESIGN.md 4).
        // The arms below remain the interpreter — the differential
        // oracle `hive.exec.pir.enabled=false` falls back to.
        LogicalPlan::Filter { .. } | LogicalPlan::Project { .. }
            if crate::pir::enabled(ctx.conf) =>
        {
            crate::pir::execute_chain(plan, ctx)
        }
        LogicalPlan::Filter { input, predicate } => {
            let (child, ct) = execute_sel(input, ctx)?;
            let rows_in = child.num_rows() as u64;
            // Kernels evaluate the predicate over every batch row, so a
            // stacked selection compacts first — vectorized evaluation
            // must only ever see rows the eager path would have seen.
            let base = child.compact();
            let idx = if ctx.conf.vectorized {
                filter_indices(predicate, &base)?
            } else {
                filter_indices_rowmode(predicate, &base)?
            };
            let mut t = NodeTrace::leaf("Filter");
            t.rows_in = rows_in;
            t.rows_out = idx.len() as u64;
            t.children = vec![ct];
            Ok((SelBatch::new(base, SelVec::Idx(idx))?, t))
        }
        LogicalPlan::Project { input, exprs, .. } => {
            let (child, ct) = execute_sel(input, ctx)?;
            let rows_in = child.num_rows() as u64;
            // All-trivial projections (bare column refs already in
            // their declared types) re-share the child's columns and
            // pass the selection through untouched — zero copies.
            let trivial = ctx.conf.vectorized
                && exprs.iter().enumerate().all(|(i, e)| {
                    matches!(e, ScalarExpr::Column(c)
                        if type_aligned(&child.batch.column(*c).data_type(), &schema.field(i).data_type))
                });
            if trivial {
                let cols = exprs
                    .iter()
                    .map(|e| match e {
                        ScalarExpr::Column(c) => child.batch.column_arc(*c).clone(),
                        _ => unreachable!("trivial projection is all column refs"),
                    })
                    .collect();
                let out = VectorBatch::from_arcs(schema.clone(), cols, child.batch.num_rows())?;
                let mut t = NodeTrace::leaf("Project");
                t.rows_in = rows_in;
                t.rows_out = rows_in;
                t.children = vec![ct];
                return Ok((SelBatch::new(out, child.sel)?, t));
            }
            // General expressions evaluate over a compact batch so they
            // only ever see selected rows (an unselected row could
            // error — or cost — where the eager path would not).
            let base = child.compact();
            let mut cols = Vec::with_capacity(exprs.len());
            for (i, e) in exprs.iter().enumerate() {
                if ctx.conf.vectorized {
                    let col = eval_vector(e, &base)?;
                    // Align the column to the declared output type.
                    cols.push(align_column(col, &schema.field(i).data_type)?);
                } else {
                    // Row-mode results build the declared output column
                    // directly (no whole-column `Vec<Value>` detour).
                    cols.push(std::sync::Arc::new(eval_rowmode(
                        e,
                        &base,
                        &schema.field(i).data_type,
                    )?));
                }
            }
            let out = VectorBatch::from_arcs(schema.clone(), cols, base.num_rows())?;
            let mut t = NodeTrace::leaf("Project");
            t.rows_in = rows_in;
            t.rows_out = out.num_rows() as u64;
            t.children = vec![ct];
            Ok((SelBatch::from_batch(out), t))
        }
        LogicalPlan::Join {
            left,
            right,
            join_type,
            equi,
            residual,
        } => {
            let (lb, lt) = execute_sel(left, ctx)?;
            let (rb, rt) = execute_sel(right, ctx)?;
            let morsels = crate::par::row_morsels(lb.num_rows().max(rb.num_rows()));
            let (workers, _lease) = ctx.lease_workers(morsels);
            let rows_in = (lb.num_rows() + rb.num_rows()) as u64;
            let sp = ctx.spill_ctx();
            let mut pc = crate::pir::PirCounters::default();
            let pir = crate::pir::enabled(ctx.conf).then_some(&mut pc);
            let out = execute_join_par(
                &lb,
                &rb,
                *join_type,
                equi,
                residual,
                &schema,
                ctx.conf.hash_join_row_budget,
                workers,
                ctx.conf.effective_rawtable_enabled(),
                sp.as_ref(),
                pir,
            )?;
            if let Some(g) = &ctx.card_guard {
                if let Some(e) = g.check(fingerprint(plan), out.num_rows() as u64) {
                    return Err(e);
                }
            }
            let mut t = NodeTrace::leaf(&format!("Join({join_type:?})"));
            t.parallel_workers = workers as u64;
            t.rows_in = rows_in;
            t.rows_out = out.num_rows() as u64;
            t.is_boundary = true;
            t.shuffle_rows = t.rows_in;
            t.pir_compiled_stages = pc.compiled_stages;
            t.pir_fallback_rows = pc.fallback_rows;
            t.children = vec![lt, rt];
            if let Some(sp) = &sp {
                fold_spill(&mut t, sp);
            }
            Ok((SelBatch::from_batch(out), t))
        }
        LogicalPlan::Aggregate {
            input,
            group_exprs,
            grouping_sets,
            aggs,
        } => {
            let (child, ct) = execute_sel(input, ctx)?;
            let (workers, _lease) = ctx.lease_workers(crate::par::row_morsels(child.num_rows()));
            let rows_in = child.num_rows() as u64;
            let sp = ctx.spill_ctx();
            let mut pc = crate::pir::PirCounters::default();
            let pir = crate::pir::enabled(ctx.conf).then_some(&mut pc);
            let out = execute_aggregate_par(
                &child,
                group_exprs,
                grouping_sets,
                aggs,
                &schema,
                workers,
                ctx.conf.effective_rawtable_enabled(),
                sp.as_ref(),
                pir,
            )?;
            let mut t = NodeTrace::leaf("Aggregate");
            t.parallel_workers = workers as u64;
            t.rows_in = rows_in;
            t.rows_out = out.num_rows() as u64;
            t.is_boundary = !group_exprs.is_empty() || grouping_sets.is_some();
            t.shuffle_rows = t.rows_in;
            t.pir_compiled_stages = pc.compiled_stages;
            t.pir_fallback_rows = pc.fallback_rows;
            t.children = vec![ct];
            if let Some(sp) = &sp {
                fold_spill(&mut t, sp);
            }
            Ok((SelBatch::from_batch(out), t))
        }
        LogicalPlan::Window { input, windows } => {
            let (child, ct) = execute_sel(input, ctx)?;
            let rows_in = child.num_rows() as u64;
            let out = execute_window(
                &child,
                windows,
                &schema,
                ctx.conf.effective_rawtable_enabled(),
            )?;
            let mut t = NodeTrace::leaf("Window");
            t.rows_in = rows_in;
            t.rows_out = out.num_rows() as u64;
            t.is_boundary = true;
            t.shuffle_rows = t.rows_in;
            t.children = vec![ct];
            Ok((SelBatch::from_batch(out), t))
        }
        LogicalPlan::Sort { input, keys } => {
            let (child, ct) = execute_sel(input, ctx)?;
            // Key expressions evaluate over whole batches; with a
            // stacked selection only bare column refs can read through
            // it, so anything else compacts first.
            let child = if child.sel.is_all()
                || keys.iter().all(|k| matches!(k.expr, ScalarExpr::Column(_)))
            {
                child
            } else {
                SelBatch::from_batch(child.compact())
            };
            let key_cols = keys
                .iter()
                .map(|k| eval_vector(&k.expr, &child.batch))
                .collect::<Result<Vec<_>>>()?;
            // Dictionary-encoded string keys compare through a rank
            // table built per distinct entry (see [`SortAccess`]); the
            // per-row comparator then never touches string bytes.
            let accesses: Vec<SortAccess<'_>> =
                key_cols.iter().map(|c| SortAccess::new(c)).collect();
            let n = child.num_rows();
            // Shared comparator: the in-memory stable sort and the
            // external-merge path must order rows identically (the
            // comparator reads dictionary rank tables, so dict-encoded
            // keys never decode on either path).
            let cmp = |a: u32, b: u32| {
                let (ra, rb) = (child.sel.index(a as usize), child.sel.index(b as usize));
                for (acc, key) in accesses.iter().zip(keys) {
                    let ord = acc.cmp_rows(ra, rb, key.nulls_first);
                    let ord = if key.asc { ord } else { ord.reverse() };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            };
            let sp = ctx.spill_ctx();
            let est = crate::spill::estimate_sort_bytes(n, keys.len().max(1));
            // Grant held for the whole sort; a denial degrades to
            // bounded runs + k-way merge (or, with spill disabled,
            // proceeds over budget — visible in the broker peak).
            let grant = sp.as_ref().map(|s| s.broker.try_reserve("sort", est));
            let pos: Vec<u32> = match (&sp, &grant) {
                (Some(sp), Some(None)) if sp.enabled => external_sort(
                    n,
                    crate::spill::estimate_sort_bytes(1, keys.len().max(1)),
                    cmp,
                    sp,
                )?,
                _ => {
                    let _forced = match (&sp, &grant) {
                        (Some(s), Some(None)) => Some(s.broker.force_reserve("sort", est)),
                        _ => None,
                    };
                    let mut pos: Vec<u32> = (0..n as u32).collect();
                    pos.sort_by(|&a, &b| cmp(a, b));
                    pos
                }
            };
            // The output permutation rides out as a selection —
            // sorting moves no column data at all.
            let sel = child.sel.compose(&pos);
            let mut t = NodeTrace::leaf("Sort");
            t.rows_in = n as u64;
            t.rows_out = sel.len() as u64;
            t.is_boundary = true;
            t.shuffle_rows = t.rows_in;
            t.children = vec![ct];
            if let Some(sp) = &sp {
                fold_spill(&mut t, sp);
            }
            Ok((SelBatch::new(child.batch, sel)?, t))
        }
        LogicalPlan::Limit { input, n } => {
            let (child, ct) = execute_sel(input, ctx)?;
            let rows_in = child.num_rows() as u64;
            let sel = child.sel.truncate(*n as usize);
            let mut t = NodeTrace::leaf("Limit");
            t.rows_in = rows_in;
            t.rows_out = sel.len() as u64;
            t.children = vec![ct];
            Ok((SelBatch::new(child.batch, sel)?, t))
        }
        LogicalPlan::Union { inputs } => {
            // Union buffers all inputs into one batch: a breaker.
            let mut out = VectorBatch::empty(&schema)?;
            let mut t = NodeTrace::leaf("UnionAll");
            for i in inputs {
                let (b, ct) = execute(i, ctx)?;
                t.rows_in += b.num_rows() as u64;
                out.append(&b)?;
                t.children.push(ct);
            }
            t.rows_out = out.num_rows() as u64;
            Ok((SelBatch::from_batch(out), t))
        }
        LogicalPlan::SetOp {
            op,
            all,
            left,
            right,
        } => {
            let (lb, lt) = execute(left, ctx)?;
            let (rb, rt) = execute(right, ctx)?;
            let out = execute_setop(
                *op,
                *all,
                &lb,
                &rb,
                &schema,
                ctx.conf.effective_rawtable_enabled(),
            )?;
            let mut t = NodeTrace::leaf(&format!("SetOp({op:?})"));
            t.rows_in = (lb.num_rows() + rb.num_rows()) as u64;
            t.rows_out = out.num_rows() as u64;
            t.is_boundary = true;
            t.shuffle_rows = t.rows_in;
            t.children = vec![lt, rt];
            Ok((SelBatch::from_batch(out), t))
        }
    }
}

/// Fold one operator's spill I/O into its trace node. Spill bytes
/// count into `bytes_disk` (the sim-time model meters them like any
/// other disk traffic) and retry backoff into `backoff_wait_ms` —
/// deliberately NOT into `fragment_retries`, which sim-time treats as
/// whole-task re-execution; a retried spill write re-does one I/O, not
/// the operator.
fn fold_spill(t: &mut NodeTrace, sp: &SpillCtx<'_>) {
    let (w, r) = (sp.stats.bytes_written(), sp.stats.bytes_read());
    t.bytes_spilled += w;
    t.bytes_disk += w + r;
    t.io_ops += sp.stats.files() + sp.stats.reads();
    t.backoff_wait_ms += sp.stats.backoff_ms();
}

/// External-merge sort: bounded runs + k-way merge. Positions are
/// split into consecutive chunks sized to the broker's working budget,
/// each chunk stable-sorted in memory and spilled as little-endian
/// `u32` positions, then merged. On ties the merge prefers the
/// lowest-index run; runs cover consecutive position ranges, so for
/// equal keys the earlier run holds the earlier original positions —
/// the merge output is exactly the in-memory stable sort's order,
/// which is what makes the tiny-budget arm byte-identical.
fn external_sort(
    n: usize,
    per_row: u64,
    cmp: impl Fn(u32, u32) -> std::cmp::Ordering,
    sp: &SpillCtx<'_>,
) -> Result<Vec<u32>> {
    let op = sp.next_op();
    let run_len = (sp.broker.chunk_budget() / per_row.max(1))
        .max(1024)
        .min(n.max(1) as u64) as usize;
    let mut files = Vec::new();
    let mut lo = 0usize;
    while lo < n {
        let hi = (lo + run_len).min(n);
        // Run state is charged (forced: the denial already happened;
        // runs are how the sort lives within its means).
        let _g = sp
            .broker
            .force_reserve("sort-run", (hi - lo) as u64 * per_row);
        let mut run: Vec<u32> = (lo as u32..hi as u32).collect();
        run.sort_by(|&a, &b| cmp(a, b));
        let mut buf = Vec::with_capacity(run.len() * 4);
        for p in &run {
            buf.extend_from_slice(&p.to_le_bytes());
        }
        files.push(sp.write(&format!("op{op}-run{}.sort", files.len()), buf)?);
        lo = hi;
    }
    // Merge state is the position arrays alone — 4 bytes/row versus
    // the full comparator working set the broker denied.
    let _merge = sp.broker.force_reserve("sort-merge", n as u64 * 4);
    let mut runs: Vec<Vec<u32>> = Vec::with_capacity(files.len());
    for f in &files {
        let buf = sp.read(f)?;
        if buf.len() % 4 != 0 {
            return Err(HiveError::Format("sort run not u32-aligned".into()));
        }
        runs.push(
            buf.chunks_exact(4)
                .map(|c| u32::from_le_bytes(c.try_into().expect("4-byte chunk")))
                .collect(),
        );
    }
    drop(files); // runs are merged from memory; delete the spill files
    let mut heads = vec![0usize; runs.len()];
    let mut out = Vec::with_capacity(n);
    loop {
        let mut best: Option<usize> = None;
        for (i, r) in runs.iter().enumerate() {
            if heads[i] >= r.len() {
                continue;
            }
            best = Some(match best {
                Some(b) if cmp(r[heads[i]], runs[b][heads[b]]) == std::cmp::Ordering::Less => i,
                Some(b) => b,
                None => i,
            });
        }
        let Some(i) = best else { break };
        out.push(runs[i][heads[i]]);
        heads[i] += 1;
    }
    Ok(out)
}

/// Per-key accessor for Sort: a dictionary-encoded string key compares
/// through a rank table built by sorting the distinct dictionary
/// entries once (equal entries share a rank, so ties — and with them
/// the stable sort's output order — match the value comparator
/// exactly); every other column compares via `sql_cmp` as before.
enum SortAccess<'a> {
    Ranked {
        codes: &'a [u32],
        nulls: Option<&'a hive_common::BitSet>,
        rank: Vec<u32>,
    },
    Plain(&'a hive_common::ColumnVector),
}

impl<'a> SortAccess<'a> {
    fn new(col: &'a hive_common::ColumnVector) -> SortAccess<'a> {
        if let Some((codes, dict, nulls)) = col.dict_parts() {
            let mut order: Vec<u32> = (0..dict.len() as u32).collect();
            order.sort_by(|&x, &y| dict[x as usize].cmp(&dict[y as usize]));
            let mut rank = vec![0u32; dict.len()];
            for (pos, &c) in order.iter().enumerate() {
                rank[c as usize] = if pos > 0 && dict[c as usize] == dict[order[pos - 1] as usize] {
                    rank[order[pos - 1] as usize]
                } else {
                    pos as u32
                };
            }
            return SortAccess::Ranked { codes, nulls, rank };
        }
        SortAccess::Plain(col)
    }

    fn cmp_rows(&self, a: usize, b: usize, nulls_first: bool) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        let with_nulls = |na: bool, nb: bool, non_null: Ordering| match (na, nb) {
            (true, true) => Ordering::Equal,
            (true, false) => {
                if nulls_first {
                    Ordering::Less
                } else {
                    Ordering::Greater
                }
            }
            (false, true) => {
                if nulls_first {
                    Ordering::Greater
                } else {
                    Ordering::Less
                }
            }
            (false, false) => non_null,
        };
        match self {
            SortAccess::Ranked { codes, nulls, rank } => {
                let na = nulls.is_some_and(|n| n.get(a));
                let nb = nulls.is_some_and(|n| n.get(b));
                let ord = if na || nb {
                    Ordering::Equal // unused: with_nulls short-circuits
                } else {
                    rank[codes[a] as usize].cmp(&rank[codes[b] as usize])
                };
                with_nulls(na, nb, ord)
            }
            SortAccess::Plain(col) => {
                let (va, vb) = (col.get(a), col.get(b));
                with_nulls(
                    va.is_null(),
                    vb.is_null(),
                    va.sql_cmp(&vb).unwrap_or(Ordering::Equal),
                )
            }
        }
    }
}

/// Coerce a column produced by a kernel to the declared output type
/// (kernels keep natural types; e.g. `Int + Int` stays Int even when
/// the planner widened the projection type). Aligned columns pass
/// through by handle.
pub(crate) fn align_column(
    col: std::sync::Arc<hive_common::ColumnVector>,
    want: &hive_common::DataType,
) -> Result<std::sync::Arc<hive_common::ColumnVector>> {
    if type_aligned(&col.data_type(), want) {
        return Ok(col);
    }
    let mut b = ColumnBuilder::new(want)?;
    for i in 0..col.len() {
        b.push(&col.get(i))?;
    }
    Ok(std::sync::Arc::new(b.finish()))
}

/// INTERSECT / EXCEPT via row-count maps (ALL keeps multiplicity).
///
/// On the flat-table arm (`rawtable`) rows are keyed by their canonical
/// encoding in one shared table arena — no `Row` materialization or
/// clone per input row; `Row`s are built only for emitted output. The
/// `HashMap<Row, i64>` arm stays as the differential oracle.
fn execute_setop(
    op: SetOperator,
    all: bool,
    left: &VectorBatch,
    right: &VectorBatch,
    schema: &hive_common::Schema,
    rawtable: bool,
) -> Result<VectorBatch> {
    // Shared emit decision: `in_right` is the row's right-side
    // multiplicity, `already` how many left occurrences preceded this
    // one. For EXCEPT ALL this is the multiset difference — emit
    // occurrences beyond those matched by right-side copies.
    let decide = |in_right: i64, already: i64| -> Result<bool> {
        Ok(match (op, all) {
            (SetOperator::Intersect, false) => in_right > 0 && already == 0,
            (SetOperator::Intersect, true) => in_right > already,
            (SetOperator::Except, false) => in_right == 0 && already == 0,
            (SetOperator::Except, true) => already + 1 > in_right,
            (SetOperator::Union, _) => {
                // The planner lowers UNION to LogicalPlan::Union nodes;
                // reaching here means a plan-construction bug, which
                // should fail the query, not the process.
                return Err(HiveError::Plan(
                    "UNION reached SetOp execution (unions lower to Union nodes)".into(),
                ));
            }
        })
    };
    let mut out_rows: Vec<Row> = Vec::new();
    if rawtable {
        let mut table = crate::rawtable::RawTable::new();
        let mut scratch: Vec<u8> = Vec::new();
        // Per table entry: right-side multiplicity / left rows seen.
        let mut right_count: Vec<i64> = Vec::new();
        let mut seen: Vec<i64> = Vec::new();
        for i in 0..right.num_rows() {
            scratch.clear();
            crate::rawtable::encode_row(right, i, &mut scratch);
            let (e, inserted) = table.insert(hive_common::hash::fnv1a(&scratch), &scratch);
            if inserted {
                right_count.push(0);
                seen.push(0);
            }
            right_count[e as usize] += 1;
        }
        for i in 0..left.num_rows() {
            scratch.clear();
            crate::rawtable::encode_row(left, i, &mut scratch);
            let (e, inserted) = table.insert(hive_common::hash::fnv1a(&scratch), &scratch);
            if inserted {
                right_count.push(0);
                seen.push(0);
            }
            let e = e as usize;
            if decide(right_count[e], seen[e])? {
                out_rows.push(left.row(i));
            }
            seen[e] += 1;
        }
    } else {
        let mut right_counts: HashMap<Row, i64> = HashMap::new();
        for i in 0..right.num_rows() {
            *right_counts.entry(right.row(i)).or_insert(0) += 1;
        }
        let mut emitted: HashMap<Row, i64> = HashMap::new();
        for i in 0..left.num_rows() {
            let row = left.row(i);
            let in_right = right_counts.get(&row).copied().unwrap_or(0);
            let already = emitted.entry(row.clone()).or_insert(0);
            if decide(in_right, *already)? {
                out_rows.push(row.clone());
            }
            *already += 1;
        }
    }
    VectorBatch::from_rows(schema, &out_rows)
}

/// Convenience for tests: run a plan with wide-open snapshots and no
/// LLAP/federation.
pub fn execute_simple(
    plan: &LogicalPlan,
    fs: &DistFs,
    ms: &Metastore,
    conf: &HiveConf,
) -> Result<(VectorBatch, NodeTrace)> {
    let snaps = WideOpenSnapshots(ms);
    let mut ctx = ExecContext::new(fs, ms, conf, None, &snaps, None);
    ctx.prepare_shared_work(plan);
    execute(plan, &ctx)
}

/// Map a retryable error to a fresh "overlay" configuration for the
/// re-execution (§4.2's overlay strategy): more conservative join
/// budgets and row-mode fallback off.
pub fn overlay_conf(conf: &HiveConf) -> HiveConf {
    let mut c = conf.clone();
    c.hash_join_row_budget = usize::MAX; // force sort-merge-like robustness
    c
}

const _: () = {
    // Compile-time guard: HiveError::Retryable drives reoptimization.
    fn _assert(e: &HiveError) -> bool {
        e.is_retryable()
    }
    // Compile-time guard: morsel workers share the context by reference,
    // so it must stay Sync (atomic charges, lock-protected caches).
    fn _assert_sync<T: Sync>() {}
    fn _ctx_is_sync() {
        _assert_sync::<ExecContext<'_>>();
    }
};
