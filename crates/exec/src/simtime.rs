//! The simulated cluster time model.
//!
//! Queries *execute for real* (results are exact); this module projects
//! the recorded per-operator work ([`NodeTrace`]) onto a model of the
//! paper's 10-node cluster to produce deterministic "response times".
//! The model's purpose is preserving the *shape* of the paper's results
//! (who wins and by roughly what factor), not absolute numbers — see
//! DESIGN.md's substitution table.
//!
//! Modeled effects:
//! * **container startup** — per-vertex YARN container allocation unless
//!   LLAP's persistent executors serve the fragment (§5, "execution
//!   required YARN containers allocation at start-up, which quickly
//!   became a critical bottleneck for low latency queries");
//! * **MapReduce emulation** — each shuffle boundary becomes a job with
//!   startup latency and intermediate materialization to the DFS
//!   (§2/§5: Tez removes exactly these);
//! * **I/O tiering** — bytes from disk vs. bytes from the LLAP cache;
//! * **vectorization** — interpreted row processing costs ~2.7× more
//!   CPU per row than vectorized batches ([39]);
//! * **parallelism** — work divides across `min(tasks, slots)` with
//!   task granularity `rows_per_task`.

use crate::engine::NodeTrace;
use hive_common::{EngineVersion, HiveConf, RuntimeKind};

/// Cost-model constants. All times in milliseconds, rates in bytes/ms.
#[derive(Debug, Clone)]
pub struct SimCostModel {
    /// YARN container allocation latency per execution vertex.
    pub container_startup_ms: f64,
    /// LLAP fragment dispatch latency per vertex (daemons are running).
    pub llap_dispatch_ms: f64,
    /// MapReduce job submission+init latency per shuffle stage.
    pub mr_job_startup_ms: f64,
    /// Aggregate disk read bandwidth per node (bytes/ms).
    pub disk_bytes_per_ms: f64,
    /// LLAP cache read bandwidth per node (bytes/ms).
    pub cache_bytes_per_ms: f64,
    /// Shuffle network bandwidth per node (bytes/ms).
    pub network_bytes_per_ms: f64,
    /// CPU cost per row for vectorized operators (ms/row).
    pub cpu_ms_per_row_vectorized: f64,
    /// CPU cost per row for the row interpreter (ms/row).
    pub cpu_ms_per_row_interpreted: f64,
    /// Assumed bytes per shuffled row.
    pub shuffle_row_bytes: f64,
    /// Latency per file-system operation (NameNode round trip + open +
    /// seek) — the per-file cost that makes uncompacted delta piles
    /// expensive (§3.2).
    pub io_op_ms: f64,
    /// JIT warmup penalty factor for fresh containers (first-wave work
    /// runs this much slower without long-lived executors).
    pub cold_jit_factor: f64,
}

impl Default for SimCostModel {
    fn default() -> Self {
        // The constants are calibrated for the bench-scale workloads
        // (tens of thousands of fact rows) so that the *ratio* of fixed
        // (startup/scheduling) to variable (CPU/I/O) cost matches the
        // paper's cluster at its 10 TB scale — see DESIGN.md's
        // substitution table and EXPERIMENTS.md's calibration notes.
        // Using raw cluster constants (e.g. ~6 s per MapReduce job)
        // would make fixed costs dwarf the laptop-scale work and
        // destroy the comparative shape the benchmarks reproduce.
        SimCostModel {
            container_startup_ms: 25.0,
            llap_dispatch_ms: 2.0,
            mr_job_startup_ms: 40.0,
            disk_bytes_per_ms: 150_000.0,      // ~150 MB/s per node
            cache_bytes_per_ms: 3_000_000.0,   // ~3 GB/s per node
            network_bytes_per_ms: 1_000_000.0, // ~1 GB/s per node
            cpu_ms_per_row_vectorized: 0.00015,
            cpu_ms_per_row_interpreted: 0.0004,
            shuffle_row_bytes: 48.0,
            io_op_ms: 0.35,
            cold_jit_factor: 1.4,
        }
    }
}

/// The simulated response time of a query execution, in milliseconds.
pub fn simulate_ms(trace: &NodeTrace, conf: &HiveConf, model: &SimCostModel) -> f64 {
    let session_startup = match (conf.llap_enabled, conf.runtime) {
        // AM + container fleet spin-up once per query.
        (false, RuntimeKind::Tez) => model.container_startup_ms,
        (false, RuntimeKind::MapReduce) => model.mr_job_startup_ms,
        (true, _) => model.llap_dispatch_ms,
    };
    session_startup + node_time(trace, conf, model)
}

fn node_time(node: &NodeTrace, conf: &HiveConf, model: &SimCostModel) -> f64 {
    // Children combine *additively*: the cluster is modeled as
    // throughput-bound (the paper's 10-node testbed under a full TPC-DS
    // run), so sibling subtrees consume shared executor/I/O capacity
    // rather than free idle slots. This is what makes repeated
    // subexpressions expensive and the shared-work optimizer (§4.5)
    // valuable; per-node work is already divided by the achievable
    // parallelism inside `own_time`.
    let children: f64 = node
        .children
        .iter()
        .map(|c| node_time(c, conf, model))
        .sum();
    children + own_time(node, conf, model)
}

fn own_time(node: &NodeTrace, conf: &HiveConf, model: &SimCostModel) -> f64 {
    if node.shared_reuse {
        // Shared work: the subtree was computed once elsewhere.
        return 0.0;
    }
    let slots = conf.total_slots().max(1) as f64;
    let rows = (node.rows_in + node.rows_out) as f64;
    let tasks = (rows / conf.rows_per_task as f64).ceil().max(1.0);
    let par = tasks.min(slots);

    let cpu_rate = if conf.vectorized {
        model.cpu_ms_per_row_vectorized
    } else {
        model.cpu_ms_per_row_interpreted
    };
    let jit = if conf.llap_enabled {
        1.0
    } else {
        model.cold_jit_factor
    };
    let mut t = rows * cpu_rate * jit / par;

    // I/O: disk vs cache tier (bandwidth scales with participating
    // nodes, capped by task parallelism).
    let io_par = par.min(conf.cluster_nodes as f64).max(1.0);
    t += node.bytes_disk as f64 / (model.disk_bytes_per_ms * io_par);
    t += node.bytes_cache as f64 / (model.cache_bytes_per_ms * io_par);
    t += node.io_ops as f64 * model.io_op_ms / io_par;
    t += node.external_ms;

    // Shuffle boundary costs.
    if node.is_boundary {
        let shuffle_bytes = node.shuffle_rows as f64 * model.shuffle_row_bytes;
        t += shuffle_bytes / (model.network_bytes_per_ms * io_par);
        match conf.runtime {
            RuntimeKind::Tez => {
                // New vertex: container wave or LLAP dispatch.
                t += if conf.llap_enabled {
                    model.llap_dispatch_ms
                } else {
                    model.container_startup_ms * (tasks / slots).ceil().clamp(1.0, 3.0)
                };
            }
            RuntimeKind::MapReduce => {
                // A whole new MR job: startup + materialize the
                // intermediate data to the DFS and read it back.
                t += model.mr_job_startup_ms;
                t += 2.0 * shuffle_bytes / (model.disk_bytes_per_ms * io_par);
            }
        }
    }

    // Fault-recovery charges. Each retried fragment re-runs roughly one
    // task's share of the vertex work; each failover additionally pays a
    // re-dispatch onto the surviving daemon (or a fresh container).
    // Backoff waits and injected gray-failure latency add directly —
    // deterministic for a fixed fault seed.
    if node.fragment_retries > 0 || node.failovers > 0 {
        let per_task = t / tasks;
        t += node.fragment_retries as f64 * per_task;
        let redispatch = if conf.llap_enabled {
            model.llap_dispatch_ms
        } else {
            model.container_startup_ms
        };
        t += node.failovers as f64 * redispatch;
    }
    t += node.backoff_wait_ms + node.injected_delay_ms;
    t
}

/// A convenience summary of a simulated run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimSummary {
    pub sim_ms: f64,
    pub rows_out: u64,
    pub bytes_disk: u64,
    pub bytes_cache: u64,
    pub version: EngineVersion,
}

/// Summarize a trace under a configuration.
pub fn summarize(trace: &NodeTrace, conf: &HiveConf, model: &SimCostModel) -> SimSummary {
    SimSummary {
        sim_ms: simulate_ms(trace, conf, model),
        rows_out: trace.rows_out,
        bytes_disk: trace.total(|n| n.bytes_disk),
        bytes_cache: trace.total(|n| n.bytes_cache),
        version: conf.version,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan_trace(bytes_disk: u64, bytes_cache: u64, rows: u64) -> NodeTrace {
        NodeTrace {
            label: "Scan".into(),
            rows_in: rows,
            rows_out: rows,
            bytes_disk,
            bytes_cache,
            ..Default::default()
        }
    }

    fn agg_over(child: NodeTrace, rows_in: u64) -> NodeTrace {
        NodeTrace {
            label: "Aggregate".into(),
            rows_in,
            rows_out: 100,
            is_boundary: true,
            shuffle_rows: rows_in,
            children: vec![child],
            ..Default::default()
        }
    }

    #[test]
    fn llap_beats_containers_on_warm_cache() {
        let model = SimCostModel::default();
        let mut with_llap = hive_common::HiveConf::v3_1();
        with_llap.llap_enabled = true;
        let mut without = with_llap.clone();
        without.llap_enabled = false;

        // Same logical work; LLAP run reads from cache.
        let cold = agg_over(scan_trace(500_000_000, 0, 2_000_000), 2_000_000);
        let warm = agg_over(scan_trace(0, 500_000_000, 2_000_000), 2_000_000);
        let t_container = simulate_ms(&cold, &without, &model);
        let t_llap = simulate_ms(&warm, &with_llap, &model);
        assert!(
            t_llap * 1.5 < t_container,
            "LLAP should be much faster: {t_llap:.0}ms vs {t_container:.0}ms"
        );
    }

    #[test]
    fn mapreduce_pays_per_stage() {
        let model = SimCostModel::default();
        let tez = hive_common::HiveConf::v3_1().with(|c| c.llap_enabled = false);
        let mr = hive_common::HiveConf::v1_2();
        // Two-stage query.
        let trace = agg_over(
            agg_over(scan_trace(100_000_000, 0, 1_000_000), 1_000_000),
            500,
        );
        let t_tez = simulate_ms(&trace, &tez, &model);
        let t_mr = simulate_ms(&trace, &mr, &model);
        assert!(
            t_mr > t_tez * 1.5,
            "MR stages should dominate: {t_mr:.0}ms vs {t_tez:.0}ms"
        );
    }

    #[test]
    fn shared_reuse_is_free() {
        let model = SimCostModel::default();
        let conf = hive_common::HiveConf::v3_1();
        let reused = NodeTrace {
            shared_reuse: true,
            rows_out: 1_000_000,
            bytes_disk: 1_000_000_000,
            ..NodeTrace::default()
        };
        let t = node_time(&reused, &conf, &model);
        assert_eq!(t, 0.0);
    }

    #[test]
    fn interpreter_costs_more_cpu() {
        let model = SimCostModel::default();
        let vec_conf = hive_common::HiveConf::v3_1();
        let row_conf = vec_conf.clone().with(|c| c.vectorized = false);
        let trace = scan_trace(0, 0, 10_000_000);
        let tv = node_time(&trace, &vec_conf, &model);
        let tr = node_time(&trace, &row_conf, &model);
        assert!(
            tr > tv * 2.0,
            "row mode should cost ~2.7x more CPU: {tr} vs {tv}"
        );
    }
}
