//! Window function execution: partition, order, and evaluate ranking /
//! navigation / framed-aggregate functions.

use crate::dict::{KeyPart, KeyReader};
use crate::kernels::eval_vector;
use crate::rawtable::RawTable;
use hive_common::hash;
use hive_common::{ColumnBuilder, ColumnVector, Result, SelBatch, SelVec, Value, VectorBatch};
use hive_optimizer::plan::window_output_type;
use hive_optimizer::{AggFunc, ScalarExpr, WindowExpr, WindowFunc};
use hive_sql::{FrameBound, WindowFrame};
use std::cmp::Ordering;
use std::sync::Arc;

/// Execute a Window node: input columns pass through, one extra column
/// per window expression is appended. The input arrives as a
/// `(batch, selection)` pair; output is 1:1 with the *selected* rows
/// (window output is compact — a pipeline breaker by nature).
/// `rawtable` selects the flat-table partition index
/// (`hive.exec.rawtable.enabled`); both arms bucket identical rows —
/// the `HashMap` arm stays as the differential oracle.
pub fn execute_window(
    input: &SelBatch,
    windows: &[WindowExpr],
    out_schema: &hive_common::Schema,
    rawtable: bool,
) -> Result<VectorBatch> {
    // Bare columns and literals read straight through the selection;
    // computed expressions need a compact domain, so compact once.
    fn trivial(e: &ScalarExpr) -> bool {
        matches!(e, ScalarExpr::Column(_) | ScalarExpr::Literal(_))
    }
    let sel_native = windows.iter().all(|w| {
        w.partition_by.iter().all(trivial)
            && w.order_by.iter().all(|k| trivial(&k.expr))
            && w.args.iter().all(trivial)
    });
    let input = if input.sel.is_all() || sel_native {
        input.clone()
    } else {
        SelBatch::from_batch(input.clone().compact())
    };
    let n = input.num_rows();
    // Pass-through columns: an `All` selection shares the input `Arc`s
    // untouched; an index selection gathers them here, once.
    let mut cols: Vec<Arc<ColumnVector>> = match &input.sel {
        SelVec::All(_) => input.batch.columns().to_vec(),
        SelVec::Idx(idx) => input
            .batch
            .columns()
            .iter()
            .map(|c| Arc::new(c.take(idx)))
            .collect(),
    };
    for w in windows {
        let dt = window_output_type(w, input.schema());
        let values = eval_one_window(&input, w, rawtable)?;
        let mut b = ColumnBuilder::new(&dt)?;
        for v in &values {
            b.push(v)?;
        }
        let col = b.finish();
        debug_assert_eq!(col.len(), n);
        cols.push(Arc::new(col));
    }
    VectorBatch::from_arcs(out_schema.clone(), cols, n)
}

/// Evaluate one window expression. All bookkeeping (partition lists,
/// sort order, frames, the output vec) lives in *position* space
/// (0..selected rows); column reads map through `input.sel`.
fn eval_one_window(input: &SelBatch, w: &WindowExpr, rawtable: bool) -> Result<Vec<Value>> {
    let n = input.num_rows();
    let at = |pos: usize| input.sel.index(pos);
    // Partition keys and order keys evaluated once.
    let part_cols = w
        .partition_by
        .iter()
        .map(|e| eval_vector(e, &input.batch))
        .collect::<Result<Vec<_>>>()?;
    let order_cols = w
        .order_by
        .iter()
        .map(|k| eval_vector(&k.expr, &input.batch))
        .collect::<Result<Vec<_>>>()?;
    let arg_cols = w
        .args
        .iter()
        .map(|e| eval_vector(e, &input.batch))
        .collect::<Result<Vec<_>>>()?;

    // Group positions by partition key. Dictionary-encoded partition
    // columns key by u32 code via [`KeyReader`] — no string clones.
    // (Output cells are written per position, so partition iteration
    // order is irrelevant to results.)
    let part_readers: Vec<KeyReader<'_>> = part_cols
        .iter()
        .map(|c| KeyReader::new(c.as_ref()))
        .collect();
    let buckets: Vec<Vec<usize>> = if rawtable {
        // Flat-table arm: partitions keyed by canonical key-part bytes
        // in the table arena; bucket index = entry id (dense in
        // first-seen order), no per-row `Vec<KeyPart>`.
        let mut table = RawTable::new();
        let mut scratch: Vec<u8> = Vec::new();
        let mut buckets: Vec<Vec<usize>> = Vec::new();
        for pos in 0..n {
            scratch.clear();
            for r in &part_readers {
                r.encode_part_at(at(pos), &mut scratch);
            }
            let (e, inserted) = table.insert(hash::fnv1a(&scratch), &scratch);
            if inserted {
                buckets.push(Vec::new());
            }
            buckets[e as usize].push(pos);
        }
        buckets
    } else {
        let mut partitions: std::collections::HashMap<Vec<KeyPart>, Vec<usize>> =
            std::collections::HashMap::new();
        for pos in 0..n {
            let key: Vec<KeyPart> = part_readers.iter().map(|r| r.part(at(pos))).collect();
            partitions.entry(key).or_default().push(pos);
        }
        partitions.into_values().collect()
    };

    let order_readers: Vec<KeyReader<'_>> = order_cols
        .iter()
        .map(|c| KeyReader::new(c.as_ref()))
        .collect();
    let mut out = vec![Value::Null; n];
    for mut rows in buckets {
        // Sort within the partition by the order keys.
        rows.sort_by(|&a, &b| {
            for (kc, key) in order_cols.iter().zip(&w.order_by) {
                let (va, vb) = (kc.get(at(a)), kc.get(at(b)));
                let ord = match (va.is_null(), vb.is_null()) {
                    (true, true) => Ordering::Equal,
                    (true, false) => {
                        if key.nulls_first {
                            Ordering::Less
                        } else {
                            Ordering::Greater
                        }
                    }
                    (false, true) => {
                        if key.nulls_first {
                            Ordering::Greater
                        } else {
                            Ordering::Less
                        }
                    }
                    (false, false) => va.sql_cmp(&vb).unwrap_or(Ordering::Equal),
                };
                let ord = if key.asc { ord } else { ord.reverse() };
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            Ordering::Equal
        });
        // Peer equality through key parts: code compare for
        // dictionary-encoded order columns, value compare otherwise.
        let peer_key = |i: usize| -> Vec<KeyPart> {
            order_readers.iter().map(|r| r.part(at(rows[i]))).collect()
        };
        match &w.func {
            WindowFunc::RowNumber => {
                for (pos, &r) in rows.iter().enumerate() {
                    out[r] = Value::BigInt(pos as i64 + 1);
                }
            }
            WindowFunc::Rank => {
                let mut rank = 1i64;
                for pos in 0..rows.len() {
                    if pos > 0 && peer_key(pos) != peer_key(pos - 1) {
                        rank = pos as i64 + 1;
                    }
                    out[rows[pos]] = Value::BigInt(rank);
                }
            }
            WindowFunc::DenseRank => {
                let mut rank = 1i64;
                for pos in 0..rows.len() {
                    if pos > 0 && peer_key(pos) != peer_key(pos - 1) {
                        rank += 1;
                    }
                    out[rows[pos]] = Value::BigInt(rank);
                }
            }
            WindowFunc::Ntile => {
                let buckets = arg_cols
                    .first()
                    .map(|c| c.get(at(rows[0])))
                    .and_then(|v| v.as_i64())
                    .unwrap_or(1)
                    .max(1) as usize;
                let len = rows.len();
                for (pos, &r) in rows.iter().enumerate() {
                    out[r] = Value::BigInt((pos * buckets / len.max(1)) as i64 + 1);
                }
            }
            WindowFunc::Lag | WindowFunc::Lead => {
                let offset = w
                    .args
                    .get(1)
                    .and_then(|a| match a {
                        ScalarExpr::Literal(v) => v.as_i64(),
                        _ => None,
                    })
                    .unwrap_or(1);
                let default = w.args.get(2).and_then(|a| match a {
                    ScalarExpr::Literal(v) => Some(v.clone()),
                    _ => None,
                });
                for pos in 0..rows.len() {
                    let target = if w.func == WindowFunc::Lag {
                        pos as i64 - offset
                    } else {
                        pos as i64 + offset
                    };
                    out[rows[pos]] = if target >= 0 && (target as usize) < rows.len() {
                        arg_cols[0].get(at(rows[target as usize]))
                    } else {
                        default.clone().unwrap_or(Value::Null)
                    };
                }
            }
            WindowFunc::FirstValue => {
                for &r in &rows {
                    out[r] = arg_cols[0].get(at(rows[0]));
                }
            }
            WindowFunc::LastValue => {
                // Default frame (up to current row): last value is the
                // current row's value; with an explicit full frame it is
                // the partition's last.
                let full = matches!(
                    &w.frame,
                    Some(WindowFrame {
                        end: FrameBound::UnboundedFollowing,
                        ..
                    })
                );
                for (pos, &r) in rows.iter().enumerate() {
                    let src = if full {
                        rows[rows.len() - 1]
                    } else {
                        rows[pos]
                    };
                    out[r] = arg_cols[0].get(at(src));
                }
            }
            WindowFunc::Agg(func) => {
                let frame = effective_frame(w);
                for pos in 0..rows.len() {
                    let (lo, hi) = frame_bounds(&frame, pos, rows.len());
                    let mut acc = AggState::new(*func);
                    for &r in &rows[lo..hi] {
                        let v = arg_cols.first().map(|c| c.get(at(r)));
                        acc.update(v.as_ref())?;
                    }
                    out[rows[pos]] = acc.finish();
                }
            }
        }
    }
    Ok(out)
}

/// Default frame semantics: with ORDER BY, unbounded-preceding..current;
/// without, the whole partition.
fn effective_frame(w: &WindowExpr) -> WindowFrame {
    match &w.frame {
        Some(f) => f.clone(),
        None if !w.order_by.is_empty() => WindowFrame {
            start: FrameBound::UnboundedPreceding,
            end: FrameBound::CurrentRow,
        },
        None => WindowFrame {
            start: FrameBound::UnboundedPreceding,
            end: FrameBound::UnboundedFollowing,
        },
    }
}

fn frame_bounds(frame: &WindowFrame, pos: usize, len: usize) -> (usize, usize) {
    let lo = match &frame.start {
        FrameBound::UnboundedPreceding => 0,
        FrameBound::Preceding(k) => pos.saturating_sub(*k as usize),
        FrameBound::CurrentRow => pos,
        FrameBound::Following(k) => (pos + *k as usize).min(len),
        FrameBound::UnboundedFollowing => len,
    };
    let hi = match &frame.end {
        FrameBound::UnboundedPreceding => 0,
        FrameBound::Preceding(k) => pos.saturating_sub(*k as usize).saturating_add(1).min(len),
        FrameBound::CurrentRow => (pos + 1).min(len),
        FrameBound::Following(k) => (pos + 1 + *k as usize).min(len),
        FrameBound::UnboundedFollowing => len,
    };
    (lo.min(hi), hi)
}

/// Small aggregate state for framed window aggregates.
struct AggState {
    func: AggFunc,
    count: i64,
    sum: Option<Value>,
    fsum: f64,
    fcount: i64,
    min: Option<Value>,
    max: Option<Value>,
}

impl AggState {
    fn new(func: AggFunc) -> Self {
        AggState {
            func,
            count: 0,
            sum: None,
            fsum: 0.0,
            fcount: 0,
            min: None,
            max: None,
        }
    }

    fn update(&mut self, v: Option<&Value>) -> Result<()> {
        let Some(v) = v else {
            self.count += 1;
            return Ok(());
        };
        if v.is_null() {
            return Ok(());
        }
        self.count += 1;
        self.sum = Some(match self.sum.take() {
            None => v.clone(),
            Some(cur) => cur.add(v)?,
        });
        if let Some(f) = v.as_f64() {
            self.fsum += f;
            self.fcount += 1;
        }
        if self
            .min
            .as_ref()
            .is_none_or(|m| v.sql_cmp(m) == Some(Ordering::Less))
        {
            self.min = Some(v.clone());
        }
        if self
            .max
            .as_ref()
            .is_none_or(|m| v.sql_cmp(m) == Some(Ordering::Greater))
        {
            self.max = Some(v.clone());
        }
        Ok(())
    }

    fn finish(self) -> Value {
        match self.func {
            AggFunc::Count => Value::BigInt(self.count),
            AggFunc::Sum => self.sum.unwrap_or(Value::Null),
            AggFunc::Min => self.min.unwrap_or(Value::Null),
            AggFunc::Max => self.max.unwrap_or(Value::Null),
            AggFunc::Avg => {
                if self.fcount == 0 {
                    Value::Null
                } else {
                    Value::Double(self.fsum / self.fcount as f64)
                }
            }
            AggFunc::StddevSamp => Value::Null,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hive_common::{DataType, Field, Row, Schema};
    use hive_optimizer::SortKey;

    fn input() -> VectorBatch {
        let schema = Schema::new(vec![
            Field::new("dept", DataType::String),
            Field::new("sal", DataType::Int),
        ]);
        VectorBatch::from_rows(
            &schema,
            &[
                Row::new(vec![Value::String("a".into()), Value::Int(10)]),
                Row::new(vec![Value::String("a".into()), Value::Int(30)]),
                Row::new(vec![Value::String("a".into()), Value::Int(30)]),
                Row::new(vec![Value::String("b".into()), Value::Int(5)]),
            ],
        )
        .unwrap()
    }

    fn wexpr(func: WindowFunc, args: Vec<ScalarExpr>, frame: Option<WindowFrame>) -> WindowExpr {
        WindowExpr {
            func,
            args,
            partition_by: vec![ScalarExpr::Column(0)],
            order_by: vec![SortKey {
                expr: ScalarExpr::Column(1),
                asc: true,
                nulls_first: false,
            }],
            frame,
        }
    }

    fn run(w: WindowExpr) -> Vec<Value> {
        let b = input();
        let plan_schema = {
            let mut fields = b.schema().fields().to_vec();
            fields.push(Field::new("_w0", window_output_type(&w, b.schema())));
            Schema::new(fields)
        };
        // Both toggle arms must agree on every case in this module.
        let sb = SelBatch::from_batch(b);
        let out = execute_window(&sb, std::slice::from_ref(&w), &plan_schema, true).unwrap();
        let oracle = execute_window(&sb, &[w], &plan_schema, false).unwrap();
        assert_eq!(out, oracle, "toggle arms diverged");
        (0..out.num_rows()).map(|i| out.column(2).get(i)).collect()
    }

    #[test]
    fn row_number_and_ranks() {
        assert_eq!(
            run(wexpr(WindowFunc::RowNumber, vec![], None)),
            vec![
                Value::BigInt(1),
                Value::BigInt(2),
                Value::BigInt(3),
                Value::BigInt(1)
            ]
        );
        assert_eq!(
            run(wexpr(WindowFunc::Rank, vec![], None)),
            vec![
                Value::BigInt(1),
                Value::BigInt(2),
                Value::BigInt(2),
                Value::BigInt(1)
            ]
        );
        assert_eq!(
            run(wexpr(WindowFunc::DenseRank, vec![], None)),
            vec![
                Value::BigInt(1),
                Value::BigInt(2),
                Value::BigInt(2),
                Value::BigInt(1)
            ]
        );
    }

    #[test]
    fn running_sum_default_frame() {
        assert_eq!(
            run(wexpr(
                WindowFunc::Agg(AggFunc::Sum),
                vec![ScalarExpr::Column(1)],
                None
            )),
            vec![
                Value::Int(10),
                Value::Int(40),
                Value::Int(70),
                Value::Int(5)
            ]
        );
    }

    #[test]
    fn sliding_frame() {
        assert_eq!(
            run(wexpr(
                WindowFunc::Agg(AggFunc::Sum),
                vec![ScalarExpr::Column(1)],
                Some(WindowFrame {
                    start: FrameBound::Preceding(1),
                    end: FrameBound::CurrentRow,
                })
            )),
            vec![
                Value::Int(10),
                Value::Int(40),
                Value::Int(60),
                Value::Int(5)
            ]
        );
    }

    #[test]
    fn lag_lead() {
        assert_eq!(
            run(wexpr(WindowFunc::Lag, vec![ScalarExpr::Column(1)], None)),
            vec![Value::Null, Value::Int(10), Value::Int(30), Value::Null]
        );
        assert_eq!(
            run(wexpr(WindowFunc::Lead, vec![ScalarExpr::Column(1)], None)),
            vec![Value::Int(30), Value::Int(30), Value::Null, Value::Null]
        );
    }

    #[test]
    fn first_last_value() {
        assert_eq!(
            run(wexpr(
                WindowFunc::FirstValue,
                vec![ScalarExpr::Column(1)],
                None
            )),
            vec![
                Value::Int(10),
                Value::Int(10),
                Value::Int(10),
                Value::Int(5)
            ]
        );
    }
}
