//! Hash aggregation, including DISTINCT aggregates and GROUPING SETS.
//!
//! The build phase is morsel-parallel: rows are partitioned by a stable
//! group-key hash so each group's rows land in exactly one partition
//! and fold in ascending row order — the same fold order as the serial
//! loop, which matters for order-sensitive accumulators (f64 sums,
//! Welford variance). Partitions merge by each group's first-seen row
//! index, so the emitted row order is byte-identical for any worker or
//! partition count (and deterministic, unlike HashMap iteration order).

use crate::dict::{KeyPart, KeyReader};
use crate::kernels::eval_vector;
use crate::rawtable::{self, RawTable};
use crate::spill::{partition_of, plan_partition, push_rec, RecIter, SpillCtx};
use hive_common::hash::FNV_OFFSET;
use hive_common::{ColumnVector, Result, Row, SelBatch, SelVec, Value, VectorBatch};
use hive_optimizer::{AggExpr, AggFunc, ScalarExpr};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// One in-flight aggregate state.
#[derive(Debug, Clone)]
enum Acc {
    Count(i64),
    Sum(Option<Value>),
    Min(Option<Value>),
    Max(Option<Value>),
    Avg {
        sum: f64,
        count: i64,
    },
    /// Welford's online variance.
    Stddev {
        n: i64,
        mean: f64,
        m2: f64,
    },
    Distinct {
        seen: DistinctSet,
        func: AggFunc,
    },
}

/// Dedup state for DISTINCT aggregates. Both representations keep the
/// distinct values in first-seen order (`vals`), so fold-order
/// sensitive finishers (SUM/AVG over doubles) are byte-identical
/// across the `hive.exec.rawtable.enabled` toggle and across worker
/// counts — a group's rows all live in one partition and arrive in
/// ascending row order, so first-seen order is thread-invariant.
#[derive(Debug, Clone)]
enum DistinctSet {
    /// `HashMap` oracle path (toggle off).
    Map {
        set: HashSet<Value>,
        vals: Vec<Value>,
    },
    /// Flat-table path: dedup by canonical encoding bytes, no `Value`
    /// clone for already-seen inputs.
    Raw {
        table: RawTable,
        scratch: Vec<u8>,
        vals: Vec<Value>,
    },
}

impl DistinctSet {
    fn new(use_rawtable: bool) -> DistinctSet {
        if use_rawtable {
            DistinctSet::Raw {
                table: RawTable::new(),
                scratch: Vec::new(),
                vals: Vec::new(),
            }
        } else {
            DistinctSet::Map {
                set: HashSet::new(),
                vals: Vec::new(),
            }
        }
    }

    fn insert(&mut self, v: &Value) {
        match self {
            DistinctSet::Map { set, vals } => {
                if set.insert(v.clone()) {
                    vals.push(v.clone());
                }
            }
            DistinctSet::Raw {
                table,
                scratch,
                vals,
            } => {
                let h = rawtable::hash_value(v, scratch);
                let (_, inserted) = table.insert(h, scratch);
                if inserted {
                    vals.push(v.clone());
                }
            }
        }
    }

    fn into_vals(self) -> Vec<Value> {
        match self {
            DistinctSet::Map { vals, .. } | DistinctSet::Raw { vals, .. } => vals,
        }
    }
}

impl Acc {
    fn new(a: &AggExpr, use_rawtable: bool) -> Acc {
        if a.distinct {
            return Acc::Distinct {
                seen: DistinctSet::new(use_rawtable),
                func: a.func,
            };
        }
        match a.func {
            AggFunc::Count => Acc::Count(0),
            AggFunc::Sum => Acc::Sum(None),
            AggFunc::Min => Acc::Min(None),
            AggFunc::Max => Acc::Max(None),
            AggFunc::Avg => Acc::Avg { sum: 0.0, count: 0 },
            AggFunc::StddevSamp => Acc::Stddev {
                n: 0,
                mean: 0.0,
                m2: 0.0,
            },
        }
    }

    /// Fold one value (`None` arg = COUNT(*) semantics).
    fn update(&mut self, v: Option<&Value>) -> Result<()> {
        match self {
            Acc::Count(c) => {
                match v {
                    None => *c += 1,                    // COUNT(*)
                    Some(x) if !x.is_null() => *c += 1, // COUNT(expr)
                    _ => {}
                }
            }
            Acc::Sum(acc) => {
                if let Some(x) = v {
                    if !x.is_null() {
                        *acc = Some(match acc.take() {
                            None => x.clone(),
                            Some(cur) => cur.add(x)?,
                        });
                    }
                }
            }
            Acc::Min(acc) => {
                if let Some(x) = v {
                    if !x.is_null() {
                        let replace = match acc {
                            None => true,
                            Some(cur) => x.sql_cmp(cur) == Some(std::cmp::Ordering::Less),
                        };
                        if replace {
                            *acc = Some(x.clone());
                        }
                    }
                }
            }
            Acc::Max(acc) => {
                if let Some(x) = v {
                    if !x.is_null() {
                        let replace = match acc {
                            None => true,
                            Some(cur) => x.sql_cmp(cur) == Some(std::cmp::Ordering::Greater),
                        };
                        if replace {
                            *acc = Some(x.clone());
                        }
                    }
                }
            }
            Acc::Avg { sum, count } => {
                if let Some(x) = v {
                    if let Some(f) = x.as_f64() {
                        *sum += f;
                        *count += 1;
                    }
                }
            }
            Acc::Stddev { n, mean, m2 } => {
                if let Some(x) = v {
                    if let Some(f) = x.as_f64() {
                        *n += 1;
                        let delta = f - *mean;
                        *mean += delta / *n as f64;
                        *m2 += delta * (f - *mean);
                    }
                }
            }
            Acc::Distinct { seen, .. } => {
                if let Some(x) = v {
                    if !x.is_null() {
                        seen.insert(x);
                    }
                }
            }
        }
        Ok(())
    }

    fn finish(self) -> Result<Value> {
        Ok(match self {
            Acc::Count(c) => Value::BigInt(c),
            Acc::Sum(v) => v.unwrap_or(Value::Null),
            Acc::Min(v) | Acc::Max(v) => v.unwrap_or(Value::Null),
            Acc::Avg { sum, count } => {
                if count == 0 {
                    Value::Null
                } else {
                    Value::Double(sum / count as f64)
                }
            }
            Acc::Stddev { n, m2, .. } => {
                if n < 2 {
                    Value::Null
                } else {
                    Value::Double((m2 / (n - 1) as f64).sqrt())
                }
            }
            Acc::Distinct { seen, func } => {
                // Fold in first-seen order (see [`DistinctSet`]) — the
                // deterministic order both toggle arms share.
                let vals = seen.into_vals();
                match func {
                    AggFunc::Count => Value::BigInt(vals.len() as i64),
                    AggFunc::Sum => {
                        let mut acc: Option<Value> = None;
                        for v in vals {
                            acc = Some(match acc {
                                None => v,
                                Some(cur) => cur.add(&v)?,
                            });
                        }
                        acc.unwrap_or(Value::Null)
                    }
                    AggFunc::Avg => {
                        let (mut s, mut n) = (0.0, 0);
                        for v in &vals {
                            if let Some(f) = v.as_f64() {
                                s += f;
                                n += 1;
                            }
                        }
                        if n == 0 {
                            Value::Null
                        } else {
                            Value::Double(s / n as f64)
                        }
                    }
                    AggFunc::Min => vals
                        .into_iter()
                        .min_by(|a, b| a.total_cmp_nulls_last(b))
                        .unwrap_or(Value::Null),
                    AggFunc::Max => vals
                        .into_iter()
                        .max_by(|a, b| a.total_cmp_nulls_last(b))
                        .unwrap_or(Value::Null),
                    AggFunc::StddevSamp => Value::Null,
                }
            }
        })
    }
}

/// Execute an Aggregate node over a materialized input (serial path;
/// identical results to [`execute_aggregate_par`] at any worker count).
pub fn execute_aggregate(
    input: &VectorBatch,
    group_exprs: &[ScalarExpr],
    grouping_sets: &Option<Vec<Vec<usize>>>,
    aggs: &[AggExpr],
    out_schema: &hive_common::Schema,
) -> Result<VectorBatch> {
    execute_aggregate_par(
        &SelBatch::from_batch(input.clone()),
        group_exprs,
        grouping_sets,
        aggs,
        out_schema,
        1,
        true,
        None,
        None,
    )
}

/// Execute an Aggregate node over a materialized input with a
/// hash-partitioned parallel build across up to `workers` threads.
///
/// The input arrives as a `(batch, selection)` pair: bare-column keys
/// and arguments read straight through the selection (no compaction),
/// computed expressions compact the input once up front.
///
/// `out_schema` is the logical node's output schema (group keys, aggs,
/// and the grouping-id column when `grouping_sets` is present).
///
/// `rawtable` selects the flat-table build (`hive.exec.rawtable.enabled`);
/// both arms are byte-identical — the `HashMap` arm stays as the
/// differential oracle.
///
/// `pir` is `Some` when the physical IR is enabled: the build then
/// records each row's group assignment and folds every aggregate
/// through a compiled accumulator kernel ([`crate::pir::agg`]) when all
/// of them are compilable, reporting compiled/fallback accounting into
/// the counters.
#[allow(clippy::too_many_arguments)]
pub fn execute_aggregate_par(
    input: &SelBatch,
    group_exprs: &[ScalarExpr],
    grouping_sets: &Option<Vec<Vec<usize>>>,
    aggs: &[AggExpr],
    out_schema: &hive_common::Schema,
    workers: usize,
    rawtable: bool,
    spill: Option<&SpillCtx<'_>>,
    mut pir: Option<&mut crate::pir::PirCounters>,
) -> Result<VectorBatch> {
    let trivial = group_exprs
        .iter()
        .all(|g| matches!(g, ScalarExpr::Column(_)))
        && aggs.iter().all(|a| {
            a.arg
                .as_ref()
                .is_none_or(|e| matches!(e, ScalarExpr::Column(_)))
        });
    let input = if input.sel.is_all() || trivial {
        input.clone()
    } else {
        SelBatch::from_batch(input.clone().compact())
    };
    // Evaluate key and argument columns once, over the batch domain
    // (bare columns are `Arc` clones — zero copy); the build below maps
    // selected positions back through `input.sel`.
    let key_cols = group_exprs
        .iter()
        .map(|g| eval_vector(g, &input.batch))
        .collect::<Result<Vec<_>>>()?;
    let arg_cols = aggs
        .iter()
        .map(|a| {
            a.arg
                .as_ref()
                .map(|e| eval_vector(e, &input.batch))
                .transpose()
        })
        .collect::<Result<Vec<_>>>()?;

    // Compiled-accumulator gate: every aggregate must have a
    // monomorphized kernel for its argument's runtime representation,
    // or the whole build stays on the interpreted `Acc::update` loop
    // (mixing per-agg would change nothing — the per-row dispatch is
    // the cost being removed).
    let compiled = pir.is_some()
        && aggs
            .iter()
            .zip(&arg_cols)
            .all(|(a, c)| crate::pir::agg::compilable(a.func, a.distinct, c.as_deref()));

    let sets: Vec<Vec<usize>> = match grouping_sets {
        Some(s) => s.clone(),
        None => vec![(0..group_exprs.len()).collect()],
    };
    let with_gid = grouping_sets.is_some();

    let mut any_compiled = false;
    let mut out_rows: Vec<Row> = Vec::new();
    for set in &sets {
        // Grouping id: bit k set when key k is aggregated away.
        let gid: i64 = (0..group_exprs.len())
            .filter(|k| !set.contains(k))
            .fold(0i64, |acc, k| acc | (1 << k));
        // Memory admission: the modeled table bytes (rows is the upper
        // bound on groups) must win a broker grant, held through the
        // build. A denial degrades to the partitioned spilling build;
        // with spill disabled the build proceeds over budget instead
        // (visible in the broker peak) — group-bys have no in-memory
        // fallback the way joins have re-optimization.
        let est = crate::spill::estimate_agg_bytes(input.sel.len(), set.len().max(1), aggs.len());
        let admission = spill.map(|sp| (sp, sp.broker.try_reserve("group-by", est)));
        let spilled = matches!(&admission, Some((sp, None)) if sp.enabled);
        // The spilling build keeps the interpreted accumulators: its
        // record-at-a-time recursion has no batch to fold over.
        if let Some(pc) = pir.as_deref_mut() {
            if compiled && !spilled {
                any_compiled = true;
            } else {
                pc.fallback_rows += input.sel.len() as u64;
            }
        }
        let mut groups = match &admission {
            Some((sp, None)) if sp.enabled => {
                build_groups_spilled(&input.sel, &key_cols, &arg_cols, set, aggs, rawtable, sp)?
            }
            _ => {
                let _forced = match &admission {
                    Some((sp, None)) => Some(sp.broker.force_reserve("group-by", est)),
                    _ => None,
                };
                build_groups(
                    &input.sel, &key_cols, &arg_cols, set, aggs, workers, rawtable, compiled,
                )?
            }
        };
        // Global aggregation with no keys over empty input yields the
        // neutral row.
        if groups.is_empty() && set.is_empty() {
            groups.push((
                Vec::new(),
                aggs.iter().map(|a| Acc::new(a, rawtable)).collect(),
            ));
        }
        for (key, accs) in groups {
            let mut row: Vec<Value> = Vec::with_capacity(out_schema.len());
            let mut key_iter = key.into_iter();
            for k in 0..group_exprs.len() {
                if set.contains(&k) {
                    // invariant: the key vec holds exactly one value per
                    // member of `set`, pushed in `set` order below.
                    row.push(key_iter.next().ok_or_else(|| {
                        hive_common::HiveError::Execution("group key arity mismatch".into())
                    })?);
                } else {
                    row.push(Value::Null);
                }
            }
            // Keys were produced in `set` order; reorder into key-index
            // order. (`set` is ascending by construction from the
            // parser, so the straight zip above is already aligned —
            // assert in debug builds.)
            debug_assert!(set.windows(2).all(|w| w[0] < w[1]));
            for acc in accs {
                row.push(acc.finish()?);
            }
            if with_gid {
                row.push(Value::BigInt(gid));
            }
            out_rows.push(Row::new(row));
        }
    }
    if any_compiled {
        if let Some(pc) = pir {
            pc.compiled_stages += 1;
        }
    }
    VectorBatch::from_rows(out_schema, &out_rows)
}

/// Replace each group's interpreted accumulator states with the
/// compiled fold of the recorded `(row, group)` assignment — one
/// type-specialized pass per aggregate over the whole partition.
fn fold_compiled(
    groups: &mut [(usize, Vec<Acc>)],
    rows_idx: &[u32],
    assign: &[u32],
    aggs: &[AggExpr],
    arg_cols: &[Option<Arc<ColumnVector>>],
) -> Result<()> {
    use crate::pir::agg::{fold, FoldOut};
    if groups.is_empty() {
        return Ok(());
    }
    for (ai, a) in aggs.iter().enumerate() {
        match fold(
            a.func,
            arg_cols[ai].as_deref(),
            rows_idx,
            assign,
            groups.len(),
        )? {
            FoldOut::Count(cs) => {
                for (g, c) in groups.iter_mut().zip(cs) {
                    g.1[ai] = Acc::Count(c);
                }
            }
            FoldOut::Opt(vs) => {
                for (g, v) in groups.iter_mut().zip(vs) {
                    g.1[ai] = match a.func {
                        AggFunc::Sum => Acc::Sum(v),
                        AggFunc::Min => Acc::Min(v),
                        _ => Acc::Max(v),
                    };
                }
            }
            FoldOut::Avg(ss) => {
                for (g, (sum, count)) in groups.iter_mut().zip(ss) {
                    g.1[ai] = Acc::Avg { sum, count };
                }
            }
        }
    }
    Ok(())
}

/// Stable FNV-1a hashes of the group keys for selected positions
/// `lo..hi`, computed column-wise: one pass per key column folding that
/// column's canonical key-part encoding into every row's running state
/// (the batch-at-a-time combine step; see [`hive_common::hash`]).
///
/// The same hash serves both toggle arms: it routes rows to build
/// partitions (replacing the old per-row `DefaultHasher`), and on the
/// flat-table arm it doubles as the table probe hash — by construction
/// it equals `fnv1a` of the concatenated key-part encodings, i.e. of
/// the arena key bytes. Routing is result-invisible (merge order comes
/// from first-seen row indices), so dictionary codes are safe to hash.
fn hash_rows(readers: &[KeyReader<'_>], sel: &SelVec, lo: usize, hi: usize) -> Vec<u64> {
    let mut hs = vec![FNV_OFFSET; hi - lo];
    let mut scratch: Vec<u8> = Vec::new();
    for r in readers {
        for (slot, h) in hs.iter_mut().enumerate() {
            *h = r.fold_part_at(sel.index(lo + slot), *h, &mut scratch);
        }
    }
    hs
}

/// Build the aggregation state for one grouping set, returning groups
/// ordered by their first-seen selected position — exactly the order
/// the serial single-pass build discovers them in, for any `workers`
/// count. Iteration runs over selected positions `0..sel.len()`; the
/// key/arg columns span the batch domain and are read at `sel.index(p)`.
#[allow(clippy::too_many_arguments)]
fn build_groups(
    sel: &SelVec,
    key_cols: &[Arc<ColumnVector>],
    arg_cols: &[Option<Arc<ColumnVector>>],
    set: &[usize],
    aggs: &[AggExpr],
    workers: usize,
    rawtable: bool,
    compiled: bool,
) -> Result<Vec<(Vec<Value>, Vec<Acc>)>> {
    let num_rows = sel.len();
    // Key access goes through per-column readers: dictionary-encoded
    // string columns contribute their u32 code (no string clone, no
    // Value allocation per row), everything else its scalar value.
    let readers: Vec<KeyReader<'_>> = set
        .iter()
        .map(|&k| KeyReader::new(key_cols[k].as_ref()))
        .collect();
    // Dense group lookup for the common single-dictionary-key case:
    // slot 0 is the NULL group, slot c+1 the group of code c — no
    // per-row key bytes, no table probe at all (both arms).
    let dense_len = match &readers[..] {
        [r] => r.dict_len(),
        _ => None,
    };

    let parallel = workers > 1 && num_rows >= 2;
    // Hashes route rows to partitions (parallel build) and serve as the
    // flat-table probe hash (rawtable arm, non-dense keys). The dense
    // path indexes groups by code, so serial dense builds skip hashing
    // entirely.
    let need_hashes = parallel || (rawtable && dense_len.is_none() && num_rows > 0);
    let hashes: Vec<u64> = if need_hashes {
        let chunk = num_rows.div_ceil(workers.max(1)).max(1);
        let nchunks = num_rows.div_ceil(chunk);
        crate::par::parallel_map(workers.max(1), nchunks, |c| {
            let lo = c * chunk;
            let hi = ((c + 1) * chunk).min(num_rows);
            Ok(hash_rows(&readers, sel, lo, hi))
        })?
        .concat()
    } else {
        Vec::new()
    };

    // Materialize a group's key scalars from its first-seen position —
    // once per group, not once per row.
    let emit_pos = |pos: usize| -> Vec<Value> {
        let i = sel.index(pos);
        readers.iter().map(|r| r.value_of(&r.part(i))).collect()
    };

    // One partition's build, `HashMap` arm (the differential oracle):
    // fold every selected position whose stable key hash maps to this
    // partition, in ascending position order (`filter` preserves it),
    // tracking each group's first position for the deterministic merge.
    // `hashes` is only indexed under `route` (it stays empty when no
    // routing or flat table needs it), so position-loop indexing is
    // the correct shape, not a zip candidate.
    #[allow(clippy::type_complexity, clippy::needless_range_loop)]
    let build_partition = |route: Option<(usize, usize)>| -> Result<Vec<(usize, Vec<Acc>)>> {
        let mut index: HashMap<Vec<KeyPart>, usize> = HashMap::new();
        let mut groups: Vec<(usize, Vec<Acc>)> = Vec::new();
        let mut dense: Vec<usize> = vec![usize::MAX; dense_len.map_or(0, |d| d + 1)];
        let (mut rows_idx, mut assign): (Vec<u32>, Vec<u32>) = (Vec::new(), Vec::new());
        for pos in 0..num_rows {
            if let Some((nparts, p)) = route {
                if hashes[pos] as usize % nparts != p {
                    continue;
                }
            }
            let i = sel.index(pos);
            let gi = if dense_len.is_some() {
                let slot = match readers[0].part(i) {
                    KeyPart::Null => 0,
                    KeyPart::Code(c) => c as usize + 1,
                    // invariant: a reader with dict_len() set only
                    // emits Null and Code parts.
                    KeyPart::Val(_) => unreachable!("value part from a dictionary reader"),
                };
                if dense[slot] == usize::MAX {
                    dense[slot] = groups.len();
                    groups.push((pos, aggs.iter().map(|a| Acc::new(a, false)).collect()));
                }
                dense[slot]
            } else {
                let key: Vec<KeyPart> = readers.iter().map(|r| r.part(i)).collect();
                match index.get(&key) {
                    Some(&g) => g,
                    None => {
                        let g = groups.len();
                        index.insert(key, g);
                        groups.push((pos, aggs.iter().map(|a| Acc::new(a, false)).collect()));
                        g
                    }
                }
            };
            // Compiled path: record the assignment, fold per aggregate
            // below — no per-row `Value` materialization or dispatch.
            if compiled {
                rows_idx.push(i as u32);
                assign.push(gi as u32);
            } else {
                for (acc, arg) in groups[gi].1.iter_mut().zip(arg_cols) {
                    let v = arg.as_ref().map(|c| c.get(i));
                    acc.update(v.as_ref())?;
                }
            }
        }
        if compiled {
            fold_compiled(&mut groups, &rows_idx, &assign, aggs, arg_cols)?;
        }
        Ok(groups)
    };

    // One partition's build, flat-table arm: group index = table entry
    // id (entry ids are dense in insertion order, and groups are pushed
    // on insertion, so they stay aligned). Keys live as canonical bytes
    // in the table arena — no per-group `Vec<KeyPart>` and no `Value`
    // clones until emit.
    #[allow(clippy::needless_range_loop)] // see `build_partition`
    let build_partition_raw = |route: Option<(usize, usize)>| -> Result<Vec<(usize, Vec<Acc>)>> {
        let mut table = RawTable::new();
        let mut scratch: Vec<u8> = Vec::new();
        let mut groups: Vec<(usize, Vec<Acc>)> = Vec::new();
        let mut dense: Vec<usize> = vec![usize::MAX; dense_len.map_or(0, |d| d + 1)];
        let (mut rows_idx, mut assign): (Vec<u32>, Vec<u32>) = (Vec::new(), Vec::new());
        for pos in 0..num_rows {
            if let Some((nparts, p)) = route {
                if hashes[pos] as usize % nparts != p {
                    continue;
                }
            }
            let i = sel.index(pos);
            let gi = if dense_len.is_some() {
                let slot = match readers[0].part(i) {
                    KeyPart::Null => 0,
                    KeyPart::Code(c) => c as usize + 1,
                    // invariant: see `build_partition`.
                    KeyPart::Val(_) => unreachable!("value part from a dictionary reader"),
                };
                if dense[slot] == usize::MAX {
                    dense[slot] = groups.len();
                    groups.push((pos, aggs.iter().map(|a| Acc::new(a, true)).collect()));
                }
                dense[slot]
            } else {
                scratch.clear();
                for r in &readers {
                    r.encode_part_at(i, &mut scratch);
                }
                let (e, inserted) = table.insert(hashes[pos], &scratch);
                if inserted {
                    groups.push((pos, aggs.iter().map(|a| Acc::new(a, true)).collect()));
                }
                e as usize
            };
            // Compiled path: record the assignment, fold per aggregate
            // below — no per-row `Value` materialization or dispatch.
            if compiled {
                rows_idx.push(i as u32);
                assign.push(gi as u32);
            } else {
                for (acc, arg) in groups[gi].1.iter_mut().zip(arg_cols) {
                    let v = arg.as_ref().map(|c| c.get(i));
                    acc.update(v.as_ref())?;
                }
            }
        }
        if compiled {
            fold_compiled(&mut groups, &rows_idx, &assign, aggs, arg_cols)?;
        }
        Ok(groups)
    };

    let build = |route: Option<(usize, usize)>| {
        if rawtable {
            build_partition_raw(route)
        } else {
            build_partition(route)
        }
    };

    if !parallel {
        let groups = build(None)?;
        return Ok(groups
            .into_iter()
            .map(|(pos, a)| (emit_pos(pos), a))
            .collect());
    }

    // One build per hash partition. A group's rows all share a hash, so
    // they live in exactly one partition and fold in position order;
    // the merge sorts by global first-seen position, restoring the
    // serial discovery order.
    let nparts = workers;
    let parts = crate::par::parallel_map(workers, nparts, |p| build(Some((nparts, p))))?;
    let mut all: Vec<(usize, Vec<Acc>)> = parts.into_iter().flatten().collect();
    all.sort_by_key(|(first_pos, _)| *first_pos);
    Ok(all.into_iter().map(|(pos, a)| (emit_pos(pos), a)).collect())
}

/// The spilling build for one grouping set: every selected position's
/// group key is encoded into a spill record (stable hash + canonical
/// key bytes + position — the same format the grace join uses), then
/// recursively partitioned through disk until a partition's modeled
/// table fits the working budget. Each leaf builds its groups exactly
/// like the in-memory build; the final merge sorts by global first-seen
/// position, restoring the serial discovery order.
///
/// Byte-identity with the in-memory path: a group's rows all share a
/// key hash, so they land in one partition and fold in ascending
/// position order (partitioning preserves relative record order) —
/// the same fold order the serial loop uses, which is what keeps
/// order-sensitive accumulators (f64 sums, Welford variance, DISTINCT
/// first-seen order) bit-exact. The whole path is serial, so its spill
/// I/O schedule replays deterministically at any worker count.
fn build_groups_spilled(
    sel: &SelVec,
    key_cols: &[Arc<ColumnVector>],
    arg_cols: &[Option<Arc<ColumnVector>>],
    set: &[usize],
    aggs: &[AggExpr],
    rawtable: bool,
    sp: &SpillCtx<'_>,
) -> Result<Vec<(Vec<Value>, Vec<Acc>)>> {
    let num_rows = sel.len();
    let readers: Vec<KeyReader<'_>> = set
        .iter()
        .map(|&k| KeyReader::new(key_cols[k].as_ref()))
        .collect();
    let hashes = hash_rows(&readers, sel, 0, num_rows);
    let mut recs: Vec<u8> = Vec::new();
    let mut scratch: Vec<u8> = Vec::new();
    for (pos, h) in hashes.iter().enumerate() {
        scratch.clear();
        let i = sel.index(pos);
        for r in &readers {
            r.encode_part_at(i, &mut scratch);
        }
        // NULL is a group: every row has a key hash and a record.
        push_rec(&mut recs, *h, pos as u32, &scratch);
    }
    let op = sp.next_op();
    let mut groups: Vec<(usize, Vec<Acc>)> = Vec::new();
    let mut file_seq = 0u64;
    agg_solve(
        sp,
        op,
        sel,
        arg_cols,
        aggs,
        set.len().max(1),
        rawtable,
        0,
        None,
        num_rows,
        &recs,
        &mut groups,
        &mut file_seq,
    )?;
    groups.sort_by_key(|(first_pos, _)| *first_pos);
    let emit_pos = |pos: usize| -> Vec<Value> {
        let i = sel.index(pos);
        readers.iter().map(|r| r.value_of(&r.part(i))).collect()
    };
    Ok(groups
        .into_iter()
        .map(|(pos, a)| (emit_pos(pos), a))
        .collect())
}

/// Solve one aggregation partition: fold it in memory (charging the
/// broker) or split it `fanout` ways through spill files and recurse —
/// the same discipline as the grace join's [`crate::spill::plan_partition`]
/// recursion, with the no-progress and depth guards bounding skewed
/// key distributions.
#[allow(clippy::too_many_arguments)]
fn agg_solve(
    sp: &SpillCtx<'_>,
    op: u64,
    sel: &SelVec,
    arg_cols: &[Option<Arc<ColumnVector>>],
    aggs: &[AggExpr],
    key_cols_n: usize,
    rawtable: bool,
    depth: u32,
    parent_rows: Option<usize>,
    rows: usize,
    recs: &[u8],
    out: &mut Vec<(usize, Vec<Acc>)>,
    file_seq: &mut u64,
) -> Result<()> {
    let est = crate::spill::estimate_agg_bytes(rows, key_cols_n, aggs.len());
    let plan = plan_partition(est, sp.broker.chunk_budget(), depth, rows, parent_rows);
    if plan.process_in_memory {
        // Forced when over budget: the skewed tail (one dominant key /
        // depth cap) proceeds rather than fails; see the broker peak.
        let _g = match sp.broker.try_reserve("group-by-partition", est) {
            Some(g) => g,
            None => sp.broker.force_reserve("group-by-partition", est),
        };
        let mut groups: Vec<(usize, Vec<Acc>)> = Vec::new();
        if rawtable {
            let mut table = RawTable::new();
            for rec in RecIter::new(recs) {
                let (h, pos, key) = rec?;
                let (e, inserted) = table.insert(h, key);
                if inserted {
                    groups.push((
                        pos as usize,
                        aggs.iter().map(|a| Acc::new(a, true)).collect(),
                    ));
                }
                let i = sel.index(pos as usize);
                for (acc, arg) in groups[e as usize].1.iter_mut().zip(arg_cols) {
                    let v = arg.as_ref().map(|c| c.get(i));
                    acc.update(v.as_ref())?;
                }
            }
        } else {
            // Differential-oracle arm, keyed by the canonical encoding
            // bytes (encoding equality ⟺ group equality).
            let mut index: HashMap<Vec<u8>, usize> = HashMap::new();
            for rec in RecIter::new(recs) {
                let (_h, pos, key) = rec?;
                let gi = match index.get(key) {
                    Some(&g) => g,
                    None => {
                        let g = groups.len();
                        index.insert(key.to_vec(), g);
                        groups.push((
                            pos as usize,
                            aggs.iter().map(|a| Acc::new(a, false)).collect(),
                        ));
                        g
                    }
                };
                let i = sel.index(pos as usize);
                for (acc, arg) in groups[gi].1.iter_mut().zip(arg_cols) {
                    let v = arg.as_ref().map(|c| c.get(i));
                    acc.update(v.as_ref())?;
                }
            }
        }
        out.extend(groups);
        return Ok(());
    }

    let fanout = plan.fanout;
    let mut parts: Vec<(Vec<u8>, usize)> = vec![(Vec::new(), 0); fanout];
    for rec in RecIter::new(recs) {
        let (h, pos, key) = rec?;
        let p = partition_of(h, depth, fanout);
        push_rec(&mut parts[p].0, h, pos, key);
        parts[p].1 += 1;
    }
    // Write every partition before reading any back (the grace
    // discipline: one partition's records resident at a time below).
    let mut files = Vec::with_capacity(fanout);
    for (p, (buf, n)) in parts.drain(..).enumerate() {
        if buf.is_empty() {
            continue;
        }
        let id = *file_seq;
        *file_seq += 1;
        files.push((sp.write(&format!("op{op}-s{id}-p{p}.agg"), buf)?, n));
    }
    for (f, n) in files {
        let buf = sp.read(&f)?;
        drop(f);
        agg_solve(
            sp,
            op,
            sel,
            arg_cols,
            aggs,
            key_cols_n,
            rawtable,
            depth + 1,
            Some(rows),
            n,
            &buf,
            out,
            file_seq,
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hive_common::{DataType, Field, Schema};
    use hive_optimizer::plan::LogicalPlan;
    use std::sync::Arc;

    fn input() -> VectorBatch {
        let schema = Schema::new(vec![
            Field::new("k", DataType::String),
            Field::new("v", DataType::Int),
        ]);
        VectorBatch::from_rows(
            &schema,
            &[
                Row::new(vec![Value::String("a".into()), Value::Int(1)]),
                Row::new(vec![Value::String("a".into()), Value::Int(2)]),
                Row::new(vec![Value::String("b".into()), Value::Int(10)]),
                Row::new(vec![Value::String("a".into()), Value::Null]),
                Row::new(vec![Value::Null, Value::Int(5)]),
            ],
        )
        .unwrap()
    }

    fn agg_schema(
        input: &VectorBatch,
        groups: &[ScalarExpr],
        sets: &Option<Vec<Vec<usize>>>,
        aggs: &[AggExpr],
    ) -> Schema {
        let plan = LogicalPlan::Aggregate {
            input: Arc::new(LogicalPlan::Values {
                schema: input.schema().clone(),
                rows: vec![],
            }),
            group_exprs: groups.to_vec(),
            grouping_sets: sets.clone(),
            aggs: aggs.to_vec(),
        };
        plan.schema()
    }

    fn sorted_rows(b: &VectorBatch) -> Vec<String> {
        let mut v: Vec<String> = b.to_rows().iter().map(|r| r.to_string()).collect();
        v.sort();
        v
    }

    #[test]
    fn group_by_with_count_sum() {
        let b = input();
        let groups = vec![ScalarExpr::Column(0)];
        let aggs = vec![
            AggExpr {
                func: AggFunc::Count,
                arg: None,
                distinct: false,
            },
            AggExpr {
                func: AggFunc::Sum,
                arg: Some(ScalarExpr::Column(1)),
                distinct: false,
            },
            AggExpr {
                func: AggFunc::Count,
                arg: Some(ScalarExpr::Column(1)),
                distinct: false,
            },
        ];
        let schema = agg_schema(&b, &groups, &None, &aggs);
        let out = execute_aggregate(&b, &groups, &None, &aggs, &schema).unwrap();
        assert_eq!(
            sorted_rows(&out),
            vec![
                "NULL\t1\t5\t1", // null group
                "a\t3\t3\t2",    // count(*)=3 but count(v)=2
                "b\t1\t10\t1",
            ]
        );
    }

    #[test]
    fn global_aggregate_over_empty_input() {
        let schema = Schema::new(vec![Field::new("v", DataType::Int)]);
        let empty = VectorBatch::from_rows(&schema, &[]).unwrap();
        let aggs = vec![
            AggExpr {
                func: AggFunc::Count,
                arg: None,
                distinct: false,
            },
            AggExpr {
                func: AggFunc::Sum,
                arg: Some(ScalarExpr::Column(0)),
                distinct: false,
            },
        ];
        let out_schema = agg_schema(&empty, &[], &None, &aggs);
        let out = execute_aggregate(&empty, &[], &None, &aggs, &out_schema).unwrap();
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.row(0).get(0), &Value::BigInt(0));
        assert!(out.row(0).get(1).is_null());
    }

    #[test]
    fn distinct_aggregates() {
        let b = input();
        let aggs = vec![AggExpr {
            func: AggFunc::Count,
            arg: Some(ScalarExpr::Column(1)),
            distinct: true,
        }];
        let schema = agg_schema(&b, &[], &None, &aggs);
        let out = execute_aggregate(&b, &[], &None, &aggs, &schema).unwrap();
        // Distinct non-null values of v: 1, 2, 10, 5.
        assert_eq!(out.row(0).get(0), &Value::BigInt(4));
    }

    #[test]
    fn avg_and_stddev() {
        let b = input();
        let aggs = vec![
            AggExpr {
                func: AggFunc::Avg,
                arg: Some(ScalarExpr::Column(1)),
                distinct: false,
            },
            AggExpr {
                func: AggFunc::StddevSamp,
                arg: Some(ScalarExpr::Column(1)),
                distinct: false,
            },
        ];
        let schema = agg_schema(&b, &[], &None, &aggs);
        let out = execute_aggregate(&b, &[], &None, &aggs, &schema).unwrap();
        let avg = out.row(0).get(0).as_f64().unwrap();
        assert!((avg - 4.5).abs() < 1e-9); // (1+2+10+5)/4
        let sd = out.row(0).get(1).as_f64().unwrap();
        assert!(sd > 0.0);
    }

    #[test]
    fn grouping_sets_emit_all_sets_with_gid() {
        let b = input();
        let groups = vec![ScalarExpr::Column(0)];
        let sets = Some(vec![vec![0], vec![]]); // (k), ()
        let aggs = vec![AggExpr {
            func: AggFunc::Count,
            arg: None,
            distinct: false,
        }];
        let schema = agg_schema(&b, &groups, &sets, &aggs);
        let out = execute_aggregate(&b, &groups, &sets, &aggs, &schema).unwrap();
        // 3 grouped rows + 1 total row.
        assert_eq!(out.num_rows(), 4);
        let rows = sorted_rows(&out);
        assert!(rows.contains(&"NULL\t5\t1".to_string()), "{rows:?}"); // total: gid 1
        assert!(rows.contains(&"a\t3\t0".to_string()), "{rows:?}");
    }

    #[test]
    fn parallel_aggregate_is_byte_identical() {
        // Floating-point aggregates (avg, stddev) are fold-order
        // sensitive, so byte-identical output across worker counts is a
        // strong check that the partitioned build preserves row order.
        let schema = Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("v", DataType::Double),
        ]);
        let rows: Vec<Row> = (0..12_000)
            .map(|i| {
                let k = if i % 13 == 0 {
                    Value::Null
                } else {
                    Value::Int(i * 37 % 97)
                };
                Row::new(vec![k, Value::Double(i as f64 * 0.25 - 100.0)])
            })
            .collect();
        let b = VectorBatch::from_rows(&schema, &rows).unwrap();
        let groups = vec![ScalarExpr::Column(0)];
        let aggs = [
            AggFunc::Count,
            AggFunc::Sum,
            AggFunc::Avg,
            AggFunc::StddevSamp,
        ]
        .into_iter()
        .map(|func| AggExpr {
            func,
            arg: Some(ScalarExpr::Column(1)),
            distinct: false,
        })
        .collect::<Vec<_>>();
        let out_schema = agg_schema(&b, &groups, &None, &aggs);
        let sb = SelBatch::from_batch(b);
        // Oracle: serial HashMap build. Every (workers, rawtable) combo
        // must reproduce it byte for byte.
        let base = execute_aggregate_par(
            &sb,
            &groups,
            &None,
            &aggs,
            &out_schema,
            1,
            false,
            None,
            None,
        )
        .unwrap();
        let base_rows: Vec<String> = base.to_rows().iter().map(|r| r.to_string()).collect();
        assert_eq!(base.num_rows(), 98); // 97 int keys + NULL group
        for workers in [1, 2, 8] {
            for rawtable in [false, true] {
                let out = execute_aggregate_par(
                    &sb,
                    &groups,
                    &None,
                    &aggs,
                    &out_schema,
                    workers,
                    rawtable,
                    None,
                    None,
                )
                .unwrap();
                let got: Vec<String> = out.to_rows().iter().map(|r| r.to_string()).collect();
                assert_eq!(
                    got, base_rows,
                    "{workers} workers rawtable={rawtable} diverged"
                );
            }
        }
    }

    #[test]
    fn distinct_aggregates_match_across_toggle_and_workers() {
        // DISTINCT SUM over doubles is fold-order sensitive: identical
        // output across the toggle and worker counts pins the shared
        // first-seen dedup order.
        let schema = Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("v", DataType::Double),
        ]);
        let rows: Vec<Row> = (0..4_000)
            .map(|i| {
                Row::new(vec![
                    Value::Int(i % 7),
                    Value::Double((i * 31 % 113) as f64 * 0.125 - 3.0),
                ])
            })
            .collect();
        let b = VectorBatch::from_rows(&schema, &rows).unwrap();
        let groups = vec![ScalarExpr::Column(0)];
        let aggs: Vec<AggExpr> = [AggFunc::Count, AggFunc::Sum, AggFunc::Avg]
            .into_iter()
            .map(|func| AggExpr {
                func,
                arg: Some(ScalarExpr::Column(1)),
                distinct: true,
            })
            .collect();
        let out_schema = agg_schema(&b, &groups, &None, &aggs);
        let sb = SelBatch::from_batch(b);
        let base = execute_aggregate_par(
            &sb,
            &groups,
            &None,
            &aggs,
            &out_schema,
            1,
            false,
            None,
            None,
        )
        .unwrap();
        let base_rows: Vec<String> = base.to_rows().iter().map(|r| r.to_string()).collect();
        for workers in [1, 4] {
            for rawtable in [false, true] {
                let out = execute_aggregate_par(
                    &sb,
                    &groups,
                    &None,
                    &aggs,
                    &out_schema,
                    workers,
                    rawtable,
                    None,
                    None,
                )
                .unwrap();
                let got: Vec<String> = out.to_rows().iter().map(|r| r.to_string()).collect();
                assert_eq!(
                    got, base_rows,
                    "{workers} workers rawtable={rawtable} diverged"
                );
            }
        }
    }

    #[test]
    fn spilled_aggregate_is_byte_identical() {
        use crate::membroker::MemoryBroker;
        use hive_dfs::{DfsPath, DistFs};
        use std::sync::atomic::AtomicU64;
        // Order-sensitive aggregates (f64 sum/avg/stddev + DISTINCT
        // sum) over many groups: the partitioned spilling build must
        // reproduce the in-memory build byte for byte.
        let schema = Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("v", DataType::Double),
        ]);
        let rows: Vec<Row> = (0..12_000)
            .map(|i| {
                let k = if i % 13 == 0 {
                    Value::Null
                } else {
                    Value::Int(i * 37 % 97)
                };
                Row::new(vec![k, Value::Double(i as f64 * 0.25 - 100.0)])
            })
            .collect();
        let b = VectorBatch::from_rows(&schema, &rows).unwrap();
        let groups = vec![ScalarExpr::Column(0)];
        let mut aggs: Vec<AggExpr> = [
            AggFunc::Count,
            AggFunc::Sum,
            AggFunc::Avg,
            AggFunc::StddevSamp,
        ]
        .into_iter()
        .map(|func| AggExpr {
            func,
            arg: Some(ScalarExpr::Column(1)),
            distinct: false,
        })
        .collect();
        aggs.push(AggExpr {
            func: AggFunc::Sum,
            arg: Some(ScalarExpr::Column(1)),
            distinct: true,
        });
        let out_schema = agg_schema(&b, &groups, &None, &aggs);
        let sb = SelBatch::from_batch(b);
        let base = execute_aggregate_par(
            &sb,
            &groups,
            &None,
            &aggs,
            &out_schema,
            1,
            false,
            None,
            None,
        )
        .unwrap();
        let base_rows: Vec<String> = base.to_rows().iter().map(|r| r.to_string()).collect();
        for rawtable in [false, true] {
            let fs = DistFs::new();
            let broker = MemoryBroker::with_budget(16 * 1024);
            let ops = AtomicU64::new(0);
            let sp = SpillCtx::new(&fs, DfsPath::new("/tmp/spill/q0"), &broker, true, &ops);
            let out = execute_aggregate_par(
                &sb,
                &groups,
                &None,
                &aggs,
                &out_schema,
                1,
                rawtable,
                Some(&sp),
                None,
            )
            .unwrap();
            let got: Vec<String> = out.to_rows().iter().map(|r| r.to_string()).collect();
            assert_eq!(got, base_rows, "spilled rawtable={rawtable} diverged");
            assert!(sp.stats.bytes_written() > 0, "group-by never spilled");
            assert!(
                fs.list_files_recursive(&DfsPath::new("/tmp/spill"))
                    .is_empty(),
                "spill files all deleted"
            );
            assert_eq!(broker.reserved(), 0, "all grants released");
        }
    }

    #[test]
    fn routing_hashes_are_pinned_fnv1a() {
        // Partition routing must stay on FNV-1a over the canonical key
        // encoding forever: a silent hash change would reshuffle rows
        // across build partitions and change the fault-injection
        // schedule (not results). Pinned against the vectors in
        // hive_common::hash.
        let ints = ColumnVector::Int(vec![42, 1], None);
        let strs = ColumnVector::Str(vec!["ab".into(), "cd".into()], None);
        let r_int = KeyReader::new(&ints);
        let hs = hash_rows(&[r_int], &SelVec::all(2), 0, 2);
        assert_eq!(hs[0], 0xb960_a184_f070_32c6); // fnv1a(enc(Int 42))
        assert_eq!(hs[1], 0x7194_f3e5_9ae4_7dcd); // fnv1a(enc(Int 1))
        let r_int = KeyReader::new(&ints);
        let r_str = KeyReader::new(&strs);
        let hs = hash_rows(&[r_int, r_str], &SelVec::all(2), 0, 2);
        // Column-wise folding equals fnv1a over the concatenated parts.
        assert_eq!(hs[0], 0x6161_74ad_148e_10c7); // fnv1a(enc(Int 42) ++ enc(Str "ab"))
    }
}
