//! Open-addressing flat hash table shared by the hash operators.
//!
//! The paper's vectorized operators (§3.3, §5) keep hot loops tight by
//! separating *batch-wise* key preparation from a simple per-row probe
//! loop. [`RawTable`] is the probe-side half: a flat open-addressing
//! table with 1-byte fingerprint tags and linear probing, keyed by a
//! precomputed 64-bit hash over each key's canonical byte encoding
//! (see [`hive_common::hash`]). Keys live contiguously in an arena —
//! one `Vec<u8>` for the whole table, no per-entry allocation — and
//! compare by `memcmp`, which the encoding scheme makes equivalent to
//! the engine's grouping semantics.
//!
//! Entry ids are assigned in insertion order, so a build that inserts
//! rows in ascending order gets first-seen-ordered entries for free —
//! the property the deterministic partition merges in join/aggregate
//! rely on. Growth rehashes buckets from the *stored* hashes; keys are
//! never re-encoded and entry ids never move.
//!
//! The per-batch half (column-wise hashing with dict-code and null-free
//! fast paths) lives with the key readers: [`crate::dict::KeyReader`]
//! for aggregate/window keys and the join codec in [`crate::join`],
//! both of which bottom out in [`encode_cell`] / [`try_encode_cell`]
//! here.

use hive_common::hash::{self, fnv1a_extend, FNV_OFFSET};
use hive_common::{ColumnVector, Value};

/// Bucket tag marking an empty slot. Occupied tags always have the high
/// bit set, so no fingerprint collides with empty.
const EMPTY: u8 = 0;

/// Fingerprint tag for an occupied bucket: high bit + the hash's top 7
/// bits (bits the bucket index doesn't use, so tag and index are
/// independent filters).
#[inline]
fn tag_of(hash: u64) -> u8 {
    0x80 | (hash >> 57) as u8
}

/// Flat open-addressing hash table mapping encoded keys to dense entry
/// ids (`0..len`, in insertion order). Callers keep per-entry payloads
/// in parallel vectors indexed by entry id.
#[derive(Debug, Default, Clone)]
pub struct RawTable {
    /// Per-bucket fingerprint tags (0 = empty).
    tags: Vec<u8>,
    /// Per-bucket entry id (valid where `tags` is non-empty).
    slots: Vec<u32>,
    /// Bucket-index mask (`tags.len() - 1`; bucket count is a power of
    /// two).
    mask: usize,
    /// Per-entry full hash, in entry order (also the source for
    /// rehash-on-grow — keys are never re-hashed).
    hashes: Vec<u64>,
    /// Per-entry end offset of the key bytes in `arena`.
    key_ends: Vec<usize>,
    /// All key bytes, concatenated in entry order.
    arena: Vec<u8>,
}

impl RawTable {
    /// An empty table (allocates nothing until the first insert).
    pub fn new() -> RawTable {
        RawTable::default()
    }

    /// An empty table pre-sized for about `entries` keys.
    pub fn with_capacity(entries: usize) -> RawTable {
        let mut t = RawTable::new();
        if entries > 0 {
            t.rebuild_buckets(buckets_for(entries));
            t.hashes.reserve(entries);
            t.key_ends.reserve(entries);
        }
        t
    }

    /// Number of distinct keys inserted.
    pub fn len(&self) -> usize {
        self.hashes.len()
    }

    /// True when no key has been inserted.
    pub fn is_empty(&self) -> bool {
        self.hashes.is_empty()
    }

    /// The encoded key bytes of entry `e`.
    #[inline]
    pub fn key(&self, e: usize) -> &[u8] {
        let start = if e == 0 { 0 } else { self.key_ends[e - 1] };
        &self.arena[start..self.key_ends[e]]
    }

    /// Look up `key` (with its precomputed hash); `Some(entry id)` on a
    /// hit. The tight loop the probe sides run: tag filter first, then
    /// full-hash filter, then `memcmp`.
    #[inline]
    pub fn find(&self, hash: u64, key: &[u8]) -> Option<u32> {
        if self.tags.is_empty() {
            return None;
        }
        let tag = tag_of(hash);
        let mut b = (hash as usize) & self.mask;
        loop {
            let t = self.tags[b];
            if t == EMPTY {
                return None;
            }
            if t == tag {
                let e = self.slots[b] as usize;
                if self.hashes[e] == hash && self.key(e) == key {
                    return Some(e as u32);
                }
            }
            b = (b + 1) & self.mask;
        }
    }

    /// Find `key` or insert it, returning `(entry id, inserted)`. New
    /// entries copy the key bytes into the arena and take the next
    /// dense id.
    #[inline]
    pub fn insert(&mut self, hash: u64, key: &[u8]) -> (u32, bool) {
        // Keep load ≤ 7/8 *before* probing so the loop always finds an
        // empty bucket.
        if (self.len() + 1) * 8 > self.tags.len() * 7 {
            self.grow();
        }
        let tag = tag_of(hash);
        let mut b = (hash as usize) & self.mask;
        loop {
            let t = self.tags[b];
            if t == EMPTY {
                let e = self.len() as u32;
                self.tags[b] = tag;
                self.slots[b] = e;
                self.hashes.push(hash);
                self.arena.extend_from_slice(key);
                self.key_ends.push(self.arena.len());
                return (e, true);
            }
            if t == tag {
                let e = self.slots[b] as usize;
                if self.hashes[e] == hash && self.key(e) == key {
                    return (e as u32, false);
                }
            }
            b = (b + 1) & self.mask;
        }
    }

    /// Double the bucket array and re-place every entry from its stored
    /// hash. Entry ids, key bytes and payload indices are untouched.
    #[cold]
    fn grow(&mut self) {
        let new_buckets = (self.tags.len() * 2).max(16);
        self.rebuild_buckets(new_buckets);
    }

    fn rebuild_buckets(&mut self, buckets: usize) {
        debug_assert!(buckets.is_power_of_two());
        self.tags = vec![EMPTY; buckets];
        self.slots = vec![0; buckets];
        self.mask = buckets - 1;
        for (e, &hash) in self.hashes.iter().enumerate() {
            let tag = tag_of(hash);
            let mut b = (hash as usize) & self.mask;
            while self.tags[b] != EMPTY {
                b = (b + 1) & self.mask;
            }
            self.tags[b] = tag;
            self.slots[b] = e as u32;
        }
    }
}

/// Bucket count for `entries` keys at ≤ 7/8 load.
fn buckets_for(entries: usize) -> usize {
    (entries * 8 / 7 + 1).next_power_of_two().max(16)
}

/// Append the canonical encoding of column cell `(col, i)` to `out`
/// when it is non-NULL; return `false` (appending nothing) for NULL.
/// Join keys use this directly (a NULL key part drops the row);
/// [`encode_cell`] wraps it for operators where NULL is a key.
///
/// Typed per-variant access keeps the hot path allocation-free: string
/// cells fold their bytes without materializing a `Value`, and a plain
/// `Dict` column (one that fell off the code fast path) encodes the
/// referenced dictionary entry — the same bytes its decoded `Str` twin
/// would produce.
#[inline]
pub(crate) fn try_encode_cell(col: &ColumnVector, i: usize, out: &mut Vec<u8>) -> bool {
    if col.is_null(i) {
        return false;
    }
    match col {
        ColumnVector::Boolean(v, _) => {
            out.push(hash::TAG_BOOL);
            out.push(v[i] as u8);
        }
        ColumnVector::Int(v, _) => hash::encode_i64(v[i] as i64, out),
        ColumnVector::BigInt(v, _) => hash::encode_i64(v[i], out),
        ColumnVector::Double(v, _) => hash::encode_f64(v[i], out),
        ColumnVector::Decimal(v, s, _) => hash::encode_decimal(v[i], *s, out),
        ColumnVector::Str(v, _) => hash::encode_str(v[i].as_bytes(), out),
        ColumnVector::Dict { codes, dict, .. } => {
            hash::encode_str(dict[codes[i] as usize].as_bytes(), out)
        }
        ColumnVector::Date(v, _) => hash::encode_date(v[i], out),
        ColumnVector::Timestamp(v, _) => hash::encode_timestamp(v[i], out),
    }
    true
}

/// Append the canonical encoding of cell `(col, i)`, encoding NULL as
/// its own key class (GROUP BY / window / set-op semantics: all NULLs
/// group together).
#[inline]
pub(crate) fn encode_cell(col: &ColumnVector, i: usize, out: &mut Vec<u8>) {
    if !try_encode_cell(col, i, out) {
        out.push(hash::TAG_NULL);
    }
}

/// Encode one whole row of `batch` (every column, NULLs included) —
/// the set-op key, byte-equivalent to the `Row`-keyed `HashMap` oracle.
#[inline]
pub(crate) fn encode_row(batch: &hive_common::VectorBatch, i: usize, out: &mut Vec<u8>) {
    for c in batch.columns() {
        encode_cell(c.as_ref(), i, out);
    }
}

/// Hash a scalar [`Value`] through the same canonical encoding (used by
/// the DISTINCT-aggregate dedup set, where values arrive one at a time
/// rather than column-wise).
#[inline]
pub(crate) fn hash_value(v: &Value, scratch: &mut Vec<u8>) -> u64 {
    scratch.clear();
    hash::encode_value(v, scratch);
    fnv1a_extend(FNV_OFFSET, scratch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hive_common::hash::fnv1a;
    use hive_common::BitSet;
    use std::sync::Arc;

    #[test]
    fn insert_find_roundtrip_with_dense_entry_ids() {
        let mut t = RawTable::new();
        for n in 0..100u64 {
            let key = n.to_le_bytes();
            let (e, inserted) = t.insert(fnv1a(&key), &key);
            assert!(inserted);
            assert_eq!(e as u64, n, "entry ids are dense in insertion order");
        }
        for n in 0..100u64 {
            let key = n.to_le_bytes();
            let (e, inserted) = t.insert(fnv1a(&key), &key);
            assert!(!inserted);
            assert_eq!(e as u64, n);
            assert_eq!(t.find(fnv1a(&key), &key), Some(n as u32));
            assert_eq!(t.key(n as usize), key);
        }
        assert_eq!(t.len(), 100);
        assert_eq!(t.find(fnv1a(b"absent"), b"absent"), None);
    }

    #[test]
    fn forced_fingerprint_collisions_disambiguate_by_key_bytes() {
        // Every key gets the *same* hash — same bucket, same tag — so
        // correctness rests entirely on the memcmp fallback.
        let mut t = RawTable::new();
        let h = 0xdead_beef_dead_beef;
        for n in 0..200u32 {
            let key = n.to_le_bytes();
            assert_eq!(t.insert(h, &key), (n, true));
        }
        for n in 0..200u32 {
            let key = n.to_le_bytes();
            assert_eq!(t.find(h, &key), Some(n));
        }
        assert_eq!(t.find(h, &1000u32.to_le_bytes()), None);
        // And a different hash with the same low bits (same bucket,
        // different tag) still misses.
        assert_eq!(t.find(h ^ (0x7f << 57), &0u32.to_le_bytes()), None);
    }

    #[test]
    fn growth_preserves_entries_across_boundaries() {
        // Cross several doublings (16 → 2048 buckets) and check every
        // entry survives with its id and key bytes intact, including
        // exactly at the 7/8 load boundary.
        let mut t = RawTable::new();
        let mut keys = Vec::new();
        for n in 0..1500u64 {
            let key = (n.wrapping_mul(0x9e37_79b9_7f4a_7c15)).to_le_bytes();
            t.insert(fnv1a(&key), &key);
            keys.push(key);
        }
        assert_eq!(t.len(), 1500);
        for (n, key) in keys.iter().enumerate() {
            assert_eq!(t.find(fnv1a(key), key), Some(n as u32), "key {n}");
            assert_eq!(t.key(n), key);
        }
    }

    #[test]
    fn with_capacity_presizes_and_still_grows() {
        let mut t = RawTable::with_capacity(10);
        for n in 0..50u8 {
            t.insert(fnv1a(&[n]), &[n]);
        }
        assert_eq!(t.len(), 50);
        assert_eq!(t.find(fnv1a(&[49]), &[49]), Some(49));
    }

    #[test]
    fn empty_key_is_a_valid_key() {
        // Cross-style joins key every row by the empty key.
        let mut t = RawTable::new();
        assert_eq!(t.insert(FNV_OFFSET, b""), (0, true));
        assert_eq!(t.insert(FNV_OFFSET, b""), (0, false));
        assert_eq!(t.find(FNV_OFFSET, b""), Some(0));
    }

    #[test]
    fn cell_encoding_matches_value_encoding() {
        // The typed per-variant fast paths must produce byte-identical
        // encodings to the scalar `encode_value` they bypass.
        let mut nulls = BitSet::new(3);
        nulls.set(1);
        let cols = vec![
            ColumnVector::Int(vec![7, 0, -3], Some(nulls.clone())),
            ColumnVector::Str(
                vec!["a".into(), String::new(), "bc".into()],
                Some(nulls.clone()),
            ),
            ColumnVector::Double(vec![2.5, 0.0, 42.0], Some(nulls.clone())),
            ColumnVector::Decimal(vec![25, 0, 4200], 2, Some(nulls.clone())),
            ColumnVector::Date(vec![0, 1, -40], Some(nulls.clone())),
            ColumnVector::Timestamp(vec![0, 1, 86_400_000_000], Some(nulls.clone())),
            ColumnVector::Boolean(vec![true, false, false], Some(nulls)),
            ColumnVector::dict_from_codes(
                vec![1, 0, 1],
                Arc::new(vec!["x".into(), "yz".into()]),
                None,
            )
            .unwrap(),
        ];
        for col in &cols {
            for i in 0..3 {
                let (mut fast, mut oracle) = (Vec::new(), Vec::new());
                encode_cell(col, i, &mut fast);
                hash::encode_value(&col.get(i), &mut oracle);
                assert_eq!(fast, oracle, "{col:?} row {i}");
            }
        }
    }
}
