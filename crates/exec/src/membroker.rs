//! The per-query memory broker (ROADMAP arc: "degrade, don't fail").
//!
//! One broker exists per query execution. Its budget is the query's
//! share of `hive.exec.memory.per.query.bytes`, scaled by the workload
//! manager's pool fraction at admission time (a query admitted into a
//! pool with `guaranteed_fraction = 0.25` gets a quarter of the
//! configured per-query bytes). Blocking operators — hash-join builds,
//! group-by tables, sorts — ask for a *grant* sized by their modeled
//! working set before materializing it:
//!
//! * [`MemoryBroker::try_reserve`] hands out a revocable [`MemGrant`]
//!   when the budget has room; the grant releases its bytes on drop
//!   (including panic unwind), so operator-scoped RAII keeps the
//!   accounting exact.
//! * A denied reservation marks the largest outstanding grant
//!   *revocation-requested* — the cooperative signal a long-lived
//!   holder polls via [`MemGrant::revoke_requested`] to spill early and
//!   shrink. Denied callers degrade to the spill path (grace join,
//!   partitioned aggregation, external sort) instead of failing.
//! * [`MemoryBroker::force_reserve`] records an over-budget grant for
//!   the degraded tail where spilling cannot subdivide further (a
//!   single-key build partition, the final merge) — the operator
//!   proceeds and the overshoot shows up in [`MemoryBroker::peak_bytes`]
//!   rather than as a query failure.
//!
//! Broker decisions are deterministic for a given plan because the
//! engine runs blocking operators sequentially and every grant is
//! operator-scoped: at each operator's entry the reserved total is
//! exactly the budget spent by its still-live ancestors, independent of
//! worker count — which keeps the spill/no-spill choice, and with it
//! seeded fault replay, byte-stable across 1/2/8 threads.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// Floor for the working budget handed to one spill partition: even a
/// pathologically small `hive.exec.memory.per.query.bytes` must leave
/// enough room for recursion to terminate (see `spill::plan_partition`).
pub const MIN_CHUNK_BUDGET: u64 = 4096;

#[derive(Debug)]
struct GrantState {
    operator: String,
    bytes: u64,
    revoke: bool,
}

#[derive(Debug, Default)]
struct BrokerState {
    reserved: u64,
    grants: Vec<(u64, GrantState)>,
    next_id: u64,
}

/// Divides one query's memory budget among concurrently-live operators.
#[derive(Debug)]
pub struct MemoryBroker {
    /// `u64::MAX` = unlimited (spill never engages).
    budget: u64,
    state: Mutex<BrokerState>,
    peak: AtomicU64,
    denials: AtomicU64,
    forced: AtomicU64,
}

impl MemoryBroker {
    /// A broker with a hard byte budget. `0` means unlimited (the
    /// `hive.exec.memory.per.query.bytes` default).
    pub fn with_budget(budget_bytes: u64) -> MemoryBroker {
        MemoryBroker {
            budget: if budget_bytes == 0 {
                u64::MAX
            } else {
                budget_bytes
            },
            state: Mutex::new(BrokerState::default()),
            peak: AtomicU64::new(0),
            denials: AtomicU64::new(0),
            forced: AtomicU64::new(0),
        }
    }

    /// A broker that never denies (the in-memory oracle arm).
    pub fn unlimited() -> MemoryBroker {
        MemoryBroker::with_budget(0)
    }

    /// Whether this broker can ever deny a reservation.
    pub fn limited(&self) -> bool {
        self.budget != u64::MAX
    }

    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Bytes still unreserved (saturating; `u64::MAX`-ish when unlimited).
    pub fn available(&self) -> u64 {
        self.budget.saturating_sub(self.state.lock().reserved)
    }

    /// Bytes currently reserved across live grants.
    pub fn reserved(&self) -> u64 {
        self.state.lock().reserved
    }

    /// The working budget one spill partition should fit in: half the
    /// query budget (so a partition plus its merge state coexist),
    /// floored so recursion terminates under absurd budgets.
    pub fn chunk_budget(&self) -> u64 {
        (self.budget / 2).max(MIN_CHUNK_BUDGET)
    }

    /// High-water mark of reserved bytes (forced grants included) —
    /// the "peak tracked memory" BENCH_spill.json reports.
    pub fn peak_bytes(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }

    /// Reservations denied so far (each denial is one spill decision).
    pub fn denials(&self) -> u64 {
        self.denials.load(Ordering::Relaxed)
    }

    /// Over-budget grants issued so far (degraded-tail fallbacks).
    pub fn forced(&self) -> u64 {
        self.forced.load(Ordering::Relaxed)
    }

    /// Reserve `bytes` for `operator`, or deny. A denial asks the
    /// largest outstanding grant to shrink (revocation request) and
    /// returns `None` — the caller's cue to take the spill path.
    pub fn try_reserve(&self, operator: &str, bytes: u64) -> Option<MemGrant<'_>> {
        let mut s = self.state.lock();
        if s.reserved.saturating_add(bytes) > self.budget {
            self.denials.fetch_add(1, Ordering::Relaxed);
            if let Some((_, g)) = s.grants.iter_mut().max_by_key(|(_, g)| g.bytes) {
                g.revoke = true;
            }
            return None;
        }
        Some(self.grant_locked(&mut s, operator, bytes))
    }

    /// Reserve `bytes` even past the budget. Used where degradation has
    /// bottomed out; the overshoot is visible in [`Self::peak_bytes`].
    pub fn force_reserve(&self, operator: &str, bytes: u64) -> MemGrant<'_> {
        let mut s = self.state.lock();
        if s.reserved.saturating_add(bytes) > self.budget {
            self.forced.fetch_add(1, Ordering::Relaxed);
        }
        self.grant_locked(&mut s, operator, bytes)
    }

    fn grant_locked(&self, s: &mut BrokerState, operator: &str, bytes: u64) -> MemGrant<'_> {
        let id = s.next_id;
        s.next_id += 1;
        s.reserved = s.reserved.saturating_add(bytes);
        self.peak.fetch_max(s.reserved, Ordering::Relaxed);
        s.grants.push((
            id,
            GrantState {
                operator: operator.to_string(),
                bytes,
                revoke: false,
            },
        ));
        MemGrant { broker: self, id }
    }

    fn release(&self, id: u64) {
        let mut s = self.state.lock();
        if let Some(i) = s.grants.iter().position(|(gid, _)| *gid == id) {
            let (_, g) = s.grants.swap_remove(i);
            s.reserved = s.reserved.saturating_sub(g.bytes);
        }
    }
}

/// A revocable reservation of broker bytes; releases on drop (RAII, so
/// unwinding an operator mid-build returns its memory to the query).
#[derive(Debug)]
pub struct MemGrant<'a> {
    broker: &'a MemoryBroker,
    id: u64,
}

impl MemGrant<'_> {
    /// Bytes this grant currently holds.
    pub fn bytes(&self) -> u64 {
        let s = self.broker.state.lock();
        s.grants
            .iter()
            .find(|(gid, _)| *gid == self.id)
            .map_or(0, |(_, g)| g.bytes)
    }

    /// Grow the grant by `extra` bytes if the budget allows; `false`
    /// means the holder should spill instead of growing.
    pub fn grow(&self, extra: u64) -> bool {
        let mut s = self.broker.state.lock();
        if s.reserved.saturating_add(extra) > self.broker.budget {
            self.broker.denials.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        s.reserved += extra;
        self.broker.peak.fetch_max(s.reserved, Ordering::Relaxed);
        if let Some((_, g)) = s.grants.iter_mut().find(|(gid, _)| *gid == self.id) {
            g.bytes += extra;
        }
        true
    }

    /// Has another operator's denied reservation asked this grant to
    /// shrink? Holders answer by spilling and releasing.
    pub fn revoke_requested(&self) -> bool {
        let s = self.broker.state.lock();
        s.grants
            .iter()
            .find(|(gid, _)| *gid == self.id)
            .is_some_and(|(_, g)| g.revoke)
    }

    /// The operator name this grant was issued to.
    pub fn operator(&self) -> String {
        let s = self.broker.state.lock();
        s.grants
            .iter()
            .find(|(gid, _)| *gid == self.id)
            .map(|(_, g)| g.operator.clone())
            .unwrap_or_default()
    }
}

impl Drop for MemGrant<'_> {
    fn drop(&mut self) {
        self.broker.release(self.id);
    }
}

/// Scale the configured per-query budget by the admission pool
/// fraction (llap workload manager): the derived broker budget. A zero
/// configured budget stays zero (unlimited) regardless of fraction.
pub fn scaled_budget(per_query_bytes: usize, pool_fraction: f64) -> u64 {
    if per_query_bytes == 0 {
        return 0;
    }
    ((per_query_bytes as f64 * pool_fraction.clamp(0.0, 1.0)).round() as u64).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grants_release_on_drop() {
        let b = MemoryBroker::with_budget(1000);
        let g = b.try_reserve("join", 600).expect("fits");
        assert_eq!(b.reserved(), 600);
        assert_eq!(b.available(), 400);
        assert_eq!(g.bytes(), 600);
        drop(g);
        assert_eq!(b.reserved(), 0);
        assert_eq!(b.peak_bytes(), 600);
    }

    #[test]
    fn denial_marks_largest_grant_for_revocation() {
        let b = MemoryBroker::with_budget(1000);
        let small = b.try_reserve("sort", 200).unwrap();
        let big = b.try_reserve("join", 700).unwrap();
        assert!(!big.revoke_requested());
        assert!(b.try_reserve("agg", 500).is_none(), "over budget");
        assert_eq!(b.denials(), 1);
        assert!(big.revoke_requested(), "largest holder asked to shrink");
        assert!(!small.revoke_requested());
        // The revokee spills and releases; the retry now fits.
        drop(big);
        assert!(b.try_reserve("agg", 500).is_some());
    }

    #[test]
    fn force_reserve_tracks_overshoot_in_peak() {
        let b = MemoryBroker::with_budget(100);
        let g = b.force_reserve("join-partition", 250);
        assert_eq!(b.forced(), 1);
        assert_eq!(b.peak_bytes(), 250, "peak sees past the budget");
        assert_eq!(g.operator(), "join-partition");
        drop(g);
        assert_eq!(b.reserved(), 0);
    }

    #[test]
    fn unlimited_never_denies() {
        let b = MemoryBroker::unlimited();
        assert!(!b.limited());
        let _g = b.try_reserve("join", u64::MAX / 2).unwrap();
        assert!(b.try_reserve("agg", u64::MAX / 4).is_some());
        assert_eq!(b.denials(), 0);
    }

    #[test]
    fn grow_respects_budget() {
        let b = MemoryBroker::with_budget(1000);
        let g = b.try_reserve("agg", 400).unwrap();
        assert!(g.grow(500));
        assert_eq!(g.bytes(), 900);
        assert!(!g.grow(200), "would exceed the budget");
        assert_eq!(g.bytes(), 900);
        drop(g);
        assert_eq!(b.reserved(), 0);
    }

    #[test]
    fn scaled_budget_applies_pool_fraction() {
        assert_eq!(scaled_budget(0, 0.5), 0, "unlimited stays unlimited");
        assert_eq!(scaled_budget(1_000_000, 1.0), 1_000_000);
        assert_eq!(scaled_budget(1_000_000, 0.25), 250_000);
        assert_eq!(scaled_budget(100, 0.0), 1, "never collapses to zero");
    }

    #[test]
    fn release_is_unwind_safe() {
        let b = MemoryBroker::with_budget(1000);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = b.try_reserve("join", 800).unwrap();
            panic!("operator blew up mid-build");
        }));
        assert!(r.is_err());
        assert_eq!(b.reserved(), 0, "grant released on unwind");
    }
}
