//! Morsel-style parallel execution primitives.
//!
//! The paper's LLAP layer (§5) runs query fragments concurrently on a
//! fleet of persistent executors; this module is the host-side analogue:
//! a work-stealing `parallel_map` over scoped threads (`std::thread::scope`
//! — no external runtime) that operators use to fan morsels out across
//! workers. Three properties matter more than raw speed:
//!
//! * **Determinism** — results are collected by item index and errors
//!   are surfaced in item order, so the outcome (including *which*
//!   error wins) is byte-identical to the serial loop for any worker
//!   count or interleaving. Workers never exit early on error: every
//!   item is processed exactly once per call, which keeps the
//!   fault-injection attempt counters on a fixed schedule (see
//!   `FaultInjector`) and lets `HIVE_FAULT_SEED` replays reproduce
//!   simulated time bit-for-bit.
//! * **Panic safety** — a panicking worker is caught and surfaced as a
//!   typed [`HiveError::Execution`], not a hung query or a poisoned
//!   lock.
//! * **Lease gating** — callers size the worker pool with
//!   [`crate::engine::ExecContext::lease_workers`], which draws on live
//!   LLAP executor leases so host threads and the simulated fleet's
//!   admission accounting stay in agreement.

use hive_common::{HiveError, Result};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Rows per morsel for operators that parallelize over row ranges
/// (aggregate build, join build/probe). Inputs smaller than one morsel
/// run serially — thread spawn would cost more than it saves.
pub(crate) const ROWS_PER_MORSEL: usize = 4096;

/// How many row-range morsels an input of `rows` splits into (the work
/// item count handed to `ExecContext::lease_workers`).
pub(crate) fn row_morsels(rows: usize) -> usize {
    rows.div_ceil(ROWS_PER_MORSEL)
}

/// Run `f(0..items)` across up to `workers` scoped threads and return
/// the results in item order. Items are claimed from a shared atomic
/// counter (morsel dispatch), so workers self-balance regardless of
/// per-item cost skew.
///
/// With `workers <= 1` (or fewer than two items) this degenerates to
/// the plain serial loop — the `threads=1` fallback path — except that
/// the serial loop *does* stop at the first error (nothing after it
/// has run yet, so determinism is trivially preserved).
pub(crate) fn parallel_map<T, F>(workers: usize, items: usize, f: F) -> Result<Vec<T>>
where
    T: Send,
    F: Fn(usize) -> Result<T> + Sync,
{
    if workers <= 1 || items <= 1 {
        return (0..items).map(&f).collect();
    }
    let workers = workers.min(items);
    let slots: Vec<Mutex<Option<Result<T>>>> = (0..items).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items {
                    return;
                }
                // Catch panics per item: a poisoned worker must surface
                // as an error on its item, not tear down the query or
                // leave siblings unprocessed (the remaining items still
                // run, keeping the fault-roll schedule deterministic).
                let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(i)))
                    .unwrap_or_else(|panic| {
                        let msg = panic
                            .downcast_ref::<&str>()
                            .map(|s| s.to_string())
                            .or_else(|| panic.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "worker thread panicked".to_string());
                        Err(HiveError::Execution(format!(
                            "parallel worker panicked: {msg}"
                        )))
                    });
                *slots[i].lock() = Some(r);
            });
        }
    });
    // Collect in item order; the lowest-index error wins, exactly as it
    // would in the serial loop.
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner().unwrap_or_else(|| {
                // invariant: the dispatch counter hands out every index
                // below `items` exactly once and scope joins all
                // workers, so every slot is filled; surface a typed
                // error anyway rather than trusting that across edits.
                Err(HiveError::Execution(
                    "parallel worker lost its result".into(),
                ))
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_serial_for_any_worker_count() {
        let f = |i: usize| -> Result<usize> { Ok(i * i) };
        let serial = parallel_map(1, 37, f).unwrap();
        for workers in [2, 3, 8, 64] {
            assert_eq!(parallel_map(workers, 37, f).unwrap(), serial);
        }
    }

    #[test]
    fn lowest_index_error_wins() {
        let f = |i: usize| -> Result<usize> {
            if i % 3 == 2 {
                Err(HiveError::Execution(format!("boom {i}")))
            } else {
                Ok(i)
            }
        };
        for workers in [1, 2, 8] {
            let err = parallel_map(workers, 20, f).unwrap_err();
            assert_eq!(
                err.to_string(),
                HiveError::Execution("boom 2".into()).to_string()
            );
        }
    }

    #[test]
    fn worker_panic_surfaces_as_typed_error() {
        let f = |i: usize| -> Result<usize> {
            if i == 5 {
                panic!("deliberate test panic");
            }
            Ok(i)
        };
        let err = parallel_map(4, 10, f).unwrap_err();
        match err {
            HiveError::Execution(msg) => assert!(msg.contains("deliberate test panic"), "{msg}"),
            other => panic!("expected Execution error, got {other:?}"),
        }
    }

    #[test]
    fn empty_and_single_item() {
        assert!(parallel_map(8, 0, Ok).unwrap().is_empty());
        assert_eq!(parallel_map(8, 1, Ok).unwrap(), vec![0]);
    }
}
