//! Vectorized expression evaluation over [`VectorBatch`]es.
//!
//! Hot paths (column/literal comparisons, boolean combinators, numeric
//! arithmetic) run column-at-a-time on the typed vectors; everything
//! else falls back to the shared row evaluator
//! ([`hive_optimizer::eval`]), which is also what the Hive-1.2
//! row-interpreter mode uses for *all* expressions.

use hive_common::{BitSet, ColumnBuilder, ColumnVector, HiveError, Result, Value, VectorBatch};
use hive_optimizer::eval::{eval_binary, eval_scalar};
use hive_optimizer::ScalarExpr;
use hive_sql::BinaryOp;
use std::cmp::Ordering;
use std::sync::Arc;

/// True when the column has no NULL rows (bitmap absent *or* empty),
/// letting kernels skip their per-row null branch.
#[inline]
fn null_free(nulls: &Option<BitSet>) -> bool {
    nulls.as_ref().is_none_or(|b| b.count_ones() == 0)
}

/// Evaluate an expression over every row of the batch, producing one
/// column. Bare column references return the batch's shared handle —
/// no copy — which is why the result is `Arc`'d.
pub fn eval_vector(expr: &ScalarExpr, batch: &VectorBatch) -> Result<Arc<ColumnVector>> {
    match expr {
        ScalarExpr::Column(i) => Ok(batch.column_arc(*i).clone()),
        ScalarExpr::Literal(v) => broadcast(v, batch.num_rows()).map(Arc::new),
        ScalarExpr::Binary { op, left, right } => match op {
            BinaryOp::And | BinaryOp::Or => {
                let l = eval_vector(left, batch)?;
                let r = eval_vector(right, batch)?;
                bool_combine(*op, &l, &r).map(Arc::new)
            }
            _ => {
                // Specialized compare/arith kernels when a typed fast
                // path applies; fallback otherwise.
                if let Some(out) = try_fast_binary(*op, left, right, batch)? {
                    Ok(Arc::new(out))
                } else {
                    fallback(expr, batch).map(Arc::new)
                }
            }
        },
        ScalarExpr::Not(e) => {
            let v = eval_vector(e, batch)?;
            match v.as_ref() {
                ColumnVector::Boolean(vals, nulls) => Ok(Arc::new(ColumnVector::Boolean(
                    vals.iter().map(|b| !b).collect(),
                    nulls.clone(),
                ))),
                other => Err(HiveError::Execution(format!(
                    "NOT over non-boolean column {}",
                    other.data_type()
                ))),
            }
        }
        ScalarExpr::IsNull { expr, negated } => {
            let v = eval_vector(expr, batch)?;
            let out: Vec<bool> = (0..v.len()).map(|i| v.is_null(i) != *negated).collect();
            Ok(Arc::new(ColumnVector::Boolean(out, None)))
        }
        ScalarExpr::Like {
            expr: inner,
            pattern,
            negated,
        } => {
            // `col [NOT] LIKE 'prefix%'` (no metacharacters in the
            // prefix) is a `starts_with` — per row over plain string
            // columns, once per distinct entry over dictionaries.
            if let (ScalarExpr::Column(c), ScalarExpr::Literal(Value::String(p))) =
                (inner.as_ref(), pattern.as_ref())
            {
                if let Some(prefix) = like_prefix(p) {
                    // Null rows hold `false` (the builder default the
                    // row fallback leaves behind), never the verdict of
                    // a stored placeholder value.
                    match batch.column(*c) {
                        ColumnVector::Str(v, nl) => {
                            let mut out: Vec<bool> = v
                                .iter()
                                .map(|s| s.starts_with(prefix) != *negated)
                                .collect();
                            if let Some(bits) = nl {
                                for i in bits.iter_ones() {
                                    out[i] = false;
                                }
                            }
                            return Ok(Arc::new(ColumnVector::Boolean(out, nl.clone())));
                        }
                        ColumnVector::Dict { codes, dict, nulls } => {
                            let per_code: Vec<bool> = dict
                                .iter()
                                .map(|s| s.starts_with(prefix) != *negated)
                                .collect();
                            let mut out: Vec<bool> =
                                codes.iter().map(|&c| per_code[c as usize]).collect();
                            if let Some(bits) = nulls {
                                for i in bits.iter_ones() {
                                    out[i] = false;
                                }
                            }
                            return Ok(Arc::new(ColumnVector::Boolean(out, nulls.clone())));
                        }
                        _ => {}
                    }
                }
            }
            fallback(expr, batch).map(Arc::new)
        }
        _ => fallback(expr, batch).map(Arc::new),
    }
}

/// Evaluate a boolean predicate and return the indexes of rows where it
/// is TRUE (the vectorized selection).
pub fn filter_indices(expr: &ScalarExpr, batch: &VectorBatch) -> Result<Vec<u32>> {
    let col = eval_vector(expr, batch)?;
    match col.as_ref() {
        ColumnVector::Boolean(vals, nulls) => {
            if null_free(nulls) {
                // Null-free fast path: no per-row bitmap probe.
                Ok(vals
                    .iter()
                    .enumerate()
                    .filter(|(_, &b)| b)
                    .map(|(i, _)| i as u32)
                    .collect())
            } else {
                Ok(vals
                    .iter()
                    .enumerate()
                    .filter(|(i, &b)| b && !nulls.as_ref().is_some_and(|n| n.get(*i)))
                    .map(|(i, _)| i as u32)
                    .collect())
            }
        }
        other => Err(HiveError::Execution(format!(
            "filter predicate produced {}",
            other.data_type()
        ))),
    }
}

/// Row-at-a-time interpretation of a predicate (the Hive 1.2 path).
/// One row buffer is reused across the loop — `batch.row(i)` would
/// allocate a fresh `Vec<Value>` per row.
pub fn filter_indices_rowmode(expr: &ScalarExpr, batch: &VectorBatch) -> Result<Vec<u32>> {
    let mut out = Vec::new();
    let mut vals: Vec<Value> = Vec::with_capacity(batch.num_columns());
    for i in 0..batch.num_rows() {
        vals.clear();
        for c in 0..batch.num_columns() {
            vals.push(batch.column(c).get(i));
        }
        if eval_scalar(expr, &vals)? == Value::Boolean(true) {
            out.push(i as u32);
        }
    }
    Ok(out)
}

/// Row-at-a-time projection (the Hive 1.2 path): results stream
/// straight into a [`ColumnBuilder`] for the declared output type —
/// no intermediate `Vec<Value>` of the whole column, and one reused
/// row buffer instead of a `Row` allocation per row. The output is
/// byte-identical to `eval_vector`'s builder fallback for the same
/// expression (same builder, same push sequence).
pub fn eval_rowmode(
    expr: &ScalarExpr,
    batch: &VectorBatch,
    want: &hive_common::DataType,
) -> Result<ColumnVector> {
    let mut b = ColumnBuilder::new(want)?;
    let mut vals: Vec<Value> = Vec::with_capacity(batch.num_columns());
    for i in 0..batch.num_rows() {
        vals.clear();
        for c in 0..batch.num_columns() {
            vals.push(batch.column(c).get(i));
        }
        b.push(&eval_scalar(expr, &vals)?)?;
    }
    Ok(b.finish())
}

fn broadcast(v: &Value, n: usize) -> Result<ColumnVector> {
    Ok(match v {
        Value::Null => {
            // Type-less NULL broadcast: a string column of NULLs.
            let mut b = BitSet::new(n);
            for i in 0..n {
                b.set(i);
            }
            ColumnVector::Str(vec![String::new(); n], Some(b))
        }
        Value::Boolean(x) => ColumnVector::Boolean(vec![*x; n], None),
        Value::Int(x) => ColumnVector::Int(vec![*x; n], None),
        Value::BigInt(x) => ColumnVector::BigInt(vec![*x; n], None),
        Value::Double(x) => ColumnVector::Double(vec![*x; n], None),
        Value::Decimal(u, s) => ColumnVector::Decimal(vec![*u; n], *s, None),
        Value::String(x) => ColumnVector::Str(vec![x.clone(); n], None),
        Value::Date(x) => ColumnVector::Date(vec![*x; n], None),
        Value::Timestamp(x) => ColumnVector::Timestamp(vec![*x; n], None),
    })
}

fn bool_combine(op: BinaryOp, l: &ColumnVector, r: &ColumnVector) -> Result<ColumnVector> {
    let (lv, ln) = match l {
        ColumnVector::Boolean(v, n) => (v, n),
        other => {
            return Err(HiveError::Execution(format!(
                "AND/OR over {}",
                other.data_type()
            )))
        }
    };
    let (rv, rn) = match r {
        ColumnVector::Boolean(v, n) => (v, n),
        other => {
            return Err(HiveError::Execution(format!(
                "AND/OR over {}",
                other.data_type()
            )))
        }
    };
    let n = lv.len();
    // Null-free fast path: with no NULL on either side, three-valued
    // logic degenerates to plain boolean ops — skip the per-row null
    // branches entirely.
    if null_free(ln) && null_free(rn) {
        let out: Vec<bool> = match op {
            BinaryOp::And => lv.iter().zip(rv).map(|(&a, &b)| a && b).collect(),
            BinaryOp::Or => lv.iter().zip(rv).map(|(&a, &b)| a || b).collect(),
            other => {
                return Err(HiveError::Execution(format!(
                    "boolean kernel dispatched for non-logical operator {other:?}"
                )))
            }
        };
        return Ok(ColumnVector::Boolean(out, None));
    }
    let mut out = Vec::with_capacity(n);
    let mut nulls: Option<BitSet> = None;
    for i in 0..n {
        let ln_i = ln.as_ref().is_some_and(|b| b.get(i));
        let rn_i = rn.as_ref().is_some_and(|b| b.get(i));
        // Three-valued logic.
        let (val, is_null) = match op {
            BinaryOp::And => match (ln_i, lv[i], rn_i, rv[i]) {
                (false, false, _, _) | (_, _, false, false) => (false, false),
                (false, true, false, true) => (true, false),
                _ => (false, true),
            },
            BinaryOp::Or => match (ln_i, lv[i], rn_i, rv[i]) {
                (false, true, _, _) | (_, _, false, true) => (true, false),
                (false, false, false, false) => (false, false),
                _ => (false, true),
            },
            other => {
                return Err(HiveError::Execution(format!(
                    "boolean kernel dispatched for non-logical operator {other:?}"
                )))
            }
        };
        if is_null {
            nulls.get_or_insert_with(|| BitSet::new(n)).set(i);
        }
        out.push(val);
    }
    Ok(ColumnVector::Boolean(out, nulls))
}

/// Try the typed fast path for a comparison or arithmetic op; returns
/// `None` when the shapes are not specialized.
fn try_fast_binary(
    op: BinaryOp,
    left: &ScalarExpr,
    right: &ScalarExpr,
    batch: &VectorBatch,
) -> Result<Option<ColumnVector>> {
    if !op.is_comparison() {
        // +,-,* on integer/double columns have a typed kernel; decimal
        // and division fall back (precision rules live in Value).
        return try_fast_arith(op, left, right, batch);
    }
    // column vs literal comparison over primitive types.
    let (col_expr, lit, flipped) = match (left, right) {
        (ScalarExpr::Column(c), ScalarExpr::Literal(v)) => (*c, v, false),
        (ScalarExpr::Literal(v), ScalarExpr::Column(c)) => (*c, v, true),
        _ => return Ok(None),
    };
    if lit.is_null() {
        return Ok(None);
    }
    let col = batch.column(col_expr);
    let n = col.len();
    let op = if flipped { flip(op) } else { op };
    macro_rules! cmp_prim {
        ($vals:expr, $nulls:expr, $lit:expr) => {{
            let lit = $lit;
            let mut out = Vec::with_capacity(n);
            for v in $vals.iter() {
                out.push(apply_ord(op, v.partial_cmp(&lit)));
            }
            Ok(Some(ColumnVector::Boolean(out, $nulls.clone())))
        }};
    }
    match (col, lit) {
        (ColumnVector::Int(v, nl), Value::Int(x)) => cmp_prim!(v, nl, *x),
        (ColumnVector::BigInt(v, nl), Value::BigInt(x)) => cmp_prim!(v, nl, *x),
        (ColumnVector::BigInt(v, nl), Value::Int(x)) => cmp_prim!(v, nl, *x as i64),
        (ColumnVector::Int(v, nl), Value::BigInt(x)) => {
            let lit = *x;
            let mut out = Vec::with_capacity(n);
            for v in v.iter() {
                out.push(apply_ord(op, (*v as i64).partial_cmp(&lit)));
            }
            Ok(Some(ColumnVector::Boolean(out, nl.clone())))
        }
        (ColumnVector::Double(v, nl), Value::Double(x)) => cmp_prim!(v, nl, *x),
        (ColumnVector::Double(v, nl), Value::Int(x)) => cmp_prim!(v, nl, *x as f64),
        (ColumnVector::Date(v, nl), Value::Date(x)) => cmp_prim!(v, nl, *x),
        (ColumnVector::Timestamp(v, nl), Value::Timestamp(x)) => cmp_prim!(v, nl, *x),
        (ColumnVector::Str(v, nl), Value::String(x)) => {
            let mut out = Vec::with_capacity(n);
            for s in v.iter() {
                out.push(apply_ord(op, Some(s.as_str().cmp(x.as_str()))));
            }
            Ok(Some(ColumnVector::Boolean(out, nl.clone())))
        }
        (ColumnVector::Dict { codes, dict, nulls }, Value::String(x)) => {
            // Compare once per distinct dictionary entry, then expand
            // the per-code verdicts through the codes — one string
            // comparison per *distinct* value instead of per row.
            let per_code: Vec<bool> = dict
                .iter()
                .map(|s| apply_ord(op, Some(s.as_str().cmp(x.as_str()))))
                .collect();
            let out: Vec<bool> = codes.iter().map(|&c| per_code[c as usize]).collect();
            Ok(Some(ColumnVector::Boolean(out, nulls.clone())))
        }
        (ColumnVector::Decimal(v, s, nl), Value::Decimal(u, s2)) => {
            // `sql_cmp` compares decimals exactly at the wider scale.
            // Rescaling the literal *down* to the column scale rounds
            // (half away from zero), so when the literal carries more
            // fractional digits the rows widen instead.
            if *s2 <= *s {
                let scaled = hive_common::value::rescale(*u, *s2, *s);
                cmp_prim!(v, nl, scaled)
            } else {
                let (lit, factor) = (*u, hive_common::value::pow10(*s2 - *s));
                let mut out = Vec::with_capacity(n);
                for v in v.iter() {
                    out.push(apply_ord(op, (v * factor).partial_cmp(&lit)));
                }
                Ok(Some(ColumnVector::Boolean(out, nl.clone())))
            }
        }
        (ColumnVector::Decimal(v, s, nl), Value::Int(x)) => {
            let scaled = *x as i128 * hive_common::value::pow10(*s);
            cmp_prim!(v, nl, scaled)
        }
        (ColumnVector::Decimal(v, s, nl), Value::BigInt(x)) => {
            let scaled = *x as i128 * hive_common::value::pow10(*s);
            cmp_prim!(v, nl, scaled)
        }
        // Reversed orientation: integer column against a decimal
        // literal. `sql_cmp` scales the *integer* up to the literal's
        // scale and compares exactly — never round the literal down to
        // the integer (`1 < 1.5` and `2 > 1.5` must both hold).
        (ColumnVector::Int(v, nl), Value::Decimal(u, s2)) => {
            let (lit, factor) = (*u, hive_common::value::pow10(*s2));
            let mut out = Vec::with_capacity(n);
            for v in v.iter() {
                out.push(apply_ord(op, (*v as i128 * factor).partial_cmp(&lit)));
            }
            Ok(Some(ColumnVector::Boolean(out, nl.clone())))
        }
        (ColumnVector::BigInt(v, nl), Value::Decimal(u, s2)) => {
            let (lit, factor) = (*u, hive_common::value::pow10(*s2));
            let mut out = Vec::with_capacity(n);
            for v in v.iter() {
                out.push(apply_ord(op, (*v as i128 * factor).partial_cmp(&lit)));
            }
            Ok(Some(ColumnVector::Boolean(out, nl.clone())))
        }
        _ => Ok(None),
    }
}

/// The literal prefix of a LIKE pattern of the shape `prefix%` — a
/// prefix free of metacharacters followed by a single trailing `%`.
/// Such patterns reduce to `starts_with`, the shape both the
/// vectorized fast path below and the PIR `StrPrefix` kernel key on
/// (one gating function so the two can never disagree).
pub(crate) fn like_prefix(pattern: &str) -> Option<&str> {
    let prefix = pattern.strip_suffix('%')?;
    if prefix.contains(['%', '_', '\\']) {
        return None;
    }
    Some(prefix)
}

/// Typed kernel for `column ⊕ literal` (either side) with ⊕ in
/// `{+,-,*}` over Int/BigInt/Double. Semantics — promotion, the
/// wrap-through-cast behavior of `Value`'s integer ops (i128 math then
/// truncating cast), and the default value stored at NULL slots — match
/// the row fallback exactly; only the per-row dispatch disappears. NULL
/// rows skip computation (as `eval_binary` does) and keep the builder's
/// default value, which is what batch equality compares.
fn try_fast_arith(
    op: BinaryOp,
    left: &ScalarExpr,
    right: &ScalarExpr,
    batch: &VectorBatch,
) -> Result<Option<ColumnVector>> {
    if !matches!(op, BinaryOp::Plus | BinaryOp::Minus | BinaryOp::Multiply) {
        return Ok(None);
    }
    let (col_expr, lit, flipped) = match (left, right) {
        (ScalarExpr::Column(c), ScalarExpr::Literal(v)) => (*c, v, false),
        (ScalarExpr::Literal(v), ScalarExpr::Column(c)) => (*c, v, true),
        _ => return Ok(None),
    };
    if lit.is_null() {
        return Ok(None);
    }
    let col = batch.column(col_expr);
    let iop = |a: i128, b: i128| -> i128 {
        let (a, b) = if flipped { (b, a) } else { (a, b) };
        match op {
            BinaryOp::Plus => a + b,
            BinaryOp::Minus => a - b,
            _ => a * b,
        }
    };
    let fop = |a: f64, b: f64| -> f64 {
        let (a, b) = if flipped { (b, a) } else { (a, b) };
        match op {
            BinaryOp::Plus => a + b,
            BinaryOp::Minus => a - b,
            _ => a * b,
        }
    };
    /// Map non-null rows through `f`, keeping the default at NULL slots;
    /// the null-free path drops the per-row branch entirely.
    fn arith_map<T: Copy, O: Copy + Default>(
        vals: &[T],
        nl: &Option<BitSet>,
        f: impl Fn(T) -> O,
    ) -> (Vec<O>, Option<BitSet>) {
        if null_free(nl) {
            (vals.iter().map(|&v| f(v)).collect(), nl.clone())
        } else {
            let b = nl.as_ref().expect("non-empty bitmap");
            let out = vals
                .iter()
                .enumerate()
                .map(|(i, &v)| if b.get(i) { O::default() } else { f(v) })
                .collect();
            (out, nl.clone())
        }
    }
    Ok(match (col, lit) {
        (ColumnVector::Int(v, nl), Value::Int(x)) => {
            let y = *x as i128;
            let (out, n) = arith_map(v, nl, |a: i32| iop(a as i128, y) as i32);
            Some(ColumnVector::Int(out, n))
        }
        // Mixed Int/BigInt widths: `numeric_binop` always feeds the Int
        // operand to the op first, whichever side it came from, so only
        // the commutative ops are safe to specialize here — Minus falls
        // back to preserve that exact behavior.
        (ColumnVector::Int(v, nl), Value::BigInt(x)) if op != BinaryOp::Minus => {
            let y = *x as i128;
            let (out, n) = arith_map(v, nl, |a: i32| iop(a as i128, y) as i64);
            Some(ColumnVector::BigInt(out, n))
        }
        (ColumnVector::BigInt(v, nl), Value::Int(x)) if op != BinaryOp::Minus => {
            let y = *x as i128;
            let (out, n) = arith_map(v, nl, |a: i64| iop(a as i128, y) as i64);
            Some(ColumnVector::BigInt(out, n))
        }
        (ColumnVector::BigInt(v, nl), Value::BigInt(x)) => {
            let y = *x as i128;
            let (out, n) = arith_map(v, nl, |a: i64| iop(a as i128, y) as i64);
            Some(ColumnVector::BigInt(out, n))
        }
        (ColumnVector::Double(v, nl), Value::Double(x)) => {
            let y = *x;
            let (out, n) = arith_map(v, nl, |a: f64| fop(a, y));
            Some(ColumnVector::Double(out, n))
        }
        (ColumnVector::Double(v, nl), Value::Int(x)) => {
            let y = *x as f64;
            let (out, n) = arith_map(v, nl, |a: f64| fop(a, y));
            Some(ColumnVector::Double(out, n))
        }
        (ColumnVector::Double(v, nl), Value::BigInt(x)) => {
            let y = *x as f64;
            let (out, n) = arith_map(v, nl, |a: f64| fop(a, y));
            Some(ColumnVector::Double(out, n))
        }
        (ColumnVector::Int(v, nl), Value::Double(x)) => {
            let y = *x;
            let (out, n) = arith_map(v, nl, |a: i32| fop(a as f64, y));
            Some(ColumnVector::Double(out, n))
        }
        (ColumnVector::BigInt(v, nl), Value::Double(x)) => {
            let y = *x;
            let (out, n) = arith_map(v, nl, |a: i64| fop(a as f64, y));
            Some(ColumnVector::Double(out, n))
        }
        _ => None,
    })
}

fn flip(op: BinaryOp) -> BinaryOp {
    match op {
        BinaryOp::Lt => BinaryOp::Gt,
        BinaryOp::LtEq => BinaryOp::GtEq,
        BinaryOp::Gt => BinaryOp::Lt,
        BinaryOp::GtEq => BinaryOp::LtEq,
        other => other,
    }
}

fn apply_ord(op: BinaryOp, ord: Option<Ordering>) -> bool {
    match ord {
        None => false,
        Some(o) => match op {
            BinaryOp::Eq => o == Ordering::Equal,
            BinaryOp::NotEq => o != Ordering::Equal,
            BinaryOp::Lt => o == Ordering::Less,
            BinaryOp::LtEq => o != Ordering::Greater,
            BinaryOp::Gt => o == Ordering::Greater,
            BinaryOp::GtEq => o != Ordering::Less,
            _ => false,
        },
    }
}

/// Row-fallback evaluation into a typed column. The output type comes
/// from the expression's static type against the batch schema.
fn fallback(expr: &ScalarExpr, batch: &VectorBatch) -> Result<ColumnVector> {
    if let Some(out) = eval_dict_unary(expr, batch)? {
        return Ok(out);
    }
    let dt = expr.data_type(batch.schema())?;
    let dt = if dt == hive_common::DataType::Null {
        hive_common::DataType::String
    } else {
        dt
    };
    let mut b = ColumnBuilder::new(&dt)?;
    for i in 0..batch.num_rows() {
        let row = batch.row(i);
        let v = eval_scalar(expr, row.values())?;
        b.push(&v)?;
    }
    Ok(b.finish())
}

/// Dictionary fast path for any expression whose only input column is
/// dictionary-encoded (IN lists, LIKE, CASE, functions…): run the row
/// interpreter once per *distinct* dictionary entry — plus once for
/// NULL — and expand the results through the codes. Semantics match the
/// row fallback by construction: it is the same evaluator, fed the same
/// scalar each row would have produced.
fn eval_dict_unary(expr: &ScalarExpr, batch: &VectorBatch) -> Result<Option<ColumnVector>> {
    let cols = expr.columns();
    let [ci] = cols[..] else { return Ok(None) };
    let Some((codes, dict, nulls)) = batch.column(ci).dict_parts() else {
        return Ok(None);
    };
    // Only profitable when the dictionary is smaller than the row count.
    if codes.len() <= dict.len() {
        return Ok(None);
    }
    let dt = expr.data_type(batch.schema())?;
    let dt = if dt == hive_common::DataType::Null {
        hive_common::DataType::String
    } else {
        dt
    };
    // The expression reads only column `ci`, so the other positions of
    // the synthetic row are never consulted.
    let mut row: Vec<Value> = vec![Value::Null; batch.num_columns()];
    let null_result = eval_scalar(expr, &row)?;
    let mut per_code = Vec::with_capacity(dict.len());
    for s in dict.iter() {
        row[ci] = Value::String(s.clone());
        per_code.push(eval_scalar(expr, &row)?);
    }
    let mut b = ColumnBuilder::new(&dt)?;
    for (i, &c) in codes.iter().enumerate() {
        if nulls.is_some_and(|n| n.get(i)) {
            b.push(&null_result)?;
        } else {
            b.push(&per_code[c as usize])?;
        }
    }
    Ok(Some(b.finish()))
}

/// Evaluate a binary op on two scalars — re-exported convenience for
/// operators that need ad-hoc value comparisons.
pub fn eval_value_binary(op: BinaryOp, l: &Value, r: &Value) -> Result<Value> {
    eval_binary(op, l, r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hive_common::{DataType, Field, Row, Schema};

    fn batch() -> VectorBatch {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("s", DataType::String),
            Field::new("d", DataType::Decimal(7, 2)),
        ]);
        VectorBatch::from_rows(
            &schema,
            &[
                Row::new(vec![
                    Value::Int(1),
                    Value::String("x".into()),
                    Value::Decimal(100, 2),
                ]),
                Row::new(vec![Value::Int(5), Value::Null, Value::Decimal(250, 2)]),
                Row::new(vec![Value::Int(9), Value::String("y".into()), Value::Null]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn fast_compare_int() {
        let b = batch();
        let e = ScalarExpr::Binary {
            op: BinaryOp::Gt,
            left: Box::new(ScalarExpr::Column(0)),
            right: Box::new(ScalarExpr::Literal(Value::Int(4))),
        };
        assert_eq!(filter_indices(&e, &b).unwrap(), vec![1, 2]);
        // Flipped literal side.
        let e2 = ScalarExpr::Binary {
            op: BinaryOp::Gt,
            left: Box::new(ScalarExpr::Literal(Value::Int(4))),
            right: Box::new(ScalarExpr::Column(0)),
        };
        assert_eq!(filter_indices(&e2, &b).unwrap(), vec![0]);
    }

    #[test]
    fn nulls_never_pass_filters() {
        let b = batch();
        let e = ScalarExpr::Binary {
            op: BinaryOp::Eq,
            left: Box::new(ScalarExpr::Column(1)),
            right: Box::new(ScalarExpr::Literal(Value::String("x".into()))),
        };
        assert_eq!(filter_indices(&e, &b).unwrap(), vec![0]);
        // Decimal null row filtered out too.
        let e2 = ScalarExpr::Binary {
            op: BinaryOp::LtEq,
            left: Box::new(ScalarExpr::Column(2)),
            right: Box::new(ScalarExpr::Literal(Value::Decimal(300, 2))),
        };
        assert_eq!(filter_indices(&e2, &b).unwrap(), vec![0, 1]);
    }

    #[test]
    fn vector_and_row_modes_agree() {
        let b = batch();
        let exprs = vec![
            ScalarExpr::Binary {
                op: BinaryOp::GtEq,
                left: Box::new(ScalarExpr::Column(0)),
                right: Box::new(ScalarExpr::Literal(Value::Int(5))),
            },
            ScalarExpr::IsNull {
                expr: Box::new(ScalarExpr::Column(1)),
                negated: false,
            },
            ScalarExpr::Binary {
                op: BinaryOp::And,
                left: Box::new(ScalarExpr::Binary {
                    op: BinaryOp::Gt,
                    left: Box::new(ScalarExpr::Column(0)),
                    right: Box::new(ScalarExpr::Literal(Value::Int(0))),
                }),
                right: Box::new(ScalarExpr::IsNull {
                    expr: Box::new(ScalarExpr::Column(2)),
                    negated: true,
                }),
            },
        ];
        for e in exprs {
            assert_eq!(
                filter_indices(&e, &b).unwrap(),
                filter_indices_rowmode(&e, &b).unwrap(),
                "mode divergence for {e}"
            );
        }
    }

    #[test]
    fn three_valued_and_with_null_operands() {
        // (s = 'x') AND (a > 0): row 1 has s NULL → predicate NULL → drop.
        let b = batch();
        let e = ScalarExpr::Binary {
            op: BinaryOp::And,
            left: Box::new(ScalarExpr::Binary {
                op: BinaryOp::Eq,
                left: Box::new(ScalarExpr::Column(1)),
                right: Box::new(ScalarExpr::Literal(Value::String("x".into()))),
            }),
            right: Box::new(ScalarExpr::Binary {
                op: BinaryOp::Gt,
                left: Box::new(ScalarExpr::Column(0)),
                right: Box::new(ScalarExpr::Literal(Value::Int(0))),
            }),
        };
        assert_eq!(filter_indices(&e, &b).unwrap(), vec![0]);
    }

    #[test]
    fn projection_fallback_types() {
        let b = batch();
        // a + 1 stays Int via fallback.
        let e = ScalarExpr::Binary {
            op: BinaryOp::Plus,
            left: Box::new(ScalarExpr::Column(0)),
            right: Box::new(ScalarExpr::Literal(Value::Int(1))),
        };
        let col = eval_vector(&e, &b).unwrap();
        assert_eq!(col.get(0), Value::Int(2));
        assert_eq!(col.get(2), Value::Int(10));
    }

    /// One batch with no NULL anywhere (fast kernels take the
    /// branch-free path) and one with NULLs in every numeric column
    /// (per-row bitmap path). Same schema so the same expressions run
    /// over both.
    fn numeric_batches() -> (VectorBatch, VectorBatch) {
        let schema = Schema::new(vec![
            Field::new("i", DataType::Int),
            Field::new("l", DataType::BigInt),
            Field::new("f", DataType::Double),
        ]);
        let dense = VectorBatch::from_rows(
            &schema,
            &[
                Row::new(vec![Value::Int(3), Value::BigInt(40), Value::Double(1.5)]),
                Row::new(vec![Value::Int(-7), Value::BigInt(-2), Value::Double(8.0)]),
                Row::new(vec![Value::Int(0), Value::BigInt(9), Value::Double(-0.25)]),
            ],
        )
        .unwrap();
        let holey = VectorBatch::from_rows(
            &schema,
            &[
                Row::new(vec![Value::Int(3), Value::Null, Value::Double(1.5)]),
                Row::new(vec![Value::Null, Value::BigInt(-2), Value::Null]),
                Row::new(vec![Value::Int(0), Value::BigInt(9), Value::Double(-0.25)]),
            ],
        )
        .unwrap();
        (dense, holey)
    }

    fn bin(op: BinaryOp, l: ScalarExpr, r: ScalarExpr) -> ScalarExpr {
        ScalarExpr::Binary {
            op,
            left: Box::new(l),
            right: Box::new(r),
        }
    }

    /// The arith fast path must be byte-identical to the row fallback —
    /// including the default value stored at NULL slots — on both the
    /// null-free and the nullable batch, for every specialized
    /// column/literal type pairing and both operand orders.
    #[test]
    fn fast_arith_matches_fallback_with_and_without_nulls() {
        let (dense, holey) = numeric_batches();
        let lits = [Value::Int(11), Value::BigInt(5), Value::Double(0.5)];
        for b in [&dense, &holey] {
            for op in [BinaryOp::Plus, BinaryOp::Minus, BinaryOp::Multiply] {
                for col in 0..3usize {
                    for lit in &lits {
                        for flipped in [false, true] {
                            let (l, r) = if flipped {
                                (ScalarExpr::Literal(lit.clone()), ScalarExpr::Column(col))
                            } else {
                                (ScalarExpr::Column(col), ScalarExpr::Literal(lit.clone()))
                            };
                            let e = bin(op, l, r);
                            let fast = eval_vector(&e, b).unwrap();
                            let slow = fallback(&e, b).unwrap();
                            assert_eq!(*fast.as_ref(), slow, "divergence for {e}");
                        }
                    }
                }
            }
        }
        // Sanity: the shapes above (except mixed-width Minus) really do
        // hit the typed kernel rather than silently falling back.
        let e = bin(
            BinaryOp::Plus,
            ScalarExpr::Column(0),
            ScalarExpr::Literal(Value::Int(11)),
        );
        let (ScalarExpr::Binary { op, left, right },) = (e,) else {
            unreachable!()
        };
        assert!(try_fast_arith(op, &left, &right, &dense).unwrap().is_some());
        assert!(try_fast_arith(op, &left, &right, &holey).unwrap().is_some());
    }

    /// Mixed Int/BigInt subtraction is deliberately NOT specialized:
    /// `numeric_binop` binds the Int operand first regardless of side,
    /// and the kernel must not paper over that. The fallback is still
    /// the ground truth.
    #[test]
    fn mixed_width_minus_falls_back() {
        let (dense, _) = numeric_batches();
        let e = bin(
            BinaryOp::Minus,
            ScalarExpr::Column(0),
            ScalarExpr::Literal(Value::BigInt(5)),
        );
        let ScalarExpr::Binary { op, left, right } = &e else {
            unreachable!()
        };
        assert!(try_fast_arith(*op, left, right, &dense).unwrap().is_none());
        // And the public entry point agrees with the row interpreter.
        let fast = eval_vector(&e, &dense).unwrap();
        let slow = fallback(&e, &dense).unwrap();
        assert_eq!(*fast.as_ref(), slow);
    }

    /// Comparison kernels and the AND/OR combinator agree with the row
    /// interpreter on both the null-free and the nullable batch (the
    /// null-free batch drives the branch-free selection path).
    #[test]
    fn fast_compare_and_bool_match_rowmode_both_paths() {
        let (dense, holey) = numeric_batches();
        let cmp = |op, col, lit: Value| bin(op, ScalarExpr::Column(col), ScalarExpr::Literal(lit));
        let exprs = vec![
            cmp(BinaryOp::Gt, 0, Value::Int(0)),
            cmp(BinaryOp::LtEq, 1, Value::BigInt(9)),
            cmp(BinaryOp::NotEq, 2, Value::Double(1.5)),
            bin(
                BinaryOp::And,
                cmp(BinaryOp::GtEq, 0, Value::Int(0)),
                cmp(BinaryOp::Lt, 2, Value::Double(2.0)),
            ),
            bin(
                BinaryOp::Or,
                cmp(BinaryOp::Lt, 0, Value::Int(-5)),
                cmp(BinaryOp::Gt, 1, Value::BigInt(0)),
            ),
        ];
        for b in [&dense, &holey] {
            for e in &exprs {
                assert_eq!(
                    filter_indices(e, b).unwrap(),
                    filter_indices_rowmode(e, b).unwrap(),
                    "mode divergence for {e}"
                );
            }
        }
        // The dense batch's boolean outputs carry no null bitmap, so
        // bool_combine's fast path applies end to end.
        let l = eval_vector(&exprs[0], &dense).unwrap();
        assert!(matches!(l.as_ref(), ColumnVector::Boolean(_, None)));
    }

    /// A scale-3 literal against a Decimal(7,2) column must compare at
    /// the wider scale, exactly. Rounding the literal down to the
    /// column scale turns 1.005 into 1.00 (truncate) or 1.01 (half
    /// away) and flips the verdict for the values in between — the row
    /// oracle catches either rounding direction on this batch.
    #[test]
    fn decimal_mixed_scale_compare_is_exact() {
        let schema = Schema::new(vec![Field::new("d", DataType::Decimal(7, 2))]);
        let b = VectorBatch::from_rows(
            &schema,
            &[
                Row::new(vec![Value::Decimal(100, 2)]), // 1.00
                Row::new(vec![Value::Decimal(101, 2)]), // 1.01
                Row::new(vec![Value::Decimal(250, 2)]), // 2.50
                Row::new(vec![Value::Null]),
            ],
        )
        .unwrap();
        let lit = Value::Decimal(1005, 3); // 1.005
        for op in [
            BinaryOp::Lt,
            BinaryOp::LtEq,
            BinaryOp::Gt,
            BinaryOp::GtEq,
            BinaryOp::Eq,
            BinaryOp::NotEq,
        ] {
            let e = bin(op, ScalarExpr::Column(0), ScalarExpr::Literal(lit.clone()));
            assert_eq!(
                filter_indices(&e, &b).unwrap(),
                filter_indices_rowmode(&e, &b).unwrap(),
                "mode divergence for {e}"
            );
        }
        // Pin the two verdicts a rounded literal gets wrong: truncation
        // loses `1.00 < 1.005`, half-away rounding loses `1.01 > 1.005`.
        let lt = bin(
            BinaryOp::Lt,
            ScalarExpr::Column(0),
            ScalarExpr::Literal(lit.clone()),
        );
        assert_eq!(filter_indices(&lt, &b).unwrap(), vec![0]);
        let gt = bin(
            BinaryOp::Gt,
            ScalarExpr::Column(0),
            ScalarExpr::Literal(lit),
        );
        assert_eq!(filter_indices(&gt, &b).unwrap(), vec![1, 2]);
        // Integer literals rescale to the column's scale losslessly.
        for op in [BinaryOp::Eq, BinaryOp::Gt] {
            let e = bin(
                op,
                ScalarExpr::Column(0),
                ScalarExpr::Literal(Value::BigInt(1)),
            );
            assert_eq!(
                filter_indices(&e, &b).unwrap(),
                filter_indices_rowmode(&e, &b).unwrap(),
                "mode divergence for {e}"
            );
        }
    }

    /// The reversed orientation — integer *column* against a decimal
    /// *literal* — must scale the integer up to the literal's scale
    /// (as `sql_cmp` does), never round the literal toward the column.
    /// Rounding 1.5 down (to 1) wrongly passes `1 < 1.5`'s complement,
    /// rounding up (to 2) wrongly fails `2 > 1.5`; the pinned pass
    /// sets catch both directions, the row oracle pins all six ops.
    #[test]
    fn integer_column_vs_decimal_literal_is_exact() {
        let schema = Schema::new(vec![
            Field::new("i", DataType::Int),
            Field::new("b", DataType::BigInt),
        ]);
        let b = VectorBatch::from_rows(
            &schema,
            &[
                Row::new(vec![Value::Int(1), Value::BigInt(1)]),
                Row::new(vec![Value::Int(2), Value::BigInt(2)]),
                Row::new(vec![Value::Null, Value::Null]),
            ],
        )
        .unwrap();
        let lit = Value::Decimal(15, 1); // 1.5
        for c in [0usize, 1] {
            for op in [
                BinaryOp::Lt,
                BinaryOp::LtEq,
                BinaryOp::Gt,
                BinaryOp::GtEq,
                BinaryOp::Eq,
                BinaryOp::NotEq,
            ] {
                let e = bin(op, ScalarExpr::Column(c), ScalarExpr::Literal(lit.clone()));
                assert_eq!(
                    filter_indices(&e, &b).unwrap(),
                    filter_indices_rowmode(&e, &b).unwrap(),
                    "mode divergence for {e}"
                );
            }
            // Pin the verdicts each rounding direction gets wrong:
            // round-down loses `2 > 1.5`'s partner `1 < 1.5` staying
            // strict (1 < 1 fails), round-up loses `2 > 1.5` (2 > 2
            // fails).
            let lt = bin(
                BinaryOp::Lt,
                ScalarExpr::Column(c),
                ScalarExpr::Literal(lit.clone()),
            );
            assert_eq!(filter_indices(&lt, &b).unwrap(), vec![0], "col {c}");
            let gt = bin(
                BinaryOp::Gt,
                ScalarExpr::Column(c),
                ScalarExpr::Literal(lit.clone()),
            );
            assert_eq!(filter_indices(&gt, &b).unwrap(), vec![1], "col {c}");
        }
        // Flipped operand order exercises the same arms through `flip`.
        let flipped = bin(
            BinaryOp::GtEq,
            ScalarExpr::Literal(lit),
            ScalarExpr::Column(1),
        );
        assert_eq!(
            filter_indices(&flipped, &b).unwrap(),
            filter_indices_rowmode(&flipped, &b).unwrap(),
            "flipped divergence"
        );
        assert_eq!(filter_indices(&flipped, &b).unwrap(), vec![0]);
    }

    /// Ordering comparisons and prefix LIKE over a dictionary column
    /// take the per-entry fast paths; their pass sets must match the
    /// row interpreter, including null rows and negation. A non-prefix
    /// pattern pins the gating: it must fall back, and still agree.
    #[test]
    fn dict_fast_paths_match_rowmode() {
        let schema = Schema::new(vec![Field::new("s", DataType::String)]);
        let dict = std::sync::Arc::new(vec![
            "apple".to_string(),
            "apricot".to_string(),
            "banana".to_string(),
        ]);
        let mut nulls = BitSet::new(5);
        nulls.set(3);
        let col = ColumnVector::dict_from_codes(vec![0, 2, 1, 0, 2], dict, Some(nulls)).unwrap();
        let b = VectorBatch::from_arcs(schema, vec![std::sync::Arc::new(col)], 5).unwrap();
        let like = |pattern: &str, negated| ScalarExpr::Like {
            expr: Box::new(ScalarExpr::Column(0)),
            pattern: Box::new(ScalarExpr::Literal(Value::String(pattern.into()))),
            negated,
        };
        let exprs = vec![
            bin(
                BinaryOp::Lt,
                ScalarExpr::Column(0),
                ScalarExpr::Literal(Value::String("b".into())),
            ),
            bin(
                BinaryOp::Gt,
                ScalarExpr::Column(0),
                ScalarExpr::Literal(Value::String("apricot".into())),
            ),
            like("ap%", false),
            like("ap%", true),
            like("%an%", false),
        ];
        for e in &exprs {
            assert_eq!(
                filter_indices(e, &b).unwrap(),
                filter_indices_rowmode(e, &b).unwrap(),
                "mode divergence for {e}"
            );
        }
        // Spot-check the sets themselves: codes [apple, banana,
        // apricot, NULL, banana].
        assert_eq!(filter_indices(&exprs[0], &b).unwrap(), vec![0, 2]);
        assert_eq!(filter_indices(&exprs[2], &b).unwrap(), vec![0, 2]);
        assert_eq!(filter_indices(&exprs[3], &b).unwrap(), vec![1, 4]);
        assert_eq!(filter_indices(&exprs[4], &b).unwrap(), vec![1, 4]);
    }

    /// The prefix-LIKE vector arm over a plain string column produces
    /// the same bytes as the row-at-a-time fallback it replaced.
    #[test]
    fn like_prefix_fast_arm_matches_fallback_bytes() {
        let b = batch();
        for negated in [false, true] {
            let e = ScalarExpr::Like {
                expr: Box::new(ScalarExpr::Column(1)),
                pattern: Box::new(ScalarExpr::Literal(Value::String("x%".into()))),
                negated,
            };
            let fast = eval_vector(&e, &b).unwrap();
            let slow = fallback(&e, &b).unwrap();
            assert_eq!(*fast.as_ref(), slow, "byte divergence for {e}");
        }
        // Escapes and mid-pattern wildcards are not prefixes.
        assert_eq!(like_prefix("ab%"), Some("ab"));
        assert_eq!(like_prefix("%"), Some(""));
        assert_eq!(like_prefix("a_b%"), None);
        assert_eq!(like_prefix("a\\%b%"), None);
        assert_eq!(like_prefix("a%b"), None);
    }

    /// Row-mode projection builds the declared output column directly;
    /// its bytes must match the vectorized builder fallback for the
    /// same expression (the regression this pins: the old path built a
    /// whole-column `Vec<Value>` first, and diverged on typed nulls).
    #[test]
    fn rowmode_projection_matches_vector_fallback_bytes() {
        let b = batch();
        let upper = ScalarExpr::Func {
            func: hive_optimizer::BuiltinFunc::Upper,
            args: vec![ScalarExpr::Column(1)],
        };
        let arith = bin(
            BinaryOp::Plus,
            bin(
                BinaryOp::Multiply,
                ScalarExpr::Column(0),
                ScalarExpr::Literal(Value::Int(2)),
            ),
            ScalarExpr::Literal(Value::Int(1)),
        );
        for (e, want) in [(upper, DataType::String), (arith, DataType::Int)] {
            let vec_out = fallback(&e, &b).unwrap();
            let row_out = eval_rowmode(&e, &b, &want).unwrap();
            assert_eq!(row_out, vec_out, "byte divergence for {e}");
        }
    }
}
