//! Dictionary-aware key handling shared by the hash operators.
//!
//! GROUP BY, window partitioning and (with translation) hash joins key
//! rows by [`KeyPart`]s: a dictionary-encoded string column contributes
//! its `u32` code — hashed and compared without cloning the string —
//! while every other column contributes the scalar value, exactly as
//! the pre-dictionary code did with `Vec<Value>` keys.

use hive_common::{hash, BitSet, ColumnVector, Value};
use std::sync::Arc;

/// One component of a grouping/partition key.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) enum KeyPart {
    /// SQL NULL (all NULLs group together, as `Value::Null` did).
    Null,
    /// Dictionary code; only comparable against codes produced by the
    /// same [`KeyReader`] (one column's code space).
    Code(u32),
    /// Any non-dictionary value.
    Val(Value),
}

/// Per-column key accessor: resolves each row to a [`KeyPart`] and can
/// materialize parts back to scalars at output time.
pub(crate) struct KeyReader<'a> {
    col: &'a ColumnVector,
    #[allow(clippy::type_complexity)]
    dict: Option<(&'a [u32], &'a Arc<Vec<String>>, Option<&'a BitSet>)>,
}

impl<'a> KeyReader<'a> {
    pub fn new(col: &'a ColumnVector) -> Self {
        // The code fast path requires distinct dictionary entries —
        // equal strings under different codes would split a group. All
        // engine-produced dictionaries are deduplicated; this guard
        // keeps hand-built columns correct rather than fast.
        let dict = col.dict_parts().filter(|(_, d, _)| {
            let mut seen = std::collections::HashSet::with_capacity(d.len());
            d.iter().all(|s| seen.insert(s.as_str()))
        });
        KeyReader { col, dict }
    }

    /// The key part for row `i`.
    #[inline]
    pub fn part(&self, i: usize) -> KeyPart {
        match &self.dict {
            Some((codes, _, nulls)) => {
                if nulls.is_some_and(|n| n.get(i)) {
                    KeyPart::Null
                } else {
                    KeyPart::Code(codes[i])
                }
            }
            None => {
                let v = self.col.get(i);
                if v.is_null() {
                    KeyPart::Null
                } else {
                    KeyPart::Val(v)
                }
            }
        }
    }

    /// Number of dictionary entries when the code fast path is active
    /// (codes are then dense in `0..dict_len`).
    pub fn dict_len(&self) -> Option<usize> {
        self.dict.as_ref().map(|(_, d, _)| d.len())
    }

    /// Append row `i`'s canonical key-part encoding (the flat-table key
    /// bytes, see [`hive_common::hash`]): the dictionary code on the
    /// code fast path, otherwise the cell's canonical value bytes.
    #[inline]
    pub fn encode_part_at(&self, i: usize, out: &mut Vec<u8>) {
        match &self.dict {
            Some((codes, _, nulls)) => {
                if nulls.is_some_and(|n| n.get(i)) {
                    out.push(hash::TAG_NULL);
                } else {
                    hash::encode_code(codes[i], out);
                }
            }
            None => crate::rawtable::encode_cell(self.col, i, out),
        }
    }

    /// Fold row `i`'s key-part encoding into an in-progress FNV-1a
    /// state — the column-wise hash combine step. The dict-code fast
    /// path folds five fixed bytes from a stack buffer; other columns
    /// encode into `scratch` (cleared and reused, allocation-free after
    /// warm-up) and fold that.
    #[inline]
    pub fn fold_part_at(&self, i: usize, h: u64, scratch: &mut Vec<u8>) -> u64 {
        match &self.dict {
            Some((codes, _, nulls)) => {
                if nulls.is_some_and(|n| n.get(i)) {
                    hash::fnv1a_extend(h, &[hash::TAG_NULL])
                } else {
                    let mut buf = [hash::TAG_CODE, 0, 0, 0, 0];
                    buf[1..].copy_from_slice(&codes[i].to_le_bytes());
                    hash::fnv1a_extend(h, &buf)
                }
            }
            None => {
                scratch.clear();
                crate::rawtable::encode_cell(self.col, i, scratch);
                hash::fnv1a_extend(h, scratch)
            }
        }
    }

    /// Materialize a part produced by this reader back to its scalar.
    pub fn value_of(&self, p: &KeyPart) -> Value {
        match p {
            KeyPart::Null => Value::Null,
            KeyPart::Code(c) => match &self.dict {
                Some((_, dict, _)) => Value::String(dict[*c as usize].clone()),
                // invariant: `Code` parts only come out of `part()`,
                // which only emits them when `dict` is present.
                None => unreachable!("Code part from a non-dictionary reader"),
            },
            KeyPart::Val(v) => v.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parts_round_trip_through_value_of() {
        let dict = Arc::new(vec!["a".to_string(), "b".to_string()]);
        let mut nulls = BitSet::new(3);
        nulls.set(2);
        let col = ColumnVector::dict_from_codes(vec![1, 0, 0], dict, Some(nulls)).unwrap();
        let r = KeyReader::new(&col);
        assert_eq!(r.part(0), KeyPart::Code(1));
        assert_eq!(r.part(2), KeyPart::Null);
        assert_eq!(r.value_of(&r.part(0)), Value::String("b".into()));
        assert_eq!(r.value_of(&r.part(2)), Value::Null);

        let plain = ColumnVector::Int(vec![7, 8], None);
        let rp = KeyReader::new(&plain);
        assert_eq!(rp.part(1), KeyPart::Val(Value::Int(8)));
    }

    #[test]
    fn duplicate_dictionary_entries_disable_code_path() {
        // Two codes for the same string must still land in one group.
        let dict = Arc::new(vec!["x".to_string(), "x".to_string()]);
        let col = ColumnVector::dict_from_codes(vec![0, 1], dict, None).unwrap();
        let r = KeyReader::new(&col);
        assert_eq!(r.part(0), r.part(1));
        assert_eq!(r.part(0), KeyPart::Val(Value::String("x".into())));
    }
}
