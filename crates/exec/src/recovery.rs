//! Fragment-level fault recovery.
//!
//! LLAP daemons are stateless (§5.1): "failure and recovery is
//! simplified because any node can still be used to process any
//! fragment". This module implements the recovery ladder above the
//! injection points in `hive-dfs` (transient/slow reads) and
//! `hive-llap` (daemon death, cache corruption):
//!
//! 1. **transient-read retry** — a DFS read that fails with
//!    [`HiveError::Transient`] is retried with capped exponential
//!    backoff (`backoff_base_ms · 2^attempt`, capped), charged to
//!    simulated time;
//! 2. **fragment retry** — a failing fragment is re-run on the fleet,
//!    again with backoff, up to `max_fragment_retries` attempts;
//! 3. **node failover** — a daemon dying mid-fragment is removed from
//!    the fleet (blacklisted; its cache share is lost) and the fragment
//!    is re-dispatched onto a surviving daemon;
//! 4. **escalation** — when local retries are exhausted the error
//!    surfaces as [`HiveError::FragmentLost`], which `is_retryable` and
//!    therefore reaches the driver's §4.2 re-optimization retry.
//!
//! With `recovery_enabled = false` the first fault surfaces directly as
//! [`HiveError::Transient`] — the "what would have happened" control
//! for the chaos tests.
//!
//! Because execution here is materializing and deterministic, a retried
//! fragment recomputes byte-identical results; recovery changes only
//! the trace counters ([`NodeTrace::fragment_retries`],
//! [`NodeTrace::failovers`]) and the simulated-time charges.

use crate::engine::{ExecContext, NodeTrace};
use hive_common::{fault::hash_str, HiveError, Result};

/// Retry `op` on [`HiveError::Transient`] with capped exponential
/// backoff, charging waits to the context's per-query accumulator.
/// Exhaustion escalates to [`HiveError::FragmentLost`].
pub(crate) fn retry_transient<T>(
    ctx: &ExecContext,
    what: &str,
    mut op: impl FnMut() -> Result<T>,
) -> Result<T> {
    let fault = ctx.fs.fault();
    let mut attempt: u32 = 0;
    loop {
        match op() {
            Err(e) if e.is_transient() => {
                if !fault.recovery_enabled() {
                    return Err(e);
                }
                if attempt >= fault.max_fragment_retries() {
                    return Err(HiveError::FragmentLost(format!(
                        "{what}: transient error persisted through {attempt} retries: {e}"
                    )));
                }
                ctx.charge_retry(fault.backoff_ms(attempt));
                attempt += 1;
            }
            other => return other,
        }
    }
}

/// Apply per-vertex fragment faults to a just-executed operator: daemon
/// death with failover onto the survivors, and plain fragment failure
/// with backoff retries. Mutates `trace` with the recovery charges.
pub(crate) fn apply_fragment_faults(ctx: &ExecContext, trace: &mut NodeTrace) -> Result<()> {
    let fault = ctx.fs.fault();
    if !fault.is_active() {
        return Ok(());
    }
    let frag = hash_str(&trace.label);

    // Daemon death mid-fragment. Only rolled when there is a live fleet
    // with a survivor to fail over to; the fragment's deterministic hash
    // picks which daemon it was running on.
    if ctx.conf.llap_enabled {
        if let Some(llap) = ctx.llap {
            let live = llap.live_nodes();
            if live.len() > 1 {
                let target = live[frag as usize % live.len()];
                if fault.daemon_dies(target, frag) {
                    if !fault.recovery_enabled() {
                        return Err(HiveError::Transient(format!(
                            "LLAP daemon {target} died running fragment '{}'",
                            trace.label
                        )));
                    }
                    // Blacklist the dead daemon (its executors leave the
                    // fleet, its cache share is dropped) and re-dispatch
                    // the fragment onto a survivor — holding a slot there
                    // for the retried work, released even on unwind.
                    llap.kill_daemon(target);
                    let _lease = llap.lease_executors(1);
                    trace.failovers += 1;
                    trace.fragment_retries += 1;
                    trace.backoff_wait_ms += fault.backoff_ms(0);
                }
            }
        }
    }

    // Plain fragment failure: retry with capped exponential backoff.
    // Each `fragment_fails` call draws a fresh deterministic roll (the
    // injector's per-site attempt counter), so the loop replays exactly
    // for a given seed.
    let mut attempt: u32 = 0;
    while fault.fragment_fails(frag) {
        if !fault.recovery_enabled() {
            return Err(HiveError::Transient(format!(
                "fragment '{}' failed (no recovery)",
                trace.label
            )));
        }
        if attempt >= fault.max_fragment_retries() {
            // Local retries exhausted: escalate to the driver's §4.2
            // re-optimization retry.
            return Err(HiveError::FragmentLost(format!(
                "fragment '{}' failed after {attempt} retries",
                trace.label
            )));
        }
        trace.fragment_retries += 1;
        trace.backoff_wait_ms += fault.backoff_ms(attempt);
        attempt += 1;
    }
    Ok(())
}
