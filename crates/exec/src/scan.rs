//! Table scans: ACID snapshot reads, partition handling, sarg pushdown,
//! dynamic semijoin reduction, LLAP cache routing, and federation
//! dispatch.

use crate::engine::{ExecContext, NodeTrace};
use crate::kernels::{filter_indices, filter_indices_rowmode};
use hive_acid::{resolve_snapshot, writer::record_id_at, DeleteSet, ACID_COLS};
use hive_common::{
    ColumnVector, HiveError, Result, Schema, SelBatch, SelVec, Value, VectorBatch, WriteId,
};
use hive_corc::{ColumnPredicate, CorcFile, SearchArgument};
use hive_dfs::DfsPath;
use hive_optimizer::eval::eval_scalar;
use hive_optimizer::plan::{LogicalPlan, SemiJoinFilterSpec};
use hive_optimizer::ScalarExpr;
use hive_sql::BinaryOp;
use std::collections::HashSet;
use std::sync::Arc;

type ExecFn<'f> = &'f dyn Fn(&LogicalPlan, &ExecContext) -> Result<(VectorBatch, NodeTrace)>;

/// Execute a Scan node. The result carries residual row-level filters as
/// a selection over the read batch — downstream operators consume the
/// `(batch, selection)` pair without compacting (§3.3's late filtering).
pub fn execute_scan(
    plan: &LogicalPlan,
    ctx: &ExecContext,
    exec: ExecFn,
) -> Result<(SelBatch, NodeTrace)> {
    let LogicalPlan::Scan {
        table,
        projection,
        filters,
        partitions,
        semijoin_filters,
    } = plan
    else {
        return Err(HiveError::Execution("execute_scan on non-scan".into()));
    };
    let out_schema = plan.schema();
    let mut trace = NodeTrace {
        label: format!("Scan({})", table.qualified_name),
        ..Default::default()
    };

    // Federated tables go through the storage-handler hook.
    if table.handler.is_some() {
        let scanner = ctx.external.ok_or_else(|| {
            HiveError::External(format!(
                "no storage handler registered for {}",
                table.qualified_name
            ))
        })?;
        let result = scanner.scan(table, projection, filters)?;
        trace.rows_out = result.batch.num_rows() as u64;
        trace.external_ms = result.external_ms;
        // Residual filters still apply (the handler may have pushed
        // only part of them).
        let filtered = apply_row_filters(result.batch, filters, ctx)?;
        trace.rows_out = filtered.num_rows() as u64;
        return Ok((filtered, trace));
    }

    // --- dynamic semijoin reduction (§4.6) -------------------------------
    let mut extra_preds: Vec<ColumnPredicate> = Vec::new();
    let mut partition_value_allowlist: Option<(usize, HashSet<Value>)> = None;
    for spec in semijoin_filters {
        let reducer = run_reducer(spec, ctx, exec, &mut trace)?;
        let Some((min, max, bloom, values)) = reducer else {
            // Empty build side: nothing can match.
            return Ok((
                SelBatch::from_batch(VectorBatch::empty(&out_schema)?),
                trace,
            ));
        };
        if spec.is_partition_col {
            // Dynamic partition pruning: collect the exact value set.
            let entry =
                partition_value_allowlist.get_or_insert_with(|| (spec.target_col, HashSet::new()));
            if entry.0 == spec.target_col {
                entry.1.extend(values);
            }
        } else {
            extra_preds.push(ColumnPredicate::BloomRange {
                column: spec.target_col,
                min,
                max,
                bloom,
            });
        }
    }

    // --- partition directory resolution ----------------------------------
    let cat_table = ctx.ms.get_table(&table.db, &table.name)?;
    let data_cols = cat_table.schema.len();
    // (directory, partition values) pairs to read.
    let mut dirs: Vec<(DfsPath, Vec<Value>)> = Vec::new();
    if cat_table.is_partitioned() {
        let selected: Vec<(&String, &hive_metastore::PartitionInfo)> = match partitions {
            Some(list) => list
                .iter()
                .filter_map(|d| cat_table.partitions.get_key_value(d))
                .collect(),
            None => cat_table.partitions.iter().collect(),
        };
        for (_, info) in selected {
            // Dynamic partition pruning by reducer value set.
            if let Some((target, allow)) = &partition_value_allowlist {
                let schema_col = projection[*target];
                let key_idx = schema_col - data_cols;
                if let Some(v) = info.values.get(key_idx) {
                    if !allow.iter().any(|a| a.group_eq(v)) {
                        continue;
                    }
                }
            }
            // Partition-only filter conjuncts evaluated per directory.
            if !partition_dir_matches(filters, projection, data_cols, &info.values) {
                continue;
            }
            dirs.push((DfsPath::new(&info.location), info.values.clone()));
        }
    } else {
        dirs.push((DfsPath::new(&cat_table.location), Vec::new()));
    }

    // --- sarg construction -------------------------------------------------
    // File-level sarg over *data* columns only (partition columns are
    // constant per directory and were handled above).
    let mut sarg_preds: Vec<ColumnPredicate> = Vec::new();
    for f in filters {
        for part in f.split_conjunction() {
            if let Some(p) = to_column_predicate(part, projection, data_cols) {
                sarg_preds.push(p);
            }
        }
    }
    for p in &extra_preds {
        // Reducer target col → data column index.
        let col = projection[p.column()];
        if col < data_cols {
            sarg_preds.push(retarget(p, col));
        }
    }
    let acid = table.acid;
    let id_shift = if acid { ACID_COLS } else { 0 };
    let file_sarg = SearchArgument::with(
        sarg_preds
            .iter()
            .map(|p| retarget(p, p.column() + id_shift))
            .collect(),
    );

    // --- shared-work scan reuse (§4.5) -----------------------------------
    // When several plan sites scan the same table shape with different
    // filters, the raw read happens once; each consumer applies its own
    // filters below. (The sarg skip is forfeited on the shared read.)
    let share_key = ctx.scan_share_key(plan);
    if let Some(key) = share_key {
        if let Some(raw) = ctx.shared_get(key) {
            let mut reuse = NodeTrace {
                label: format!("SharedScanReuse({})", table.qualified_name),
                rows_out: raw.num_rows() as u64,
                shared_reuse: true,
                ..Default::default()
            };
            std::mem::swap(&mut reuse.children, &mut trace.children);
            trace.children.push(reuse);
            trace.rows_in = raw.num_rows() as u64;
            let filtered =
                apply_reducer_row_checks(apply_row_filters(raw, filters, ctx)?, &extra_preds);
            trace.rows_out = filtered.num_rows() as u64;
            return Ok((filtered, trace));
        }
    }
    // A shared scan reads without sargs so every consumer's rows are
    // present in the published batch.
    let effective_sarg = if share_key.is_some() {
        SearchArgument::new()
    } else {
        file_sarg
    };
    let file_sarg = effective_sarg;

    // --- read --------------------------------------------------------------
    let io_before = ctx.fs.stats().snapshot();
    let charges_before = ctx.fault_charges();
    let slow_before = ctx.fs.fault().slow_penalty_ms();
    let cache_before = ctx
        .llap
        .map(|l| l.cache().stats().hit_miss())
        .unwrap_or((0, 0));
    let cache_bytes_before = ctx
        .llap
        .map(|l| {
            l.cache()
                .stats()
                .bytes_served_from_cache
                .load(std::sync::atomic::Ordering::Relaxed)
        })
        .unwrap_or(0);

    // Data-column projection (schema col indexes < data_cols).
    let proj_data: Vec<(usize, usize)> = projection
        .iter()
        .enumerate()
        .filter(|(_, &sc)| sc < data_cols)
        .map(|(out_i, &sc)| (out_i, sc))
        .collect();
    let proj_part: Vec<(usize, usize)> = projection
        .iter()
        .enumerate()
        .filter(|(_, &sc)| sc >= data_cols)
        .map(|(out_i, &sc)| (out_i, sc - data_cols))
        .collect();

    // --- morsel enumeration (serial) ---------------------------------------
    // Directory listing, ACID snapshot resolution, delete-delta loads,
    // and footer opens stay on this thread in deterministic order; the
    // work list is one morsel per selected row group (the stripe-sized
    // unit morsel-driven schedulers dispatch). `CorcFile` carries only
    // the DFS handle and an `Arc<Footer>`, so cloning it into each
    // morsel is cheap and shares the decoded footer.
    let mut acid_states: Vec<(hive_metastore::ValidWriteIdList, DeleteSet)> = Vec::new();
    let mut morsels: Vec<Morsel> = Vec::new();
    for (dir_idx, (dir, _)) in dirs.iter().enumerate() {
        if acid {
            let wlist = ctx.snapshots.write_ids(&table.qualified_name);
            let snap = resolve_snapshot(ctx.fs, dir, &wlist);
            let deletes = crate::recovery::retry_transient(ctx, "load delete deltas", || {
                DeleteSet::load(ctx.fs, &snap, &wlist)
            })?;
            let acid_idx = acid_states.len();
            acid_states.push((wlist, deletes));
            let mut files: Vec<DfsPath> = Vec::new();
            if let Some(b) = &snap.base {
                files.extend(
                    ctx.fs
                        .list_files_recursive(&b.path)
                        .into_iter()
                        .map(|(p, _)| p),
                );
            }
            for d in &snap.insert_deltas {
                files.extend(
                    ctx.fs
                        .list_files_recursive(&d.path)
                        .into_iter()
                        .map(|(p, _)| p),
                );
            }
            for path in files {
                let file = open_file(ctx, &path)?;
                for rg in file.selected_row_groups(&file_sarg) {
                    morsels.push(Morsel {
                        file: file.clone(),
                        rg,
                        dir_idx,
                        acid_idx: Some(acid_idx),
                    });
                }
            }
        } else {
            for (path, _) in ctx.fs.list_files_recursive(dir) {
                let file = open_file(ctx, &path)?;
                for rg in file.selected_row_groups(&file_sarg) {
                    morsels.push(Morsel {
                        file: file.clone(),
                        rg,
                        dir_idx,
                        acid_idx: None,
                    });
                }
            }
        }
    }

    // --- morsel execution --------------------------------------------------
    // Workers claim morsels from a shared counter; the count is gated by
    // live LLAP executor leases. Batches land indexed by morsel and are
    // appended in enumeration order, so the result is byte-identical to
    // the serial loop at any worker count.
    let (workers, _lease) = ctx.lease_workers(morsels.len());
    trace.parallel_workers = workers as u64;
    // Fused residual predicate (PIR): compile the pushed filters once —
    // conjuncts ordered by the table's column statistics — and evaluate
    // them inside each morsel worker, so multi-morsel assembly gathers
    // only survivors instead of concatenating full morsels and
    // filtering the result. Shared scans must publish raw rows (other
    // plan sites apply different filters), so they keep the eager path.
    let fused: Option<crate::pir::PredPipeline> =
        if crate::pir::enabled(ctx.conf) && share_key.is_none() && !filters.is_empty() {
            let tstats = ctx.ms.table_stats(&table.qualified_name);
            ScalarExpr::conjunction(filters.to_vec()).map(|pred| {
                crate::pir::PredPipeline::compile(
                    &pred,
                    &out_schema,
                    Some((&tstats, projection)),
                    ctx.conf.effective_histograms_enabled(),
                )
            })
        } else {
            None
        };
    let mut parts = crate::par::parallel_map(workers, morsels.len(), |i| {
        let m = &morsels[i];
        let b = read_row_group(
            ctx,
            &m.file,
            m.rg,
            &proj_data,
            &proj_part,
            &dirs[m.dir_idx].1,
            id_shift,
            m.acid_idx.map(|a| (&acid_states[a].0, &acid_states[a].1)),
            &out_schema,
        )?;
        // `None` keep-list = every row passed: assembly stays a memcpy.
        let keep = match &fused {
            Some(p) => p.select(&b, crate::pir::SelRef::All(b.num_rows()))?,
            None => None,
        };
        Ok((b, keep))
    })?;
    // The scan's input cardinality is the raw morsel rows (what the
    // eager path counts after its full concat, before filtering).
    let raw_rows: usize = parts.iter().map(|(b, _)| b.num_rows()).sum();
    // Single-morsel scans keep the row group's `Arc` columns as-is;
    // multi-morsel concatenation is a genuine pipeline breaker (the
    // fused path copies each survivor exactly once).
    let (out, presel) = if parts.len() == 1 {
        let (b, keep) = parts.pop().expect("len checked");
        (b, keep.map(SelVec::Idx))
    } else if fused.is_some() {
        // One gather per column straight from the morsel keep-lists.
        (VectorBatch::concat_selected(&out_schema, &parts)?, None)
    } else {
        let mut out = VectorBatch::empty(&out_schema)?;
        for (b, _) in &parts {
            out.append(b)?;
        }
        (out, None)
    };

    let io_after = ctx.fs.stats().snapshot().since(&io_before);
    trace.bytes_disk = io_after.bytes_read;
    trace.io_ops = io_after.reads + io_after.lists;
    // Fault-recovery work done inside this scan's reads: transient-read
    // retries (with their backoff waits) and injected slow-I/O latency.
    let charges = ctx.fault_charges();
    trace.fragment_retries += charges.transient_retries - charges_before.transient_retries;
    trace.backoff_wait_ms += charges.backoff_wait_ms - charges_before.backoff_wait_ms;
    trace.injected_delay_ms += ctx.fs.fault().slow_penalty_ms() - slow_before;
    if let Some(l) = ctx.llap {
        let (h, _m) = l.cache().stats().hit_miss();
        let _ = h.saturating_sub(cache_before.0);
        let bytes_cache_after = l
            .cache()
            .stats()
            .bytes_served_from_cache
            .load(std::sync::atomic::Ordering::Relaxed);
        trace.bytes_cache = bytes_cache_after.saturating_sub(cache_bytes_before);
    }
    trace.rows_in = raw_rows as u64;
    if let Some(key) = share_key {
        ctx.shared_put(key, out.clone());
    }

    // --- residual row-level filtering --------------------------------------
    // The fused path already applied `filters` per morsel (the
    // single-morsel keep-list arrives as `presel`); only the semijoin
    // reducers' row checks remain. The eager path filters here, over
    // the assembled batch.
    let filtered = if fused.is_some() {
        let sb = match presel {
            Some(sel) => SelBatch::new(out, sel)?,
            None => SelBatch::from_batch(out),
        };
        apply_reducer_row_checks(sb, &extra_preds)
    } else {
        apply_reducer_row_checks(apply_row_filters(out, filters, ctx)?, &extra_preds)
    };
    trace.rows_out = filtered.num_rows() as u64;
    Ok((filtered, trace))
}

/// Run one semijoin reducer's source subplan; `None` when the build side
/// is empty.
#[allow(clippy::type_complexity)]
fn run_reducer(
    spec: &SemiJoinFilterSpec,
    ctx: &ExecContext,
    exec: ExecFn,
    trace: &mut NodeTrace,
) -> Result<Option<(Value, Value, hive_corc::BloomFilter, Vec<Value>)>> {
    let (batch, sub_trace) = exec(&spec.source, ctx)?;
    trace.children.push(sub_trace);
    if batch.num_rows() == 0 {
        return Ok(None);
    }
    // Bloom sizing: with histograms on, size the bit array from the
    // optimizer's NDV estimate for the build key and stream values in
    // without materializing the distinct set. The hint only moves the
    // false-positive rate — the reducer is a pre-filter, so results
    // are identical either way.
    let ndv_hint = if ctx.conf.effective_histograms_enabled() {
        hive_optimizer::stats::estimate_key_ndv(
            &spec.source,
            spec.source_key,
            &hive_optimizer::stats::GatedStats {
                inner: ctx.ms,
                use_histograms: true,
                feedback: Default::default(),
            },
        )
        .map(|n| n as usize)
    } else {
        None
    };
    let Some((min, max, bloom)) =
        crate::join::build_runtime_filter_sized(&batch, spec.source_key, ndv_hint)
    else {
        return Ok(None);
    };
    // The exact value list feeds dynamic partition pruning only; the
    // Bloom path never reads it.
    let values: Vec<Value> = if spec.is_partition_col {
        let col = batch.column(spec.source_key);
        (0..col.len())
            .map(|i| col.get(i))
            .filter(|v| !v.is_null())
            .collect()
    } else {
        Vec::new()
    };
    Ok(Some((min, max, bloom, values)))
}

fn open_file(ctx: &ExecContext, path: &DfsPath) -> Result<CorcFile> {
    crate::recovery::retry_transient(ctx, &format!("open {path}"), || match ctx.llap {
        Some(l) if ctx.conf.llap_enabled => l.metadata().open(ctx.fs, path),
        _ => CorcFile::open(ctx.fs, path),
    })
}

/// One unit of parallel scan work: a single selected row group of one
/// file (the ORC-stripe/row-group granularity the tentpole targets).
struct Morsel {
    file: CorcFile,
    rg: usize,
    /// Index into the scan's `(dir, partition values)` list.
    dir_idx: usize,
    /// Index into the per-directory ACID snapshot state, if any.
    acid_idx: Option<usize>,
}

/// Read one row group into a standalone batch (runs on a morsel worker).
#[allow(clippy::too_many_arguments)]
fn read_row_group(
    ctx: &ExecContext,
    file: &CorcFile,
    rg: usize,
    proj_data: &[(usize, usize)],
    proj_part: &[(usize, usize)],
    part_values: &[Value],
    id_shift: usize,
    acid: Option<(&hive_metastore::ValidWriteIdList, &DeleteSet)>,
    out_schema: &Schema,
) -> Result<VectorBatch> {
    let rows = file.row_group_rows(rg) as usize;
    // Fetch the needed file columns (identity columns for ACID).
    let mut file_cols: Vec<usize> = (0..id_shift).collect();
    file_cols.extend(proj_data.iter().map(|(_, sc)| sc + id_shift));
    let mut fetched: Vec<Arc<ColumnVector>> = Vec::with_capacity(file_cols.len());
    for &fc in &file_cols {
        let col = fetch_chunk(ctx, file, rg, fc)?;
        fetched.push(col);
    }
    // Visibility filtering for ACID files.
    let keep: Vec<u32> = match acid {
        Some((wlist, deletes)) => {
            let id_batch = VectorBatch::from_arcs(
                hive_acid::writer::acid_file_schema(&Schema::empty()),
                fetched[..ACID_COLS].to_vec(),
                rows,
            )?;
            (0..rows as u32)
                .filter(|&i| {
                    let wid = match id_batch.column(0).get(i as usize) {
                        Value::BigInt(v) => WriteId(v as u64),
                        _ => return false,
                    };
                    wlist.is_visible(wid)
                        && (deletes.is_empty()
                            || !deletes.contains(&record_id_at(&id_batch, i as usize)))
                })
                .collect()
        }
        None => (0..rows as u32).collect(),
    };
    // Assemble the output-ordered batch. When visibility kept every row
    // (non-ACID files, or ACID with nothing deleted) the fetched `Arc`s
    // are shared as-is — no bytes move between the cache and the batch.
    let full = keep.len() == rows;
    let mut cols: Vec<Option<Arc<ColumnVector>>> = vec![None; out_schema.len()];
    for (slot, (out_i, _)) in proj_data.iter().enumerate() {
        let col = &fetched[id_shift + slot];
        cols[*out_i] = Some(if full {
            col.clone()
        } else {
            Arc::new(col.take(&keep))
        });
    }
    for (out_i, key_idx) in proj_part {
        let v = part_values.get(*key_idx).cloned().unwrap_or(Value::Null);
        let mut b = hive_common::ColumnBuilder::new(&out_schema.field(*out_i).data_type)?;
        for _ in 0..keep.len() {
            b.push(&v)?;
        }
        cols[*out_i] = Some(Arc::new(b.finish()));
    }
    let cols: Vec<Arc<ColumnVector>> = cols
        .into_iter()
        .map(|c| c.ok_or_else(|| HiveError::Execution("unfilled scan column".into())))
        .collect::<Result<Vec<_>>>()?;
    VectorBatch::from_arcs(out_schema.clone(), cols, keep.len())
}

/// Fetch one column chunk, through the LLAP cache when enabled
/// (the I/O elevator path, §5.1). DFS loads retry transient injected
/// errors; cached chunks detected as corrupt degrade back to the DFS
/// load path.
///
/// With `hive.exec.selvec.enabled` the cache's `Arc` is handed out
/// directly (zero-copy); the legacy flow deep-copies the chunk into a
/// private column and charges `bytes_copied_out`.
fn fetch_chunk(
    ctx: &ExecContext,
    file: &CorcFile,
    rg: usize,
    col: usize,
) -> Result<Arc<ColumnVector>> {
    let what = format!("chunk rg={rg} col={col} of file {:?}", file.file_id());
    // Late materialization: keep dictionary-encoded string chunks as
    // codes + shared dictionary all the way through the cache and the
    // operators (§3.1/§3.3 — LLAP caches data "in its encoded format").
    let encoded = ctx.conf.effective_dictionary_enabled();
    let read = || {
        if encoded {
            file.read_column_chunk_encoded(rg, col)
        } else {
            file.read_column_chunk(rg, col)
        }
    };
    match ctx.llap {
        Some(l) if ctx.conf.llap_enabled => {
            let key = hive_llap::cache::ChunkKey {
                file: file.file_id(),
                column: col,
                row_group: rg,
            };
            let fault = ctx.fs.fault();
            let fault = fault.is_active().then(|| fault.as_ref());
            let arc = l.cache().get_or_load_with_fault(key, fault, || {
                crate::recovery::retry_transient(ctx, &what, read)
            })?;
            if ctx.conf.effective_selvec_enabled() {
                Ok(arc)
            } else {
                l.cache().stats().bytes_copied_out.fetch_add(
                    arc.approx_bytes() as u64,
                    std::sync::atomic::Ordering::Relaxed,
                );
                Ok(Arc::new((*arc).clone()))
            }
        }
        _ => Ok(Arc::new(crate::recovery::retry_transient(
            ctx, &what, read,
        )?)),
    }
}

/// Apply residual row-level filters as a selection over `batch` — no
/// row movement; compaction is deferred to the next pipeline breaker.
fn apply_row_filters(
    batch: VectorBatch,
    filters: &[ScalarExpr],
    ctx: &ExecContext,
) -> Result<SelBatch> {
    let Some(pred) = ScalarExpr::conjunction(filters.to_vec()) else {
        return Ok(SelBatch::from_batch(batch));
    };
    let idx = if ctx.conf.vectorized {
        filter_indices(&pred, &batch)?
    } else {
        filter_indices_rowmode(&pred, &batch)?
    };
    SelBatch::new(batch, SelVec::Idx(idx))
}

/// Row-level check of non-partition semijoin reducers (the Bloom filter
/// may let some row groups through); narrows the selection in place.
fn apply_reducer_row_checks(sb: SelBatch, extra_preds: &[ColumnPredicate]) -> SelBatch {
    if extra_preds.is_empty() {
        return sb;
    }
    let positions: Vec<u32> = (0..sb.num_rows() as u32)
        .filter(|&p| {
            let row = sb.sel.index(p as usize);
            extra_preds
                .iter()
                .all(|pr| pr.matches_value(&sb.batch.column(pr.column()).get(row)))
        })
        .collect();
    let sel = sb.sel.compose(&positions);
    SelBatch {
        batch: sb.batch,
        sel,
    }
}

/// Evaluate partition-column-only conjuncts against a directory's
/// partition values; false ⇒ skip the directory.
fn partition_dir_matches(
    filters: &[ScalarExpr],
    projection: &[usize],
    data_cols: usize,
    part_values: &[Value],
) -> bool {
    // Build a pseudo-row over the scan output: partition columns carry
    // the directory's values, everything else NULL.
    let mut row = vec![Value::Null; projection.len()];
    let mut has_part_col = false;
    for (out_i, &sc) in projection.iter().enumerate() {
        if sc >= data_cols {
            if let Some(v) = part_values.get(sc - data_cols) {
                row[out_i] = v.clone();
                has_part_col = true;
            }
        }
    }
    if !has_part_col {
        return true;
    }
    for f in filters {
        for part in f.split_conjunction() {
            // Only conjuncts entirely over partition columns are
            // decisive per-directory.
            let cols = part.columns();
            if cols.is_empty()
                || !cols
                    .iter()
                    .all(|&c| projection.get(c).is_some_and(|&sc| sc >= data_cols))
            {
                continue;
            }
            if eval_scalar(part, &row) != Ok(Value::Boolean(true)) {
                return false;
            }
        }
    }
    true
}

/// Convert a supported conjunct to a sargable [`ColumnPredicate`] over
/// *data-column* indexes. Returns `None` for unsupported shapes.
fn to_column_predicate(
    e: &ScalarExpr,
    projection: &[usize],
    data_cols: usize,
) -> Option<ColumnPredicate> {
    let data_col = |c: usize| -> Option<usize> {
        let sc = *projection.get(c)?;
        (sc < data_cols).then_some(sc)
    };
    match e {
        ScalarExpr::Binary { op, left, right } => {
            let (col, lit, op) = match (left.as_ref(), right.as_ref()) {
                (ScalarExpr::Column(c), ScalarExpr::Literal(v)) if !v.is_null() => {
                    (*c, v.clone(), *op)
                }
                (ScalarExpr::Literal(v), ScalarExpr::Column(c)) if !v.is_null() => {
                    let flipped = match op {
                        BinaryOp::Lt => BinaryOp::Gt,
                        BinaryOp::LtEq => BinaryOp::GtEq,
                        BinaryOp::Gt => BinaryOp::Lt,
                        BinaryOp::GtEq => BinaryOp::LtEq,
                        o => *o,
                    };
                    (*c, v.clone(), flipped)
                }
                _ => return None,
            };
            let dc = data_col(col)?;
            Some(match op {
                BinaryOp::Eq => ColumnPredicate::Eq(dc, lit),
                BinaryOp::Lt => ColumnPredicate::Lt(dc, lit),
                BinaryOp::LtEq => ColumnPredicate::Le(dc, lit),
                BinaryOp::Gt => ColumnPredicate::Gt(dc, lit),
                BinaryOp::GtEq => ColumnPredicate::Ge(dc, lit),
                _ => return None,
            })
        }
        ScalarExpr::InList {
            expr,
            list,
            negated: false,
        } => {
            if let ScalarExpr::Column(c) = expr.as_ref() {
                let dc = data_col(*c)?;
                let vals: Option<Vec<Value>> = list
                    .iter()
                    .map(|i| match i {
                        ScalarExpr::Literal(v) if !v.is_null() => Some(v.clone()),
                        _ => None,
                    })
                    .collect();
                Some(ColumnPredicate::In(dc, vals?))
            } else {
                None
            }
        }
        ScalarExpr::IsNull { expr, negated } => {
            if let ScalarExpr::Column(c) = expr.as_ref() {
                let dc = data_col(*c)?;
                Some(if *negated {
                    ColumnPredicate::IsNotNull(dc)
                } else {
                    ColumnPredicate::IsNull(dc)
                })
            } else {
                None
            }
        }
        _ => None,
    }
}

/// Rebuild a predicate with a different column index.
fn retarget(p: &ColumnPredicate, col: usize) -> ColumnPredicate {
    match p {
        ColumnPredicate::Eq(_, v) => ColumnPredicate::Eq(col, v.clone()),
        ColumnPredicate::Lt(_, v) => ColumnPredicate::Lt(col, v.clone()),
        ColumnPredicate::Le(_, v) => ColumnPredicate::Le(col, v.clone()),
        ColumnPredicate::Gt(_, v) => ColumnPredicate::Gt(col, v.clone()),
        ColumnPredicate::Ge(_, v) => ColumnPredicate::Ge(col, v.clone()),
        ColumnPredicate::Between(_, a, b) => ColumnPredicate::Between(col, a.clone(), b.clone()),
        ColumnPredicate::In(_, vs) => ColumnPredicate::In(col, vs.clone()),
        ColumnPredicate::IsNull(_) => ColumnPredicate::IsNull(col),
        ColumnPredicate::IsNotNull(_) => ColumnPredicate::IsNotNull(col),
        ColumnPredicate::BloomRange {
            min, max, bloom, ..
        } => ColumnPredicate::BloomRange {
            column: col,
            min: min.clone(),
            max: max.clone(),
            bloom: bloom.clone(),
        },
    }
}
