//! Lowering: optimizer [`ScalarExpr`] trees → compiled PIR pipelines.
//!
//! Three compile-time passes run here, all once per query instead of
//! once per batch:
//!
//! 1. **Constant folding** — literal subtrees collapse via the
//!    optimizer's [`fold_expr`] (which reuses `eval_scalar`, so folded
//!    results are exactly what the interpreter would compute).
//! 2. **Common-subexpression elimination** — duplicate projection
//!    expressions evaluate once and share the result column; repeated
//!    non-trivial subtrees hoist into temp columns; duplicate
//!    predicate conjuncts drop (`p AND p` ≡ `p` in three-valued
//!    logic).
//! 3. **Conjunct ordering** — a multi-conjunct predicate evaluates
//!    cheapest tier first ([`PredKernel::cost_tier`]), most selective
//!    first within a tier (reusing [`hive_optimizer::stats`] estimates,
//!    column statistics when the caller has them), short-circuiting
//!    through the shrinking selection vector. Ties keep source order,
//!    so the compiled order is fully deterministic.
//!
//! Reordering and short-circuiting are observationally safe because
//! every conjunct is deterministic (non-deterministic predicates
//! compile to a single source-order row kernel) and NULL/false rows
//! are dropped identically wherever they are detected first. The one
//! contract change, documented in DESIGN.md §4: a row-level evaluation
//! *error* in a later conjunct does not surface if an earlier conjunct
//! already dropped the row — the same latitude Hive takes when it
//! reorders conjuncts during predicate pushdown.

use super::kernel::{CmpSpec, OrdMask, PredKernel, SelRef};
use hive_common::{KernelType, Result, Schema, Value, VectorBatch};
use hive_metastore::TableStats;
use hive_optimizer::rules::folding::fold_expr;
use hive_optimizer::stats::selectivity_with;
use hive_optimizer::ScalarExpr;
use hive_sql::BinaryOp;
use std::collections::{HashMap, HashSet};

/// A compiled filter: an ordered bank of predicate kernels.
#[derive(Debug)]
pub(crate) enum PredPipeline {
    /// Predicate folded to TRUE — nothing to evaluate.
    KeepAll,
    /// Predicate folded to FALSE/NULL — no row can pass.
    DropAll,
    /// Short-circuit conjunct bank, cheapest/most-selective first.
    Kernels(Vec<PredKernel>),
}

impl PredPipeline {
    /// Compile a predicate against the input schema. `stats` (the
    /// scanned table's statistics plus the output-column → table-column
    /// projection) refines conjunct ordering when available;
    /// `use_hist` further drives the ordering estimates from column
    /// histograms (`hive.optimizer.histograms.enabled`).
    pub(crate) fn compile(
        pred: &ScalarExpr,
        schema: &Schema,
        stats: Option<(&TableStats, &[usize])>,
        use_hist: bool,
    ) -> PredPipeline {
        let folded = fold_expr(pred.clone());
        match &folded {
            ScalarExpr::Literal(Value::Boolean(true)) => return PredPipeline::KeepAll,
            ScalarExpr::Literal(Value::Boolean(false)) | ScalarExpr::Literal(Value::Null) => {
                return PredPipeline::DropAll
            }
            _ => {}
        }
        // Reordering or skipping evaluations of a non-deterministic
        // predicate would change what it computes: evaluate it row by
        // row in source order, exactly like the interpreter.
        if !folded.is_deterministic() {
            return PredPipeline::Kernels(vec![row_kernel(folded)]);
        }
        let mut seen: HashSet<String> = HashSet::new();
        let mut items: Vec<(usize, u8, f64, PredKernel)> = Vec::new();
        for c in folded.split_conjunction() {
            match c {
                ScalarExpr::Literal(Value::Boolean(true)) => continue,
                ScalarExpr::Literal(Value::Boolean(false)) | ScalarExpr::Literal(Value::Null) => {
                    return PredPipeline::DropAll
                }
                _ => {}
            }
            // CSE over conjuncts: `p AND p` keeps one copy.
            if !seen.insert(c.to_string()) {
                continue;
            }
            let k = compile_pred(c, schema);
            let idx = items.len();
            items.push((idx, k.cost_tier(), selectivity_with(c, stats, use_hist), k));
        }
        if items.is_empty() {
            return PredPipeline::KeepAll;
        }
        items.sort_by(|a, b| {
            a.1.cmp(&b.1)
                .then(a.2.partial_cmp(&b.2).unwrap_or(std::cmp::Ordering::Equal))
                .then(a.0.cmp(&b.0))
        });
        PredPipeline::Kernels(items.into_iter().map(|(_, _, _, k)| k).collect())
    }

    /// True when no kernel in the pipeline is a row-at-a-time
    /// fallback — the gate for the compiled join-residual path, which
    /// builds pair batches carrying only referenced columns.
    pub(crate) fn fully_compiled(&self) -> bool {
        match self {
            PredPipeline::KeepAll | PredPipeline::DropAll => true,
            PredPipeline::Kernels(ks) => !ks.iter().any(PredKernel::has_row),
        }
    }

    /// Narrow `sel` to the passing rows. `Ok(None)` means every
    /// selected row passes (callers keep their selection — and their
    /// memcpy concat path — untouched).
    pub(crate) fn select(&self, batch: &VectorBatch, sel: SelRef<'_>) -> Result<Option<Vec<u32>>> {
        match self {
            PredPipeline::KeepAll => Ok(None),
            PredPipeline::DropAll => Ok(Some(Vec::new())),
            PredPipeline::Kernels(ks) => {
                let mut cur = ks[0].select(batch, sel)?;
                if cur.len() == sel.len() && ks.len() == 1 {
                    return Ok(None);
                }
                for k in &ks[1..] {
                    if cur.is_empty() {
                        break;
                    }
                    cur = k.select(batch, SelRef::Idx(&cur))?;
                }
                if cur.len() == sel.len() {
                    return Ok(None);
                }
                Ok(Some(cur))
            }
        }
    }
}

fn row_kernel(expr: ScalarExpr) -> PredKernel {
    let cols = expr.columns();
    PredKernel::Row { expr, cols }
}

/// Compile one (deterministic) predicate subtree.
fn compile_pred(e: &ScalarExpr, schema: &Schema) -> PredKernel {
    if let Some(k) = compile_leaf(e, schema) {
        return k;
    }
    match e {
        ScalarExpr::Binary {
            op: BinaryOp::And, ..
        } => {
            // Nested conjunction (under an OR): short-circuit in
            // source order; reordering only happens at the top level
            // where selectivity estimates are anchored.
            PredKernel::And(
                e.split_conjunction()
                    .into_iter()
                    .map(|c| compile_pred(c, schema))
                    .collect(),
            )
        }
        ScalarExpr::Binary {
            op: BinaryOp::Or,
            left,
            right,
        } => PredKernel::Or(
            Box::new(compile_pred(left, schema)),
            Box::new(compile_pred(right, schema)),
        ),
        _ => row_kernel(e.clone()),
    }
}

/// Leaf shapes with a specialized kernel: `col <cmp> lit` (either
/// orientation), `NOT` of one, `col IS [NOT] NULL`, and
/// `col [NOT] LIKE 'prefix%'`.
fn compile_leaf(e: &ScalarExpr, schema: &Schema) -> Option<PredKernel> {
    match e {
        ScalarExpr::Binary { op, left, right } if op.is_comparison() => {
            let (col, lit, op) = match (left.as_ref(), right.as_ref()) {
                (ScalarExpr::Column(c), ScalarExpr::Literal(v)) => (*c, v, *op),
                (ScalarExpr::Literal(v), ScalarExpr::Column(c)) => (*c, v, flip(*op)),
                // Column-column comparison: the join-residual shape
                // (also plain `WHERE a < b`). The operand domain pair
                // resolves per batch inside the kernel.
                (ScalarExpr::Column(a), ScalarExpr::Column(b)) => {
                    return Some(PredKernel::CmpCols {
                        lcol: *a,
                        rcol: *b,
                        mask: OrdMask::of(*op)?,
                        orig: Box::new(e.clone()),
                    })
                }
                _ => return None,
            };
            if matches!(lit, Value::Null) {
                return None;
            }
            let mask = OrdMask::of(op)?;
            let kt = KernelType::of_data_type(&schema.field(col).data_type)?;
            let spec = CmpSpec::coerce(kt, lit)?;
            Some(PredKernel::Cmp {
                col,
                mask,
                spec,
                orig: Box::new(ScalarExpr::Binary {
                    op,
                    left: Box::new(ScalarExpr::Column(col)),
                    right: Box::new(ScalarExpr::Literal(lit.clone())),
                }),
            })
        }
        ScalarExpr::Not(inner) => match compile_leaf(inner, schema)? {
            // NOT of a comparison is the complementary comparison over
            // non-NULL rows; NULL rows pass neither (3VL).
            PredKernel::Cmp {
                col,
                mask,
                spec,
                orig,
            } => Some(PredKernel::Cmp {
                col,
                mask: mask.negate(),
                spec,
                orig: Box::new(ScalarExpr::Not(orig)),
            }),
            PredKernel::CmpCols {
                lcol,
                rcol,
                mask,
                orig,
            } => Some(PredKernel::CmpCols {
                lcol,
                rcol,
                mask: mask.negate(),
                orig: Box::new(ScalarExpr::Not(orig)),
            }),
            PredKernel::IsNull { col, negated } => Some(PredKernel::IsNull {
                col,
                negated: !negated,
            }),
            PredKernel::StrPrefix {
                col,
                prefix,
                negated,
                orig,
            } => Some(PredKernel::StrPrefix {
                col,
                prefix,
                negated: !negated,
                orig: Box::new(ScalarExpr::Not(orig)),
            }),
            _ => None,
        },
        ScalarExpr::IsNull { expr, negated } => match expr.as_ref() {
            ScalarExpr::Column(c) => Some(PredKernel::IsNull {
                col: *c,
                negated: *negated,
            }),
            _ => None,
        },
        ScalarExpr::Like {
            expr,
            pattern,
            negated,
        } => {
            let (col, pat) = match (expr.as_ref(), pattern.as_ref()) {
                (ScalarExpr::Column(c), ScalarExpr::Literal(Value::String(p))) => (*c, p),
                _ => return None,
            };
            let prefix = crate::kernels::like_prefix(pat)?;
            if KernelType::of_data_type(&schema.field(col).data_type)? != KernelType::Str {
                return None;
            }
            Some(PredKernel::StrPrefix {
                col,
                prefix: prefix.to_string(),
                negated: *negated,
                orig: Box::new(e.clone()),
            })
        }
        _ => None,
    }
}

/// Mirror a comparison across its operands (`lit < col` ≡ `col > lit`).
fn flip(op: BinaryOp) -> BinaryOp {
    match op {
        BinaryOp::Lt => BinaryOp::Gt,
        BinaryOp::LtEq => BinaryOp::GtEq,
        BinaryOp::Gt => BinaryOp::Lt,
        BinaryOp::GtEq => BinaryOp::LtEq,
        other => other,
    }
}

/// A compiled projection: folded, deduplicated expressions over an
/// extended input (base columns plus hoisted common subexpressions).
#[derive(Debug)]
pub(crate) struct ProjPlan {
    /// Output column `i` reads `unique[slots[i]]`.
    pub slots: Vec<usize>,
    /// Distinct output expressions, rewritten over `eval_schema`.
    pub unique: Vec<ScalarExpr>,
    /// Hoisted subexpressions (over base columns only), evaluated into
    /// temp columns appended after the base columns.
    pub temps: Vec<ScalarExpr>,
    /// Base schema plus one field per temp.
    pub eval_schema: Schema,
    /// Base columns any expression still reads.
    pub referenced: Vec<usize>,
}

impl ProjPlan {
    pub(crate) fn compile(exprs: &[ScalarExpr], in_schema: &Schema) -> Result<ProjPlan> {
        // Fold, then share identical outputs.
        let folded: Vec<ScalarExpr> = exprs.iter().map(|e| fold_expr(e.clone())).collect();
        let mut slots = Vec::with_capacity(folded.len());
        let mut unique: Vec<ScalarExpr> = Vec::new();
        let mut index: HashMap<String, usize> = HashMap::new();
        for e in &folded {
            let key = e.to_string();
            let slot = *index.entry(key).or_insert_with(|| {
                unique.push(e.clone());
                unique.len() - 1
            });
            slots.push(slot);
        }
        // Hoist repeated non-trivial subtrees: larger candidates first,
        // so an outer repeat absorbs its inner repeats.
        let mut counts: HashMap<String, (usize, usize, ScalarExpr)> = HashMap::new();
        for e in &unique {
            count_subtrees(e, true, &mut counts);
        }
        let mut cands: Vec<(usize, String, ScalarExpr)> = counts
            .into_iter()
            .filter(|(_, (n, _, _))| *n >= 2)
            .map(|(k, (_, size, e))| (size, k, e))
            .collect();
        cands.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        let base_width = in_schema.len();
        let mut temps: Vec<ScalarExpr> = Vec::new();
        let mut fields = in_schema.fields().to_vec();
        for (_, key, sub) in cands {
            let still: usize = unique.iter().map(|e| occurrences(e, &key)).sum();
            if still < 2 {
                continue;
            }
            let temp_col = base_width + temps.len();
            for e in &mut unique {
                *e = replace_subtree(e, &key, temp_col);
            }
            fields.push(hive_common::Field::new(
                format!("__cse{}", temps.len()),
                sub.data_type(in_schema)?,
            ));
            temps.push(sub);
        }
        let eval_schema = Schema::new(fields);
        let mut referenced: Vec<bool> = vec![false; base_width];
        for e in unique.iter().chain(temps.iter()) {
            for c in e.columns() {
                if c < base_width {
                    referenced[c] = true;
                }
            }
        }
        Ok(ProjPlan {
            slots,
            unique,
            temps,
            eval_schema,
            referenced: (0..base_width).filter(|&c| referenced[c]).collect(),
        })
    }
}

/// Count occurrences of every hoistable subtree (deterministic,
/// non-leaf). `root` nodes still count: a whole output expression that
/// also appears *inside* another shares one temp.
fn count_subtrees(
    e: &ScalarExpr,
    _root: bool,
    counts: &mut HashMap<String, (usize, usize, ScalarExpr)>,
) {
    if !matches!(e, ScalarExpr::Column(_) | ScalarExpr::Literal(_)) && e.is_deterministic() {
        let entry = counts
            .entry(e.to_string())
            .or_insert_with(|| (0, tree_size(e), e.clone()));
        entry.0 += 1;
    }
    for c in children(e) {
        count_subtrees(c, false, counts);
    }
}

fn tree_size(e: &ScalarExpr) -> usize {
    1 + children(e).iter().map(|c| tree_size(c)).sum::<usize>()
}

fn occurrences(e: &ScalarExpr, key: &str) -> usize {
    let own = (e.to_string() == key) as usize;
    own + children(e)
        .iter()
        .map(|c| occurrences(c, key))
        .sum::<usize>()
}

fn children(e: &ScalarExpr) -> Vec<&ScalarExpr> {
    match e {
        ScalarExpr::Column(_) | ScalarExpr::Literal(_) => Vec::new(),
        ScalarExpr::Binary { left, right, .. } => vec![left, right],
        ScalarExpr::Not(x) | ScalarExpr::Negate(x) => vec![x],
        ScalarExpr::IsNull { expr, .. }
        | ScalarExpr::Cast { expr, .. }
        | ScalarExpr::Extract { expr, .. } => {
            vec![expr]
        }
        ScalarExpr::Like { expr, pattern, .. } => vec![expr, pattern],
        ScalarExpr::InList { expr, list, .. } => {
            let mut v = vec![expr.as_ref()];
            v.extend(list.iter());
            v
        }
        ScalarExpr::Case {
            operand,
            branches,
            else_expr,
        } => {
            let mut v: Vec<&ScalarExpr> = Vec::new();
            if let Some(o) = operand {
                v.push(o);
            }
            for (w, t) in branches {
                v.push(w);
                v.push(t);
            }
            if let Some(x) = else_expr {
                v.push(x);
            }
            v
        }
        ScalarExpr::Func { args, .. } => args.iter().collect(),
    }
}

/// Rebuild `e` with every subtree printing as `key` replaced by a
/// reference to the temp column.
fn replace_subtree(e: &ScalarExpr, key: &str, col: usize) -> ScalarExpr {
    if e.to_string() == key {
        return ScalarExpr::Column(col);
    }
    let sub = |x: &ScalarExpr| Box::new(replace_subtree(x, key, col));
    match e {
        ScalarExpr::Column(_) | ScalarExpr::Literal(_) => e.clone(),
        ScalarExpr::Binary { op, left, right } => ScalarExpr::Binary {
            op: *op,
            left: sub(left),
            right: sub(right),
        },
        ScalarExpr::Not(x) => ScalarExpr::Not(sub(x)),
        ScalarExpr::Negate(x) => ScalarExpr::Negate(sub(x)),
        ScalarExpr::IsNull { expr, negated } => ScalarExpr::IsNull {
            expr: sub(expr),
            negated: *negated,
        },
        ScalarExpr::Like {
            expr,
            pattern,
            negated,
        } => ScalarExpr::Like {
            expr: sub(expr),
            pattern: sub(pattern),
            negated: *negated,
        },
        ScalarExpr::InList {
            expr,
            list,
            negated,
        } => ScalarExpr::InList {
            expr: sub(expr),
            list: list.iter().map(|x| replace_subtree(x, key, col)).collect(),
            negated: *negated,
        },
        ScalarExpr::Case {
            operand,
            branches,
            else_expr,
        } => ScalarExpr::Case {
            operand: operand.as_ref().map(|o| sub(o)),
            branches: branches
                .iter()
                .map(|(w, t)| (replace_subtree(w, key, col), replace_subtree(t, key, col)))
                .collect(),
            else_expr: else_expr.as_ref().map(|x| sub(x)),
        },
        ScalarExpr::Cast { expr, to } => ScalarExpr::Cast {
            expr: sub(expr),
            to: to.clone(),
        },
        ScalarExpr::Extract { field, expr } => ScalarExpr::Extract {
            field: *field,
            expr: sub(expr),
        },
        ScalarExpr::Func { func, args } => ScalarExpr::Func {
            func: *func,
            args: args.iter().map(|x| replace_subtree(x, key, col)).collect(),
        },
    }
}
