//! Compiled accumulator kernels — aggregate fusion past the group-by
//! boundary.
//!
//! The interpreted build ([`crate::aggregate`]) calls `Acc::update` per
//! row: a `ColumnVector::get` materializing a [`Value`], then an enum
//! dispatch per accumulator. With the physical IR enabled, the build
//! instead records each selected row's `(row, group)` assignment while
//! discovering groups, and every aggregate folds its input column in
//! one type-specialized pass here ([`fold`]) — no per-row `Value`
//! allocation, no accumulator dispatch, a null-free loop when the
//! column carries no bitmap.
//!
//! Byte-identity contract with the interpreted accumulators:
//!
//! - **SUM(Int/BigInt)** reproduces `Value::add`'s wrap-through-cast
//!   chain (i128 math truncated back per step ≡ `wrapping_add` at the
//!   column width).
//! - **SUM(Double)** *assigns* the first non-null value instead of
//!   folding from `0.0` — the interpreter clones the first value, and
//!   `0.0 + (-0.0)` is `+0.0`, which would flip the displayed sign of
//!   an all-negative-zero group.
//! - **SUM(Decimal)** checked-adds at the column scale and surfaces the
//!   interpreter's exact overflow error.
//! - **MIN/MAX** keep the *first* strictly-better row (`sql_cmp ==
//!   Less/Greater`), so NaN poisoning (a NaN leader never loses) and
//!   tie behavior match exactly; the winning value materializes once
//!   per group at the end.
//! - **AVG** accumulates `(f64 sum, count)` in ascending row order —
//!   the interpreter's fold order, which f64 addition is sensitive to.
//!
//! Error-under-fusion contract (DESIGN.md §4): a fold error (decimal
//! SUM overflow) surfaces after the group-discovery pass rather than
//! interleaved with it, and folds run aggregate-by-aggregate rather
//! than row-by-row — when *several* aggregates would fail, which error
//! surfaces first may differ from the interpreter. Any failing query
//! fails under both paths; only the reported error can differ.

use super::kernel::column_nulls;
use hive_common::{ColumnVector, HiveError, Result, Value};
use hive_optimizer::AggFunc;
use std::cmp::Ordering;

/// Folded per-group states; the caller converts them back into the
/// interpreter's accumulator domain before `finish`.
pub(crate) enum FoldOut {
    /// COUNT(*) / COUNT(expr) per group.
    Count(Vec<i64>),
    /// SUM/MIN/MAX per group (`None` = no non-null input).
    Opt(Vec<Option<Value>>),
    /// AVG per group as `(sum, count)`.
    Avg(Vec<(f64, i64)>),
}

/// Can `func` over `arg`'s runtime representation fold through a
/// compiled kernel with byte-identical results? DISTINCT and Welford
/// stddev keep their stateful accumulators (row fallback); SUM/AVG
/// compile for the numeric column types, MIN/MAX for every type whose
/// `sql_cmp` is a direct same-variant comparison. COUNT only needs the
/// null bitmap, so it compiles over anything.
pub(crate) fn compilable(func: AggFunc, distinct: bool, arg: Option<&ColumnVector>) -> bool {
    if distinct {
        return false;
    }
    match func {
        AggFunc::Count => true,
        AggFunc::StddevSamp => false,
        AggFunc::Sum | AggFunc::Avg => matches!(
            arg,
            Some(
                ColumnVector::Int(..)
                    | ColumnVector::BigInt(..)
                    | ColumnVector::Double(..)
                    | ColumnVector::Decimal(..)
            )
        ),
        AggFunc::Min | AggFunc::Max => matches!(
            arg,
            Some(
                ColumnVector::Boolean(..)
                    | ColumnVector::Int(..)
                    | ColumnVector::BigInt(..)
                    | ColumnVector::Double(..)
                    | ColumnVector::Decimal(..)
                    | ColumnVector::Str(..)
                    | ColumnVector::Dict { .. }
                    | ColumnVector::Date(..)
                    | ColumnVector::Timestamp(..)
            )
        ),
    }
}

/// Fold one aggregate over the recorded assignment: `rows[j]` is the
/// batch row, `assign[j]` its group, both in ascending selected-position
/// order (each group's rows fold in the serial order). Only call for
/// [`compilable`] combinations.
pub(crate) fn fold(
    func: AggFunc,
    arg: Option<&ColumnVector>,
    rows: &[u32],
    assign: &[u32],
    ngroups: usize,
) -> Result<FoldOut> {
    let col =
        arg.ok_or_else(|| HiveError::Execution("compiled aggregate missing its argument".into()));
    match func {
        AggFunc::Count => Ok(FoldOut::Count(fold_count(arg, rows, assign, ngroups))),
        AggFunc::Sum => fold_sum(col?, rows, assign, ngroups),
        AggFunc::Avg => fold_avg(col?, rows, assign, ngroups),
        AggFunc::Min => fold_minmax(col?, rows, assign, ngroups, Ordering::Less),
        AggFunc::Max => fold_minmax(col?, rows, assign, ngroups, Ordering::Greater),
        AggFunc::StddevSamp => Err(HiveError::Execution(
            "stddev has no compiled accumulator".into(),
        )),
    }
}

fn fold_count(
    arg: Option<&ColumnVector>,
    rows: &[u32],
    assign: &[u32],
    ngroups: usize,
) -> Vec<i64> {
    let mut counts = vec![0i64; ngroups];
    match arg.and_then(column_nulls) {
        // COUNT(*) or a null-free argument: every assigned row counts.
        None => {
            for &g in assign {
                counts[g as usize] += 1;
            }
        }
        Some(nb) => {
            for (j, &g) in assign.iter().enumerate() {
                if !nb.get(rows[j] as usize) {
                    counts[g as usize] += 1;
                }
            }
        }
    }
    counts
}

/// Null-aware fold skeleton shared by the kernels below: visits each
/// non-null `(row, group)` pair in order, with a bitmap-free loop when
/// the column has no nulls.
macro_rules! fold_loop {
    ($nulls:expr, $rows:expr, $assign:expr, $i:ident, $g:ident, $step:expr) => {
        match $nulls {
            None => {
                for (j, &$g) in $assign.iter().enumerate() {
                    let $i = $rows[j] as usize;
                    $step
                }
            }
            Some(nb) => {
                for (j, &$g) in $assign.iter().enumerate() {
                    let $i = $rows[j] as usize;
                    if nb.get($i) {
                        continue;
                    }
                    $step
                }
            }
        }
    };
}

fn fold_sum(col: &ColumnVector, rows: &[u32], assign: &[u32], ngroups: usize) -> Result<FoldOut> {
    let nulls = column_nulls(col);
    Ok(FoldOut::Opt(match col {
        ColumnVector::Int(v, _) => {
            // `Value::add` on Int does exact i128 math then truncates
            // back to i32 per step — a wrapping add at i32 width.
            let mut accs: Vec<Option<i32>> = vec![None; ngroups];
            fold_loop!(nulls, rows, assign, i, g, {
                let a = &mut accs[g as usize];
                *a = Some(match *a {
                    None => v[i],
                    Some(c) => c.wrapping_add(v[i]),
                });
            });
            accs.into_iter().map(|a| a.map(Value::Int)).collect()
        }
        ColumnVector::BigInt(v, _) => {
            let mut accs: Vec<Option<i64>> = vec![None; ngroups];
            fold_loop!(nulls, rows, assign, i, g, {
                let a = &mut accs[g as usize];
                *a = Some(match *a {
                    None => v[i],
                    Some(c) => c.wrapping_add(v[i]),
                });
            });
            accs.into_iter().map(|a| a.map(Value::BigInt)).collect()
        }
        ColumnVector::Double(v, _) => {
            // Assign-first (see module docs): the first value seeds the
            // accumulator exactly as the interpreter's clone does.
            let mut accs: Vec<Option<f64>> = vec![None; ngroups];
            fold_loop!(nulls, rows, assign, i, g, {
                let a = &mut accs[g as usize];
                *a = Some(match *a {
                    None => v[i],
                    Some(c) => c + v[i],
                });
            });
            accs.into_iter().map(|a| a.map(Value::Double)).collect()
        }
        ColumnVector::Decimal(v, s, _) => {
            let s = *s;
            let mut accs: Vec<Option<i128>> = vec![None; ngroups];
            fold_loop!(nulls, rows, assign, i, g, {
                let a = &mut accs[g as usize];
                *a = Some(match *a {
                    None => v[i],
                    Some(c) => c
                        .checked_add(v[i])
                        .ok_or_else(|| HiveError::Execution("decimal overflow in +".into()))?,
                });
            });
            accs.into_iter()
                .map(|a| a.map(|u| Value::Decimal(u, s)))
                .collect()
        }
        other => {
            return Err(HiveError::Execution(format!(
                "no compiled SUM kernel for {:?}",
                other.data_type()
            )))
        }
    }))
}

fn fold_avg(col: &ColumnVector, rows: &[u32], assign: &[u32], ngroups: usize) -> Result<FoldOut> {
    let nulls = column_nulls(col);
    let mut accs: Vec<(f64, i64)> = vec![(0.0, 0); ngroups];
    macro_rules! avg_loop {
        ($v:expr, $conv:expr) => {
            fold_loop!(nulls, rows, assign, i, g, {
                let a = &mut accs[g as usize];
                a.0 += $conv($v[i]);
                a.1 += 1;
            })
        };
    }
    match col {
        ColumnVector::Int(v, _) => avg_loop!(v, |x: i32| x as f64),
        ColumnVector::BigInt(v, _) => avg_loop!(v, |x: i64| x as f64),
        ColumnVector::Double(v, _) => avg_loop!(v, |x: f64| x),
        ColumnVector::Decimal(v, s, _) => {
            // `Value::as_f64` divides by 10^scale per value; reproduce
            // the identical division (not a reciprocal multiply).
            let div = 10f64.powi(*s as i32);
            avg_loop!(v, |x: i128| x as f64 / div)
        }
        other => {
            return Err(HiveError::Execution(format!(
                "no compiled AVG kernel for {:?}",
                other.data_type()
            )))
        }
    }
    Ok(FoldOut::Avg(accs))
}

fn fold_minmax(
    col: &ColumnVector,
    rows: &[u32],
    assign: &[u32],
    ngroups: usize,
    want: Ordering,
) -> Result<FoldOut> {
    let nulls = column_nulls(col);
    // Track the winning row per group; the value materializes once at
    // the end. `u32::MAX` = no non-null input seen.
    let mut best: Vec<u32> = vec![u32::MAX; ngroups];
    macro_rules! mm_loop {
        ($cmp:expr) => {
            fold_loop!(nulls, rows, assign, i, g, {
                let b = &mut best[g as usize];
                // Replace only on a strict win (`sql_cmp == want`): an
                // incomparable pair (NaN) never replaces, and a NaN
                // leader never loses — the interpreter's exact rule.
                if *b == u32::MAX || $cmp(i, *b as usize) == Some(want) {
                    *b = i as u32;
                }
            })
        };
    }
    match col {
        ColumnVector::Boolean(v, _) => mm_loop!(|i: usize, b: usize| Some(v[i].cmp(&v[b]))),
        ColumnVector::Int(v, _) => mm_loop!(|i: usize, b: usize| Some(v[i].cmp(&v[b]))),
        ColumnVector::BigInt(v, _) => mm_loop!(|i: usize, b: usize| Some(v[i].cmp(&v[b]))),
        ColumnVector::Double(v, _) => mm_loop!(|i: usize, b: usize| v[i].partial_cmp(&v[b])),
        ColumnVector::Decimal(v, _, _) => mm_loop!(|i: usize, b: usize| Some(v[i].cmp(&v[b]))),
        ColumnVector::Str(v, _) => mm_loop!(|i: usize, b: usize| Some(v[i].cmp(&v[b]))),
        ColumnVector::Dict { codes, dict, .. } => {
            mm_loop!(|i: usize, b: usize| Some(
                dict[codes[i] as usize].cmp(&dict[codes[b] as usize])
            ))
        }
        ColumnVector::Date(v, _) => mm_loop!(|i: usize, b: usize| Some(v[i].cmp(&v[b]))),
        ColumnVector::Timestamp(v, _) => mm_loop!(|i: usize, b: usize| Some(v[i].cmp(&v[b]))),
    }
    Ok(FoldOut::Opt(
        best.into_iter()
            .map(|b| {
                if b == u32::MAX {
                    None
                } else {
                    Some(col.get(b as usize))
                }
            })
            .collect(),
    ))
}
