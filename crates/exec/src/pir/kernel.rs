//! Type-specialized predicate kernels — the monomorphization layer of
//! the physical IR.
//!
//! The interpreter ([`crate::kernels`]) re-discovers the column
//! representation of every operand on every batch: `try_fast_binary`
//! matches on [`ColumnVector`] variants, and a miss walks rows through
//! `eval_scalar`. A [`PredKernel`] is the result of doing that match
//! **once at lowering time**: the comparison literal is pre-coerced
//! into the column's kernel domain ([`CmpSpec`]) and evaluation is a
//! tight loop over the selection vector with no per-batch dispatch.
//!
//! Pass-set contract: for every kernel, `select(batch, sel)` returns
//! exactly the rows of `sel` (in `sel` order) on which the source
//! predicate evaluates to SQL TRUE — the same set
//! [`crate::kernels::filter_indices`] would keep after compacting
//! `sel`. NULL comparisons never pass (three-valued logic), so
//! `AND` is an ordered short-circuit intersection and `OR` a union.

use hive_common::value::pow10;
use hive_common::{BitSet, ColumnVector, KernelType, Result, SelVec, Value, VectorBatch};
use hive_optimizer::eval::eval_scalar;
use hive_optimizer::ScalarExpr;
use hive_sql::BinaryOp;
use std::cmp::Ordering;

/// Borrowed selection: the rows a kernel may look at, in order.
#[derive(Clone, Copy)]
pub(crate) enum SelRef<'a> {
    All(usize),
    Idx(&'a [u32]),
}

impl<'a> SelRef<'a> {
    pub(crate) fn of(sel: &'a SelVec) -> SelRef<'a> {
        match sel {
            SelVec::All(n) => SelRef::All(*n),
            SelVec::Idx(v) => SelRef::Idx(v),
        }
    }

    pub(crate) fn len(self) -> usize {
        match self {
            SelRef::All(n) => n,
            SelRef::Idx(v) => v.len(),
        }
    }
}

/// Keep the selected rows satisfying `keep`, preserving selection order.
#[inline]
fn filter_sel(sel: SelRef<'_>, mut keep: impl FnMut(usize) -> bool) -> Vec<u32> {
    match sel {
        SelRef::All(n) => (0..n as u32).filter(|&r| keep(r as usize)).collect(),
        SelRef::Idx(v) => v.iter().copied().filter(|&r| keep(r as usize)).collect(),
    }
}

#[inline]
fn for_each_sel(sel: SelRef<'_>, mut f: impl FnMut(u32)) {
    match sel {
        SelRef::All(n) => (0..n as u32).for_each(&mut f),
        SelRef::Idx(v) => v.iter().copied().for_each(&mut f),
    }
}

#[inline]
fn null_free(nulls: &Option<BitSet>) -> bool {
    nulls.as_ref().is_none_or(|b| b.count_ones() == 0)
}

/// A comparison operator resolved to its verdict per [`Ordering`] —
/// computed once at lowering so the row loop is a table lookup instead
/// of an operator match (`apply_ord` per row in the interpreter).
#[derive(Debug, Clone, Copy)]
pub(crate) struct OrdMask {
    lt: bool,
    eq: bool,
    gt: bool,
}

impl OrdMask {
    pub(crate) fn of(op: BinaryOp) -> Option<OrdMask> {
        let (lt, eq, gt) = match op {
            BinaryOp::Eq => (false, true, false),
            BinaryOp::NotEq => (true, false, true),
            BinaryOp::Lt => (true, false, false),
            BinaryOp::LtEq => (true, true, false),
            BinaryOp::Gt => (false, false, true),
            BinaryOp::GtEq => (false, true, true),
            _ => return None,
        };
        Some(OrdMask { lt, eq, gt })
    }

    /// The NOT of this comparison over non-NULL operands (NULLs never
    /// pass either way, so mask complement is exactly `NOT cmp`).
    pub(crate) fn negate(self) -> OrdMask {
        OrdMask {
            lt: !self.lt,
            eq: !self.eq,
            gt: !self.gt,
        }
    }

    #[inline]
    fn hit(self, o: Ordering) -> bool {
        match o {
            Ordering::Less => self.lt,
            Ordering::Equal => self.eq,
            Ordering::Greater => self.gt,
        }
    }

    /// Incomparable (`None`, only NaN) never passes — same verdict as
    /// the interpreter's `apply_ord`.
    #[inline]
    fn hit_opt(self, o: Option<Ordering>) -> bool {
        o.is_some_and(|o| self.hit(o))
    }
}

/// A comparison literal pre-coerced into the column's kernel domain.
/// One variant per [`KernelType`] comparison the interpreter's fast
/// path covers; lowering produces `None` (→ row fallback) elsewhere.
#[derive(Debug, Clone)]
pub(crate) enum CmpSpec {
    Int(i32),
    /// `Int` column against a `BigInt` literal: rows widen to `i64`.
    IntWide(i64),
    BigInt(i64),
    Double(f64),
    /// Literal rescaled **up** to the column scale — exact, never
    /// rounds (a literal with more fractional digits than the column
    /// uses [`CmpSpec::DecimalWide`] instead).
    Decimal {
        lit: i128,
        scale: u8,
    },
    /// Literal scale exceeds the column scale: compare
    /// `row * factor` against the unscaled literal, both at the
    /// literal's scale. Exact where rounding the literal down is not.
    DecimalWide {
        lit: i128,
        factor: i128,
        scale: u8,
    },
    Date(i32),
    Timestamp(i64),
    Str(String),
}

impl CmpSpec {
    /// The kernel domain this comparison is monomorphized over (the
    /// schema-level domain; a `Str` spec still runs per-entry over
    /// dictionary columns).
    pub(crate) fn kernel_type(&self) -> KernelType {
        match self {
            CmpSpec::Int(_) | CmpSpec::IntWide(_) => KernelType::Int,
            CmpSpec::BigInt(_) => KernelType::BigInt,
            CmpSpec::Double(_) => KernelType::Double,
            CmpSpec::Decimal { scale, .. } | CmpSpec::DecimalWide { scale, .. } => {
                KernelType::Decimal(*scale)
            }
            CmpSpec::Date(_) => KernelType::Date,
            CmpSpec::Timestamp(_) => KernelType::Timestamp,
            CmpSpec::Str(_) => KernelType::Str,
        }
    }

    /// Coerce a literal into the comparison domain of a column of
    /// kernel type `kt`. Mirrors the `(column, literal)` pairs
    /// `try_fast_binary` specializes; anything else row-falls-back.
    pub(crate) fn coerce(kt: KernelType, lit: &Value) -> Option<CmpSpec> {
        use hive_common::value::rescale;
        Some(match (kt, lit) {
            (KernelType::Int, Value::Int(x)) => CmpSpec::Int(*x),
            (KernelType::Int, Value::BigInt(x)) => CmpSpec::IntWide(*x),
            (KernelType::BigInt, Value::BigInt(x)) => CmpSpec::BigInt(*x),
            (KernelType::BigInt, Value::Int(x)) => CmpSpec::BigInt(*x as i64),
            (KernelType::Double, Value::Double(x)) => CmpSpec::Double(*x),
            (KernelType::Double, Value::Int(x)) => CmpSpec::Double(*x as f64),
            (KernelType::Decimal(s), Value::Decimal(u, s2)) => {
                if *s2 <= s {
                    CmpSpec::Decimal {
                        lit: rescale(*u, *s2, s),
                        scale: s,
                    }
                } else {
                    CmpSpec::DecimalWide {
                        lit: *u,
                        factor: pow10(*s2 - s),
                        scale: s,
                    }
                }
            }
            (KernelType::Decimal(s), Value::Int(x)) => CmpSpec::Decimal {
                lit: *x as i128 * pow10(s),
                scale: s,
            },
            (KernelType::Decimal(s), Value::BigInt(x)) => CmpSpec::Decimal {
                lit: *x as i128 * pow10(s),
                scale: s,
            },
            (KernelType::Date, Value::Date(x)) => CmpSpec::Date(*x),
            (KernelType::Timestamp, Value::Timestamp(x)) => CmpSpec::Timestamp(*x),
            (KernelType::Str, Value::String(x)) => CmpSpec::Str(x.clone()),
            _ => return None,
        })
    }
}

/// A compiled predicate node. `select` narrows a selection to the rows
/// where the predicate is TRUE.
#[derive(Debug, Clone)]
pub(crate) enum PredKernel {
    /// `column <op> literal`, literal pre-coerced. `orig` is the source
    /// expression, kept for the (defensive) representation-mismatch row
    /// fallback.
    Cmp {
        col: usize,
        mask: OrdMask,
        spec: CmpSpec,
        orig: Box<ScalarExpr>,
    },
    /// `left_col <op> right_col` — both operands are columns (the
    /// compiled join-residual shape; also `WHERE a < b` filters). The
    /// variant pair resolves per batch, mirroring `sql_cmp`'s
    /// same-domain arms; unsupported pairs row-fall-back.
    CmpCols {
        lcol: usize,
        rcol: usize,
        mask: OrdMask,
        orig: Box<ScalarExpr>,
    },
    /// `column [NOT] LIKE 'prefix%'` over a string column — per-row
    /// `starts_with`, per-dictionary-entry over dict columns.
    StrPrefix {
        col: usize,
        prefix: String,
        negated: bool,
        orig: Box<ScalarExpr>,
    },
    /// `column IS [NOT] NULL` — a bitmap probe, the cheapest tier.
    IsNull { col: usize, negated: bool },
    /// Ordered short-circuit conjunction: each kernel narrows the
    /// previous survivor set, so later (costlier) conjuncts only see
    /// rows the earlier ones kept.
    And(Vec<PredKernel>),
    /// Disjunction as a union: the right side only evaluates rows the
    /// left rejected, and the result is re-merged in selection order.
    Or(Box<PredKernel>, Box<PredKernel>),
    /// Interpreter fallback for shapes with no specialized kernel —
    /// still selection-driven (only selected rows evaluate) and
    /// dictionary-aware like `eval_dict_unary`.
    Row { expr: ScalarExpr, cols: Vec<usize> },
}

impl PredKernel {
    /// Cost tier for conjunct ordering: bitmap probes and fixed-width
    /// comparisons, then string comparisons, then composites, then the
    /// row-at-a-time fallback.
    pub(crate) fn cost_tier(&self) -> u8 {
        match self {
            PredKernel::IsNull { .. } => 0,
            PredKernel::Cmp { spec, .. } => {
                if spec.kernel_type().is_fixed_width() {
                    0
                } else {
                    1
                }
            }
            // Column-column comparisons can land on a string pair, so
            // they order with the string tier.
            PredKernel::CmpCols { .. } => 1,
            PredKernel::StrPrefix { .. } => 1,
            PredKernel::And(_) | PredKernel::Or(..) => 2,
            PredKernel::Row { .. } => 3,
        }
    }

    /// Does any node in this kernel tree fall back to row-at-a-time
    /// `eval_scalar`? Gates the compiled-residual path: pair batches
    /// materialize only referenced columns, which is exactly what the
    /// monomorphized kernels (and their per-comparison fallbacks) read,
    /// but a whole-expression `Row` kernel forfeits the point of the
    /// vectorized pass.
    pub(crate) fn has_row(&self) -> bool {
        match self {
            PredKernel::Row { .. } => true,
            PredKernel::And(ks) => ks.iter().any(PredKernel::has_row),
            PredKernel::Or(l, r) => l.has_row() || r.has_row(),
            _ => false,
        }
    }

    /// Rows of `sel` (in order) where this predicate is TRUE.
    pub(crate) fn select(&self, batch: &VectorBatch, sel: SelRef<'_>) -> Result<Vec<u32>> {
        match self {
            PredKernel::Cmp {
                col,
                mask,
                spec,
                orig,
            } => match select_cmp(batch.column(*col), *mask, spec, sel) {
                Some(v) => Ok(v),
                // Representation drifted from the schema the spec was
                // compiled against: evaluate the original expression.
                None => select_row(orig, std::slice::from_ref(col), batch, sel),
            },
            PredKernel::CmpCols {
                lcol,
                rcol,
                mask,
                orig,
            } => match select_cmp_cols(batch.column(*lcol), batch.column(*rcol), *mask, sel) {
                Some(v) => Ok(v),
                None => select_row(orig, &[*lcol, *rcol], batch, sel),
            },
            PredKernel::StrPrefix {
                col,
                prefix,
                negated,
                orig,
            } => match batch.column(*col) {
                ColumnVector::Str(v, n) => {
                    let nf = null_free(n);
                    Ok(filter_sel(sel, |r| {
                        (nf || !n.as_ref().expect("nullable").get(r))
                            && (v[r].starts_with(prefix.as_str()) != *negated)
                    }))
                }
                ColumnVector::Dict { codes, dict, nulls } => {
                    let verdicts: Vec<bool> = dict
                        .iter()
                        .map(|s| s.starts_with(prefix.as_str()) != *negated)
                        .collect();
                    let nf = null_free(nulls);
                    Ok(filter_sel(sel, |r| {
                        (nf || !nulls.as_ref().expect("nullable").get(r))
                            && verdicts[codes[r] as usize]
                    }))
                }
                _ => select_row(orig, std::slice::from_ref(col), batch, sel),
            },
            PredKernel::IsNull { col, negated } => {
                let c = batch.column(*col);
                Ok(match column_nulls(c) {
                    Some(b) => filter_sel(sel, |r| b.get(r) != *negated),
                    // No bitmap: IS NULL keeps nothing, IS NOT NULL
                    // keeps everything.
                    None => {
                        if *negated {
                            filter_sel(sel, |_| true)
                        } else {
                            Vec::new()
                        }
                    }
                })
            }
            PredKernel::And(ks) => {
                let mut cur = ks[0].select(batch, sel)?;
                for k in &ks[1..] {
                    if cur.is_empty() {
                        break;
                    }
                    cur = k.select(batch, SelRef::Idx(&cur))?;
                }
                Ok(cur)
            }
            PredKernel::Or(l, r) => {
                let lp = l.select(batch, sel)?;
                if lp.len() == sel.len() {
                    return Ok(lp);
                }
                // Rows the left rejected, in selection order.
                let mut rest = Vec::with_capacity(sel.len() - lp.len());
                let mut i = 0;
                for_each_sel(sel, |row| {
                    if i < lp.len() && lp[i] == row {
                        i += 1;
                    } else {
                        rest.push(row);
                    }
                });
                let rp = r.select(batch, SelRef::Idx(&rest))?;
                // Union back in selection order (both are ordered
                // subsequences of `sel`).
                let mut out = Vec::with_capacity(lp.len() + rp.len());
                let (mut i, mut j) = (0, 0);
                for_each_sel(sel, |row| {
                    let in_l = i < lp.len() && lp[i] == row;
                    if in_l {
                        i += 1;
                    }
                    let in_r = j < rp.len() && rp[j] == row;
                    if in_r {
                        j += 1;
                    }
                    if in_l || in_r {
                        out.push(row);
                    }
                });
                Ok(out)
            }
            PredKernel::Row { expr, cols } => select_row(expr, cols, batch, sel),
        }
    }
}

/// The null bitmap of any column representation.
pub(crate) fn column_nulls(col: &ColumnVector) -> Option<&BitSet> {
    match col {
        ColumnVector::Boolean(_, n)
        | ColumnVector::Int(_, n)
        | ColumnVector::BigInt(_, n)
        | ColumnVector::Double(_, n)
        | ColumnVector::Decimal(_, _, n)
        | ColumnVector::Str(_, n)
        | ColumnVector::Date(_, n)
        | ColumnVector::Timestamp(_, n) => n.as_ref(),
        ColumnVector::Dict { nulls, .. } => nulls.as_ref(),
    }
    .filter(|b| b.count_ones() > 0)
}

/// One macro expansion per fixed-width domain: a null-free loop and a
/// nullable loop, both branching only on the pre-resolved [`OrdMask`].
macro_rules! cmp_fixed {
    ($vals:expr, $nulls:expr, $sel:expr, $mask:expr, $lit:expr) => {{
        let (vals, lit, mask) = ($vals, $lit, $mask);
        if null_free($nulls) {
            filter_sel($sel, |r| mask.hit_opt(vals[r].partial_cmp(&lit)))
        } else {
            let b = $nulls.as_ref().expect("nullable");
            filter_sel($sel, |r| {
                !b.get(r) && mask.hit_opt(vals[r].partial_cmp(&lit))
            })
        }
    }};
}

/// Monomorphized comparison loop; `None` when the runtime
/// representation does not match the compiled spec.
fn select_cmp(
    col: &ColumnVector,
    mask: OrdMask,
    spec: &CmpSpec,
    sel: SelRef<'_>,
) -> Option<Vec<u32>> {
    Some(match (spec, col) {
        (CmpSpec::Int(x), ColumnVector::Int(v, n)) => cmp_fixed!(v, n, sel, mask, *x),
        (CmpSpec::IntWide(x), ColumnVector::Int(v, n)) => {
            let (x, nf) = (*x, null_free(n));
            if nf {
                filter_sel(sel, |r| mask.hit((v[r] as i64).cmp(&x)))
            } else {
                let b = n.as_ref().expect("nullable");
                filter_sel(sel, |r| !b.get(r) && mask.hit((v[r] as i64).cmp(&x)))
            }
        }
        (CmpSpec::BigInt(x), ColumnVector::BigInt(v, n)) => cmp_fixed!(v, n, sel, mask, *x),
        (CmpSpec::Double(x), ColumnVector::Double(v, n)) => cmp_fixed!(v, n, sel, mask, *x),
        (CmpSpec::Decimal { lit, scale }, ColumnVector::Decimal(v, s, n)) if s == scale => {
            cmp_fixed!(v, n, sel, mask, *lit)
        }
        (CmpSpec::DecimalWide { lit, factor, scale }, ColumnVector::Decimal(v, s, n))
            if s == scale =>
        {
            let (lit, factor, nf) = (*lit, *factor, null_free(n));
            if nf {
                filter_sel(sel, |r| mask.hit((v[r] * factor).cmp(&lit)))
            } else {
                let b = n.as_ref().expect("nullable");
                filter_sel(sel, |r| !b.get(r) && mask.hit((v[r] * factor).cmp(&lit)))
            }
        }
        (CmpSpec::Date(x), ColumnVector::Date(v, n)) => cmp_fixed!(v, n, sel, mask, *x),
        (CmpSpec::Timestamp(x), ColumnVector::Timestamp(v, n)) => cmp_fixed!(v, n, sel, mask, *x),
        (CmpSpec::Str(x), ColumnVector::Str(v, n)) => {
            let nf = null_free(n);
            if nf {
                filter_sel(sel, |r| mask.hit(v[r].as_str().cmp(x.as_str())))
            } else {
                let b = n.as_ref().expect("nullable");
                filter_sel(sel, |r| {
                    !b.get(r) && mask.hit(v[r].as_str().cmp(x.as_str()))
                })
            }
        }
        // Dictionary column: one verdict per distinct entry, then a
        // code-indexed lookup per row — `eval_dict_unary`'s shape with
        // the decision made at compile time.
        (CmpSpec::Str(x), ColumnVector::Dict { codes, dict, nulls }) => {
            let verdicts: Vec<bool> = dict.iter().map(|s| mask.hit(s.as_str().cmp(x))).collect();
            let nf = null_free(nulls);
            filter_sel(sel, |r| {
                (nf || !nulls.as_ref().expect("nullable").get(r)) && verdicts[codes[r] as usize]
            })
        }
        _ => return None,
    })
}

/// Shared loop for column-column comparisons: a row passes when both
/// sides are non-NULL and the per-row ordering hits the mask (NULL or
/// incomparable never passes — `sql_cmp` three-valued semantics).
fn cmp_cols_loop(
    sel: SelRef<'_>,
    mask: OrdMask,
    ln: Option<&BitSet>,
    rn: Option<&BitSet>,
    cmp: impl Fn(usize) -> Option<Ordering>,
) -> Vec<u32> {
    match (ln, rn) {
        (None, None) => filter_sel(sel, |r| mask.hit_opt(cmp(r))),
        _ => filter_sel(sel, |r| {
            !ln.is_some_and(|b| b.get(r)) && !rn.is_some_and(|b| b.get(r)) && mask.hit_opt(cmp(r))
        }),
    }
}

/// Monomorphized column-column comparison. Each arm mirrors the
/// corresponding `sql_cmp` pair exactly (same widening, same rescale
/// direction); `None` for pairs `sql_cmp` resolves through the f64
/// default or not at all — those evaluate via the row fallback.
fn select_cmp_cols(
    l: &ColumnVector,
    r: &ColumnVector,
    mask: OrdMask,
    sel: SelRef<'_>,
) -> Option<Vec<u32>> {
    let (ln, rn) = (column_nulls(l), column_nulls(r));
    use ColumnVector as C;
    Some(match (l, r) {
        (C::Int(a, _), C::Int(b, _)) => cmp_cols_loop(sel, mask, ln, rn, |i| Some(a[i].cmp(&b[i]))),
        (C::BigInt(a, _), C::BigInt(b, _)) => {
            cmp_cols_loop(sel, mask, ln, rn, |i| Some(a[i].cmp(&b[i])))
        }
        (C::Int(a, _), C::BigInt(b, _)) => {
            cmp_cols_loop(sel, mask, ln, rn, |i| Some((a[i] as i64).cmp(&b[i])))
        }
        (C::BigInt(a, _), C::Int(b, _)) => {
            cmp_cols_loop(sel, mask, ln, rn, |i| Some(a[i].cmp(&(b[i] as i64))))
        }
        (C::Double(a, _), C::Double(b, _)) => {
            cmp_cols_loop(sel, mask, ln, rn, |i| a[i].partial_cmp(&b[i]))
        }
        // Mixed scales rescale both sides up to the max scale — the
        // exact `sql_cmp` path (rescale up is a lossless multiply).
        (C::Decimal(a, s1, _), C::Decimal(b, s2, _)) => {
            let (fa, fb) = (pow10(s2.saturating_sub(*s1)), pow10(s1.saturating_sub(*s2)));
            cmp_cols_loop(sel, mask, ln, rn, |i| Some((a[i] * fa).cmp(&(b[i] * fb))))
        }
        (C::Decimal(a, s, _), C::Int(b, _)) => {
            let f = pow10(*s);
            cmp_cols_loop(sel, mask, ln, rn, |i| Some(a[i].cmp(&(b[i] as i128 * f))))
        }
        (C::Int(a, _), C::Decimal(b, s, _)) => {
            let f = pow10(*s);
            cmp_cols_loop(sel, mask, ln, rn, |i| Some((a[i] as i128 * f).cmp(&b[i])))
        }
        (C::Decimal(a, s, _), C::BigInt(b, _)) => {
            let f = pow10(*s);
            cmp_cols_loop(sel, mask, ln, rn, |i| Some(a[i].cmp(&(b[i] as i128 * f))))
        }
        (C::BigInt(a, _), C::Decimal(b, s, _)) => {
            let f = pow10(*s);
            cmp_cols_loop(sel, mask, ln, rn, |i| Some((a[i] as i128 * f).cmp(&b[i])))
        }
        (C::Date(a, _), C::Date(b, _)) => {
            cmp_cols_loop(sel, mask, ln, rn, |i| Some(a[i].cmp(&b[i])))
        }
        (C::Timestamp(a, _), C::Timestamp(b, _)) => {
            cmp_cols_loop(sel, mask, ln, rn, |i| Some(a[i].cmp(&b[i])))
        }
        (C::Date(a, _), C::Timestamp(b, _)) => cmp_cols_loop(sel, mask, ln, rn, |i| {
            Some((a[i] as i64 * 86_400_000_000).cmp(&b[i]))
        }),
        (C::Timestamp(a, _), C::Date(b, _)) => cmp_cols_loop(sel, mask, ln, rn, |i| {
            Some(a[i].cmp(&(b[i] as i64 * 86_400_000_000)))
        }),
        (C::Boolean(a, _), C::Boolean(b, _)) => {
            cmp_cols_loop(sel, mask, ln, rn, |i| Some(a[i].cmp(&b[i])))
        }
        (C::Str(a, _), C::Str(b, _)) => cmp_cols_loop(sel, mask, ln, rn, |i| {
            Some(a[i].as_str().cmp(b[i].as_str()))
        }),
        (C::Str(a, _), C::Dict { codes, dict, .. }) => cmp_cols_loop(sel, mask, ln, rn, |i| {
            Some(a[i].as_str().cmp(dict[codes[i] as usize].as_str()))
        }),
        (C::Dict { codes, dict, .. }, C::Str(b, _)) => cmp_cols_loop(sel, mask, ln, rn, |i| {
            Some(dict[codes[i] as usize].as_str().cmp(b[i].as_str()))
        }),
        (
            C::Dict {
                codes: ca,
                dict: da,
                ..
            },
            C::Dict {
                codes: cb,
                dict: db,
                ..
            },
        ) => cmp_cols_loop(sel, mask, ln, rn, |i| {
            Some(da[ca[i] as usize].as_str().cmp(db[cb[i] as usize].as_str()))
        }),
        _ => return None,
    })
}

/// Row-at-a-time fallback, selection-driven. Single-dictionary-column
/// expressions evaluate once per distinct entry when the selection is
/// larger than the dictionary (the `eval_dict_unary` trade-off).
fn select_row(
    expr: &ScalarExpr,
    cols: &[usize],
    batch: &VectorBatch,
    sel: SelRef<'_>,
) -> Result<Vec<u32>> {
    if let [c] = cols {
        if let ColumnVector::Dict { codes, dict, nulls } = batch.column(*c) {
            if sel.len() > dict.len() {
                let mut vals = vec![Value::Null; batch.num_columns()];
                let null_pass = eval_scalar(expr, &vals)? == Value::Boolean(true);
                let mut verdicts = Vec::with_capacity(dict.len());
                for s in dict.iter() {
                    vals[*c] = Value::String(s.clone());
                    verdicts.push(eval_scalar(expr, &vals)? == Value::Boolean(true));
                }
                let nf = null_free(nulls);
                return Ok(filter_sel(sel, |r| {
                    if !nf && nulls.as_ref().expect("nullable").get(r) {
                        null_pass
                    } else {
                        verdicts[codes[r] as usize]
                    }
                }));
            }
        }
    }
    // One row buffer reused across the loop; only referenced columns
    // are materialized per row.
    let mut vals = vec![Value::Null; batch.num_columns()];
    let mut out = Vec::new();
    let mut eval_one = |r: u32| -> Result<()> {
        for &c in cols {
            vals[c] = batch.column(c).get(r as usize);
        }
        if eval_scalar(expr, &vals)? == Value::Boolean(true) {
            out.push(r);
        }
        Ok(())
    };
    match sel {
        SelRef::All(n) => {
            for r in 0..n as u32 {
                eval_one(r)?;
            }
        }
        SelRef::Idx(v) => {
            for &r in v {
                eval_one(r)?;
            }
        }
    }
    Ok(out)
}
