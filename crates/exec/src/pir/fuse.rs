//! Operator fusion: execute a `Filter`/`Project` chain as one compiled
//! pipeline over a single selection vector.
//!
//! The interpreter materializes between stages: `Filter` compacts its
//! child before evaluating (a full gather of every column), `Project`
//! compacts again before `eval_vector`. Fusion peels the maximal chain
//! of `Filter`/`Project` nodes off the plan, executes the shared
//! source once, and then runs each stage **against the same base
//! batch**, only narrowing the selection (filters) or evaluating at
//! selected rows (projections). No intermediate `Arc<ColumnVector>`
//! materialization happens between fused stages; the one gather left
//! is the projection's own output.
//!
//! ## What fusion must preserve
//!
//! - **Results**: each stage's pass-set/outputs are exactly the
//!   interpreter's (see [`super::kernel`]'s pass-set contract; fused
//!   projections evaluate through the same `eval_vector` kernels the
//!   interpreter uses, over a gather of only the *referenced*
//!   columns).
//! - **Traces**: one `NodeTrace` per peeled stage, same labels and row
//!   counts, so runtime re-optimization feedback and the simulated
//!   clock see an identical tree.
//! - **Fault schedule**: `apply_fragment_faults` rolls per executed
//!   plan vertex, keyed by label, bottom-up. Fused stages roll in
//!   interpreter order — every stage here except the topmost (whose
//!   roll happens in the `execute_sel` wrapper, as for any node).
//! - **Pipeline breakers**: fusion stops at any non-Filter/Project
//!   node and at shared subtrees (their results materialize once via
//!   `compact()` and are reused by fingerprint — fusing across that
//!   boundary would re-execute the shared work).

use super::kernel::SelRef;
use super::lower::{PredPipeline, ProjPlan};
use crate::engine::{align_column, execute_sel, type_aligned, ExecContext, NodeTrace};
use crate::kernels::eval_vector;
use hive_common::{
    ColumnBuilder, ColumnVector, DataType, Result, Schema, SelBatch, SelVec, Value, VectorBatch,
};
use hive_optimizer::plan::LogicalPlan;
use hive_optimizer::ScalarExpr;
use std::collections::HashMap;
use std::sync::Arc;

enum Stage<'a> {
    Filter(&'a ScalarExpr),
    Project {
        exprs: &'a [ScalarExpr],
        schema: Schema,
    },
}

/// Execute a plan rooted at a `Filter` or `Project` by fusing the
/// maximal chain below it. Called from `execute_sel_inner`, so the
/// shared-work wrapper and the topmost fault roll sit above us.
pub(crate) fn execute_chain(
    plan: &LogicalPlan,
    ctx: &ExecContext,
) -> Result<(SelBatch, NodeTrace)> {
    // Peel top-down.
    let mut stages: Vec<Stage<'_>> = Vec::new();
    let mut cur = plan;
    loop {
        match cur {
            LogicalPlan::Filter { input, predicate } => {
                stages.push(Stage::Filter(predicate));
                cur = input;
            }
            LogicalPlan::Project { input, exprs, .. } => {
                stages.push(Stage::Project {
                    exprs,
                    schema: cur.schema(),
                });
                cur = input;
            }
            _ => break,
        }
        // A shared subtree is a fusion boundary: its result must
        // materialize once (and be found again by fingerprint).
        if ctx.is_shared_subtree(cur) {
            break;
        }
    }
    let (mut sb, mut trace) = execute_sel(cur, ctx)?;
    for (i, stage) in stages.iter().enumerate().rev() {
        let (nsb, mut st) = match stage {
            Stage::Filter(pred) => run_filter(pred, sb)?,
            Stage::Project { exprs, schema } => run_project(exprs, schema, sb)?,
        };
        st.children = vec![trace];
        if i > 0 {
            // Interior stage: roll its fault schedule here, exactly
            // where the interpreter's per-node `execute_sel` would.
            // The topmost stage's roll happens in our caller.
            crate::recovery::apply_fragment_faults(ctx, &mut st)?;
        }
        trace = st;
        sb = nsb;
    }
    Ok((sb, trace))
}

fn run_filter(pred: &ScalarExpr, sb: SelBatch) -> Result<(SelBatch, NodeTrace)> {
    let rows_in = sb.num_rows() as u64;
    // Engine-level filters order conjuncts by cost tier and default
    // selectivity estimates; scans (which hold table stats) compile
    // their own pipelines in `execute_scan`.
    let pipe = PredPipeline::compile(pred, sb.batch.schema(), None, false);
    let fully = pipe.fully_compiled();
    let kept = pipe.select(&sb.batch, SelRef::of(&sb.sel))?;
    let SelBatch { batch, sel } = sb;
    let sel = match kept {
        // Every selected row passed: the selection is already right.
        None => sel,
        // Kernels return underlying row ids, so this *is* the new
        // selection — no compose step.
        Some(rows) => SelVec::Idx(rows),
    };
    let mut t = NodeTrace::leaf("Filter");
    t.rows_in = rows_in;
    t.rows_out = sel.len() as u64;
    t.pir_compiled_stages = fully as u64;
    if !fully {
        t.pir_fallback_rows = rows_in;
    }
    Ok((SelBatch::new(batch, sel)?, t))
}

fn run_project(
    exprs: &[ScalarExpr],
    out_schema: &Schema,
    sb: SelBatch,
) -> Result<(SelBatch, NodeTrace)> {
    let rows_in = sb.num_rows() as u64;
    // All-trivial projection: re-share column handles, selection passes
    // through untouched (the interpreter's zero-copy fast path).
    let trivial = exprs.iter().enumerate().all(|(i, e)| {
        matches!(e, ScalarExpr::Column(c)
            if type_aligned(&sb.batch.column(*c).data_type(), &out_schema.field(i).data_type))
    });
    if trivial {
        let cols = exprs
            .iter()
            .map(|e| match e {
                ScalarExpr::Column(c) => sb.batch.column_arc(*c).clone(),
                _ => unreachable!("trivial projection is all column refs"),
            })
            .collect();
        let out = VectorBatch::from_arcs(out_schema.clone(), cols, sb.batch.num_rows())?;
        let mut t = NodeTrace::leaf("Project");
        t.rows_in = rows_in;
        t.rows_out = rows_in;
        t.pir_compiled_stages = 1;
        return Ok((SelBatch::new(out, sb.sel)?, t));
    }
    let plan = ProjPlan::compile(exprs, sb.batch.schema())?;
    let n = sb.num_rows();
    // The evaluation base: at an identity selection the child's columns
    // are shared as-is; otherwise gather *only referenced* columns
    // (the interpreter's compact() gathers every column) and pad the
    // rest with typed all-NULL columns so positional references line
    // up. Expressions never read the padding.
    let base = if sb.sel.is_all() {
        sb.batch.clone()
    } else {
        let idx = sb.sel.to_indices();
        let referenced: Vec<bool> = {
            let mut v = vec![false; sb.batch.num_columns()];
            for &c in &plan.referenced {
                v[c] = true;
            }
            v
        };
        let mut pads: HashMap<DataType, Arc<ColumnVector>> = HashMap::new();
        let mut cols: Vec<Arc<ColumnVector>> = Vec::with_capacity(sb.batch.num_columns());
        for (c, field) in sb.batch.schema().fields().iter().enumerate() {
            if referenced[c] {
                cols.push(Arc::new(sb.batch.column(c).take(&idx)));
            } else {
                let pad = match pads.get(&field.data_type) {
                    Some(p) => p.clone(),
                    None => {
                        let p = Arc::new(null_column(&field.data_type, n)?);
                        pads.insert(field.data_type.clone(), p.clone());
                        p
                    }
                };
                cols.push(pad);
            }
        }
        VectorBatch::from_arcs(sb.batch.schema().clone(), cols, n)?
    };
    // Hoisted common subexpressions evaluate once into temp columns
    // (they reference base columns only), then the distinct outputs
    // evaluate over the extended batch through the same `eval_vector`
    // kernels the interpreter uses.
    let mut cols: Vec<Arc<ColumnVector>> = (0..base.num_columns())
        .map(|c| base.column_arc(c).clone())
        .collect();
    for t in &plan.temps {
        cols.push(eval_vector(t, &base)?);
    }
    let ext = VectorBatch::from_arcs(plan.eval_schema.clone(), cols, n)?;
    let mut unique_cols = Vec::with_capacity(plan.unique.len());
    for e in &plan.unique {
        unique_cols.push(eval_vector(e, &ext)?);
    }
    let mut out_cols = Vec::with_capacity(exprs.len());
    for (i, slot) in plan.slots.iter().enumerate() {
        out_cols.push(align_column(
            unique_cols[*slot].clone(),
            &out_schema.field(i).data_type,
        )?);
    }
    let out = VectorBatch::from_arcs(out_schema.clone(), out_cols, n)?;
    let mut t = NodeTrace::leaf("Project");
    t.rows_in = rows_in;
    t.rows_out = out.num_rows() as u64;
    t.pir_compiled_stages = 1;
    Ok((SelBatch::from_batch(out), t))
}

/// A typed all-NULL column of length `n` (padding for unreferenced
/// positions in a gathered projection base, and for unreferenced
/// columns of a join-residual pair batch).
pub(crate) fn null_column(dt: &DataType, n: usize) -> Result<ColumnVector> {
    let mut b = ColumnBuilder::new(dt)?;
    for _ in 0..n {
        b.push(&Value::Null)?;
    }
    Ok(b.finish())
}
