//! Physical IR: compiled, fused, type-specialized execution pipelines.
//!
//! `hive.exec.pir.enabled` (env `HIVE_PIR_ENABLED`, default on) lowers
//! optimizer `Filter`/`Project` chains — and the residual predicates of
//! scans — into pipelines that are compiled **once per query**:
//!
//! - [`lower`] folds constants, eliminates common subexpressions, and
//!   orders predicate conjuncts by cost tier and estimated selectivity;
//! - [`kernel`] resolves each comparison to a type-specialized kernel
//!   over its [`hive_common::KernelType`] domain (dictionary columns
//!   evaluate per distinct entry, null-free columns skip the bitmap
//!   branch);
//! - [`fuse`] executes the chain over one shared base batch and a
//!   narrowing selection vector, with no intermediate materialization
//!   between stages.
//!
//! The per-batch interpreter ([`crate::kernels`]) stays as the
//! differential oracle: with the toggle off, every operator takes the
//! pre-PIR path, and `tests/pir_differential.rs` pins the two to
//! identical results, traces, and fault schedules.

pub(crate) mod agg;
pub(crate) mod fuse;
pub(crate) mod kernel;
pub(crate) mod lower;

pub(crate) use fuse::execute_chain;
pub(crate) use kernel::SelRef;
pub(crate) use lower::PredPipeline;

/// Per-operator accounting of where the compiled paths actually ran —
/// surfaced on `NodeTrace`/`QueryResult` so differential sweeps can
/// assert the toggle exercised compiled code instead of silently
/// falling back to the interpreter.
#[derive(Debug, Default, Clone, Copy)]
pub struct PirCounters {
    /// Stages (filter/project pipelines, aggregate accumulator banks,
    /// join residual conjunctions) that executed fully compiled.
    pub compiled_stages: u64,
    /// Rows (or candidate pairs, for residuals) that went through the
    /// interpreter instead — non-compilable expression shapes, spilled
    /// aggregates, grace joins.
    pub fallback_rows: u64,
}

/// PIR applies only to the vectorized engine — row-mode execution
/// (`hive.vectorized.execution.enabled=false`) keeps its interpreter.
pub(crate) fn enabled(conf: &hive_common::HiveConf) -> bool {
    conf.effective_pir_enabled() && conf.vectorized
}
