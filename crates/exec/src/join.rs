//! Hash joins: inner/left/right/full/semi/anti (+cross), with residual
//! predicates, NULL-safe key semantics, and the memory-budget check that
//! feeds query re-optimization (§4.2).
//!
//! Both join phases are morsel-parallel with byte-identical output at
//! any worker count: the build side is hash-partitioned (each partition
//! inserts its rows in ascending order, so per-bucket candidate lists
//! match the serial build exactly), and the probe side splits into
//! contiguous row ranges whose outputs concatenate in range order —
//! the serial probe order.

use crate::kernels::eval_vector;
use crate::pir::{PredPipeline, SelRef};
use crate::rawtable::{self, RawTable};
use crate::spill::{partition_of, plan_partition, push_rec, RecIter, SpillCtx};
use hive_common::hash::{self, FNV_OFFSET};
use hive_common::{
    BitSet, ColumnBuilder, ColumnVector, HiveError, Result, Schema, SelBatch, SelVec, Value,
    VectorBatch,
};
use hive_optimizer::eval::eval_scalar;
use hive_optimizer::plan::JoinType;
use hive_optimizer::ScalarExpr;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Execute a join over compact batches (serial path; identical results
/// to [`execute_join_par`] at any worker count).
pub fn execute_join(
    left: &VectorBatch,
    right: &VectorBatch,
    join_type: JoinType,
    equi: &[(ScalarExpr, ScalarExpr)],
    residual: &Option<ScalarExpr>,
    out_schema: &Schema,
    build_row_budget: usize,
) -> Result<VectorBatch> {
    execute_join_par(
        &SelBatch::from_batch(left.clone()),
        &SelBatch::from_batch(right.clone()),
        join_type,
        equi,
        residual,
        out_schema,
        build_row_budget,
        1,
        true,
        None,
        None,
    )
}

/// One component of a join key as stored in the hash table.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum JPart {
    /// Dictionary code in the *right* (build) side's code space.
    Code(u32),
    /// Non-dictionary value (also the mixed dict/plain fallback).
    Val(Value),
    /// Probe-only: a left dictionary entry absent from the right
    /// dictionary. Build keys never contain `Miss`, so the lookup
    /// fails — exactly the no-match outcome the value compare gives.
    Miss,
}

/// Per-key-column codec: when both sides are dictionary-encoded, keys
/// are right-side `u32` codes (left codes translate once per distinct
/// left entry through `probe_map`), so build and probe hash and compare
/// integers instead of cloning strings.
enum JoinCodec<'a> {
    Codes {
        lcodes: &'a [u32],
        lnulls: Option<&'a BitSet>,
        rcodes: &'a [u32],
        rnulls: Option<&'a BitSet>,
        /// Canonical right code per right code (collapses duplicate
        /// dictionary entries so equal strings share a key).
        rcanon: Vec<u32>,
        /// Right canonical code per left code, `None` when the left
        /// entry does not appear in the right dictionary.
        probe_map: Vec<Option<u32>>,
    },
    Vals {
        l: &'a ColumnVector,
        r: &'a ColumnVector,
    },
}

impl<'a> JoinCodec<'a> {
    fn new(l: &'a ColumnVector, r: &'a ColumnVector) -> JoinCodec<'a> {
        if let (Some((lc, ld, ln)), Some((rc, rd, rn))) = (l.dict_parts(), r.dict_parts()) {
            let mut rindex: HashMap<&str, u32> = HashMap::with_capacity(rd.len());
            let rcanon: Vec<u32> = rd
                .iter()
                .enumerate()
                .map(|(ci, s)| *rindex.entry(s.as_str()).or_insert(ci as u32))
                .collect();
            let probe_map = ld.iter().map(|s| rindex.get(s.as_str()).copied()).collect();
            return JoinCodec::Codes {
                lcodes: lc,
                lnulls: ln,
                rcodes: rc,
                rnulls: rn,
                rcanon,
                probe_map,
            };
        }
        JoinCodec::Vals { l, r }
    }

    /// Build-side key part for right row `i`; `None` = NULL key.
    #[inline]
    fn build_part(&self, i: usize) -> Option<JPart> {
        match self {
            JoinCodec::Codes {
                rcodes,
                rnulls,
                rcanon,
                ..
            } => {
                if rnulls.is_some_and(|n| n.get(i)) {
                    None
                } else {
                    Some(JPart::Code(rcanon[rcodes[i] as usize]))
                }
            }
            JoinCodec::Vals { r, .. } => {
                let v = r.get(i);
                if v.is_null() {
                    None
                } else {
                    Some(JPart::Val(v))
                }
            }
        }
    }

    /// Probe-side key part for left row `i`; `None` = NULL key.
    #[inline]
    fn probe_part(&self, i: usize) -> Option<JPart> {
        match self {
            JoinCodec::Codes {
                lcodes,
                lnulls,
                probe_map,
                ..
            } => {
                if lnulls.is_some_and(|n| n.get(i)) {
                    None
                } else {
                    Some(match probe_map[lcodes[i] as usize] {
                        Some(c) => JPart::Code(c),
                        None => JPart::Miss,
                    })
                }
            }
            JoinCodec::Vals { l, .. } => {
                let v = l.get(i);
                if v.is_null() {
                    None
                } else {
                    Some(JPart::Val(v))
                }
            }
        }
    }

    /// Append build row `i`'s canonical key-part encoding (the flat
    /// table's arena bytes, see [`hive_common::hash`]); `false` = NULL
    /// key value, nothing appended.
    #[inline]
    fn encode_build_part(&self, i: usize, out: &mut Vec<u8>) -> bool {
        match self {
            JoinCodec::Codes {
                rcodes,
                rnulls,
                rcanon,
                ..
            } => {
                if rnulls.is_some_and(|n| n.get(i)) {
                    false
                } else {
                    hash::encode_code(rcanon[rcodes[i] as usize], out);
                    true
                }
            }
            JoinCodec::Vals { r, .. } => rawtable::try_encode_cell(r, i, out),
        }
    }

    /// Append probe row `i`'s canonical key-part encoding; `false` =
    /// NULL. A left dictionary entry absent from the right dictionary
    /// encodes as `TAG_MISS`, which no build key contains — the lookup
    /// fails, exactly as [`JPart::Miss`] does on the `HashMap` arm.
    #[inline]
    fn encode_probe_part(&self, i: usize, out: &mut Vec<u8>) -> bool {
        match self {
            JoinCodec::Codes {
                lcodes,
                lnulls,
                probe_map,
                ..
            } => {
                if lnulls.is_some_and(|n| n.get(i)) {
                    false
                } else {
                    match probe_map[lcodes[i] as usize] {
                        Some(c) => hash::encode_code(c, out),
                        None => hash::encode_miss(out),
                    }
                    true
                }
            }
            JoinCodec::Vals { l, .. } => rawtable::try_encode_cell(l, i, out),
        }
    }

    /// Fold row `i`'s key-part encoding into an in-progress FNV-1a
    /// state (the column-wise hash combine step); `None` = NULL key
    /// value. `scratch` is cleared and reused across calls.
    #[inline]
    fn fold_part(&self, i: usize, build: bool, h: u64, scratch: &mut Vec<u8>) -> Option<u64> {
        scratch.clear();
        let ok = if build {
            self.encode_build_part(i, scratch)
        } else {
            self.encode_probe_part(i, scratch)
        };
        if ok {
            Some(hash::fnv1a_extend(h, scratch))
        } else {
            None
        }
    }
}

/// Stable FNV-1a hashes of rows `lo..hi`'s join keys, computed
/// column-wise — one pass per key column folding that column's
/// canonical encoding into every row's running state. `None` when any
/// key value is NULL (NULL keys never match, and never enter the
/// build). With no key columns (cross-style joins) every row shares the
/// hash of the empty key.
///
/// The same hash routes rows to build partitions on both toggle arms
/// (replacing the old per-row `DefaultHasher`) and probes the flat
/// table on the rawtable arm — by construction it equals `fnv1a` of the
/// concatenated key-part encodings, i.e. of the arena key bytes.
/// (Routing is result-invisible: output order comes from probe range
/// order, so hashing codes instead of strings cannot change results.)
fn hash_rows(codecs: &[JoinCodec<'_>], lo: usize, hi: usize, build: bool) -> Vec<Option<u64>> {
    let mut hs = vec![Some(FNV_OFFSET); hi - lo];
    let mut scratch: Vec<u8> = Vec::new();
    for c in codecs {
        for (slot, h) in hs.iter_mut().enumerate() {
            if let Some(cur) = *h {
                *h = c.fold_part(lo + slot, build, cur, &mut scratch);
            }
        }
    }
    hs
}

/// One partition of the flat-table join build. Each entry's candidate
/// list is a singly linked chain through `next` in insertion
/// (ascending right position) order — byte-compatible with the
/// serial `HashMap` build's `Vec<u32>` push order.
#[derive(Default)]
struct RawBuild {
    table: RawTable,
    /// Per table entry: first/last chain link (indexes into `rows`).
    head: Vec<u32>,
    tail: Vec<u32>,
    /// Per inserted build row: right-side position, and the next link
    /// in its entry's chain (`u32::MAX` terminates).
    rows: Vec<u32>,
    next: Vec<u32>,
}

/// The build side under either toggle arm.
enum BuildSide {
    Map(Vec<HashMap<Vec<JPart>, Vec<u32>>>),
    Raw(Vec<RawBuild>),
}

/// Execute a join with hash-partitioned parallel build and ranged
/// parallel probe across up to `workers` threads. `equi` pairs are
/// (left expr, right expr); `residual` is evaluated over the
/// concatenated (left ++ right) row.
///
/// Inputs arrive as `(batch, selection)` pairs; the join works in
/// *position* space (0..selected rows) — key columns are gathered
/// compact, while residual evaluation and output assembly map positions
/// back through the selections, so unselected rows are never touched.
///
/// The build side is the right input; exceeding `build_row_budget`
/// raises a retryable error so the driver can re-optimize with runtime
/// statistics.
///
/// `rawtable` selects the flat-table build (`hive.exec.rawtable.enabled`);
/// both arms are byte-identical — the `HashMap` arm stays as the
/// differential oracle.
///
/// `pir` is `Some` when the physical IR is enabled: residual predicates
/// then lower to compiled kernels and evaluate vectorized over gathered
/// candidate pair-batches ([`ResidualPlan`]), with the row closure kept
/// as the fallback for non-compilable expressions and the grace path.
#[allow(clippy::too_many_arguments)]
pub fn execute_join_par(
    left_in: &SelBatch,
    right_in: &SelBatch,
    join_type: JoinType,
    equi: &[(ScalarExpr, ScalarExpr)],
    residual: &Option<ScalarExpr>,
    out_schema: &Schema,
    build_row_budget: usize,
    workers: usize,
    rawtable: bool,
    spill: Option<&SpillCtx<'_>>,
    pir: Option<&mut crate::pir::PirCounters>,
) -> Result<VectorBatch> {
    // Memory admission. With a broker present the build's modeled bytes
    // must win a grant (held for the whole join); a denial — or the
    // legacy row budget, kept as a planner-misprediction signal —
    // degrades to the grace hash join when spill is enabled, and
    // otherwise downgrades the typed memory error to `Retryable` so the
    // §4.2 re-optimization ladder still applies.
    let over_rows = right_in.num_rows() > build_row_budget;
    let mut grace = false;
    let _grant = match spill {
        Some(sp) => {
            let est = crate::spill::estimate_table_bytes(right_in.num_rows(), equi.len().max(1));
            let g = sp.broker.try_reserve("hash-join-build", est);
            if g.is_none() || over_rows {
                if !sp.enabled {
                    let err = HiveError::MemoryExceeded {
                        operator: "hash-join-build".into(),
                        requested: est,
                        granted: sp.broker.available(),
                    };
                    return Err(HiveError::Retryable(err.to_string()));
                }
                grace = true;
                None // grace partitions charge their own working sets
            } else {
                g
            }
        }
        None => {
            if over_rows {
                let err = HiveError::MemoryExceeded {
                    operator: "hash-join-build".into(),
                    requested: right_in.num_rows() as u64,
                    granted: build_row_budget as u64,
                };
                return Err(HiveError::Retryable(err.to_string()));
            }
            None
        }
    };

    // Computed key expressions evaluate over whole batches, so a side
    // with a stacked selection and non-trivial keys compacts up front;
    // bare column keys gather through the selection instead (one column
    // copy, not one per surviving column).
    let normalize = |sb: &SelBatch, trivial: bool| -> SelBatch {
        if sb.sel.is_all() || trivial {
            sb.clone()
        } else {
            SelBatch::from_batch(sb.clone().compact())
        }
    };
    let left = normalize(
        left_in,
        equi.iter().all(|(l, _)| matches!(l, ScalarExpr::Column(_))),
    );
    let right = normalize(
        right_in,
        equi.iter().all(|(_, r)| matches!(r, ScalarExpr::Column(_))),
    );

    // Evaluate key columns, compact (length = selected row count).
    let sel_key = |sb: &SelBatch, e: &ScalarExpr| -> Result<Arc<ColumnVector>> {
        match &sb.sel {
            SelVec::All(_) => eval_vector(e, &sb.batch),
            SelVec::Idx(idx) => match e {
                ScalarExpr::Column(c) => Ok(Arc::new(sb.batch.column(*c).take(idx))),
                // invariant: `normalize` compacted this side otherwise.
                _ => unreachable!("non-trivial join key over a selection"),
            },
        }
    };
    let lkeys = equi
        .iter()
        .map(|(l, _)| sel_key(&left, l))
        .collect::<Result<Vec<_>>>()?;
    let rkeys = equi
        .iter()
        .map(|(_, r)| sel_key(&right, r))
        .collect::<Result<Vec<_>>>()?;

    // Per-key-column codecs: dict×dict columns join on u32 codes, all
    // others on scalar values (see [`JoinCodec`]).
    let codecs: Vec<JoinCodec<'_>> = lkeys
        .iter()
        .zip(&rkeys)
        .map(|(l, r)| JoinCodec::new(l.as_ref(), r.as_ref()))
        .collect();

    // Candidate pairs that went through the row interpreter (counted
    // only when a residual exists — the closure is also the no-residual
    // "always true" answer, which is not a fallback).
    let resid_pairs = AtomicU64::new(0);
    let residual_ok = |li: u32, ri: u32| -> Result<bool> {
        match residual {
            None => Ok(true),
            Some(pred) => {
                resid_pairs.fetch_add(1, Ordering::Relaxed);
                let mut vals = left.batch.row(left.sel.index(li as usize)).into_values();
                vals.extend(right.batch.row(right.sel.index(ri as usize)).into_values());
                Ok(eval_scalar(pred, &vals)? == Value::Boolean(true))
            }
        }
    };

    if grace {
        let sp = spill.expect("grace join requires a spill context");
        let result = grace_join(
            &left,
            &right,
            join_type,
            &codecs,
            &residual_ok,
            out_schema,
            sp,
            rawtable,
        )?;
        // Grace joins always interpret their residual (partitions probe
        // row-at-a-time off spill records) — pure fallback, no compiled
        // stage.
        if let Some(pc) = pir {
            pc.fallback_rows += resid_pairs.load(Ordering::Relaxed);
        }
        return Ok(result);
    }

    // Compiled residual: lower the predicate against the concatenated
    // (left ++ right) schema once; probe ranges then gather candidate
    // (probe, build) pairs into pair-batches and run the compiled
    // conjunction vectorized. `None` (non-compilable shape, or PIR off)
    // keeps the row closure above.
    let resid_plan = match (residual, pir.is_some()) {
        (Some(pred), true) => ResidualPlan::compile(pred, &left, &right),
        _ => None,
    };

    // --- build ------------------------------------------------------------
    // Hash-partitioned build over the right side: a key's rows all land
    // in one partition (keyed by the stable hash), and each partition
    // inserts its rows in ascending order, so every bucket's candidate
    // list is exactly what the serial single-map build produces.
    let nparts = if workers <= 1 { 1 } else { workers };
    // Build-side key hashes: route rows to partitions (parallel build)
    // and double as the flat-table probe hash (rawtable arm at any
    // worker count). The serial HashMap build needs neither.
    let rhashes: Vec<Option<u64>> = if nparts == 1 && !rawtable {
        Vec::new()
    } else {
        let n = right.num_rows();
        let chunk = n.div_ceil(nparts).max(1);
        crate::par::parallel_map(workers, n.div_ceil(chunk), |c| {
            let lo = c * chunk;
            let hi = ((c + 1) * chunk).min(n);
            Ok(hash_rows(&codecs, lo, hi, true))
        })?
        .concat()
    };
    let build_side: BuildSide = if rawtable {
        let parts = crate::par::parallel_map(workers, nparts, |p| {
            let mut b = RawBuild::default();
            let mut scratch: Vec<u8> = Vec::new();
            for (i, rh) in rhashes.iter().enumerate() {
                let h = match *rh {
                    Some(h) if nparts == 1 || h as usize % nparts == p => h,
                    _ => continue, // NULL key or other partition
                };
                scratch.clear();
                for c in &codecs {
                    // invariant: the hash existed, so no part is NULL.
                    c.encode_build_part(i, &mut scratch);
                }
                let (e, inserted) = b.table.insert(h, &scratch);
                let link = b.rows.len() as u32;
                b.rows.push(i as u32);
                b.next.push(u32::MAX);
                if inserted {
                    b.head.push(link);
                    b.tail.push(link);
                } else {
                    b.next[b.tail[e as usize] as usize] = link;
                    b.tail[e as usize] = link;
                }
            }
            Ok(b)
        })?;
        BuildSide::Raw(parts)
    } else {
        let tables = crate::par::parallel_map(workers, nparts, |p| {
            let mut table: HashMap<Vec<JPart>, Vec<u32>> = HashMap::new();
            #[allow(clippy::needless_range_loop)] // `i` is a row id, not just an index
            'rows: for i in 0..right.num_rows() {
                if nparts > 1 {
                    match rhashes[i] {
                        Some(h) if h as usize % nparts == p => {}
                        _ => continue 'rows,
                    }
                }
                let mut key = Vec::with_capacity(equi.len());
                for c in &codecs {
                    match c.build_part(i) {
                        Some(p) => key.push(p),
                        None => continue 'rows,
                    }
                }
                table.entry(key).or_default().push(i as u32);
            }
            Ok(table)
        })?;
        BuildSide::Map(tables)
    };

    // --- probe ------------------------------------------------------------
    // Contiguous left-row ranges probed in parallel; range outputs
    // concatenate in range order, reproducing the serial probe order.
    // Each range hashes its probe keys column-wise up front, then walks
    // rows with reused key buffers — no per-row allocation on either
    // arm (the `Vec<JPart>` and candidate-list clones are gone).
    let probe_range = |lo: u32, hi: u32| -> Result<ProbeOut> {
        let mut out = ProbeOut::default();
        let phashes = hash_rows(&codecs, lo as usize, hi as usize, false);
        let mut kept: Vec<u32> = Vec::new();
        let mut cands: Vec<u32> = Vec::new();
        let mut key_parts: Vec<JPart> = Vec::with_capacity(codecs.len());
        let mut scratch: Vec<u8> = Vec::new();
        // Compiled-residual buffers: candidate pairs accumulate across
        // probe rows (`pr` = build positions, `spans` = per-probe-row
        // slices of it) and flush through the kernels in batches.
        let mut pr: Vec<u32> = Vec::new();
        let mut spans: Vec<(u32, u32, u32)> = Vec::new();
        for li in lo..hi {
            cands.clear();
            // NULL probe keys (hash `None`) never match.
            if let Some(h) = phashes[(li - lo) as usize] {
                let part = h as usize % nparts;
                match &build_side {
                    BuildSide::Map(tables) => {
                        key_parts.clear();
                        for c in &codecs {
                            match c.probe_part(li as usize) {
                                Some(p) => key_parts.push(p),
                                // invariant: the hash existed, so no
                                // part is NULL.
                                None => unreachable!("NULL key part under a non-NULL key hash"),
                            }
                        }
                        if let Some(cs) = tables[part].get(key_parts.as_slice()) {
                            cands.extend_from_slice(cs);
                        }
                    }
                    BuildSide::Raw(builds) => {
                        scratch.clear();
                        for c in &codecs {
                            c.encode_probe_part(li as usize, &mut scratch);
                        }
                        let b = &builds[part];
                        if let Some(e) = b.table.find(h, &scratch) {
                            let mut link = b.head[e as usize];
                            while link != u32::MAX {
                                cands.push(b.rows[link as usize]);
                                link = b.next[link as usize];
                            }
                        }
                    }
                }
            }
            match &resid_plan {
                Some(plan) => {
                    let start = pr.len() as u32;
                    pr.extend_from_slice(&cands);
                    spans.push((li, start, pr.len() as u32));
                    if pr.len() >= RESID_FLUSH {
                        flush_pairs(
                            plan, &left, &right, join_type, &pr, &spans, &mut kept, &mut out,
                        )?;
                        pr.clear();
                        spans.clear();
                    }
                }
                None => {
                    kept.clear();
                    for &ri in &cands {
                        if residual_ok(li, ri)? {
                            kept.push(ri);
                        }
                    }
                    emit_probe(join_type, li, &kept, &mut out);
                }
            }
        }
        if !spans.is_empty() {
            let plan = resid_plan
                .as_ref()
                .expect("spans imply a compiled residual");
            flush_pairs(
                plan, &left, &right, join_type, &pr, &spans, &mut kept, &mut out,
            )?;
        }
        Ok(out)
    };

    let n = left.num_rows() as u32;
    let ranges: Vec<ProbeOut> = if workers <= 1 {
        vec![probe_range(0, n)?]
    } else {
        let chunk = (n.div_ceil(workers as u32)).max(crate::par::ROWS_PER_MORSEL as u32 / 4);
        let nranges = n.div_ceil(chunk) as usize;
        crate::par::parallel_map(workers, nranges, |r| {
            let lo = r as u32 * chunk;
            probe_range(lo, (lo + chunk).min(n))
        })?
    };

    // Deterministic merge: concatenate range outputs in range order and
    // OR the matched-right sets (order-insensitive booleans).
    let mut out_left: Vec<u32> = Vec::new();
    let mut out_right: Vec<Option<u32>> = Vec::new();
    let mut right_matched = vec![false; right.num_rows()];
    for r in ranges {
        out_left.extend(r.left);
        out_right.extend(r.right);
        for ri in r.matched_right {
            right_matched[ri as usize] = true;
        }
    }

    // Unmatched build rows for right/full joins.
    let mut extra_right: Vec<u32> = Vec::new();
    if matches!(join_type, JoinType::Right | JoinType::Full) {
        for (ri, m) in right_matched.iter().enumerate() {
            if !m {
                extra_right.push(ri as u32);
            }
        }
    }

    let result = assemble(
        &left,
        &right,
        join_type,
        &out_left,
        &out_right,
        &extra_right,
        out_schema,
    )?;
    if let Some(pc) = pir {
        if residual.is_some() {
            if resid_plan.is_some() {
                pc.compiled_stages += 1;
            }
            pc.fallback_rows += resid_pairs.load(Ordering::Relaxed);
        }
    }
    Ok(result)
}

/// One probe range's output rows and the build rows it matched.
#[derive(Default)]
struct ProbeOut {
    left: Vec<u32>,
    right: Vec<Option<u32>>,
    matched_right: Vec<u32>,
}

/// Emit probe row `li`'s output for its residual-surviving candidate
/// list `kept` — the single source of truth for per-join-type emission
/// semantics, shared by the in-memory probe and the grace join's
/// partition probes (which is what makes them byte-identical).
fn emit_probe(join_type: JoinType, li: u32, kept: &[u32], out: &mut ProbeOut) {
    match join_type {
        JoinType::Inner | JoinType::Cross => {
            for &ri in kept {
                out.left.push(li);
                out.right.push(Some(ri));
            }
        }
        JoinType::Left => {
            if kept.is_empty() {
                out.left.push(li);
                out.right.push(None);
            } else {
                for &ri in kept {
                    out.left.push(li);
                    out.right.push(Some(ri));
                }
            }
        }
        JoinType::Right | JoinType::Full => {
            for &ri in kept {
                out.matched_right.push(ri);
                out.left.push(li);
                out.right.push(Some(ri));
            }
            if join_type == JoinType::Full && kept.is_empty() {
                out.left.push(li);
                out.right.push(None);
            }
        }
        JoinType::Semi => {
            if !kept.is_empty() {
                out.left.push(li);
                out.right.push(None);
            }
        }
        JoinType::Anti => {
            if kept.is_empty() {
                out.left.push(li);
                out.right.push(None);
            }
        }
    }
}

/// Flush the compiled-residual pair buffer once it holds this many
/// candidate pairs (plus whatever the current probe row contributed).
/// Sized so gathered pair-batches stay cache-resident without giving up
/// the vectorization win on high-fanout keys.
const RESID_FLUSH: usize = 4096;

/// A join residual lowered to the compiled kernel pipeline, evaluated
/// over gathered candidate pair-batches instead of per-pair row
/// interpretation.
///
/// The plan compiles against the concatenated `left ++ right` schema —
/// the same row layout `residual_ok` feeds `eval_scalar` — and is used
/// only when every conjunct lowered to a kernel
/// ([`PredPipeline::fully_compiled`]); a partial lowering would run
/// non-compiled conjuncts through `select_row` per pair, which is the
/// interpreter with extra gather cost.
///
/// Byte-identity: kernels share `sql_cmp`/`Value` semantics with the
/// interpreter (the pass-set contract in [`crate::pir::kernel`]), and
/// flush boundaries cannot change results because every kernel is
/// elementwise per pair. Error-order latitude: the pipeline evaluates
/// conjunct-by-conjunct over the whole pair batch where the interpreter
/// walks pair-by-pair, so *which* error surfaces from a failing batch
/// may differ — both paths still fail the query (see DESIGN.md §4).
struct ResidualPlan {
    pipe: PredPipeline,
    /// `left.schema().join(right.schema())`.
    schema: Schema,
    /// Which pair-batch columns the predicate actually reads; the rest
    /// are padded with typed all-NULL columns instead of gathered.
    referenced: Vec<bool>,
}

impl ResidualPlan {
    fn compile(pred: &ScalarExpr, left: &SelBatch, right: &SelBatch) -> Option<ResidualPlan> {
        let schema = left.batch.schema().join(right.batch.schema());
        let pipe = PredPipeline::compile(pred, &schema, None, false);
        if !pipe.fully_compiled() {
            return None;
        }
        let mut referenced = vec![false; schema.fields().len()];
        for c in pred.columns() {
            referenced[c] = true;
        }
        Some(ResidualPlan {
            pipe,
            schema,
            referenced,
        })
    }
}

/// Evaluate the compiled residual over the buffered candidate pairs and
/// emit each probe row's surviving matches.
///
/// `pr` holds build-side positions; `spans` slices it per probe row as
/// `(li, start, end)`. The pair-batch gathers referenced columns by
/// *underlying row id* (positions mapped through each side's selection,
/// exactly like `residual_ok`), pads the rest with typed NULL columns,
/// and runs the pipeline once over all pairs. Kernels return pass-set
/// indices in ascending order, so a single forward walk splits them
/// back into per-probe-row `kept` lists for [`emit_probe`].
#[allow(clippy::too_many_arguments)]
fn flush_pairs(
    plan: &ResidualPlan,
    left: &SelBatch,
    right: &SelBatch,
    join_type: JoinType,
    pr: &[u32],
    spans: &[(u32, u32, u32)],
    kept: &mut Vec<u32>,
    out: &mut ProbeOut,
) -> Result<()> {
    let npairs = pr.len();
    let lw = left.batch.num_columns();
    let mut lidx: Vec<u32> = Vec::with_capacity(npairs);
    for &(li, s, e) in spans {
        let row = left.sel.index(li as usize) as u32;
        lidx.extend(std::iter::repeat_n(row, (e - s) as usize));
    }
    let ridx: Vec<u32> = pr
        .iter()
        .map(|&ri| right.sel.index(ri as usize) as u32)
        .collect();
    let mut cols: Vec<Arc<ColumnVector>> = Vec::with_capacity(plan.schema.fields().len());
    for (ci, f) in plan.schema.fields().iter().enumerate() {
        let col = if !plan.referenced[ci] {
            crate::pir::fuse::null_column(&f.data_type, npairs)?
        } else if ci < lw {
            left.batch.column(ci).take(&lidx)
        } else {
            right.batch.column(ci - lw).take(&ridx)
        };
        cols.push(Arc::new(col));
    }
    let batch = VectorBatch::from_arcs(plan.schema.clone(), cols, npairs)?;
    let pass = plan.pipe.select(&batch, SelRef::All(npairs))?;
    match pass {
        // Every pair passed: each span keeps its full candidate list.
        None => {
            for &(li, s, e) in spans {
                emit_probe(join_type, li, &pr[s as usize..e as usize], out);
            }
        }
        Some(p) => {
            let mut pi = 0usize;
            for &(li, s, e) in spans {
                kept.clear();
                while pi < p.len() && p[pi] < e {
                    debug_assert!(p[pi] >= s);
                    kept.push(pr[p[pi] as usize]);
                    pi += 1;
                }
                emit_probe(join_type, li, kept, out);
            }
        }
    }
    Ok(())
}

/// The grace (recursive partitioned) hash join: both sides' keys are
/// encoded into spill records — the stored 64-bit FNV-1a hash plus the
/// canonical key bytes, i.e. exactly the flat table's probe hash and
/// arena contents, so partitions read back from disk rebuild their
/// tables without re-hashing or re-encoding. Payload columns never
/// spill: records carry *positions*, and assembly gathers from the
/// resident input batches at the end, exactly like the in-memory path.
///
/// Determinism: the whole grace pipeline is serial (hashing, routing,
/// partition order, leaf probes), so its output — and its spill I/O
/// schedule, which seeded fault injection keys on file paths — is a
/// pure function of the input, independent of the worker count.
///
/// Output order: leaf partitions emit `(left, right)` position pairs in
/// partition-local probe order; a final stable sort by left position
/// restores global probe order. Within one left row all matches live in
/// one partition (same key ⇒ same hash ⇒ same route) and leaf chains
/// insert in ascending right position, so the sorted pair list is
/// byte-identical to the in-memory probe's emission order.
#[allow(clippy::too_many_arguments)]
fn grace_join(
    left: &SelBatch,
    right: &SelBatch,
    join_type: JoinType,
    codecs: &[JoinCodec<'_>],
    residual_ok: &dyn Fn(u32, u32) -> Result<bool>,
    out_schema: &Schema,
    sp: &SpillCtx<'_>,
    rawtable: bool,
) -> Result<VectorBatch> {
    let op = sp.next_op();
    let rhashes = hash_rows(codecs, 0, right.num_rows(), true);
    let phashes = hash_rows(codecs, 0, left.num_rows(), false);

    let mut out = ProbeOut::default();
    let mut scratch: Vec<u8> = Vec::new();
    let mut build: Vec<u8> = Vec::new();
    let mut brows = 0usize;
    for (i, h) in rhashes.iter().enumerate() {
        // NULL build keys never enter any build — same as in-memory.
        if let Some(h) = *h {
            scratch.clear();
            for c in codecs {
                c.encode_build_part(i, &mut scratch);
            }
            push_rec(&mut build, h, i as u32, &scratch);
            brows += 1;
        }
    }
    let mut probe: Vec<u8> = Vec::new();
    for (i, h) in phashes.iter().enumerate() {
        match *h {
            Some(h) => {
                scratch.clear();
                for c in codecs {
                    c.encode_probe_part(i, &mut scratch);
                }
                push_rec(&mut probe, h, i as u32, &scratch);
            }
            // NULL probe keys never match: emit their no-match output
            // up front; the final stable sort interleaves it back.
            None => emit_probe(join_type, i as u32, &[], &mut out),
        }
    }

    let mut file_seq = 0u64;
    grace_solve(
        sp,
        op,
        join_type,
        codecs.len().max(1),
        rawtable,
        residual_ok,
        0,
        None,
        brows,
        &build,
        &probe,
        &mut out,
        &mut file_seq,
    )?;

    // Restore global probe order (stable: within a left row, partition
    // emission order is ascending right position already).
    let mut order: Vec<u32> = (0..out.left.len() as u32).collect();
    order.sort_by_key(|&i| out.left[i as usize]);
    let out_left: Vec<u32> = order.iter().map(|&i| out.left[i as usize]).collect();
    let out_right: Vec<Option<u32>> = order.iter().map(|&i| out.right[i as usize]).collect();

    let mut right_matched = vec![false; right.num_rows()];
    for ri in out.matched_right {
        right_matched[ri as usize] = true;
    }
    let mut extra_right: Vec<u32> = Vec::new();
    if matches!(join_type, JoinType::Right | JoinType::Full) {
        for (ri, m) in right_matched.iter().enumerate() {
            if !m {
                extra_right.push(ri as u32);
            }
        }
    }
    assemble(
        left,
        right,
        join_type,
        &out_left,
        &out_right,
        &extra_right,
        out_schema,
    )
}

/// Solve one grace partition: fit it in memory (charging the broker)
/// or split it `fanout` ways through spill files and recurse. Every
/// partition file is written before any is read back — the grace
/// discipline that bounds resident record state to one partition.
#[allow(clippy::too_many_arguments)]
fn grace_solve(
    sp: &SpillCtx<'_>,
    op: u64,
    join_type: JoinType,
    key_cols: usize,
    rawtable: bool,
    residual_ok: &dyn Fn(u32, u32) -> Result<bool>,
    depth: u32,
    parent_build_rows: Option<usize>,
    brows: usize,
    build: &[u8],
    probe: &[u8],
    out: &mut ProbeOut,
    file_seq: &mut u64,
) -> Result<()> {
    let est = crate::spill::estimate_table_bytes(brows, key_cols);
    let plan = plan_partition(
        est,
        sp.broker.chunk_budget(),
        depth,
        brows,
        parent_build_rows,
    );
    if plan.process_in_memory {
        // Forced when over budget: degradation has bottomed out (skewed
        // single-key partition / depth cap) and proceeding beats
        // failing; the overshoot lands in the broker peak.
        let _g = match sp.broker.try_reserve("join-partition", est) {
            Some(g) => g,
            None => sp.broker.force_reserve("join-partition", est),
        };
        let mut kept: Vec<u32> = Vec::new();
        if rawtable {
            let mut b = RawBuild::default();
            for rec in RecIter::new(build) {
                let (h, ri, key) = rec?;
                let (e, inserted) = b.table.insert(h, key);
                let link = b.rows.len() as u32;
                b.rows.push(ri);
                b.next.push(u32::MAX);
                if inserted {
                    b.head.push(link);
                    b.tail.push(link);
                } else {
                    b.next[b.tail[e as usize] as usize] = link;
                    b.tail[e as usize] = link;
                }
            }
            for rec in RecIter::new(probe) {
                let (h, li, key) = rec?;
                kept.clear();
                if let Some(e) = b.table.find(h, key) {
                    let mut link = b.head[e as usize];
                    while link != u32::MAX {
                        let ri = b.rows[link as usize];
                        if residual_ok(li, ri)? {
                            kept.push(ri);
                        }
                        link = b.next[link as usize];
                    }
                }
                emit_probe(join_type, li, &kept, out);
            }
        } else {
            // Differential-oracle arm: keyed by the canonical encoding
            // bytes (encoding equality ⟺ key equality, so this matches
            // the `Vec<JPart>` map byte for byte).
            let mut table: HashMap<Vec<u8>, Vec<u32>> = HashMap::new();
            for rec in RecIter::new(build) {
                let (_h, ri, key) = rec?;
                table.entry(key.to_vec()).or_default().push(ri);
            }
            for rec in RecIter::new(probe) {
                let (_h, li, key) = rec?;
                kept.clear();
                if let Some(cands) = table.get(key) {
                    for &ri in cands {
                        if residual_ok(li, ri)? {
                            kept.push(ri);
                        }
                    }
                }
                emit_probe(join_type, li, &kept, out);
            }
        }
        return Ok(());
    }

    let fanout = plan.fanout;
    let mut bparts: Vec<(Vec<u8>, usize)> = vec![(Vec::new(), 0); fanout];
    let mut pparts: Vec<(Vec<u8>, usize)> = vec![(Vec::new(), 0); fanout];
    for rec in RecIter::new(build) {
        let (h, ri, key) = rec?;
        let p = partition_of(h, depth, fanout);
        push_rec(&mut bparts[p].0, h, ri, key);
        bparts[p].1 += 1;
    }
    for rec in RecIter::new(probe) {
        let (h, li, key) = rec?;
        let p = partition_of(h, depth, fanout);
        push_rec(&mut pparts[p].0, h, li, key);
        pparts[p].1 += 1;
    }
    // Write all 2·fanout files, then read partitions back one at a time
    // (RAII guards delete each pair as its recursion completes).
    let mut files = Vec::with_capacity(fanout);
    for (p, ((bbuf, bn), (pbuf, pn))) in bparts.drain(..).zip(pparts.drain(..)).enumerate() {
        let id = *file_seq;
        *file_seq += 1;
        let bf = if bbuf.is_empty() {
            None
        } else {
            Some(sp.write(&format!("op{op}-s{id}-p{p}-build.grace"), bbuf)?)
        };
        let pf = if pbuf.is_empty() {
            None
        } else {
            Some(sp.write(&format!("op{op}-s{id}-p{p}-probe.grace"), pbuf)?)
        };
        files.push((bf, pf, bn, pn));
    }
    for (bf, pf, bn, pn) in files {
        // No probe rows: nothing to emit or match in this partition.
        if pn == 0 {
            continue;
        }
        let bbuf = match &bf {
            Some(f) => sp.read(f)?,
            None => Vec::new(),
        };
        let pbuf = match &pf {
            Some(f) => sp.read(f)?,
            None => Vec::new(),
        };
        drop((bf, pf));
        grace_solve(
            sp,
            op,
            join_type,
            key_cols,
            rawtable,
            residual_ok,
            depth + 1,
            Some(brows),
            bn,
            &bbuf,
            &pbuf,
            out,
            file_seq,
        )?;
    }
    Ok(())
}

/// Gather the output columns. `out_left`/`out_right`/`extra_right` hold
/// *positions* into each side's selection; `sel.index` maps them back to
/// underlying batch rows at gather time — the only point where the join
/// touches unneeded payload columns.
fn assemble(
    left: &SelBatch,
    right: &SelBatch,
    join_type: JoinType,
    out_left: &[u32],
    out_right: &[Option<u32>],
    extra_right: &[u32],
    out_schema: &Schema,
) -> Result<VectorBatch> {
    let keeps_right = join_type.keeps_right();
    let n = out_left.len() + extra_right.len();
    let mut cols = Vec::with_capacity(out_schema.len());
    // Left columns.
    for (ci, f) in left.schema().fields().iter().enumerate() {
        let src = left.batch.column(ci);
        let mut b = ColumnBuilder::new(&f.data_type)?;
        for &li in out_left {
            b.push(&src.get(left.sel.index(li as usize)))?;
        }
        for _ in extra_right {
            b.push(&Value::Null)?;
        }
        cols.push(b.finish());
    }
    if keeps_right {
        for (ci, f) in right.schema().fields().iter().enumerate() {
            let src = right.batch.column(ci);
            let mut b = ColumnBuilder::new(&f.data_type)?;
            for ri in out_right {
                match ri {
                    Some(r) => b.push(&src.get(right.sel.index(*r as usize)))?,
                    None => b.push(&Value::Null)?,
                }
            }
            for &ri in extra_right {
                b.push(&src.get(right.sel.index(ri as usize)))?;
            }
            cols.push(b.finish());
        }
    }
    VectorBatch::new_with_rows(out_schema.clone(), cols, n)
}

/// Build a runtime semijoin reducer from the values of one column:
/// min/max range + Bloom filter (§4.6's index semijoin payload).
///
/// The build side of a semijoin is often heavily duplicated (e.g. a
/// dimension key repeated per sales row), so values are deduplicated
/// before insertion — via the dictionary code space when the column is
/// dictionary-encoded, otherwise through a `HashSet` — and the Bloom
/// filter is sized by the *distinct* count rather than the row count,
/// which keeps its bit array proportional to the information it holds.
pub fn build_runtime_filter(
    values: &VectorBatch,
    key_col: usize,
) -> Option<(Value, Value, hive_corc::BloomFilter)> {
    build_runtime_filter_sized(values, key_col, None)
}

/// [`build_runtime_filter`] with an optimizer NDV hint. With a hint the
/// Bloom bit array is sized for that many distinct keys up front and
/// the build streams every non-NULL value straight in — no distinct-set
/// materialization. Bloom inserts are idempotent, so membership matches
/// the deduplicated build exactly; only the false-positive rate (never
/// a join result — the reducer is a pre-filter) depends on the hint's
/// accuracy. Without a hint, the original dedup-then-size build runs,
/// preserving the constant-stats oracle byte-for-byte.
pub fn build_runtime_filter_sized(
    values: &VectorBatch,
    key_col: usize,
    ndv_hint: Option<usize>,
) -> Option<(Value, Value, hive_corc::BloomFilter)> {
    let col = values.column(key_col);
    if let Some(hint) = ndv_hint {
        let mut bloom = hive_corc::BloomFilter::new(hint.max(16), 0.01);
        let mut min: Option<Value> = None;
        let mut max: Option<Value> = None;
        for i in 0..col.len() {
            let v = col.get(i);
            if v.is_null() {
                continue;
            }
            bloom.insert(&v);
            if min
                .as_ref()
                .is_none_or(|m| v.sql_cmp(m) == Some(std::cmp::Ordering::Less))
            {
                min = Some(v.clone());
            }
            if max
                .as_ref()
                .is_none_or(|m| v.sql_cmp(m) == Some(std::cmp::Ordering::Greater))
            {
                max = Some(v);
            }
        }
        return Some((min?, max?, bloom));
    }

    // Pass 1: collect distinct non-NULL values.
    let distinct: Vec<Value> = if let Some((codes, dict, nulls)) = col.dict_parts() {
        // Dictionary path: mark the codes actually present, then emit
        // each distinct *string* once (duplicate dictionary entries
        // collapse through the set below).
        let mut present = vec![false; dict.len()];
        for (i, &c) in codes.iter().enumerate() {
            if !nulls.is_some_and(|n| n.get(i)) {
                present[c as usize] = true;
            }
        }
        let mut seen = std::collections::HashSet::new();
        dict.iter()
            .enumerate()
            .filter(|&(c, s)| present[c] && seen.insert(s.as_str()))
            .map(|(_, s)| Value::String(s.clone()))
            .collect()
    } else {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for i in 0..col.len() {
            let v = col.get(i);
            if !v.is_null() && seen.insert(v.clone()) {
                out.push(v);
            }
        }
        out
    };

    // Pass 2: one Bloom insert per distinct value, min/max over the
    // distinct set.
    let mut bloom = hive_corc::BloomFilter::new(distinct.len().max(16), 0.01);
    let mut min: Option<Value> = None;
    let mut max: Option<Value> = None;
    for v in distinct {
        bloom.insert(&v);
        if min
            .as_ref()
            .is_none_or(|m| v.sql_cmp(m) == Some(std::cmp::Ordering::Less))
        {
            min = Some(v.clone());
        }
        if max
            .as_ref()
            .is_none_or(|m| v.sql_cmp(m) == Some(std::cmp::Ordering::Greater))
        {
            max = Some(v);
        }
    }
    Some((min?, max?, bloom))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hive_common::{DataType, Field, Row};

    fn batch(name: &str, rows: &[(Option<i32>, &str)]) -> VectorBatch {
        let schema = Schema::new(vec![
            Field::new(format!("{name}_k"), DataType::Int),
            Field::new(format!("{name}_v"), DataType::String),
        ]);
        let rows: Vec<Row> = rows
            .iter()
            .map(|(k, v)| {
                Row::new(vec![
                    k.map(Value::Int).unwrap_or(Value::Null),
                    Value::String((*v).into()),
                ])
            })
            .collect();
        VectorBatch::from_rows(&schema, &rows).unwrap()
    }

    fn join(l: &VectorBatch, r: &VectorBatch, jt: JoinType) -> Vec<String> {
        let out_schema = if jt.keeps_right() {
            l.schema().join(r.schema())
        } else {
            l.schema().clone()
        };
        let equi = vec![(ScalarExpr::Column(0), ScalarExpr::Column(0))];
        let out = execute_join(l, r, jt, &equi, &None, &out_schema, 1_000_000).unwrap();
        let mut rows: Vec<String> = out.to_rows().iter().map(|r| r.to_string()).collect();
        rows.sort();
        rows
    }

    #[test]
    fn inner_join() {
        let l = batch("l", &[(Some(1), "a"), (Some(2), "b"), (None, "n")]);
        let r = batch(
            "r",
            &[(Some(2), "x"), (Some(2), "y"), (Some(3), "z"), (None, "rn")],
        );
        assert_eq!(
            join(&l, &r, JoinType::Inner),
            vec!["2\tb\t2\tx", "2\tb\t2\ty"]
        );
    }

    #[test]
    fn left_join_null_extends() {
        let l = batch("l", &[(Some(1), "a"), (Some(2), "b")]);
        let r = batch("r", &[(Some(2), "x")]);
        assert_eq!(
            join(&l, &r, JoinType::Left),
            vec!["1\ta\tNULL\tNULL", "2\tb\t2\tx"]
        );
    }

    #[test]
    fn right_and_full_joins() {
        let l = batch("l", &[(Some(1), "a")]);
        let r = batch("r", &[(Some(1), "x"), (Some(9), "y")]);
        assert_eq!(
            join(&l, &r, JoinType::Right),
            vec!["1\ta\t1\tx", "NULL\tNULL\t9\ty"]
        );
        let l2 = batch("l", &[(Some(1), "a"), (Some(5), "only-left")]);
        assert_eq!(
            join(&l2, &r, JoinType::Full),
            vec!["1\ta\t1\tx", "5\tonly-left\tNULL\tNULL", "NULL\tNULL\t9\ty"]
        );
    }

    #[test]
    fn semi_and_anti() {
        let l = batch("l", &[(Some(1), "a"), (Some(2), "b"), (None, "n")]);
        let r = batch("r", &[(Some(2), "x"), (Some(2), "x2")]);
        assert_eq!(join(&l, &r, JoinType::Semi), vec!["2\tb"]);
        // NULL keys never match: the NULL row lands in anti output
        // (Hive's NOT IN caveat documented in DESIGN.md).
        assert_eq!(join(&l, &r, JoinType::Anti), vec!["1\ta", "NULL\tn"]);
    }

    #[test]
    fn residual_predicate() {
        let l = batch("l", &[(Some(1), "keep"), (Some(1), "drop")]);
        let r = batch("r", &[(Some(1), "keep")]);
        let out_schema = l.schema().join(r.schema());
        let equi = vec![(ScalarExpr::Column(0), ScalarExpr::Column(0))];
        // residual: l_v = r_v (cols 1 and 3 of the combined row).
        let residual = Some(ScalarExpr::eq(ScalarExpr::Column(1), ScalarExpr::Column(3)));
        let out = execute_join(
            &l,
            &r,
            JoinType::Inner,
            &equi,
            &residual,
            &out_schema,
            1_000_000,
        )
        .unwrap();
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.row(0).get(1), &Value::String("keep".into()));
    }

    #[test]
    fn budget_exceeded_is_retryable() {
        let l = batch("l", &[(Some(1), "a")]);
        let r = batch("r", &[(Some(1), "x"), (Some(2), "y"), (Some(3), "z")]);
        let out_schema = l.schema().join(r.schema());
        let err = execute_join(
            &l,
            &r,
            JoinType::Inner,
            &[(ScalarExpr::Column(0), ScalarExpr::Column(0))],
            &None,
            &out_schema,
            2,
        )
        .unwrap_err();
        // No spill context: the typed memory error downgrades to the
        // retryable form that feeds re-optimization, carrying the
        // broker diagnosis in its message.
        assert!(err.is_retryable());
        assert!(
            err.to_string().contains("MEMORY_EXCEEDED"),
            "expected the typed memory diagnosis, got: {err}"
        );
    }

    #[test]
    fn spill_disabled_with_budget_downgrades_to_retryable() {
        use crate::membroker::MemoryBroker;
        use hive_dfs::{DfsPath, DistFs};
        use std::sync::atomic::AtomicU64;
        let l = big_batch("l", 2_000, 100);
        let r = big_batch("r", 2_000, 100);
        let out_schema = l.schema().join(r.schema());
        let equi = vec![(ScalarExpr::Column(0), ScalarExpr::Column(0))];
        let fs = DistFs::new();
        let broker = MemoryBroker::with_budget(8 * 1024);
        let ops = AtomicU64::new(0);
        let sp = SpillCtx::new(&fs, DfsPath::new("/tmp/spill/q0"), &broker, false, &ops);
        let err = execute_join_par(
            &SelBatch::from_batch(l),
            &SelBatch::from_batch(r),
            JoinType::Inner,
            &equi,
            &None,
            &out_schema,
            usize::MAX,
            1,
            true,
            Some(&sp),
            None,
        )
        .unwrap_err();
        assert!(err.is_retryable());
        assert!(err.to_string().contains("MEMORY_EXCEEDED"), "{err}");
    }

    #[test]
    fn grace_join_is_byte_identical_and_spills() {
        use crate::membroker::MemoryBroker;
        use hive_dfs::{DfsPath, DistFs};
        use std::sync::atomic::AtomicU64;
        let l = big_batch("l", 9_000, 500);
        let r = big_batch("r", 3_000, 500);
        let equi = vec![(ScalarExpr::Column(0), ScalarExpr::Column(0))];
        for jt in [
            JoinType::Inner,
            JoinType::Left,
            JoinType::Right,
            JoinType::Full,
            JoinType::Semi,
            JoinType::Anti,
        ] {
            let out_schema = if jt.keeps_right() {
                l.schema().join(r.schema())
            } else {
                l.schema().clone()
            };
            let lsb = SelBatch::from_batch(l.clone());
            let rsb = SelBatch::from_batch(r.clone());
            let base = execute_join_par(
                &lsb,
                &rsb,
                jt,
                &equi,
                &None,
                &out_schema,
                1_000_000,
                1,
                false,
                None,
                None,
            )
            .unwrap();
            let base_rows: Vec<String> = base.to_rows().iter().map(|row| row.to_string()).collect();
            for rawtable in [false, true] {
                let fs = DistFs::new();
                // A few KB: far below the build estimate, so the grace
                // path must engage and recurse at least one level.
                let broker = MemoryBroker::with_budget(16 * 1024);
                let ops = AtomicU64::new(0);
                let sp = SpillCtx::new(&fs, DfsPath::new("/tmp/spill/q0"), &broker, true, &ops);
                let out = execute_join_par(
                    &lsb,
                    &rsb,
                    jt,
                    &equi,
                    &None,
                    &out_schema,
                    1_000_000,
                    1,
                    rawtable,
                    Some(&sp),
                    None,
                )
                .unwrap();
                let rows: Vec<String> = out.to_rows().iter().map(|row| row.to_string()).collect();
                assert_eq!(rows, base_rows, "{jt:?} grace rawtable={rawtable} diverged");
                assert!(
                    sp.stats.bytes_written() > 0,
                    "{jt:?} grace run never spilled"
                );
                assert!(sp.stats.bytes_read() > 0, "partitions were read back");
                assert!(
                    fs.list_files_recursive(&DfsPath::new("/tmp/spill"))
                        .is_empty(),
                    "spill files all deleted after the join"
                );
                assert!(broker.denials() > 0);
                assert_eq!(broker.reserved(), 0, "all grants released");
            }
        }
    }

    #[test]
    fn cross_join_without_keys() {
        let l = batch("l", &[(Some(1), "a"), (Some(2), "b")]);
        let r = batch("r", &[(Some(9), "x")]);
        let out_schema = l.schema().join(r.schema());
        let out =
            execute_join(&l, &r, JoinType::Cross, &[], &None, &out_schema, 1_000_000).unwrap();
        assert_eq!(out.num_rows(), 2);
    }

    #[test]
    fn runtime_filter_build() {
        let r = batch("r", &[(Some(5), "a"), (Some(9), "b"), (None, "n")]);
        let (min, max, bloom) = build_runtime_filter(&r, 0).unwrap();
        assert_eq!(min, Value::Int(5));
        assert_eq!(max, Value::Int(9));
        assert!(bloom.might_contain(&Value::Int(5)));
        assert!(!bloom.might_contain(&Value::Int(6)));
    }

    fn big_batch(name: &str, n: usize, key_mod: i32) -> VectorBatch {
        let schema = Schema::new(vec![
            Field::new(format!("{name}_k"), DataType::Int),
            Field::new(format!("{name}_v"), DataType::String),
        ]);
        let rows: Vec<Row> = (0..n)
            .map(|i| {
                let k = if i % 17 == 0 {
                    Value::Null
                } else {
                    Value::Int((i as i32).wrapping_mul(31).wrapping_add(7) % key_mod)
                };
                Row::new(vec![k, Value::String(format!("v{i}"))])
            })
            .collect();
        VectorBatch::from_rows(&schema, &rows).unwrap()
    }

    #[test]
    fn parallel_join_is_byte_identical_for_every_join_type() {
        let l = big_batch("l", 9_000, 500);
        let r = big_batch("r", 3_000, 500);
        let equi = vec![(ScalarExpr::Column(0), ScalarExpr::Column(0))];
        for jt in [
            JoinType::Inner,
            JoinType::Left,
            JoinType::Right,
            JoinType::Full,
            JoinType::Semi,
            JoinType::Anti,
        ] {
            let out_schema = if jt.keeps_right() {
                l.schema().join(r.schema())
            } else {
                l.schema().clone()
            };
            let lsb = SelBatch::from_batch(l.clone());
            let rsb = SelBatch::from_batch(r.clone());
            // Oracle: serial HashMap build. Every (workers, rawtable)
            // combo must reproduce it byte for byte.
            let base = execute_join_par(
                &lsb,
                &rsb,
                jt,
                &equi,
                &None,
                &out_schema,
                1_000_000,
                1,
                false,
                None,
                None,
            )
            .unwrap();
            let base_rows: Vec<String> = base.to_rows().iter().map(|row| row.to_string()).collect();
            assert!(base.num_rows() > 0, "{jt:?} produced no rows");
            for workers in [1, 2, 8] {
                for rawtable in [false, true] {
                    let out = execute_join_par(
                        &lsb,
                        &rsb,
                        jt,
                        &equi,
                        &None,
                        &out_schema,
                        1_000_000,
                        workers,
                        rawtable,
                        None,
                        None,
                    )
                    .unwrap();
                    let rows: Vec<String> =
                        out.to_rows().iter().map(|row| row.to_string()).collect();
                    assert_eq!(
                        rows, base_rows,
                        "{jt:?} with {workers} workers rawtable={rawtable} diverged"
                    );
                }
            }
        }
    }

    #[test]
    fn join_routing_hashes_are_pinned_fnv1a() {
        // Routing must stay on FNV-1a over the canonical key encoding:
        // a silent change would reshuffle build partitions and the
        // fault-injection schedule. Pinned against hive_common::hash.
        let ints = ColumnVector::Int(
            vec![42, 1],
            Some({
                let mut n = hive_common::BitSet::new(2);
                n.set(1);
                n
            }),
        );
        let other = ColumnVector::Int(vec![42, 1], None);
        let codecs = vec![JoinCodec::new(&ints, &other)];
        let hs = hash_rows(&codecs, 0, 2, false);
        assert_eq!(hs[0], Some(0xb960_a184_f070_32c6)); // fnv1a(enc(Int 42))
        assert_eq!(hs[1], None); // NULL key never hashes
        let hs = hash_rows(&codecs, 0, 2, true);
        assert_eq!(hs[0], Some(0xb960_a184_f070_32c6));
        assert_eq!(hs[1], Some(0x7194_f3e5_9ae4_7dcd)); // fnv1a(enc(Int 1))
    }

    #[test]
    fn dict_join_keys_match_across_toggle() {
        // dict×dict joins key on right-side codes; dict-only-left
        // entries must miss on both arms. Columns are built as real
        // dictionary vectors so the `Codes` codec engages.
        let mk = |codes: Vec<u32>, dict: &[&str]| {
            let schema = Schema::new(vec![Field::new("k", DataType::String)]);
            let dict = Arc::new(dict.iter().map(|s| s.to_string()).collect::<Vec<_>>());
            let col = ColumnVector::dict_from_codes(codes, dict, None).unwrap();
            let n = col.len();
            VectorBatch::new_with_rows(schema, vec![col], n).unwrap()
        };
        // l: a b c a zz — "c"/"zz" absent from the right dictionary.
        let l = mk(vec![0, 1, 2, 0, 3], &["a", "b", "c", "zz"]);
        let r = mk(vec![0, 1, 0], &["b", "a"]);
        let equi = vec![(ScalarExpr::Column(0), ScalarExpr::Column(0))];
        let out_schema = l.schema().join(r.schema());
        let lsb = SelBatch::from_batch(l);
        let rsb = SelBatch::from_batch(r);
        let run = |rawtable: bool| -> Vec<String> {
            let out = execute_join_par(
                &lsb,
                &rsb,
                JoinType::Left,
                &equi,
                &None,
                &out_schema,
                1_000_000,
                1,
                rawtable,
                None,
                None,
            )
            .unwrap();
            out.to_rows().iter().map(|row| row.to_string()).collect()
        };
        let oracle = run(false);
        assert_eq!(run(true), oracle);
        assert!(oracle.contains(&"zz\tNULL".to_string()), "{oracle:?}");
    }
}
