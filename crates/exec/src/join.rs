//! Hash joins: inner/left/right/full/semi/anti (+cross), with residual
//! predicates, NULL-safe key semantics, and the memory-budget check that
//! feeds query re-optimization (§4.2).

use crate::kernels::eval_vector;
use hive_common::{
    ColumnBuilder, HiveError, Result, Schema, Value, VectorBatch,
};
use hive_optimizer::eval::eval_scalar;
use hive_optimizer::plan::JoinType;
use hive_optimizer::ScalarExpr;
use std::collections::HashMap;

/// Execute a join. `equi` pairs are (left expr, right expr); `residual`
/// is evaluated over the concatenated (left ++ right) row.
///
/// The build side is the right input; exceeding `build_row_budget`
/// raises a retryable error so the driver can re-optimize with runtime
/// statistics.
pub fn execute_join(
    left: &VectorBatch,
    right: &VectorBatch,
    join_type: JoinType,
    equi: &[(ScalarExpr, ScalarExpr)],
    residual: &Option<ScalarExpr>,
    out_schema: &Schema,
    build_row_budget: usize,
) -> Result<VectorBatch> {
    if right.num_rows() > build_row_budget {
        return Err(HiveError::Retryable(format!(
            "hash join build side has {} rows, exceeding the {} row budget",
            right.num_rows(),
            build_row_budget
        )));
    }

    // Evaluate key columns.
    let lkeys = equi
        .iter()
        .map(|(l, _)| eval_vector(l, left))
        .collect::<Result<Vec<_>>>()?;
    let rkeys = equi
        .iter()
        .map(|(_, r)| eval_vector(r, right))
        .collect::<Result<Vec<_>>>()?;

    // Build hash table over the right side. NULL keys never match.
    let mut table: HashMap<Vec<Value>, Vec<u32>> = HashMap::new();
    if equi.is_empty() {
        // Cross-style: single bucket with every row.
        table.insert(Vec::new(), (0..right.num_rows() as u32).collect());
    } else {
        'rows: for i in 0..right.num_rows() {
            let mut key = Vec::with_capacity(equi.len());
            for kc in &rkeys {
                let v = kc.get(i);
                if v.is_null() {
                    continue 'rows;
                }
                key.push(v);
            }
            table.entry(key).or_default().push(i as u32);
        }
    }

    let residual_ok = |li: u32, ri: u32| -> Result<bool> {
        match residual {
            None => Ok(true),
            Some(pred) => {
                let mut vals = left.row(li as usize).into_values();
                vals.extend(right.row(ri as usize).into_values());
                Ok(eval_scalar(pred, &vals)? == Value::Boolean(true))
            }
        }
    };

    let mut out_left: Vec<u32> = Vec::new();
    let mut out_right: Vec<Option<u32>> = Vec::new();
    let mut right_matched = vec![false; right.num_rows()];

    for li in 0..left.num_rows() as u32 {
        // Probe key (NULLs never match).
        let probe: Option<Vec<Value>> = if equi.is_empty() {
            Some(Vec::new())
        } else {
            let mut key = Vec::with_capacity(equi.len());
            let mut ok = true;
            for kc in &lkeys {
                let v = kc.get(li as usize);
                if v.is_null() {
                    ok = false;
                    break;
                }
                key.push(v);
            }
            ok.then_some(key)
        };
        let matches: Vec<u32> = match probe.and_then(|k| table.get(&k).cloned()) {
            Some(cands) => {
                let mut kept = Vec::with_capacity(cands.len());
                for ri in cands {
                    if residual_ok(li, ri)? {
                        kept.push(ri);
                    }
                }
                kept
            }
            None => Vec::new(),
        };
        match join_type {
            JoinType::Inner | JoinType::Cross => {
                for ri in matches {
                    out_left.push(li);
                    out_right.push(Some(ri));
                }
            }
            JoinType::Left => {
                if matches.is_empty() {
                    out_left.push(li);
                    out_right.push(None);
                } else {
                    for ri in matches {
                        out_left.push(li);
                        out_right.push(Some(ri));
                    }
                }
            }
            JoinType::Right | JoinType::Full => {
                for &ri in &matches {
                    right_matched[ri as usize] = true;
                    out_left.push(li);
                    out_right.push(Some(ri));
                }
                if join_type == JoinType::Full && matches.is_empty() {
                    out_left.push(li);
                    out_right.push(None);
                }
            }
            JoinType::Semi => {
                if !matches.is_empty() {
                    out_left.push(li);
                    out_right.push(None);
                }
            }
            JoinType::Anti => {
                if matches.is_empty() {
                    out_left.push(li);
                    out_right.push(None);
                }
            }
        }
    }

    // Unmatched build rows for right/full joins.
    let mut extra_right: Vec<u32> = Vec::new();
    if matches!(join_type, JoinType::Right | JoinType::Full) {
        for (ri, m) in right_matched.iter().enumerate() {
            if !m {
                extra_right.push(ri as u32);
            }
        }
    }

    assemble(
        left,
        right,
        join_type,
        &out_left,
        &out_right,
        &extra_right,
        out_schema,
    )
}

fn assemble(
    left: &VectorBatch,
    right: &VectorBatch,
    join_type: JoinType,
    out_left: &[u32],
    out_right: &[Option<u32>],
    extra_right: &[u32],
    out_schema: &Schema,
) -> Result<VectorBatch> {
    let keeps_right = join_type.keeps_right();
    let n = out_left.len() + extra_right.len();
    let mut cols = Vec::with_capacity(out_schema.len());
    // Left columns.
    for (ci, f) in left.schema().fields().iter().enumerate() {
        let src = left.column(ci);
        let mut b = ColumnBuilder::new(&f.data_type)?;
        for &li in out_left {
            b.push(&src.get(li as usize))?;
        }
        for _ in extra_right {
            b.push(&Value::Null)?;
        }
        cols.push(b.finish());
    }
    if keeps_right {
        for (ci, f) in right.schema().fields().iter().enumerate() {
            let src = right.column(ci);
            let mut b = ColumnBuilder::new(&f.data_type)?;
            for ri in out_right {
                match ri {
                    Some(r) => b.push(&src.get(*r as usize))?,
                    None => b.push(&Value::Null)?,
                }
            }
            for &ri in extra_right {
                b.push(&src.get(ri as usize))?;
            }
            cols.push(b.finish());
        }
    }
    VectorBatch::new_with_rows(out_schema.clone(), cols, n)
}

/// Build a runtime semijoin reducer from the values of one column:
/// min/max range + Bloom filter (§4.6's index semijoin payload).
pub fn build_runtime_filter(
    values: &VectorBatch,
    key_col: usize,
) -> Option<(Value, Value, hive_corc::BloomFilter)> {
    let col = values.column(key_col);
    let mut min: Option<Value> = None;
    let mut max: Option<Value> = None;
    let mut bloom = hive_corc::BloomFilter::new(values.num_rows().max(16), 0.01);
    for i in 0..col.len() {
        let v = col.get(i);
        if v.is_null() {
            continue;
        }
        bloom.insert(&v);
        if min
            .as_ref()
            .map_or(true, |m| v.sql_cmp(m) == Some(std::cmp::Ordering::Less))
        {
            min = Some(v.clone());
        }
        if max
            .as_ref()
            .map_or(true, |m| v.sql_cmp(m) == Some(std::cmp::Ordering::Greater))
        {
            max = Some(v);
        }
    }
    Some((min?, max?, bloom))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hive_common::{DataType, Field, Row};

    fn batch(name: &str, rows: &[(Option<i32>, &str)]) -> VectorBatch {
        let schema = Schema::new(vec![
            Field::new(format!("{name}_k"), DataType::Int),
            Field::new(format!("{name}_v"), DataType::String),
        ]);
        let rows: Vec<Row> = rows
            .iter()
            .map(|(k, v)| {
                Row::new(vec![
                    k.map(Value::Int).unwrap_or(Value::Null),
                    Value::String((*v).into()),
                ])
            })
            .collect();
        VectorBatch::from_rows(&schema, &rows).unwrap()
    }

    fn join(
        l: &VectorBatch,
        r: &VectorBatch,
        jt: JoinType,
    ) -> Vec<String> {
        let out_schema = if jt.keeps_right() {
            l.schema().join(r.schema())
        } else {
            l.schema().clone()
        };
        let equi = vec![(ScalarExpr::Column(0), ScalarExpr::Column(0))];
        let out = execute_join(l, r, jt, &equi, &None, &out_schema, 1_000_000).unwrap();
        let mut rows: Vec<String> = out.to_rows().iter().map(|r| r.to_string()).collect();
        rows.sort();
        rows
    }

    #[test]
    fn inner_join() {
        let l = batch("l", &[(Some(1), "a"), (Some(2), "b"), (None, "n")]);
        let r = batch("r", &[(Some(2), "x"), (Some(2), "y"), (Some(3), "z"), (None, "rn")]);
        assert_eq!(join(&l, &r, JoinType::Inner), vec!["2\tb\t2\tx", "2\tb\t2\ty"]);
    }

    #[test]
    fn left_join_null_extends() {
        let l = batch("l", &[(Some(1), "a"), (Some(2), "b")]);
        let r = batch("r", &[(Some(2), "x")]);
        assert_eq!(
            join(&l, &r, JoinType::Left),
            vec!["1\ta\tNULL\tNULL", "2\tb\t2\tx"]
        );
    }

    #[test]
    fn right_and_full_joins() {
        let l = batch("l", &[(Some(1), "a")]);
        let r = batch("r", &[(Some(1), "x"), (Some(9), "y")]);
        assert_eq!(
            join(&l, &r, JoinType::Right),
            vec!["1\ta\t1\tx", "NULL\tNULL\t9\ty"]
        );
        let l2 = batch("l", &[(Some(1), "a"), (Some(5), "only-left")]);
        assert_eq!(
            join(&l2, &r, JoinType::Full),
            vec!["1\ta\t1\tx", "5\tonly-left\tNULL\tNULL", "NULL\tNULL\t9\ty"]
        );
    }

    #[test]
    fn semi_and_anti() {
        let l = batch("l", &[(Some(1), "a"), (Some(2), "b"), (None, "n")]);
        let r = batch("r", &[(Some(2), "x"), (Some(2), "x2")]);
        assert_eq!(join(&l, &r, JoinType::Semi), vec!["2\tb"]);
        // NULL keys never match: the NULL row lands in anti output
        // (Hive's NOT IN caveat documented in DESIGN.md).
        assert_eq!(join(&l, &r, JoinType::Anti), vec!["1\ta", "NULL\tn"]);
    }

    #[test]
    fn residual_predicate() {
        let l = batch("l", &[(Some(1), "keep"), (Some(1), "drop")]);
        let r = batch("r", &[(Some(1), "keep")]);
        let out_schema = l.schema().join(r.schema());
        let equi = vec![(ScalarExpr::Column(0), ScalarExpr::Column(0))];
        // residual: l_v = r_v (cols 1 and 3 of the combined row).
        let residual = Some(ScalarExpr::eq(
            ScalarExpr::Column(1),
            ScalarExpr::Column(3),
        ));
        let out = execute_join(
            &l,
            &r,
            JoinType::Inner,
            &equi,
            &residual,
            &out_schema,
            1_000_000,
        )
        .unwrap();
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.row(0).get(1), &Value::String("keep".into()));
    }

    #[test]
    fn budget_exceeded_is_retryable() {
        let l = batch("l", &[(Some(1), "a")]);
        let r = batch("r", &[(Some(1), "x"), (Some(2), "y"), (Some(3), "z")]);
        let out_schema = l.schema().join(r.schema());
        let err = execute_join(
            &l,
            &r,
            JoinType::Inner,
            &[(ScalarExpr::Column(0), ScalarExpr::Column(0))],
            &None,
            &out_schema,
            2,
        )
        .unwrap_err();
        assert!(err.is_retryable());
    }

    #[test]
    fn cross_join_without_keys() {
        let l = batch("l", &[(Some(1), "a"), (Some(2), "b")]);
        let r = batch("r", &[(Some(9), "x")]);
        let out_schema = l.schema().join(r.schema());
        let out = execute_join(
            &l,
            &r,
            JoinType::Cross,
            &[],
            &None,
            &out_schema,
            1_000_000,
        )
        .unwrap();
        assert_eq!(out.num_rows(), 2);
    }

    #[test]
    fn runtime_filter_build() {
        let r = batch("r", &[(Some(5), "a"), (Some(9), "b"), (None, "n")]);
        let (min, max, bloom) = build_runtime_filter(&r, 0).unwrap();
        assert_eq!(min, Value::Int(5));
        assert_eq!(max, Value::Int(9));
        assert!(bloom.might_contain(&Value::Int(5)));
        assert!(!bloom.might_contain(&Value::Int(6)));
    }
}
