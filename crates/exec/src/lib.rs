//! # hive-exec
//!
//! The execution engine (paper §5): vectorized physical operators over
//! [`hive_common::VectorBatch`]es, ACID-snapshot table scans routed
//! through the LLAP cache, dynamic semijoin reduction at runtime, a
//! shared-work result cache, and the simulated cluster time model that
//! reprojects measured per-operator work onto the paper's 10-node
//! cluster (see DESIGN.md).
//!
//! Queries execute for real — results are exact; only the reported
//! *response time* comes from [`simtime`]. The engine runs in two
//! modes selected by [`hive_common::HiveConf`]: the vectorized Hive-3.1
//! path and a row-interpreter Hive-1.2 emulation used as the Figure 7
//! baseline.

pub mod aggregate;
pub(crate) mod dict;
pub mod engine;
pub mod join;
pub mod kernels;
pub mod membroker;
pub(crate) mod par;
pub mod pir;
pub mod rawtable;
pub mod recovery;
pub mod scan;
pub mod simtime;
pub mod spill;
pub mod window;

pub use engine::{
    execute, execute_sel, execute_simple, CardGuard, ExecContext, ExternalScanResult,
    ExternalScanner, FaultCharges, NodeTrace, SnapshotProvider, SpillConfig, WideOpenSnapshots,
};
pub use membroker::{scaled_budget, MemGrant, MemoryBroker};
pub use rawtable::RawTable;
pub use simtime::{simulate_ms, summarize, SimCostModel, SimSummary};
pub use spill::{SpillCtx, SpillFile, SpillStats};
