//! Spill-to-disk plumbing shared by the grace hash join, the
//! partitioned aggregate, and the external-merge sort.
//!
//! # Spill record format
//!
//! Blocking operators spill *keys and row ids*, never payload columns
//! (payloads stay in the materialized input batch and are gathered once
//! at assembly, and dictionary-encoded columns never decode — sort
//! spills only position runs, joins/aggregates spill canonical key
//! encodings which for dict×dict keys are u32 codes). One record is
//!
//! ```text
//! u64 hash (LE) | u32 row (LE) | u32 key_len (LE) | key_len key bytes
//! ```
//!
//! where `hash` is the operator's stable FNV-1a key hash and `key` the
//! canonical key encoding ([`hive_common::hash`]) — exactly the
//! [`crate::rawtable::RawTable`] arena bytes plus its stored 64-bit
//! hash, so a partition read back from disk rebuilds its table with
//! `insert(hash, key)` and never re-hashes or re-encodes. That keeps
//! the spilled build byte-compatible with the in-memory build (same
//! probe hash, same arena contents) and keeps seeded fault replay
//! deterministic: the spilled byte stream is a pure function of the
//! input rows.
//!
//! # I/O, faults, recovery
//!
//! Spill files are written through [`hive_dfs::DistFs`], so their I/O
//! is metered into the sim-time model and both reads and writes pass
//! the seeded [`hive_common::fault::FaultInjector`] (sites `DfsRead` /
//! `DfsWrite`). [`SpillCtx::write`] and [`SpillCtx::read`] retry
//! transient faults with the same capped-exponential ladder as
//! fragment recovery, charging backoff to the operator's spill stats;
//! with recovery disabled the first fault surfaces, which is what the
//! orphan-cleanup test aborts a query with. [`SpillFile`] deletes its
//! file on drop — normal completion, `?` propagation, and panic unwind
//! all leave the spill directory empty.

use crate::membroker::MemoryBroker;
use hive_common::{HiveError, Result};
use hive_dfs::{Bytes, DfsPath, DistFs};
use std::sync::atomic::{AtomicU64, Ordering};

/// Recursion guardrails for partitioned spilling. Depth is capped so a
/// degenerate hash distribution cannot recurse forever; fanout is
/// capped so one level never creates an unbounded file set.
pub const MAX_DEPTH: u32 = 6;
pub const MAX_FANOUT: usize = 16;

/// Modeled bytes of hash-table working state for `rows` keys of
/// `key_cols` columns: canonical key encodings (~9 bytes per fixed
/// part) riding in the arena, plus per-row hash/tag/chain overhead.
/// A deliberate width model, not a measurement — it only has to be
/// deterministic and monotone in the input size for the spill decision
/// to replay identically at any worker count.
pub fn estimate_table_bytes(rows: usize, key_cols: usize) -> u64 {
    rows as u64 * (9 * key_cols.max(1) as u64 + 28)
}

/// Modeled bytes of aggregation state: the key table plus accumulator
/// slots (a [`crate::aggregate`] `Acc` is value-sized; DISTINCT sets
/// are charged per contributing row since groups are bounded by rows).
pub fn estimate_agg_bytes(rows: usize, key_cols: usize, naggs: usize) -> u64 {
    estimate_table_bytes(rows, key_cols) + rows as u64 * 48 * naggs.max(1) as u64
}

/// Modeled bytes of sort working state: the position permutation plus
/// per-key comparator state (rank lookups are O(1) and shared).
pub fn estimate_sort_bytes(rows: usize, key_cols: usize) -> u64 {
    rows as u64 * (4 + 16 * key_cols.max(1) as u64)
}

/// Decision for one spill partition (or the operator's whole input at
/// depth 0): process in memory, or partition `fanout` ways and recurse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionPlan {
    pub fanout: usize,
    pub process_in_memory: bool,
}

/// The pure partition planner. In-memory when the estimate fits the
/// working budget — and, so recursion provably terminates, when the
/// depth cap is reached or when partitioning made no progress
/// (`rows == parent_rows`: every key hashed identically, e.g. a
/// single-key skewed build side, which no amount of re-partitioning
/// separates). Otherwise partition with fanout `est/budget`, clamped
/// to [2, [`MAX_FANOUT`]].
pub fn plan_partition(
    est_bytes: u64,
    budget_bytes: u64,
    depth: u32,
    rows: usize,
    parent_rows: Option<usize>,
) -> PartitionPlan {
    let budget = budget_bytes.max(1);
    let no_progress = parent_rows == Some(rows);
    if est_bytes <= budget || depth >= MAX_DEPTH || no_progress || rows <= 1 {
        return PartitionPlan {
            fanout: 1,
            process_in_memory: true,
        };
    }
    let fanout = est_bytes.div_ceil(budget).clamp(2, MAX_FANOUT as u64) as usize;
    PartitionPlan {
        fanout,
        process_in_memory: false,
    }
}

/// Route a stored key hash to a partition at recursion `depth`. Each
/// level remixes with a depth salt (splitmix64 finalizer) so child
/// partitions re-split on fresh bits instead of re-deriving the parent
/// split — without touching the stored hash itself.
pub fn partition_of(hash: u64, depth: u32, fanout: usize) -> usize {
    let mut z = hash ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(depth as u64 + 1));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    (z % fanout.max(1) as u64) as usize
}

/// Append one spill record to `out`.
pub fn push_rec(out: &mut Vec<u8>, hash: u64, row: u32, key: &[u8]) {
    out.extend_from_slice(&hash.to_le_bytes());
    out.extend_from_slice(&row.to_le_bytes());
    out.extend_from_slice(&(key.len() as u32).to_le_bytes());
    out.extend_from_slice(key);
}

/// Iterate spill records out of a buffer read back from a spill file.
pub struct RecIter<'a> {
    buf: &'a [u8],
    off: usize,
}

impl<'a> RecIter<'a> {
    pub fn new(buf: &'a [u8]) -> RecIter<'a> {
        RecIter { buf, off: 0 }
    }
}

impl<'a> Iterator for RecIter<'a> {
    type Item = Result<(u64, u32, &'a [u8])>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.off == self.buf.len() {
            return None;
        }
        if self.buf.len() - self.off < 16 {
            self.off = self.buf.len();
            return Some(Err(HiveError::Format(
                "truncated spill record header".into(),
            )));
        }
        let b = &self.buf[self.off..];
        let hash = u64::from_le_bytes(b[0..8].try_into().expect("8-byte slice"));
        let row = u32::from_le_bytes(b[8..12].try_into().expect("4-byte slice"));
        let len = u32::from_le_bytes(b[12..16].try_into().expect("4-byte slice")) as usize;
        if b.len() - 16 < len {
            self.off = self.buf.len();
            return Some(Err(HiveError::Format("truncated spill record key".into())));
        }
        self.off += 16 + len;
        Some(Ok((hash, row, &b[16..16 + len])))
    }
}

/// Per-operator spill I/O accounting, folded into the operator's
/// [`crate::engine::NodeTrace`] (bytes into `bytes_disk` — spill I/O is
/// disk I/O to the sim-time model — plus the dedicated `bytes_spilled`
/// counter and retry backoff into `backoff_wait_ms`).
#[derive(Debug, Default)]
pub struct SpillStats {
    bytes_written: AtomicU64,
    bytes_read: AtomicU64,
    files: AtomicU64,
    reads: AtomicU64,
    retries: AtomicU64,
    backoff_micros: AtomicU64,
}

impl SpillStats {
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written.load(Ordering::Relaxed)
    }
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read.load(Ordering::Relaxed)
    }
    pub fn files(&self) -> u64 {
        self.files.load(Ordering::Relaxed)
    }
    pub fn reads(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }
    pub fn backoff_ms(&self) -> f64 {
        self.backoff_micros.load(Ordering::Relaxed) as f64 / 1000.0
    }
    fn charge_retry(&self, backoff_ms: f64) {
        self.retries.fetch_add(1, Ordering::Relaxed);
        self.backoff_micros
            .fetch_add((backoff_ms * 1000.0) as u64, Ordering::Relaxed);
    }
}

/// RAII guard over one spill file: deletes it through dfs on drop, so
/// every exit path — normal completion, error propagation, panic
/// unwind — leaves no orphans in the spill directory.
#[derive(Debug)]
pub struct SpillFile<'a> {
    fs: &'a DistFs,
    path: DfsPath,
    pub bytes: u64,
}

impl SpillFile<'_> {
    pub fn path(&self) -> &DfsPath {
        &self.path
    }
}

impl Drop for SpillFile<'_> {
    fn drop(&mut self) {
        // Best effort: a file that failed creation mid-retry may not
        // exist, and cleanup must never panic on an unwind path.
        let _ = self.fs.delete_file(&self.path);
    }
}

/// One operator's handle to the query's spill environment: where to
/// write, which broker arbitrates memory, and whether degrading to
/// disk is allowed at all (`hive.exec.spill.enabled`). The engine
/// creates one per blocking operator; `op_seq` is shared across the
/// query so file names stay unique (operators run sequentially, so the
/// sequence — and with it every spill path — is deterministic).
pub struct SpillCtx<'a> {
    fs: &'a DistFs,
    dir: DfsPath,
    pub broker: &'a MemoryBroker,
    pub enabled: bool,
    op_seq: &'a AtomicU64,
    pub stats: SpillStats,
}

impl<'a> SpillCtx<'a> {
    pub fn new(
        fs: &'a DistFs,
        dir: DfsPath,
        broker: &'a MemoryBroker,
        enabled: bool,
        op_seq: &'a AtomicU64,
    ) -> SpillCtx<'a> {
        SpillCtx {
            fs,
            dir,
            broker,
            enabled,
            op_seq,
            stats: SpillStats::default(),
        }
    }

    pub fn fs(&self) -> &'a DistFs {
        self.fs
    }

    /// Claim this operator's spill id (file-name prefix).
    pub fn next_op(&self) -> u64 {
        self.op_seq.fetch_add(1, Ordering::Relaxed)
    }

    /// Retry `op` on transient faults with the fragment-recovery
    /// ladder's capped exponential backoff, charged to spill stats.
    fn with_retry<T>(&self, what: &str, mut op: impl FnMut() -> Result<T>) -> Result<T> {
        let fault = self.fs.fault();
        let mut attempt: u32 = 0;
        loop {
            match op() {
                Err(e) if e.is_transient() => {
                    if !fault.recovery_enabled() {
                        return Err(e);
                    }
                    if attempt >= fault.max_fragment_retries() {
                        return Err(HiveError::FragmentLost(format!(
                            "{what}: transient error persisted through {attempt} retries: {e}"
                        )));
                    }
                    self.stats.charge_retry(fault.backoff_ms(attempt));
                    attempt += 1;
                }
                other => return other,
            }
        }
    }

    /// Write one spill file (fault-injected, retried) and return its
    /// RAII guard. `name` must be unique within the query — prefix it
    /// with the operator's `next_op` id.
    pub fn write(&self, name: &str, data: Vec<u8>) -> Result<SpillFile<'a>> {
        let path = self.dir.child(name);
        let bytes = data.len() as u64;
        let data = Bytes::from(data);
        self.with_retry("spill write", || self.fs.create(&path, data.clone()))?;
        self.stats.bytes_written.fetch_add(bytes, Ordering::Relaxed);
        self.stats.files.fetch_add(1, Ordering::Relaxed);
        Ok(SpillFile {
            fs: self.fs,
            path,
            bytes,
        })
    }

    /// Read a spill file back (fault-injected, retried).
    pub fn read(&self, file: &SpillFile<'_>) -> Result<Vec<u8>> {
        let (_, data) = self.with_retry("spill read", || self.fs.read(&file.path))?;
        self.stats
            .bytes_read
            .fetch_add(data.len() as u64, Ordering::Relaxed);
        self.stats.reads.fetch_add(1, Ordering::Relaxed);
        Ok(data.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hive_common::fault::FaultPlan;

    fn ctx_parts() -> (DistFs, MemoryBroker, AtomicU64) {
        (DistFs::new(), MemoryBroker::unlimited(), AtomicU64::new(0))
    }

    #[test]
    fn records_roundtrip() {
        let mut buf = Vec::new();
        push_rec(&mut buf, 0xDEAD_BEEF, 7, b"key-a");
        push_rec(&mut buf, 42, 0, b"");
        push_rec(&mut buf, u64::MAX, u32::MAX, &[0u8; 300]);
        let recs: Vec<_> = RecIter::new(&buf).map(|r| r.unwrap()).collect();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[0], (0xDEAD_BEEF, 7, &b"key-a"[..]));
        assert_eq!(recs[1], (42, 0, &b""[..]));
        assert_eq!(recs[2].2.len(), 300);
        // Truncation is a Format error, not a panic.
        let bad: Vec<_> = RecIter::new(&buf[..buf.len() - 1]).collect();
        assert!(matches!(
            bad.last().unwrap(),
            Err(HiveError::Format(_)) | Ok(_)
        ));
        assert!(bad.iter().any(|r| r.is_err()));
    }

    #[test]
    fn spill_file_deletes_on_drop_and_unwind() {
        let (fs, broker, ops) = ctx_parts();
        let sp = SpillCtx::new(&fs, DfsPath::new("/tmp/spill/q0"), &broker, true, &ops);
        {
            let f = sp.write("op0-p0.spill", vec![1, 2, 3]).unwrap();
            assert_eq!(
                fs.list_files_recursive(&DfsPath::new("/tmp/spill")).len(),
                1
            );
            assert_eq!(sp.read(&f).unwrap(), vec![1, 2, 3]);
        }
        assert!(
            fs.list_files_recursive(&DfsPath::new("/tmp/spill"))
                .is_empty(),
            "guard dropped: file gone"
        );
        // Panic unwind path.
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _f = sp.write("op0-p1.spill", vec![9; 64]).unwrap();
            panic!("operator died mid-spill");
        }));
        assert!(r.is_err());
        assert!(
            fs.list_files_recursive(&DfsPath::new("/tmp/spill"))
                .is_empty(),
            "no orphans after panic unwind"
        );
        assert_eq!(sp.stats.files(), 2);
        assert_eq!(sp.stats.bytes_written(), 3 + 64);
    }

    #[test]
    fn writes_and_reads_retry_through_targeted_faults() {
        let (fs, broker, ops) = ctx_parts();
        let mut plan = FaultPlan::none();
        plan.fail_path_substrings = vec!["spill".into()];
        plan.path_fail_count = 2;
        fs.fault().set_plan(plan);
        let sp = SpillCtx::new(&fs, DfsPath::new("/tmp/spill/q1"), &broker, true, &ops);
        let f = sp.write("op0-p0.spill", vec![5; 10]).unwrap();
        assert_eq!(sp.read(&f).unwrap(), vec![5; 10]);
        assert!(
            sp.stats.retries() >= 4,
            "2 write + 2 read faults retried, got {}",
            sp.stats.retries()
        );
        assert!(sp.stats.backoff_ms() > 0.0);
    }

    #[test]
    fn recovery_disabled_surfaces_spill_fault() {
        let (fs, broker, ops) = ctx_parts();
        let mut plan = FaultPlan::none();
        plan.fail_path_substrings = vec!["spill".into()];
        plan.path_fail_count = 1;
        plan.recovery_enabled = false;
        fs.fault().set_plan(plan);
        let sp = SpillCtx::new(&fs, DfsPath::new("/tmp/spill/q2"), &broker, true, &ops);
        let err = sp.write("op0-p0.spill", vec![1]).unwrap_err();
        assert!(err.is_transient(), "{err}");
        assert!(
            fs.list_files_recursive(&DfsPath::new("/tmp/spill"))
                .is_empty(),
            "failed create leaves nothing behind"
        );
    }

    #[test]
    fn planner_fits_in_memory_under_budget() {
        let p = plan_partition(1000, 4096, 0, 100, None);
        assert!(p.process_in_memory);
    }

    #[test]
    fn planner_fanout_scales_with_pressure_and_clamps() {
        let p = plan_partition(10_000, 4096, 0, 1000, None);
        assert_eq!((p.process_in_memory, p.fanout), (false, 3));
        let p = plan_partition(u64::MAX / 2, 4096, 0, 1_000_000, None);
        assert_eq!(p.fanout, MAX_FANOUT);
    }

    #[test]
    fn planner_terminates_on_no_progress_and_depth() {
        // Skewed single-key build: child partition the same size as its
        // parent means hashing cannot separate rows — process in memory.
        let p = plan_partition(1 << 40, 4096, 1, 5000, Some(5000));
        assert!(p.process_in_memory, "no-progress guard");
        let p = plan_partition(1 << 40, 4096, MAX_DEPTH, 5000, Some(9000));
        assert!(p.process_in_memory, "depth cap");
        // Progress + shallow depth keeps partitioning.
        let p = plan_partition(1 << 40, 4096, 1, 5000, Some(9000));
        assert!(!p.process_in_memory);
    }

    #[test]
    fn partition_routing_is_stable_and_depth_salted() {
        let h = 0x0123_4567_89ab_cdefu64;
        let p0 = partition_of(h, 0, 16);
        assert_eq!(partition_of(h, 0, 16), p0, "deterministic");
        // Different depths re-split on fresh bits (not a proof, but a
        // canary: all depths agreeing would mean the salt is dead).
        let all_same = (1..8).all(|d| partition_of(h, d, 16) == p0);
        assert!(!all_same);
    }
}
