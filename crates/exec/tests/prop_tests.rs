//! Property tests: the vectorized hash join agrees with a naive
//! nested-loop oracle for every join type, including NULL-key semantics
//! and residual predicates.

use hive_common::{DataType, Field, Row, Schema, Value, VectorBatch};
use hive_exec::join::execute_join;
use hive_optimizer::plan::JoinType;
use hive_optimizer::ScalarExpr;
use hive_sql::BinaryOp;
use proptest::prelude::*;

fn side_schema(prefix: &str) -> Schema {
    Schema::new(vec![
        Field::new(format!("{prefix}_k"), DataType::BigInt),
        Field::new(format!("{prefix}_v"), DataType::BigInt),
    ])
}

fn out_schema(join_type: JoinType) -> Schema {
    let mut fields = vec![
        Field::new("l_k", DataType::BigInt),
        Field::new("l_v", DataType::BigInt),
    ];
    if !matches!(join_type, JoinType::Semi | JoinType::Anti) {
        fields.push(Field::new("r_k", DataType::BigInt));
        fields.push(Field::new("r_v", DataType::BigInt));
    }
    Schema::new(fields)
}

type SideRows = Vec<(Option<i64>, i64)>;

fn rows_strategy(max_len: usize) -> impl Strategy<Value = SideRows> {
    proptest::collection::vec(
        (
            prop_oneof![4 => (0i64..6).prop_map(Some), 1 => Just(None)],
            -5i64..5,
        ),
        0..max_len,
    )
}

fn to_batch(rows: &SideRows, prefix: &str) -> VectorBatch {
    let rs: Vec<Row> = rows
        .iter()
        .map(|(k, v)| {
            Row::new(vec![
                k.map(Value::BigInt).unwrap_or(Value::Null),
                Value::BigInt(*v),
            ])
        })
        .collect();
    VectorBatch::from_rows(&side_schema(prefix), &rs).unwrap()
}

/// Residual: l_v + r_v >= 0 (columns 1 and 3 of the concatenated row).
fn residual() -> ScalarExpr {
    ScalarExpr::Binary {
        op: BinaryOp::GtEq,
        left: Box::new(ScalarExpr::Binary {
            op: BinaryOp::Plus,
            left: Box::new(ScalarExpr::Column(1)),
            right: Box::new(ScalarExpr::Column(3)),
        }),
        right: Box::new(ScalarExpr::Literal(Value::BigInt(0))),
    }
}

/// Oracle: nested-loop join with SQL NULL-key semantics.
fn oracle(
    left: &SideRows,
    right: &SideRows,
    join_type: JoinType,
    with_residual: bool,
) -> Vec<Vec<Option<i64>>> {
    let matches = |l: &(Option<i64>, i64), r: &(Option<i64>, i64)| -> bool {
        let keys = match (l.0, r.0) {
            (Some(a), Some(b)) => a == b,
            _ => false,
        };
        keys && (!with_residual || l.1 + r.1 >= 0)
    };
    let mut out = Vec::new();
    match join_type {
        JoinType::Inner => {
            for l in left {
                for r in right {
                    if matches(l, r) {
                        out.push(vec![l.0, Some(l.1), r.0, Some(r.1)]);
                    }
                }
            }
        }
        JoinType::Left => {
            for l in left {
                let mut any = false;
                for r in right {
                    if matches(l, r) {
                        out.push(vec![l.0, Some(l.1), r.0, Some(r.1)]);
                        any = true;
                    }
                }
                if !any {
                    out.push(vec![l.0, Some(l.1), None, None]);
                }
            }
        }
        JoinType::Right => {
            for r in right {
                let mut any = false;
                for l in left {
                    if matches(l, r) {
                        out.push(vec![l.0, Some(l.1), r.0, Some(r.1)]);
                        any = true;
                    }
                }
                if !any {
                    out.push(vec![None, None, r.0, Some(r.1)]);
                }
            }
        }
        JoinType::Full => {
            let mut right_hit = vec![false; right.len()];
            for l in left {
                let mut any = false;
                for (j, r) in right.iter().enumerate() {
                    if matches(l, r) {
                        out.push(vec![l.0, Some(l.1), r.0, Some(r.1)]);
                        any = true;
                        right_hit[j] = true;
                    }
                }
                if !any {
                    out.push(vec![l.0, Some(l.1), None, None]);
                }
            }
            for (j, r) in right.iter().enumerate() {
                if !right_hit[j] {
                    out.push(vec![None, None, r.0, Some(r.1)]);
                }
            }
        }
        JoinType::Semi => {
            for l in left {
                if right.iter().any(|r| matches(l, r)) {
                    out.push(vec![l.0, Some(l.1)]);
                }
            }
        }
        JoinType::Anti => {
            for l in left {
                if !right.iter().any(|r| matches(l, r)) {
                    out.push(vec![l.0, Some(l.1)]);
                }
            }
        }
        JoinType::Cross => {
            for l in left {
                for r in right {
                    if !with_residual || l.1 + r.1 >= 0 {
                        out.push(vec![l.0, Some(l.1), r.0, Some(r.1)]);
                    }
                }
            }
        }
    }
    out.sort();
    out
}

fn batch_to_rows(b: &VectorBatch) -> Vec<Vec<Option<i64>>> {
    let mut out: Vec<Vec<Option<i64>>> = b
        .to_rows()
        .into_iter()
        .map(|r| {
            (0..r.len())
                .map(|i| match r.get(i) {
                    Value::BigInt(v) => Some(*v),
                    Value::Null => None,
                    other => panic!("unexpected {other:?}"),
                })
                .collect()
        })
        .collect();
    out.sort();
    out
}

fn equi_on_keys() -> Vec<(ScalarExpr, ScalarExpr)> {
    vec![(ScalarExpr::Column(0), ScalarExpr::Column(0))]
}

fn join_type_strategy() -> impl Strategy<Value = JoinType> {
    prop_oneof![
        Just(JoinType::Inner),
        Just(JoinType::Left),
        Just(JoinType::Right),
        Just(JoinType::Full),
        Just(JoinType::Semi),
        Just(JoinType::Anti),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Hash join equals the nested-loop oracle for every join type.
    #[test]
    fn hash_join_matches_nested_loop_oracle(
        left in rows_strategy(12),
        right in rows_strategy(12),
        join_type in join_type_strategy(),
        with_residual in any::<bool>(),
    ) {
        let lb = to_batch(&left, "l");
        let rb = to_batch(&right, "r");
        let res = with_residual.then(residual);
        let got = execute_join(
            &lb, &rb, join_type, &equi_on_keys(), &res, &out_schema(join_type), 1 << 20,
        ).unwrap();
        let jt = format!("{join_type:?}");
        prop_assert_eq!(
            batch_to_rows(&got),
            oracle(&left, &right, join_type, with_residual),
            "join type {} residual={}", jt, with_residual
        );
    }

    /// Cross join (empty equi) also matches the oracle.
    #[test]
    fn cross_join_matches_oracle(
        left in rows_strategy(8),
        right in rows_strategy(8),
        with_residual in any::<bool>(),
    ) {
        let lb = to_batch(&left, "l");
        let rb = to_batch(&right, "r");
        let res = with_residual.then(residual);
        let got = execute_join(
            &lb, &rb, JoinType::Cross, &[], &res, &out_schema(JoinType::Cross), 1 << 20,
        ).unwrap();
        prop_assert_eq!(
            batch_to_rows(&got),
            oracle(&left, &right, JoinType::Cross, with_residual)
        );
    }
}
