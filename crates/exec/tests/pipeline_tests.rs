//! Whole-stack pipeline tests: SQL text → analyzer → optimizer →
//! execution over real ACID tables in the simulated DFS.

use hive_acid::AcidWriter;
use hive_common::{DataType, Field, HiveConf, Row, Schema, Value, VectorBatch};
use hive_dfs::{DfsPath, DistFs};
use hive_exec::{execute, ExecContext, NodeTrace, SnapshotProvider};
use hive_llap::LlapDaemons;
use hive_metastore::{Metastore, TableBuilder, TableStats, ValidWriteIdList};
use hive_optimizer::{Analyzer, MetastoreCatalog, Optimizer, OptimizerContext};
use hive_sql::parse_sql;

struct Fixture {
    fs: DistFs,
    ms: Metastore,
    llap: LlapDaemons,
}

struct LiveSnapshots<'a>(&'a Metastore);
impl SnapshotProvider for LiveSnapshots<'_> {
    fn write_ids(&self, table: &str) -> ValidWriteIdList {
        let snap = self.0.valid_txn_list();
        self.0.valid_write_ids(table, &snap, None)
    }
}

impl Fixture {
    fn new() -> Fixture {
        let fs = DistFs::new();
        let ms = Metastore::new();
        let llap = LlapDaemons::new(4, 4, 64 << 20, 0.5);
        let fx = Fixture { fs, ms, llap };
        // store_sales partitioned by sold_date.
        fx.create_table(
            "store_sales",
            vec![
                Field::new("ss_item_sk", DataType::Int),
                Field::new("ss_customer_sk", DataType::Int),
                Field::new("ss_sales_price", DataType::Decimal(7, 2)),
                Field::new("ss_quantity", DataType::Int),
            ],
            vec![Field::new("ss_sold_date_sk", DataType::Int)],
        );
        fx.create_table(
            "item",
            vec![
                Field::new("i_item_sk", DataType::Int),
                Field::new("i_category", DataType::String),
            ],
            vec![],
        );
        // item: 20 items across 4 categories.
        fx.insert(
            "item",
            (0..20)
                .map(|i| Row::new(vec![Value::Int(i), Value::String(format!("cat{}", i % 4))]))
                .collect(),
            None,
        );
        // store_sales: 3 day-partitions × 300 rows.
        for day in 0..3 {
            let rows: Vec<Row> = (0..300)
                .map(|i| {
                    Row::new(vec![
                        Value::Int(i % 20),
                        Value::Int(i % 50),
                        Value::Decimal(((i % 90) + 10) as i128 * 100, 2),
                        Value::Int(i % 7 + 1),
                    ])
                })
                .collect();
            fx.insert("store_sales", rows, Some(Value::Int(2450815 + day)));
        }
        fx
    }

    fn create_table(&self, name: &str, cols: Vec<Field>, parts: Vec<Field>) {
        self.ms
            .create_table(
                TableBuilder::new("default", name, Schema::new(cols))
                    .partitioned_by(parts)
                    .build(),
            )
            .unwrap();
    }

    /// Insert through a real transaction into the right delta dir.
    fn insert(&self, name: &str, rows: Vec<Row>, partition: Option<Value>) {
        let table = self.ms.get_table("default", name).unwrap();
        let qname = table.qualified_name();
        let txn = self.ms.open_txn();
        let wid = self.ms.allocate_write_id(txn, &qname).unwrap();
        let dir = match &partition {
            Some(v) => {
                let info = self
                    .ms
                    .add_partition("default", name, vec![v.clone()])
                    .unwrap();
                DfsPath::new(&info.location)
            }
            None => DfsPath::new(&table.location),
        };
        let writer = AcidWriter::new(&self.fs, &dir, table.schema.clone());
        let batch = VectorBatch::from_rows(&table.schema, &rows).unwrap();
        writer.write_insert_delta(wid, &batch).unwrap();
        self.ms.commit_txn(txn).unwrap();
        // Keep stats fresh (additive merge, §4.1).
        let mut delta = TableStats::new(table.schema.len());
        delta.update_batch(&batch);
        self.ms.merge_table_stats(&qname, &delta);
    }

    fn run_conf(&self, sql: &str, conf: &HiveConf) -> (VectorBatch, NodeTrace) {
        let cat = MetastoreCatalog::new(self.ms.clone(), "default");
        let analyzer = Analyzer::new(&cat);
        let plan = match parse_sql(sql).unwrap() {
            hive_sql::Statement::Query(q) => analyzer.analyze_query(&q).unwrap(),
            other => panic!("not a query: {other:?}"),
        };
        let ctx = OptimizerContext {
            metastore: &self.ms,
            conf,
            usable_views: vec![],
            feedback: Default::default(),
        };
        let plan = Optimizer::optimize(plan, &ctx).unwrap();
        let snaps = LiveSnapshots(&self.ms);
        let mut ectx = ExecContext::new(&self.fs, &self.ms, conf, Some(&self.llap), &snaps, None);
        ectx.prepare_shared_work(&plan);
        execute(&plan, &ectx).unwrap()
    }

    fn run(&self, sql: &str) -> (VectorBatch, NodeTrace) {
        self.run_conf(sql, &HiveConf::v3_1())
    }

    fn rows(&self, sql: &str) -> Vec<String> {
        let (b, _) = self.run(sql);
        b.to_rows().iter().map(|r| r.to_string()).collect()
    }
}

#[test]
fn count_star() {
    let fx = Fixture::new();
    assert_eq!(fx.rows("SELECT COUNT(*) FROM store_sales"), vec!["900"]);
    assert_eq!(fx.rows("SELECT COUNT(*) FROM item"), vec!["20"]);
}

#[test]
fn filter_and_project() {
    let fx = Fixture::new();
    let rows = fx.rows("SELECT i_item_sk FROM item WHERE i_category = 'cat1' ORDER BY i_item_sk");
    assert_eq!(rows, vec!["1", "5", "9", "13", "17"]);
}

#[test]
fn partition_pruned_query_reads_less() {
    let fx = Fixture::new();
    // Disable the LLAP cache so both queries read from disk (cache
    // bytes are decoded-vector sized and not comparable to file bytes).
    let conf = HiveConf::v3_1().with(|c| c.llap_enabled = false);
    let (b_all, t_all) = fx.run_conf("SELECT COUNT(*) FROM store_sales", &conf);
    let (b_one, t_one) = fx.run_conf(
        "SELECT COUNT(*) FROM store_sales WHERE ss_sold_date_sk = 2450815",
        &conf,
    );
    assert_eq!(b_all.row(0).get(0), &Value::BigInt(900));
    assert_eq!(b_one.row(0).get(0), &Value::BigInt(300));
    let all_bytes = t_all.total(|n| n.bytes_disk);
    let one_bytes = t_one.total(|n| n.bytes_disk);
    assert!(
        one_bytes * 2 < all_bytes,
        "partition pruning must cut I/O: {one_bytes} vs {all_bytes}"
    );
}

#[test]
fn star_join_with_aggregation() {
    let fx = Fixture::new();
    let rows = fx.rows(
        "SELECT i_category, COUNT(*) AS c
         FROM store_sales, item
         WHERE ss_item_sk = i_item_sk
         GROUP BY i_category
         ORDER BY i_category",
    );
    // 900 sales spread uniformly over item ids 0..20 → category counts.
    assert_eq!(rows.len(), 4);
    let total: i64 = rows
        .iter()
        .map(|r| r.split('\t').nth(1).unwrap().parse::<i64>().unwrap())
        .sum();
    assert_eq!(total, 900);
}

#[test]
fn semi_join_subquery() {
    let fx = Fixture::new();
    let rows = fx.rows(
        "SELECT COUNT(*) FROM store_sales
         WHERE ss_item_sk IN (SELECT i_item_sk FROM item WHERE i_category = 'cat0')",
    );
    // cat0 items: 0,4,8,12,16 — each day has 300 rows over ids 0..19,
    // i.e. 15 full cycles: 15 rows per id → 5 ids * 15 * 3 days = 225.
    assert_eq!(rows, vec!["225"]);
}

#[test]
fn snapshot_isolation_visible_through_engine() {
    let fx = Fixture::new();
    // Open (uncommitted) insert must stay invisible.
    let table = fx.ms.get_table("default", "item").unwrap();
    let txn = fx.ms.open_txn();
    let wid = fx.ms.allocate_write_id(txn, "default.item").unwrap();
    let writer = AcidWriter::new(&fx.fs, &DfsPath::new(&table.location), table.schema.clone());
    let batch = VectorBatch::from_rows(
        &table.schema,
        &[Row::new(vec![
            Value::Int(99),
            Value::String("ghost".into()),
        ])],
    )
    .unwrap();
    writer.write_insert_delta(wid, &batch).unwrap();
    assert_eq!(fx.rows("SELECT COUNT(*) FROM item"), vec!["20"]);
    fx.ms.commit_txn(txn).unwrap();
    assert_eq!(fx.rows("SELECT COUNT(*) FROM item"), vec!["21"]);
}

#[test]
fn llap_cache_warms_across_queries() {
    let fx = Fixture::new();
    let (_, t_cold) = fx.run("SELECT SUM(ss_quantity) FROM store_sales");
    let (_, t_warm) = fx.run("SELECT SUM(ss_quantity) FROM store_sales");
    let cold_disk = t_cold.total(|n| n.bytes_disk);
    let warm_disk = t_warm.total(|n| n.bytes_disk);
    let warm_cache = t_warm.total(|n| n.bytes_cache);
    assert!(cold_disk > 0);
    assert!(
        warm_disk < cold_disk / 4,
        "second run should hit cache: {warm_disk} vs {cold_disk}"
    );
    assert!(warm_cache > 0);
}

#[test]
fn row_mode_and_vectorized_agree() {
    let fx = Fixture::new();
    let sql = "SELECT i_category, SUM(ss_sales_price) AS s
               FROM store_sales, item WHERE ss_item_sk = i_item_sk
                 AND ss_quantity > 3
               GROUP BY i_category ORDER BY i_category";
    let (v, _) = fx.run_conf(sql, &HiveConf::v3_1());
    let mut v1_conf = HiveConf::v1_2();
    // Keep modern planning, only flip execution mode, to isolate the
    // vectorization comparison.
    v1_conf.cbo_enabled = true;
    v1_conf.vectorized = false;
    let (r, _) = fx.run_conf(sql, &v1_conf);
    assert_eq!(v.to_rows(), r.to_rows());
}

#[test]
fn grouping_sets_end_to_end() {
    let fx = Fixture::new();
    let rows = fx.rows(
        "SELECT i_category, COUNT(*) FROM item GROUP BY ROLLUP(i_category) ORDER BY i_category",
    );
    // 4 categories + 1 total row.
    assert_eq!(rows.len(), 5);
    assert!(rows.iter().any(|r| r.starts_with("NULL\t20")));
}

#[test]
fn windows_end_to_end() {
    let fx = Fixture::new();
    let rows = fx.rows(
        "SELECT i_item_sk, ROW_NUMBER() OVER (PARTITION BY i_category ORDER BY i_item_sk)
         FROM item ORDER BY i_item_sk LIMIT 5",
    );
    assert_eq!(rows, vec!["0\t1", "1\t1", "2\t1", "3\t1", "4\t2"]);
}

#[test]
fn set_operations_end_to_end() {
    let fx = Fixture::new();
    let rows = fx.rows(
        "SELECT i_item_sk FROM item WHERE i_category = 'cat0'
         INTERSECT
         SELECT i_item_sk FROM item WHERE i_item_sk < 10
         ORDER BY i_item_sk",
    );
    assert_eq!(rows, vec!["0", "4", "8"]);
    let rows = fx.rows(
        "SELECT i_item_sk FROM item WHERE i_item_sk < 4
         EXCEPT
         SELECT i_item_sk FROM item WHERE i_category = 'cat0'
         ORDER BY i_item_sk",
    );
    assert_eq!(rows, vec!["1", "2", "3"]);
}

#[test]
fn scalar_subquery_end_to_end() {
    let fx = Fixture::new();
    let rows = fx.rows(
        "SELECT COUNT(*) FROM item
         WHERE i_item_sk > (SELECT AVG(i_item_sk) FROM item)",
    );
    // avg = 9.5; ids 10..19 → 10 rows.
    assert_eq!(rows, vec!["10"]);
}

#[test]
fn correlated_exists_end_to_end() {
    let fx = Fixture::new();
    // Items with at least one sale of quantity 7.
    let rows = fx.rows(
        "SELECT COUNT(*) FROM item
         WHERE EXISTS (SELECT 1 FROM store_sales
                       WHERE ss_item_sk = i_item_sk AND ss_quantity = 7)",
    );
    let n: i64 = rows[0].parse().unwrap();
    assert!(n > 0 && n <= 20, "got {n}");
}

#[test]
fn shared_work_reuses_subtrees() {
    let fx = Fixture::new();
    let sql = "SELECT a.c, b.c FROM
                 (SELECT COUNT(*) AS c FROM store_sales WHERE ss_quantity > 2) a,
                 (SELECT COUNT(*) AS c FROM store_sales WHERE ss_quantity > 2) b";
    let (out, trace) = fx.run(sql);
    assert_eq!(out.num_rows(), 1);
    assert_eq!(out.row(0).get(0), out.row(0).get(1));
    let mut reuse = 0;
    trace.visit(&mut |n| {
        if n.shared_reuse {
            reuse += 1;
        }
    });
    assert!(reuse >= 1, "one branch should be served from shared work");
    // Disabled shared work executes both branches.
    let conf = HiveConf::v3_1().with(|c| c.shared_work = false);
    let (_, t2) = fx.run_conf(sql, &conf);
    let mut reuse2 = 0;
    t2.visit(&mut |n| {
        if n.shared_reuse {
            reuse2 += 1;
        }
    });
    assert_eq!(reuse2, 0);
}

#[test]
fn semijoin_reducer_cuts_io() {
    let fx = Fixture::new();
    let sql = "SELECT SUM(ss_sales_price) FROM store_sales, item
               WHERE ss_item_sk = i_item_sk AND i_category = 'cat2'";
    let on = HiveConf::v3_1().with(|c| c.llap_enabled = false);
    let off = on.clone().with(|c| c.semijoin_reduction = false);
    let (a, _ta) = fx.run_conf(sql, &on);
    let (b, _tb) = fx.run_conf(sql, &off);
    assert_eq!(
        a.to_rows(),
        b.to_rows(),
        "reduction must not change results"
    );
}

#[test]
fn dpp_empty_build_side_reads_zero_fact_partitions() {
    let fx = Fixture::new();
    // Dimension table joined on the fact table's partition column; the
    // d_year = 1899 predicate matches none of its rows, so the dynamic
    // partition pruning build side comes back empty.
    fx.create_table(
        "date_dim",
        vec![
            Field::new("d_date_sk", DataType::Int),
            Field::new("d_year", DataType::Int),
        ],
        vec![],
    );
    fx.insert(
        "date_dim",
        (0..3)
            .map(|d| Row::new(vec![Value::Int(2450815 + d), Value::Int(1998 + d)]))
            .collect(),
        None,
    );
    // LLAP off so fs.stats() meters every read the query performs.
    let conf = HiveConf::v3_1().with(|c| c.llap_enabled = false);

    // Baseline: the I/O cost of one standalone dimension scan.
    let dim0 = fx.fs.stats().snapshot();
    fx.run_conf("SELECT d_date_sk FROM date_dim WHERE d_year = 1899", &conf);
    let dim = fx.fs.stats().snapshot().since(&dim0);
    assert!(dim.reads > 0, "dimension scan must itself do I/O");

    let sql = "SELECT SUM(ss_sales_price) FROM store_sales, date_dim
               WHERE ss_sold_date_sk = d_date_sk AND d_year = 1899";
    let before = fx.fs.stats().snapshot();
    let (out, _trace) = fx.run_conf(sql, &conf);
    let join = fx.fs.stats().snapshot().since(&before);

    // The join touches date_dim at most twice (reducer source + join
    // build side) and store_sales not at all: with the empty build side
    // the scan returns before even listing partition directories, so
    // every counter fits inside two standalone dimension scans.
    assert!(
        join.reads <= 2 * dim.reads,
        "fact partitions were read: join={join:?} dim={dim:?}"
    );
    assert!(
        join.bytes_read <= 2 * dim.bytes_read,
        "fact bytes were read: join={join:?} dim={dim:?}"
    );
    assert!(
        join.lists <= 2 * dim.lists,
        "fact directories were listed: join={join:?} dim={dim:?}"
    );

    // Pruning everything must still produce the same (empty-sum) answer
    // as the unreduced plan, which really does scan the partitions.
    let off = conf.clone().with(|c| c.semijoin_reduction = false);
    let before_off = fx.fs.stats().snapshot();
    let (out_off, _) = fx.run_conf(sql, &off);
    let join_off = fx.fs.stats().snapshot().since(&before_off);
    assert_eq!(out.to_rows(), out_off.to_rows());
    assert!(
        join_off.bytes_read > join.bytes_read,
        "unreduced plan should pay the fact-table I/O the pruned plan skipped"
    );
}
