//! Property tests on metastore invariants: transaction-manager snapshot
//! consistency under random commit/abort interleavings, the
//! `ValidWriteIdList` visibility algebra, and HyperLogLog accuracy.

use hive_common::{TxnId, Value, WriteId};
use hive_metastore::{HyperLogLog, TxnManager, TxnState, ValidWriteIdList};
use proptest::prelude::*;
use std::collections::BTreeSet;

const TABLE: &str = "db.t";

/// Random history: each step opens a txn that writes TABLE, then
/// commits (true) or aborts (false); interleaving is simulated by
/// deferring some decisions.
#[derive(Debug, Clone)]
struct Step {
    commit: bool,
    /// Decide this many previously-undecided transactions first.
    decide_backlog: u8,
}

fn steps() -> impl Strategy<Value = Vec<Step>> {
    proptest::collection::vec(
        (any::<bool>(), 0u8..3).prop_map(|(commit, decide_backlog)| Step {
            commit,
            decide_backlog,
        }),
        1..40,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// A snapshot taken at any point sees exactly the WriteIds of
    /// transactions committed before it — never open or aborted ones.
    #[test]
    fn snapshot_sees_exactly_committed_writes(history in steps()) {
        let mut tm = TxnManager::new();
        // (txn, wid, decided-as-commit)
        let mut pending: Vec<(TxnId, WriteId, bool)> = Vec::new();
        let mut committed: BTreeSet<WriteId> = BTreeSet::new();

        for step in &history {
            for _ in 0..step.decide_backlog {
                if let Some((txn, wid, commit)) = pending.pop() {
                    if commit {
                        tm.commit(txn).unwrap();
                        committed.insert(wid);
                    } else {
                        tm.abort(txn).unwrap();
                    }
                }
            }
            let txn = tm.open();
            let wid = tm.allocate_write_id(txn, TABLE).unwrap();
            pending.push((txn, wid, step.commit));

            // Snapshot mid-history: visibility must equal the committed set.
            let snap = tm.valid_txn_list();
            let wlist = tm.valid_write_ids(TABLE, &snap, None);
            for w in 1..=tm.table_write_hwm(TABLE).0 {
                let wid = WriteId(w);
                prop_assert_eq!(
                    wlist.is_visible(wid),
                    committed.contains(&wid),
                    "wid {} at hwm {}", w, wlist.high_watermark.0
                );
            }
        }
    }

    /// `all_visible(lo, hi)` agrees with per-id `is_visible` on every
    /// subrange, and `is_valid_base(n)` is monotone: once a base is
    /// invalid at n, every higher base is invalid too (same open set).
    #[test]
    fn write_id_list_algebra(
        hwm in 1u64..40,
        open in proptest::collection::btree_set(1u64..40, 0..6),
        aborted in proptest::collection::btree_set(1u64..40, 0..6),
    ) {
        let list = ValidWriteIdList {
            table: TABLE.to_string(),
            high_watermark: WriteId(hwm),
            open: open.iter().map(|&w| WriteId(w)).collect(),
            aborted: aborted.iter().map(|&w| WriteId(w)).collect(),
            own: None,
        };
        for lo in 1..=hwm {
            for hi in lo..=hwm {
                let want = (lo..=hi).all(|w| list.is_visible(WriteId(w)));
                prop_assert_eq!(list.all_visible(WriteId(lo), WriteId(hi)), want,
                    "range [{}, {}]", lo, hi);
            }
        }
        // min_open is the smallest open id.
        prop_assert_eq!(
            list.min_open(),
            open.iter().next().map(|&w| WriteId(w))
        );
        // Base validity: valid iff no open id at or below it.
        for n in 1..=hwm {
            let want = open.iter().all(|&o| o > n);
            prop_assert_eq!(list.is_valid_base(WriteId(n)), want, "base {}", n);
        }
    }

    /// The reader's own uncommitted write is always visible to itself.
    #[test]
    fn own_writes_always_visible(decided in steps()) {
        let mut tm = TxnManager::new();
        for step in &decided {
            let txn = tm.open();
            let wid = tm.allocate_write_id(txn, TABLE).unwrap();
            let snap = tm.valid_txn_list();
            let wlist = tm.valid_write_ids(TABLE, &snap, Some(txn));
            prop_assert!(wlist.is_visible(wid), "own wid {} invisible", wid.0);
            if step.commit {
                tm.commit(txn).unwrap();
            } else {
                tm.abort(txn).unwrap();
            }
            prop_assert_eq!(
                tm.state(txn),
                Some(if step.commit { TxnState::Committed } else { TxnState::Aborted })
            );
        }
    }

    /// HyperLogLog estimates distinct counts within its theoretical
    /// error envelope (p=12 → ~1.6% standard error; allow 6 sigma).
    #[test]
    fn hll_estimates_within_error_bounds(
        n in 1usize..20_000,
        seed in any::<u64>(),
    ) {
        let mut hll = HyperLogLog::new();
        for i in 0..n {
            // Distinct values derived from the seed; duplicates on
            // purpose every third insert must not inflate the count.
            let v = seed.wrapping_add(i as u64);
            hll.add(&Value::BigInt(v as i64));
            if i % 3 == 0 {
                hll.add(&Value::BigInt(v as i64));
            }
        }
        let est = hll.estimate() as f64;
        let err = (est - n as f64).abs() / n as f64;
        prop_assert!(err < 0.10, "n={} est={} err={:.3}", n, est, err);
    }

    /// Merging two sketches equals sketching the union.
    #[test]
    fn hll_merge_equals_union(
        a in proptest::collection::vec(any::<i64>(), 0..2000),
        b in proptest::collection::vec(any::<i64>(), 0..2000),
    ) {
        let mut ha = HyperLogLog::new();
        let mut hb = HyperLogLog::new();
        let mut hu = HyperLogLog::new();
        for v in &a {
            ha.add(&Value::BigInt(*v));
            hu.add(&Value::BigInt(*v));
        }
        for v in &b {
            hb.add(&Value::BigInt(*v));
            hu.add(&Value::BigInt(*v));
        }
        ha.merge(&hb);
        prop_assert_eq!(ha.estimate(), hu.estimate());
    }
}
