//! # hive-metastore
//!
//! The Hive Metastore (HMS): "a catalog for all data queryable by Hive"
//! (paper Section 2) plus the transaction and lock manager built on top
//! of it (Section 3.2).
//!
//! This crate keeps all state in-process behind [`Metastore`]. In the
//! paper HMS persists to an RDBMS through DataNucleus; that backend is
//! an implementation detail invisible to the rest of the system, so the
//! substitution does not change any behaviour the evaluation exercises
//! (see DESIGN.md).
//!
//! Subsystems:
//! * [`catalog`] — databases, tables, partitions, constraints, MV metadata.
//! * [`stats`] — additive table/column statistics; NDV uses a
//!   HyperLogLog++ sketch ([`hll::HyperLogLog`]) that merges without
//!   losing accuracy, exactly as §4.1 describes.
//! * [`txn`] — TxnId/WriteId allocation, snapshot generation
//!   ([`txn::ValidTxnList`], [`txn::ValidWriteIdList`]), write-set
//!   conflict detection (first-commit-wins).
//! * [`locks`] — shared/exclusive locks at table or partition granularity.
//! * [`compaction`] — the compaction request queue and its state machine.

pub mod catalog;
pub mod compaction;
pub mod histogram;
pub mod hll;
pub mod locks;
pub mod metastore;
pub mod stats;
pub mod txn;

pub use catalog::{
    Catalog, Constraint, Database, MaterializedViewInfo, PartitionInfo, Table, TableBuilder,
    TableType,
};
pub use compaction::{CompactionKind, CompactionRequest, CompactionState};
pub use histogram::{join_selectivity, Bucket, ColumnHistogram};
pub use hll::HyperLogLog;
pub use locks::{LockKey, LockManager, LockMode};
pub use metastore::Metastore;
pub use stats::{ColumnStatsMeta, TableStats};
pub use txn::{TxnManager, TxnState, ValidTxnList, ValidWriteIdList};
