//! The data catalog: databases, tables, partitions, constraints, and
//! materialized-view metadata.

use hive_common::{Field, HiveError, Result, Schema, Value};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// How a table is managed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TableType {
    /// Full-ACID managed table stored in base/delta layout.
    Managed,
    /// External table: plain files (or an external system via a storage
    /// handler); no ACID guarantees.
    External,
    /// A materialized view — "semantically enriched table" (§4.4).
    MaterializedView,
}

/// Declared integrity constraints. Hive does not enforce PK/FK/UNIQUE at
/// write time; they are *informational* and exploited by the optimizer's
/// MV rewriting (§4.4). NOT NULL is enforced (it lives on the Field).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Constraint {
    /// Primary key over the named columns.
    PrimaryKey(Vec<String>),
    /// Foreign key: `columns` reference `ref_table(ref_columns)`.
    ForeignKey {
        columns: Vec<String>,
        ref_table: String,
        ref_columns: Vec<String>,
    },
    /// Unique key over the named columns.
    Unique(Vec<String>),
}

/// One partition of a partitioned table: the partition-column values and
/// the directory its data lives in.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartitionInfo {
    /// Values of the partition columns, in partition-key order.
    pub values: Vec<Value>,
    /// DFS directory for this partition's data.
    pub location: String,
}

/// Metadata for a materialized view (§4.4).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MaterializedViewInfo {
    /// The defining query text.
    pub definition: String,
    /// Qualified names (`db.table`) of the source tables.
    pub source_tables: Vec<String>,
    /// Per-source-table high-watermark WriteId captured at the last
    /// (re)build — the snapshot the MV contents reflect.
    pub source_snapshots: BTreeMap<String, u64>,
    /// Wall-clock millis (UNIX epoch) of the last (re)build.
    pub last_rebuild_millis: u64,
    /// Allowed staleness window in millis; `None` means the view is only
    /// used for rewriting while fully fresh (the default lifecycle).
    pub staleness_window_millis: Option<u64>,
    /// Whether rewriting is enabled at all for this view.
    pub rewrite_enabled: bool,
}

/// A table (or materialized view) in the catalog.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    /// Database name.
    pub db: String,
    /// Table name.
    pub name: String,
    /// Data columns (excluding partition columns, like Hive).
    pub schema: Schema,
    /// Partition columns, declared via `PARTITIONED BY` (§3.1).
    pub partition_keys: Vec<Field>,
    /// Management type.
    pub table_type: TableType,
    /// Storage handler identifier for federated tables (§6.1), e.g.
    /// `"druid"` or `"jdbc"`. `None` for native tables.
    pub storage_handler: Option<String>,
    /// Free-form table properties (`TBLPROPERTIES`).
    pub properties: BTreeMap<String, String>,
    /// Declared constraints.
    pub constraints: Vec<Constraint>,
    /// Root DFS directory for the table.
    pub location: String,
    /// Registered partitions keyed by their rendered directory name
    /// (e.g. `sold_date_sk=17000`), ordered for deterministic listing.
    pub partitions: BTreeMap<String, PartitionInfo>,
    /// Materialized-view metadata (present iff `table_type` is
    /// `MaterializedView`).
    pub mv_info: Option<MaterializedViewInfo>,
}

impl Table {
    /// Fully qualified `db.name`.
    pub fn qualified_name(&self) -> String {
        format!("{}.{}", self.db, self.name)
    }

    /// The full logical schema: data columns then partition columns
    /// (partition columns are readable like ordinary columns).
    pub fn full_schema(&self) -> Schema {
        let mut fields = self.schema.fields().to_vec();
        fields.extend(self.partition_keys.iter().cloned());
        Schema::new(fields)
    }

    /// True for partitioned tables.
    pub fn is_partitioned(&self) -> bool {
        !self.partition_keys.is_empty()
    }

    /// True for tables with ACID semantics.
    pub fn is_acid(&self) -> bool {
        matches!(
            self.table_type,
            TableType::Managed | TableType::MaterializedView
        ) && self.storage_handler.is_none()
    }

    /// Index of a partition column within `partition_keys`, if `name`
    /// is one.
    pub fn partition_key_index(&self, name: &str) -> Option<usize> {
        let lname = name.to_ascii_lowercase();
        self.partition_keys.iter().position(|f| f.name == lname)
    }

    /// Render the directory name for a partition value vector, e.g.
    /// `sold_date_sk=17000` (single key) or `y=2018/m=3` (multi key).
    pub fn partition_dir_name(&self, values: &[Value]) -> String {
        self.partition_keys
            .iter()
            .zip(values)
            .map(|(k, v)| format!("{}={}", k.name, v))
            .collect::<Vec<_>>()
            .join("/")
    }

    /// Columns declared as a primary key, if any.
    pub fn primary_key(&self) -> Option<&[String]> {
        self.constraints.iter().find_map(|c| match c {
            Constraint::PrimaryKey(cols) => Some(cols.as_slice()),
            _ => None,
        })
    }
}

/// A database: a namespace of tables.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Database {
    /// Database name.
    pub name: String,
    /// Tables by (lower-case) name.
    pub tables: BTreeMap<String, Table>,
}

/// The whole catalog.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Catalog {
    databases: BTreeMap<String, Database>,
}

impl Default for Catalog {
    fn default() -> Self {
        Self::new()
    }
}

impl Catalog {
    /// A catalog containing only the `default` database.
    pub fn new() -> Self {
        let mut databases = BTreeMap::new();
        databases.insert(
            "default".to_string(),
            Database {
                name: "default".to_string(),
                tables: BTreeMap::new(),
            },
        );
        Catalog { databases }
    }

    /// Create a database.
    pub fn create_database(&mut self, name: &str) -> Result<()> {
        let lname = name.to_ascii_lowercase();
        if self.databases.contains_key(&lname) {
            return Err(HiveError::Catalog(format!("database exists: {name}")));
        }
        self.databases.insert(
            lname.clone(),
            Database {
                name: lname,
                tables: BTreeMap::new(),
            },
        );
        Ok(())
    }

    /// Drop a database (must be empty).
    pub fn drop_database(&mut self, name: &str) -> Result<()> {
        let lname = name.to_ascii_lowercase();
        let db = self
            .databases
            .get(&lname)
            .ok_or_else(|| HiveError::Catalog(format!("database not found: {name}")))?;
        if !db.tables.is_empty() {
            return Err(HiveError::Catalog(format!("database not empty: {name}")));
        }
        self.databases.remove(&lname);
        Ok(())
    }

    /// All database names.
    pub fn database_names(&self) -> Vec<String> {
        self.databases.keys().cloned().collect()
    }

    /// Look up a database.
    pub fn database(&self, name: &str) -> Result<&Database> {
        self.databases
            .get(&name.to_ascii_lowercase())
            .ok_or_else(|| HiveError::Catalog(format!("database not found: {name}")))
    }

    /// Register a table.
    pub fn create_table(&mut self, table: Table) -> Result<()> {
        let db = self
            .databases
            .get_mut(&table.db)
            .ok_or_else(|| HiveError::Catalog(format!("database not found: {}", table.db)))?;
        if db.tables.contains_key(&table.name) {
            return Err(HiveError::Catalog(format!(
                "table exists: {}",
                table.qualified_name()
            )));
        }
        db.tables.insert(table.name.clone(), table);
        Ok(())
    }

    /// Remove a table, returning its metadata.
    pub fn drop_table(&mut self, db: &str, name: &str) -> Result<Table> {
        let dbl = db.to_ascii_lowercase();
        let namel = name.to_ascii_lowercase();
        let d = self
            .databases
            .get_mut(&dbl)
            .ok_or_else(|| HiveError::Catalog(format!("database not found: {db}")))?;
        d.tables
            .remove(&namel)
            .ok_or_else(|| HiveError::Catalog(format!("table not found: {db}.{name}")))
    }

    /// Look up a table.
    pub fn table(&self, db: &str, name: &str) -> Result<&Table> {
        self.database(db)?
            .tables
            .get(&name.to_ascii_lowercase())
            .ok_or_else(|| HiveError::Catalog(format!("table not found: {db}.{name}")))
    }

    /// Mutable table lookup.
    pub fn table_mut(&mut self, db: &str, name: &str) -> Result<&mut Table> {
        self.databases
            .get_mut(&db.to_ascii_lowercase())
            .ok_or_else(|| HiveError::Catalog(format!("database not found: {db}")))?
            .tables
            .get_mut(&name.to_ascii_lowercase())
            .ok_or_else(|| HiveError::Catalog(format!("table not found: {db}.{name}")))
    }

    /// All tables in a database.
    pub fn tables_in(&self, db: &str) -> Result<Vec<&Table>> {
        Ok(self.database(db)?.tables.values().collect())
    }

    /// All materialized views across all databases whose rewriting is
    /// enabled (candidates for §4.4 rewriting).
    pub fn rewrite_enabled_views(&self) -> Vec<&Table> {
        self.databases
            .values()
            .flat_map(|d| d.tables.values())
            .filter(|t| {
                t.table_type == TableType::MaterializedView
                    && t.mv_info.as_ref().is_some_and(|m| m.rewrite_enabled)
            })
            .collect()
    }
}

/// Builder for [`Table`], keeping construction readable at call sites.
#[derive(Debug, Clone)]
pub struct TableBuilder {
    table: Table,
}

impl TableBuilder {
    /// Start building a managed table `db.name` with data columns.
    pub fn new(db: &str, name: &str, schema: Schema) -> Self {
        let db = db.to_ascii_lowercase();
        let name = name.to_ascii_lowercase();
        let location = format!("/warehouse/{db}/{name}");
        TableBuilder {
            table: Table {
                db,
                name,
                schema,
                partition_keys: Vec::new(),
                table_type: TableType::Managed,
                storage_handler: None,
                properties: BTreeMap::new(),
                constraints: Vec::new(),
                location,
                partitions: BTreeMap::new(),
                mv_info: None,
            },
        }
    }

    /// Declare partition columns.
    pub fn partitioned_by(mut self, keys: Vec<Field>) -> Self {
        self.table.partition_keys = keys;
        self
    }

    /// Set the table type.
    pub fn table_type(mut self, t: TableType) -> Self {
        self.table.table_type = t;
        self
    }

    /// Attach a storage handler (federated table).
    pub fn stored_by(mut self, handler: &str) -> Self {
        self.table.storage_handler = Some(handler.to_string());
        self.table.table_type = TableType::External;
        self
    }

    /// Add a table property.
    pub fn property(mut self, k: &str, v: &str) -> Self {
        self.table.properties.insert(k.to_string(), v.to_string());
        self
    }

    /// Add a constraint.
    pub fn constraint(mut self, c: Constraint) -> Self {
        self.table.constraints.push(c);
        self
    }

    /// Attach materialized-view metadata.
    pub fn mv_info(mut self, info: MaterializedViewInfo) -> Self {
        self.table.mv_info = Some(info);
        self.table.table_type = TableType::MaterializedView;
        self
    }

    /// Finish.
    pub fn build(self) -> Table {
        self.table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hive_common::DataType;

    fn sample_table() -> Table {
        TableBuilder::new(
            "default",
            "store_sales",
            Schema::new(vec![
                Field::new("item_sk", DataType::Int),
                Field::new("price", DataType::Decimal(7, 2)),
            ]),
        )
        .partitioned_by(vec![Field::new("sold_date_sk", DataType::Int)])
        .constraint(Constraint::PrimaryKey(vec!["item_sk".into()]))
        .build()
    }

    #[test]
    fn create_lookup_drop() {
        let mut c = Catalog::new();
        c.create_table(sample_table()).unwrap();
        let t = c.table("default", "STORE_SALES").unwrap();
        assert_eq!(t.qualified_name(), "default.store_sales");
        assert!(c.create_table(sample_table()).is_err());
        c.drop_table("default", "store_sales").unwrap();
        assert!(c.table("default", "store_sales").is_err());
    }

    #[test]
    fn databases() {
        let mut c = Catalog::new();
        c.create_database("tpcds").unwrap();
        assert!(c.create_database("TPCDS").is_err());
        assert!(c.drop_database("tpcds").is_ok());
        assert!(c.database("tpcds").is_err());
    }

    #[test]
    fn full_schema_appends_partition_keys() {
        let t = sample_table();
        let fs = t.full_schema();
        assert_eq!(fs.names(), vec!["item_sk", "price", "sold_date_sk"]);
        assert!(t.is_partitioned());
        assert_eq!(t.partition_key_index("sold_date_sk"), Some(0));
        assert_eq!(
            t.partition_dir_name(&[Value::Int(17000)]),
            "sold_date_sk=17000"
        );
    }

    #[test]
    fn constraints_queryable() {
        let t = sample_table();
        assert_eq!(t.primary_key(), Some(&["item_sk".to_string()][..]));
    }

    #[test]
    fn mv_listing() {
        let mut c = Catalog::new();
        let mv = TableBuilder::new(
            "default",
            "mat_view",
            Schema::new(vec![Field::new("s", DataType::Double)]),
        )
        .mv_info(MaterializedViewInfo {
            definition: "SELECT ...".into(),
            source_tables: vec!["default.store_sales".into()],
            source_snapshots: BTreeMap::new(),
            last_rebuild_millis: 0,
            staleness_window_millis: None,
            rewrite_enabled: true,
        })
        .build();
        c.create_table(mv).unwrap();
        c.create_table(sample_table()).unwrap();
        assert_eq!(c.rewrite_enabled_views().len(), 1);
    }
}
