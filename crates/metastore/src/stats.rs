//! Table and column statistics stored in HMS and served to the
//! optimizer (paper §4.1). Statistics are additive: inserts and
//! per-partition stats merge onto existing values without rescanning.

use crate::hll::HyperLogLog;
use hive_common::{ColumnVector, Value, VectorBatch};
use serde::{Deserialize, Serialize};

/// Statistics for one column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct ColumnStatsMeta {
    /// Minimum non-null value.
    pub min: Option<Value>,
    /// Maximum non-null value.
    pub max: Option<Value>,
    /// Number of NULLs.
    pub null_count: u64,
    /// NDV sketch (merged losslessly across partitions/inserts).
    pub ndv: HyperLogLog,
}

impl ColumnStatsMeta {
    /// Estimated number of distinct values.
    pub fn ndv_estimate(&self) -> u64 {
        self.ndv.estimate()
    }

    /// Fold one value in.
    pub fn update(&mut self, v: &Value) {
        if v.is_null() {
            self.null_count += 1;
            return;
        }
        self.ndv.add(v);
        match &self.min {
            None => self.min = Some(v.clone()),
            Some(m) if v.sql_cmp(m) == Some(std::cmp::Ordering::Less) => self.min = Some(v.clone()),
            _ => {}
        }
        match &self.max {
            None => self.max = Some(v.clone()),
            Some(m) if v.sql_cmp(m) == Some(std::cmp::Ordering::Greater) => {
                self.max = Some(v.clone())
            }
            _ => {}
        }
    }

    /// Fold a whole column vector in.
    pub fn update_column(&mut self, col: &ColumnVector) {
        for i in 0..col.len() {
            self.update(&col.get(i));
        }
    }

    /// Additive merge with stats from another data slice.
    pub fn merge(&mut self, other: &ColumnStatsMeta) {
        self.null_count += other.null_count;
        self.ndv.merge(&other.ndv);
        for v in [&other.min, &other.max].into_iter().flatten() {
            match &self.min {
                None => self.min = Some(v.clone()),
                Some(m) if v.sql_cmp(m) == Some(std::cmp::Ordering::Less) => {
                    self.min = Some(v.clone())
                }
                _ => {}
            }
            match &self.max {
                None => self.max = Some(v.clone()),
                Some(m) if v.sql_cmp(m) == Some(std::cmp::Ordering::Greater) => {
                    self.max = Some(v.clone())
                }
                _ => {}
            }
        }
    }
}

/// Statistics for one table (or one partition of it).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct TableStats {
    /// Total row count.
    pub row_count: u64,
    /// Per-column statistics, aligned with the table schema.
    pub columns: Vec<ColumnStatsMeta>,
}

impl TableStats {
    /// Empty stats for `ncols` columns.
    pub fn new(ncols: usize) -> Self {
        TableStats {
            row_count: 0,
            columns: vec![ColumnStatsMeta::default(); ncols],
        }
    }

    /// Fold a batch of new data in (the INSERT path).
    pub fn update_batch(&mut self, batch: &VectorBatch) {
        self.row_count += batch.num_rows() as u64;
        for (cs, col) in self.columns.iter_mut().zip(batch.columns()) {
            cs.update_column(col);
        }
    }

    /// Additive merge (cross-partition rollup).
    pub fn merge(&mut self, other: &TableStats) {
        self.row_count += other.row_count;
        if self.columns.len() < other.columns.len() {
            self.columns
                .resize(other.columns.len(), ColumnStatsMeta::default());
        }
        for (a, b) in self.columns.iter_mut().zip(&other.columns) {
            a.merge(b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hive_common::{DataType, Field, Row, Schema};

    fn batch(vals: &[(i32, &str)]) -> VectorBatch {
        let schema = Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("s", DataType::String),
        ]);
        let rows: Vec<Row> = vals
            .iter()
            .map(|(k, s)| {
                Row::new(vec![
                    Value::Int(*k),
                    if s.is_empty() {
                        Value::Null
                    } else {
                        Value::String((*s).into())
                    },
                ])
            })
            .collect();
        VectorBatch::from_rows(&schema, &rows).unwrap()
    }

    #[test]
    fn update_batch_tracks_everything() {
        let mut st = TableStats::new(2);
        st.update_batch(&batch(&[(3, "a"), (1, "b"), (7, ""), (1, "a")]));
        assert_eq!(st.row_count, 4);
        assert_eq!(st.columns[0].min, Some(Value::Int(1)));
        assert_eq!(st.columns[0].max, Some(Value::Int(7)));
        assert_eq!(st.columns[0].ndv_estimate(), 3);
        assert_eq!(st.columns[1].null_count, 1);
        assert_eq!(st.columns[1].ndv_estimate(), 2);
    }

    #[test]
    fn merge_is_additive() {
        let mut a = TableStats::new(2);
        a.update_batch(&batch(&[(1, "x"), (2, "y")]));
        let mut b = TableStats::new(2);
        b.update_batch(&batch(&[(2, "z"), (9, "")]));
        let mut merged = a.clone();
        merged.merge(&b);
        // Compare with stats computed over the union.
        let mut whole = TableStats::new(2);
        whole.update_batch(&batch(&[(1, "x"), (2, "y"), (2, "z"), (9, "")]));
        assert_eq!(merged.row_count, whole.row_count);
        assert_eq!(merged.columns[0].min, whole.columns[0].min);
        assert_eq!(merged.columns[0].max, whole.columns[0].max);
        assert_eq!(
            merged.columns[0].ndv_estimate(),
            whole.columns[0].ndv_estimate()
        );
        assert_eq!(merged.columns[1].null_count, whole.columns[1].null_count);
    }
}
