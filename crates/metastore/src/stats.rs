//! Table and column statistics stored in HMS and served to the
//! optimizer (paper §4.1). Statistics are additive: inserts and
//! per-partition stats merge onto existing values without rescanning.

use crate::histogram::ColumnHistogram;
use crate::hll::HyperLogLog;
use hive_common::{hash, BitSet, ColumnVector, Value, VectorBatch};
use serde::{Deserialize, Serialize};

/// Statistics for one column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct ColumnStatsMeta {
    /// Minimum non-null value.
    pub min: Option<Value>,
    /// Maximum non-null value.
    pub max: Option<Value>,
    /// Number of NULLs.
    pub null_count: u64,
    /// NDV sketch (merged losslessly across partitions/inserts).
    pub ndv: HyperLogLog,
    /// Seeded equi-depth histogram over the column's numeric values
    /// (merged across partitions/inserts like the NDV sketch).
    pub histogram: ColumnHistogram,
}

impl ColumnStatsMeta {
    /// Estimated number of distinct values.
    pub fn ndv_estimate(&self) -> u64 {
        self.ndv.estimate()
    }

    /// Fold one value in.
    pub fn update(&mut self, v: &Value) {
        if v.is_null() {
            self.null_count += 1;
            return;
        }
        self.histogram.update(v);
        self.ndv.add(v);
        self.fold_min_max(v);
    }

    /// Widen min/max to cover `v` (the per-value comparator shared by
    /// `update`, `merge` and the vectorized column paths).
    fn fold_min_max(&mut self, v: &Value) {
        match &self.min {
            None => self.min = Some(v.clone()),
            Some(m) if v.sql_cmp(m) == Some(std::cmp::Ordering::Less) => self.min = Some(v.clone()),
            _ => {}
        }
        match &self.max {
            None => self.max = Some(v.clone()),
            Some(m) if v.sql_cmp(m) == Some(std::cmp::Ordering::Greater) => {
                self.max = Some(v.clone())
            }
            _ => {}
        }
    }

    /// Fold a whole column vector in.
    ///
    /// Byte-parity contract: the resulting stats are identical to
    /// calling [`ColumnStatsMeta::update`] on `col.get(i)` for every
    /// row in order — but without constructing (or cloning) a `Value`
    /// per row. Strings fold through [`HyperLogLog::add_str`] with
    /// `&str` min/max tracking; dictionary columns fold each *present*
    /// dictionary entry once (duplicate rows cannot move the sketch's
    /// registers, min/max, or the histogram — strings are invisible to
    /// it — so per-entry folding is state-identical to per-row);
    /// numeric columns reuse one canonical-encoding buffer across the
    /// column and feed the histogram from the primitive lane.
    pub fn update_column(&mut self, col: &ColumnVector) {
        match col {
            ColumnVector::Dict { codes, dict, nulls } => {
                let mut present = vec![false; dict.len()];
                match nulls {
                    Some(n) => {
                        for (i, &c) in codes.iter().enumerate() {
                            if n.get(i) {
                                self.null_count += 1;
                            } else {
                                present[c as usize] = true;
                            }
                        }
                    }
                    None => {
                        for &c in codes {
                            present[c as usize] = true;
                        }
                    }
                }
                let mut lo: Option<&String> = None;
                let mut hi: Option<&String> = None;
                for (c, s) in dict.iter().enumerate() {
                    if !present[c] {
                        continue;
                    }
                    self.ndv.add_str(s);
                    if lo.is_none_or(|m| s < m) {
                        lo = Some(s);
                    }
                    if hi.is_none_or(|m| s > m) {
                        hi = Some(s);
                    }
                }
                if let Some(s) = lo {
                    self.fold_min_max(&Value::String(s.clone()));
                }
                if let Some(s) = hi {
                    self.fold_min_max(&Value::String(s.clone()));
                }
            }
            ColumnVector::Str(vals, nulls) => {
                let mut buf = Vec::with_capacity(32);
                let mut lo: Option<&String> = None;
                let mut hi: Option<&String> = None;
                for (i, s) in vals.iter().enumerate() {
                    if nulls.as_ref().is_some_and(|n| n.get(i)) {
                        self.null_count += 1;
                        continue;
                    }
                    buf.clear();
                    hash::encode_str(s.as_bytes(), &mut buf);
                    self.ndv.add_bytes(&buf);
                    if lo.is_none_or(|m| s < m) {
                        lo = Some(s);
                    }
                    if hi.is_none_or(|m| s > m) {
                        hi = Some(s);
                    }
                }
                if let Some(s) = lo {
                    self.fold_min_max(&Value::String(s.clone()));
                }
                if let Some(s) = hi {
                    self.fold_min_max(&Value::String(s.clone()));
                }
            }
            ColumnVector::Boolean(vals, nulls) => self.update_numeric(
                vals,
                nulls.as_ref(),
                Value::Boolean,
                |b, buf| {
                    buf.push(hash::TAG_BOOL);
                    buf.push(b as u8);
                },
                |b| b as u8 as f64,
            ),
            ColumnVector::Int(vals, nulls) => self.update_numeric(
                vals,
                nulls.as_ref(),
                Value::Int,
                |v, buf| hash::encode_i64(v as i64, buf),
                |v| v as f64,
            ),
            ColumnVector::BigInt(vals, nulls) => {
                self.update_numeric(vals, nulls.as_ref(), Value::BigInt, hash::encode_i64, |v| {
                    v as f64
                })
            }
            ColumnVector::Double(vals, nulls) => {
                self.update_numeric(vals, nulls.as_ref(), Value::Double, hash::encode_f64, |v| v)
            }
            ColumnVector::Decimal(vals, scale, nulls) => {
                let s = *scale;
                self.update_numeric(
                    vals,
                    nulls.as_ref(),
                    |u| Value::Decimal(u, s),
                    |u, buf| hash::encode_decimal(u, s, buf),
                    |u| u as f64 / 10f64.powi(s as i32),
                )
            }
            ColumnVector::Date(vals, nulls) => {
                self.update_numeric(vals, nulls.as_ref(), Value::Date, hash::encode_date, |v| {
                    v as f64
                })
            }
            ColumnVector::Timestamp(vals, nulls) => self.update_numeric(
                vals,
                nulls.as_ref(),
                Value::Timestamp,
                hash::encode_timestamp,
                |v| v as f64,
            ),
        }
    }

    /// Shared numeric-lane fold: bitmap null check, histogram from the
    /// primitive, NDV via a reused canonical-encoding buffer, min/max
    /// through the same `sql_cmp` fold as the per-value path (stack
    /// `Value`s — no heap traffic for numeric variants).
    fn update_numeric<T: Copy>(
        &mut self,
        vals: &[T],
        nulls: Option<&BitSet>,
        to_value: impl Fn(T) -> Value,
        encode: impl Fn(T, &mut Vec<u8>),
        to_f64: impl Fn(T) -> f64,
    ) {
        let mut buf = Vec::with_capacity(16);
        for (i, &x) in vals.iter().enumerate() {
            if nulls.is_some_and(|n| n.get(i)) {
                self.null_count += 1;
                continue;
            }
            self.histogram.update_f64(to_f64(x));
            buf.clear();
            encode(x, &mut buf);
            self.ndv.add_bytes(&buf);
            self.fold_min_max(&to_value(x));
        }
    }

    /// Additive merge with stats from another data slice.
    pub fn merge(&mut self, other: &ColumnStatsMeta) {
        self.null_count += other.null_count;
        self.ndv.merge(&other.ndv);
        self.histogram.merge(&other.histogram);
        for v in [&other.min, &other.max].into_iter().flatten() {
            self.fold_min_max(v);
        }
    }
}

/// Statistics for one table (or one partition of it).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct TableStats {
    /// Total row count.
    pub row_count: u64,
    /// Per-column statistics, aligned with the table schema.
    pub columns: Vec<ColumnStatsMeta>,
}

impl TableStats {
    /// Empty stats for `ncols` columns.
    pub fn new(ncols: usize) -> Self {
        TableStats {
            row_count: 0,
            columns: vec![ColumnStatsMeta::default(); ncols],
        }
    }

    /// Fold a batch of new data in (the INSERT path).
    pub fn update_batch(&mut self, batch: &VectorBatch) {
        self.row_count += batch.num_rows() as u64;
        for (cs, col) in self.columns.iter_mut().zip(batch.columns()) {
            cs.update_column(col);
        }
    }

    /// Additive merge (cross-partition rollup).
    pub fn merge(&mut self, other: &TableStats) {
        self.row_count += other.row_count;
        if self.columns.len() < other.columns.len() {
            self.columns
                .resize(other.columns.len(), ColumnStatsMeta::default());
        }
        for (a, b) in self.columns.iter_mut().zip(&other.columns) {
            a.merge(b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hive_common::{DataType, Field, Row, Schema};

    fn batch(vals: &[(i32, &str)]) -> VectorBatch {
        let schema = Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("s", DataType::String),
        ]);
        let rows: Vec<Row> = vals
            .iter()
            .map(|(k, s)| {
                Row::new(vec![
                    Value::Int(*k),
                    if s.is_empty() {
                        Value::Null
                    } else {
                        Value::String((*s).into())
                    },
                ])
            })
            .collect();
        VectorBatch::from_rows(&schema, &rows).unwrap()
    }

    #[test]
    fn update_batch_tracks_everything() {
        let mut st = TableStats::new(2);
        st.update_batch(&batch(&[(3, "a"), (1, "b"), (7, ""), (1, "a")]));
        assert_eq!(st.row_count, 4);
        assert_eq!(st.columns[0].min, Some(Value::Int(1)));
        assert_eq!(st.columns[0].max, Some(Value::Int(7)));
        assert_eq!(st.columns[0].ndv_estimate(), 3);
        assert_eq!(st.columns[1].null_count, 1);
        assert_eq!(st.columns[1].ndv_estimate(), 2);
    }

    /// Per-value oracle for the parity test below: the exact loop
    /// `update_column` replaced.
    fn update_column_per_value(cs: &mut ColumnStatsMeta, col: &ColumnVector) {
        for i in 0..col.len() {
            cs.update(&col.get(i));
        }
    }

    #[test]
    fn vectorized_update_column_matches_per_value_path() {
        use hive_common::BitSet;
        use std::sync::Arc;

        let mut nulls = BitSet::new(6);
        nulls.set(2);
        nulls.set(5);
        let dict = Arc::new(vec![
            "beta".to_string(),
            "alpha".to_string(),
            "gamma".to_string(),
            "alpha".to_string(), // duplicate entry collapses in NDV
        ]);
        let cols = vec![
            ColumnVector::Int(vec![3, 1, 0, 7, 1, 0], Some(nulls.clone())),
            ColumnVector::BigInt(vec![9, -2, 0, 9, 5, 0], Some(nulls.clone())),
            ColumnVector::Double(vec![1.5, 2.0, 0.0, -3.25, 2.0, 0.0], Some(nulls.clone())),
            ColumnVector::Decimal(vec![125, -50, 0, 125, 300, 0], 2, Some(nulls.clone())),
            ColumnVector::Boolean(
                vec![true, false, false, true, true, false],
                Some(nulls.clone()),
            ),
            ColumnVector::Date(vec![10, 0, 0, -4, 10, 0], Some(nulls.clone())),
            ColumnVector::Timestamp(vec![86_400, 0, 0, 7, 86_400, 0], Some(nulls.clone())),
            ColumnVector::Str(
                vec![
                    "m".into(),
                    "a".into(),
                    String::new(),
                    "z".into(),
                    "a".into(),
                    String::new(),
                ],
                Some(nulls.clone()),
            ),
            ColumnVector::Dict {
                codes: vec![0, 1, 0, 2, 3, 0],
                dict,
                nulls: Some(nulls),
            },
            // No null bitmap at all.
            ColumnVector::Int(vec![5, 5, 5], None),
        ];
        for col in &cols {
            let mut vectorized = ColumnStatsMeta::default();
            vectorized.update_column(col);
            let mut oracle = ColumnStatsMeta::default();
            update_column_per_value(&mut oracle, col);
            assert_eq!(
                vectorized,
                oracle,
                "vectorized path diverged on {:?}",
                col.data_type()
            );
        }
    }

    #[test]
    fn histogram_rides_along_with_stats() {
        let mut st = TableStats::new(2);
        st.update_batch(&batch(&[(3, "a"), (1, "b"), (7, ""), (1, "a")]));
        // Numeric column feeds the histogram; string column does not.
        assert_eq!(st.columns[0].histogram.total_rows(), 4);
        assert!(st.columns[1].histogram.is_empty());
    }

    #[test]
    fn merge_is_additive() {
        let mut a = TableStats::new(2);
        a.update_batch(&batch(&[(1, "x"), (2, "y")]));
        let mut b = TableStats::new(2);
        b.update_batch(&batch(&[(2, "z"), (9, "")]));
        let mut merged = a.clone();
        merged.merge(&b);
        // Compare with stats computed over the union.
        let mut whole = TableStats::new(2);
        whole.update_batch(&batch(&[(1, "x"), (2, "y"), (2, "z"), (9, "")]));
        assert_eq!(merged.row_count, whole.row_count);
        assert_eq!(merged.columns[0].min, whole.columns[0].min);
        assert_eq!(merged.columns[0].max, whole.columns[0].max);
        assert_eq!(
            merged.columns[0].ndv_estimate(),
            whole.columns[0].ndv_estimate()
        );
        assert_eq!(merged.columns[1].null_count, whole.columns[1].null_count);
    }
}
