//! Shared/exclusive lock manager at table or partition granularity.
//!
//! Per the paper (§3.2): "For partitioned tables the lock granularity is
//! a partition, while the full table needs to be locked for unpartitioned
//! tables. HS2 only needs to obtain exclusive locks for operations that
//! disrupt readers and writers, such as DROP PARTITION or DROP TABLE.
//! All other common operations just acquire shared locks." Updates and
//! deletes use *optimistic* conflict resolution (handled in [`crate::txn`]),
//! not exclusive locks.

use hive_common::{HiveError, Result, TxnId};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// What a lock protects.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LockKey {
    /// Qualified table name `db.table`.
    pub table: String,
    /// Partition directory name, or `None` for whole-table locks.
    pub partition: Option<String>,
}

impl LockKey {
    /// Whole-table lock key.
    pub fn table(table: impl Into<String>) -> Self {
        LockKey {
            table: table.into(),
            partition: None,
        }
    }

    /// Single-partition lock key.
    pub fn partition(table: impl Into<String>, part: impl Into<String>) -> Self {
        LockKey {
            table: table.into(),
            partition: Some(part.into()),
        }
    }

    /// Do two keys guard overlapping data? A table-level key overlaps
    /// every partition of the same table.
    fn overlaps(&self, other: &LockKey) -> bool {
        self.table == other.table
            && match (&self.partition, &other.partition) {
                (Some(a), Some(b)) => a == b,
                _ => true,
            }
    }
}

impl fmt::Display for LockKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.partition {
            Some(p) => write!(f, "{}/{p}", self.table),
            None => write!(f, "{}", self.table),
        }
    }
}

/// Lock strength.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode {
    /// Compatible with other shared locks.
    Shared,
    /// Incompatible with everything else.
    Exclusive,
}

#[derive(Debug, Default)]
struct Held {
    shared: HashSet<TxnId>,
    exclusive: Option<TxnId>,
}

/// The lock table. Non-blocking: acquisition either succeeds or returns
/// a [`HiveError::Lock`] immediately (callers retry or abort).
#[derive(Debug, Default)]
pub struct LockManager {
    locks: HashMap<LockKey, Held>,
    by_txn: HashMap<TxnId, Vec<(LockKey, LockMode)>>,
}

impl LockManager {
    /// An empty lock table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Try to acquire a lock for `txn`. Re-acquiring a held lock is a
    /// no-op; a shared→exclusive upgrade succeeds only if `txn` is the
    /// sole holder.
    pub fn acquire(&mut self, txn: TxnId, key: LockKey, mode: LockMode) -> Result<()> {
        // Conflict scan: any overlapping key with an incompatible holder.
        for (other_key, held) in &self.locks {
            if !other_key.overlaps(&key) {
                continue;
            }
            if let Some(owner) = held.exclusive {
                if owner != txn {
                    return Err(HiveError::Lock(format!(
                        "{key} is exclusively locked by txn {owner}"
                    )));
                }
            }
            if mode == LockMode::Exclusive && held.shared.iter().any(|&t| t != txn) {
                return Err(HiveError::Lock(format!(
                    "{key} has shared holders blocking exclusive lock"
                )));
            }
        }
        let held = self.locks.entry(key.clone()).or_default();
        match mode {
            LockMode::Shared => {
                held.shared.insert(txn);
            }
            LockMode::Exclusive => {
                held.exclusive = Some(txn);
                held.shared.remove(&txn); // upgrade
            }
        }
        self.by_txn.entry(txn).or_default().push((key, mode));
        Ok(())
    }

    /// Release every lock held by `txn` (commit/abort path).
    pub fn release_all(&mut self, txn: TxnId) {
        if let Some(keys) = self.by_txn.remove(&txn) {
            for (key, _) in keys {
                if let Some(held) = self.locks.get_mut(&key) {
                    held.shared.remove(&txn);
                    if held.exclusive == Some(txn) {
                        held.exclusive = None;
                    }
                    if held.shared.is_empty() && held.exclusive.is_none() {
                        self.locks.remove(&key);
                    }
                }
            }
        }
    }

    /// Number of live lock entries (diagnostics).
    pub fn len(&self) -> usize {
        self.locks.len()
    }

    /// True when no locks are held.
    pub fn is_empty(&self) -> bool {
        self.locks.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_locks_are_compatible() {
        let mut lm = LockManager::new();
        let k = LockKey::table("db.t");
        lm.acquire(TxnId(1), k.clone(), LockMode::Shared).unwrap();
        lm.acquire(TxnId(2), k.clone(), LockMode::Shared).unwrap();
        assert!(lm
            .acquire(TxnId(3), k.clone(), LockMode::Exclusive)
            .is_err());
        lm.release_all(TxnId(1));
        lm.release_all(TxnId(2));
        lm.acquire(TxnId(3), k, LockMode::Exclusive).unwrap();
    }

    #[test]
    fn exclusive_blocks_everything() {
        let mut lm = LockManager::new();
        let k = LockKey::table("db.t");
        lm.acquire(TxnId(1), k.clone(), LockMode::Exclusive)
            .unwrap();
        assert!(lm.acquire(TxnId(2), k.clone(), LockMode::Shared).is_err());
        assert!(lm
            .acquire(TxnId(2), k.clone(), LockMode::Exclusive)
            .is_err());
        // Owner can re-acquire.
        lm.acquire(TxnId(1), k.clone(), LockMode::Shared).unwrap();
        lm.release_all(TxnId(1));
        assert!(lm.is_empty());
    }

    #[test]
    fn table_lock_overlaps_partitions() {
        let mut lm = LockManager::new();
        lm.acquire(
            TxnId(1),
            LockKey::partition("db.t", "d=1"),
            LockMode::Shared,
        )
        .unwrap();
        // Exclusive on the whole table conflicts with the partition lock.
        assert!(lm
            .acquire(TxnId(2), LockKey::table("db.t"), LockMode::Exclusive)
            .is_err());
        // But a different partition's shared lock is fine.
        lm.acquire(
            TxnId(2),
            LockKey::partition("db.t", "d=2"),
            LockMode::Shared,
        )
        .unwrap();
        // Exclusive on a third partition is fine too.
        lm.acquire(
            TxnId(3),
            LockKey::partition("db.t", "d=3"),
            LockMode::Exclusive,
        )
        .unwrap();
    }

    #[test]
    fn upgrade_when_sole_holder() {
        let mut lm = LockManager::new();
        let k = LockKey::table("db.t");
        lm.acquire(TxnId(1), k.clone(), LockMode::Shared).unwrap();
        lm.acquire(TxnId(1), k.clone(), LockMode::Exclusive)
            .unwrap();
        assert!(lm.acquire(TxnId(2), k, LockMode::Shared).is_err());
    }

    #[test]
    fn different_tables_independent() {
        let mut lm = LockManager::new();
        lm.acquire(TxnId(1), LockKey::table("db.a"), LockMode::Exclusive)
            .unwrap();
        lm.acquire(TxnId(2), LockKey::table("db.b"), LockMode::Exclusive)
            .unwrap();
        assert_eq!(lm.len(), 2);
    }
}
