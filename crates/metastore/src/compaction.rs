//! The compaction request queue and its state machine (paper §3.2).
//!
//! Compaction requests are enqueued automatically by the server when
//! thresholds are surpassed (delta count, delta/base row ratio) or
//! manually. The *cleaning* phase is separated from the *merging* phase
//! so ongoing queries finish before obsolete files are removed.

use std::collections::VecDeque;

/// Minor merges deltas with deltas; major merges deltas into a new base
/// (deleting history).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompactionKind {
    Minor,
    Major,
}

/// Lifecycle of a compaction request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompactionState {
    /// Queued, not yet picked up.
    Initiated,
    /// A worker is merging files.
    Working,
    /// Merge finished and published; obsolete directories await the
    /// cleaner (readers may still be using them).
    ReadyForCleaning,
    /// Fully done.
    Succeeded,
    /// The attempt failed.
    Failed,
}

/// One compaction request.
#[derive(Debug, Clone, PartialEq)]
pub struct CompactionRequest {
    /// Queue-assigned id.
    pub id: u64,
    /// Qualified table name.
    pub table: String,
    /// Partition directory name, `None` for unpartitioned tables.
    pub partition: Option<String>,
    /// Minor or major.
    pub kind: CompactionKind,
    /// Current state.
    pub state: CompactionState,
}

/// FIFO compaction queue with per-target dedup.
#[derive(Debug, Default)]
pub struct CompactionQueue {
    next_id: u64,
    requests: VecDeque<CompactionRequest>,
}

impl CompactionQueue {
    /// Empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueue a request unless an active one for the same target is
    /// already pending/working. Returns the request id, or `None` when
    /// deduplicated.
    pub fn submit(
        &mut self,
        table: &str,
        partition: Option<String>,
        kind: CompactionKind,
    ) -> Option<u64> {
        let duplicate = self.requests.iter().any(|r| {
            r.table == table
                && r.partition == partition
                && matches!(
                    r.state,
                    CompactionState::Initiated | CompactionState::Working
                )
                && (r.kind == kind || r.kind == CompactionKind::Major)
        });
        if duplicate {
            return None;
        }
        self.next_id += 1;
        let id = self.next_id;
        self.requests.push_back(CompactionRequest {
            id,
            table: table.to_string(),
            partition,
            kind,
            state: CompactionState::Initiated,
        });
        Some(id)
    }

    /// Claim the next initiated request (marks it `Working`).
    pub fn next_initiated(&mut self) -> Option<CompactionRequest> {
        let req = self
            .requests
            .iter_mut()
            .find(|r| r.state == CompactionState::Initiated)?;
        req.state = CompactionState::Working;
        Some(req.clone())
    }

    /// Transition a request's state.
    pub fn set_state(&mut self, id: u64, state: CompactionState) -> bool {
        if let Some(r) = self.requests.iter_mut().find(|r| r.id == id) {
            r.state = state;
            true
        } else {
            false
        }
    }

    /// All requests currently in the given state.
    pub fn in_state(&self, state: CompactionState) -> Vec<CompactionRequest> {
        self.requests
            .iter()
            .filter(|r| r.state == state)
            .cloned()
            .collect()
    }

    /// Full queue contents (diagnostics / SHOW COMPACTIONS).
    pub fn all(&self) -> Vec<CompactionRequest> {
        self.requests.iter().cloned().collect()
    }

    /// Drop completed entries older than the queue cares to keep.
    pub fn purge_finished(&mut self) {
        self.requests.retain(|r| {
            !matches!(
                r.state,
                CompactionState::Succeeded | CompactionState::Failed
            )
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_and_claim() {
        let mut q = CompactionQueue::new();
        let id = q
            .submit("db.t", Some("d=1".into()), CompactionKind::Minor)
            .unwrap();
        let req = q.next_initiated().unwrap();
        assert_eq!(req.id, id);
        assert_eq!(req.state, CompactionState::Working);
        assert!(q.next_initiated().is_none(), "no more initiated requests");
    }

    #[test]
    fn dedup_active_requests() {
        let mut q = CompactionQueue::new();
        q.submit("db.t", None, CompactionKind::Minor).unwrap();
        assert!(q.submit("db.t", None, CompactionKind::Minor).is_none());
        // A different partition is a different target.
        assert!(q
            .submit("db.t", Some("d=1".into()), CompactionKind::Minor)
            .is_some());
        // A pending major absorbs minor requests but not vice versa.
        assert!(q.submit("db.t", None, CompactionKind::Major).is_some());
    }

    #[test]
    fn state_machine_and_cleanup() {
        let mut q = CompactionQueue::new();
        let id = q.submit("db.t", None, CompactionKind::Major).unwrap();
        q.next_initiated().unwrap();
        q.set_state(id, CompactionState::ReadyForCleaning);
        assert_eq!(q.in_state(CompactionState::ReadyForCleaning).len(), 1);
        q.set_state(id, CompactionState::Succeeded);
        q.purge_finished();
        assert!(q.all().is_empty());
        // After completion, a new request for the same target is allowed.
        assert!(q.submit("db.t", None, CompactionKind::Major).is_some());
    }
}
