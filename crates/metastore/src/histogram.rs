//! Seeded equi-depth column histograms (paper §4.1).
//!
//! HMS column statistics carry one [`ColumnHistogram`] per column next
//! to the HLL NDV sketch. The histogram is backed by a **deterministic
//! reservoir sample** of the column's numeric values: a pinned-seed
//! xorshift64* stream drives Algorithm-R replacement, so the sketch is
//! a pure function of the insertion sequence — identical across runs,
//! platforms and toolchains, which keeps `HIVE_FAULT_SEED`-style replay
//! and the histogram on/off differential oracle byte-stable.
//!
//! Equi-depth buckets are *derived* from the sample on demand
//! ([`ColumnHistogram::buckets`]): the sample is sorted and split into
//! up to [`BUCKETS`] depth-equal runs, each carrying its value range,
//! row weight and bucket-local NDV. Under [`SAMPLE_CAP`] values the
//! sample is lossless, so bucket depths and NDVs are exact.
//!
//! Merging (cross-partition rollup, the INSERT path) concatenates
//! samples while the union fits the cap — exact, order-independent up
//! to sample order — and otherwise takes a quantile-stride subsample of
//! each side proportional to its observed row weight, which preserves
//! the shape of both distributions without any randomness beyond the
//! pinned insertion stream.
//!
//! Only values with a numeric view ([`Value::as_f64`] /
//! [`Value::as_i64`]) are sampled; strings and NULLs are invisible to
//! the histogram (the optimizer falls back to NDV/constant selectivity
//! for those), which keeps the dictionary fast path in
//! `stats::ColumnStatsMeta::update_column` byte-identical to the
//! per-value path.

use hive_common::Value;
use serde::{Deserialize, Serialize};

/// Reservoir capacity: below this many observed numeric values the
/// histogram is lossless.
pub const SAMPLE_CAP: usize = 8192;

/// Maximum number of derived equi-depth buckets.
pub const BUCKETS: usize = 64;

/// Pinned xorshift64* seed (split of the FNV-1a offset basis — an
/// arbitrary odd constant; the only requirement is that it never
/// changes).
const RNG_SEED: u64 = 0xcbf2_9ce4_8422_2325;

/// One derived equi-depth bucket: `[lo, hi]` with an estimated row
/// weight and bucket-local distinct-value count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bucket {
    /// Smallest value in the bucket.
    pub lo: f64,
    /// Largest value in the bucket (inclusive).
    pub hi: f64,
    /// Estimated number of rows in the bucket (sample depth scaled to
    /// the observed total).
    pub rows: f64,
    /// Distinct values observed in the bucket's sample slice.
    pub ndv: f64,
}

/// A seeded equi-depth histogram over one column's numeric values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnHistogram {
    /// Reservoir sample (insertion order; at most [`SAMPLE_CAP`]).
    sample: Vec<f64>,
    /// Total numeric non-null values observed.
    seen: u64,
    /// xorshift64* state for Algorithm-R replacement.
    rng: u64,
}

impl Default for ColumnHistogram {
    fn default() -> Self {
        ColumnHistogram {
            sample: Vec::new(),
            seen: 0,
            rng: RNG_SEED,
        }
    }
}

/// Numeric view used for sampling: the same mapping
/// `optimizer::stats::range_selectivity` applies to min/max bounds, so
/// histogram estimates and range interpolation agree on the value axis.
pub fn numeric_view(v: &Value) -> Option<f64> {
    v.as_f64().or_else(|| v.as_i64().map(|x| x as f64))
}

impl ColumnHistogram {
    /// Observe one value. Non-numeric values (strings, NULLs) are
    /// ignored.
    pub fn update(&mut self, v: &Value) {
        if let Some(x) = numeric_view(v) {
            self.update_f64(x);
        }
    }

    /// Observe one numeric value (Algorithm-R reservoir step).
    pub fn update_f64(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.seen += 1;
        if self.sample.len() < SAMPLE_CAP {
            self.sample.push(x);
        } else {
            // Replace a random slot with probability CAP / seen.
            let j = self.next_below(self.seen);
            if (j as usize) < SAMPLE_CAP {
                self.sample[j as usize] = x;
            }
        }
    }

    /// xorshift64* step returning a value uniform in `[0, n)`.
    fn next_below(&mut self, n: u64) -> u64 {
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d) % n
    }

    /// Total numeric values observed.
    pub fn total_rows(&self) -> u64 {
        self.seen
    }

    /// True when no numeric value has been observed.
    pub fn is_empty(&self) -> bool {
        self.sample.is_empty()
    }

    /// Additive merge (cross-partition rollup). Exact (sample union)
    /// while the combined sample fits the cap; otherwise each side
    /// contributes a quantile-stride subsample proportional to its
    /// observed row weight.
    pub fn merge(&mut self, other: &ColumnHistogram) {
        if other.sample.is_empty() {
            return;
        }
        if self.sample.is_empty() {
            *self = other.clone();
            return;
        }
        let total = self.seen + other.seen;
        if self.sample.len() + other.sample.len() <= SAMPLE_CAP {
            self.sample.extend_from_slice(&other.sample);
        } else {
            let n_self = ((SAMPLE_CAP as u128 * self.seen as u128) / total as u128) as usize;
            let n_self = n_self.clamp(1, SAMPLE_CAP - 1);
            let n_other = SAMPLE_CAP - n_self;
            let mut merged = quantile_stride(&self.sample, n_self);
            merged.extend(quantile_stride(&other.sample, n_other));
            self.sample = merged;
        }
        self.seen = total;
        // Mix the two streams so subsequent replacement draws differ
        // from either input's continuation (still fully deterministic).
        self.rng ^= other.rng.rotate_left(32);
        if self.rng == 0 {
            self.rng = RNG_SEED;
        }
    }

    /// Derive up to [`BUCKETS`] equi-depth buckets from the sample.
    pub fn buckets(&self) -> Vec<Bucket> {
        if self.sample.is_empty() {
            return Vec::new();
        }
        let mut sorted = self.sample.clone();
        sorted.sort_by(f64::total_cmp);
        let scale = self.seen as f64 / sorted.len() as f64;
        let n = sorted.len();
        let nb = BUCKETS.min(n);
        let mut out = Vec::with_capacity(nb);
        let mut start = 0usize;
        for b in 0..nb {
            // Depth-equal split points; the last bucket absorbs the
            // remainder.
            let mut end = ((b + 1) * n) / nb;
            // Never split a run of equal values across buckets: extend
            // to cover the full run so `hi` boundaries are honest.
            while end < n && end > start && sorted[end - 1] == sorted[end] {
                end += 1;
            }
            if end <= start {
                continue;
            }
            let slice = &sorted[start..end];
            let mut ndv = 1u64;
            for w in slice.windows(2) {
                if w[0] != w[1] {
                    ndv += 1;
                }
            }
            out.push(Bucket {
                lo: slice[0],
                hi: slice[end - start - 1],
                rows: slice.len() as f64 * scale,
                ndv: ndv as f64,
            });
            start = end;
            if start >= n {
                break;
            }
        }
        out
    }

    /// Estimated fraction of (numeric, non-null) rows equal to `x`.
    ///
    /// Heavy hitters — values appearing more than once in the sample —
    /// are estimated end-biased from their sample frequency; everything
    /// else falls back to the equi-depth assumption inside the covering
    /// bucket (`depth / bucket NDV`). Returns `None` when the histogram
    /// is empty.
    pub fn eq_fraction(&self, x: f64) -> Option<f64> {
        if self.sample.is_empty() {
            return None;
        }
        let hits = self.sample.iter().filter(|&&v| v == x).count();
        if hits >= 2 {
            return Some(hits as f64 / self.sample.len() as f64);
        }
        for b in self.buckets() {
            if x >= b.lo && x <= b.hi {
                let frac = b.rows / self.seen as f64;
                return Some(frac / b.ndv.max(1.0));
            }
        }
        // Outside every bucket: the value was never sampled.
        Some(0.0)
    }

    /// Estimated fraction of rows in `[lo, hi]` (either bound may be
    /// unbounded), by bucket interpolation. Returns `None` when the
    /// histogram is empty.
    pub fn range_fraction(&self, lo: Option<f64>, hi: Option<f64>) -> Option<f64> {
        if self.sample.is_empty() {
            return None;
        }
        let total = self.seen as f64;
        let mut rows = 0.0;
        for b in self.buckets() {
            rows += bucket_overlap_rows(&b, lo, hi);
        }
        Some((rows / total).clamp(0.0, 1.0))
    }

    /// Smallest sampled value.
    pub fn min_value(&self) -> Option<f64> {
        self.sample.iter().copied().min_by(f64::total_cmp)
    }

    /// Largest sampled value.
    pub fn max_value(&self) -> Option<f64> {
        self.sample.iter().copied().max_by(f64::total_cmp)
    }
}

/// Rows of `b` falling inside the (inclusive) query range, assuming
/// values spread uniformly across the bucket and NDV-many equal steps.
fn bucket_overlap_rows(b: &Bucket, lo: Option<f64>, hi: Option<f64>) -> f64 {
    let qlo = lo.unwrap_or(f64::NEG_INFINITY);
    let qhi = hi.unwrap_or(f64::INFINITY);
    if qhi < b.lo || qlo > b.hi {
        return 0.0;
    }
    if qlo <= b.lo && qhi >= b.hi {
        return b.rows;
    }
    let width = b.hi - b.lo;
    if width <= 0.0 {
        // Single-valued bucket inside the range (checked above).
        return b.rows;
    }
    let cl = qlo.max(b.lo);
    let ch = qhi.min(b.hi);
    let mut frac = (ch - cl) / width;
    // Discrete correction: an inclusive range covering k of the
    // bucket's ndv steps holds at least one step's worth of rows.
    frac = frac.max(1.0 / b.ndv.max(1.0));
    b.rows * frac.clamp(0.0, 1.0)
}

/// Estimated join selectivity factor for `l ⋈ r` on the histogrammed
/// key: `|out| ≈ factor · |L| · |R|`. Computed by summing, over the
/// elementary segments of the two bucket sets' merged boundaries,
/// `rows_l(seg) · rows_r(seg) / max(ndv_l(seg), ndv_r(seg))` — the
/// containment assumption applied per segment instead of globally, so
/// skewed overlap regions (one heavy key on both sides) dominate the
/// estimate the way they dominate the real join. Returns `None` when
/// either histogram is empty.
pub fn join_selectivity(l: &ColumnHistogram, r: &ColumnHistogram) -> Option<f64> {
    if l.is_empty() || r.is_empty() {
        return None;
    }
    let lb = l.buckets();
    let rb = r.buckets();
    let l_total = l.total_rows() as f64;
    let r_total = r.total_rows() as f64;

    // Merged boundary points across both bucket sets.
    let mut bounds: Vec<f64> = Vec::with_capacity((lb.len() + rb.len()) * 2);
    for b in lb.iter().chain(rb.iter()) {
        bounds.push(b.lo);
        bounds.push(b.hi);
    }
    bounds.sort_by(f64::total_cmp);
    bounds.dedup();

    // Elementary segments: a zero-width point at every merged boundary
    // (where single-valued buckets — heavy hitters and low-NDV keys —
    // concentrate their mass) alternating with the open interval to the
    // next boundary. Distributing each bucket's rows across these
    // segments with per-bucket normalization counts every row exactly
    // once, so a key taking k distinct values joins at exactly 1/k.
    let mut segs: Vec<(f64, f64)> = Vec::with_capacity(bounds.len() * 2);
    for (i, &v) in bounds.iter().enumerate() {
        segs.push((v, v));
        if let Some(&next) = bounds.get(i + 1) {
            segs.push((v, next));
        }
    }
    let l_seg = distribute_over_segments(&lb, &segs);
    let r_seg = distribute_over_segments(&rb, &segs);

    let mut out_rows = 0.0;
    for (i, &(lo, hi)) in segs.iter().enumerate() {
        let (lr, mut ln) = l_seg[i];
        let (rr, mut rn) = r_seg[i];
        if lr <= 0.0 || rr <= 0.0 {
            continue;
        }
        if hi <= lo {
            // A point segment holds exactly one value per side.
            ln = 1.0;
            rn = 1.0;
        }
        out_rows += lr * rr / ln.max(rn).max(1.0);
    }
    if out_rows <= 0.0 {
        return Some(0.0);
    }
    Some((out_rows / (l_total * r_total)).clamp(0.0, 1.0))
}

/// Per-segment (rows, ndv) attribution of a bucket list over the
/// elementary segments of `join_selectivity`. A point segment inside a
/// wide bucket weighs one discrete step (`1/ndv`); an open interval
/// weighs its width fraction; zero-width buckets sit wholly on their
/// point. Weights are normalized per bucket so its rows are partitioned
/// across the segments rather than double-counted at shared boundaries.
fn distribute_over_segments(buckets: &[Bucket], segs: &[(f64, f64)]) -> Vec<(f64, f64)> {
    let mut out = vec![(0.0, 0.0); segs.len()];
    for b in buckets {
        let width = b.hi - b.lo;
        let weight = |&(lo, hi): &(f64, f64)| -> f64 {
            if hi <= lo {
                // Point segment.
                if b.lo <= lo && lo <= b.hi {
                    if width <= 0.0 {
                        1.0
                    } else {
                        1.0 / b.ndv.max(1.0)
                    }
                } else {
                    0.0
                }
            } else if width <= 0.0 {
                // Zero-width buckets live entirely on their point.
                0.0
            } else {
                let cl = lo.max(b.lo);
                let ch = hi.min(b.hi);
                if ch > cl {
                    (ch - cl) / width
                } else {
                    0.0
                }
            }
        };
        let total: f64 = segs.iter().map(weight).sum();
        if total <= 0.0 {
            continue;
        }
        for (i, seg) in segs.iter().enumerate() {
            let w = weight(seg) / total;
            if w <= 0.0 {
                continue;
            }
            out[i].0 += b.rows * w;
            out[i].1 += (b.ndv * w).clamp(1.0, b.ndv.max(1.0));
        }
    }
    out
}

/// `k` evenly spaced order statistics of `sample` (a quantile-stride
/// subsample): deterministic, order-insensitive, shape-preserving.
fn quantile_stride(sample: &[f64], k: usize) -> Vec<f64> {
    let mut sorted = sample.to_vec();
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len();
    if k >= n {
        return sorted;
    }
    (0..k).map(|i| sorted[(i * n + n / 2) / k.max(1)]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist_of(vals: impl IntoIterator<Item = f64>) -> ColumnHistogram {
        let mut h = ColumnHistogram::default();
        for v in vals {
            h.update_f64(v);
        }
        h
    }

    #[test]
    fn deterministic_across_runs() {
        let a = hist_of((0..50_000).map(|i| (i % 997) as f64));
        let b = hist_of((0..50_000).map(|i| (i % 997) as f64));
        assert_eq!(a, b, "pinned-seed reservoir must be reproducible");
        assert_eq!(a.total_rows(), 50_000);
        assert_eq!(a.buckets().len(), BUCKETS);
    }

    #[test]
    fn lossless_under_cap() {
        let h = hist_of((0..1000).map(|i| i as f64));
        assert_eq!(h.total_rows(), 1000);
        let total: f64 = h.buckets().iter().map(|b| b.rows).sum();
        assert!((total - 1000.0).abs() < 1e-9);
        // Uniform 0..1000: a half-range predicate lands near 50%.
        let f = h.range_fraction(None, Some(499.0)).unwrap();
        assert!((f - 0.5).abs() < 0.02, "got {f}");
        // Point equality on a unique value: 1/1000.
        let e = h.eq_fraction(500.0).unwrap();
        assert!((e - 0.001).abs() < 0.001, "got {e}");
    }

    #[test]
    fn heavy_hitter_equality_is_end_biased() {
        // 90% of rows are the single value 7.
        let mut vals = vec![7.0; 9000];
        vals.extend((0..1000).map(|i| i as f64));
        let h = hist_of(vals);
        let e = h.eq_fraction(7.0).unwrap();
        assert!(e > 0.8, "heavy hitter fraction {e} should be ~0.9");
        let cold = h.eq_fraction(900.0).unwrap();
        assert!(cold < 0.01, "cold value fraction {cold} should be tiny");
    }

    #[test]
    fn skewed_join_overlap_beats_containment() {
        // L: one heavy key (0) plus a uniform tail; R1 hits the heavy
        // key, R2 only the tail. Overlap-based selectivity must rank
        // L⋈R1 far above L⋈R2 — bare max-NDV containment cannot.
        let mut l = vec![0.0; 5000];
        l.extend((1..1001).map(|i| i as f64));
        let l = hist_of(l);
        let r_heavy = hist_of(std::iter::repeat_n(0.0, 100));
        let r_tail = hist_of((1..101).map(|i| i as f64));
        let s_heavy = join_selectivity(&l, &r_heavy).unwrap();
        let s_tail = join_selectivity(&l, &r_tail).unwrap();
        // Heavy join truly yields 5000*100 rows => sel ~ 0.833.
        // Tail join yields 100 rows => sel ~ 1.7e-4.
        assert!(
            s_heavy > 50.0 * s_tail,
            "overlap must separate skew: heavy {s_heavy} vs tail {s_tail}"
        );
    }

    #[test]
    fn merge_exact_when_under_cap() {
        let a = hist_of((0..2000).map(|i| i as f64));
        let b = hist_of((2000..4000).map(|i| i as f64));
        let mut m = a.clone();
        m.merge(&b);
        let whole = hist_of((0..4000).map(|i| i as f64));
        assert_eq!(m.total_rows(), whole.total_rows());
        // Same multiset of samples => identical sorted buckets.
        assert_eq!(m.buckets(), whole.buckets());
    }

    #[test]
    fn merge_over_cap_stays_close() {
        let a = hist_of((0..30_000).map(|i| (i % 500) as f64));
        let b = hist_of((0..30_000).map(|i| (500 + i % 500) as f64));
        let mut m = a.clone();
        m.merge(&b);
        assert_eq!(m.total_rows(), 60_000);
        // Half the merged mass sits below 500.
        let f = m.range_fraction(None, Some(499.0)).unwrap();
        assert!((f - 0.5).abs() < 0.05, "got {f}");
    }

    #[test]
    fn non_numeric_and_null_ignored() {
        let mut h = ColumnHistogram::default();
        h.update(&Value::Null);
        h.update(&Value::String("x".into()));
        assert!(h.is_empty());
        h.update(&Value::Int(3));
        h.update(&Value::Date(10));
        assert_eq!(h.total_rows(), 2);
    }
}
