//! The [`Metastore`] facade: one thread-safe object combining catalog,
//! statistics, transactions, locks, and the compaction queue — the role
//! HMS plays for HiveServer2 in the paper's architecture (Figure 1).

use crate::catalog::{Catalog, MaterializedViewInfo, PartitionInfo, Table};
use crate::compaction::{CompactionKind, CompactionQueue, CompactionRequest, CompactionState};
use crate::locks::{LockKey, LockManager, LockMode};
use crate::stats::TableStats;
use crate::txn::{TxnManager, TxnState, ValidTxnList, ValidWriteIdList};
use hive_common::{Result, TxnId, Value, WriteId};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::Arc;

/// The Hive Metastore service object. Cheap to clone; all clones share
/// state.
#[derive(Debug, Clone, Default)]
pub struct Metastore {
    inner: Arc<MetastoreInner>,
}

#[derive(Debug, Default)]
struct MetastoreInner {
    catalog: RwLock<Catalog>,
    txns: Mutex<TxnManager>,
    locks: Mutex<LockManager>,
    stats: RwLock<HashMap<String, TableStats>>,
    compactions: Mutex<CompactionQueue>,
    /// Runtime operator statistics persisted for reoptimization feedback
    /// (§4.2/§9), keyed by plan fingerprint.
    runtime_stats: RwLock<HashMap<String, Vec<(String, u64)>>>,
}

impl Metastore {
    /// A fresh metastore with an empty catalog (plus `default` DB).
    pub fn new() -> Self {
        Self::default()
    }

    // ---- catalog -------------------------------------------------------

    /// Create a database.
    pub fn create_database(&self, name: &str) -> Result<()> {
        self.inner.catalog.write().create_database(name)
    }

    /// Drop an empty database.
    pub fn drop_database(&self, name: &str) -> Result<()> {
        self.inner.catalog.write().drop_database(name)
    }

    /// Register a table; also initializes its stats entry.
    pub fn create_table(&self, table: Table) -> Result<()> {
        let qname = table.qualified_name();
        let ncols = table.schema.len();
        self.inner.catalog.write().create_table(table)?;
        self.inner
            .stats
            .write()
            .insert(qname, TableStats::new(ncols));
        Ok(())
    }

    /// Drop a table and its stats.
    pub fn drop_table(&self, db: &str, name: &str) -> Result<Table> {
        let t = self.inner.catalog.write().drop_table(db, name)?;
        self.inner.stats.write().remove(&t.qualified_name());
        Ok(t)
    }

    /// Fetch a table's metadata (cloned snapshot).
    pub fn get_table(&self, db: &str, name: &str) -> Result<Table> {
        self.inner.catalog.read().table(db, name).cloned()
    }

    /// True if a table exists.
    pub fn table_exists(&self, db: &str, name: &str) -> bool {
        self.inner.catalog.read().table(db, name).is_ok()
    }

    /// All tables of a database.
    pub fn list_tables(&self, db: &str) -> Result<Vec<String>> {
        Ok(self
            .inner
            .catalog
            .read()
            .tables_in(db)?
            .iter()
            .map(|t| t.name.clone())
            .collect())
    }

    /// Rewrite-enabled materialized views (cloned snapshots).
    pub fn rewrite_enabled_views(&self) -> Vec<Table> {
        self.inner
            .catalog
            .read()
            .rewrite_enabled_views()
            .into_iter()
            .cloned()
            .collect()
    }

    /// Register a partition on a table, creating its location entry.
    pub fn add_partition(&self, db: &str, name: &str, values: Vec<Value>) -> Result<PartitionInfo> {
        let mut cat = self.inner.catalog.write();
        let t = cat.table_mut(db, name)?;
        let dir = t.partition_dir_name(&values);
        if let Some(existing) = t.partitions.get(&dir) {
            return Ok(existing.clone());
        }
        let info = PartitionInfo {
            values,
            location: format!("{}/{}", t.location, dir),
        };
        t.partitions.insert(dir, info.clone());
        Ok(info)
    }

    /// Drop a partition.
    pub fn drop_partition(&self, db: &str, name: &str, dir: &str) -> Result<PartitionInfo> {
        let mut cat = self.inner.catalog.write();
        let t = cat.table_mut(db, name)?;
        t.partitions.remove(dir).ok_or_else(|| {
            hive_common::HiveError::Catalog(format!("partition not found: {db}.{name}/{dir}"))
        })
    }

    /// Update a materialized view's metadata after a (re)build.
    pub fn update_mv_info(&self, db: &str, name: &str, info: MaterializedViewInfo) -> Result<()> {
        let mut cat = self.inner.catalog.write();
        let t = cat.table_mut(db, name)?;
        t.mv_info = Some(info);
        Ok(())
    }

    /// Apply an arbitrary mutation to a table's metadata.
    pub fn alter_table(&self, db: &str, name: &str, f: impl FnOnce(&mut Table)) -> Result<()> {
        let mut cat = self.inner.catalog.write();
        let t = cat.table_mut(db, name)?;
        f(t);
        Ok(())
    }

    // ---- statistics ----------------------------------------------------

    /// Current stats for a table (empty default when never written).
    pub fn table_stats(&self, qualified: &str) -> TableStats {
        self.inner
            .stats
            .read()
            .get(qualified)
            .cloned()
            .unwrap_or_default()
    }

    /// Additively merge new statistics (the INSERT path of §4.1).
    pub fn merge_table_stats(&self, qualified: &str, delta: &TableStats) {
        let mut g = self.inner.stats.write();
        g.entry(qualified.to_string())
            .or_insert_with(|| TableStats::new(delta.columns.len()))
            .merge(delta);
    }

    /// Replace statistics outright (ANALYZE TABLE / major compaction).
    pub fn set_table_stats(&self, qualified: &str, stats: TableStats) {
        self.inner
            .stats
            .write()
            .insert(qualified.to_string(), stats);
    }

    // ---- transactions --------------------------------------------------

    /// Begin a transaction.
    pub fn open_txn(&self) -> TxnId {
        self.inner.txns.lock().open()
    }

    /// Transaction state.
    pub fn txn_state(&self, txn: TxnId) -> Option<TxnState> {
        self.inner.txns.lock().state(txn)
    }

    /// Allocate the per-table WriteId for a transaction.
    pub fn allocate_write_id(&self, txn: TxnId, table: &str) -> Result<WriteId> {
        self.inner.txns.lock().allocate_write_id(txn, table)
    }

    /// Record an update/delete write-set entry for conflict detection.
    pub fn add_write_set(&self, txn: TxnId, table: &str, partition: Option<String>) -> Result<()> {
        self.inner.txns.lock().add_write_set(txn, table, partition)
    }

    /// Commit; releases all locks whatever the outcome.
    pub fn commit_txn(&self, txn: TxnId) -> Result<()> {
        let result = self.inner.txns.lock().commit(txn);
        self.inner.locks.lock().release_all(txn);
        result
    }

    /// Abort; releases all locks.
    pub fn abort_txn(&self, txn: TxnId) -> Result<()> {
        let result = self.inner.txns.lock().abort(txn);
        self.inner.locks.lock().release_all(txn);
        result
    }

    /// `SHOW TRANSACTIONS`: every known transaction with state and
    /// written tables.
    pub fn show_transactions(&self) -> Vec<(TxnId, TxnState, Vec<String>)> {
        self.inner.txns.lock().show_transactions()
    }

    /// Global snapshot.
    pub fn valid_txn_list(&self) -> ValidTxnList {
        self.inner.txns.lock().valid_txn_list()
    }

    /// Per-table snapshot narrowing.
    pub fn valid_write_ids(
        &self,
        table: &str,
        snapshot: &ValidTxnList,
        reader: Option<TxnId>,
    ) -> ValidWriteIdList {
        self.inner
            .txns
            .lock()
            .valid_write_ids(table, snapshot, reader)
    }

    /// Current WriteId high watermark for a table (used to stamp MV
    /// snapshots).
    pub fn table_write_hwm(&self, table: &str) -> WriteId {
        self.inner.txns.lock().table_write_hwm(table)
    }

    /// Major-compaction history truncation.
    pub fn truncate_aborted_history(&self, table: &str, below: WriteId) {
        self.inner
            .txns
            .lock()
            .truncate_aborted_history(table, below)
    }

    // ---- locks ---------------------------------------------------------

    /// Try to acquire a lock.
    pub fn acquire_lock(&self, txn: TxnId, key: LockKey, mode: LockMode) -> Result<()> {
        self.inner.locks.lock().acquire(txn, key, mode)
    }

    // ---- compaction queue ----------------------------------------------

    /// Enqueue a compaction request (deduplicated).
    pub fn submit_compaction(
        &self,
        table: &str,
        partition: Option<String>,
        kind: CompactionKind,
    ) -> Option<u64> {
        self.inner.compactions.lock().submit(table, partition, kind)
    }

    /// Claim the next initiated compaction request.
    pub fn next_compaction(&self) -> Option<CompactionRequest> {
        self.inner.compactions.lock().next_initiated()
    }

    /// Advance a compaction request's state.
    pub fn set_compaction_state(&self, id: u64, state: CompactionState) -> bool {
        self.inner.compactions.lock().set_state(id, state)
    }

    /// Snapshot of the whole compaction queue (SHOW COMPACTIONS).
    pub fn show_compactions(&self) -> Vec<CompactionRequest> {
        self.inner.compactions.lock().all()
    }

    // ---- runtime stats (reoptimization feedback) -------------------------

    /// Persist per-operator runtime row counts for a plan fingerprint.
    pub fn save_runtime_stats(&self, fingerprint: &str, operator_rows: Vec<(String, u64)>) {
        self.inner
            .runtime_stats
            .write()
            .insert(fingerprint.to_string(), operator_rows);
    }

    /// Fetch persisted runtime stats for a plan fingerprint.
    pub fn runtime_stats(&self, fingerprint: &str) -> Option<Vec<(String, u64)>> {
        self.inner.runtime_stats.read().get(fingerprint).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::TableBuilder;
    use hive_common::{DataType, Field, Schema};

    fn ms_with_table() -> Metastore {
        let ms = Metastore::new();
        ms.create_table(
            TableBuilder::new(
                "default",
                "t",
                Schema::new(vec![Field::new("a", DataType::Int)]),
            )
            .partitioned_by(vec![Field::new("d", DataType::Int)])
            .build(),
        )
        .unwrap();
        ms
    }

    #[test]
    fn catalog_round_trip() {
        let ms = ms_with_table();
        let t = ms.get_table("default", "t").unwrap();
        assert_eq!(t.qualified_name(), "default.t");
        assert!(ms.table_exists("default", "t"));
        assert_eq!(ms.list_tables("default").unwrap(), vec!["t"]);
    }

    #[test]
    fn partitions() {
        let ms = ms_with_table();
        let p = ms
            .add_partition("default", "t", vec![Value::Int(7)])
            .unwrap();
        assert_eq!(p.location, "/warehouse/default/t/d=7");
        // Idempotent.
        let p2 = ms
            .add_partition("default", "t", vec![Value::Int(7)])
            .unwrap();
        assert_eq!(p, p2);
        assert_eq!(ms.get_table("default", "t").unwrap().partitions.len(), 1);
        ms.drop_partition("default", "t", "d=7").unwrap();
        assert!(ms.get_table("default", "t").unwrap().partitions.is_empty());
    }

    #[test]
    fn txn_lifecycle_through_facade() {
        let ms = ms_with_table();
        let txn = ms.open_txn();
        let wid = ms.allocate_write_id(txn, "default.t").unwrap();
        assert_eq!(wid, WriteId(1));
        ms.acquire_lock(txn, LockKey::table("default.t"), LockMode::Shared)
            .unwrap();
        ms.commit_txn(txn).unwrap();
        // Locks were released on commit.
        let txn2 = ms.open_txn();
        ms.acquire_lock(txn2, LockKey::table("default.t"), LockMode::Exclusive)
            .unwrap();
        ms.abort_txn(txn2).unwrap();
    }

    #[test]
    fn stats_merge_via_facade() {
        let ms = ms_with_table();
        let mut delta = TableStats::new(1);
        delta.row_count = 10;
        ms.merge_table_stats("default.t", &delta);
        ms.merge_table_stats("default.t", &delta);
        assert_eq!(ms.table_stats("default.t").row_count, 20);
    }

    #[test]
    fn runtime_stats_round_trip() {
        let ms = Metastore::new();
        ms.save_runtime_stats("plan-x", vec![("join-1".into(), 1000)]);
        assert_eq!(
            ms.runtime_stats("plan-x").unwrap(),
            vec![("join-1".to_string(), 1000)]
        );
        assert!(ms.runtime_stats("plan-y").is_none());
    }
}
