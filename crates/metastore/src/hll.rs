//! HyperLogLog++ cardinality sketch.
//!
//! HMS stores the number-of-distinct-values statistic as "a bit array
//! representation based on HyperLogLog++ which can be combined without
//! loss of approximation accuracy" (paper §4.1). This is the dense
//! representation with the HLL++ bias-corrected estimator and
//! linear-counting fallback for small cardinalities.

use hive_common::Value;
use serde::{Deserialize, Serialize};
use std::hash::Hasher;

/// Register-index precision: 2^P registers.
const P: u32 = 12;
const M: usize = 1 << P; // 4096 registers

/// A dense HyperLogLog++ sketch over SQL values.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HyperLogLog {
    registers: Vec<u8>,
}

impl Default for HyperLogLog {
    fn default() -> Self {
        Self::new()
    }
}

impl HyperLogLog {
    /// An empty sketch.
    pub fn new() -> Self {
        HyperLogLog {
            registers: vec![0; M],
        }
    }

    fn hash(v: &Value) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        v.hash_value(&mut h);
        // Finalize with a 64-bit mix for better low-bit dispersion.
        let mut x = h.finish();
        x ^= x >> 33;
        x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
        x ^= x >> 33;
        x = x.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
        x ^= x >> 33;
        x
    }

    /// Observe a value. NULLs are ignored (NDV counts non-null values).
    pub fn add(&mut self, v: &Value) {
        if v.is_null() {
            return;
        }
        let h = Self::hash(v);
        let idx = (h >> (64 - P)) as usize;
        let rest = h << P;
        // Number of leading zeros in the remaining bits, plus one.
        let rank = (rest.leading_zeros() + 1).min(64 - P + 1) as u8;
        if rank > self.registers[idx] {
            self.registers[idx] = rank;
        }
    }

    /// Merge another sketch (register-wise max) — the lossless additive
    /// combination HMS relies on.
    pub fn merge(&mut self, other: &HyperLogLog) {
        for (a, b) in self.registers.iter_mut().zip(&other.registers) {
            *a = (*a).max(*b);
        }
    }

    /// Estimated number of distinct values.
    pub fn estimate(&self) -> u64 {
        let m = M as f64;
        let mut sum = 0.0;
        let mut zeros = 0usize;
        for &r in &self.registers {
            sum += 1.0 / (1u64 << r) as f64;
            if r == 0 {
                zeros += 1;
            }
        }
        let alpha = 0.7213 / (1.0 + 1.079 / m);
        let raw = alpha * m * m / sum;
        // Linear counting for the small range (HLL++ style threshold).
        if raw <= 2.5 * m && zeros > 0 {
            let lc = m * (m / zeros as f64).ln();
            return lc.round() as u64;
        }
        raw.round() as u64
    }

    /// True when nothing has been added.
    pub fn is_empty(&self) -> bool {
        self.registers.iter().all(|&r| r == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn estimate_of(n: i64) -> u64 {
        let mut h = HyperLogLog::new();
        for i in 0..n {
            h.add(&Value::BigInt(i));
        }
        h.estimate()
    }

    fn assert_within(est: u64, actual: u64, pct: f64) {
        let err = (est as f64 - actual as f64).abs() / actual as f64;
        assert!(
            err < pct,
            "estimate {est} vs actual {actual}: error {:.1}% > {:.1}%",
            err * 100.0,
            pct * 100.0
        );
    }

    #[test]
    fn small_cardinalities_exactish() {
        for n in [1u64, 10, 100, 1000] {
            assert_within(estimate_of(n as i64), n, 0.05);
        }
    }

    #[test]
    fn large_cardinalities_within_error_bound() {
        // Standard error for p=12 is ~1.6%; allow 5%.
        for n in [50_000u64, 200_000] {
            assert_within(estimate_of(n as i64), n, 0.05);
        }
    }

    #[test]
    fn duplicates_do_not_inflate() {
        let mut h = HyperLogLog::new();
        for _ in 0..10 {
            for i in 0..500 {
                h.add(&Value::Int(i));
            }
        }
        assert_within(h.estimate(), 500, 0.05);
    }

    #[test]
    fn nulls_ignored() {
        let mut h = HyperLogLog::new();
        h.add(&Value::Null);
        assert!(h.is_empty());
        assert_eq!(h.estimate(), 0);
    }

    #[test]
    fn merge_equals_union() {
        let mut a = HyperLogLog::new();
        let mut b = HyperLogLog::new();
        let mut u = HyperLogLog::new();
        for i in 0..30_000 {
            let v = Value::BigInt(i);
            if i % 2 == 0 {
                a.add(&v);
            } else {
                b.add(&v);
            }
            u.add(&v);
        }
        a.merge(&b);
        assert_eq!(a.estimate(), u.estimate(), "merge must be lossless");
        assert_within(a.estimate(), 30_000, 0.05);
    }

    #[test]
    fn string_values() {
        let mut h = HyperLogLog::new();
        for i in 0..5000 {
            h.add(&Value::String(format!("customer_{i}")));
        }
        assert_within(h.estimate(), 5000, 0.05);
    }
}
