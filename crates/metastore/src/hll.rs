//! HyperLogLog++ cardinality sketch.
//!
//! HMS stores the number-of-distinct-values statistic as "a bit array
//! representation based on HyperLogLog++ which can be combined without
//! loss of approximation accuracy" (paper §4.1). This is the dense
//! representation with the HLL++ bias-corrected estimator and
//! linear-counting fallback for small cardinalities.

use hive_common::hash::{encode_str, encode_value, fnv1a};
use hive_common::Value;
use serde::{Deserialize, Serialize};

/// Register-index precision: 2^P registers.
const P: u32 = 12;
const M: usize = 1 << P; // 4096 registers

/// A dense HyperLogLog++ sketch over SQL values.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HyperLogLog {
    registers: Vec<u8>,
}

impl Default for HyperLogLog {
    fn default() -> Self {
        Self::new()
    }
}

impl HyperLogLog {
    /// An empty sketch.
    pub fn new() -> Self {
        HyperLogLog {
            registers: vec![0; M],
        }
    }

    /// Finalizing mix for better low-bit dispersion (FNV-1a alone is
    /// weak in the high bits that pick the register index).
    #[inline]
    fn mix(mut x: u64) -> u64 {
        x ^= x >> 33;
        x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
        x ^= x >> 33;
        x = x.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
        x ^= x >> 33;
        x
    }

    /// Hash a value via its canonical `hive_common::hash` encoding and
    /// pinned FNV-1a. Unlike `DefaultHasher` (stable only within one
    /// compiler release), this is fixed forever: register layouts —
    /// and with them serialized sketches and seeded-replay schedules —
    /// survive toolchain bumps.
    fn hash(v: &Value) -> u64 {
        let mut buf = Vec::with_capacity(16);
        encode_value(v, &mut buf);
        Self::mix(fnv1a(&buf))
    }

    /// Fold a pre-computed canonical encoding (`hive_common::hash`
    /// `encode_*` output) into the sketch. The vectorized statistics
    /// path uses this to reuse one encode buffer across a column.
    #[inline]
    pub fn add_bytes(&mut self, enc: &[u8]) {
        self.insert_hash(Self::mix(fnv1a(enc)));
    }

    /// Observe a string without constructing a `Value` (register-
    /// identical to `add(&Value::String(..))`).
    #[inline]
    pub fn add_str(&mut self, s: &str) {
        let mut buf = Vec::with_capacity(s.len() + 5);
        encode_str(s.as_bytes(), &mut buf);
        self.add_bytes(&buf);
    }

    /// Observe a value. NULLs are ignored (NDV counts non-null values).
    pub fn add(&mut self, v: &Value) {
        if v.is_null() {
            return;
        }
        self.insert_hash(Self::hash(v));
    }

    #[inline]
    fn insert_hash(&mut self, h: u64) {
        let idx = (h >> (64 - P)) as usize;
        let rest = h << P;
        // Number of leading zeros in the remaining bits, plus one.
        let rank = (rest.leading_zeros() + 1).min(64 - P + 1) as u8;
        if rank > self.registers[idx] {
            self.registers[idx] = rank;
        }
    }

    /// Merge another sketch (register-wise max) — the lossless additive
    /// combination HMS relies on.
    pub fn merge(&mut self, other: &HyperLogLog) {
        for (a, b) in self.registers.iter_mut().zip(&other.registers) {
            *a = (*a).max(*b);
        }
    }

    /// Estimated number of distinct values.
    pub fn estimate(&self) -> u64 {
        let m = M as f64;
        let mut sum = 0.0;
        let mut zeros = 0usize;
        for &r in &self.registers {
            sum += 1.0 / (1u64 << r) as f64;
            if r == 0 {
                zeros += 1;
            }
        }
        let alpha = 0.7213 / (1.0 + 1.079 / m);
        let raw = alpha * m * m / sum;
        // Linear counting for the small range (HLL++ style threshold).
        if raw <= 2.5 * m && zeros > 0 {
            let lc = m * (m / zeros as f64).ln();
            return lc.round() as u64;
        }
        raw.round() as u64
    }

    /// True when nothing has been added.
    pub fn is_empty(&self) -> bool {
        self.registers.iter().all(|&r| r == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn estimate_of(n: i64) -> u64 {
        let mut h = HyperLogLog::new();
        for i in 0..n {
            h.add(&Value::BigInt(i));
        }
        h.estimate()
    }

    fn assert_within(est: u64, actual: u64, pct: f64) {
        let err = (est as f64 - actual as f64).abs() / actual as f64;
        assert!(
            err < pct,
            "estimate {est} vs actual {actual}: error {:.1}% > {:.1}%",
            err * 100.0,
            pct * 100.0
        );
    }

    #[test]
    fn small_cardinalities_exactish() {
        for n in [1u64, 10, 100, 1000] {
            assert_within(estimate_of(n as i64), n, 0.05);
        }
    }

    #[test]
    fn large_cardinalities_within_error_bound() {
        // Standard error for p=12 is ~1.6%; allow 5%.
        for n in [50_000u64, 200_000] {
            assert_within(estimate_of(n as i64), n, 0.05);
        }
    }

    #[test]
    fn duplicates_do_not_inflate() {
        let mut h = HyperLogLog::new();
        for _ in 0..10 {
            for i in 0..500 {
                h.add(&Value::Int(i));
            }
        }
        assert_within(h.estimate(), 500, 0.05);
    }

    #[test]
    fn nulls_ignored() {
        let mut h = HyperLogLog::new();
        h.add(&Value::Null);
        assert!(h.is_empty());
        assert_eq!(h.estimate(), 0);
    }

    #[test]
    fn merge_equals_union() {
        let mut a = HyperLogLog::new();
        let mut b = HyperLogLog::new();
        let mut u = HyperLogLog::new();
        for i in 0..30_000 {
            let v = Value::BigInt(i);
            if i % 2 == 0 {
                a.add(&v);
            } else {
                b.add(&v);
            }
            u.add(&v);
        }
        a.merge(&b);
        assert_eq!(a.estimate(), u.estimate(), "merge must be lossless");
        assert_within(a.estimate(), 30_000, 0.05);
    }

    #[test]
    fn register_layout_is_pinned() {
        // The hash is mix(fnv1a(encode_value(v))) with every stage
        // pinned (hive_common::hash pins fnv1a(enc(Int(1))) ==
        // 0x7194_f3e5_9ae4_7dcd). These register placements must never
        // change: serialized sketches and replay schedules depend on
        // them surviving toolchain bumps — the exact property
        // DefaultHasher could not give.
        let mut h = HyperLogLog::new();
        h.add(&Value::Int(1));
        // mix(0x7194_f3e5_9ae4_7dcd) == 0xfead_53f7_dfca_be65
        // => idx = top 12 bits = 4074, rank = 1.
        assert_eq!(h.registers[4074], 1);
        assert_eq!(h.registers.iter().filter(|&&r| r != 0).count(), 1);

        let mut s = HyperLogLog::new();
        s.add(&Value::String("ab".into()));
        // mix(fnv1a(enc("ab"))) == 0x7e99_2bf0_7236_231f => idx 2025.
        assert_eq!(s.registers[2025], 1);

        // Numeric normalization carries over from the canonical
        // encoding: INT / BIGINT / integral DOUBLE share registers.
        let mut a = HyperLogLog::new();
        a.add(&Value::Int(42));
        let mut b = HyperLogLog::new();
        b.add(&Value::BigInt(42));
        let mut c = HyperLogLog::new();
        c.add(&Value::Double(42.0));
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn estimates_are_pinned() {
        // End-to-end estimate regression on the pinned hash: any
        // change to encoding, FNV parameters, or the finalizer shows
        // up here as an exact-value diff.
        assert_eq!(estimate_of(1000), 1000);
        assert_eq!(estimate_of(100_000), 101_234);
    }

    #[test]
    fn add_str_matches_add_value() {
        let mut a = HyperLogLog::new();
        let mut b = HyperLogLog::new();
        for i in 0..1000 {
            a.add_str(&format!("k{i}"));
            b.add(&Value::String(format!("k{i}")));
        }
        assert_eq!(a, b, "add_str must be register-identical to add");
    }

    #[test]
    fn string_values() {
        let mut h = HyperLogLog::new();
        for i in 0..5000 {
            h.add(&Value::String(format!("customer_{i}")));
        }
        assert_within(h.estimate(), 5000, 0.05);
    }
}
