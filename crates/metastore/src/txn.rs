//! The transaction manager (paper §3.2).
//!
//! * A global, monotonically increasing **TxnId** per transaction.
//! * Per-table, monotonically increasing **WriteIds**; all records a
//!   transaction writes to one table share its WriteId.
//! * Snapshot Isolation: a snapshot is a [`ValidTxnList`] — the highest
//!   allocated TxnId (high watermark) plus the set of open and aborted
//!   transactions below it. Per table it is narrowed to a
//!   [`ValidWriteIdList`] so readers keep small state.
//! * Updates/deletes use **optimistic conflict resolution**: write sets
//!   are tracked and checked at commit time, first commit wins.

use hive_common::{HiveError, Result, TxnId, WriteId};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Lifecycle state of a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnState {
    Open,
    Committed,
    Aborted,
}

/// A snapshot of the global transaction state: the paper's "transaction
/// list comprising the highest allocated TxnId at that moment, i.e., the
/// high watermark, and the set of open and aborted transactions below it".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidTxnList {
    /// Highest TxnId allocated when the snapshot was taken.
    pub high_watermark: TxnId,
    /// Open or aborted TxnIds at or below the high watermark.
    pub invalid: BTreeSet<TxnId>,
}

impl ValidTxnList {
    /// Is data written by `txn` visible under this snapshot?
    pub fn is_visible(&self, txn: TxnId) -> bool {
        txn <= self.high_watermark && !self.invalid.contains(&txn)
    }
}

/// The per-table narrowing of a snapshot: "the WriteId list is similar
/// to the transaction list but within the scope of a single table".
/// Readers skip rows whose WriteId is above the high watermark or in the
/// open/aborted sets.
///
/// Open and aborted ids are tracked separately because they age
/// differently: a *base* produced by compaction has already excluded
/// aborted records, so a base is usable whenever no **open** WriteId
/// falls at or below it; aborted ids below a base are harmless.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidWriteIdList {
    /// Qualified table name this list applies to.
    pub table: String,
    /// Highest WriteId allocated for the table at snapshot time.
    pub high_watermark: WriteId,
    /// WriteIds of transactions open at snapshot time.
    pub open: BTreeSet<WriteId>,
    /// WriteIds of aborted transactions (until compaction truncates).
    pub aborted: BTreeSet<WriteId>,
    /// The reading transaction's own WriteId for this table, if it has
    /// one: a transaction always sees its own writes.
    pub own: Option<WriteId>,
}

impl ValidWriteIdList {
    /// Is a record with this WriteId visible?
    pub fn is_visible(&self, wid: WriteId) -> bool {
        if self.own == Some(wid) {
            return true;
        }
        wid <= self.high_watermark && !self.open.contains(&wid) && !self.aborted.contains(&wid)
    }

    /// Are *all* WriteIds in `[lo, hi]` visible? Used to decide whether a
    /// compacted delta directory can be consumed wholesale.
    pub fn all_visible(&self, lo: WriteId, hi: WriteId) -> bool {
        if hi > self.high_watermark && self.own != Some(hi) {
            return false;
        }
        self.open.range(lo..=hi).next().is_none() && self.aborted.range(lo..=hi).next().is_none()
    }

    /// Can a `base_N` directory be consumed under this snapshot? True
    /// when `N ≤ hwm` and no open transaction's WriteId is `≤ N`.
    pub fn is_valid_base(&self, base_wid: WriteId) -> bool {
        base_wid <= self.high_watermark && self.open.range(..=base_wid).next().is_none()
    }

    /// Smallest open WriteId, if any — the ceiling below which compaction
    /// may merge ("the compactor only compacts decided history").
    pub fn min_open(&self) -> Option<WriteId> {
        self.open.iter().next().copied()
    }

    /// A list that sees everything up to `hwm` (used by compaction jobs,
    /// which run below the set of open transactions).
    pub fn wide_open(table: &str, hwm: WriteId) -> Self {
        ValidWriteIdList {
            table: table.to_string(),
            high_watermark: hwm,
            open: BTreeSet::new(),
            aborted: BTreeSet::new(),
            own: None,
        }
    }
}

/// An entry in a transaction's write set: one (table, partition) it
/// updated or deleted from.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct WriteSetEntry {
    pub table: String,
    /// Partition directory name, `None` for unpartitioned tables.
    pub partition: Option<String>,
}

impl WriteSetEntry {
    fn overlaps(&self, other: &WriteSetEntry) -> bool {
        self.table == other.table
            && match (&self.partition, &other.partition) {
                (Some(a), Some(b)) => a == b,
                _ => true,
            }
    }
}

#[derive(Debug)]
struct TxnInfo {
    state: TxnState,
    /// WriteIds allocated to this transaction, per table.
    write_ids: HashMap<String, WriteId>,
    /// (table, partition) pairs updated/deleted (conflict-checked).
    write_set: Vec<WriteSetEntry>,
    /// Global commit sequence number when this transaction began; any
    /// conflicting commit with a later sequence aborts us.
    start_seq: u64,
}

/// The transaction manager state machine.
#[derive(Debug, Default)]
pub struct TxnManager {
    next_txn: u64,
    txns: BTreeMap<TxnId, TxnInfo>,
    /// Per-table WriteId counters.
    write_id_counters: HashMap<String, u64>,
    /// Per-table WriteIds belonging to aborted transactions. These stay
    /// invalid until a major compaction truncates history (§3.2).
    aborted_write_ids: HashMap<String, BTreeSet<WriteId>>,
    /// Monotonic commit sequence.
    commit_seq: u64,
    /// Committed write sets: (commit_seq, entry). Conflict detection
    /// scans entries committed after a transaction's start_seq.
    committed_write_sets: Vec<(u64, WriteSetEntry)>,
}

impl TxnManager {
    /// A fresh manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Begin a transaction.
    pub fn open(&mut self) -> TxnId {
        self.next_txn += 1;
        let id = TxnId(self.next_txn);
        self.txns.insert(
            id,
            TxnInfo {
                state: TxnState::Open,
                write_ids: HashMap::new(),
                write_set: Vec::new(),
                start_seq: self.commit_seq,
            },
        );
        id
    }

    /// State of a transaction, if known.
    pub fn state(&self, txn: TxnId) -> Option<TxnState> {
        self.txns.get(&txn).map(|t| t.state)
    }

    /// Allocate (or return the already-allocated) WriteId for `txn` on
    /// `table`.
    pub fn allocate_write_id(&mut self, txn: TxnId, table: &str) -> Result<WriteId> {
        let info = self.open_txn_mut(txn)?;
        if let Some(w) = info.write_ids.get(table) {
            return Ok(*w);
        }
        let counter = self.write_id_counters.entry(table.to_string()).or_insert(0);
        *counter += 1;
        let wid = WriteId(*counter);
        // Re-borrow (counter borrow ended).
        self.txns
            .get_mut(&txn)
            .expect("checked above")
            .write_ids
            .insert(table.to_string(), wid);
        Ok(wid)
    }

    /// Record that `txn` updated/deleted in `(table, partition)` — the
    /// write set used for first-commit-wins conflict detection.
    pub fn add_write_set(
        &mut self,
        txn: TxnId,
        table: &str,
        partition: Option<String>,
    ) -> Result<()> {
        let info = self.open_txn_mut(txn)?;
        info.write_set.push(WriteSetEntry {
            table: table.to_string(),
            partition,
        });
        Ok(())
    }

    fn open_txn_mut(&mut self, txn: TxnId) -> Result<&mut TxnInfo> {
        let info = self
            .txns
            .get_mut(&txn)
            .ok_or_else(|| HiveError::TxnAborted(format!("unknown txn {txn}")))?;
        if info.state != TxnState::Open {
            return Err(HiveError::TxnAborted(format!(
                "txn {txn} is not open ({:?})",
                info.state
            )));
        }
        Ok(info)
    }

    /// Commit. Fails with [`HiveError::TxnAborted`] when the write set
    /// conflicts with a transaction that committed after we began (the
    /// loser of first-commit-wins); the transaction is marked aborted.
    pub fn commit(&mut self, txn: TxnId) -> Result<()> {
        let info = self.open_txn_mut(txn)?;
        let start_seq = info.start_seq;
        let write_set = info.write_set.clone();
        // First-commit-wins: look for committed overlapping writes after
        // our start.
        if !write_set.is_empty() {
            let conflict = self
                .committed_write_sets
                .iter()
                .filter(|(seq, _)| *seq > start_seq)
                .find(|(_, e)| write_set.iter().any(|w| w.overlaps(e)));
            if let Some((_, e)) = conflict {
                let msg = format!(
                    "write-write conflict on {}{} — first commit wins",
                    e.table,
                    e.partition
                        .as_deref()
                        .map(|p| format!("/{p}"))
                        .unwrap_or_default()
                );
                self.do_abort(txn);
                return Err(HiveError::TxnAborted(msg));
            }
        }
        self.commit_seq += 1;
        let seq = self.commit_seq;
        for e in &write_set {
            self.committed_write_sets.push((seq, e.clone()));
        }
        self.txns.get_mut(&txn).expect("exists").state = TxnState::Committed;
        Ok(())
    }

    /// Abort a transaction; its WriteIds become permanently invalid
    /// (until compaction cleans the history).
    pub fn abort(&mut self, txn: TxnId) -> Result<()> {
        self.open_txn_mut(txn)?;
        self.do_abort(txn);
        Ok(())
    }

    fn do_abort(&mut self, txn: TxnId) {
        if let Some(info) = self.txns.get_mut(&txn) {
            info.state = TxnState::Aborted;
            for (table, wid) in &info.write_ids {
                self.aborted_write_ids
                    .entry(table.clone())
                    .or_default()
                    .insert(*wid);
            }
        }
    }

    /// Take a snapshot of the transaction state.
    pub fn valid_txn_list(&self) -> ValidTxnList {
        let high_watermark = TxnId(self.next_txn);
        let invalid = self
            .txns
            .iter()
            .filter(|(_, i)| matches!(i.state, TxnState::Open | TxnState::Aborted))
            .map(|(id, _)| *id)
            .collect();
        ValidTxnList {
            high_watermark,
            invalid,
        }
    }

    /// Narrow a snapshot to one table. `reader` (if given) is the
    /// transaction doing the reading; its own writes stay visible.
    pub fn valid_write_ids(
        &self,
        table: &str,
        snapshot: &ValidTxnList,
        reader: Option<TxnId>,
    ) -> ValidWriteIdList {
        let high_watermark = WriteId(*self.write_id_counters.get(table).unwrap_or(&0));
        let mut open: BTreeSet<WriteId> = BTreeSet::new();
        let mut aborted: BTreeSet<WriteId> = BTreeSet::new();
        // WriteIds of snapshot-invalid (open/aborted) transactions.
        for txn_id in &snapshot.invalid {
            if Some(*txn_id) == reader {
                continue;
            }
            if let Some(info) = self.txns.get(txn_id) {
                if let Some(w) = info.write_ids.get(table) {
                    match info.state {
                        TxnState::Aborted => {
                            aborted.insert(*w);
                        }
                        _ => {
                            open.insert(*w);
                        }
                    }
                }
            }
        }
        // Aborted history not yet cleaned (covers txns already pruned).
        if let Some(ab) = self.aborted_write_ids.get(table) {
            aborted.extend(ab.iter().copied());
        }
        let own = reader
            .and_then(|t| self.txns.get(&t))
            .and_then(|i| i.write_ids.get(table))
            .copied();
        ValidWriteIdList {
            table: table.to_string(),
            high_watermark,
            open,
            aborted,
            own,
        }
    }

    /// Major compaction "deletes history": forget aborted WriteIds at or
    /// below `below` for `table`, shrinking every future snapshot.
    pub fn truncate_aborted_history(&mut self, table: &str, below: WriteId) {
        if let Some(set) = self.aborted_write_ids.get_mut(table) {
            set.retain(|w| *w > below);
        }
    }

    /// All known transactions with their state and the tables they
    /// have written (the `SHOW TRANSACTIONS` diagnostic).
    pub fn show_transactions(&self) -> Vec<(TxnId, TxnState, Vec<String>)> {
        self.txns
            .iter()
            .map(|(id, info)| {
                let mut tables: Vec<String> = info.write_ids.keys().cloned().collect();
                tables.sort();
                (*id, info.state, tables)
            })
            .collect()
    }

    /// Number of open transactions (diagnostics).
    pub fn open_count(&self) -> usize {
        self.txns
            .values()
            .filter(|i| i.state == TxnState::Open)
            .count()
    }

    /// Current WriteId high watermark for a table.
    pub fn table_write_hwm(&self, table: &str) -> WriteId {
        WriteId(*self.write_id_counters.get(table).unwrap_or(&0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn txn_ids_monotonic() {
        let mut tm = TxnManager::new();
        let a = tm.open();
        let b = tm.open();
        assert!(b > a);
    }

    #[test]
    fn write_ids_per_table_and_idempotent() {
        let mut tm = TxnManager::new();
        let t1 = tm.open();
        let t2 = tm.open();
        let w1 = tm.allocate_write_id(t1, "db.a").unwrap();
        let w1b = tm.allocate_write_id(t1, "db.a").unwrap();
        assert_eq!(w1, w1b, "same txn+table reuses its WriteId");
        let w2 = tm.allocate_write_id(t2, "db.a").unwrap();
        assert!(w2 > w1);
        // Independent counter per table.
        let wb = tm.allocate_write_id(t2, "db.b").unwrap();
        assert_eq!(wb, WriteId(1));
    }

    #[test]
    fn snapshot_hides_open_and_aborted() {
        let mut tm = TxnManager::new();
        let committed = tm.open();
        let w_committed = tm.allocate_write_id(committed, "db.t").unwrap();
        tm.commit(committed).unwrap();

        let open = tm.open();
        let w_open = tm.allocate_write_id(open, "db.t").unwrap();

        let aborted = tm.open();
        let w_aborted = tm.allocate_write_id(aborted, "db.t").unwrap();
        tm.abort(aborted).unwrap();

        let snap = tm.valid_txn_list();
        let wids = tm.valid_write_ids("db.t", &snap, None);
        assert!(wids.is_visible(w_committed));
        assert!(!wids.is_visible(w_open));
        assert!(!wids.is_visible(w_aborted));
        // Data written later (above the hwm) is invisible.
        let later = tm.open();
        let w_later = tm.allocate_write_id(later, "db.t").unwrap();
        tm.commit(later).unwrap();
        assert!(!wids.is_visible(w_later));
    }

    #[test]
    fn own_writes_visible() {
        let mut tm = TxnManager::new();
        let me = tm.open();
        let w = tm.allocate_write_id(me, "db.t").unwrap();
        let snap = tm.valid_txn_list();
        let wids = tm.valid_write_ids("db.t", &snap, Some(me));
        assert!(wids.is_visible(w));
        let other_view = tm.valid_write_ids("db.t", &snap, None);
        assert!(!other_view.is_visible(w));
    }

    #[test]
    fn first_commit_wins() {
        let mut tm = TxnManager::new();
        let a = tm.open();
        let b = tm.open();
        tm.allocate_write_id(a, "db.t").unwrap();
        tm.allocate_write_id(b, "db.t").unwrap();
        tm.add_write_set(a, "db.t", Some("d=1".into())).unwrap();
        tm.add_write_set(b, "db.t", Some("d=1".into())).unwrap();
        tm.commit(a).unwrap();
        let err = tm.commit(b).unwrap_err();
        assert!(matches!(err, HiveError::TxnAborted(_)));
        assert_eq!(tm.state(b), Some(TxnState::Aborted));
    }

    #[test]
    fn disjoint_partitions_do_not_conflict() {
        let mut tm = TxnManager::new();
        let a = tm.open();
        let b = tm.open();
        tm.add_write_set(a, "db.t", Some("d=1".into())).unwrap();
        tm.add_write_set(b, "db.t", Some("d=2".into())).unwrap();
        tm.commit(a).unwrap();
        tm.commit(b).unwrap();
    }

    #[test]
    fn table_level_write_conflicts_with_partition_write() {
        let mut tm = TxnManager::new();
        let a = tm.open();
        let b = tm.open();
        tm.add_write_set(a, "db.t", Some("d=1".into())).unwrap();
        tm.add_write_set(b, "db.t", None).unwrap();
        tm.commit(a).unwrap();
        assert!(tm.commit(b).is_err());
    }

    #[test]
    fn inserts_never_conflict() {
        // Pure inserts have empty write sets.
        let mut tm = TxnManager::new();
        let a = tm.open();
        let b = tm.open();
        tm.allocate_write_id(a, "db.t").unwrap();
        tm.allocate_write_id(b, "db.t").unwrap();
        tm.commit(a).unwrap();
        tm.commit(b).unwrap();
    }

    #[test]
    fn conflict_requires_overlap_in_time() {
        let mut tm = TxnManager::new();
        let a = tm.open();
        tm.add_write_set(a, "db.t", None).unwrap();
        tm.commit(a).unwrap();
        // b starts after a committed: no conflict.
        let b = tm.open();
        tm.add_write_set(b, "db.t", None).unwrap();
        tm.commit(b).unwrap();
    }

    #[test]
    fn aborted_history_truncated_by_compaction() {
        let mut tm = TxnManager::new();
        let a = tm.open();
        let w = tm.allocate_write_id(a, "db.t").unwrap();
        tm.abort(a).unwrap();
        let snap = tm.valid_txn_list();
        assert_eq!(tm.valid_write_ids("db.t", &snap, None).aborted.len(), 1);
        tm.truncate_aborted_history("db.t", w);
        // After a major compaction the aborted id disappears from new
        // snapshots — but note it stays via the txn table if the txn is
        // still tracked; valid_write_ids unions both sources.
        let snap2 = tm.valid_txn_list();
        let wids = tm.valid_write_ids("db.t", &snap2, None);
        // The txn is still in the aborted set of the txn list, so its
        // wid remains invalid; truncation only clears the standalone
        // aborted-wid history.
        assert!(!wids.is_visible(w) || wids.aborted.is_empty());
    }

    #[test]
    fn all_visible_range_check() {
        let mut tm = TxnManager::new();
        for _ in 0..5 {
            let t = tm.open();
            tm.allocate_write_id(t, "db.t").unwrap();
            tm.commit(t).unwrap();
        }
        let open = tm.open();
        let w_open = tm.allocate_write_id(open, "db.t").unwrap();
        let snap = tm.valid_txn_list();
        let wids = tm.valid_write_ids("db.t", &snap, None);
        assert!(wids.all_visible(WriteId(1), WriteId(5)));
        assert!(!wids.all_visible(WriteId(1), w_open));
    }
}
