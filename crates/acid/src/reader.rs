//! Merge-on-read: scanning the visible records of an ACID store.

use crate::snapshot::{resolve_snapshot, AcidSnapshot, DeleteSet};
use crate::writer::{record_id_at, ACID_COLS};
use hive_common::{Result, Schema, Value, VectorBatch, WriteId};
use hive_corc::{ColumnPredicate, CorcFile, SearchArgument};
use hive_dfs::{DfsPath, DistFs};
use hive_metastore::ValidWriteIdList;

/// A resolved, ready-to-read view of one ACID store directory under one
/// snapshot. The scan exposes its file list so execution engines (and
/// the LLAP cache path) can drive the reads themselves; [`AcidScan::read`]
/// is the straightforward in-line path.
#[derive(Debug)]
pub struct AcidScan {
    fs: DistFs,
    data_schema: Schema,
    wlist: ValidWriteIdList,
    snapshot: AcidSnapshot,
    deletes: DeleteSet,
}

impl AcidScan {
    /// Resolve a snapshot over `dir` and preload the delete set.
    pub fn new(
        fs: &DistFs,
        dir: &DfsPath,
        data_schema: Schema,
        wlist: ValidWriteIdList,
    ) -> Result<Self> {
        let snapshot = resolve_snapshot(fs, dir, &wlist);
        let deletes = DeleteSet::load(fs, &snapshot, &wlist)?;
        Ok(AcidScan {
            fs: fs.clone(),
            data_schema,
            wlist,
            snapshot,
            deletes,
        })
    }

    /// The resolved directory snapshot.
    pub fn snapshot(&self) -> &AcidSnapshot {
        &self.snapshot
    }

    /// The delete set for this snapshot.
    pub fn deletes(&self) -> &DeleteSet {
        &self.deletes
    }

    /// Data files to scan (base first, then insert deltas in WriteId
    /// order).
    pub fn data_files(&self) -> Vec<DfsPath> {
        let mut out = Vec::new();
        if let Some(b) = &self.snapshot.base {
            for (p, _) in self.fs.list_files_recursive(&b.path) {
                out.push(p);
            }
        }
        for d in &self.snapshot.insert_deltas {
            for (p, _) in self.fs.list_files_recursive(&d.path) {
                out.push(p);
            }
        }
        out
    }

    /// Shift a data-column sarg to the on-disk schema (past the identity
    /// columns).
    pub fn shift_sarg(sarg: &SearchArgument) -> SearchArgument {
        SearchArgument::with(
            sarg.predicates
                .iter()
                .map(|p| shift_predicate(p, ACID_COLS))
                .collect(),
        )
    }

    /// Visibility test for one record of a file batch carrying identity
    /// columns: WriteId valid under the snapshot and not tombstoned.
    pub fn is_record_visible(&self, file_batch: &VectorBatch, i: usize) -> bool {
        let wid = match file_batch.column(0).get(i) {
            Value::BigInt(v) => WriteId(v as u64),
            _ => return false,
        };
        if !self.wlist.is_visible(wid) {
            return false;
        }
        self.deletes.is_empty() || !self.deletes.contains(&record_id_at(file_batch, i))
    }

    /// Read all visible records. `projection` indexes the *data*
    /// schema; when `include_row_ids` is set the identity columns are
    /// prepended to the output (the UPDATE/DELETE path needs them).
    pub fn read(
        &self,
        projection: &[usize],
        sarg: &SearchArgument,
        include_row_ids: bool,
    ) -> Result<VectorBatch> {
        let file_sarg = Self::shift_sarg(sarg);
        // Read identity columns plus the projected data columns.
        let mut file_proj: Vec<usize> = (0..ACID_COLS).collect();
        file_proj.extend(projection.iter().map(|&c| c + ACID_COLS));

        let out_schema = if include_row_ids {
            let mut fields = crate::writer::acid_id_fields();
            fields.extend(
                projection
                    .iter()
                    .map(|&c| self.data_schema.field(c).clone()),
            );
            Schema::new(fields)
        } else {
            self.data_schema.project(projection)
        };
        let mut out = VectorBatch::empty(&out_schema)?;
        for path in self.data_files() {
            let f = CorcFile::open(&self.fs, &path)?;
            for rg in f.selected_row_groups(&file_sarg) {
                let batch = f.read_row_group(rg, &file_proj)?;
                let keep: Vec<u32> = (0..batch.num_rows())
                    .filter(|&i| self.is_record_visible(&batch, i))
                    .map(|i| i as u32)
                    .collect();
                if keep.is_empty() {
                    continue;
                }
                let visible = batch.take(&keep);
                let final_batch = if include_row_ids {
                    visible
                } else {
                    let data_cols: Vec<usize> = (ACID_COLS..ACID_COLS + projection.len()).collect();
                    visible.project(&data_cols)
                };
                // Align schemas (projection of file schema has same types).
                out.append(&final_batch)?;
            }
        }
        Ok(out)
    }
}

/// Re-target a predicate to a shifted column index.
fn shift_predicate(p: &ColumnPredicate, by: usize) -> ColumnPredicate {
    match p {
        ColumnPredicate::Eq(c, v) => ColumnPredicate::Eq(c + by, v.clone()),
        ColumnPredicate::Lt(c, v) => ColumnPredicate::Lt(c + by, v.clone()),
        ColumnPredicate::Le(c, v) => ColumnPredicate::Le(c + by, v.clone()),
        ColumnPredicate::Gt(c, v) => ColumnPredicate::Gt(c + by, v.clone()),
        ColumnPredicate::Ge(c, v) => ColumnPredicate::Ge(c + by, v.clone()),
        ColumnPredicate::Between(c, a, b) => ColumnPredicate::Between(c + by, a.clone(), b.clone()),
        ColumnPredicate::In(c, vs) => ColumnPredicate::In(c + by, vs.clone()),
        ColumnPredicate::IsNull(c) => ColumnPredicate::IsNull(c + by),
        ColumnPredicate::IsNotNull(c) => ColumnPredicate::IsNotNull(c + by),
        ColumnPredicate::BloomRange {
            column,
            min,
            max,
            bloom,
        } => ColumnPredicate::BloomRange {
            column: column + by,
            min: min.clone(),
            max: max.clone(),
            bloom: bloom.clone(),
        },
    }
}

/// Read a non-ACID (external) table: every corc file under `dir`,
/// without identity columns or snapshot filtering.
pub fn read_external_table(
    fs: &DistFs,
    dir: &DfsPath,
    schema: &Schema,
    projection: &[usize],
    sarg: &SearchArgument,
) -> Result<VectorBatch> {
    let mut out = VectorBatch::empty(&schema.project(projection))?;
    for (path, _) in fs.list_files_recursive(dir) {
        let f = CorcFile::open(fs, &path)?;
        for rg in f.selected_row_groups(sarg) {
            out.append(&f.read_row_group(rg, projection)?)?;
        }
    }
    Ok(out)
}
