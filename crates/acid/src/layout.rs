//! Directory naming for the base/delta layout.

use hive_common::WriteId;
use hive_dfs::DfsPath;

/// The role of one store directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DirKind {
    /// `base_N` — all valid records up to WriteId N.
    Base,
    /// `delta_X_Y` — inserted records with WriteIds in `[X, Y]`.
    Delta,
    /// `delete_delta_X_Y` — tombstones written by WriteIds in `[X, Y]`.
    DeleteDelta,
}

/// One parsed store directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AcidDir {
    pub kind: DirKind,
    /// Lowest WriteId covered (equals `max_wid` for `base`).
    pub min_wid: WriteId,
    /// Highest WriteId covered.
    pub max_wid: WriteId,
    /// Full path of the directory.
    pub path: DfsPath,
}

impl AcidDir {
    /// Parse a directory name (`base_100`, `delta_3_7`,
    /// `delete_delta_5_5`); `None` for foreign names.
    pub fn parse(path: &DfsPath) -> Option<AcidDir> {
        let name = path.name();
        if let Some(rest) = name.strip_prefix("base_") {
            let n: u64 = rest.parse().ok()?;
            return Some(AcidDir {
                kind: DirKind::Base,
                min_wid: WriteId(n),
                max_wid: WriteId(n),
                path: path.clone(),
            });
        }
        let (kind, rest) = if let Some(rest) = name.strip_prefix("delete_delta_") {
            (DirKind::DeleteDelta, rest)
        } else if let Some(rest) = name.strip_prefix("delta_") {
            (DirKind::Delta, rest)
        } else {
            return None;
        };
        let (lo, hi) = rest.split_once('_')?;
        let lo: u64 = lo.parse().ok()?;
        let hi: u64 = hi.parse().ok()?;
        if lo > hi {
            return None;
        }
        Some(AcidDir {
            kind,
            min_wid: WriteId(lo),
            max_wid: WriteId(hi),
            path: path.clone(),
        })
    }

    /// Render the directory name for a store.
    pub fn dir_name(kind: DirKind, min: WriteId, max: WriteId) -> String {
        match kind {
            DirKind::Base => format!("base_{}", max.raw()),
            DirKind::Delta => format!("delta_{}_{}", min.raw(), max.raw()),
            DirKind::DeleteDelta => format!("delete_delta_{}_{}", min.raw(), max.raw()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_base() {
        let d = AcidDir::parse(&DfsPath::new("/t/base_100")).unwrap();
        assert_eq!(d.kind, DirKind::Base);
        assert_eq!(d.max_wid, WriteId(100));
    }

    #[test]
    fn parse_deltas() {
        let d = AcidDir::parse(&DfsPath::new("/t/delta_101_105")).unwrap();
        assert_eq!(d.kind, DirKind::Delta);
        assert_eq!((d.min_wid, d.max_wid), (WriteId(101), WriteId(105)));
        let dd = AcidDir::parse(&DfsPath::new("/t/delete_delta_103_103")).unwrap();
        assert_eq!(dd.kind, DirKind::DeleteDelta);
        assert_eq!((dd.min_wid, dd.max_wid), (WriteId(103), WriteId(103)));
    }

    #[test]
    fn reject_foreign_names() {
        assert!(AcidDir::parse(&DfsPath::new("/t/.tmp_compact")).is_none());
        assert!(AcidDir::parse(&DfsPath::new("/t/base_x")).is_none());
        assert!(AcidDir::parse(&DfsPath::new("/t/delta_5")).is_none());
        assert!(AcidDir::parse(&DfsPath::new("/t/delta_7_3")).is_none());
        assert!(AcidDir::parse(&DfsPath::new("/t/data.corc")).is_none());
    }

    #[test]
    fn render_round_trips() {
        for (kind, lo, hi) in [
            (DirKind::Base, WriteId(9), WriteId(9)),
            (DirKind::Delta, WriteId(2), WriteId(5)),
            (DirKind::DeleteDelta, WriteId(4), WriteId(4)),
        ] {
            let name = AcidDir::dir_name(kind, lo, hi);
            let parsed = AcidDir::parse(&DfsPath::new(format!("/t/{name}"))).unwrap();
            assert_eq!(parsed.kind, kind);
            assert_eq!(parsed.max_wid, hi);
        }
    }
}
