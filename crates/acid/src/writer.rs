//! Writing insert deltas, delete deltas, and bases.

use crate::layout::{AcidDir, DirKind};
use hive_common::{
    BucketId, ColumnVector, DataType, Field, RecordId, Result, RowId, Schema, VectorBatch, WriteId,
};
use hive_corc::{CorcWriter, WriterOptions};
use hive_dfs::{DfsPath, DistFs};

/// The synthetic identity columns prepended to every stored record:
/// `(__writeid, __bucket, __rowid)` — the paper's record identity triple.
/// Delete-delta files add `__cur_writeid`, the WriteId of the deleting
/// transaction.
pub const ACID_COLS: usize = 3;

/// Schema of the identity columns.
pub fn acid_id_fields() -> Vec<Field> {
    vec![
        Field::not_null("__writeid", DataType::BigInt),
        Field::not_null("__bucket", DataType::BigInt),
        Field::not_null("__rowid", DataType::BigInt),
    ]
}

/// Full on-disk schema for insert/base files of a table with `data`
/// columns.
pub fn acid_file_schema(data: &Schema) -> Schema {
    let mut fields = acid_id_fields();
    fields.extend(data.fields().iter().cloned());
    Schema::new(fields)
}

/// On-disk schema for delete-delta files.
pub fn delete_file_schema() -> Schema {
    let mut fields = acid_id_fields();
    fields.push(Field::not_null("__cur_writeid", DataType::BigInt));
    Schema::new(fields)
}

/// Writer for one table/partition directory.
#[derive(Debug, Clone)]
pub struct AcidWriter {
    fs: DistFs,
    /// The table or partition directory that stores live under.
    dir: DfsPath,
    data_schema: Schema,
    opts: WriterOptions,
}

impl AcidWriter {
    /// Create a writer for a store directory.
    pub fn new(fs: &DistFs, dir: &DfsPath, data_schema: Schema) -> Self {
        AcidWriter {
            fs: fs.clone(),
            dir: dir.clone(),
            data_schema,
            opts: WriterOptions::default(),
        }
    }

    /// Override writer options (row-group size, bloom columns — the
    /// bloom column indexes refer to *data* columns and are shifted past
    /// the identity columns automatically).
    pub fn with_options(mut self, mut opts: WriterOptions) -> Self {
        opts.bloom_columns = opts.bloom_columns.iter().map(|c| c + ACID_COLS).collect();
        self.opts = opts;
        self
    }

    /// Write an insert delta `delta_w_w` containing `batch`, assigning
    /// RowIds `0..n`. A transaction writing the same table repeatedly
    /// (UPDATE + MERGE arms, multi-insert) produces one `bucket_N` file
    /// per write; the bucket id keeps record identities distinct.
    pub fn write_insert_delta(&self, wid: WriteId, batch: &VectorBatch) -> Result<DfsPath> {
        let dir = self.dir.child(AcidDir::dir_name(DirKind::Delta, wid, wid));
        let bucket = BucketId(self.fs.list_files_recursive(&dir).len() as u64);
        self.write_store(DirKind::Delta, wid, wid, batch, bucket)
    }

    /// Write a store directory (`delta`/`base`) whose records keep the
    /// WriteIds already present in `with_ids` — used by compaction.
    /// `with_ids` must use the full acid file schema.
    pub fn write_store_with_ids(
        &self,
        kind: DirKind,
        min: WriteId,
        max: WriteId,
        with_ids: &VectorBatch,
        under: Option<&DfsPath>,
    ) -> Result<DfsPath> {
        let dir_name = AcidDir::dir_name(kind, min, max);
        let dir = under.unwrap_or(&self.dir).child(dir_name);
        let mut w = CorcWriter::new(acid_file_schema(&self.data_schema), self.opts.clone())?;
        w.write_batch(with_ids)?;
        let bytes = w.finish()?;
        self.fs.create(&dir.child("bucket_0"), bytes)?;
        Ok(dir)
    }

    fn write_store(
        &self,
        kind: DirKind,
        min: WriteId,
        max: WriteId,
        batch: &VectorBatch,
        bucket: BucketId,
    ) -> Result<DfsPath> {
        let n = batch.num_rows();
        let wid_col = ColumnVector::BigInt(vec![max.raw() as i64; n], None);
        let bucket_col = ColumnVector::BigInt(vec![bucket.raw() as i64; n], None);
        let rowid_col = ColumnVector::BigInt((0..n as i64).collect(), None);
        let mut cols: Vec<std::sync::Arc<ColumnVector>> = vec![wid_col, bucket_col, rowid_col]
            .into_iter()
            .map(std::sync::Arc::new)
            .collect();
        cols.extend(batch.columns().iter().cloned());
        let file_batch = VectorBatch::from_arcs(acid_file_schema(batch.schema()), cols, n)?;
        let dir_name = AcidDir::dir_name(kind, min, max);
        let dir = self.dir.child(dir_name);
        let mut w = CorcWriter::new(file_batch.schema().clone(), self.opts.clone())?;
        w.write_batch(&file_batch)?;
        let bytes = w.finish()?;
        self.fs
            .create(&dir.child(format!("bucket_{}", bucket.raw())), bytes)?;
        Ok(dir)
    }

    /// Write a delete delta `delete_delta_w_w` tombstoning `records`.
    pub fn write_delete_delta(&self, wid: WriteId, records: &[RecordId]) -> Result<DfsPath> {
        let schema = delete_file_schema();
        let n = records.len();
        let cols = vec![
            ColumnVector::BigInt(
                records.iter().map(|r| r.write_id.raw() as i64).collect(),
                None,
            ),
            ColumnVector::BigInt(
                records.iter().map(|r| r.bucket.raw() as i64).collect(),
                None,
            ),
            ColumnVector::BigInt(records.iter().map(|r| r.row.raw() as i64).collect(), None),
            ColumnVector::BigInt(vec![wid.raw() as i64; n], None),
        ];
        let batch = VectorBatch::new(schema.clone(), cols)?;
        let dir = self
            .dir
            .child(AcidDir::dir_name(DirKind::DeleteDelta, wid, wid));
        let mut w = CorcWriter::new(schema, self.opts.clone())?;
        w.write_batch(&batch)?;
        let bytes = w.finish()?;
        self.fs.create(&dir.child("bucket_0"), bytes)?;
        Ok(dir)
    }

    /// The store directory this writer targets.
    pub fn dir(&self) -> &DfsPath {
        &self.dir
    }

    /// The table's data schema (without identity columns).
    pub fn data_schema(&self) -> &Schema {
        &self.data_schema
    }
}

/// Extract the [`RecordId`] of row `i` in a batch that carries the
/// identity columns at the front.
///
/// Panics if the first three columns are not non-null `BigInt`.
/// invariant: identity columns are declared `BigInt` by
/// `acid_file_schema`/`delete_file_schema` and written by `AcidWriter`
/// itself, so any other value means the batch handed in is not an ACID
/// identity batch — a caller bug, not a data condition. Parallel scan
/// workers catch this panic and surface it as a typed execution error.
pub fn record_id_at(batch: &VectorBatch, i: usize) -> RecordId {
    fn id_col(batch: &VectorBatch, col: usize, i: usize, name: &str) -> u64 {
        match batch.column(col).get(i) {
            hive_common::Value::BigInt(v) => v as u64,
            v => panic!("bad {name} value {v:?} (not an ACID identity batch)"),
        }
    }
    RecordId::new(
        WriteId(id_col(batch, 0, i, "__writeid")),
        BucketId(id_col(batch, 1, i, "__bucket")),
        RowId(id_col(batch, 2, i, "__rowid")),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use hive_common::{Row, Value};
    use hive_corc::CorcFile;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("b", DataType::String),
        ])
    }

    fn batch(rows: &[(i32, &str)]) -> VectorBatch {
        let rows: Vec<Row> = rows
            .iter()
            .map(|(a, b)| Row::new(vec![Value::Int(*a), Value::String((*b).into())]))
            .collect();
        VectorBatch::from_rows(&schema(), &rows).unwrap()
    }

    #[test]
    fn insert_delta_layout() {
        let fs = DistFs::new();
        let w = AcidWriter::new(&fs, &DfsPath::new("/wh/t"), schema());
        let dir = w
            .write_insert_delta(WriteId(7), &batch(&[(1, "x"), (2, "y")]))
            .unwrap();
        assert_eq!(dir.as_str(), "/wh/t/delta_7_7");
        let f = CorcFile::open(&fs, &dir.child("bucket_0")).unwrap();
        assert_eq!(f.num_rows(), 2);
        assert_eq!(
            f.schema().names(),
            vec!["__writeid", "__bucket", "__rowid", "a", "b"]
        );
        let all = f.read_all().unwrap();
        assert_eq!(
            record_id_at(&all, 0),
            RecordId::new(WriteId(7), BucketId(0), RowId(0))
        );
        assert_eq!(
            record_id_at(&all, 1),
            RecordId::new(WriteId(7), BucketId(0), RowId(1))
        );
        assert_eq!(all.row(1).get(4), &Value::String("y".into()));
    }

    #[test]
    fn delete_delta_layout() {
        let fs = DistFs::new();
        let w = AcidWriter::new(&fs, &DfsPath::new("/wh/t"), schema());
        let victims = vec![
            RecordId::new(WriteId(7), BucketId(0), RowId(1)),
            RecordId::new(WriteId(3), BucketId(0), RowId(0)),
        ];
        let dir = w.write_delete_delta(WriteId(9), &victims).unwrap();
        assert_eq!(dir.as_str(), "/wh/t/delete_delta_9_9");
        let f = CorcFile::open(&fs, &dir.child("bucket_0")).unwrap();
        let all = f.read_all().unwrap();
        assert_eq!(all.num_rows(), 2);
        assert_eq!(record_id_at(&all, 0), victims[0]);
        assert_eq!(all.row(0).get(3), &Value::BigInt(9));
    }
}
