//! Resolving a snapshot against a store directory: which base, which
//! deltas, and the set of deleted record identities.

use crate::layout::{AcidDir, DirKind};
use crate::writer::record_id_at;
use hive_common::{RecordId, Result, WriteId};
use hive_corc::CorcFile;
use hive_dfs::{DfsPath, DistFs};
use hive_metastore::ValidWriteIdList;
use std::collections::HashSet;

/// The store directories a given snapshot must read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AcidSnapshot {
    /// The chosen base, if any.
    pub base: Option<AcidDir>,
    /// Insert deltas above the base (records still filtered per WriteId).
    pub insert_deltas: Vec<AcidDir>,
    /// Delete deltas that may apply.
    pub delete_deltas: Vec<AcidDir>,
    /// Directories that are obsolete under *every* current snapshot
    /// (covered by the chosen base) — candidates for the cleaner.
    pub obsolete: Vec<AcidDir>,
}

impl AcidSnapshot {
    /// Total number of live store directories (diagnostic; drives the
    /// auto-compaction delta-count threshold).
    pub fn delta_count(&self) -> usize {
        self.insert_deltas.len() + self.delete_deltas.len()
    }
}

/// Resolve the directory listing of `dir` against a snapshot:
///
/// 1. choose the highest `base_N` valid under the snapshot
///    (`N ≤ hwm`, no open WriteId `≤ N`);
/// 2. keep insert/delete deltas whose range reaches above `N` and whose
///    range intersects visible WriteIds.
pub fn resolve_snapshot(fs: &DistFs, dir: &DfsPath, wlist: &ValidWriteIdList) -> AcidSnapshot {
    let mut bases: Vec<AcidDir> = Vec::new();
    let mut deltas: Vec<AcidDir> = Vec::new();
    let mut delete_deltas: Vec<AcidDir> = Vec::new();
    for entry in fs.list(dir) {
        if !entry.is_dir() {
            continue; // stray files are not stores
        }
        if let Some(d) = AcidDir::parse(&entry.path) {
            match d.kind {
                DirKind::Base => bases.push(d),
                DirKind::Delta => deltas.push(d),
                DirKind::DeleteDelta => delete_deltas.push(d),
            }
        }
    }
    bases.sort_by_key(|b| b.max_wid);
    let base = bases
        .iter()
        .rev()
        .find(|b| wlist.is_valid_base(b.max_wid))
        .cloned();
    let base_wid = base.as_ref().map_or(WriteId(0), |b| b.max_wid);

    let mut obsolete: Vec<AcidDir> = bases
        .iter()
        .filter(|b| b.max_wid < base_wid)
        .cloned()
        .collect();

    let visible_range = |d: &AcidDir| {
        // A delta is interesting when its range reaches above the base
        // and at least one id in the range could be visible.
        d.max_wid > base_wid && (d.min_wid <= wlist.high_watermark || wlist.own == Some(d.min_wid))
    };
    // Select live deltas, preferring the *widest* range when ranges
    // overlap: a compacted delta_1_5 subsumes delta_1_1..delta_5_5 that
    // the cleaner has not removed yet (Hive's getAcidState rule).
    let select = |mut candidates: Vec<AcidDir>, obsolete: &mut Vec<AcidDir>| {
        candidates.sort_by(|a, b| a.min_wid.cmp(&b.min_wid).then(b.max_wid.cmp(&a.max_wid)));
        let mut out: Vec<AcidDir> = Vec::new();
        for d in candidates {
            if d.max_wid <= base_wid {
                obsolete.push(d);
                continue;
            }
            if let Some(last) = out.last() {
                if d.min_wid >= last.min_wid && d.max_wid <= last.max_wid {
                    obsolete.push(d); // subsumed by a wider delta
                    continue;
                }
            }
            if visible_range(&d) {
                out.push(d);
            }
        }
        out
    };
    let insert_deltas = select(deltas, &mut obsolete);
    let live_deletes = select(delete_deltas, &mut obsolete);
    AcidSnapshot {
        base,
        insert_deltas,
        delete_deltas: live_deletes,
        obsolete,
    }
}

/// The set of deleted record identities visible under a snapshot.
///
/// "Since delta files with deleted records are usually small, they can
/// be kept in-memory most times, accelerating the merging phase" (§3.2).
#[derive(Debug, Clone, Default)]
pub struct DeleteSet {
    set: HashSet<RecordId>,
}

impl DeleteSet {
    /// Build from the snapshot's delete deltas; tombstones written by
    /// invisible (open/aborted/future) transactions are ignored.
    pub fn load(fs: &DistFs, snapshot: &AcidSnapshot, wlist: &ValidWriteIdList) -> Result<Self> {
        let mut set = HashSet::new();
        for d in &snapshot.delete_deltas {
            for (path, _) in fs.list_files_recursive(&d.path) {
                let f = CorcFile::open(fs, &path)?;
                let all = f.read_all()?;
                for i in 0..all.num_rows() {
                    let deleting_wid = match all.column(3).get(i) {
                        hive_common::Value::BigInt(v) => WriteId(v as u64),
                        v => {
                            return Err(hive_common::HiveError::Format(format!(
                                "bad __cur_writeid {v:?}"
                            )))
                        }
                    };
                    if wlist.is_visible(deleting_wid) {
                        set.insert(record_id_at(&all, i));
                    }
                }
            }
        }
        Ok(DeleteSet { set })
    }

    /// Is this record deleted?
    pub fn contains(&self, id: &RecordId) -> bool {
        self.set.contains(id)
    }

    /// Number of tombstones.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// True when no tombstones apply.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }

    /// Insert directly (used by compaction when carrying tombstones
    /// forward).
    pub fn insert(&mut self, id: RecordId) {
        self.set.insert(id);
    }

    /// Iterate over tombstoned identities.
    pub fn iter(&self) -> impl Iterator<Item = &RecordId> {
        self.set.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::AcidWriter;
    use hive_common::{DataType, Field, Row, Schema, Value, VectorBatch};
    use std::collections::BTreeSet;

    fn wlist(hwm: u64, open: &[u64], aborted: &[u64]) -> ValidWriteIdList {
        ValidWriteIdList {
            table: "db.t".into(),
            high_watermark: WriteId(hwm),
            open: open.iter().map(|&w| WriteId(w)).collect::<BTreeSet<_>>(),
            aborted: aborted.iter().map(|&w| WriteId(w)).collect::<BTreeSet<_>>(),
            own: None,
        }
    }

    fn setup() -> (DistFs, AcidWriter, DfsPath) {
        let fs = DistFs::new();
        let dir = DfsPath::new("/wh/t");
        let schema = Schema::new(vec![Field::new("a", DataType::Int)]);
        let w = AcidWriter::new(&fs, &dir, schema);
        (fs, w, dir)
    }

    fn one_row(a: i32) -> VectorBatch {
        let schema = Schema::new(vec![Field::new("a", DataType::Int)]);
        VectorBatch::from_rows(&schema, &[Row::new(vec![Value::Int(a)])]).unwrap()
    }

    #[test]
    fn resolves_deltas_without_base() {
        let (fs, w, dir) = setup();
        w.write_insert_delta(WriteId(1), &one_row(1)).unwrap();
        w.write_insert_delta(WriteId(2), &one_row(2)).unwrap();
        let snap = resolve_snapshot(&fs, &dir, &wlist(2, &[], &[]));
        assert!(snap.base.is_none());
        assert_eq!(snap.insert_deltas.len(), 2);
        assert!(snap.obsolete.is_empty());
    }

    #[test]
    fn base_hides_covered_deltas() {
        let (fs, w, dir) = setup();
        w.write_insert_delta(WriteId(1), &one_row(1)).unwrap();
        w.write_insert_delta(WriteId(2), &one_row(2)).unwrap();
        // Simulate a compaction product.
        fs.create(&dir.child("base_2/bucket_0"), {
            let cw = hive_corc::CorcWriter::new(
                crate::writer::acid_file_schema(&Schema::new(vec![Field::new("a", DataType::Int)])),
                Default::default(),
            )
            .unwrap();
            cw.finish().unwrap()
        })
        .unwrap();
        w.write_insert_delta(WriteId(3), &one_row(3)).unwrap();
        let snap = resolve_snapshot(&fs, &dir, &wlist(3, &[], &[]));
        assert_eq!(snap.base.as_ref().unwrap().max_wid, WriteId(2));
        assert_eq!(snap.insert_deltas.len(), 1);
        assert_eq!(snap.insert_deltas[0].min_wid, WriteId(3));
        assert_eq!(snap.obsolete.len(), 2, "two covered deltas");
    }

    #[test]
    fn base_invalid_when_open_txn_below() {
        let (fs, w, dir) = setup();
        w.write_insert_delta(WriteId(1), &one_row(1)).unwrap();
        fs.mkdirs(&dir.child("base_2"));
        fs.create(&dir.child("base_2/bucket_0"), bytes_of_empty_base())
            .unwrap();
        // WriteId 2 is still open in this snapshot: the base is unusable.
        let snap = resolve_snapshot(&fs, &dir, &wlist(2, &[2], &[]));
        assert!(snap.base.is_none());
        assert_eq!(snap.insert_deltas.len(), 1);
    }

    fn bytes_of_empty_base() -> bytes::Bytes {
        let schema =
            crate::writer::acid_file_schema(&Schema::new(vec![Field::new("a", DataType::Int)]));
        hive_corc::CorcWriter::new(schema, Default::default())
            .unwrap()
            .finish()
            .unwrap()
    }

    #[test]
    fn future_deltas_excluded() {
        let (fs, w, dir) = setup();
        w.write_insert_delta(WriteId(1), &one_row(1)).unwrap();
        w.write_insert_delta(WriteId(5), &one_row(5)).unwrap();
        let snap = resolve_snapshot(&fs, &dir, &wlist(3, &[], &[]));
        assert_eq!(snap.insert_deltas.len(), 1);
        assert_eq!(snap.insert_deltas[0].min_wid, WriteId(1));
    }

    #[test]
    fn delete_set_respects_visibility() {
        let (fs, w, dir) = setup();
        w.write_insert_delta(WriteId(1), &one_row(1)).unwrap();
        let victim = RecordId::new(WriteId(1), hive_common::BucketId(0), hive_common::RowId(0));
        w.write_delete_delta(WriteId(2), &[victim]).unwrap();
        // Visible delete.
        let snap = resolve_snapshot(&fs, &dir, &wlist(2, &[], &[]));
        let ds = DeleteSet::load(&fs, &snap, &wlist(2, &[], &[])).unwrap();
        assert!(ds.contains(&victim));
        // Snapshot where the deleting txn is still open: tombstone hidden.
        let snap_open = resolve_snapshot(&fs, &dir, &wlist(2, &[2], &[]));
        let ds_open = DeleteSet::load(&fs, &snap_open, &wlist(2, &[2], &[])).unwrap();
        assert!(!ds_open.contains(&victim));
        // Aborted deleting txn: tombstone ignored.
        let ds_ab = DeleteSet::load(&fs, &snap, &wlist(2, &[], &[2])).unwrap();
        assert!(!ds_ab.contains(&victim));
    }
}
