//! Minor and major compaction (paper §3.2).
//!
//! * **Minor** merges delta directories with other delta directories.
//! * **Major** merges deltas into the base, applying tombstones and
//!   dropping aborted history.
//!
//! Compaction only merges *decided* history: the merge ceiling is one
//! below the smallest open WriteId. Results are written to a temporary
//! directory and published with an atomic rename; the **cleaning** of
//! obsolete directories is a separate phase so in-flight queries finish
//! before their files disappear (the paper's cleaner separation).

use crate::layout::{AcidDir, DirKind};
use crate::snapshot::{resolve_snapshot, DeleteSet};
use crate::writer::{acid_file_schema, delete_file_schema, record_id_at, AcidWriter};
use hive_common::{Result, Schema, Value, VectorBatch, WriteId};
use hive_corc::{CorcFile, CorcWriter};
use hive_dfs::{DfsPath, DistFs};
use hive_metastore::ValidWriteIdList;

/// What a compaction produced and what it made obsolete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompactionOutcome {
    /// Newly published store directories.
    pub produced: Vec<DfsPath>,
    /// Directories fully covered by the new stores; the cleaner removes
    /// them once old readers drain.
    pub obsolete: Vec<DfsPath>,
    /// For major compaction, the new base WriteId (history below this is
    /// deleted — the TxnManager's aborted set can be truncated to it).
    pub new_base_wid: Option<WriteId>,
}

/// Compactor for one store directory.
#[derive(Debug, Clone)]
pub struct Compactor {
    fs: DistFs,
    dir: DfsPath,
    data_schema: Schema,
}

impl Compactor {
    /// Create a compactor over a table/partition directory.
    pub fn new(fs: &DistFs, dir: &DfsPath, data_schema: Schema) -> Self {
        Compactor {
            fs: fs.clone(),
            dir: dir.clone(),
            data_schema,
        }
    }

    /// The merge ceiling: nothing at or above the smallest open WriteId
    /// is touched.
    fn ceiling(wlist: &ValidWriteIdList) -> WriteId {
        match wlist.min_open() {
            Some(w) => WriteId(w.raw().saturating_sub(1).min(wlist.high_watermark.raw())),
            None => wlist.high_watermark,
        }
    }

    /// Minor compaction: merge qualifying insert deltas into one
    /// `delta_min_max` and delete deltas into one `delete_delta_min_max`.
    /// Returns `None` when there is nothing worth merging.
    pub fn minor(&self, wlist: &ValidWriteIdList) -> Result<Option<CompactionOutcome>> {
        let ceiling = Self::ceiling(wlist);
        let snap = resolve_snapshot(&self.fs, &self.dir, wlist);
        let mergeable = |d: &AcidDir| d.max_wid <= ceiling;
        let ins: Vec<AcidDir> = snap
            .insert_deltas
            .iter()
            .filter(|d| mergeable(d))
            .cloned()
            .collect();
        let dels: Vec<AcidDir> = snap
            .delete_deltas
            .iter()
            .filter(|d| mergeable(d))
            .cloned()
            .collect();
        if ins.len() < 2 && dels.len() < 2 {
            return Ok(None);
        }
        let tmp = self.dir.child(".tmp_compact_minor");
        let mut produced = Vec::new();
        let mut obsolete = Vec::new();

        if ins.len() >= 2 {
            // invariant: guarded by `ins.len() >= 2`, so min/max exist.
            let min = ins.iter().map(|d| d.min_wid).min().expect("ins nonempty");
            let max = ins.iter().map(|d| d.max_wid).max().expect("ins nonempty");
            let merged = self.read_stores_with_ids(&ins, wlist, true)?;
            let w = AcidWriter::new(&self.fs, &self.dir, self.data_schema.clone());
            self.fs.mkdirs(&tmp);
            let dir = w.write_store_with_ids(DirKind::Delta, min, max, &merged, Some(&tmp))?;
            let target = self.dir.child(AcidDir::dir_name(DirKind::Delta, min, max));
            self.fs.rename_dir(&dir, &target)?;
            produced.push(target);
            obsolete.extend(ins.iter().map(|d| d.path.clone()));
        }
        if dels.len() >= 2 {
            // invariant: guarded by `dels.len() >= 2`, so min/max exist.
            let min = dels.iter().map(|d| d.min_wid).min().expect("dels nonempty");
            let max = dels.iter().map(|d| d.max_wid).max().expect("dels nonempty");
            let merged = self.read_delete_stores(&dels, wlist)?;
            self.fs.mkdirs(&tmp);
            let dir_name = AcidDir::dir_name(DirKind::DeleteDelta, min, max);
            let tmp_dir = tmp.child(&dir_name);
            let mut cw = CorcWriter::new(delete_file_schema(), Default::default())?;
            cw.write_batch(&merged)?;
            self.fs.create(&tmp_dir.child("bucket_0"), cw.finish()?)?;
            let target = self.dir.child(dir_name);
            self.fs.rename_dir(&tmp_dir, &target)?;
            produced.push(target);
            obsolete.extend(dels.iter().map(|d| d.path.clone()));
        }
        if self.fs.exists(&tmp) {
            self.fs.delete_dir(&tmp)?;
        }
        Ok(Some(CompactionOutcome {
            produced,
            obsolete,
            new_base_wid: None,
        }))
    }

    /// Major compaction: produce `base_N` with every record visible at
    /// the ceiling, tombstones applied and aborted history dropped.
    pub fn major(&self, wlist: &ValidWriteIdList) -> Result<Option<CompactionOutcome>> {
        let ceiling = Self::ceiling(wlist);
        if ceiling == WriteId(0) {
            return Ok(None);
        }
        let snap = resolve_snapshot(&self.fs, &self.dir, wlist);
        let nothing_new = snap.insert_deltas.iter().all(|d| d.min_wid > ceiling)
            && snap.delete_deltas.iter().all(|d| d.min_wid > ceiling);
        if nothing_new && snap.base.is_some() {
            return Ok(None);
        }
        // Read everything visible up to the ceiling, tombstones applied.
        let mut sources: Vec<AcidDir> = Vec::new();
        if let Some(b) = &snap.base {
            sources.push(b.clone());
        }
        sources.extend(
            snap.insert_deltas
                .iter()
                .filter(|d| d.min_wid <= ceiling)
                .cloned(),
        );
        let compact_wlist = ValidWriteIdList {
            high_watermark: ceiling,
            ..wlist.clone()
        };
        let deletes = DeleteSet::load(&self.fs, &snap, &compact_wlist)?;
        let merged = self.read_stores_filtered(&sources, &compact_wlist, &deletes)?;

        let tmp = self.dir.child(".tmp_compact_major");
        self.fs.mkdirs(&tmp);
        let w = AcidWriter::new(&self.fs, &self.dir, self.data_schema.clone());
        let tmp_base =
            w.write_store_with_ids(DirKind::Base, ceiling, ceiling, &merged, Some(&tmp))?;
        let target = self
            .dir
            .child(AcidDir::dir_name(DirKind::Base, ceiling, ceiling));
        self.fs.rename_dir(&tmp_base, &target)?;
        self.fs.delete_dir(&tmp)?;

        let mut obsolete: Vec<DfsPath> = Vec::new();
        if let Some(b) = &snap.base {
            obsolete.push(b.path.clone());
        }
        for d in snap
            .insert_deltas
            .iter()
            .chain(snap.delete_deltas.iter())
            .filter(|d| d.max_wid <= ceiling)
        {
            obsolete.push(d.path.clone());
        }
        obsolete.extend(snap.obsolete.iter().map(|d| d.path.clone()));
        Ok(Some(CompactionOutcome {
            produced: vec![target],
            obsolete,
            new_base_wid: Some(ceiling),
        }))
    }

    /// The cleaner: physically remove obsolete directories. Run after
    /// in-flight readers of the old snapshot have finished.
    pub fn clean(&self, outcome: &CompactionOutcome) -> Result<()> {
        for d in &outcome.obsolete {
            if self.fs.exists(d) {
                self.fs.delete_dir(d)?;
            }
        }
        Ok(())
    }

    /// Read stores keeping identity columns; optionally keep only
    /// records whose WriteId is visible (drops aborted history).
    fn read_stores_with_ids(
        &self,
        dirs: &[AcidDir],
        wlist: &ValidWriteIdList,
        drop_invisible: bool,
    ) -> Result<VectorBatch> {
        let schema = acid_file_schema(&self.data_schema);
        let mut out = VectorBatch::empty(&schema)?;
        for d in dirs {
            for (path, _) in self.fs.list_files_recursive(&d.path) {
                let f = CorcFile::open(&self.fs, &path)?;
                let all = f.read_all_encoded()?;
                if drop_invisible {
                    let keep: Vec<u32> = (0..all.num_rows())
                        .filter(|&i| match all.column(0).get(i) {
                            Value::BigInt(v) => wlist.is_visible(WriteId(v as u64)),
                            _ => false,
                        })
                        .map(|i| i as u32)
                        .collect();
                    out.append(&all.take(&keep))?;
                } else {
                    out.append(&all)?;
                }
            }
        }
        Ok(out)
    }

    /// Read stores, keeping visible and not-deleted records.
    fn read_stores_filtered(
        &self,
        dirs: &[AcidDir],
        wlist: &ValidWriteIdList,
        deletes: &DeleteSet,
    ) -> Result<VectorBatch> {
        let schema = acid_file_schema(&self.data_schema);
        let mut out = VectorBatch::empty(&schema)?;
        for d in dirs {
            for (path, _) in self.fs.list_files_recursive(&d.path) {
                let f = CorcFile::open(&self.fs, &path)?;
                let all = f.read_all_encoded()?;
                let keep: Vec<u32> = (0..all.num_rows())
                    .filter(|&i| {
                        let visible = match all.column(0).get(i) {
                            Value::BigInt(v) => wlist.is_visible(WriteId(v as u64)),
                            _ => false,
                        };
                        visible && !deletes.contains(&record_id_at(&all, i))
                    })
                    .map(|i| i as u32)
                    .collect();
                out.append(&all.take(&keep))?;
            }
        }
        Ok(out)
    }

    /// Merge delete-delta stores keeping visible tombstones.
    fn read_delete_stores(
        &self,
        dirs: &[AcidDir],
        wlist: &ValidWriteIdList,
    ) -> Result<VectorBatch> {
        let schema = delete_file_schema();
        let mut out = VectorBatch::empty(&schema)?;
        for d in dirs {
            for (path, _) in self.fs.list_files_recursive(&d.path) {
                let f = CorcFile::open(&self.fs, &path)?;
                let all = f.read_all_encoded()?;
                let keep: Vec<u32> = (0..all.num_rows())
                    .filter(|&i| match all.column(3).get(i) {
                        Value::BigInt(v) => wlist.is_visible(WriteId(v as u64)),
                        _ => false,
                    })
                    .map(|i| i as u32)
                    .collect();
                out.append(&all.take(&keep))?;
            }
        }
        Ok(out)
    }
}
