//! # hive-acid
//!
//! The ACID storage layer (paper §3.2): row-level INSERT / UPDATE /
//! DELETE / MERGE over an append-only file system.
//!
//! Data for each table (or partition) lives in *stores* under its
//! directory:
//!
//! ```text
//! store_sales/sold_date_sk=1/
//!   base_100/bucket_0          all valid records up to WriteId 100
//!   delta_101_105/bucket_0     inserts in the WriteId range [101,105]
//!   delete_delta_103_103/...   tombstones pointing at deleted RecordIds
//! ```
//!
//! Every record carries its identity triple `(WriteId, BucketId, RowId)`
//! as three leading synthetic columns. A delete is an insert of a
//! labeled record pointing at the identity of the deleted record; an
//! update splits into delete + insert. Readers resolve a
//! [`hive_metastore::ValidWriteIdList`] snapshot against the directory
//! listing ([`snapshot::resolve_snapshot`]), anti-join delete deltas
//! ([`snapshot::DeleteSet`]), and filter records per WriteId.
//!
//! [`compactor`] implements minor/major compaction with the separated
//! cleaning phase.

pub mod compactor;
pub mod layout;
pub mod reader;
pub mod snapshot;
pub mod writer;

pub use compactor::Compactor;
pub use layout::{AcidDir, DirKind};
pub use reader::{read_external_table, AcidScan};
pub use snapshot::{resolve_snapshot, AcidSnapshot, DeleteSet};
pub use writer::{AcidWriter, ACID_COLS};
