//! End-to-end ACID tests: snapshot isolation, deletes/updates via
//! tombstones, and compaction — driven through the real TxnManager.

use hive_acid::{resolve_snapshot, AcidScan, AcidWriter, Compactor, DeleteSet};
use hive_common::{
    BucketId, DataType, Field, RecordId, Row, RowId, Schema, Value, VectorBatch, WriteId,
};
use hive_corc::SearchArgument;
use hive_dfs::{DfsPath, DistFs};
use hive_metastore::{Metastore, TableBuilder};

const TABLE: &str = "default.t";

fn schema() -> Schema {
    Schema::new(vec![
        Field::new("k", DataType::Int),
        Field::new("v", DataType::String),
    ])
}

fn batch(rows: &[(i32, &str)]) -> VectorBatch {
    let rows: Vec<Row> = rows
        .iter()
        .map(|(k, v)| Row::new(vec![Value::Int(*k), Value::String((*v).into())]))
        .collect();
    VectorBatch::from_rows(&schema(), &rows).unwrap()
}

struct Fixture {
    fs: DistFs,
    ms: Metastore,
    dir: DfsPath,
    writer: AcidWriter,
}

impl Fixture {
    fn new() -> Self {
        let fs = DistFs::new();
        let ms = Metastore::new();
        ms.create_table(TableBuilder::new("default", "t", schema()).build())
            .unwrap();
        let dir = DfsPath::new("/warehouse/default/t");
        let writer = AcidWriter::new(&fs, &dir, schema());
        Fixture {
            fs,
            ms,
            dir,
            writer,
        }
    }

    /// Insert rows in a committed transaction; returns its WriteId.
    fn insert(&self, rows: &[(i32, &str)]) -> WriteId {
        let txn = self.ms.open_txn();
        let wid = self.ms.allocate_write_id(txn, TABLE).unwrap();
        self.writer.write_insert_delta(wid, &batch(rows)).unwrap();
        self.ms.commit_txn(txn).unwrap();
        wid
    }

    /// Delete the given record ids in a committed transaction.
    fn delete(&self, victims: &[RecordId]) -> WriteId {
        let txn = self.ms.open_txn();
        let wid = self.ms.allocate_write_id(txn, TABLE).unwrap();
        self.ms.add_write_set(txn, TABLE, None).unwrap();
        self.writer.write_delete_delta(wid, victims).unwrap();
        self.ms.commit_txn(txn).unwrap();
        wid
    }

    fn scan(&self) -> Vec<(i32, String)> {
        let snap = self.ms.valid_txn_list();
        let wlist = self.ms.valid_write_ids(TABLE, &snap, None);
        let scan = AcidScan::new(&self.fs, &self.dir, schema(), wlist).unwrap();
        let b = scan.read(&[0, 1], &SearchArgument::new(), false).unwrap();
        let mut out: Vec<(i32, String)> = b
            .to_rows()
            .into_iter()
            .map(|r| {
                let k = match r.get(0) {
                    Value::Int(v) => *v,
                    _ => panic!(),
                };
                (k, r.get(1).to_string())
            })
            .collect();
        out.sort();
        out
    }
}

#[test]
fn inserts_become_visible_after_commit() {
    let fx = Fixture::new();
    fx.insert(&[(1, "a"), (2, "b")]);
    assert_eq!(fx.scan(), vec![(1, "a".into()), (2, "b".into())]);
}

#[test]
fn uncommitted_inserts_invisible() {
    let fx = Fixture::new();
    fx.insert(&[(1, "a")]);
    // Open transaction writes but does not commit.
    let txn = fx.ms.open_txn();
    let wid = fx.ms.allocate_write_id(txn, TABLE).unwrap();
    fx.writer
        .write_insert_delta(wid, &batch(&[(99, "ghost")]))
        .unwrap();
    assert_eq!(fx.scan(), vec![(1, "a".into())]);
    // But the writer itself sees its own rows.
    let snap = fx.ms.valid_txn_list();
    let wlist = fx.ms.valid_write_ids(TABLE, &snap, Some(txn));
    let scan = AcidScan::new(&fx.fs, &fx.dir, schema(), wlist).unwrap();
    assert_eq!(
        scan.read(&[0], &SearchArgument::new(), false)
            .unwrap()
            .num_rows(),
        2
    );
    fx.ms.commit_txn(txn).unwrap();
    assert_eq!(fx.scan().len(), 2);
}

#[test]
fn aborted_inserts_stay_invisible() {
    let fx = Fixture::new();
    fx.insert(&[(1, "a")]);
    let txn = fx.ms.open_txn();
    let wid = fx.ms.allocate_write_id(txn, TABLE).unwrap();
    fx.writer
        .write_insert_delta(wid, &batch(&[(66, "aborted")]))
        .unwrap();
    fx.ms.abort_txn(txn).unwrap();
    assert_eq!(fx.scan(), vec![(1, "a".into())]);
}

#[test]
fn delete_removes_rows() {
    let fx = Fixture::new();
    let wid = fx.insert(&[(1, "a"), (2, "b"), (3, "c")]);
    // Delete row with rowid 1 (k=2).
    fx.delete(&[RecordId::new(wid, BucketId(0), RowId(1))]);
    assert_eq!(fx.scan(), vec![(1, "a".into()), (3, "c".into())]);
}

#[test]
fn update_is_delete_plus_insert() {
    let fx = Fixture::new();
    let wid = fx.insert(&[(1, "old")]);
    // UPDATE: one txn writes a delete delta for the old identity and an
    // insert delta with the new value.
    let txn = fx.ms.open_txn();
    let w = fx.ms.allocate_write_id(txn, TABLE).unwrap();
    fx.ms.add_write_set(txn, TABLE, None).unwrap();
    fx.writer
        .write_delete_delta(w, &[RecordId::new(wid, BucketId(0), RowId(0))])
        .unwrap();
    fx.writer
        .write_insert_delta(w, &batch(&[(1, "new")]))
        .unwrap();
    fx.ms.commit_txn(txn).unwrap();
    assert_eq!(fx.scan(), vec![(1, "new".into())]);
}

#[test]
fn concurrent_updates_first_commit_wins() {
    let fx = Fixture::new();
    let wid = fx.insert(&[(1, "orig")]);
    let victim = RecordId::new(wid, BucketId(0), RowId(0));

    let t1 = fx.ms.open_txn();
    let t2 = fx.ms.open_txn();
    let w1 = fx.ms.allocate_write_id(t1, TABLE).unwrap();
    fx.ms.add_write_set(t1, TABLE, None).unwrap();
    let w2 = fx.ms.allocate_write_id(t2, TABLE).unwrap();
    fx.ms.add_write_set(t2, TABLE, None).unwrap();

    fx.writer.write_delete_delta(w1, &[victim]).unwrap();
    fx.writer
        .write_insert_delta(w1, &batch(&[(1, "from-t1")]))
        .unwrap();
    fx.writer.write_delete_delta(w2, &[victim]).unwrap();
    fx.writer
        .write_insert_delta(w2, &batch(&[(1, "from-t2")]))
        .unwrap();

    fx.ms.commit_txn(t1).unwrap();
    assert!(fx.ms.commit_txn(t2).is_err(), "second committer loses");
    // Loser's data never becomes visible.
    assert_eq!(fx.scan(), vec![(1, "from-t1".into())]);
}

#[test]
fn snapshot_taken_before_delete_still_sees_row() {
    let fx = Fixture::new();
    let wid = fx.insert(&[(1, "a")]);
    // Take the snapshot now.
    let snap = fx.ms.valid_txn_list();
    let wlist = fx.ms.valid_write_ids(TABLE, &snap, None);
    // Delete afterwards.
    fx.delete(&[RecordId::new(wid, BucketId(0), RowId(0))]);
    // Old snapshot still sees the row.
    let scan = AcidScan::new(&fx.fs, &fx.dir, schema(), wlist).unwrap();
    assert_eq!(
        scan.read(&[0], &SearchArgument::new(), false)
            .unwrap()
            .num_rows(),
        1
    );
    // Fresh snapshot does not.
    assert!(fx.scan().is_empty());
}

#[test]
fn minor_compaction_merges_deltas() {
    let fx = Fixture::new();
    for i in 0..5 {
        fx.insert(&[(i, "x")]);
    }
    let snap = fx.ms.valid_txn_list();
    let wlist = fx.ms.valid_write_ids(TABLE, &snap, None);
    let before = resolve_snapshot(&fx.fs, &fx.dir, &wlist);
    assert_eq!(before.insert_deltas.len(), 5);

    let compactor = Compactor::new(&fx.fs, &fx.dir, schema());
    let outcome = compactor.minor(&wlist).unwrap().unwrap();
    assert_eq!(outcome.produced.len(), 1);
    assert_eq!(outcome.produced[0].name(), "delta_1_5");
    // Data identical before cleaning...
    assert_eq!(fx.scan().len(), 5);
    compactor.clean(&outcome).unwrap();
    // ...and after.
    assert_eq!(fx.scan().len(), 5);
    let after = resolve_snapshot(
        &fx.fs,
        &fx.dir,
        &fx.ms.valid_write_ids(TABLE, &fx.ms.valid_txn_list(), None),
    );
    assert_eq!(after.insert_deltas.len(), 1);
}

#[test]
fn major_compaction_builds_base_and_drops_history() {
    let fx = Fixture::new();
    let w1 = fx.insert(&[(1, "a"), (2, "b")]);
    fx.insert(&[(3, "c")]);
    fx.delete(&[RecordId::new(w1, BucketId(0), RowId(0))]); // delete k=1
                                                            // An aborted write leaves garbage that major compaction must drop.
    let txn = fx.ms.open_txn();
    let wa = fx.ms.allocate_write_id(txn, TABLE).unwrap();
    fx.writer
        .write_insert_delta(wa, &batch(&[(666, "junk")]))
        .unwrap();
    fx.ms.abort_txn(txn).unwrap();

    let wlist = fx.ms.valid_write_ids(TABLE, &fx.ms.valid_txn_list(), None);
    let compactor = Compactor::new(&fx.fs, &fx.dir, schema());
    let outcome = compactor.major(&wlist).unwrap().unwrap();
    assert_eq!(outcome.new_base_wid, Some(WriteId(4)));
    compactor.clean(&outcome).unwrap();
    fx.ms.truncate_aborted_history(TABLE, WriteId(4));

    assert_eq!(fx.scan(), vec![(2, "b".into()), (3, "c".into())]);
    // Only the base remains.
    let after = resolve_snapshot(
        &fx.fs,
        &fx.dir,
        &fx.ms.valid_write_ids(TABLE, &fx.ms.valid_txn_list(), None),
    );
    assert!(after.base.is_some());
    assert!(after.insert_deltas.is_empty());
    assert!(after.delete_deltas.is_empty());
    // The delete set under the new layout is empty (tombstones consumed).
    let ds = DeleteSet::load(
        &fx.fs,
        &after,
        &fx.ms.valid_write_ids(TABLE, &fx.ms.valid_txn_list(), None),
    )
    .unwrap();
    assert!(ds.is_empty());
}

#[test]
fn compaction_respects_open_transactions() {
    let fx = Fixture::new();
    fx.insert(&[(1, "a")]);
    // An open transaction holds WriteId 2.
    let txn = fx.ms.open_txn();
    let w_open = fx.ms.allocate_write_id(txn, TABLE).unwrap();
    fx.writer
        .write_insert_delta(w_open, &batch(&[(2, "pending")]))
        .unwrap();
    fx.insert(&[(3, "c")]); // WriteId 3
    let wlist = fx.ms.valid_write_ids(TABLE, &fx.ms.valid_txn_list(), None);
    let compactor = Compactor::new(&fx.fs, &fx.dir, schema());
    let outcome = compactor.major(&wlist).unwrap().unwrap();
    // Ceiling is below the open txn: base_1, not base_3.
    assert_eq!(outcome.new_base_wid, Some(WriteId(1)));
    compactor.clean(&outcome).unwrap();
    // Pending data survives; committing it makes it visible.
    fx.ms.commit_txn(txn).unwrap();
    assert_eq!(
        fx.scan(),
        vec![(1, "a".into()), (2, "pending".into()), (3, "c".into())]
    );
}

#[test]
fn sarg_pushdown_through_acid_scan() {
    let fx = Fixture::new();
    for chunk in 0..4 {
        let rows: Vec<(i32, String)> = (0..1000)
            .map(|i| (chunk * 1000 + i, format!("v{i}")))
            .collect();
        let refs: Vec<(i32, &str)> = rows.iter().map(|(k, v)| (*k, v.as_str())).collect();
        fx.insert(&refs);
    }
    let wlist = fx.ms.valid_write_ids(TABLE, &fx.ms.valid_txn_list(), None);
    let scan = AcidScan::new(&fx.fs, &fx.dir, schema(), wlist).unwrap();
    let sarg = SearchArgument::with(vec![hive_corc::ColumnPredicate::Between(
        0,
        Value::Int(1500),
        Value::Int(1600),
    )]);
    let before = fx.fs.stats().snapshot();
    let got = scan.read(&[0], &sarg, false).unwrap();
    let selective_bytes = fx.fs.stats().snapshot().since(&before).bytes_read;
    // Row groups are per-delta (1000 rows each); only delta_2 matches.
    assert_eq!(got.num_rows(), 1000);
    let before = fx.fs.stats().snapshot();
    scan.read(&[0], &SearchArgument::new(), false).unwrap();
    let full_bytes = fx.fs.stats().snapshot().since(&before).bytes_read;
    assert!(
        selective_bytes < full_bytes,
        "sarg should cut I/O: {selective_bytes} vs {full_bytes}"
    );
}
