//! Property tests: the ACID stack's visible row set always equals a
//! trivial in-memory model, no matter how inserts, aborts, deletes,
//! minor/major compactions, and cleaning interleave (§3.2).

use hive_acid::{AcidScan, AcidWriter, Compactor};
use hive_common::{BucketId, DataType, Field, RecordId, Row, RowId, Schema, Value, VectorBatch};
use hive_corc::SearchArgument;
use hive_dfs::{DfsPath, DistFs};
use hive_metastore::{Metastore, TableBuilder};
use proptest::prelude::*;
use std::collections::BTreeMap;

const TABLE: &str = "default.t";

fn schema() -> Schema {
    Schema::new(vec![Field::new("k", DataType::Int)])
}

/// One step of the generated history.
#[derive(Debug, Clone)]
enum Op {
    /// Insert `n` fresh keys and commit.
    Insert(u8),
    /// Insert `n` keys, then abort the transaction.
    InsertAborted(u8),
    /// Delete the i-th currently-visible row (modulo count) and commit.
    Delete(u8),
    /// Minor compaction + clean.
    Minor,
    /// Major compaction + clean.
    Major,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (1u8..6).prop_map(Op::Insert),
        1 => (1u8..6).prop_map(Op::InsertAborted),
        3 => any::<u8>().prop_map(Op::Delete),
        1 => Just(Op::Minor),
        1 => Just(Op::Major),
    ]
}

struct Harness {
    fs: DistFs,
    ms: Metastore,
    dir: DfsPath,
    writer: AcidWriter,
    /// Model: visible rows as key → RecordId.
    model: BTreeMap<i32, RecordId>,
    next_key: i32,
}

impl Harness {
    fn new() -> Self {
        let fs = DistFs::new();
        let ms = Metastore::new();
        ms.create_table(TableBuilder::new("default", "t", schema()).build())
            .unwrap();
        let dir = DfsPath::new("/warehouse/default/t");
        let writer = AcidWriter::new(&fs, &dir, schema());
        Harness {
            fs,
            ms,
            dir,
            writer,
            model: BTreeMap::new(),
            next_key: 0,
        }
    }

    fn batch(&mut self, n: u8) -> (VectorBatch, Vec<i32>) {
        let keys: Vec<i32> = (0..n as i32).map(|i| self.next_key + i).collect();
        self.next_key += n as i32;
        let rows: Vec<Row> = keys
            .iter()
            .map(|&k| Row::new(vec![Value::Int(k)]))
            .collect();
        (VectorBatch::from_rows(&schema(), &rows).unwrap(), keys)
    }

    fn apply(&mut self, op: &Op) {
        match op {
            Op::Insert(n) => {
                let (batch, keys) = self.batch(*n);
                let txn = self.ms.open_txn();
                let wid = self.ms.allocate_write_id(txn, TABLE).unwrap();
                self.writer.write_insert_delta(wid, &batch).unwrap();
                self.ms.commit_txn(txn).unwrap();
                for (i, k) in keys.into_iter().enumerate() {
                    self.model
                        .insert(k, RecordId::new(wid, BucketId(0), RowId(i as u64)));
                }
            }
            Op::InsertAborted(n) => {
                let (batch, _) = self.batch(*n);
                let txn = self.ms.open_txn();
                let wid = self.ms.allocate_write_id(txn, TABLE).unwrap();
                self.writer.write_insert_delta(wid, &batch).unwrap();
                self.ms.abort_txn(txn).unwrap();
                // Model unchanged: aborted rows must never be visible.
            }
            Op::Delete(i) => {
                if self.model.is_empty() {
                    return;
                }
                let idx = *i as usize % self.model.len();
                let (&key, &rid) = self.model.iter().nth(idx).unwrap();
                let txn = self.ms.open_txn();
                let wid = self.ms.allocate_write_id(txn, TABLE).unwrap();
                self.ms.add_write_set(txn, TABLE, None).unwrap();
                self.writer.write_delete_delta(wid, &[rid]).unwrap();
                self.ms.commit_txn(txn).unwrap();
                self.model.remove(&key);
            }
            Op::Minor => {
                let snap = self.ms.valid_txn_list();
                let wlist = self.ms.valid_write_ids(TABLE, &snap, None);
                let compactor = Compactor::new(&self.fs, &self.dir, schema());
                if let Some(outcome) = compactor.minor(&wlist).unwrap() {
                    compactor.clean(&outcome).unwrap();
                }
            }
            Op::Major => {
                let snap = self.ms.valid_txn_list();
                let wlist = self.ms.valid_write_ids(TABLE, &snap, None);
                let compactor = Compactor::new(&self.fs, &self.dir, schema());
                if let Some(outcome) = compactor.major(&wlist).unwrap() {
                    compactor.clean(&outcome).unwrap();
                    if let Some(hwm) = outcome.new_base_wid {
                        self.ms.truncate_aborted_history(TABLE, hwm);
                    }
                }
            }
        }
    }

    fn visible_keys(&self) -> Vec<i32> {
        let snap = self.ms.valid_txn_list();
        let wlist = self.ms.valid_write_ids(TABLE, &snap, None);
        let scan = AcidScan::new(&self.fs, &self.dir, schema(), wlist).unwrap();
        let b = scan.read(&[0], &SearchArgument::new(), false).unwrap();
        let mut out: Vec<i32> = b
            .to_rows()
            .into_iter()
            .map(|r| match r.get(0) {
                Value::Int(v) => *v,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        out.sort_unstable();
        out
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The visible row set matches the model after every step.
    #[test]
    fn acid_history_matches_model(ops in proptest::collection::vec(op_strategy(), 1..24)) {
        let mut h = Harness::new();
        for (step, op) in ops.iter().enumerate() {
            h.apply(op);
            let got = h.visible_keys();
            let want: Vec<i32> = h.model.keys().copied().collect();
            prop_assert_eq!(&got, &want, "divergence after step {} ({:?})", step, op);
        }
    }

    /// Compactions never change what a reader sees, and the delta count
    /// after a major compaction + clean is zero.
    #[test]
    fn major_compaction_is_invisible_and_collapses_layout(
        ops in proptest::collection::vec(op_strategy(), 1..16),
    ) {
        let mut h = Harness::new();
        for op in &ops {
            h.apply(op);
        }
        let before = h.visible_keys();
        h.apply(&Op::Major);
        let after = h.visible_keys();
        prop_assert_eq!(before, after);
        // Post-clean layout: at most a single base directory remains.
        let entries: Vec<String> = h
            .fs
            .list(&h.dir)
            .into_iter()
            .map(|e| e.path.to_string())
            .collect();
        let deltas = entries
            .iter()
            .filter(|e| {
                let leaf = e.rsplit('/').next().unwrap_or("");
                leaf.starts_with("delta_") || leaf.starts_with("delete_delta_")
            })
            .count();
        prop_assert_eq!(deltas, 0, "layout after major+clean: {:?}", entries);
    }
}
