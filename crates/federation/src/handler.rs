//! The storage-handler interface (paper §6.1) and the registry that the
//! execution engine consults for federated scans.
//!
//! A storage handler consists of an **input format** (how to read,
//! including how a pushed query answers the scan), an **output format**
//! (how to write), a **SerDe** (value conversion — here folded into the
//! batch-based read/write paths), and a **Metastore hook** (notified on
//! table create/drop).

use hive_common::{HiveError, Result, VectorBatch};
use hive_exec::{ExternalScanResult, ExternalScanner};
use hive_metastore::Table;
use hive_optimizer::{ScalarExpr, ScanTable};
use std::collections::HashMap;
use std::sync::Arc;

/// A pluggable connector to an external data system.
pub trait StorageHandler: Send + Sync {
    /// Registry key, e.g. `"druid"`, `"jdbc"`.
    fn name(&self) -> &str;

    /// Human-readable SerDe identifier (diagnostics only — conversion
    /// happens inside scan/write).
    fn serde_name(&self) -> &str {
        "batch"
    }

    /// Input format: answer a scan. `table.external_query`, when set,
    /// carries a query in the external system's language produced by
    /// the pushdown rules; otherwise the handler exports raw rows and
    /// the engine evaluates `filters` locally.
    fn scan(
        &self,
        table: &ScanTable,
        projection: &[usize],
        filters: &[ScalarExpr],
    ) -> Result<ExternalScanResult>;

    /// Output format: append a batch to the external system.
    fn write(&self, table: &Table, batch: &VectorBatch) -> Result<()>;

    /// Metastore hook: a table backed by this handler was created.
    /// May mutate the table (e.g. infer its schema from the external
    /// system, the paper's "automatically inferred from Druid metadata").
    fn on_table_created(&self, table: &mut Table) -> Result<()> {
        let _ = table;
        Ok(())
    }

    /// Metastore hook: a table backed by this handler was dropped.
    fn on_table_dropped(&self, table: &Table) -> Result<()> {
        let _ = table;
        Ok(())
    }
}

/// The handler registry, keyed by handler name.
#[derive(Clone, Default)]
pub struct HandlerRegistry {
    handlers: HashMap<String, Arc<dyn StorageHandler>>,
}

impl HandlerRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a handler under its name.
    pub fn register(&mut self, handler: Arc<dyn StorageHandler>) {
        self.handlers.insert(handler.name().to_string(), handler);
    }

    /// Look up a handler.
    pub fn get(&self, name: &str) -> Result<Arc<dyn StorageHandler>> {
        self.handlers.get(name).cloned().ok_or_else(|| {
            HiveError::External(format!("no storage handler registered as '{name}'"))
        })
    }

    /// Registered handler names.
    pub fn names(&self) -> Vec<&str> {
        self.handlers.keys().map(|s| s.as_str()).collect()
    }
}

/// Adapter implementing the execution engine's [`ExternalScanner`] over
/// the registry.
pub struct FederationScanner {
    registry: HandlerRegistry,
}

impl FederationScanner {
    /// Wrap a registry.
    pub fn new(registry: HandlerRegistry) -> Self {
        FederationScanner { registry }
    }
}

impl ExternalScanner for FederationScanner {
    fn scan(
        &self,
        table: &ScanTable,
        projection: &[usize],
        filters: &[ScalarExpr],
    ) -> Result<ExternalScanResult> {
        let name = table.handler.as_deref().ok_or_else(|| {
            HiveError::External(format!("{} has no storage handler", table.qualified_name))
        })?;
        self.registry.get(name)?.scan(table, projection, filters)
    }
}
