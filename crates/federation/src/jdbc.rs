//! A JDBC-style substrate: an embedded mini SQL engine that receives
//! *generated SQL text* from the pushdown rules — exercising the paper's
//! "multiple engines with JDBC support" federation path (§6.2).

use crate::handler::StorageHandler;
use crate::sqlgen;
use hive_common::{HiveError, Result, Row, Schema, Value, VectorBatch};
use hive_exec::ExternalScanResult;
use hive_metastore::Table;
use hive_optimizer::eval::eval_scalar;
use hive_optimizer::{ScalarExpr, ScanTable};
use hive_sql::{self as ast, parse_sql};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// Latency model: remote round trip plus per-row transfer.
const ROUND_TRIP_MS: f64 = 30.0;
const PER_ROW_MS: f64 = 0.000_4;

/// The remote "database": named row tables plus a log of received SQL.
#[derive(Debug, Clone, Default)]
pub struct JdbcBackend {
    inner: Arc<RwLock<Inner>>,
}

#[derive(Debug, Default)]
struct Inner {
    tables: HashMap<String, (Schema, Vec<Row>)>,
    received_sql: Vec<String>,
}

impl JdbcBackend {
    /// An empty backend.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create (or replace) a remote table.
    pub fn create_table(&self, name: &str, schema: Schema) {
        self.inner
            .write()
            .tables
            .insert(name.to_string(), (schema, Vec::new()));
    }

    /// Append rows to a remote table.
    pub fn insert(&self, name: &str, rows: Vec<Row>) -> Result<()> {
        let mut g = self.inner.write();
        let (_, data) = g
            .tables
            .get_mut(name)
            .ok_or_else(|| HiveError::External(format!("jdbc: unknown table {name}")))?;
        data.extend(rows);
        Ok(())
    }

    /// The schema of a remote table.
    pub fn table_schema(&self, name: &str) -> Option<Schema> {
        self.inner.read().tables.get(name).map(|(s, _)| s.clone())
    }

    /// SQL statements this backend has received (pushdown verification).
    pub fn received_sql(&self) -> Vec<String> {
        self.inner.read().received_sql.clone()
    }

    /// Execute a (generated) SQL statement: the supported dialect subset
    /// is single-table `SELECT cols FROM t [WHERE pred]`.
    pub fn execute_sql(&self, sql: &str) -> Result<(Schema, Vec<Row>)> {
        self.inner.write().received_sql.push(sql.to_string());
        let stmt = parse_sql(sql)?;
        let ast::Statement::Query(q) = stmt else {
            return Err(HiveError::External("jdbc: only SELECT supported".into()));
        };
        let ast::QueryBody::Select(sel) = &q.body else {
            return Err(HiveError::External("jdbc: set ops unsupported".into()));
        };
        let [ast::TableRef::Table { name, .. }] = &sel.from[..] else {
            return Err(HiveError::External(
                "jdbc: exactly one base table required".into(),
            ));
        };
        let g = self.inner.read();
        let (schema, rows) = g
            .tables
            .get(&name.name)
            .ok_or_else(|| HiveError::External(format!("jdbc: unknown table {}", name.name)))?;
        // Resolve projection.
        let mut out_fields = Vec::new();
        let mut out_cols: Vec<usize> = Vec::new();
        for item in &sel.projection {
            match item {
                ast::SelectItem::Wildcard => {
                    for (i, f) in schema.fields().iter().enumerate() {
                        out_cols.push(i);
                        out_fields.push(f.clone());
                    }
                }
                ast::SelectItem::Expr {
                    expr: ast::Expr::Column { name, .. },
                    ..
                } => {
                    let i = schema.index_of_required(name)?;
                    out_cols.push(i);
                    out_fields.push(schema.field(i).clone());
                }
                other => {
                    return Err(HiveError::External(format!(
                        "jdbc: unsupported select item {other:?}"
                    )))
                }
            }
        }
        // Lower the predicate over the base schema.
        let pred = sel
            .selection
            .as_ref()
            .map(|p| lower_pred(p, schema))
            .transpose()?;
        let mut out_rows = Vec::new();
        for r in rows {
            let keep = match &pred {
                Some(p) => eval_scalar(p, r.values())? == Value::Boolean(true),
                None => true,
            };
            if keep {
                out_rows.push(Row::new(
                    out_cols.iter().map(|&c| r.get(c).clone()).collect(),
                ));
            }
        }
        Ok((Schema::new(out_fields), out_rows))
    }
}

/// Lower an AST predicate against a flat schema (no joins/subqueries in
/// the generated dialect).
fn lower_pred(e: &ast::Expr, schema: &Schema) -> Result<ScalarExpr> {
    Ok(match e {
        ast::Expr::Literal(v) => ScalarExpr::Literal(v.clone()),
        ast::Expr::Column { name, .. } => ScalarExpr::Column(schema.index_of_required(name)?),
        ast::Expr::BinaryOp { left, op, right } => ScalarExpr::Binary {
            op: *op,
            left: Box::new(lower_pred(left, schema)?),
            right: Box::new(lower_pred(right, schema)?),
        },
        ast::Expr::Not(i) => ScalarExpr::Not(Box::new(lower_pred(i, schema)?)),
        ast::Expr::Negate(i) => ScalarExpr::Negate(Box::new(lower_pred(i, schema)?)),
        ast::Expr::IsNull { expr, negated } => ScalarExpr::IsNull {
            expr: Box::new(lower_pred(expr, schema)?),
            negated: *negated,
        },
        ast::Expr::Like {
            expr,
            pattern,
            negated,
        } => ScalarExpr::Like {
            expr: Box::new(lower_pred(expr, schema)?),
            pattern: Box::new(lower_pred(pattern, schema)?),
            negated: *negated,
        },
        ast::Expr::InList {
            expr,
            list,
            negated,
        } => ScalarExpr::InList {
            expr: Box::new(lower_pred(expr, schema)?),
            list: list
                .iter()
                .map(|i| lower_pred(i, schema))
                .collect::<Result<Vec<_>>>()?,
            negated: *negated,
        },
        ast::Expr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            let e = lower_pred(expr, schema)?;
            let ge = ScalarExpr::Binary {
                op: ast::BinaryOp::GtEq,
                left: Box::new(e.clone()),
                right: Box::new(lower_pred(low, schema)?),
            };
            let le = ScalarExpr::Binary {
                op: ast::BinaryOp::LtEq,
                left: Box::new(e),
                right: Box::new(lower_pred(high, schema)?),
            };
            let both = ScalarExpr::Binary {
                op: ast::BinaryOp::And,
                left: Box::new(ge),
                right: Box::new(le),
            };
            if *negated {
                ScalarExpr::Not(Box::new(both))
            } else {
                both
            }
        }
        other => {
            return Err(HiveError::External(format!(
                "jdbc: unsupported predicate {other:?}"
            )))
        }
    })
}

/// The JDBC storage handler.
pub struct JdbcStorageHandler {
    backend: JdbcBackend,
}

impl JdbcStorageHandler {
    /// Bind to a backend.
    pub fn new(backend: JdbcBackend) -> Self {
        JdbcStorageHandler { backend }
    }

    /// The backend (tests / setup).
    pub fn backend(&self) -> &JdbcBackend {
        &self.backend
    }
}

impl StorageHandler for JdbcStorageHandler {
    fn name(&self) -> &str {
        "jdbc"
    }

    fn serde_name(&self) -> &str {
        "jdbc-rows"
    }

    fn scan(
        &self,
        table: &ScanTable,
        projection: &[usize],
        filters: &[ScalarExpr],
    ) -> Result<ExternalScanResult> {
        // Generate remote SQL: either the pre-pushed statement or one we
        // derive from the scan's projection and filters right here.
        let remote_name = table
            .external_source
            .clone()
            .unwrap_or_else(|| table.name.clone());
        let sql = match &table.external_query {
            Some(s) => s.clone(),
            None => {
                // Try to push the scan's own filters; fall back to a
                // plain projection when a filter shape is ungenerable.
                sqlgen::select_sql(&remote_name, &table.schema, projection, filters)
                    .or_else(|_| sqlgen::select_sql(&remote_name, &table.schema, projection, &[]))?
            }
        };
        let (schema, rows) = self.backend.execute_sql(&sql)?;
        let n = rows.len();
        let batch = VectorBatch::from_rows(&schema, &rows)?;
        // When we pushed the filters ourselves the engine's residual
        // re-check is harmless (idempotent predicates).
        Ok(ExternalScanResult {
            batch,
            external_ms: ROUND_TRIP_MS + n as f64 * PER_ROW_MS,
            pushed: true,
        })
    }

    fn write(&self, table: &Table, batch: &VectorBatch) -> Result<()> {
        let name = table
            .properties
            .get("jdbc.table")
            .cloned()
            .unwrap_or_else(|| table.name.clone());
        if self.backend.table_schema(&name).is_none() {
            self.backend.create_table(&name, table.schema.clone());
        }
        self.backend.insert(&name, batch.to_rows())
    }

    fn on_table_created(&self, table: &mut Table) -> Result<()> {
        let name = table
            .properties
            .get("jdbc.table")
            .cloned()
            .unwrap_or_else(|| table.name.clone());
        if let Some(schema) = self.backend.table_schema(&name) {
            if table.schema.is_empty() {
                table.schema = schema;
            }
        } else if !table.schema.is_empty() {
            self.backend.create_table(&name, table.schema.clone());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hive_common::{DataType, Field};

    fn backend() -> JdbcBackend {
        let b = JdbcBackend::new();
        b.create_table(
            "remote_t",
            Schema::new(vec![
                Field::new("id", DataType::Int),
                Field::new("name", DataType::String),
            ]),
        );
        b.insert(
            "remote_t",
            (0..10)
                .map(|i| Row::new(vec![Value::Int(i), Value::String(format!("n{i}"))]))
                .collect(),
        )
        .unwrap();
        b
    }

    #[test]
    fn executes_generated_sql() {
        let b = backend();
        let (schema, rows) = b
            .execute_sql("SELECT name FROM remote_t WHERE (id > 6)")
            .unwrap();
        assert_eq!(schema.names(), vec!["name"]);
        assert_eq!(rows.len(), 3);
        assert_eq!(b.received_sql().len(), 1);
    }

    #[test]
    fn rejects_unsupported_dialect() {
        let b = backend();
        assert!(b.execute_sql("SELECT a FROM t1, t2").is_err());
        assert!(b
            .execute_sql("SELECT name FROM remote_t UNION SELECT name FROM remote_t")
            .is_err());
    }
}
