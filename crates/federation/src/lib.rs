//! # hive-federation
//!
//! The federated warehouse layer (paper §6): Hive as a *mediator* over
//! specialized data systems.
//!
//! * [`handler::StorageHandler`] — the storage-handler interface (§6.1):
//!   input format (scan, including pushed queries), output format
//!   (write), SerDe, and metastore hooks.
//! * [`druid`] — a Druid-like OLAP substrate (§6.2's example system):
//!   time-partitioned segments, dictionary-encoded dimensions with
//!   inverted bitmap indexes, and a JSON query API
//!   (timeseries/topN/groupBy/scan) that the pushdown rules target.
//! * [`jdbc`] — a JDBC-style substrate receiving *generated SQL text*
//!   (the "Calcite can generate SQL queries … using a large number of
//!   different dialects" path).
//! * [`pushdown`] — the Calcite-role rules that replace plan subtrees
//!   over external tables with pushed queries (Figure 6).
//! * [`json`] — a minimal self-contained JSON reader/writer used by the
//!   Druid query language (the approved dependency list has no JSON
//!   crate; see DESIGN.md §5).

pub mod druid;
pub mod handler;
pub mod jdbc;
pub mod json;
pub mod pushdown;
pub mod sqlgen;

pub use druid::{DruidQuery, DruidStorageHandler, DruidStore};
pub use handler::{FederationScanner, HandlerRegistry, StorageHandler};
pub use jdbc::{JdbcBackend, JdbcStorageHandler};
