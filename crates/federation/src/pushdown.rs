//! Federation pushdown rules — the Calcite role from §6.2: "the
//! optimizer applies rules that match a sequence of operators in the
//! plan and generate a new equivalent sequence with more operations
//! executed in Druid", attaching the generated query to the scan.

use crate::druid::{DruidAgg, DruidFilter, DruidQuery};
use crate::sqlgen;
use hive_common::{dates, DataType, Field, Schema, Value};
use hive_optimizer::plan::{LogicalPlan, ScanTable};
use hive_optimizer::rules::transform_up;
use hive_optimizer::{AggFunc, ScalarExpr};
use hive_sql::BinaryOp;
use std::sync::Arc;

/// Apply every federation pushdown rule to the plan.
pub fn push_to_external(plan: &LogicalPlan) -> LogicalPlan {
    let plan = transform_up(plan, &mut push_druid_aggregate);
    let plan = transform_up(&plan, &mut push_druid_limit);
    transform_up(&plan, &mut push_external_scan)
}

/// Rule 1b: `Limit(Sort(Scan(druid groupBy)))` → fold the ordering and
/// limit into the pushed query's `limitSpec` (Figure 6's
/// `ORDER BY s DESC LIMIT 10`). The local Sort/Limit stay in the plan
/// (they are idempotent) but Druid now truncates before transfer.
fn push_druid_limit(node: LogicalPlan) -> LogicalPlan {
    let LogicalPlan::Limit { input, n } = &node else {
        return node;
    };
    let LogicalPlan::Sort {
        input: sort_input,
        keys,
    } = input.as_ref()
    else {
        return node;
    };
    // Allow a pass-through projection between Sort and Scan.
    let (scan, mapping): (&LogicalPlan, Option<Vec<usize>>) = match sort_input.as_ref() {
        LogicalPlan::Project { input, exprs, .. } => {
            let cols: Option<Vec<usize>> = exprs
                .iter()
                .map(|e| match e {
                    ScalarExpr::Column(c) => Some(*c),
                    _ => None,
                })
                .collect();
            match (input.as_ref(), cols) {
                (s @ LogicalPlan::Scan { .. }, Some(m)) => (s, Some(m)),
                _ => return node,
            }
        }
        s @ LogicalPlan::Scan { .. } => (s, None),
        _ => return node,
    };
    let LogicalPlan::Scan {
        table,
        projection,
        filters,
        partitions,
        semijoin_filters,
    } = scan
    else {
        return node;
    };
    let Some(json) = &table.external_query else {
        return node;
    };
    if table.handler.as_deref() != Some("druid") {
        return node;
    }
    let Ok(mut q) = DruidQuery::parse(json) else {
        return node;
    };
    if q.limit_spec.is_some() {
        return node;
    }
    // Sort keys must be plain columns of the pushed query's output.
    let mut columns: Vec<(String, bool)> = Vec::new();
    for k in keys {
        let ScalarExpr::Column(c) = &k.expr else {
            return node;
        };
        let scan_out = match &mapping {
            Some(m) => match m.get(*c) {
                Some(&mc) => mc,
                None => return node,
            },
            None => *c,
        };
        // The scan's own projection indexes into table.schema, whose
        // layout for a pushed groupBy is dims then agg names.
        let scan_out = match projection.get(scan_out) {
            Some(&i) => i,
            None => return node,
        };
        let name = if scan_out < q.dimensions.len() {
            q.dimensions[scan_out].clone()
        } else {
            match q.aggregations.get(scan_out - q.dimensions.len()) {
                Some(a) => a.name().to_string(),
                None => return node,
            }
        };
        columns.push((name, !k.asc));
    }
    q.limit_spec = Some(crate::druid::query::LimitSpec {
        limit: *n as usize,
        columns,
    });
    let new_scan = LogicalPlan::Scan {
        table: ScanTable {
            external_query: Some(q.to_json().to_string()),
            ..table.clone()
        },
        projection: projection.clone(),
        filters: filters.clone(),
        partitions: partitions.clone(),
        semijoin_filters: semijoin_filters.clone(),
    };
    let new_sort_input: LogicalPlan = match sort_input.as_ref() {
        LogicalPlan::Project { exprs, names, .. } => LogicalPlan::Project {
            input: Arc::new(new_scan),
            exprs: exprs.clone(),
            names: names.clone(),
        },
        _ => new_scan,
    };
    LogicalPlan::Limit {
        input: Arc::new(LogicalPlan::Sort {
            input: Arc::new(new_sort_input),
            keys: keys.clone(),
        }),
        n: *n,
    }
}

/// Rule 1: `Aggregate(Filter?(Scan(druid)))` → a Druid groupBy query.
fn push_druid_aggregate(node: LogicalPlan) -> LogicalPlan {
    let LogicalPlan::Aggregate {
        input,
        group_exprs,
        grouping_sets,
        aggs,
    } = &node
    else {
        return node;
    };
    if grouping_sets.is_some() {
        return node;
    }
    // Peel Filters and pass-through (column-only) Projects down to the
    // scan — projection pruning routinely inserts both. Expressions at
    // the aggregate level are remapped into scan-output coordinates, and
    // filter predicates found part-way down are remapped through the
    // remaining projections.
    let mut cursor: &LogicalPlan = input.as_ref();
    let mut mappings: Vec<Vec<usize>> = Vec::new();
    let mut pending_filters: Vec<(usize, ScalarExpr)> = Vec::new(); // (depth, pred)
    let scan = loop {
        match cursor {
            LogicalPlan::Project { input, exprs, .. } => {
                let cols: Option<Vec<usize>> = exprs
                    .iter()
                    .map(|e| match e {
                        ScalarExpr::Column(c) => Some(*c),
                        _ => None,
                    })
                    .collect();
                match cols {
                    Some(m) => {
                        mappings.push(m);
                        cursor = input.as_ref();
                    }
                    None => return node,
                }
            }
            LogicalPlan::Filter { input, predicate } => {
                pending_filters.push((mappings.len(), predicate.clone()));
                cursor = input.as_ref();
            }
            s @ LogicalPlan::Scan { .. } => break s,
            _ => return node,
        }
    };
    let LogicalPlan::Scan {
        table,
        projection,
        filters,
        ..
    } = scan
    else {
        return node;
    };
    if table.handler.as_deref() != Some("druid") || table.external_query.is_some() {
        return node;
    }
    // Compose an expression from coordinate depth `from` down to scan
    // output coordinates.
    let to_scan_coords = |e: &ScalarExpr, from: usize| -> Option<ScalarExpr> {
        let mut out = e.clone();
        for m in &mappings[from..] {
            out = out.remap_columns(&|c| m.get(c).copied()).ok()?;
        }
        Some(out)
    };
    let extra_filter: Option<ScalarExpr> = {
        let mut parts: Vec<ScalarExpr> = Vec::new();
        for (depth, pred) in &pending_filters {
            match to_scan_coords(pred, *depth) {
                Some(p) => parts.push(p),
                None => return node,
            }
        }
        ScalarExpr::conjunction(parts)
    };
    let extra_filter = extra_filter.as_ref();

    // Group keys must be plain scan columns naming string dimensions.
    let mut dims: Vec<String> = Vec::new();
    for g in group_exprs {
        let Some(ScalarExpr::Column(c)) = to_scan_coords(g, 0) else {
            return node;
        };
        let Some(&sc) = projection.get(c) else {
            return node;
        };
        let f = table.schema.field(sc);
        if f.data_type != DataType::String {
            return node;
        }
        dims.push(f.name.clone());
    }

    // Aggregates over numeric metric columns (or COUNT(*)).
    let mut druid_aggs: Vec<DruidAgg> = Vec::new();
    for (i, a) in aggs.iter().enumerate() {
        if a.distinct {
            return node;
        }
        let name = format!("_a{i}");
        let metric_of = |e: &Option<ScalarExpr>| -> Option<String> {
            match e.as_ref().and_then(|e| to_scan_coords(e, 0)) {
                Some(ScalarExpr::Column(c)) => {
                    let sc = *projection.get(c)?;
                    let f = table.schema.field(sc);
                    f.data_type.is_numeric().then(|| f.name.clone())
                }
                _ => None,
            }
        };
        let agg = match a.func {
            AggFunc::Count if a.arg.is_none() => DruidAgg::Count { name },
            AggFunc::Sum => match metric_of(&a.arg) {
                Some(field) => DruidAgg::DoubleSum { name, field },
                None => return node,
            },
            AggFunc::Min => match metric_of(&a.arg) {
                Some(field) => DruidAgg::DoubleMin { name, field },
                None => return node,
            },
            AggFunc::Max => match metric_of(&a.arg) {
                Some(field) => DruidAgg::DoubleMax { name, field },
                None => return node,
            },
            _ => return node,
        };
        druid_aggs.push(agg);
    }

    // Filters: every conjunct must convert.
    let mut druid_filters: Vec<DruidFilter> = Vec::new();
    let mut intervals: Vec<(i64, i64)> = Vec::new();
    let mut conjuncts: Vec<&ScalarExpr> = Vec::new();
    for f in filters {
        conjuncts.extend(f.split_conjunction());
    }
    if let Some(p) = extra_filter {
        conjuncts.extend(p.split_conjunction());
    }
    for c in conjuncts {
        match convert_conjunct(c, table, projection) {
            Some(Converted::Filter(df)) => druid_filters.push(df),
            Some(Converted::Interval(a, b)) => intervals.push((a, b)),
            None => return node,
        }
    }

    // Build the query and the replacement scan. Conjunct-derived
    // intervals intersect into one.
    let source = table
        .external_source
        .clone()
        .unwrap_or_else(|| table.name.clone());
    let mut q = DruidQuery::group_by(&source);
    q.dimensions = dims.clone();
    q.aggregations = druid_aggs;
    q.intervals = if intervals.is_empty() {
        vec![]
    } else {
        let start = intervals.iter().map(|(a, _)| *a).max().unwrap();
        let end = intervals.iter().map(|(_, b)| *b).min().unwrap();
        vec![(start, end.max(start))]
    };
    q.filter = match druid_filters.len() {
        0 => None,
        1 => Some(druid_filters.remove(0)),
        _ => Some(DruidFilter::And(druid_filters)),
    };
    // Output schema: dims then agg outputs, matching the Aggregate node.
    let agg_schema = node.schema();
    let out_schema = Schema::new(
        agg_schema
            .fields()
            .iter()
            .enumerate()
            .map(|(i, f)| {
                if i < dims.len() {
                    Field::new(dims[i].clone(), DataType::String)
                } else {
                    f.clone()
                }
            })
            .collect(),
    );
    // Druid answers SUM/MIN/MAX as Double and COUNT as BigInt; the
    // Aggregate schema already matches for Druid's numeric metrics.
    LogicalPlan::Scan {
        table: ScanTable {
            qualified_name: table.qualified_name.clone(),
            db: table.db.clone(),
            name: table.name.clone(),
            schema: out_schema.clone(),
            partition_cols: vec![],
            handler: Some("druid".into()),
            acid: false,
            is_mv: table.is_mv,
            external_query: Some(q.to_json().to_string()),
            external_source: table.external_source.clone(),
        },
        projection: (0..out_schema.len()).collect(),
        filters: vec![],
        partitions: None,
        semijoin_filters: vec![],
    }
}

enum Converted {
    Filter(DruidFilter),
    Interval(i64, i64),
}

/// Convert one conjunct over the scan output into a Druid filter or a
/// time interval. `None` = unconvertible (abort the rewrite).
fn convert_conjunct(e: &ScalarExpr, table: &ScanTable, projection: &[usize]) -> Option<Converted> {
    let field_of =
        |c: usize| -> Option<&Field> { projection.get(c).map(|&sc| table.schema.field(sc)) };
    match e {
        // EXTRACT(year FROM __time) cmp literal → interval (Figure 6).
        ScalarExpr::Binary { op, left, right } => {
            if let (
                ScalarExpr::Extract {
                    field: dates::DateField::Year,
                    expr,
                },
                ScalarExpr::Literal(v),
            ) = (left.as_ref(), right.as_ref())
            {
                if let ScalarExpr::Column(c) = expr.as_ref() {
                    let f = field_of(*c)?;
                    if f.data_type == DataType::Timestamp {
                        let year = v.as_i64()? as i32;
                        return year_interval(*op, year).map(|(a, b)| Converted::Interval(a, b));
                    }
                }
            }
            // dim cmp string literal.
            if let (ScalarExpr::Column(c), ScalarExpr::Literal(v)) = (left.as_ref(), right.as_ref())
            {
                let f = field_of(*c)?;
                match (&f.data_type, v) {
                    (DataType::String, Value::String(s)) => {
                        return match op {
                            BinaryOp::Eq => Some(Converted::Filter(DruidFilter::Selector {
                                dimension: f.name.clone(),
                                value: s.clone(),
                            })),
                            BinaryOp::Lt | BinaryOp::LtEq => {
                                Some(Converted::Filter(DruidFilter::Bound {
                                    dimension: f.name.clone(),
                                    lower: None,
                                    upper: Some(s.clone()),
                                    numeric: false,
                                }))
                            }
                            BinaryOp::Gt | BinaryOp::GtEq => {
                                Some(Converted::Filter(DruidFilter::Bound {
                                    dimension: f.name.clone(),
                                    lower: Some(s.clone()),
                                    upper: None,
                                    numeric: false,
                                }))
                            }
                            _ => None,
                        };
                    }
                    (DataType::Timestamp, Value::Timestamp(t)) => {
                        let ms = t / 1000;
                        return match op {
                            BinaryOp::GtEq => Some(Converted::Interval(ms, time_max_ms())),
                            BinaryOp::Lt => Some(Converted::Interval(time_min_ms(), ms)),
                            _ => None,
                        };
                    }
                    _ => return None,
                }
            }
            None
        }
        ScalarExpr::InList {
            expr,
            list,
            negated: false,
        } => {
            if let ScalarExpr::Column(c) = expr.as_ref() {
                let f = field_of(*c)?;
                if f.data_type == DataType::String {
                    let values: Option<Vec<String>> = list
                        .iter()
                        .map(|i| match i {
                            ScalarExpr::Literal(Value::String(s)) => Some(s.clone()),
                            _ => None,
                        })
                        .collect();
                    return Some(Converted::Filter(DruidFilter::In {
                        dimension: f.name.clone(),
                        values: values?,
                    }));
                }
            }
            None
        }
        _ => None,
    }
}

/// Open-ended interval sentinels, kept within ISO-renderable dates.
fn time_min_ms() -> i64 {
    dates::civil_to_days(1, 1, 1) as i64 * 86_400_000
}
fn time_max_ms() -> i64 {
    dates::civil_to_days(9999, 1, 1) as i64 * 86_400_000
}

/// `EXTRACT(year) op literal` → millisecond interval.
fn year_interval(op: BinaryOp, year: i32) -> Option<(i64, i64)> {
    let start_of = |y: i32| dates::civil_to_days(y, 1, 1) as i64 * 86_400_000;
    match op {
        BinaryOp::Eq => Some((start_of(year), start_of(year + 1))),
        BinaryOp::Gt => Some((start_of(year + 1), time_max_ms())),
        BinaryOp::GtEq => Some((start_of(year), time_max_ms())),
        BinaryOp::Lt => Some((time_min_ms(), start_of(year))),
        BinaryOp::LtEq => Some((time_min_ms(), start_of(year + 1))),
        _ => None,
    }
}

/// Rule 2: push filters+projection of a plain external scan as generated
/// SQL for JDBC handlers (Druid raw scans export as-is; the handler
/// does its own scan-query conversion).
fn push_external_scan(node: LogicalPlan) -> LogicalPlan {
    let LogicalPlan::Scan {
        table,
        projection,
        filters,
        partitions,
        semijoin_filters,
    } = &node
    else {
        return node;
    };
    if table.handler.as_deref() != Some("jdbc") || table.external_query.is_some() {
        return node;
    }
    let remote_name = table
        .external_source
        .clone()
        .unwrap_or_else(|| table.name.clone());
    let Ok(sql) = sqlgen::select_sql(&remote_name, &table.schema, projection, filters) else {
        return node;
    };
    // The pushed query produces exactly the projected columns.
    let out_schema = table.schema.project(projection);
    LogicalPlan::Scan {
        table: ScanTable {
            qualified_name: table.qualified_name.clone(),
            db: table.db.clone(),
            name: table.name.clone(),
            schema: out_schema.clone(),
            partition_cols: vec![],
            handler: Some("jdbc".into()),
            acid: false,
            is_mv: table.is_mv,
            external_query: Some(sql),
            external_source: table.external_source.clone(),
        },
        projection: (0..out_schema.len()).collect(),
        // Filters were pushed; keep none locally (predicates are
        // evaluated remotely; re-evaluation would need remapping).
        filters: vec![],
        partitions: partitions.clone(),
        semijoin_filters: semijoin_filters.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::druid::query::LimitSpec;
    use hive_optimizer::SortKey;

    fn druid_scan() -> LogicalPlan {
        let mut q = DruidQuery::group_by("wiki");
        q.dimensions = vec!["page".to_string()];
        q.aggregations = vec![DruidAgg::DoubleSum {
            name: "s".to_string(),
            field: "added".to_string(),
        }];
        LogicalPlan::Scan {
            table: ScanTable {
                qualified_name: "default.wiki".to_string(),
                db: "default".to_string(),
                name: "wiki".to_string(),
                schema: Schema::new(vec![
                    Field::new("page", DataType::String),
                    Field::new("s", DataType::Double),
                ]),
                partition_cols: vec![],
                handler: Some("druid".to_string()),
                acid: false,
                is_mv: false,
                external_query: Some(q.to_json().to_string()),
                external_source: Some("wiki".to_string()),
            },
            projection: vec![0, 1],
            filters: vec![],
            partitions: None,
            semijoin_filters: vec![],
        }
    }

    fn sort_limit(input: LogicalPlan, col: usize, asc: bool, n: u64) -> LogicalPlan {
        LogicalPlan::Limit {
            input: Arc::new(LogicalPlan::Sort {
                input: Arc::new(input),
                keys: vec![SortKey {
                    expr: ScalarExpr::Column(col),
                    asc,
                    nulls_first: false,
                }],
            }),
            n,
        }
    }

    fn pushed_limit_spec(plan: &LogicalPlan) -> Option<LimitSpec> {
        let mut found = None;
        fn walk(p: &LogicalPlan, found: &mut Option<LimitSpec>) {
            if let LogicalPlan::Scan { table, .. } = p {
                if let Some(j) = &table.external_query {
                    *found = DruidQuery::parse(j).unwrap().limit_spec;
                }
            }
            for c in p.children() {
                walk(c, found);
            }
        }
        walk(plan, &mut found);
        found
    }

    #[test]
    fn sort_limit_folded_into_limit_spec() {
        let plan = sort_limit(druid_scan(), 1, false, 10);
        let pushed = push_to_external(&plan);
        let ls = pushed_limit_spec(&pushed).expect("limitSpec pushed");
        assert_eq!(ls.limit, 10);
        assert_eq!(ls.columns, vec![("s".to_string(), true)]);
        // Local Sort/Limit remain for exactness.
        assert!(matches!(pushed, LogicalPlan::Limit { .. }));
    }

    #[test]
    fn sort_on_dimension_uses_dimension_name() {
        let plan = sort_limit(druid_scan(), 0, true, 5);
        let ls = pushed_limit_spec(&push_to_external(&plan)).unwrap();
        assert_eq!(ls.columns, vec![("page".to_string(), false)]);
    }

    #[test]
    fn limit_through_passthrough_project() {
        // Project reorders columns: output 0 = agg "s", output 1 = dim.
        let proj = LogicalPlan::Project {
            input: Arc::new(druid_scan()),
            exprs: vec![ScalarExpr::Column(1), ScalarExpr::Column(0)],
            names: vec!["s".to_string(), "page".to_string()],
        };
        let plan = sort_limit(proj, 0, false, 3);
        let ls = pushed_limit_spec(&push_to_external(&plan)).unwrap();
        assert_eq!(ls.limit, 3);
        assert_eq!(ls.columns, vec![("s".to_string(), true)]);
    }

    #[test]
    fn limit_not_pushed_without_sort_or_handler() {
        // Bare limit (no sort): rule does not apply.
        let plan = LogicalPlan::Limit {
            input: Arc::new(druid_scan()),
            n: 10,
        };
        assert!(pushed_limit_spec(&push_to_external(&plan)).is_none());

        // Computed sort key: rule does not apply.
        let computed = LogicalPlan::Limit {
            input: Arc::new(LogicalPlan::Sort {
                input: Arc::new(druid_scan()),
                keys: vec![SortKey {
                    expr: ScalarExpr::Binary {
                        op: BinaryOp::Plus,
                        left: Box::new(ScalarExpr::Column(1)),
                        right: Box::new(ScalarExpr::Column(1)),
                    },
                    asc: true,
                    nulls_first: false,
                }],
            }),
            n: 10,
        };
        assert!(pushed_limit_spec(&push_to_external(&computed)).is_none());
    }
}
