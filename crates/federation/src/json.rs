//! A minimal JSON value model with writer and recursive-descent parser.
//!
//! The Druid substrate speaks JSON (its real API is JSON over HTTP);
//! the approved dependency list contains no JSON crate, so this ~200
//! line implementation covers exactly the subset the query language
//! uses: objects, arrays, strings, f64 numbers, booleans, null.

use hive_common::{HiveError, Result};
use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Json>),
    /// BTreeMap keeps key order deterministic for tests and display.
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// Build an object from pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// String shorthand.
    pub fn s(v: impl Into<String>) -> Json {
        Json::String(v.into())
    }

    /// Number shorthand.
    pub fn n(v: f64) -> Json {
        Json::Number(v)
    }

    /// Object field access.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// Number view.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Parse JSON text.
    pub fn parse(text: &str) -> Result<Json> {
        let chars: Vec<char> = text.chars().collect();
        let mut p = Parser { chars, pos: 0 };
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.chars.len() {
            return Err(HiveError::Format("trailing JSON content".into()));
        }
        Ok(v)
    }
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn skip_ws(&mut self) {
        while self.pos < self.chars.len() && self.chars[self.pos].is_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<char> {
        self.skip_ws();
        self.chars
            .get(self.pos)
            .copied()
            .ok_or_else(|| HiveError::Format("unexpected end of JSON".into()))
    }

    fn expect(&mut self, c: char) -> Result<()> {
        if self.peek()? == c {
            self.pos += 1;
            Ok(())
        } else {
            Err(HiveError::Format(format!("expected '{c}' at {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Json> {
        match self.peek()? {
            '{' => self.object(),
            '[' => self.array(),
            '"' => Ok(Json::String(self.string()?)),
            't' => self.literal("true", Json::Bool(true)),
            'f' => self.literal("false", Json::Bool(false)),
            'n' => self.literal("null", Json::Null),
            _ => self.number(),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json> {
        self.skip_ws();
        for c in word.chars() {
            if self.chars.get(self.pos) != Some(&c) {
                return Err(HiveError::Format(format!(
                    "bad JSON literal, expected {word}"
                )));
            }
            self.pos += 1;
        }
        Ok(v)
    }

    fn object(&mut self) -> Result<Json> {
        self.expect('{')?;
        let mut map = BTreeMap::new();
        if self.peek()? == '}' {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(':')?;
            let v = self.value()?;
            map.insert(key, v);
            match self.peek()? {
                ',' => {
                    self.pos += 1;
                }
                '}' => {
                    self.pos += 1;
                    break;
                }
                c => return Err(HiveError::Format(format!("unexpected '{c}' in object"))),
            }
        }
        Ok(Json::Object(map))
    }

    fn array(&mut self) -> Result<Json> {
        self.expect('[')?;
        let mut out = Vec::new();
        if self.peek()? == ']' {
            self.pos += 1;
            return Ok(Json::Array(out));
        }
        loop {
            out.push(self.value()?);
            match self.peek()? {
                ',' => {
                    self.pos += 1;
                }
                ']' => {
                    self.pos += 1;
                    break;
                }
                c => return Err(HiveError::Format(format!("unexpected '{c}' in array"))),
            }
        }
        Ok(Json::Array(out))
    }

    fn string(&mut self) -> Result<String> {
        self.expect('"')?;
        let mut s = String::new();
        loop {
            let c = self
                .chars
                .get(self.pos)
                .copied()
                .ok_or_else(|| HiveError::Format("unterminated JSON string".into()))?;
            self.pos += 1;
            match c {
                '"' => break,
                '\\' => {
                    let e = self
                        .chars
                        .get(self.pos)
                        .copied()
                        .ok_or_else(|| HiveError::Format("bad escape".into()))?;
                    self.pos += 1;
                    s.push(match e {
                        'n' => '\n',
                        't' => '\t',
                        'r' => '\r',
                        '"' => '"',
                        '\\' => '\\',
                        '/' => '/',
                        'u' => {
                            let hex: String = self.chars
                                [self.pos..(self.pos + 4).min(self.chars.len())]
                                .iter()
                                .collect();
                            self.pos += 4;
                            char::from_u32(
                                u32::from_str_radix(&hex, 16)
                                    .map_err(|_| HiveError::Format("bad unicode escape".into()))?,
                            )
                            .unwrap_or('\u{fffd}')
                        }
                        other => other,
                    });
                }
                other => s.push(other),
            }
        }
        Ok(s)
    }

    fn number(&mut self) -> Result<Json> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.chars.len()
            && matches!(
                self.chars[self.pos],
                '0'..='9' | '-' | '+' | '.' | 'e' | 'E'
            )
        {
            self.pos += 1;
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| HiveError::Format(format!("bad JSON number '{text}'")))
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Number(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::String(s) => {
                write!(f, "\"")?;
                for c in s.chars() {
                    match c {
                        '"' => write!(f, "\\\"")?,
                        '\\' => write!(f, "\\\\")?,
                        '\n' => write!(f, "\\n")?,
                        '\t' => write!(f, "\\t")?,
                        other => write!(f, "{other}")?,
                    }
                }
                write!(f, "\"")
            }
            Json::Array(a) => {
                write!(f, "[")?;
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Json::Object(m) => {
                write!(f, "{{")?;
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{}:{v}", Json::String(k.clone()))?;
                }
                write!(f, "}}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let j = Json::obj(vec![
            ("queryType", Json::s("groupBy")),
            ("limit", Json::n(10.0)),
            (
                "dimensions",
                Json::Array(vec![Json::s("d1"), Json::s("d2")]),
            ),
            ("granularity", Json::s("all")),
            ("flag", Json::Bool(true)),
            ("nothing", Json::Null),
        ]);
        let text = j.to_string();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, j);
    }

    #[test]
    fn parses_paper_figure6_shape() {
        let text = r#"{
            "queryType": "groupBy",
            "dataSource": "my_druid_source",
            "granularity": "all",
            "dimension": "d1",
            "aggregations": [ { "type": "floatSum", "name": "s", "fieldName": "m1" } ],
            "limitSpec": { "limit": 10, "columns": [ {"dimension": "s", "direction": "descending"} ] },
            "intervals": [ "2017-01-01T00:00:00.000/2019-01-01T00:00:00.000" ]
        }"#;
        let j = Json::parse(text).unwrap();
        assert_eq!(j.get("queryType").unwrap().as_str(), Some("groupBy"));
        assert_eq!(
            j.get("aggregations").unwrap().as_array().unwrap()[0]
                .get("type")
                .unwrap()
                .as_str(),
            Some("floatSum")
        );
    }

    #[test]
    fn escapes_and_errors() {
        let j = Json::parse(r#""a\"b\\c\nd""#).unwrap();
        assert_eq!(j.as_str(), Some("a\"b\\c\nd"));
        assert!(Json::parse("{bad}").is_err());
        assert!(Json::parse("[1,2").is_err());
        assert!(Json::parse("12 34").is_err());
    }
}
