//! The Druid-like OLAP substrate (paper §6.2's federation target).

pub mod handler;
pub mod query;
pub mod store;

pub use handler::DruidStorageHandler;
pub use query::{DruidAgg, DruidFilter, DruidQuery, Granularity, QueryType};
pub use store::DruidStore;
