//! The Druid storage handler: input/output formats, SerDe, and
//! metastore hook over [`DruidStore`].

use super::query::DruidQuery;
use super::store::DruidStore;
use crate::handler::StorageHandler;
use hive_common::{HiveError, Result, Row, VectorBatch};
use hive_exec::ExternalScanResult;
use hive_metastore::Table;
use hive_optimizer::{ScalarExpr, ScanTable};

/// Table property naming the backing datasource (the paper's
/// `'druid.datasource' = 'my_druid_source'`).
pub const DATASOURCE_PROP: &str = "druid.datasource";

/// Latency model constants for the simulated Druid service: pushed
/// queries ride the bitmap indexes and pre-partitioned segments, raw
/// exports pay per exported row.
const PUSHED_BASE_MS: f64 = 5.0;
const PUSHED_PER_EXAMINED_ROW_MS: f64 = 0.000_05;
const EXPORT_PER_ROW_MS: f64 = 0.000_8;

/// The Druid storage handler.
pub struct DruidStorageHandler {
    store: DruidStore,
}

impl DruidStorageHandler {
    /// Bind to a store.
    pub fn new(store: DruidStore) -> Self {
        DruidStorageHandler { store }
    }

    /// The backing store (tests / setup).
    pub fn store(&self) -> &DruidStore {
        &self.store
    }

    fn datasource_of(table: &ScanTable) -> Result<String> {
        Ok(table
            .external_source
            .clone()
            .unwrap_or_else(|| table.name.clone()))
    }
}

impl StorageHandler for DruidStorageHandler {
    fn name(&self) -> &str {
        "druid"
    }

    fn serde_name(&self) -> &str {
        "druid-json"
    }

    fn scan(
        &self,
        table: &ScanTable,
        projection: &[usize],
        _filters: &[ScalarExpr],
    ) -> Result<ExternalScanResult> {
        let out_schema = table.schema.project(projection);
        match &table.external_query {
            Some(json) => {
                // Pushed query: execute in "Druid" and adapt rows.
                let q = DruidQuery::parse(json)?;
                let (rows, examined) = q.execute(&self.store)?;
                // The pushed query's output shape must match the scan
                // schema; projection selects within it.
                let all = VectorBatch::from_rows(&table.schema, &rows)?;
                let batch = all.project(projection);
                Ok(ExternalScanResult {
                    batch,
                    external_ms: PUSHED_BASE_MS + examined as f64 * PUSHED_PER_EXAMINED_ROW_MS,
                    pushed: true,
                })
            }
            None => {
                // Full export through a scan query.
                let datasource = Self::datasource_of(table)?;
                let mut q = DruidQuery::group_by(&datasource);
                q.query_type = super::query::QueryType::Scan;
                q.columns = table
                    .schema
                    .fields()
                    .iter()
                    .map(|f| f.name.clone())
                    .collect();
                let (rows, _) = q.execute(&self.store)?;
                let n = rows.len();
                let all = VectorBatch::from_rows(&table.schema, &rows)?;
                Ok(ExternalScanResult {
                    batch: all.project(projection),
                    external_ms: PUSHED_BASE_MS + n as f64 * EXPORT_PER_ROW_MS,
                    pushed: false,
                })
            }
        }
        .map(|r| ExternalScanResult {
            batch: r.batch,
            external_ms: r.external_ms,
            pushed: r.pushed,
        })
        .map_err(|e| match e {
            HiveError::External(m) => HiveError::External(format!("druid: {m}")),
            other => other,
        })
        .inspect(|_r| {
            let _ = &out_schema;
        })
    }

    fn write(&self, table: &Table, batch: &VectorBatch) -> Result<()> {
        let ds = table
            .properties
            .get(DATASOURCE_PROP)
            .cloned()
            .unwrap_or_else(|| table.name.clone());
        self.store.ingest(&ds, batch)?;
        Ok(())
    }

    fn on_table_created(&self, table: &mut Table) -> Result<()> {
        let ds = table
            .properties
            .get(DATASOURCE_PROP)
            .cloned()
            .unwrap_or_else(|| table.name.clone());
        if let Some(schema) = self.store.datasource_schema(&ds) {
            // Schema inference: "we do not need to specify column names
            // or types for the data source, since they are automatically
            // inferred from Druid metadata" (§6.1).
            if table.schema.is_empty() {
                table.schema = schema;
            }
        } else {
            // Creating a *new* datasource from Hive (§6.1's second form).
            if table.schema.is_empty() {
                return Err(HiveError::External(format!(
                    "druid datasource {ds} does not exist and no columns were declared"
                )));
            }
            self.store.create_datasource(&ds, &table.schema)?;
        }
        Ok(())
    }
}

/// Rows helper for handler tests.
pub fn rows_of(batch: &VectorBatch) -> Vec<Row> {
    batch.to_rows()
}
