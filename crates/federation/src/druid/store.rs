//! The Druid data store: time-partitioned segments with
//! dictionary-encoded dimensions and inverted bitmap indexes — the
//! structures that make Druid "designed for business intelligence (OLAP)
//! queries on event data" fast on tight dimensional filters.

use hive_common::{BitSet, DataType, HiveError, Result, Schema, Value, VectorBatch};
use parking_lot::RwLock;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

const DAY_MS: i64 = 86_400_000;

/// One dictionary-encoded string column with an inverted index.
#[derive(Debug, Clone)]
pub struct DictColumn {
    /// Sorted dictionary.
    pub dict: Vec<String>,
    /// Per-row dictionary codes.
    pub codes: Vec<u32>,
    /// Per-code row bitmap (the inverted index).
    pub inverted: Vec<BitSet>,
}

impl DictColumn {
    fn build(values: &[String]) -> DictColumn {
        let mut dict: Vec<String> = values.to_vec();
        dict.sort();
        dict.dedup();
        let codes: Vec<u32> = values
            .iter()
            .map(|v| dict.binary_search(v).expect("in dict") as u32)
            .collect();
        let mut inverted = vec![BitSet::new(values.len()); dict.len()];
        for (row, &c) in codes.iter().enumerate() {
            inverted[c as usize].set(row);
        }
        DictColumn {
            dict,
            codes,
            inverted,
        }
    }

    /// Bitmap of rows matching a value (empty bitmap when absent).
    pub fn rows_matching(&self, value: &str) -> BitSet {
        match self.dict.binary_search_by(|d| d.as_str().cmp(value)) {
            Ok(code) => self.inverted[code].clone(),
            Err(_) => BitSet::new(self.codes.len()),
        }
    }

    /// The string at a row.
    pub fn get(&self, row: usize) -> &str {
        &self.dict[self.codes[row] as usize]
    }
}

/// One time-partitioned segment.
#[derive(Debug, Clone)]
pub struct Segment {
    /// Covered interval `[start_ms, end_ms)`.
    pub start_ms: i64,
    pub end_ms: i64,
    /// Event timestamps (ms since epoch), one per row.
    pub time: Vec<i64>,
    /// Dimension columns aligned with `Datasource::dim_names`.
    pub dims: Vec<DictColumn>,
    /// Metric columns aligned with `Datasource::metric_names`.
    pub metrics: Vec<Vec<f64>>,
}

impl Segment {
    /// Row count.
    pub fn len(&self) -> usize {
        self.time.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.time.is_empty()
    }
}

/// One datasource (Druid's table analogue).
#[derive(Debug, Clone)]
pub struct Datasource {
    /// `__time` plus dims plus metrics, in ingestion schema order.
    pub schema: Schema,
    pub dim_names: Vec<String>,
    pub metric_names: Vec<String>,
    pub segments: Vec<Segment>,
}

impl Datasource {
    /// Total rows across segments.
    pub fn num_rows(&self) -> usize {
        self.segments.iter().map(|s| s.len()).sum()
    }
}

/// The Druid service: a set of datasources. Cheap to clone.
#[derive(Debug, Clone, Default)]
pub struct DruidStore {
    inner: Arc<RwLock<HashMap<String, Datasource>>>,
}

impl DruidStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a datasource from a schema: the TIMESTAMP column is the
    /// time column, STRING columns are dimensions, numeric columns are
    /// metrics (Druid's standard rollup model).
    pub fn create_datasource(&self, name: &str, schema: &Schema) -> Result<()> {
        let mut has_time = false;
        let mut dim_names = Vec::new();
        let mut metric_names = Vec::new();
        for f in schema.fields() {
            match &f.data_type {
                DataType::Timestamp => has_time = true,
                DataType::String => dim_names.push(f.name.clone()),
                t if t.is_numeric() => metric_names.push(f.name.clone()),
                t => {
                    return Err(HiveError::External(format!(
                        "druid cannot ingest column {} of type {t}",
                        f.name
                    )))
                }
            }
        }
        if !has_time {
            return Err(HiveError::External(
                "druid datasource requires a TIMESTAMP __time column".into(),
            ));
        }
        self.inner.write().insert(
            name.to_string(),
            Datasource {
                schema: schema.clone(),
                dim_names,
                metric_names,
                segments: Vec::new(),
            },
        );
        Ok(())
    }

    /// Does a datasource exist?
    pub fn has_datasource(&self, name: &str) -> bool {
        self.inner.read().contains_key(name)
    }

    /// Datasource metadata snapshot (schema inference for
    /// `CREATE EXTERNAL TABLE ... STORED BY 'druid'` without columns).
    pub fn datasource_schema(&self, name: &str) -> Option<Schema> {
        self.inner.read().get(name).map(|d| d.schema.clone())
    }

    /// Ingest a batch (columns matched to the datasource schema by
    /// name), partitioning rows into day-grain segments.
    pub fn ingest(&self, name: &str, batch: &VectorBatch) -> Result<usize> {
        let mut g = self.inner.write();
        let ds = g
            .get_mut(name)
            .ok_or_else(|| HiveError::External(format!("unknown datasource {name}")))?;
        // Column resolution by name.
        let time_idx = batch
            .schema()
            .fields()
            .iter()
            .position(|f| f.data_type == DataType::Timestamp)
            .ok_or_else(|| HiveError::External("ingest batch lacks a time column".into()))?;
        let dim_idx: Vec<usize> = ds
            .dim_names
            .iter()
            .map(|n| {
                batch
                    .schema()
                    .index_of(n)
                    .ok_or_else(|| HiveError::External(format!("missing dimension {n}")))
            })
            .collect::<Result<Vec<_>>>()?;
        let metric_idx: Vec<usize> = ds
            .metric_names
            .iter()
            .map(|n| {
                batch
                    .schema()
                    .index_of(n)
                    .ok_or_else(|| HiveError::External(format!("missing metric {n}")))
            })
            .collect::<Result<Vec<_>>>()?;
        // Partition rows by day.
        let mut by_day: BTreeMap<i64, Vec<usize>> = BTreeMap::new();
        for i in 0..batch.num_rows() {
            let t = match batch.column(time_idx).get(i) {
                Value::Timestamp(t) => t / 1000, // micros → millis
                v => {
                    return Err(HiveError::External(format!("bad time value {v}")));
                }
            };
            by_day.entry(t.div_euclid(DAY_MS)).or_default().push(i);
        }
        let days = by_day.len();
        for (day, rows) in by_day {
            let time: Vec<i64> = rows
                .iter()
                .map(|&i| match batch.column(time_idx).get(i) {
                    Value::Timestamp(t) => t / 1000,
                    _ => unreachable!(),
                })
                .collect();
            let dims: Vec<DictColumn> = dim_idx
                .iter()
                .map(|&ci| {
                    let vals: Vec<String> = rows
                        .iter()
                        .map(|&i| batch.column(ci).get(i).to_string())
                        .collect();
                    DictColumn::build(&vals)
                })
                .collect();
            let metrics: Vec<Vec<f64>> = metric_idx
                .iter()
                .map(|&ci| {
                    rows.iter()
                        .map(|&i| batch.column(ci).get(i).as_f64().unwrap_or(0.0))
                        .collect()
                })
                .collect();
            ds.segments.push(Segment {
                start_ms: day * DAY_MS,
                end_ms: (day + 1) * DAY_MS,
                time,
                dims,
                metrics,
            });
        }
        Ok(days)
    }

    /// Run `f` over a datasource.
    pub fn with_datasource<T>(
        &self,
        name: &str,
        f: impl FnOnce(&Datasource) -> Result<T>,
    ) -> Result<T> {
        let g = self.inner.read();
        let ds = g
            .get(name)
            .ok_or_else(|| HiveError::External(format!("unknown datasource {name}")))?;
        f(ds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hive_common::{Field, Row};

    fn sample_schema() -> Schema {
        Schema::new(vec![
            Field::new("__time", DataType::Timestamp),
            Field::new("d1", DataType::String),
            Field::new("m1", DataType::Double),
        ])
    }

    fn ts(day: i64) -> Value {
        Value::Timestamp(day * 86_400_000_000)
    }

    #[test]
    fn create_and_ingest_partitions_by_day() {
        let store = DruidStore::new();
        store.create_datasource("src", &sample_schema()).unwrap();
        let batch = VectorBatch::from_rows(
            &sample_schema(),
            &[
                Row::new(vec![ts(0), Value::String("x".into()), Value::Double(1.0)]),
                Row::new(vec![ts(0), Value::String("y".into()), Value::Double(2.0)]),
                Row::new(vec![ts(1), Value::String("x".into()), Value::Double(3.0)]),
            ],
        )
        .unwrap();
        let segs = store.ingest("src", &batch).unwrap();
        assert_eq!(segs, 2);
        store
            .with_datasource("src", |ds| {
                assert_eq!(ds.num_rows(), 3);
                assert_eq!(ds.segments.len(), 2);
                assert_eq!(ds.segments[0].len(), 2);
                Ok(())
            })
            .unwrap();
    }

    #[test]
    fn inverted_index_lookup() {
        let col = DictColumn::build(&["a".into(), "b".into(), "a".into(), "c".into(), "a".into()]);
        assert_eq!(
            col.rows_matching("a").iter_ones().collect::<Vec<_>>(),
            vec![0, 2, 4]
        );
        assert_eq!(col.rows_matching("zzz").count_ones(), 0);
        assert_eq!(col.get(3), "c");
    }

    #[test]
    fn schema_validation() {
        let store = DruidStore::new();
        let no_time = Schema::new(vec![Field::new("d", DataType::String)]);
        assert!(store.create_datasource("bad", &no_time).is_err());
        let bad_type = Schema::new(vec![
            Field::new("__time", DataType::Timestamp),
            Field::new("d", DataType::Date),
        ]);
        assert!(store.create_datasource("bad2", &bad_type).is_err());
    }
}
