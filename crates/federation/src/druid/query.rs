//! The Druid query language: groupBy/timeseries/topN/scan queries with
//! JSON serialization (Figure 6 of the paper) and execution against
//! [`super::store::DruidStore`].

use super::store::{Datasource, DruidStore, Segment};
use crate::json::Json;
use hive_common::{dates, BitSet, HiveError, Result, Row, Value};
use std::collections::HashMap;

/// Query types (Druid's native API).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryType {
    GroupBy,
    Timeseries,
    TopN,
    Scan,
}

/// Time bucketing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Granularity {
    All,
    Day,
    Month,
    Year,
}

/// Dimension filters.
#[derive(Debug, Clone, PartialEq)]
pub enum DruidFilter {
    /// `dimension = value`
    Selector {
        dimension: String,
        value: String,
    },
    /// `dimension IN (values)`
    In {
        dimension: String,
        values: Vec<String>,
    },
    /// Lexicographic/numeric bound on a dimension.
    Bound {
        dimension: String,
        lower: Option<String>,
        upper: Option<String>,
        numeric: bool,
    },
    And(Vec<DruidFilter>),
    Or(Vec<DruidFilter>),
    Not(Box<DruidFilter>),
}

/// Aggregators.
#[derive(Debug, Clone, PartialEq)]
pub enum DruidAgg {
    Count { name: String },
    DoubleSum { name: String, field: String },
    DoubleMin { name: String, field: String },
    DoubleMax { name: String, field: String },
}

impl DruidAgg {
    /// Output column name.
    pub fn name(&self) -> &str {
        match self {
            DruidAgg::Count { name }
            | DruidAgg::DoubleSum { name, .. }
            | DruidAgg::DoubleMin { name, .. }
            | DruidAgg::DoubleMax { name, .. } => name,
        }
    }
}

/// Result ordering/limit.
#[derive(Debug, Clone, PartialEq)]
pub struct LimitSpec {
    pub limit: usize,
    /// (column name, descending).
    pub columns: Vec<(String, bool)>,
}

/// A Druid query.
#[derive(Debug, Clone, PartialEq)]
pub struct DruidQuery {
    pub query_type: QueryType,
    pub datasource: String,
    /// `[start_ms, end_ms)` intervals; empty = all time.
    pub intervals: Vec<(i64, i64)>,
    pub filter: Option<DruidFilter>,
    pub dimensions: Vec<String>,
    pub aggregations: Vec<DruidAgg>,
    pub granularity: Granularity,
    pub limit_spec: Option<LimitSpec>,
    /// Scan-query columns.
    pub columns: Vec<String>,
}

impl DruidQuery {
    /// A groupBy query skeleton.
    pub fn group_by(datasource: &str) -> DruidQuery {
        DruidQuery {
            query_type: QueryType::GroupBy,
            datasource: datasource.to_string(),
            intervals: Vec::new(),
            filter: None,
            dimensions: Vec::new(),
            aggregations: Vec::new(),
            granularity: Granularity::All,
            limit_spec: None,
            columns: Vec::new(),
        }
    }

    // ---- JSON -------------------------------------------------------------

    /// Serialize to the JSON wire form (paper Figure 6(c)).
    pub fn to_json(&self) -> Json {
        let mut fields: Vec<(&str, Json)> = vec![
            (
                "queryType",
                Json::s(match self.query_type {
                    QueryType::GroupBy => "groupBy",
                    QueryType::Timeseries => "timeseries",
                    QueryType::TopN => "topN",
                    QueryType::Scan => "scan",
                }),
            ),
            ("dataSource", Json::s(&self.datasource)),
            (
                "granularity",
                Json::s(match self.granularity {
                    Granularity::All => "all",
                    Granularity::Day => "day",
                    Granularity::Month => "month",
                    Granularity::Year => "year",
                }),
            ),
        ];
        if !self.dimensions.is_empty() {
            fields.push((
                "dimensions",
                Json::Array(self.dimensions.iter().map(Json::s).collect()),
            ));
        }
        if !self.columns.is_empty() {
            fields.push((
                "columns",
                Json::Array(self.columns.iter().map(Json::s).collect()),
            ));
        }
        if !self.aggregations.is_empty() {
            fields.push((
                "aggregations",
                Json::Array(self.aggregations.iter().map(agg_json).collect()),
            ));
        }
        if let Some(f) = &self.filter {
            fields.push(("filter", filter_json(f)));
        }
        if !self.intervals.is_empty() {
            fields.push((
                "intervals",
                Json::Array(
                    self.intervals
                        .iter()
                        .map(|(a, b)| Json::s(format!("{}/{}", iso(*a), iso(*b))))
                        .collect(),
                ),
            ));
        }
        if let Some(l) = &self.limit_spec {
            fields.push((
                "limitSpec",
                Json::obj(vec![
                    ("limit", Json::n(l.limit as f64)),
                    (
                        "columns",
                        Json::Array(
                            l.columns
                                .iter()
                                .map(|(c, desc)| {
                                    Json::obj(vec![
                                        ("dimension", Json::s(c)),
                                        (
                                            "direction",
                                            Json::s(if *desc { "descending" } else { "ascending" }),
                                        ),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ]),
            ));
        }
        Json::obj(fields)
    }

    /// Parse from JSON.
    pub fn parse(text: &str) -> Result<DruidQuery> {
        let j = Json::parse(text)?;
        let query_type = match j.get("queryType").and_then(|v| v.as_str()) {
            Some("groupBy") => QueryType::GroupBy,
            Some("timeseries") => QueryType::Timeseries,
            Some("topN") => QueryType::TopN,
            Some("scan") => QueryType::Scan,
            other => {
                return Err(HiveError::External(format!(
                    "unknown druid queryType {other:?}"
                )))
            }
        };
        let datasource = j
            .get("dataSource")
            .and_then(|v| v.as_str())
            .ok_or_else(|| HiveError::External("missing dataSource".into()))?
            .to_string();
        let granularity = match j.get("granularity").and_then(|v| v.as_str()) {
            Some("day") => Granularity::Day,
            Some("month") => Granularity::Month,
            Some("year") => Granularity::Year,
            _ => Granularity::All,
        };
        let dimensions = str_array(&j, "dimensions");
        let columns = str_array(&j, "columns");
        let aggregations = j
            .get("aggregations")
            .and_then(|v| v.as_array())
            .map(|a| a.iter().map(parse_agg).collect::<Result<Vec<_>>>())
            .transpose()?
            .unwrap_or_default();
        let filter = j.get("filter").map(parse_filter).transpose()?;
        let intervals = j
            .get("intervals")
            .and_then(|v| v.as_array())
            .map(|a| {
                a.iter()
                    .filter_map(|v| v.as_str())
                    .filter_map(parse_interval)
                    .collect()
            })
            .unwrap_or_default();
        let limit_spec = j.get("limitSpec").map(|l| LimitSpec {
            limit: l.get("limit").and_then(|v| v.as_f64()).unwrap_or(1e18) as usize,
            columns: l
                .get("columns")
                .and_then(|v| v.as_array())
                .map(|cols| {
                    cols.iter()
                        .filter_map(|c| {
                            Some((
                                c.get("dimension")?.as_str()?.to_string(),
                                c.get("direction").and_then(|d| d.as_str()) == Some("descending"),
                            ))
                        })
                        .collect()
                })
                .unwrap_or_default(),
        });
        Ok(DruidQuery {
            query_type,
            datasource,
            intervals,
            filter,
            dimensions,
            aggregations,
            granularity,
            limit_spec,
            columns,
        })
    }

    // ---- execution ---------------------------------------------------------

    /// Execute against the store. Returns rows shaped as:
    /// * groupBy/topN/timeseries: `[time bucket?]... dims..., aggs...`
    ///   (a leading BIGINT bucket column only when granularity ≠ all);
    /// * scan: the requested columns.
    ///
    /// Also returns the number of rows actually *examined* (after bitmap
    /// and interval pruning) — the handler's latency model input.
    pub fn execute(&self, store: &DruidStore) -> Result<(Vec<Row>, u64)> {
        store.with_datasource(&self.datasource, |ds| match self.query_type {
            QueryType::Scan => self.execute_scan(ds),
            _ => self.execute_group_by(ds),
        })
    }

    fn segment_selected(&self, seg: &Segment) -> bool {
        self.intervals.is_empty()
            || self
                .intervals
                .iter()
                .any(|(a, b)| seg.start_ms < *b && seg.end_ms > *a)
    }

    fn row_mask(&self, seg: &Segment, ds: &Datasource) -> Result<BitSet> {
        let mut mask = match &self.filter {
            Some(f) => eval_filter(f, seg, ds)?,
            None => BitSet::all_set(seg.len()),
        };
        // Row-level interval check (segments are day-grain; intervals
        // may cut finer).
        if !self.intervals.is_empty() {
            let mut time_mask = BitSet::new(seg.len());
            for (i, &t) in seg.time.iter().enumerate() {
                if self.intervals.iter().any(|(a, b)| t >= *a && t < *b) {
                    time_mask.set(i);
                }
            }
            mask.and_with(&time_mask);
        }
        Ok(mask)
    }

    fn execute_scan(&self, ds: &Datasource) -> Result<(Vec<Row>, u64)> {
        let mut out = Vec::new();
        let mut examined = 0u64;
        for seg in &ds.segments {
            if !self.segment_selected(seg) {
                continue;
            }
            let mask = self.row_mask(seg, ds)?;
            examined += mask.count_ones() as u64;
            for row in mask.iter_ones() {
                let mut vals = Vec::with_capacity(self.columns.len());
                for c in &self.columns {
                    vals.push(read_cell(seg, ds, c, row)?);
                }
                out.push(Row::new(vals));
            }
        }
        Ok((out, examined))
    }

    fn execute_group_by(&self, ds: &Datasource) -> Result<(Vec<Row>, u64)> {
        let dim_idx: Vec<usize> = self
            .dimensions
            .iter()
            .map(|d| {
                ds.dim_names
                    .iter()
                    .position(|n| n == d)
                    .ok_or_else(|| HiveError::External(format!("unknown dimension {d}")))
            })
            .collect::<Result<Vec<_>>>()?;
        let mut groups: HashMap<(i64, Vec<String>), Vec<AggState>> = HashMap::new();
        let mut examined = 0u64;
        for seg in &ds.segments {
            if !self.segment_selected(seg) {
                continue;
            }
            let mask = self.row_mask(seg, ds)?;
            examined += mask.count_ones() as u64;
            for row in mask.iter_ones() {
                let bucket = bucket_of(self.granularity, seg.time[row]);
                let key: Vec<String> = dim_idx
                    .iter()
                    .map(|&di| seg.dims[di].get(row).to_string())
                    .collect();
                let states = groups
                    .entry((bucket, key))
                    .or_insert_with(|| self.aggregations.iter().map(AggState::new).collect());
                for (st, agg) in states.iter_mut().zip(&self.aggregations) {
                    st.update(agg, seg, ds, row)?;
                }
            }
        }
        let bucketed = self.granularity != Granularity::All;
        let mut rows: Vec<Row> = groups
            .into_iter()
            .map(|((bucket, key), states)| {
                let mut vals: Vec<Value> = Vec::new();
                if bucketed {
                    vals.push(Value::BigInt(bucket));
                }
                vals.extend(key.into_iter().map(Value::String));
                vals.extend(states.into_iter().map(|s| s.finish()));
                Row::new(vals)
            })
            .collect();
        // limitSpec ordering over named output columns.
        if let Some(l) = &self.limit_spec {
            let col_index = |name: &str| -> Option<usize> {
                let base = if bucketed { 1 } else { 0 };
                if let Some(i) = self.dimensions.iter().position(|d| d == name) {
                    return Some(base + i);
                }
                self.aggregations
                    .iter()
                    .position(|a| a.name() == name)
                    .map(|i| base + self.dimensions.len() + i)
            };
            let keys: Vec<(usize, bool)> = l
                .columns
                .iter()
                .filter_map(|(n, desc)| col_index(n).map(|i| (i, *desc)))
                .collect();
            rows.sort_by(|a, b| {
                for (i, desc) in &keys {
                    let ord = a.get(*i).total_cmp_nulls_last(b.get(*i));
                    let ord = if *desc { ord.reverse() } else { ord };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
            rows.truncate(l.limit);
        }
        Ok((rows, examined))
    }
}

#[derive(Debug)]
enum AggState {
    Count(i64),
    Sum(f64),
    Min(f64),
    Max(f64),
}

impl AggState {
    fn new(agg: &DruidAgg) -> AggState {
        match agg {
            DruidAgg::Count { .. } => AggState::Count(0),
            DruidAgg::DoubleSum { .. } => AggState::Sum(0.0),
            DruidAgg::DoubleMin { .. } => AggState::Min(f64::INFINITY),
            DruidAgg::DoubleMax { .. } => AggState::Max(f64::NEG_INFINITY),
        }
    }

    fn update(&mut self, agg: &DruidAgg, seg: &Segment, ds: &Datasource, row: usize) -> Result<()> {
        let field_value = |field: &str| -> Result<f64> {
            let mi = ds
                .metric_names
                .iter()
                .position(|n| n == field)
                .ok_or_else(|| HiveError::External(format!("unknown metric {field}")))?;
            Ok(seg.metrics[mi][row])
        };
        match (self, agg) {
            (AggState::Count(c), DruidAgg::Count { .. }) => *c += 1,
            (AggState::Sum(s), DruidAgg::DoubleSum { field, .. }) => *s += field_value(field)?,
            (AggState::Min(m), DruidAgg::DoubleMin { field, .. }) => {
                *m = m.min(field_value(field)?)
            }
            (AggState::Max(m), DruidAgg::DoubleMax { field, .. }) => {
                *m = m.max(field_value(field)?)
            }
            _ => unreachable!("state/agg mismatch"),
        }
        Ok(())
    }

    fn finish(self) -> Value {
        match self {
            AggState::Count(c) => Value::BigInt(c),
            AggState::Sum(s) => Value::Double(s),
            AggState::Min(m) => {
                if m.is_finite() {
                    Value::Double(m)
                } else {
                    Value::Null
                }
            }
            AggState::Max(m) => {
                if m.is_finite() {
                    Value::Double(m)
                } else {
                    Value::Null
                }
            }
        }
    }
}

fn bucket_of(g: Granularity, t_ms: i64) -> i64 {
    let days = t_ms.div_euclid(86_400_000);
    match g {
        Granularity::All => 0,
        Granularity::Day => days,
        Granularity::Month => dates::truncate_to_month(days as i32) as i64,
        Granularity::Year => dates::truncate_to_year(days as i32) as i64,
    }
}

fn read_cell(seg: &Segment, ds: &Datasource, col: &str, row: usize) -> Result<Value> {
    if col == "__time" {
        return Ok(Value::Timestamp(seg.time[row] * 1000));
    }
    if let Some(di) = ds.dim_names.iter().position(|n| n == col) {
        return Ok(Value::String(seg.dims[di].get(row).to_string()));
    }
    if let Some(mi) = ds.metric_names.iter().position(|n| n == col) {
        return Ok(Value::Double(seg.metrics[mi][row]));
    }
    Err(HiveError::External(format!("unknown column {col}")))
}

/// Evaluate a filter to a row bitmap, using inverted indexes for
/// selector/in filters (Druid's core speed trick).
fn eval_filter(f: &DruidFilter, seg: &Segment, ds: &Datasource) -> Result<BitSet> {
    match f {
        DruidFilter::Selector { dimension, value } => {
            let di = ds
                .dim_names
                .iter()
                .position(|n| n == dimension)
                .ok_or_else(|| HiveError::External(format!("unknown dimension {dimension}")))?;
            Ok(seg.dims[di].rows_matching(value))
        }
        DruidFilter::In { dimension, values } => {
            let mut acc = BitSet::new(seg.len());
            for v in values {
                acc.or_with(&eval_filter(
                    &DruidFilter::Selector {
                        dimension: dimension.clone(),
                        value: v.clone(),
                    },
                    seg,
                    ds,
                )?);
            }
            Ok(acc)
        }
        DruidFilter::Bound {
            dimension,
            lower,
            upper,
            numeric,
        } => {
            let di = ds
                .dim_names
                .iter()
                .position(|n| n == dimension)
                .ok_or_else(|| HiveError::External(format!("unknown dimension {dimension}")))?;
            let col = &seg.dims[di];
            let mut mask = BitSet::new(seg.len());
            let in_bound = |s: &str| -> bool {
                if *numeric {
                    let v: f64 = s.parse().unwrap_or(f64::NAN);
                    let lo_ok = lower
                        .as_ref()
                        .is_none_or(|l| v >= l.parse().unwrap_or(f64::NEG_INFINITY));
                    let hi_ok = upper
                        .as_ref()
                        .is_none_or(|u| v <= u.parse().unwrap_or(f64::INFINITY));
                    lo_ok && hi_ok
                } else {
                    lower.as_ref().is_none_or(|l| s >= l.as_str())
                        && upper.as_ref().is_none_or(|u| s <= u.as_str())
                }
            };
            // Evaluate per dictionary code then expand via the index.
            for (code, word) in col.dict.iter().enumerate() {
                if in_bound(word) {
                    mask.or_with(&col.inverted[code]);
                }
            }
            Ok(mask)
        }
        DruidFilter::And(parts) => {
            let mut acc = BitSet::all_set(seg.len());
            for p in parts {
                acc.and_with(&eval_filter(p, seg, ds)?);
            }
            Ok(acc)
        }
        DruidFilter::Or(parts) => {
            let mut acc = BitSet::new(seg.len());
            for p in parts {
                acc.or_with(&eval_filter(p, seg, ds)?);
            }
            Ok(acc)
        }
        DruidFilter::Not(inner) => {
            let mut m = eval_filter(inner, seg, ds)?;
            m.negate();
            Ok(m)
        }
    }
}

// ---- JSON helpers -----------------------------------------------------------

fn agg_json(a: &DruidAgg) -> Json {
    match a {
        DruidAgg::Count { name } => {
            Json::obj(vec![("type", Json::s("count")), ("name", Json::s(name))])
        }
        DruidAgg::DoubleSum { name, field } => Json::obj(vec![
            ("type", Json::s("doubleSum")),
            ("name", Json::s(name)),
            ("fieldName", Json::s(field)),
        ]),
        DruidAgg::DoubleMin { name, field } => Json::obj(vec![
            ("type", Json::s("doubleMin")),
            ("name", Json::s(name)),
            ("fieldName", Json::s(field)),
        ]),
        DruidAgg::DoubleMax { name, field } => Json::obj(vec![
            ("type", Json::s("doubleMax")),
            ("name", Json::s(name)),
            ("fieldName", Json::s(field)),
        ]),
    }
}

fn parse_agg(j: &Json) -> Result<DruidAgg> {
    let name = j
        .get("name")
        .and_then(|v| v.as_str())
        .unwrap_or("agg")
        .to_string();
    let field = j
        .get("fieldName")
        .and_then(|v| v.as_str())
        .unwrap_or_default()
        .to_string();
    Ok(match j.get("type").and_then(|v| v.as_str()) {
        Some("count") => DruidAgg::Count { name },
        Some("doubleSum") | Some("floatSum") | Some("longSum") => {
            DruidAgg::DoubleSum { name, field }
        }
        Some("doubleMin") => DruidAgg::DoubleMin { name, field },
        Some("doubleMax") => DruidAgg::DoubleMax { name, field },
        other => {
            return Err(HiveError::External(format!(
                "unknown druid aggregator {other:?}"
            )))
        }
    })
}

fn filter_json(f: &DruidFilter) -> Json {
    match f {
        DruidFilter::Selector { dimension, value } => Json::obj(vec![
            ("type", Json::s("selector")),
            ("dimension", Json::s(dimension)),
            ("value", Json::s(value)),
        ]),
        DruidFilter::In { dimension, values } => Json::obj(vec![
            ("type", Json::s("in")),
            ("dimension", Json::s(dimension)),
            ("values", Json::Array(values.iter().map(Json::s).collect())),
        ]),
        DruidFilter::Bound {
            dimension,
            lower,
            upper,
            numeric,
        } => {
            let mut fields = vec![
                ("type", Json::s("bound")),
                ("dimension", Json::s(dimension)),
            ];
            if let Some(l) = lower {
                fields.push(("lower", Json::s(l)));
            }
            if let Some(u) = upper {
                fields.push(("upper", Json::s(u)));
            }
            if *numeric {
                fields.push(("ordering", Json::s("numeric")));
            }
            Json::obj(fields)
        }
        DruidFilter::And(parts) => Json::obj(vec![
            ("type", Json::s("and")),
            (
                "fields",
                Json::Array(parts.iter().map(filter_json).collect()),
            ),
        ]),
        DruidFilter::Or(parts) => Json::obj(vec![
            ("type", Json::s("or")),
            (
                "fields",
                Json::Array(parts.iter().map(filter_json).collect()),
            ),
        ]),
        DruidFilter::Not(inner) => Json::obj(vec![
            ("type", Json::s("not")),
            ("field", filter_json(inner)),
        ]),
    }
}

fn parse_filter(j: &Json) -> Result<DruidFilter> {
    match j.get("type").and_then(|v| v.as_str()) {
        Some("selector") => Ok(DruidFilter::Selector {
            dimension: req_str(j, "dimension")?,
            value: req_str(j, "value")?,
        }),
        Some("in") => Ok(DruidFilter::In {
            dimension: req_str(j, "dimension")?,
            values: str_array(j, "values"),
        }),
        Some("bound") => Ok(DruidFilter::Bound {
            dimension: req_str(j, "dimension")?,
            lower: j.get("lower").and_then(|v| v.as_str()).map(String::from),
            upper: j.get("upper").and_then(|v| v.as_str()).map(String::from),
            numeric: j.get("ordering").and_then(|v| v.as_str()) == Some("numeric"),
        }),
        Some("and") => Ok(DruidFilter::And(
            j.get("fields")
                .and_then(|v| v.as_array())
                .unwrap_or(&[])
                .iter()
                .map(parse_filter)
                .collect::<Result<Vec<_>>>()?,
        )),
        Some("or") => Ok(DruidFilter::Or(
            j.get("fields")
                .and_then(|v| v.as_array())
                .unwrap_or(&[])
                .iter()
                .map(parse_filter)
                .collect::<Result<Vec<_>>>()?,
        )),
        Some("not") => Ok(DruidFilter::Not(Box::new(parse_filter(
            j.get("field")
                .ok_or_else(|| HiveError::External("not filter lacks field".into()))?,
        )?))),
        other => Err(HiveError::External(format!(
            "unknown druid filter {other:?}"
        ))),
    }
}

fn req_str(j: &Json, key: &str) -> Result<String> {
    j.get(key)
        .and_then(|v| v.as_str())
        .map(String::from)
        .ok_or_else(|| HiveError::External(format!("missing filter field {key}")))
}

fn str_array(j: &Json, key: &str) -> Vec<String> {
    j.get(key)
        .and_then(|v| v.as_array())
        .map(|a| {
            a.iter()
                .filter_map(|v| v.as_str())
                .map(String::from)
                .collect()
        })
        .unwrap_or_default()
}

/// Millis → ISO-8601 `YYYY-MM-DDTHH:MM:SS.mmm`.
fn iso(ms: i64) -> String {
    let days = ms.div_euclid(86_400_000);
    let rem = ms.rem_euclid(86_400_000);
    let (y, m, d) = dates::days_to_civil(days as i32);
    let secs = rem / 1000;
    format!(
        "{y:04}-{m:02}-{d:02}T{:02}:{:02}:{:02}.{:03}",
        secs / 3600,
        (secs % 3600) / 60,
        secs % 60,
        rem % 1000
    )
}

/// ISO interval `start/end` → `(start_ms, end_ms)`.
fn parse_interval(s: &str) -> Option<(i64, i64)> {
    let (a, b) = s.split_once('/')?;
    Some((parse_iso(a)?, parse_iso(b)?))
}

fn parse_iso(s: &str) -> Option<i64> {
    let normalized = s.replace('T', " ");
    let micros = dates::parse_timestamp(&normalized)?;
    Some(micros / 1000)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hive_common::{DataType, Field, Schema, VectorBatch};

    fn store() -> DruidStore {
        let schema = Schema::new(vec![
            Field::new("__time", DataType::Timestamp),
            Field::new("d1", DataType::String),
            Field::new("m1", DataType::Double),
        ]);
        let store = DruidStore::new();
        store.create_datasource("src", &schema).unwrap();
        let rows: Vec<Row> = (0..100)
            .map(|i| {
                Row::new(vec![
                    Value::Timestamp((i % 10) as i64 * 86_400_000_000),
                    Value::String(format!("d{}", i % 5)),
                    Value::Double(i as f64),
                ])
            })
            .collect();
        let batch = VectorBatch::from_rows(
            &Schema::new(vec![
                Field::new("__time", DataType::Timestamp),
                Field::new("d1", DataType::String),
                Field::new("m1", DataType::Double),
            ]),
            &rows,
        )
        .unwrap();
        store.ingest("src", &batch).unwrap();
        store
    }

    #[test]
    fn group_by_with_selector() {
        let s = store();
        let mut q = DruidQuery::group_by("src");
        q.dimensions = vec!["d1".into()];
        q.aggregations = vec![
            DruidAgg::Count { name: "c".into() },
            DruidAgg::DoubleSum {
                name: "s".into(),
                field: "m1".into(),
            },
        ];
        q.filter = Some(DruidFilter::Selector {
            dimension: "d1".into(),
            value: "d2".into(),
        });
        let (rows, examined) = q.execute(&s).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get(0), &Value::String("d2".into()));
        assert_eq!(rows[0].get(1), &Value::BigInt(20));
        // Bitmap pruning examined only matching rows.
        assert_eq!(examined, 20);
    }

    #[test]
    fn interval_prunes_segments() {
        let s = store();
        let mut q = DruidQuery::group_by("src");
        q.aggregations = vec![DruidAgg::Count { name: "c".into() }];
        q.intervals = vec![(0, 2 * 86_400_000)]; // days 0 and 1
        let (rows, examined) = q.execute(&s).unwrap();
        assert_eq!(rows[0].get(0), &Value::BigInt(20));
        assert_eq!(examined, 20, "other segments skipped");
    }

    #[test]
    fn limit_spec_orders_and_truncates() {
        let s = store();
        let mut q = DruidQuery::group_by("src");
        q.dimensions = vec!["d1".into()];
        q.aggregations = vec![DruidAgg::DoubleSum {
            name: "s".into(),
            field: "m1".into(),
        }];
        q.limit_spec = Some(LimitSpec {
            limit: 2,
            columns: vec![("s".into(), true)],
        });
        let (rows, _) = q.execute(&s).unwrap();
        assert_eq!(rows.len(), 2);
        let s0 = rows[0].get(1).as_f64().unwrap();
        let s1 = rows[1].get(1).as_f64().unwrap();
        assert!(s0 >= s1);
    }

    #[test]
    fn scan_query() {
        let s = store();
        let mut q = DruidQuery::group_by("src");
        q.query_type = QueryType::Scan;
        q.columns = vec!["__time".into(), "d1".into(), "m1".into()];
        q.filter = Some(DruidFilter::In {
            dimension: "d1".into(),
            values: vec!["d0".into(), "d1".into()],
        });
        let (rows, _) = q.execute(&s).unwrap();
        assert_eq!(rows.len(), 40);
        assert_eq!(rows[0].len(), 3);
    }

    #[test]
    fn json_round_trip() {
        let mut q = DruidQuery::group_by("my_druid_source");
        q.dimensions = vec!["d1".into()];
        q.aggregations = vec![DruidAgg::DoubleSum {
            name: "s".into(),
            field: "m1".into(),
        }];
        q.filter = Some(DruidFilter::And(vec![
            DruidFilter::Selector {
                dimension: "d1".into(),
                value: "x".into(),
            },
            DruidFilter::Bound {
                dimension: "d2".into(),
                lower: Some("10".into()),
                upper: None,
                numeric: true,
            },
        ]));
        q.intervals = vec![(1483228800000, 1546300800000)]; // 2017..2019
        q.limit_spec = Some(LimitSpec {
            limit: 10,
            columns: vec![("s".into(), true)],
        });
        let text = q.to_json().to_string();
        assert!(text.contains("\"queryType\":\"groupBy\""));
        assert!(text.contains("2017-01-01T00:00:00.000/2019-01-01T00:00:00.000"));
        let back = DruidQuery::parse(&text).unwrap();
        assert_eq!(back, q);
    }

    #[test]
    fn granularity_buckets() {
        let s = store();
        let mut q = DruidQuery::group_by("src");
        q.granularity = Granularity::Day;
        q.aggregations = vec![DruidAgg::Count { name: "c".into() }];
        let (rows, _) = q.execute(&s).unwrap();
        assert_eq!(rows.len(), 10, "one bucket per day");
    }
}
