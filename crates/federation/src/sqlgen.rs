//! SQL text generation from plan fragments — the "Calcite can generate
//! SQL queries … using a large number of different dialects" path
//! (paper §6.2, footnote 4). Used by the JDBC storage handler pushdown.

use hive_common::{Result, Schema, Value};
use hive_optimizer::ScalarExpr;
use hive_sql::BinaryOp;

/// Generate `SELECT <cols> FROM <table> [WHERE <pred>]` for a pushed
/// projection+filter over an external table.
pub fn select_sql(
    table_name: &str,
    schema: &Schema,
    projection: &[usize],
    filters: &[ScalarExpr],
) -> Result<String> {
    let cols: Vec<String> = projection
        .iter()
        .map(|&c| schema.field(c).name.clone())
        .collect();
    let mut sql = format!("SELECT {} FROM {}", cols.join(", "), table_name);
    if !filters.is_empty() {
        let parts: Vec<String> = filters
            .iter()
            .map(|f| expr_sql(f, schema, projection))
            .collect::<Result<Vec<_>>>()?;
        sql.push_str(" WHERE ");
        sql.push_str(&parts.join(" AND "));
    }
    Ok(sql)
}

/// Render a scalar expression in SQL. Column indexes refer to the scan
/// output (`projection` positions into `schema`).
pub fn expr_sql(e: &ScalarExpr, schema: &Schema, projection: &[usize]) -> Result<String> {
    Ok(match e {
        ScalarExpr::Column(c) => {
            let sc = projection.get(*c).copied().ok_or_else(|| {
                hive_common::HiveError::Plan(format!("column {c} outside projection"))
            })?;
            schema.field(sc).name.clone()
        }
        ScalarExpr::Literal(v) => literal_sql(v),
        ScalarExpr::Binary { op, left, right } => format!(
            "({} {} {})",
            expr_sql(left, schema, projection)?,
            op_sql(*op),
            expr_sql(right, schema, projection)?
        ),
        ScalarExpr::Not(inner) => format!("NOT ({})", expr_sql(inner, schema, projection)?),
        ScalarExpr::Negate(inner) => format!("-({})", expr_sql(inner, schema, projection)?),
        ScalarExpr::IsNull { expr, negated } => format!(
            "{} IS {}NULL",
            expr_sql(expr, schema, projection)?,
            if *negated { "NOT " } else { "" }
        ),
        ScalarExpr::Like {
            expr,
            pattern,
            negated,
        } => format!(
            "{} {}LIKE {}",
            expr_sql(expr, schema, projection)?,
            if *negated { "NOT " } else { "" },
            expr_sql(pattern, schema, projection)?
        ),
        ScalarExpr::InList {
            expr,
            list,
            negated,
        } => {
            let items: Vec<String> = list
                .iter()
                .map(|i| expr_sql(i, schema, projection))
                .collect::<Result<Vec<_>>>()?;
            format!(
                "{} {}IN ({})",
                expr_sql(expr, schema, projection)?,
                if *negated { "NOT " } else { "" },
                items.join(", ")
            )
        }
        other => {
            return Err(hive_common::HiveError::Unsupported(format!(
                "cannot generate SQL for {other}"
            )))
        }
    })
}

fn op_sql(op: BinaryOp) -> &'static str {
    match op {
        BinaryOp::Plus => "+",
        BinaryOp::Minus => "-",
        BinaryOp::Multiply => "*",
        BinaryOp::Divide => "/",
        BinaryOp::Modulo => "%",
        BinaryOp::Eq => "=",
        BinaryOp::NotEq => "<>",
        BinaryOp::Lt => "<",
        BinaryOp::LtEq => "<=",
        BinaryOp::Gt => ">",
        BinaryOp::GtEq => ">=",
        BinaryOp::And => "AND",
        BinaryOp::Or => "OR",
    }
}

fn literal_sql(v: &Value) -> String {
    match v {
        Value::String(s) => format!("'{}'", s.replace('\'', "''")),
        Value::Date(_) => format!("DATE '{v}'"),
        Value::Timestamp(_) => format!("TIMESTAMP '{v}'"),
        other => other.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hive_common::{DataType, Field};

    #[test]
    fn generates_select_where() {
        let schema = Schema::new(vec![
            Field::new("id", DataType::Int),
            Field::new("name", DataType::String),
            Field::new("price", DataType::Double),
        ]);
        let sql = select_sql(
            "products",
            &schema,
            &[0, 1],
            &[
                ScalarExpr::Binary {
                    op: BinaryOp::Gt,
                    left: Box::new(ScalarExpr::Column(0)),
                    right: Box::new(ScalarExpr::Literal(Value::Int(5))),
                },
                ScalarExpr::Like {
                    expr: Box::new(ScalarExpr::Column(1)),
                    pattern: Box::new(ScalarExpr::Literal(Value::String("it''s%".into()))),
                    negated: false,
                },
            ],
        )
        .unwrap();
        assert_eq!(
            sql,
            "SELECT id, name FROM products WHERE (id > 5) AND name LIKE 'it''''s%'"
        );
    }
}
