//! Property tests on the LLAP LRFU data cache (§5): capacity is a hard
//! bound, loads are correct under any access pattern, and frequently
//! re-referenced chunks survive eviction pressure.

use hive_common::{ColumnVector, FileId};
use hive_llap::{ChunkKey, LlapCache};
use proptest::prelude::*;

fn key(i: u8) -> ChunkKey {
    ChunkKey {
        file: FileId(u64::from(i) % 7),
        column: usize::from(i) % 5,
        row_group: usize::from(i) / 32,
    }
}

/// A chunk whose payload encodes its key, so correctness of returned
/// data is checkable after any eviction history.
fn chunk_for(i: u8) -> ColumnVector {
    ColumnVector::BigInt(vec![i64::from(i); 64], None)
}

fn payload_tag(v: &ColumnVector) -> i64 {
    match v {
        ColumnVector::BigInt(vals, _) => vals[0],
        other => panic!("unexpected vector {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Whatever the access sequence, the cache never exceeds its byte
    /// capacity and always returns the chunk that belongs to the key.
    #[test]
    fn capacity_is_a_hard_bound_and_data_is_correct(
        accesses in proptest::collection::vec(any::<u8>(), 1..300),
        capacity_chunks in 1usize..12,
    ) {
        let one_chunk = chunk_for(0).approx_bytes();
        let cache = LlapCache::new(capacity_chunks * one_chunk, 0.05);
        for &a in &accesses {
            let got = cache.get_or_load(key(a), || Ok(chunk_for(a))).unwrap();
            prop_assert_eq!(payload_tag(&got), i64::from(a));
            prop_assert!(
                cache.resident_bytes() <= capacity_chunks * one_chunk,
                "resident {} exceeds capacity {}",
                cache.resident_bytes(),
                capacity_chunks * one_chunk
            );
        }
        // Hits + misses account for every access.
        let (h, m) = cache.stats().hit_miss();
        prop_assert_eq!(h + m, accesses.len() as u64);
    }

    /// A chunk re-referenced on every step (the hot dictionary page of
    /// §5's LRFU motivation) survives a scan-like sweep of cold keys —
    /// the exact pattern plain LRU gets wrong.
    #[test]
    fn hot_chunk_survives_scan_flood(cold_keys in proptest::collection::vec(1u8..200, 30..120)) {
        let one_chunk = chunk_for(0).approx_bytes();
        // Room for 4 chunks: the flood would evict everything under LRU.
        let cache = LlapCache::new(4 * one_chunk, 0.01);
        let hot = key(0);
        cache.get_or_load(hot, || Ok(chunk_for(0))).unwrap();
        // Warm the hot chunk's frequency.
        for _ in 0..8 {
            cache.get_or_load(hot, || Ok(chunk_for(0))).unwrap();
        }
        let mut hot_loads = 0u32;
        for &c in &cold_keys {
            let c = c.max(1); // never the hot key
            cache.get_or_load(key(c), || Ok(chunk_for(c))).unwrap();
            cache
                .get_or_load(hot, || {
                    hot_loads += 1;
                    Ok(chunk_for(0))
                })
                .unwrap();
        }
        prop_assert_eq!(hot_loads, 0, "hot chunk was evicted by a cold sweep");
    }

    /// clear() empties the cache and resets residency accounting.
    #[test]
    fn clear_resets_residency(accesses in proptest::collection::vec(any::<u8>(), 1..60)) {
        let one_chunk = chunk_for(0).approx_bytes();
        let cache = LlapCache::new(8 * one_chunk, 0.05);
        for &a in &accesses {
            cache.get_or_load(key(a), || Ok(chunk_for(a))).unwrap();
        }
        cache.clear();
        prop_assert_eq!(cache.resident_bytes(), 0);
        prop_assert!(cache.is_empty());
    }
}
