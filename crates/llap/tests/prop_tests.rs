//! Property tests on the LLAP layer: the LRFU data cache (§5 — capacity
//! is a hard bound, loads are correct under any access pattern, and
//! frequently re-referenced chunks survive eviction pressure) and the
//! workload manager (§5.2 — no interleaving of admit/release/move can
//! push a pool past its `query_parallelism`).

use hive_common::{ColumnVector, FileId};
use hive_llap::{AdmitOutcome, ChunkKey, LlapCache, Mapping, Pool, ResourcePlan, WorkloadManager};
use proptest::prelude::*;

fn key(i: u8) -> ChunkKey {
    ChunkKey {
        file: FileId(u64::from(i) % 7),
        column: usize::from(i) % 5,
        row_group: usize::from(i) / 32,
    }
}

/// A chunk whose payload encodes its key, so correctness of returned
/// data is checkable after any eviction history.
fn chunk_for(i: u8) -> ColumnVector {
    ColumnVector::BigInt(vec![i64::from(i); 64], None)
}

fn payload_tag(v: &ColumnVector) -> i64 {
    match v {
        ColumnVector::BigInt(vals, _) => vals[0],
        other => panic!("unexpected vector {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Whatever the access sequence, the cache never exceeds its byte
    /// capacity and always returns the chunk that belongs to the key.
    #[test]
    fn capacity_is_a_hard_bound_and_data_is_correct(
        accesses in proptest::collection::vec(any::<u8>(), 1..300),
        capacity_chunks in 1usize..12,
    ) {
        let one_chunk = chunk_for(0).approx_bytes();
        let cache = LlapCache::new(capacity_chunks * one_chunk, 0.05);
        for &a in &accesses {
            let got = cache.get_or_load(key(a), || Ok(chunk_for(a))).unwrap();
            prop_assert_eq!(payload_tag(&got), i64::from(a));
            prop_assert!(
                cache.resident_bytes() <= capacity_chunks * one_chunk,
                "resident {} exceeds capacity {}",
                cache.resident_bytes(),
                capacity_chunks * one_chunk
            );
        }
        // Hits + misses account for every access.
        let (h, m) = cache.stats().hit_miss();
        prop_assert_eq!(h + m, accesses.len() as u64);
    }

    /// A chunk re-referenced on every step (the hot dictionary page of
    /// §5's LRFU motivation) survives a scan-like sweep of cold keys —
    /// the exact pattern plain LRU gets wrong.
    #[test]
    fn hot_chunk_survives_scan_flood(cold_keys in proptest::collection::vec(1u8..200, 30..120)) {
        let one_chunk = chunk_for(0).approx_bytes();
        // Room for 4 chunks: the flood would evict everything under LRU.
        let cache = LlapCache::new(4 * one_chunk, 0.01);
        let hot = key(0);
        cache.get_or_load(hot, || Ok(chunk_for(0))).unwrap();
        // Warm the hot chunk's frequency.
        for _ in 0..8 {
            cache.get_or_load(hot, || Ok(chunk_for(0))).unwrap();
        }
        let mut hot_loads = 0u32;
        for &c in &cold_keys {
            let c = c.max(1); // never the hot key
            cache.get_or_load(key(c), || Ok(chunk_for(c))).unwrap();
            cache
                .get_or_load(hot, || {
                    hot_loads += 1;
                    Ok(chunk_for(0))
                })
                .unwrap();
        }
        prop_assert_eq!(hot_loads, 0, "hot chunk was evicted by a cold sweep");
    }

    /// clear() empties the cache and resets residency accounting.
    #[test]
    fn clear_resets_residency(accesses in proptest::collection::vec(any::<u8>(), 1..60)) {
        let one_chunk = chunk_for(0).approx_bytes();
        let cache = LlapCache::new(8 * one_chunk, 0.05);
        for &a in &accesses {
            cache.get_or_load(key(a), || Ok(chunk_for(a))).unwrap();
        }
        cache.clear();
        prop_assert_eq!(cache.resident_bytes(), 0);
        prop_assert!(cache.is_empty());
    }
}

// ---------------------------------------------------------------------
// Workload-manager admission accounting
// ---------------------------------------------------------------------

/// One step of a multi-tenant admission history.
#[derive(Debug, Clone)]
enum WmOp {
    /// Admit for user index `u` with optional group index `g`.
    Admit { u: u8, g: Option<u8> },
    /// Drop the i-th oldest live slot (mod len).
    Release { i: u8 },
    /// Try to move the i-th oldest live slot to pool index `p`
    /// (possibly an unknown pool name — the move must then be a no-op).
    Move { i: u8, p: u8 },
    /// Re-activate the plan mid-flight (the historical count-wipe bug).
    Reactivate,
}

fn wm_op() -> impl Strategy<Value = WmOp> {
    prop_oneof![
        4 => (any::<u8>(), proptest::option::of(any::<u8>()))
            .prop_map(|(u, g)| WmOp::Admit { u, g }),
        3 => any::<u8>().prop_map(|i| WmOp::Release { i }),
        2 => (any::<u8>(), any::<u8>()).prop_map(|(i, p)| WmOp::Move { i, p }),
        1 => Just(WmOp::Reactivate),
    ]
}

fn tenants_plan() -> ResourcePlan {
    ResourcePlan {
        name: "tenants".into(),
        pools: vec![
            Pool {
                name: "bi".into(),
                alloc_fraction: 0.5,
                query_parallelism: 3,
            },
            Pool {
                name: "etl".into(),
                alloc_fraction: 0.3,
                query_parallelism: 5,
            },
            Pool {
                name: "adhoc".into(),
                alloc_fraction: 0.2,
                query_parallelism: 2,
            },
        ],
        mappings: vec![
            Mapping::User {
                name: "u0".into(),
                pool: "bi".into(),
            },
            Mapping::Group {
                name: "g0".into(),
                pool: "adhoc".into(),
            },
        ],
        triggers: vec![],
        default_pool: Some("etl".into()),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Invariant (ISSUE 7): under ANY interleaving of admissions,
    /// releases, moves (to valid and invalid targets), and mid-flight
    /// plan re-activations, every pool's live count stays ≤ its
    /// `query_parallelism`, and draining all slots returns every count
    /// to exactly zero (no underflow, no leaked phantom admissions).
    #[test]
    fn any_interleaving_respects_pool_parallelism(
        ops in proptest::collection::vec(wm_op(), 1..200),
    ) {
        let plan = tenants_plan();
        let wm = WorkloadManager::new();
        wm.activate(plan.clone()).unwrap();
        let pool_names: Vec<&str> = vec!["bi", "etl", "adhoc", "ghost"];
        let mut live = Vec::new();
        for op in ops {
            match op {
                WmOp::Admit { u, g } => {
                    let user = format!("u{}", u % 3);
                    let groups: Vec<String> =
                        g.map(|g| format!("g{}", g % 2)).into_iter().collect();
                    match wm.try_admit(&user, None, &groups).unwrap() {
                        AdmitOutcome::Admitted(slot) => live.push(slot),
                        AdmitOutcome::Saturated { .. } => {}
                    }
                }
                WmOp::Release { i } => {
                    if !live.is_empty() {
                        let idx = usize::from(i) % live.len();
                        drop(live.remove(idx));
                    }
                }
                WmOp::Move { i, p } => {
                    if !live.is_empty() {
                        let idx = usize::from(i) % live.len();
                        let target = pool_names[usize::from(p) % pool_names.len()];
                        let _ = live[idx].move_to(target);
                    }
                }
                WmOp::Reactivate => wm.activate(plan.clone()).unwrap(),
            }
            for p in &plan.pools {
                let n = wm.running_in(&p.name);
                prop_assert!(
                    n <= p.query_parallelism,
                    "pool {} has {} running > parallelism {}",
                    p.name, n, p.query_parallelism
                );
            }
            prop_assert_eq!(wm.running_in("ghost"), 0, "phantom pool got accounting");
            prop_assert_eq!(wm.total_running(), live.len(), "live accounting drifted");
        }
        drop(live);
        for p in &plan.pools {
            prop_assert_eq!(wm.running_in(&p.name), 0, "pool {} did not drain", &p.name);
        }
        prop_assert_eq!(wm.total_running(), 0);
    }
}
