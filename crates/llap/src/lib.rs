//! # hive-llap
//!
//! Live Long and Process (paper §5.1): the persistent execution + cache
//! layer. LLAP "does not replace the existing execution runtime … but
//! rather enhances it": the executor (`hive-exec`) routes its I/O
//! through this crate when LLAP is enabled.
//!
//! * [`cache::LlapCache`] — the multi-tenant data cache, addressed by
//!   `(FileId, column, row group)` chunks, with the paper's LRFU
//!   (Least Recently/Frequently Used) eviction policy. Because ACID
//!   never mutates files, cache entries keyed by FileId form an MVCC
//!   view: "the cache turns into an MVCC view of the data servicing
//!   multiple concurrent queries possibly in different transactional
//!   states".
//! * [`cache::MetadataCache`] — file footers/indexes cached "even for
//!   data that was never in the cache", so sarg evaluation happens
//!   before any data read.
//! * [`daemon::LlapDaemons`] — the daemon fleet abstraction: executor
//!   slots per node used by the scheduler, plus the shared caches.
//! * [`workload::WorkloadManager`] — resource plans, pools, mappings and
//!   triggers (§5.2).

pub mod cache;
pub mod daemon;
pub mod workload;

pub use cache::{CacheStats, ChunkKey, LlapCache, MetadataCache};
pub use daemon::{ExecutorLease, LlapDaemons};
pub use workload::{
    AdmissionSlot, AdmitOutcome, Mapping, MoveOutcome, Pool, ResourcePlan, Trigger, TriggerAction,
    TriggerVerdict, WorkloadManager,
};
