//! The LLAP daemon fleet: persistent executors plus the shared caches.
//!
//! Daemons are stateless (§5.1): "each contains a number of executors to
//! run several query fragments in parallel and a local work queue.
//! Failure and recovery is simplified because any node can still be used
//! to process any fragment." Here the fleet tracks executor occupancy
//! (used by the scheduler and the workload manager), owns the data and
//! metadata caches, and models daemon death/restart: killing a node
//! removes its executors from the fleet and drops its share of the
//! cache; any surviving node can pick up its fragments.

use crate::cache::{LlapCache, MetadataCache};
use hive_common::FaultInjector;
use parking_lot::Mutex;
use std::sync::Arc;

/// The daemon fleet.
#[derive(Debug, Clone)]
pub struct LlapDaemons {
    inner: Arc<Inner>,
}

#[derive(Debug)]
struct Inner {
    nodes: usize,
    executors_per_node: usize,
    busy: Mutex<usize>,
    /// Liveness per node; killed daemons contribute no executors and
    /// lose their cache share until restarted.
    alive: Mutex<Vec<bool>>,
    cache: LlapCache,
    metadata: MetadataCache,
    /// Shared fault injector (the same instance the DFS rolls
    /// against); set by the server at boot.
    fault: Mutex<Option<Arc<FaultInjector>>>,
}

impl LlapDaemons {
    /// Start a fleet of `nodes` daemons with `executors_per_node`
    /// executors each and a cache of `cache_bytes` (cluster-wide).
    pub fn new(
        nodes: usize,
        executors_per_node: usize,
        cache_bytes: usize,
        lrfu_lambda: f64,
    ) -> Self {
        LlapDaemons {
            inner: Arc::new(Inner {
                nodes,
                executors_per_node,
                busy: Mutex::new(0),
                alive: Mutex::new(vec![true; nodes]),
                cache: LlapCache::new(cache_bytes, lrfu_lambda),
                metadata: MetadataCache::new(),
                fault: Mutex::new(None),
            }),
        }
    }

    /// Share the stack-wide fault injector with this fleet.
    pub fn attach_fault(&self, fault: Arc<FaultInjector>) {
        *self.inner.fault.lock() = Some(fault);
    }

    /// The attached fault injector, if any.
    pub fn fault(&self) -> Option<Arc<FaultInjector>> {
        self.inner.fault.lock().clone()
    }

    /// Executor slots on live daemons.
    pub fn total_executors(&self) -> usize {
        self.live_node_count() * self.inner.executors_per_node
    }

    /// Number of daemon nodes in the fleet (live or dead).
    pub fn nodes(&self) -> usize {
        self.inner.nodes
    }

    /// Executors per daemon.
    pub fn executors_per_node(&self) -> usize {
        self.inner.executors_per_node
    }

    /// Number of currently live daemons.
    pub fn live_node_count(&self) -> usize {
        self.inner.alive.lock().iter().filter(|a| **a).count()
    }

    /// Indices of currently live daemons.
    pub fn live_nodes(&self) -> Vec<usize> {
        self.inner
            .alive
            .lock()
            .iter()
            .enumerate()
            .filter_map(|(i, a)| a.then_some(i))
            .collect()
    }

    /// Whether the daemon on `node` is alive.
    pub fn is_alive(&self, node: usize) -> bool {
        self.inner.alive.lock().get(node).copied().unwrap_or(false)
    }

    /// Kill the daemon on `node`: its executors leave the fleet and
    /// its share of the cache is dropped (cache contents on a dead
    /// node are gone; §5.1 — the data itself is safe in the DFS, so
    /// readers degrade to DFS loads). Returns false if already dead
    /// or out of range.
    pub fn kill_daemon(&self, node: usize) -> bool {
        {
            let mut alive = self.inner.alive.lock();
            match alive.get_mut(node) {
                Some(a) if *a => *a = false,
                _ => return false,
            }
        }
        self.inner.cache.evict_node_share(node, self.inner.nodes);
        true
    }

    /// Restart the daemon on `node`. It rejoins the fleet with a cold
    /// cache share (the eviction happened at kill time). Returns false
    /// if it was already alive or out of range.
    pub fn restart_daemon(&self, node: usize) -> bool {
        let mut alive = self.inner.alive.lock();
        match alive.get_mut(node) {
            Some(a) if !*a => {
                *a = true;
                true
            }
            _ => false,
        }
    }

    /// The shared data cache.
    pub fn cache(&self) -> &LlapCache {
        &self.inner.cache
    }

    /// The shared metadata cache.
    pub fn metadata(&self) -> &MetadataCache {
        &self.inner.metadata
    }

    /// Try to reserve `n` executors; returns how many were granted
    /// (possibly fewer under load — fragments queue in that case).
    pub fn reserve_executors(&self, n: usize) -> usize {
        let mut busy = self.inner.busy.lock();
        let free = self.total_executors().saturating_sub(*busy);
        let granted = n.min(free);
        *busy += granted;
        granted
    }

    /// Release previously reserved executors.
    pub fn release_executors(&self, n: usize) {
        let mut busy = self.inner.busy.lock();
        *busy = busy.saturating_sub(n);
    }

    /// Reserve up to `n` executors behind an RAII guard, so a failing
    /// (even panicking) fragment cannot leak its slots and wedge the
    /// workload manager's admission accounting.
    pub fn lease_executors(&self, n: usize) -> ExecutorLease {
        let granted = self.reserve_executors(n);
        ExecutorLease {
            daemons: self.clone(),
            granted,
        }
    }

    /// Executors currently busy.
    pub fn busy_executors(&self) -> usize {
        *self.inner.busy.lock()
    }
}

/// RAII reservation of executor slots: dropping the lease releases
/// them, on success, error, and unwind paths alike.
#[derive(Debug)]
pub struct ExecutorLease {
    daemons: LlapDaemons,
    granted: usize,
}

impl ExecutorLease {
    /// How many executors this lease actually holds.
    pub fn granted(&self) -> usize {
        self.granted
    }
}

impl Drop for ExecutorLease {
    fn drop(&mut self) {
        self.daemons.release_executors(self.granted);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reservation_accounting() {
        let d = LlapDaemons::new(2, 4, 1 << 20, 0.5);
        assert_eq!(d.total_executors(), 8);
        assert_eq!(d.reserve_executors(5), 5);
        assert_eq!(d.reserve_executors(5), 3, "only 3 free");
        d.release_executors(4);
        assert_eq!(d.busy_executors(), 4);
        assert_eq!(d.reserve_executors(10), 4);
        d.release_executors(100);
        assert_eq!(d.busy_executors(), 0);
    }

    #[test]
    fn lease_releases_on_drop() {
        let d = LlapDaemons::new(2, 4, 1 << 20, 0.5);
        {
            let lease = d.lease_executors(5);
            assert_eq!(lease.granted(), 5);
            assert_eq!(d.busy_executors(), 5);
        }
        assert_eq!(d.busy_executors(), 0);
    }

    #[test]
    fn lease_releases_on_panic() {
        let d = LlapDaemons::new(2, 4, 1 << 20, 0.5);
        let d2 = d.clone();
        let result = std::panic::catch_unwind(move || {
            let _lease = d2.lease_executors(6);
            panic!("fragment died");
        });
        assert!(result.is_err());
        assert_eq!(
            d.busy_executors(),
            0,
            "panicking fragment must not leak slots"
        );
    }

    #[test]
    fn kill_and_restart_change_fleet_capacity() {
        let d = LlapDaemons::new(3, 4, 1 << 20, 0.5);
        assert_eq!(d.total_executors(), 12);
        assert!(d.kill_daemon(1));
        assert!(!d.kill_daemon(1), "already dead");
        assert!(!d.is_alive(1));
        assert_eq!(d.total_executors(), 8);
        assert_eq!(d.live_nodes(), vec![0, 2]);
        assert!(d.restart_daemon(1));
        assert!(!d.restart_daemon(1), "already alive");
        assert_eq!(d.total_executors(), 12);
        assert!(!d.kill_daemon(99), "out of range");
    }

    #[test]
    fn kill_drops_cache_share() {
        use crate::cache::ChunkKey;
        use hive_common::{ColumnVector, FileId};
        let d = LlapDaemons::new(4, 2, 1 << 20, 0.5);
        for i in 0..64 {
            d.cache()
                .get_or_load(
                    ChunkKey {
                        file: FileId(i),
                        column: 0,
                        row_group: 0,
                    },
                    || Ok(ColumnVector::BigInt(vec![1; 16], None)),
                )
                .unwrap();
        }
        let before = d.cache().len();
        assert_eq!(before, 64);
        d.kill_daemon(2);
        let after = d.cache().len();
        assert!(after < before, "killed node's share must be evicted");
        assert!(after > 0, "only one node's share is lost");
    }
}
