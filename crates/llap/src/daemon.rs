//! The LLAP daemon fleet: persistent executors plus the shared caches.
//!
//! Daemons are stateless (§5.1): "each contains a number of executors to
//! run several query fragments in parallel and a local work queue.
//! Failure and recovery is simplified because any node can still be used
//! to process any fragment." Here the fleet tracks executor occupancy
//! (used by the scheduler and the workload manager) and owns the data
//! and metadata caches.

use crate::cache::{LlapCache, MetadataCache};
use parking_lot::Mutex;
use std::sync::Arc;

/// The daemon fleet.
#[derive(Debug, Clone)]
pub struct LlapDaemons {
    inner: Arc<Inner>,
}

#[derive(Debug)]
struct Inner {
    nodes: usize,
    executors_per_node: usize,
    busy: Mutex<usize>,
    cache: LlapCache,
    metadata: MetadataCache,
}

impl LlapDaemons {
    /// Start a fleet of `nodes` daemons with `executors_per_node`
    /// executors each and a cache of `cache_bytes` (cluster-wide).
    pub fn new(nodes: usize, executors_per_node: usize, cache_bytes: usize, lrfu_lambda: f64) -> Self {
        LlapDaemons {
            inner: Arc::new(Inner {
                nodes,
                executors_per_node,
                busy: Mutex::new(0),
                cache: LlapCache::new(cache_bytes, lrfu_lambda),
                metadata: MetadataCache::new(),
            }),
        }
    }

    /// Total executor slots.
    pub fn total_executors(&self) -> usize {
        self.inner.nodes * self.inner.executors_per_node
    }

    /// Number of daemon nodes.
    pub fn nodes(&self) -> usize {
        self.inner.nodes
    }

    /// The shared data cache.
    pub fn cache(&self) -> &LlapCache {
        &self.inner.cache
    }

    /// The shared metadata cache.
    pub fn metadata(&self) -> &MetadataCache {
        &self.inner.metadata
    }

    /// Try to reserve `n` executors; returns how many were granted
    /// (possibly fewer under load — fragments queue in that case).
    pub fn reserve_executors(&self, n: usize) -> usize {
        let mut busy = self.inner.busy.lock();
        let free = self.total_executors().saturating_sub(*busy);
        let granted = n.min(free);
        *busy += granted;
        granted
    }

    /// Release previously reserved executors.
    pub fn release_executors(&self, n: usize) {
        let mut busy = self.inner.busy.lock();
        *busy = busy.saturating_sub(n);
    }

    /// Executors currently busy.
    pub fn busy_executors(&self) -> usize {
        *self.inner.busy.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reservation_accounting() {
        let d = LlapDaemons::new(2, 4, 1 << 20, 0.5);
        assert_eq!(d.total_executors(), 8);
        assert_eq!(d.reserve_executors(5), 5);
        assert_eq!(d.reserve_executors(5), 3, "only 3 free");
        d.release_executors(4);
        assert_eq!(d.busy_executors(), 4);
        assert_eq!(d.reserve_executors(10), 4);
        d.release_executors(100);
        assert_eq!(d.busy_executors(), 0);
    }
}
