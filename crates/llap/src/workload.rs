//! The workload manager (paper §5.2): resource plans, pools, mappings
//! and triggers controlling access to LLAP resources in multi-tenant
//! clusters.
//!
//! A resource plan consists of "(i) one or more pool of resources, with
//! a maximum amount of resources and number of concurrent queries per
//! pool, (ii) mappings, which route incoming queries to pools …, and
//! (iii) triggers which initiate an action, such as killing queries in a
//! pool or moving queries from one pool to another". Idle capacity is
//! borrowable: "a query may be assigned idle resources from a pool that
//! it has not been assigned to".

use hive_common::{HiveError, Result};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;

/// A pool of LLAP resources.
#[derive(Debug, Clone, PartialEq)]
pub struct Pool {
    pub name: String,
    /// Fraction of cluster resources guaranteed to the pool.
    pub alloc_fraction: f64,
    /// Maximum concurrent queries.
    pub query_parallelism: usize,
}

/// Routes queries to pools by user or application name.
#[derive(Debug, Clone, PartialEq)]
pub enum Mapping {
    User { name: String, pool: String },
    Application { name: String, pool: String },
    Group { name: String, pool: String },
}

/// A runtime action taken by a trigger.
#[derive(Debug, Clone, PartialEq)]
pub enum TriggerAction {
    Kill,
    MoveToPool(String),
}

/// A trigger: when a query in `pool` exceeds `threshold` for `metric`,
/// apply `action`. The only metric modeled is total runtime in
/// milliseconds (the paper's `total_runtime` example).
#[derive(Debug, Clone, PartialEq)]
pub struct Trigger {
    pub name: String,
    pub pool: String,
    pub total_runtime_ms_threshold: u64,
    pub action: TriggerAction,
}

/// A self-contained resource-sharing configuration. Only one plan can
/// be active at a time.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ResourcePlan {
    pub name: String,
    pub pools: Vec<Pool>,
    pub mappings: Vec<Mapping>,
    pub triggers: Vec<Trigger>,
    pub default_pool: Option<String>,
}

impl ResourcePlan {
    /// The paper's §5.2 example: `daytime` with `bi` (80%, 5 queries)
    /// and `etl` (20%, 20 queries) pools, a downgrade trigger at 3 s,
    /// and an application mapping.
    pub fn paper_example() -> ResourcePlan {
        ResourcePlan {
            name: "daytime".into(),
            pools: vec![
                Pool {
                    name: "bi".into(),
                    alloc_fraction: 0.8,
                    query_parallelism: 5,
                },
                Pool {
                    name: "etl".into(),
                    alloc_fraction: 0.2,
                    query_parallelism: 20,
                },
            ],
            mappings: vec![Mapping::Application {
                name: "visualization_app".into(),
                pool: "bi".into(),
            }],
            triggers: vec![Trigger {
                name: "downgrade".into(),
                pool: "bi".into(),
                total_runtime_ms_threshold: 3000,
                action: TriggerAction::MoveToPool("etl".into()),
            }],
            default_pool: Some("etl".into()),
        }
    }

    fn pool(&self, name: &str) -> Option<&Pool> {
        self.pools.iter().find(|p| p.name == name)
    }
}

/// A granted admission.
#[derive(Debug, Clone, PartialEq)]
pub struct Admission {
    /// Pool the query runs in.
    pub pool: String,
    /// Guaranteed fraction of cluster resources for this query.
    pub guaranteed_fraction: f64,
    /// True when the query borrowed idle capacity from another pool.
    pub borrowed: bool,
}

/// The workload manager: admission control over the active plan.
#[derive(Debug)]
pub struct WorkloadManager {
    plan: Option<ResourcePlan>,
    running: Mutex<HashMap<String, usize>>,
}

impl Default for WorkloadManager {
    fn default() -> Self {
        Self::new()
    }
}

impl WorkloadManager {
    /// A manager with no active plan (everything admitted).
    pub fn new() -> Self {
        WorkloadManager {
            plan: None,
            running: Mutex::new(HashMap::new()),
        }
    }

    /// Activate a resource plan (replacing any previous one).
    pub fn activate(&mut self, plan: ResourcePlan) {
        self.plan = Some(plan);
        self.running.lock().clear();
    }

    /// The active plan.
    pub fn active_plan(&self) -> Option<&ResourcePlan> {
        self.plan.as_ref()
    }

    /// Route a query to its pool by mappings (user first, then
    /// application, then the default pool).
    pub fn route(&self, user: &str, application: Option<&str>) -> Option<String> {
        let plan = self.plan.as_ref()?;
        for m in &plan.mappings {
            match m {
                Mapping::User { name, pool } if name == user => return Some(pool.clone()),
                Mapping::Application { name, pool } if Some(name.as_str()) == application => {
                    return Some(pool.clone())
                }
                _ => {}
            }
        }
        plan.default_pool.clone()
    }

    /// Admit a query. Fails with [`HiveError::Workload`] when the target
    /// pool (and every pool with idle capacity) is saturated.
    pub fn admit(&self, user: &str, application: Option<&str>) -> Result<Admission> {
        let Some(plan) = self.plan.as_ref() else {
            return Ok(Admission {
                pool: "default".into(),
                guaranteed_fraction: 1.0,
                borrowed: false,
            });
        };
        let pool_name = self
            .route(user, application)
            .ok_or_else(|| HiveError::Workload("no pool mapping and no default pool".into()))?;
        let pool = plan
            .pool(&pool_name)
            .ok_or_else(|| HiveError::Workload(format!("unknown pool {pool_name}")))?;
        let mut running = self.running.lock();
        let in_pool = running.entry(pool_name.clone()).or_insert(0);
        if *in_pool < pool.query_parallelism {
            *in_pool += 1;
            return Ok(Admission {
                pool: pool_name,
                guaranteed_fraction: pool.alloc_fraction,
                borrowed: false,
            });
        }
        // Borrow idle capacity from another pool.
        for other in &plan.pools {
            if other.name == pool_name {
                continue;
            }
            let count = running.entry(other.name.clone()).or_insert(0);
            if *count < other.query_parallelism {
                *count += 1;
                return Ok(Admission {
                    pool: other.name.clone(),
                    guaranteed_fraction: other.alloc_fraction,
                    borrowed: true,
                });
            }
        }
        Err(HiveError::Workload(format!(
            "pool {pool_name} is at parallelism {} and no idle capacity remains",
            pool.query_parallelism
        )))
    }

    /// Release a finished/killed query's slot.
    pub fn release(&self, pool: &str) {
        let mut running = self.running.lock();
        if let Some(c) = running.get_mut(pool) {
            *c = c.saturating_sub(1);
        }
    }

    /// Evaluate triggers for a query running in `pool` with the given
    /// elapsed runtime; returns the action to apply, if any. A MoveTo
    /// action transfers the accounting to the target pool.
    pub fn check_triggers(&self, pool: &str, elapsed_ms: u64) -> Option<TriggerAction> {
        let plan = self.plan.as_ref()?;
        for t in &plan.triggers {
            if t.pool == pool && elapsed_ms > t.total_runtime_ms_threshold {
                if let TriggerAction::MoveToPool(target) = &t.action {
                    let mut running = self.running.lock();
                    if let Some(c) = running.get_mut(pool) {
                        *c = c.saturating_sub(1);
                    }
                    *running.entry(target.clone()).or_insert(0) += 1;
                }
                return Some(t.action.clone());
            }
        }
        None
    }

    /// Running query count for a pool (diagnostics).
    pub fn running_in(&self, pool: &str) -> usize {
        *self.running.lock().get(pool).unwrap_or(&0)
    }
}

impl fmt::Display for ResourcePlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "RESOURCE PLAN {}", self.name)?;
        for p in &self.pools {
            writeln!(
                f,
                "  POOL {} alloc_fraction={} query_parallelism={}",
                p.name, p.alloc_fraction, p.query_parallelism
            )?;
        }
        for t in &self.triggers {
            writeln!(
                f,
                "  TRIGGER {} IN {} WHEN total_runtime > {}ms THEN {:?}",
                t.name, t.pool, t.total_runtime_ms_threshold, t.action
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wm() -> WorkloadManager {
        let mut w = WorkloadManager::new();
        w.activate(ResourcePlan::paper_example());
        w
    }

    #[test]
    fn routing() {
        let w = wm();
        assert_eq!(
            w.route("alice", Some("visualization_app")),
            Some("bi".into())
        );
        assert_eq!(w.route("bob", None), Some("etl".into()));
    }

    #[test]
    fn admission_limits_and_borrowing() {
        let w = wm();
        // Fill the bi pool (parallelism 5).
        for _ in 0..5 {
            let a = w.admit("u", Some("visualization_app")).unwrap();
            assert_eq!(a.pool, "bi");
            assert!(!a.borrowed);
        }
        // Sixth borrows from etl.
        let a = w.admit("u", Some("visualization_app")).unwrap();
        assert_eq!(a.pool, "etl");
        assert!(a.borrowed);
        assert_eq!(w.running_in("bi"), 5);
        assert_eq!(w.running_in("etl"), 1);
        // Saturate etl too → rejection.
        for _ in 0..19 {
            w.admit("b", None).unwrap();
        }
        assert!(w.admit("b", None).is_err());
        // Releasing frees a slot.
        w.release("etl");
        assert!(w.admit("b", None).is_ok());
    }

    #[test]
    fn trigger_moves_query() {
        let w = wm();
        let a = w.admit("u", Some("visualization_app")).unwrap();
        assert_eq!(a.pool, "bi");
        assert_eq!(w.check_triggers("bi", 1000), None);
        let action = w.check_triggers("bi", 3500).unwrap();
        assert_eq!(action, TriggerAction::MoveToPool("etl".into()));
        assert_eq!(w.running_in("bi"), 0);
        assert_eq!(w.running_in("etl"), 1);
    }

    #[test]
    fn no_plan_admits_everything() {
        let w = WorkloadManager::new();
        for _ in 0..100 {
            assert!(w.admit("anyone", None).is_ok());
        }
    }
}
