//! The workload manager (paper §5.2): resource plans, pools, mappings
//! and triggers controlling access to LLAP resources in multi-tenant
//! clusters.
//!
//! A resource plan consists of "(i) one or more pool of resources, with
//! a maximum amount of resources and number of concurrent queries per
//! pool, (ii) mappings, which route incoming queries to pools …, and
//! (iii) triggers which initiate an action, such as killing queries in a
//! pool or moving queries from one pool to another". Idle capacity is
//! borrowable: "a query may be assigned idle resources from a pool that
//! it has not been assigned to".
//!
//! Admission accounting is **slot-exact**: [`WorkloadManager::admit`]
//! returns an RAII [`AdmissionSlot`] identified by a unique query id,
//! and the manager tracks the pool each live query currently occupies.
//! Releasing is dropping the slot — it removes exactly that query, on
//! success, error, and unwind paths alike, so plan activation mid-flight
//! never wipes live counts and a release can never underflow another
//! pool's accounting. Trigger *evaluation* is pure
//! ([`WorkloadManager::next_trigger`]); applying a move goes through
//! [`AdmissionSlot::move_to`], which validates the target pool exists
//! and has capacity (a saturated or unknown target means the query
//! stays where it is).

use hive_common::{HiveError, Result};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A pool of LLAP resources.
#[derive(Debug, Clone, PartialEq)]
pub struct Pool {
    pub name: String,
    /// Fraction of cluster resources guaranteed to the pool.
    pub alloc_fraction: f64,
    /// Maximum concurrent queries.
    pub query_parallelism: usize,
}

/// Routes queries to pools by user, group, or application name.
#[derive(Debug, Clone, PartialEq)]
pub enum Mapping {
    User { name: String, pool: String },
    Application { name: String, pool: String },
    Group { name: String, pool: String },
}

impl Mapping {
    fn pool(&self) -> &str {
        match self {
            Mapping::User { pool, .. }
            | Mapping::Application { pool, .. }
            | Mapping::Group { pool, .. } => pool,
        }
    }
}

/// A runtime action taken by a trigger.
#[derive(Debug, Clone, PartialEq)]
pub enum TriggerAction {
    Kill,
    MoveToPool(String),
}

/// A trigger: when a query in `pool` runs past `threshold`, apply
/// `action`. The only metric modeled is total runtime in milliseconds
/// (the paper's `total_runtime` example).
#[derive(Debug, Clone, PartialEq)]
pub struct Trigger {
    pub name: String,
    pub pool: String,
    pub total_runtime_ms_threshold: u64,
    pub action: TriggerAction,
}

/// A self-contained resource-sharing configuration. Only one plan can
/// be active at a time.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ResourcePlan {
    pub name: String,
    pub pools: Vec<Pool>,
    pub mappings: Vec<Mapping>,
    pub triggers: Vec<Trigger>,
    pub default_pool: Option<String>,
}

impl ResourcePlan {
    /// The paper's §5.2 example: `daytime` with `bi` (80%, 5 queries)
    /// and `etl` (20%, 20 queries) pools, a downgrade trigger at 3 s,
    /// and an application mapping.
    pub fn paper_example() -> ResourcePlan {
        ResourcePlan {
            name: "daytime".into(),
            pools: vec![
                Pool {
                    name: "bi".into(),
                    alloc_fraction: 0.8,
                    query_parallelism: 5,
                },
                Pool {
                    name: "etl".into(),
                    alloc_fraction: 0.2,
                    query_parallelism: 20,
                },
            ],
            mappings: vec![Mapping::Application {
                name: "visualization_app".into(),
                pool: "bi".into(),
            }],
            triggers: vec![Trigger {
                name: "downgrade".into(),
                pool: "bi".into(),
                total_runtime_ms_threshold: 3000,
                action: TriggerAction::MoveToPool("etl".into()),
            }],
            default_pool: Some("etl".into()),
        }
    }

    fn pool(&self, name: &str) -> Option<&Pool> {
        self.pools.iter().find(|p| p.name == name)
    }

    /// Reject inconsistent plans before they can corrupt admission:
    /// duplicate pool names, mappings/default/triggers naming unknown
    /// pools, and — the phantom-pool bug — `MoveToPool` targets that do
    /// not exist in the plan.
    pub fn validate(&self) -> Result<()> {
        let err = |m: String| Err(HiveError::Workload(m));
        for (i, p) in self.pools.iter().enumerate() {
            if self.pools[..i].iter().any(|q| q.name == p.name) {
                return err(format!("plan {}: duplicate pool {}", self.name, p.name));
            }
            if p.query_parallelism == 0 {
                return err(format!(
                    "plan {}: pool {} has query_parallelism 0",
                    self.name, p.name
                ));
            }
        }
        if let Some(d) = &self.default_pool {
            if self.pool(d).is_none() {
                return err(format!("plan {}: unknown default pool {d}", self.name));
            }
        }
        for m in &self.mappings {
            if self.pool(m.pool()).is_none() {
                return err(format!(
                    "plan {}: mapping routes to unknown pool {}",
                    self.name,
                    m.pool()
                ));
            }
        }
        for t in &self.triggers {
            if self.pool(&t.pool).is_none() {
                return err(format!(
                    "plan {}: trigger {} watches unknown pool {}",
                    self.name, t.name, t.pool
                ));
            }
            if let TriggerAction::MoveToPool(target) = &t.action {
                if self.pool(target).is_none() {
                    return err(format!(
                        "plan {}: trigger {} moves to unknown pool {target}",
                        self.name, t.name
                    ));
                }
                if target == &t.pool {
                    return err(format!(
                        "plan {}: trigger {} moves {} to itself",
                        self.name, t.name, t.pool
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Outcome of a non-blocking admission attempt.
#[derive(Debug)]
pub enum AdmitOutcome {
    /// Admitted — the slot is live until dropped.
    Admitted(AdmissionSlot),
    /// The routed pool and every borrowable pool are at capacity; the
    /// caller may queue and retry when capacity frees (the serving
    /// layer's bounded admission queue does exactly that).
    Saturated {
        /// The pool the query was routed to.
        pool: String,
    },
}

/// Outcome of [`AdmissionSlot::move_to`].
#[derive(Debug, Clone, PartialEq)]
pub enum MoveOutcome {
    /// Accounting transferred to the target pool.
    Moved,
    /// The query stays in its current pool (unknown or saturated
    /// target, or a no-op self-move).
    Stayed { reason: String },
}

/// Result of walking a finished query's trigger timeline
/// ([`AdmissionSlot::resolve_triggers`]).
#[derive(Debug, Clone, PartialEq)]
pub enum TriggerVerdict {
    /// The query ran to completion; any pool moves that fired along the
    /// way are listed as `(elapsed_ms, target_pool)`.
    Completed { moves: Vec<(u64, String)> },
    /// A kill trigger fired at `at_ms` — the query ends there, not at
    /// its natural runtime.
    Killed { at_ms: u64, trigger: String },
}

#[derive(Debug, Default)]
struct WmState {
    plan: Option<ResourcePlan>,
    next_id: u64,
    /// Live admissions: query id → pool the query currently occupies.
    running: HashMap<u64, String>,
}

impl WmState {
    fn running_in(&self, pool: &str) -> usize {
        self.running.values().filter(|p| p.as_str() == pool).count()
    }
}

/// The workload manager: admission control over the active plan.
/// Cheap to clone; clones share state (admission slots hold one).
#[derive(Debug, Clone, Default)]
pub struct WorkloadManager {
    state: Arc<Mutex<WmState>>,
}

impl WorkloadManager {
    /// A manager with no active plan (everything admitted).
    pub fn new() -> Self {
        WorkloadManager::default()
    }

    /// Validate and activate a resource plan (replacing any previous
    /// one). Live admissions are untouched: queries keep the slots they
    /// hold and release them exactly, even across the swap.
    pub fn activate(&self, plan: ResourcePlan) -> Result<()> {
        plan.validate()?;
        self.state.lock().plan = Some(plan);
        Ok(())
    }

    /// A snapshot of the active plan.
    pub fn active_plan(&self) -> Option<ResourcePlan> {
        self.state.lock().plan.clone()
    }

    /// Route a query to its pool. Mapping precedence is by type — user,
    /// then group (first of the session's groups with a mapping, in
    /// plan order), then application — falling back to the default
    /// pool.
    pub fn route(
        &self,
        user: &str,
        application: Option<&str>,
        groups: &[String],
    ) -> Option<String> {
        let g = self.state.lock();
        let plan = g.plan.as_ref()?;
        for m in &plan.mappings {
            if let Mapping::User { name, pool } = m {
                if name == user {
                    return Some(pool.clone());
                }
            }
        }
        for m in &plan.mappings {
            if let Mapping::Group { name, pool } = m {
                if groups.iter().any(|s| s == name) {
                    return Some(pool.clone());
                }
            }
        }
        for m in &plan.mappings {
            if let Mapping::Application { name, pool } = m {
                if Some(name.as_str()) == application {
                    return Some(pool.clone());
                }
            }
        }
        plan.default_pool.clone()
    }

    /// Try to admit a query: the routed pool first, then borrowable
    /// idle capacity from other pools in plan order. Saturation is a
    /// non-error outcome so callers can queue.
    pub fn try_admit(
        &self,
        user: &str,
        application: Option<&str>,
        groups: &[String],
    ) -> Result<AdmitOutcome> {
        let pool_name = {
            let g = self.state.lock();
            match g.plan.as_ref() {
                None => {
                    drop(g);
                    return Ok(AdmitOutcome::Admitted(
                        self.insert_slot("default", 1.0, false),
                    ));
                }
                Some(_) => {
                    drop(g);
                    self.route(user, application, groups).ok_or_else(|| {
                        HiveError::Workload("no pool mapping and no default pool".into())
                    })?
                }
            }
        };
        let g = self.state.lock();
        let plan = g.plan.as_ref().expect("plan checked above");
        let pool = plan
            .pool(&pool_name)
            .ok_or_else(|| HiveError::Workload(format!("unknown pool {pool_name}")))?;
        if g.running_in(&pool_name) < pool.query_parallelism {
            let fraction = pool.alloc_fraction;
            drop(g);
            return Ok(AdmitOutcome::Admitted(
                self.insert_slot(&pool_name, fraction, false),
            ));
        }
        // Borrow idle capacity from another pool, in plan order.
        let borrow = plan
            .pools
            .iter()
            .find(|p| p.name != pool_name && g.running_in(&p.name) < p.query_parallelism)
            .map(|p| (p.name.clone(), p.alloc_fraction));
        drop(g);
        match borrow {
            Some((name, fraction)) => Ok(AdmitOutcome::Admitted(
                self.insert_slot(&name, fraction, true),
            )),
            None => Ok(AdmitOutcome::Saturated { pool: pool_name }),
        }
    }

    /// Admit a query, failing with [`HiveError::Workload`] when the
    /// target pool (and every pool with idle capacity) is saturated —
    /// the hard-rejection path used by standalone sessions that have no
    /// queue to wait in.
    pub fn admit(
        &self,
        user: &str,
        application: Option<&str>,
        groups: &[String],
    ) -> Result<AdmissionSlot> {
        match self.try_admit(user, application, groups)? {
            AdmitOutcome::Admitted(slot) => Ok(slot),
            AdmitOutcome::Saturated { pool } => {
                let parallelism = self
                    .state
                    .lock()
                    .plan
                    .as_ref()
                    .and_then(|p| p.pool(&pool))
                    .map(|p| p.query_parallelism)
                    .unwrap_or(0);
                Err(HiveError::Workload(format!(
                    "pool {pool} is at parallelism {parallelism} and no idle capacity remains"
                )))
            }
        }
    }

    /// Admit directly into a named pool when it has capacity (the
    /// serving layer's queue wake-up path: a waiter admitted into the
    /// pool it queued for, never a borrow).
    pub fn admit_into(&self, pool: &str) -> Option<AdmissionSlot> {
        let fraction = {
            let g = self.state.lock();
            let plan = g.plan.as_ref()?;
            let p = plan.pool(pool)?;
            if g.running_in(pool) >= p.query_parallelism {
                return None;
            }
            p.alloc_fraction
        };
        Some(self.insert_slot(pool, fraction, false))
    }

    fn insert_slot(&self, pool: &str, fraction: f64, borrowed: bool) -> AdmissionSlot {
        let id = {
            let mut g = self.state.lock();
            let id = g.next_id;
            g.next_id += 1;
            g.running.insert(id, pool.to_string());
            id
        };
        AdmissionSlot {
            wm: self.clone(),
            id,
            home_pool: pool.to_string(),
            guaranteed_fraction: fraction,
            borrowed,
        }
    }

    /// The lowest-threshold trigger on `pool` with
    /// `total_runtime_ms_threshold ≥ min_threshold_ms` (ties resolve in
    /// plan order). Pure — evaluation never touches accounting; apply
    /// moves through [`AdmissionSlot::move_to`]. Walk a timeline by
    /// passing `fired.threshold + 1` on each subsequent call.
    pub fn next_trigger(&self, pool: &str, min_threshold_ms: u64) -> Option<Trigger> {
        let g = self.state.lock();
        let plan = g.plan.as_ref()?;
        plan.triggers
            .iter()
            .filter(|t| t.pool == pool && t.total_runtime_ms_threshold >= min_threshold_ms)
            .min_by_key(|t| t.total_runtime_ms_threshold)
            .cloned()
    }

    /// A pool's definition in the active plan.
    pub fn pool_info(&self, pool: &str) -> Option<Pool> {
        self.state
            .lock()
            .plan
            .as_ref()
            .and_then(|p| p.pool(pool))
            .cloned()
    }

    /// Running query count for a pool (diagnostics).
    pub fn running_in(&self, pool: &str) -> usize {
        self.state.lock().running_in(pool)
    }

    /// Total live admissions across all pools.
    pub fn total_running(&self) -> usize {
        self.state.lock().running.len()
    }
}

/// A granted admission: RAII ownership of one pool slot, mirroring
/// [`crate::ExecutorLease`]. Dropping the slot releases exactly this
/// query's accounting — double releases and underflows are
/// unrepresentable.
#[derive(Debug)]
pub struct AdmissionSlot {
    wm: WorkloadManager,
    id: u64,
    home_pool: String,
    guaranteed_fraction: f64,
    borrowed: bool,
}

impl AdmissionSlot {
    /// The pool this query currently occupies (moves update it).
    pub fn pool(&self) -> String {
        self.wm
            .state
            .lock()
            .running
            .get(&self.id)
            .cloned()
            .unwrap_or_else(|| self.home_pool.clone())
    }

    /// Guaranteed fraction of cluster resources for this query, fixed
    /// at admission (memory budgets are sized once, at admit time).
    pub fn guaranteed_fraction(&self) -> f64 {
        self.guaranteed_fraction
    }

    /// True when the query borrowed idle capacity from a pool it was
    /// not routed to.
    pub fn borrowed(&self) -> bool {
        self.borrowed
    }

    /// Transfer this query's accounting to `target`, validating that
    /// the target pool exists in the active plan and has capacity. On
    /// an unknown or saturated target the query **stays** in its
    /// current pool — a typo'd trigger target can no longer create a
    /// phantom pool, and a saturated target can no longer be pushed
    /// past its `query_parallelism`.
    pub fn move_to(&self, target: &str) -> MoveOutcome {
        let mut g = self.wm.state.lock();
        let current = match g.running.get(&self.id) {
            Some(p) => p.clone(),
            None => {
                return MoveOutcome::Stayed {
                    reason: "slot already released".into(),
                }
            }
        };
        if current == target {
            return MoveOutcome::Stayed {
                reason: format!("already in pool {target}"),
            };
        }
        let Some(plan) = g.plan.as_ref() else {
            return MoveOutcome::Stayed {
                reason: "no active plan".into(),
            };
        };
        let Some(pool) = plan.pool(target) else {
            return MoveOutcome::Stayed {
                reason: format!("unknown target pool {target}"),
            };
        };
        let parallelism = pool.query_parallelism;
        if g.running_in(target) >= parallelism {
            return MoveOutcome::Stayed {
                reason: format!("target pool {target} is at parallelism {parallelism}"),
            };
        }
        g.running.insert(self.id, target.to_string());
        MoveOutcome::Moved
    }

    /// Walk the trigger timeline of a query that ran (solo) for
    /// `runtime_ms`: starting in the admitted pool at elapsed 0, fire
    /// triggers in threshold order. A kill ends the query at its
    /// threshold; a move transfers the slot (capacity-validated — a
    /// failed move leaves the query in place) and evaluation continues
    /// against the pool it now occupies. The standalone driver path
    /// uses this; the concurrent serving layer evaluates the same
    /// triggers as discrete timeline events instead.
    pub fn resolve_triggers(&self, runtime_ms: u64) -> TriggerVerdict {
        let mut pool = self.pool();
        let mut min_threshold = 0u64;
        let mut moves = Vec::new();
        while let Some(t) = self.wm.next_trigger(&pool, min_threshold) {
            let at = t.total_runtime_ms_threshold;
            if at >= runtime_ms {
                break; // the query finished before this trigger fired
            }
            min_threshold = at + 1;
            match t.action {
                TriggerAction::Kill => {
                    return TriggerVerdict::Killed {
                        at_ms: at,
                        trigger: t.name,
                    }
                }
                TriggerAction::MoveToPool(target) => {
                    if let MoveOutcome::Moved = self.move_to(&target) {
                        moves.push((at, target.clone()));
                        pool = target;
                    }
                }
            }
        }
        TriggerVerdict::Completed { moves }
    }

    /// Release the slot explicitly (dropping does the same).
    pub fn release(self) {}
}

impl Drop for AdmissionSlot {
    fn drop(&mut self) {
        self.wm.state.lock().running.remove(&self.id);
    }
}

impl fmt::Display for ResourcePlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "RESOURCE PLAN {}", self.name)?;
        for p in &self.pools {
            writeln!(
                f,
                "  POOL {} alloc_fraction={} query_parallelism={}",
                p.name, p.alloc_fraction, p.query_parallelism
            )?;
        }
        for m in &self.mappings {
            let (kind, name) = match m {
                Mapping::User { name, .. } => ("USER", name),
                Mapping::Group { name, .. } => ("GROUP", name),
                Mapping::Application { name, .. } => ("APPLICATION", name),
            };
            writeln!(f, "  {kind} MAPPING {name} TO {}", m.pool())?;
        }
        for t in &self.triggers {
            writeln!(
                f,
                "  TRIGGER {} IN {} WHEN total_runtime > {}ms THEN {:?}",
                t.name, t.pool, t.total_runtime_ms_threshold, t.action
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wm() -> WorkloadManager {
        let w = WorkloadManager::new();
        w.activate(ResourcePlan::paper_example()).unwrap();
        w
    }

    #[test]
    fn routing() {
        let w = wm();
        assert_eq!(
            w.route("alice", Some("visualization_app"), &[]),
            Some("bi".into())
        );
        assert_eq!(w.route("bob", None, &[]), Some("etl".into()));
    }

    #[test]
    fn group_mappings_route_between_user_and_application() {
        let w = WorkloadManager::new();
        let mut plan = ResourcePlan::paper_example();
        plan.mappings = vec![
            Mapping::Application {
                name: "visualization_app".into(),
                pool: "etl".into(),
            },
            Mapping::Group {
                name: "analysts".into(),
                pool: "bi".into(),
            },
            Mapping::User {
                name: "carol".into(),
                pool: "etl".into(),
            },
        ];
        w.activate(plan).unwrap();
        // Group beats application…
        assert_eq!(
            w.route(
                "alice",
                Some("visualization_app"),
                &["analysts".to_string()]
            ),
            Some("bi".into())
        );
        // …user beats group…
        assert_eq!(
            w.route("carol", None, &["analysts".to_string()]),
            Some("etl".into())
        );
        // …and an unmapped group falls through to application/default.
        assert_eq!(
            w.route("dave", Some("visualization_app"), &["interns".to_string()]),
            Some("etl".into())
        );
        assert_eq!(w.route("dave", None, &[]), Some("etl".into()));
    }

    #[test]
    fn admission_limits_and_borrowing() {
        let w = wm();
        // Fill the bi pool (parallelism 5).
        let mut slots = Vec::new();
        for _ in 0..5 {
            let a = w.admit("u", Some("visualization_app"), &[]).unwrap();
            assert_eq!(a.pool(), "bi");
            assert!(!a.borrowed());
            slots.push(a);
        }
        // Sixth borrows from etl.
        let a = w.admit("u", Some("visualization_app"), &[]).unwrap();
        assert_eq!(a.pool(), "etl");
        assert!(a.borrowed());
        assert_eq!(w.running_in("bi"), 5);
        assert_eq!(w.running_in("etl"), 1);
        // Saturate etl too → rejection.
        for _ in 0..19 {
            slots.push(w.admit("b", None, &[]).unwrap());
        }
        assert!(w.admit("b", None, &[]).is_err());
        assert!(matches!(
            w.try_admit("b", None, &[]).unwrap(),
            AdmitOutcome::Saturated { pool } if pool == "etl"
        ));
        // Releasing (dropping) frees a slot.
        drop(slots.pop());
        let refill = w.admit("b", None, &[]).unwrap();
        assert_eq!(refill.pool(), "etl");
        slots.push(refill);
        // The borrowed slot releases back to the pool it occupies.
        assert_eq!(w.running_in("etl"), 20);
        drop(a);
        assert_eq!(w.running_in("etl"), 19);
    }

    #[test]
    fn activate_mid_flight_keeps_live_slots_exact() {
        let w = wm();
        let a = w.admit("u", Some("visualization_app"), &[]).unwrap();
        assert_eq!(w.running_in("bi"), 1);
        // Re-activating (even the same plan) must not wipe live counts…
        w.activate(ResourcePlan::paper_example()).unwrap();
        assert_eq!(w.running_in("bi"), 1, "activation wiped a live slot");
        let b = w.admit("u", Some("visualization_app"), &[]).unwrap();
        assert_eq!(w.running_in("bi"), 2);
        // …and releases stay exact across the swap: each drop removes
        // its own query only, so no underflow can corrupt later counts.
        drop(a);
        assert_eq!(w.running_in("bi"), 1);
        drop(b);
        assert_eq!(w.running_in("bi"), 0);
        let c = w.admit("u", Some("visualization_app"), &[]).unwrap();
        assert_eq!(w.running_in("bi"), 1);
        drop(c);
    }

    #[test]
    fn activate_rejects_invalid_plans() {
        let w = WorkloadManager::new();
        let mut plan = ResourcePlan::paper_example();
        plan.triggers[0].action = TriggerAction::MoveToPool("etk".into()); // typo
        assert!(w.activate(plan).is_err(), "unknown move target");
        let mut plan = ResourcePlan::paper_example();
        plan.default_pool = Some("nope".into());
        assert!(w.activate(plan).is_err(), "unknown default pool");
        let mut plan = ResourcePlan::paper_example();
        plan.mappings.push(Mapping::Group {
            name: "g".into(),
            pool: "nope".into(),
        });
        assert!(w.activate(plan).is_err(), "unknown mapping pool");
        let mut plan = ResourcePlan::paper_example();
        plan.pools[1].name = "bi".into();
        assert!(w.activate(plan).is_err(), "duplicate pool");
    }

    #[test]
    fn move_validates_target_capacity() {
        let w = wm();
        // Saturate etl (parallelism 20): 20 direct admissions.
        let held: Vec<_> = (0..20).map(|_| w.admit("b", None, &[]).unwrap()).collect();
        let a = w.admit("u", Some("visualization_app"), &[]).unwrap();
        assert_eq!(a.pool(), "bi");
        // Target saturated → the query stays, and etl is not pushed
        // past its parallelism.
        assert!(matches!(a.move_to("etl"), MoveOutcome::Stayed { .. }));
        assert_eq!(a.pool(), "bi");
        assert_eq!(w.running_in("etl"), 20);
        // Unknown target → stays (no phantom pool is created).
        assert!(matches!(a.move_to("etk"), MoveOutcome::Stayed { .. }));
        assert_eq!(w.running_in("etk"), 0);
        // Capacity frees → the move lands.
        drop(held);
        assert_eq!(a.move_to("etl"), MoveOutcome::Moved);
        assert_eq!(a.pool(), "etl");
        assert_eq!(w.running_in("bi"), 0);
        assert_eq!(w.running_in("etl"), 1);
    }

    #[test]
    fn trigger_timeline_moves_and_kills_at_threshold() {
        let w = wm();
        let a = w.admit("u", Some("visualization_app"), &[]).unwrap();
        // Finished before the 3000 ms threshold: nothing fires.
        assert_eq!(
            a.resolve_triggers(1000),
            TriggerVerdict::Completed { moves: vec![] }
        );
        assert_eq!(a.pool(), "bi");
        // Past it: the downgrade move fires at exactly 3000.
        assert_eq!(
            a.resolve_triggers(3500),
            TriggerVerdict::Completed {
                moves: vec![(3000, "etl".into())]
            }
        );
        assert_eq!(a.pool(), "etl");
        assert_eq!(w.running_in("bi"), 0);
        assert_eq!(w.running_in("etl"), 1);
        drop(a);

        // A kill trigger ends the query at its threshold.
        let mut plan = ResourcePlan::paper_example();
        plan.triggers.push(Trigger {
            name: "reaper".into(),
            pool: "etl".into(),
            total_runtime_ms_threshold: 5000,
            action: TriggerAction::Kill,
        });
        w.activate(plan).unwrap();
        let b = w.admit("u", Some("visualization_app"), &[]).unwrap();
        assert_eq!(
            b.resolve_triggers(9000),
            TriggerVerdict::Killed {
                at_ms: 5000,
                trigger: "reaper".into()
            },
            "move at 3000 into etl, then etl's kill at 5000"
        );
    }

    #[test]
    fn no_plan_admits_everything() {
        let w = WorkloadManager::new();
        let slots: Vec<_> = (0..100)
            .map(|_| w.admit("anyone", None, &[]).unwrap())
            .collect();
        assert_eq!(w.total_running(), 100);
        drop(slots);
        assert_eq!(w.total_running(), 0);
    }

    #[test]
    fn slot_releases_on_panic() {
        let w = wm();
        let w2 = w.clone();
        let result = std::panic::catch_unwind(move || {
            let _slot = w2.admit("u", Some("visualization_app"), &[]).unwrap();
            panic!("query died");
        });
        assert!(result.is_err());
        assert_eq!(
            w.running_in("bi"),
            0,
            "panicking query must not leak its slot"
        );
    }
}
