//! The LLAP data cache and metadata cache.

use hive_common::{ColumnVector, FaultInjector, FileId, Result};
use hive_corc::CorcFile;
use hive_dfs::{DfsPath, DistFs};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A cache key: one column chunk of one row group of one file. FileId is
/// the stable identity (ETag analogue) that keeps entries valid across
/// the ACID table's evolving directory layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChunkKey {
    pub file: FileId,
    pub column: usize,
    pub row_group: usize,
}

impl ChunkKey {
    /// Stable 64-bit identity, used for fault-injection rolls and for
    /// partitioning the cache across daemon nodes. Explicit FNV-1a
    /// rather than `DefaultHasher`: the standard hasher's output is not
    /// guaranteed stable across Rust releases, and `HIVE_FAULT_SEED`
    /// replays must not change under a toolchain bump. Pinned by a
    /// regression test below.
    pub fn hash64(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        for v in [self.file.0, self.column as u64, self.row_group as u64] {
            for b in v.to_le_bytes() {
                h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
            }
        }
        h
    }
}

/// Identity of a shared dictionary allocation referenced by cache
/// entries of one (file, column). The `Arc` address is a valid identity
/// because every referencing `Entry` keeps the allocation alive, so the
/// address cannot be reused while a charge is outstanding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct DictKey {
    file: FileId,
    column: usize,
    addr: usize,
}

#[derive(Debug)]
struct Entry {
    data: Arc<ColumnVector>,
    /// Bytes charged to this entry alone: for dictionary-encoded chunks
    /// the codes (4 bytes/row) + null-bitmap overhead; the shared
    /// dictionary is charged once per [`DictKey`] in `dict_charges`.
    bytes: usize,
    /// Shared dictionary this entry holds a reference on, if any.
    dict_key: Option<DictKey>,
    /// LRFU combined recency/frequency value.
    crf: f64,
    last_ref: u64,
}

/// Per-entry cost split: own bytes plus (for encoded chunks) the shared
/// dictionary's identity and size.
fn chunk_cost(key: &ChunkKey, col: &ColumnVector) -> (usize, Option<(DictKey, usize)>) {
    match col.dict_parts() {
        Some((codes, dict, _)) => {
            let own = codes.len() * 4 + codes.len() / 8;
            let dict_bytes: usize = dict.iter().map(|s| s.len() + 24).sum();
            let dk = DictKey {
                file: key.file,
                column: key.column,
                addr: Arc::as_ptr(dict) as *const u8 as usize,
            };
            (own, Some((dk, dict_bytes)))
        }
        None => (col.approx_bytes(), None),
    }
}

/// Cache hit/miss counters.
#[derive(Debug, Default)]
pub struct CacheStats {
    pub hits: AtomicU64,
    pub misses: AtomicU64,
    pub evictions: AtomicU64,
    pub bytes_served_from_cache: AtomicU64,
    pub bytes_loaded: AtomicU64,
    /// Hits discarded because the chunk was detected as corrupt
    /// (checksum-mismatch model); each degrades to a DFS load.
    pub corrupt_misses: AtomicU64,
    /// Bytes deep-copied out of the cache into private batches. The
    /// selection-vector data flow hands out `Arc` references instead,
    /// so this counter stays at zero with `hive.exec.selvec.enabled`;
    /// the eager-compaction path charges every chunk it clones. Scan
    /// consumers charge it (the cache itself always returns `Arc`s).
    pub bytes_copied_out: AtomicU64,
}

impl CacheStats {
    /// (hits, misses) snapshot.
    pub fn hit_miss(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Hit rate in [0,1]; 0 when empty.
    pub fn hit_rate(&self) -> f64 {
        let (h, m) = self.hit_miss();
        if h + m == 0 {
            0.0
        } else {
            h as f64 / (h + m) as f64
        }
    }
}

/// The off-heap-style chunk cache with **LRFU** eviction (§5.1: "a
/// simple LRFU replacement policy that is tuned for analytic workloads
/// with frequent full and partial scan operations"; "the unit of data
/// for eviction is the chunk").
///
/// LRFU computes a combined recency/frequency value per entry:
/// `CRF = 1 + CRF_old · 2^(−λ·Δt)` on each reference. λ→0 degenerates to
/// LFU, λ→1 to LRU.
#[derive(Debug)]
pub struct LlapCache {
    inner: Mutex<CacheInner>,
    capacity_bytes: usize,
    lambda: f64,
    stats: CacheStats,
}

#[derive(Debug, Default)]
struct CacheInner {
    entries: HashMap<ChunkKey, Entry>,
    bytes: usize,
    tick: u64,
    /// `(bytes, live entry refs)` per shared dictionary; the bytes are
    /// added to `bytes` when the first referencing entry is inserted
    /// and released when the last one leaves.
    dict_charges: HashMap<DictKey, (usize, usize)>,
}

/// Remove an entry's byte charges, releasing its dictionary share when
/// it was the last reference.
fn release_entry(g: &mut CacheInner, e: Entry) {
    g.bytes -= e.bytes;
    if let Some(dk) = e.dict_key {
        if let Some(c) = g.dict_charges.get_mut(&dk) {
            c.1 -= 1;
            if c.1 == 0 {
                g.bytes -= c.0;
                g.dict_charges.remove(&dk);
            }
        }
    }
}

impl LlapCache {
    /// A cache bounded to `capacity_bytes` with LRFU decay `lambda`.
    pub fn new(capacity_bytes: usize, lambda: f64) -> Self {
        LlapCache {
            inner: Mutex::new(CacheInner::default()),
            capacity_bytes,
            lambda: lambda.clamp(0.0, 1.0),
            stats: CacheStats::default(),
        }
    }

    /// Counters.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Current resident bytes.
    pub fn resident_bytes(&self) -> usize {
        self.inner.lock().bytes
    }

    /// Number of cached chunks.
    pub fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn crf_now(&self, e: &Entry, now: u64) -> f64 {
        let dt = (now - e.last_ref) as f64;
        e.crf * 2f64.powf(-self.lambda * dt)
    }

    /// Fetch a chunk, loading it on miss via `load` (the I/O elevator's
    /// fetch-and-decode path).
    pub fn get_or_load(
        &self,
        key: ChunkKey,
        load: impl FnOnce() -> Result<ColumnVector>,
    ) -> Result<Arc<ColumnVector>> {
        self.get_or_load_with_fault(key, None, load)
    }

    /// [`LlapCache::get_or_load`] with fault injection: a hit may be
    /// detected as corrupt (per the injector's deterministic roll), in
    /// which case the entry is dropped and the read degrades to the
    /// `load` path — the graceful cache→DFS degradation rung of the
    /// recovery ladder.
    pub fn get_or_load_with_fault(
        &self,
        key: ChunkKey,
        fault: Option<&FaultInjector>,
        load: impl FnOnce() -> Result<ColumnVector>,
    ) -> Result<Arc<ColumnVector>> {
        {
            let mut g = self.inner.lock();
            g.tick += 1;
            let now = g.tick;
            if let Some(e) = g.entries.get_mut(&key) {
                let corrupt = fault
                    .map(|f| f.cache_chunk_corrupt(key.hash64()))
                    .unwrap_or(false);
                if corrupt {
                    self.stats.corrupt_misses.fetch_add(1, Ordering::Relaxed);
                    if let Some(e) = g.entries.remove(&key) {
                        release_entry(&mut g, e);
                    }
                    // Fall through to the miss path below.
                } else {
                    let decayed = {
                        let dt = (now - e.last_ref) as f64;
                        e.crf * 2f64.powf(-self.lambda * dt)
                    };
                    e.crf = 1.0 + decayed;
                    e.last_ref = now;
                    self.stats.hits.fetch_add(1, Ordering::Relaxed);
                    self.stats
                        .bytes_served_from_cache
                        .fetch_add(e.bytes as u64, Ordering::Relaxed);
                    return Ok(e.data.clone());
                }
            }
        }
        // Miss: load outside the lock.
        self.stats.misses.fetch_add(1, Ordering::Relaxed);
        let col = load()?;
        self.stats
            .bytes_loaded
            .fetch_add(col.approx_bytes() as u64, Ordering::Relaxed);
        let (bytes, dict_info) = chunk_cost(&key, &col);
        let data = Arc::new(col);
        let mut g = self.inner.lock();
        g.tick += 1;
        let now = g.tick;
        // Cost of admitting this chunk right now: its own bytes plus
        // the dictionary when no resident entry shares it yet
        // (re-evaluated inside the eviction loop, since evicting the
        // dictionary's last other holder re-adds its bytes to our bill).
        fn admit_cost(g: &CacheInner, bytes: usize, dict_info: &Option<(DictKey, usize)>) -> usize {
            bytes
                + match dict_info {
                    Some((dk, db)) if !g.dict_charges.contains_key(dk) => *db,
                    _ => 0,
                }
        }
        // Evict lowest-CRF entries until the new chunk fits. Chunks
        // larger than the whole cache bypass it.
        if admit_cost(&g, bytes, &dict_info) <= self.capacity_bytes {
            while g.bytes + admit_cost(&g, bytes, &dict_info) > self.capacity_bytes {
                // total_cmp instead of partial_cmp().unwrap(): a NaN
                // CRF (λ/Δt edge cases) must pick *a* victim, not
                // panic mid-eviction with the cache lock held.
                let victim = match g
                    .entries
                    .iter()
                    .min_by(|(_, a), (_, b)| self.crf_now(a, now).total_cmp(&self.crf_now(b, now)))
                    .map(|(k, _)| *k)
                {
                    Some(v) => v,
                    None => break,
                };
                if let Some(e) = g.entries.remove(&victim) {
                    release_entry(&mut g, e);
                    self.stats.evictions.fetch_add(1, Ordering::Relaxed);
                }
            }
            let inner = &mut *g;
            let dict_key = dict_info.map(|(dk, db)| {
                let c = inner.dict_charges.entry(dk).or_insert((db, 0));
                if c.1 == 0 {
                    // First resident reference carries the dictionary.
                    inner.bytes += db;
                }
                c.1 += 1;
                dk
            });
            g.bytes += bytes;
            if let Some(old) = g.entries.insert(
                key,
                Entry {
                    data: data.clone(),
                    bytes,
                    dict_key,
                    crf: 1.0,
                    last_ref: now,
                },
            ) {
                // Two workers can miss on the same chunk concurrently
                // (the load runs outside the lock); the loser's insert
                // replaces the winner's entry, so give back the bytes
                // of the entry being replaced or resident accounting
                // drifts upward forever.
                release_entry(&mut g, old);
            }
        }
        Ok(data)
    }

    /// Drop every cached chunk (tests / manual flush).
    pub fn clear(&self) {
        let mut g = self.inner.lock();
        g.entries.clear();
        g.dict_charges.clear();
        g.bytes = 0;
    }

    /// Drop the share of the cache owned by daemon `node` out of a
    /// fleet of `nodes` (daemon death: its resident chunks are gone).
    /// Chunks are partitioned by key hash, the same consistent mapping
    /// a distributed cache would use.
    pub fn evict_node_share(&self, node: usize, nodes: usize) {
        if nodes == 0 {
            return;
        }
        let mut g = self.inner.lock();
        let victims: Vec<ChunkKey> = g
            .entries
            .keys()
            .filter(|k| k.hash64() as usize % nodes == node)
            .copied()
            .collect();
        for k in victims {
            if let Some(e) = g.entries.remove(&k) {
                release_entry(&mut g, e);
                self.stats.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// Footer/metadata cache: open corc files keyed by path + FileId.
/// "The metadata, including index information, is cached even for data
/// that was never in the cache" — sargs evaluate against this before
/// any chunk is fetched.
#[derive(Debug, Default)]
pub struct MetadataCache {
    inner: Mutex<HashMap<DfsPath, (FileId, CorcFile)>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl MetadataCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Open a file through the cache; the FileId check invalidates
    /// entries if a path is ever reused by a new file.
    pub fn open(&self, fs: &DistFs, path: &DfsPath) -> Result<CorcFile> {
        let current_id = fs.stat(path)?.file_id;
        {
            let g = self.inner.lock();
            if let Some((id, f)) = g.get(path) {
                if *id == current_id {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Ok(f.clone());
                }
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let f = CorcFile::open(fs, path)?;
        self.inner
            .lock()
            .insert(path.clone(), (current_id, f.clone()));
        Ok(f)
    }

    /// (hits, misses).
    pub fn hit_miss(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hive_common::HiveError;

    fn chunk(n: usize) -> ColumnVector {
        ColumnVector::BigInt(vec![7; n], None)
    }

    fn key(f: u64, c: usize, rg: usize) -> ChunkKey {
        ChunkKey {
            file: FileId(f),
            column: c,
            row_group: rg,
        }
    }

    #[test]
    fn hit_after_load() {
        let cache = LlapCache::new(1 << 20, 0.5);
        let k = key(1, 0, 0);
        let a = cache.get_or_load(k, || Ok(chunk(100))).unwrap();
        let b = cache.get_or_load(k, || panic!("must not reload")).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats().hit_miss(), (1, 1));
    }

    #[test]
    fn eviction_respects_capacity() {
        // Each chunk ~800 bytes; capacity for ~3.
        let cache = LlapCache::new(2600, 1.0);
        for i in 0..10 {
            cache.get_or_load(key(i, 0, 0), || Ok(chunk(100))).unwrap();
        }
        assert!(cache.resident_bytes() <= 2600);
        assert!(cache.len() <= 3);
        assert!(cache.stats().evictions.load(Ordering::Relaxed) >= 7);
    }

    #[test]
    fn lrfu_lru_mode_keeps_recent() {
        // λ=1 ≈ LRU: after touching key 0 repeatedly long ago, a recent
        // stream should evict it only after fresher entries.
        let cache = LlapCache::new(1700, 1.0); // fits 2 chunks
        cache.get_or_load(key(0, 0, 0), || Ok(chunk(100))).unwrap();
        cache.get_or_load(key(1, 0, 0), || Ok(chunk(100))).unwrap();
        // Touch key 1 (most recent), then insert key 2 → evict key 0.
        cache
            .get_or_load(key(1, 0, 0), || panic!("hit expected"))
            .unwrap();
        cache.get_or_load(key(2, 0, 0), || Ok(chunk(100))).unwrap();
        let mut reloaded0 = false;
        cache
            .get_or_load(key(0, 0, 0), || {
                reloaded0 = true;
                Ok(chunk(100))
            })
            .unwrap();
        assert!(reloaded0, "LRU-ish mode should have evicted key 0");
    }

    #[test]
    fn lrfu_lfu_mode_keeps_frequent() {
        // λ=0 ≈ LFU: a frequently-referenced entry survives a scan of
        // one-shot entries.
        let cache = LlapCache::new(1700, 0.0); // fits 2 chunks
        for _ in 0..10 {
            cache.get_or_load(key(0, 0, 0), || Ok(chunk(100))).unwrap();
        }
        for i in 1..6 {
            cache.get_or_load(key(i, 0, 0), || Ok(chunk(100))).unwrap();
        }
        let mut reloaded0 = false;
        cache
            .get_or_load(key(0, 0, 0), || {
                reloaded0 = true;
                Ok(chunk(100))
            })
            .unwrap();
        assert!(!reloaded0, "LFU-ish mode should retain the hot chunk");
    }

    #[test]
    fn oversized_chunks_bypass() {
        let cache = LlapCache::new(100, 0.5);
        cache.get_or_load(key(1, 0, 0), || Ok(chunk(1000))).unwrap();
        assert_eq!(cache.len(), 0, "oversized chunk must not be cached");
    }

    #[test]
    fn racing_same_key_loads_keep_byte_accounting_exact() {
        // Two workers miss on the same chunk at once (loads run outside
        // the lock); the second insert replaces the first and must not
        // double-count the entry's bytes.
        let cache = LlapCache::new(1 << 20, 0.5);
        let k = key(1, 0, 0);
        let barrier = std::sync::Barrier::new(2);
        std::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    cache
                        .get_or_load(k, || {
                            barrier.wait(); // both threads are mid-load → both miss
                            Ok(chunk(100))
                        })
                        .unwrap();
                });
            }
        });
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.resident_bytes(), chunk(100).approx_bytes());
    }

    #[test]
    fn load_errors_propagate() {
        let cache = LlapCache::new(1 << 20, 0.5);
        let r = cache.get_or_load(key(9, 0, 0), || Err(HiveError::Io("disk gone".into())));
        assert!(r.is_err());
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn chunk_key_hash64_is_pinned() {
        // FNV-1a over the key's fields, little-endian. These values are
        // part of the replay contract: HIVE_FAULT_SEED schedules and
        // daemon cache partitioning key off hash64, so it must never
        // change — not even across Rust toolchain releases.
        assert_eq!(key(1, 0, 0).hash64(), 0x5b2a_969b_42d2_38a4);
        assert_eq!(key(0xDEAD_BEEF, 3, 7).hash64(), 0xbb59_cec2_b614_3d3f);
        // And it must distinguish fields that a naive XOR would merge.
        assert_ne!(key(1, 2, 3).hash64(), key(1, 3, 2).hash64());
        assert_ne!(key(2, 1, 3).hash64(), key(1, 2, 3).hash64());
    }

    fn dict_chunk(dict: &Arc<Vec<String>>, rows: usize) -> ColumnVector {
        let codes: Vec<u32> = (0..rows).map(|i| (i % dict.len()) as u32).collect();
        ColumnVector::dict_from_codes(codes, dict.clone(), None).unwrap()
    }

    #[test]
    fn shared_dictionary_charged_once() {
        let cache = LlapCache::new(1 << 20, 0.5);
        let dict = Arc::new(vec!["aaaaaaaa".to_string(), "bbbbbbbb".to_string()]);
        let dict_bytes: usize = dict.iter().map(|s| s.len() + 24).sum();
        let codes_bytes = 100 * 4 + 100 / 8;
        // Two row-group chunks of the same (file, column) share the
        // dictionary Arc — the second must charge its codes only.
        cache
            .get_or_load(key(1, 0, 0), || Ok(dict_chunk(&dict, 100)))
            .unwrap();
        assert_eq!(cache.resident_bytes(), codes_bytes + dict_bytes);
        cache
            .get_or_load(key(1, 0, 1), || Ok(dict_chunk(&dict, 100)))
            .unwrap();
        assert_eq!(
            cache.resident_bytes(),
            2 * codes_bytes + dict_bytes,
            "second chunk of the column double-counted the dictionary"
        );
        // A different column's dictionary (distinct Arc) is its own charge.
        let other = Arc::new(vec!["cc".to_string()]);
        cache
            .get_or_load(key(1, 1, 0), || Ok(dict_chunk(&other, 100)))
            .unwrap();
        let other_bytes: usize = other.iter().map(|s| s.len() + 24).sum();
        assert_eq!(
            cache.resident_bytes(),
            3 * codes_bytes + dict_bytes + other_bytes
        );
        cache.clear();
        assert_eq!(cache.resident_bytes(), 0);
    }

    #[test]
    fn evicting_last_holder_releases_dictionary_bytes() {
        let cache = LlapCache::new(1 << 20, 0.5);
        let dict = Arc::new(vec!["xxxxxxxxxxxxxxxx".to_string()]);
        cache
            .get_or_load(key(1, 0, 0), || Ok(dict_chunk(&dict, 50)))
            .unwrap();
        cache
            .get_or_load(key(1, 0, 1), || Ok(dict_chunk(&dict, 50)))
            .unwrap();
        let full = cache.resident_bytes();
        // Daemon-death eviction drops both entries; all dictionary
        // bytes must come back (refcount reaches zero exactly once).
        assert!(full > 0);
        cache.evict_node_share(0, 1);
        cache.evict_node_share(1, 1);
        // nodes=1 maps every key to node 0; the second call is a no-op.
        assert_eq!(cache.resident_bytes(), 0);
        assert_eq!(cache.len(), 0);
    }
}
