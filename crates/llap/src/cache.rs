//! The LLAP data cache and metadata cache.

use hive_common::{ColumnVector, FaultInjector, FileId, Result};
use hive_corc::CorcFile;
use hive_dfs::{DfsPath, DistFs};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A cache key: one column chunk of one row group of one file. FileId is
/// the stable identity (ETag analogue) that keeps entries valid across
/// the ACID table's evolving directory layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChunkKey {
    pub file: FileId,
    pub column: usize,
    pub row_group: usize,
}

impl ChunkKey {
    /// Stable 64-bit identity, used for fault-injection rolls and for
    /// partitioning the cache across daemon nodes.
    pub fn hash64(&self) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.hash(&mut h);
        h.finish()
    }
}

#[derive(Debug)]
struct Entry {
    data: Arc<ColumnVector>,
    bytes: usize,
    /// LRFU combined recency/frequency value.
    crf: f64,
    last_ref: u64,
}

/// Cache hit/miss counters.
#[derive(Debug, Default)]
pub struct CacheStats {
    pub hits: AtomicU64,
    pub misses: AtomicU64,
    pub evictions: AtomicU64,
    pub bytes_served_from_cache: AtomicU64,
    pub bytes_loaded: AtomicU64,
    /// Hits discarded because the chunk was detected as corrupt
    /// (checksum-mismatch model); each degrades to a DFS load.
    pub corrupt_misses: AtomicU64,
}

impl CacheStats {
    /// (hits, misses) snapshot.
    pub fn hit_miss(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Hit rate in [0,1]; 0 when empty.
    pub fn hit_rate(&self) -> f64 {
        let (h, m) = self.hit_miss();
        if h + m == 0 {
            0.0
        } else {
            h as f64 / (h + m) as f64
        }
    }
}

/// The off-heap-style chunk cache with **LRFU** eviction (§5.1: "a
/// simple LRFU replacement policy that is tuned for analytic workloads
/// with frequent full and partial scan operations"; "the unit of data
/// for eviction is the chunk").
///
/// LRFU computes a combined recency/frequency value per entry:
/// `CRF = 1 + CRF_old · 2^(−λ·Δt)` on each reference. λ→0 degenerates to
/// LFU, λ→1 to LRU.
#[derive(Debug)]
pub struct LlapCache {
    inner: Mutex<CacheInner>,
    capacity_bytes: usize,
    lambda: f64,
    stats: CacheStats,
}

#[derive(Debug, Default)]
struct CacheInner {
    entries: HashMap<ChunkKey, Entry>,
    bytes: usize,
    tick: u64,
}

impl LlapCache {
    /// A cache bounded to `capacity_bytes` with LRFU decay `lambda`.
    pub fn new(capacity_bytes: usize, lambda: f64) -> Self {
        LlapCache {
            inner: Mutex::new(CacheInner::default()),
            capacity_bytes,
            lambda: lambda.clamp(0.0, 1.0),
            stats: CacheStats::default(),
        }
    }

    /// Counters.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Current resident bytes.
    pub fn resident_bytes(&self) -> usize {
        self.inner.lock().bytes
    }

    /// Number of cached chunks.
    pub fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn crf_now(&self, e: &Entry, now: u64) -> f64 {
        let dt = (now - e.last_ref) as f64;
        e.crf * 2f64.powf(-self.lambda * dt)
    }

    /// Fetch a chunk, loading it on miss via `load` (the I/O elevator's
    /// fetch-and-decode path).
    pub fn get_or_load(
        &self,
        key: ChunkKey,
        load: impl FnOnce() -> Result<ColumnVector>,
    ) -> Result<Arc<ColumnVector>> {
        self.get_or_load_with_fault(key, None, load)
    }

    /// [`LlapCache::get_or_load`] with fault injection: a hit may be
    /// detected as corrupt (per the injector's deterministic roll), in
    /// which case the entry is dropped and the read degrades to the
    /// `load` path — the graceful cache→DFS degradation rung of the
    /// recovery ladder.
    pub fn get_or_load_with_fault(
        &self,
        key: ChunkKey,
        fault: Option<&FaultInjector>,
        load: impl FnOnce() -> Result<ColumnVector>,
    ) -> Result<Arc<ColumnVector>> {
        {
            let mut g = self.inner.lock();
            g.tick += 1;
            let now = g.tick;
            if let Some(e) = g.entries.get_mut(&key) {
                let corrupt = fault
                    .map(|f| f.cache_chunk_corrupt(key.hash64()))
                    .unwrap_or(false);
                if corrupt {
                    self.stats.corrupt_misses.fetch_add(1, Ordering::Relaxed);
                    if let Some(e) = g.entries.remove(&key) {
                        g.bytes -= e.bytes;
                    }
                    // Fall through to the miss path below.
                } else {
                    let decayed = {
                        let dt = (now - e.last_ref) as f64;
                        e.crf * 2f64.powf(-self.lambda * dt)
                    };
                    e.crf = 1.0 + decayed;
                    e.last_ref = now;
                    self.stats.hits.fetch_add(1, Ordering::Relaxed);
                    self.stats
                        .bytes_served_from_cache
                        .fetch_add(e.bytes as u64, Ordering::Relaxed);
                    return Ok(e.data.clone());
                }
            }
        }
        // Miss: load outside the lock.
        self.stats.misses.fetch_add(1, Ordering::Relaxed);
        let col = load()?;
        let bytes = col.approx_bytes();
        self.stats
            .bytes_loaded
            .fetch_add(bytes as u64, Ordering::Relaxed);
        let data = Arc::new(col);
        let mut g = self.inner.lock();
        g.tick += 1;
        let now = g.tick;
        // Evict lowest-CRF entries until the new chunk fits. Chunks
        // larger than the whole cache bypass it.
        if bytes <= self.capacity_bytes {
            while g.bytes + bytes > self.capacity_bytes {
                // total_cmp instead of partial_cmp().unwrap(): a NaN
                // CRF (λ/Δt edge cases) must pick *a* victim, not
                // panic mid-eviction with the cache lock held.
                let victim = match g
                    .entries
                    .iter()
                    .min_by(|(_, a), (_, b)| {
                        self.crf_now(a, now).total_cmp(&self.crf_now(b, now))
                    })
                    .map(|(k, _)| *k)
                {
                    Some(v) => v,
                    None => break,
                };
                if let Some(e) = g.entries.remove(&victim) {
                    g.bytes -= e.bytes;
                    self.stats.evictions.fetch_add(1, Ordering::Relaxed);
                }
            }
            g.bytes += bytes;
            if let Some(old) = g.entries.insert(
                key,
                Entry {
                    data: data.clone(),
                    bytes,
                    crf: 1.0,
                    last_ref: now,
                },
            ) {
                // Two workers can miss on the same chunk concurrently
                // (the load runs outside the lock); the loser's insert
                // replaces the winner's entry, so give back the bytes
                // of the entry being replaced or resident accounting
                // drifts upward forever.
                g.bytes -= old.bytes;
            }
        }
        Ok(data)
    }

    /// Drop every cached chunk (tests / manual flush).
    pub fn clear(&self) {
        let mut g = self.inner.lock();
        g.entries.clear();
        g.bytes = 0;
    }

    /// Drop the share of the cache owned by daemon `node` out of a
    /// fleet of `nodes` (daemon death: its resident chunks are gone).
    /// Chunks are partitioned by key hash, the same consistent mapping
    /// a distributed cache would use.
    pub fn evict_node_share(&self, node: usize, nodes: usize) {
        if nodes == 0 {
            return;
        }
        let mut g = self.inner.lock();
        let victims: Vec<ChunkKey> = g
            .entries
            .keys()
            .filter(|k| k.hash64() as usize % nodes == node)
            .copied()
            .collect();
        for k in victims {
            if let Some(e) = g.entries.remove(&k) {
                g.bytes -= e.bytes;
                self.stats.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// Footer/metadata cache: open corc files keyed by path + FileId.
/// "The metadata, including index information, is cached even for data
/// that was never in the cache" — sargs evaluate against this before
/// any chunk is fetched.
#[derive(Debug, Default)]
pub struct MetadataCache {
    inner: Mutex<HashMap<DfsPath, (FileId, CorcFile)>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl MetadataCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Open a file through the cache; the FileId check invalidates
    /// entries if a path is ever reused by a new file.
    pub fn open(&self, fs: &DistFs, path: &DfsPath) -> Result<CorcFile> {
        let current_id = fs.stat(path)?.file_id;
        {
            let g = self.inner.lock();
            if let Some((id, f)) = g.get(path) {
                if *id == current_id {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Ok(f.clone());
                }
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let f = CorcFile::open(fs, path)?;
        self.inner
            .lock()
            .insert(path.clone(), (current_id, f.clone()));
        Ok(f)
    }

    /// (hits, misses).
    pub fn hit_miss(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hive_common::HiveError;

    fn chunk(n: usize) -> ColumnVector {
        ColumnVector::BigInt(vec![7; n], None)
    }

    fn key(f: u64, c: usize, rg: usize) -> ChunkKey {
        ChunkKey {
            file: FileId(f),
            column: c,
            row_group: rg,
        }
    }

    #[test]
    fn hit_after_load() {
        let cache = LlapCache::new(1 << 20, 0.5);
        let k = key(1, 0, 0);
        let a = cache.get_or_load(k, || Ok(chunk(100))).unwrap();
        let b = cache
            .get_or_load(k, || panic!("must not reload"))
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats().hit_miss(), (1, 1));
    }

    #[test]
    fn eviction_respects_capacity() {
        // Each chunk ~800 bytes; capacity for ~3.
        let cache = LlapCache::new(2600, 1.0);
        for i in 0..10 {
            cache.get_or_load(key(i, 0, 0), || Ok(chunk(100))).unwrap();
        }
        assert!(cache.resident_bytes() <= 2600);
        assert!(cache.len() <= 3);
        assert!(cache.stats().evictions.load(Ordering::Relaxed) >= 7);
    }

    #[test]
    fn lrfu_lru_mode_keeps_recent() {
        // λ=1 ≈ LRU: after touching key 0 repeatedly long ago, a recent
        // stream should evict it only after fresher entries.
        let cache = LlapCache::new(1700, 1.0); // fits 2 chunks
        cache.get_or_load(key(0, 0, 0), || Ok(chunk(100))).unwrap();
        cache.get_or_load(key(1, 0, 0), || Ok(chunk(100))).unwrap();
        // Touch key 1 (most recent), then insert key 2 → evict key 0.
        cache
            .get_or_load(key(1, 0, 0), || panic!("hit expected"))
            .unwrap();
        cache.get_or_load(key(2, 0, 0), || Ok(chunk(100))).unwrap();
        let mut reloaded0 = false;
        cache
            .get_or_load(key(0, 0, 0), || {
                reloaded0 = true;
                Ok(chunk(100))
            })
            .unwrap();
        assert!(reloaded0, "LRU-ish mode should have evicted key 0");
    }

    #[test]
    fn lrfu_lfu_mode_keeps_frequent() {
        // λ=0 ≈ LFU: a frequently-referenced entry survives a scan of
        // one-shot entries.
        let cache = LlapCache::new(1700, 0.0); // fits 2 chunks
        for _ in 0..10 {
            cache.get_or_load(key(0, 0, 0), || Ok(chunk(100))).unwrap();
        }
        for i in 1..6 {
            cache.get_or_load(key(i, 0, 0), || Ok(chunk(100))).unwrap();
        }
        let mut reloaded0 = false;
        cache
            .get_or_load(key(0, 0, 0), || {
                reloaded0 = true;
                Ok(chunk(100))
            })
            .unwrap();
        assert!(!reloaded0, "LFU-ish mode should retain the hot chunk");
    }

    #[test]
    fn oversized_chunks_bypass() {
        let cache = LlapCache::new(100, 0.5);
        cache
            .get_or_load(key(1, 0, 0), || Ok(chunk(1000)))
            .unwrap();
        assert_eq!(cache.len(), 0, "oversized chunk must not be cached");
    }

    #[test]
    fn racing_same_key_loads_keep_byte_accounting_exact() {
        // Two workers miss on the same chunk at once (loads run outside
        // the lock); the second insert replaces the first and must not
        // double-count the entry's bytes.
        let cache = LlapCache::new(1 << 20, 0.5);
        let k = key(1, 0, 0);
        let barrier = std::sync::Barrier::new(2);
        std::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    cache
                        .get_or_load(k, || {
                            barrier.wait(); // both threads are mid-load → both miss
                            Ok(chunk(100))
                        })
                        .unwrap();
                });
            }
        });
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.resident_bytes(), chunk(100).approx_bytes());
    }

    #[test]
    fn load_errors_propagate() {
        let cache = LlapCache::new(1 << 20, 0.5);
        let r = cache.get_or_load(key(9, 0, 0), || {
            Err(HiveError::Io("disk gone".into()))
        });
        assert!(r.is_err());
        assert_eq!(cache.len(), 0);
    }
}
